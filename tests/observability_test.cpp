// Tests for observability features (link usage, batch-means stddev) and
// deeper edge-case coverage: exhaustive unified-allocator enumeration,
// corner-router behaviour, SCARAB retransmit-buffer throttling, splash
// trace-generation properties.
#include <gtest/gtest.h>

#include "alloc/unified_allocator.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {
namespace {

// ---- link usage -------------------------------------------------------------

TEST(LinkUsage, CountsMatchDeliveredHops) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.packet_length = 1;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;

  Network net(cfg);
  const Mesh m(4, 4);
  TraceWorkload w({{0, m.node(0, 0), m.node(3, 0), 1},
                   {0, m.node(0, 3), m.node(0, 0), 1}});
  net.set_workload(&w);
  Cycle t = 0;
  while ((!w.finished() || !net.idle()) && t < 1000) {
    net.step();
    ++t;
  }
  ASSERT_TRUE(net.idle());

  std::uint64_t total = 0;
  std::uint64_t east_row0 = 0;
  for (const auto& u : net.link_usage()) {
    total += u.flits;
    const Coord c = m.coord(u.link.node);
    if (c.y == 0 && u.link.dir == Direction::East) east_row0 += u.flits;
  }
  EXPECT_EQ(total, 6u);      // 3 east hops + 3 south hops
  EXPECT_EQ(east_row0, 3u);  // the eastbound packet's exact path
}

TEST(LinkUsage, EveryMeshLinkListedOnce) {
  SimConfig cfg;
  Network net(cfg);
  const auto usage = net.link_usage();
  EXPECT_EQ(usage.size(), Mesh(8, 8).all_links().size());
}

// ---- batch-means stddev -------------------------------------------------------

TEST(BatchStats, SteadyLoadHasSmallVariance) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.2;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 4000;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GT(s.accepted_load_stddev, 0.0);
  EXPECT_LT(s.accepted_load_stddev, 0.1 * s.accepted_load)
      << "steady Bernoulli traffic should have tight batches";
}

TEST(BatchStats, ColdStartInflatesVariance) {
  // No warmup: the first batches see an empty network filling up.
  SimConfig steady;
  steady.design = RouterDesign::Buffered4;
  steady.offered_load = 0.25;
  steady.warmup_cycles = 800;
  steady.measure_cycles = 2000;
  SimConfig cold = steady;
  cold.warmup_cycles = 0;
  const RunStats a = run_open_loop(steady);
  const RunStats b = run_open_loop(cold);
  EXPECT_LT(a.accepted_load_stddev, b.accepted_load_stddev * 1.5 + 1e-9);
}

// ---- exhaustive unified-allocator enumeration ---------------------------------

TEST(UnifiedExhaustive, TwoPortsAllMaskCombinations) {
  // Enumerate every (incoming, buffered) request-mask combination for
  // two active ports; grants must always be legal and never starve a
  // solo uncontested requester.
  UnifiedAllocator alloc;
  for (std::uint32_t m1 = 0; m1 < 32; ++m1) {
    for (std::uint32_t m2 = 0; m2 < 32; ++m2) {
      for (std::uint32_t m3 = 0; m3 < 32; ++m3) {
        std::array<UnifiedPortRequest, kNumPorts> req{};
        if (m1) req[0].incoming = {true, m1, 10, false};
        if (m2) req[0].buffered = {true, m2, 20, false};
        if (m3) req[3].incoming = {true, m3, 30, false};
        const UnifiedGrants g = alloc.allocate(req, true);

        // Legality.
        std::array<int, kNumPorts> owner;
        owner.fill(-1);
        for (int p = 0; p < kNumPorts; ++p) {
          const auto& pg = g.port[static_cast<std::size_t>(p)];
          const auto& pr = req[static_cast<std::size_t>(p)];
          if (pg.incoming_out >= 0) {
            ASSERT_TRUE(pr.incoming.valid);
            ASSERT_TRUE(pr.incoming.request_mask & (1u << pg.incoming_out));
            ASSERT_EQ(owner[static_cast<std::size_t>(pg.incoming_out)], -1);
            owner[static_cast<std::size_t>(pg.incoming_out)] = p;
          }
          if (pg.buffered_out >= 0) {
            ASSERT_TRUE(pr.buffered.valid);
            ASSERT_TRUE(pr.buffered.request_mask & (1u << pg.buffered_out));
            ASSERT_EQ(owner[static_cast<std::size_t>(pg.buffered_out)], -1);
            owner[static_cast<std::size_t>(pg.buffered_out)] = p;
          }
        }
        // Work conservation: if any request exists, someone is granted.
        if ((m1 | m2 | m3) != 0) {
          bool any = false;
          for (const auto& pg : g.port) {
            any = any || pg.incoming_out >= 0 || pg.buffered_out >= 0;
          }
          ASSERT_TRUE(any);
        }
      }
    }
  }
}

// ---- corner routers -------------------------------------------------------------

TEST(CornerRouters, BlessCornerInjectionRespectsDegree) {
  // Flood a 2x2 mesh (every router is a corner, degree 2) with Bless:
  // invariants must hold with only two links per router.
  SimConfig cfg;
  cfg.design = RouterDesign::FlitBless;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.offered_load = 0.9;
  cfg.packet_length = 1;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2000;

  Network net(cfg);
  const Mesh m(2, 2);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 2000; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 20000 && !net.idle(); ++t) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
}

// ---- SCARAB retransmit buffer -----------------------------------------------------

TEST(ScarabThrottle, RetransmitBufferCapsOutstandingFlits) {
  // Tiny retransmit buffer -> injection self-throttles well below the
  // same config with a large buffer.
  SimConfig cfg;
  cfg.design = RouterDesign::Scarab;
  cfg.offered_load = 0.4;
  cfg.packet_length = 5;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;

  cfg.retransmit_buffer = 1;  // 5 outstanding flits per node
  const RunStats tight = run_open_loop(cfg);
  cfg.retransmit_buffer = 64;
  const RunStats roomy = run_open_loop(cfg);
  // A 1-packet buffer caps each node at 5 in-flight flits, visibly below
  // the unconstrained rate (though not drastically: self-throttling also
  // reduces drop thrash near saturation).
  EXPECT_LT(tight.accepted_load, roomy.accepted_load - 0.02);
}

// ---- splash trace generation --------------------------------------------------------

TEST(SplashTrace, GeneratedTraceIsWellFormed) {
  SimConfig cfg;
  const Mesh m(8, 8);
  SplashProfile small = *find_splash_profile("Water");
  small.transactions_per_node = 20;
  const auto trace = generate_splash_trace(small, cfg, m);
  ASSERT_FALSE(trace.empty());
  Cycle prev = 0;
  for (const TraceEntry& e : trace) {
    EXPECT_GE(e.cycle, prev);
    prev = e.cycle;
    EXPECT_LT(e.src, 64u);
    EXPECT_LT(e.dst, 64u);
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(e.length == 1 || e.length == 5);
  }
}

TEST(SplashTrace, DeterministicForSeed) {
  SimConfig cfg;
  const Mesh m(8, 8);
  SplashProfile small = *find_splash_profile("FFT");
  small.transactions_per_node = 10;
  const auto a = generate_splash_trace(small, cfg, m);
  const auto b = generate_splash_trace(small, cfg, m);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));

  cfg.seed = 999;
  const auto c = generate_splash_trace(small, cfg, m);
  EXPECT_FALSE(a.size() == c.size() &&
               std::equal(a.begin(), a.end(), c.begin()));
}

TEST(SplashTrace, ReplayDeliversEveryPacket) {
  SimConfig cfg;
  cfg.design = RouterDesign::Buffered8;
  const Mesh m(8, 8);
  SplashProfile small = *find_splash_profile("LU");
  small.transactions_per_node = 10;
  auto trace = generate_splash_trace(small, cfg, m);
  const std::size_t n = trace.size();
  const ClosedLoopResult r = run_trace_replay(cfg, std::move(trace));
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.packets, n);
}

}  // namespace
}  // namespace dxbar
