// Unit tests for topology/: mesh geometry and link channels.
#include <gtest/gtest.h>

#include "topology/channel.hpp"
#include "topology/mesh.hpp"

namespace dxbar {
namespace {

TEST(Mesh, CoordinateRoundTrip) {
  const Mesh m(8, 8);
  for (NodeId n = 0; n < 64; ++n) {
    EXPECT_EQ(m.node(m.coord(n)), n);
  }
}

TEST(Mesh, CoordinateRoundTripAsymmetric) {
  const Mesh m(5, 3);
  EXPECT_EQ(m.num_nodes(), 15);
  for (NodeId n = 0; n < 15; ++n) {
    EXPECT_EQ(m.node(m.coord(n)), n);
  }
  EXPECT_EQ(m.coord(7).x, 2);
  EXPECT_EQ(m.coord(7).y, 1);
}

TEST(Mesh, NeighborsInterior) {
  const Mesh m(8, 8);
  const NodeId c = m.node(3, 3);
  EXPECT_EQ(m.neighbor(c, Direction::East), m.node(4, 3));
  EXPECT_EQ(m.neighbor(c, Direction::West), m.node(2, 3));
  EXPECT_EQ(m.neighbor(c, Direction::North), m.node(3, 4));
  EXPECT_EQ(m.neighbor(c, Direction::South), m.node(3, 2));
  EXPECT_EQ(m.neighbor(c, Direction::Local), std::nullopt);
}

TEST(Mesh, EdgesHaveNoWraparound) {
  const Mesh m(4, 4);
  EXPECT_EQ(m.neighbor(m.node(0, 0), Direction::West), std::nullopt);
  EXPECT_EQ(m.neighbor(m.node(0, 0), Direction::South), std::nullopt);
  EXPECT_EQ(m.neighbor(m.node(3, 3), Direction::East), std::nullopt);
  EXPECT_EQ(m.neighbor(m.node(3, 3), Direction::North), std::nullopt);
}

TEST(Mesh, NeighborRelationIsSymmetric) {
  const Mesh m(6, 4);
  for (NodeId n = 0; n < static_cast<NodeId>(m.num_nodes()); ++n) {
    for (Direction d : kLinkDirs) {
      const auto nb = m.neighbor(n, d);
      if (nb) {
        EXPECT_EQ(m.neighbor(*nb, opposite(d)), n);
      }
    }
  }
}

TEST(Mesh, LinkCount) {
  // A W x H mesh has 2*(W-1)*H + 2*W*(H-1) directed links.
  const Mesh m(8, 8);
  EXPECT_EQ(m.all_links().size(), std::size_t{2 * 7 * 8 + 2 * 8 * 7});
}

TEST(Mesh, DistanceIsManhattan) {
  const Mesh m(8, 8);
  EXPECT_EQ(m.distance(m.node(0, 0), m.node(7, 7)), 14);
  EXPECT_EQ(m.distance(m.node(3, 4), m.node(3, 4)), 0);
  EXPECT_EQ(m.distance(m.node(1, 2), m.node(4, 1)), 4);
}

TEST(Mesh, AverageDistanceMatchesClosedForm) {
  // For a k x k mesh the mean pairwise Manhattan distance over src != dst
  // is 2*(k^2-1)*k/... easier: compare against the known 8x8 value
  // computed independently: mean |x1-x2| over uniform pairs incl. equal
  // = (k^2-1)/(3k) = 63/24 = 2.625 per dimension -> 5.25 including
  // self-pairs; excluding them scales by n^2/(n(n-1)) = 64/63.
  const Mesh m(8, 8);
  EXPECT_NEAR(m.average_distance(), 5.25 * 64.0 / 63.0, 1e-9);
}

TEST(Channel, TwoCycleDeliveryLatency) {
  Channel ch(kUnlimitedCredits);
  Flit f{.packet = 7};

  // Cycle t: send.
  EXPECT_TRUE(ch.can_send());
  ch.send(f);
  EXPECT_FALSE(ch.can_send());  // one flit per cycle per link

  // Cycle t+1: in flight, nothing delivered.
  ch.advance();
  EXPECT_FALSE(ch.take_arrival().has_value());
  EXPECT_TRUE(ch.can_send());

  // Cycle t+2: delivered.
  ch.advance();
  const auto got = ch.take_arrival();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->packet, 7u);
}

TEST(Channel, BackToBackFullThroughput) {
  Channel ch(kUnlimitedCredits);
  int delivered = 0;
  for (int t = 0; t < 100; ++t) {
    ch.advance();
    if (ch.take_arrival()) ++delivered;
    ch.send(Flit{.packet = static_cast<PacketId>(t)});
  }
  EXPECT_EQ(delivered, 98);  // 2-cycle pipeline fill, then 1/cycle
}

TEST(Channel, CreditProtocol) {
  Channel ch(2);
  EXPECT_EQ(ch.credits(), 2);
  ch.send(Flit{.packet = 1});
  EXPECT_EQ(ch.credits(), 1);
  ch.advance();
  ch.send(Flit{.packet = 2});
  EXPECT_EQ(ch.credits(), 0);
  ch.advance();
  EXPECT_FALSE(ch.can_send());  // out of credits
  EXPECT_TRUE(ch.take_arrival().has_value());
  ch.return_credit();
  EXPECT_FALSE(ch.can_send());  // credit return has one cycle latency
  ch.advance();
  EXPECT_TRUE(ch.can_send());
  EXPECT_EQ(ch.credits(), 1);
}

TEST(Channel, UnlimitedIgnoresCreditReturns) {
  Channel ch(kUnlimitedCredits);
  ch.return_credit();
  ch.advance();
  EXPECT_EQ(ch.credits(), kUnlimitedCredits);
  EXPECT_TRUE(ch.can_send());
}

TEST(Channel, OccupancyTracksPipeline) {
  Channel ch(kUnlimitedCredits);
  EXPECT_EQ(ch.occupancy(), 0);
  ch.send(Flit{});
  EXPECT_EQ(ch.occupancy(), 1);
  ch.advance();
  ch.send(Flit{});
  EXPECT_EQ(ch.occupancy(), 2);
  ch.advance();
  EXPECT_EQ(ch.occupancy(), 2);
  (void)ch.take_arrival();
  EXPECT_EQ(ch.occupancy(), 1);
}

}  // namespace
}  // namespace dxbar
