// Reproduction regression tests: the paper's headline claims, asserted
// with tolerances so refactoring cannot silently break the results that
// EXPERIMENTS.md reports.  These use reduced windows (seconds, not
// minutes) — the bench binaries remain the source of record.
#include <gtest/gtest.h>

#include "power/energy_model.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

RunStats run(RouterDesign d, double load,
             RoutingAlgo algo = RoutingAlgo::DOR,
             TrafficPattern p = TrafficPattern::UniformRandom) {
  SimConfig cfg;
  cfg.design = d;
  cfg.routing = algo;
  cfg.pattern = p;
  cfg.offered_load = load;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 2500;
  cfg.drain_cycles = 4000;
  return run_open_loop(cfg);
}

// Fig 5: DXbar outperforms every baseline past their saturation points.
TEST(Reproduction, Fig5ThroughputOrdering) {
  const double dxbar = run(RouterDesign::DXbar, 0.5).accepted_load;
  const double unified = run(RouterDesign::UnifiedXbar, 0.5).accepted_load;
  const double b8 = run(RouterDesign::Buffered8, 0.5).accepted_load;
  const double b4 = run(RouterDesign::Buffered4, 0.5).accepted_load;
  const double bless = run(RouterDesign::FlitBless, 0.5).accepted_load;
  const double scarab = run(RouterDesign::Scarab, 0.5).accepted_load;

  EXPECT_GT(dxbar, b8 * 1.05) << "paper: ~20% over Buffered 8";
  EXPECT_GT(dxbar, b4 * 1.25) << "paper: ~40% over Buffered 4";
  EXPECT_GT(dxbar, bless * 1.2) << "paper: ~40% over Flit-Bless";
  EXPECT_GT(dxbar, scarab * 1.15);
  EXPECT_NEAR(unified, dxbar, dxbar * 0.08)
      << "paper: unified ~= dual crossbar";
  EXPECT_GT(dxbar, 0.33) << "paper: saturation above 0.4 offered";
}

// Fig 5: DXbar WF slightly below DOR on UR but still above baselines.
TEST(Reproduction, Fig5WestFirstCompetitive) {
  const double wf =
      run(RouterDesign::DXbar, 0.5, RoutingAlgo::WestFirst).accepted_load;
  const double b8 = run(RouterDesign::Buffered8, 0.5).accepted_load;
  EXPECT_GT(wf, b8);
}

// Fig 6: DXbar energy ~flat across load and lowest; Bless blows up.
TEST(Reproduction, Fig6EnergyShape) {
  const double dx_low = run(RouterDesign::DXbar, 0.1).energy_per_packet_nj();
  const double dx_high = run(RouterDesign::DXbar, 0.8).energy_per_packet_nj();
  EXPECT_LT(dx_high / dx_low, 1.15) << "paper: DXbar energy hardly changes";

  const double bless_low =
      run(RouterDesign::FlitBless, 0.1).energy_per_packet_nj();
  const double bless_high =
      run(RouterDesign::FlitBless, 0.8).energy_per_packet_nj();
  EXPECT_GT(bless_high / bless_low, 1.6)
      << "paper: Bless ~3x past saturation";

  const double b4_high =
      run(RouterDesign::Buffered4, 0.8).energy_per_packet_nj();
  EXPECT_LT(dx_high, b4_high * 1.05)
      << "paper: DXbar at or below the buffered baselines";
  EXPECT_LT(dx_high, bless_high * 0.6);
}

// Fig 7: adaptivity wins the adversarial permutations.
TEST(Reproduction, Fig7AdaptivePatterns) {
  const double dor = run(RouterDesign::DXbar, 0.5, RoutingAlgo::DOR,
                         TrafficPattern::Transpose)
                         .accepted_load;
  const double wf = run(RouterDesign::DXbar, 0.5, RoutingAlgo::WestFirst,
                        TrafficPattern::Transpose)
                        .accepted_load;
  EXPECT_GT(wf, dor * 1.2) << "paper: WF very competitive on MT";
}

// Figs 11-12: graceful degradation and buffered-energy growth under
// crossbar faults.
TEST(Reproduction, Fig11FaultDegradationBounded) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.4;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 2500;

  const RunStats healthy = run_open_loop(cfg);
  cfg.fault_fraction = 1.0;
  const RunStats faulty = run_open_loop(cfg);

  EXPECT_GT(faulty.accepted_load, healthy.accepted_load * 0.7)
      << "paper: the network tolerates a fault in every router";
  EXPECT_GT(faulty.avg_packet_latency, healthy.avg_packet_latency);
  EXPECT_GT(faulty.energy_buffer_nj, healthy.energy_buffer_nj * 2)
      << "paper Fig 12: degraded routers buffer every flit";
}

// Table III relations are asserted in power_test.cpp; here pin the two
// headline ratios end to end.
TEST(Reproduction, TableIIIAreaRatios) {
  const auto area = [](RouterDesign d) {
    SimConfig c;
    c.design = d;
    return router_area_mm2(d, derive_area_params(c));
  };
  const double bless = area(RouterDesign::FlitBless);
  EXPECT_NEAR(area(RouterDesign::DXbar) / bless, 1.33, 0.02);
  EXPECT_NEAR(area(RouterDesign::UnifiedXbar) / bless, 1.25, 0.02);
}

// Section III.C: past saturation only a small fraction of traversals
// buffer (paper: ~1/6).
TEST(Reproduction, BufferingStaysRare) {
  const RunStats s = run(RouterDesign::DXbar, 0.5);
  // Buffer energy share is a proxy: each buffered flit pays one write +
  // one read (5 pJ) against 13+36 pJ per hop.
  SimConfig dxbar_cfg;
  dxbar_cfg.design = RouterDesign::DXbar;
  const double buffered_fraction =
      (s.energy_buffer_nj / 5.0) /
      (s.energy_crossbar_nj / derive_energy_params(dxbar_cfg).crossbar_pj);
  EXPECT_LT(buffered_fraction, 0.25);
  EXPECT_GT(buffered_fraction, 0.01);
}

}  // namespace
}  // namespace dxbar
