// Unit and property tests for alloc/: arbiters, separable allocator,
// unified dual-input allocator, fairness counter.
#include <gtest/gtest.h>

#include "alloc/arbiter.hpp"
#include "alloc/fairness.hpp"
#include "alloc/separable_allocator.hpp"
#include "alloc/unified_allocator.hpp"
#include "common/rng.hpp"

namespace dxbar {
namespace {

TEST(RoundRobin, GrantsRotate) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.grant(0b1111), 0);
  EXPECT_EQ(arb.grant(0b1111), 1);
  EXPECT_EQ(arb.grant(0b1111), 2);
  EXPECT_EQ(arb.grant(0b1111), 3);
  EXPECT_EQ(arb.grant(0b1111), 0);
}

TEST(RoundRobin, SkipsNonRequesters) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.grant(0b0100), 2);
  EXPECT_EQ(arb.grant(0b0011), 0);  // priority pointer at 3, wraps to 0
  EXPECT_EQ(arb.grant(0b0010), 1);
}

TEST(RoundRobin, NoRequests) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.grant(0), -1);
  EXPECT_EQ(arb.pick(0), -1);
}

TEST(RoundRobin, FairnessOverManyCycles) {
  RoundRobinArbiter arb(3);
  int wins[3] = {0, 0, 0};
  for (int i = 0; i < 300; ++i) ++wins[arb.grant(0b111)];
  EXPECT_EQ(wins[0], 100);
  EXPECT_EQ(wins[1], 100);
  EXPECT_EQ(wins[2], 100);
}

TEST(PickOldest, FindsOldestAndHandlesNulls) {
  Flit a{.packet = 1, .born_at = 30};
  Flit b{.packet = 2, .born_at = 10};
  Flit c{.packet = 3, .born_at = 20};
  const Flit* cands[4] = {&a, nullptr, &b, &c};
  EXPECT_EQ(pick_oldest(cands), 2);

  const Flit* none[2] = {nullptr, nullptr};
  EXPECT_EQ(pick_oldest(none), -1);
}

// ---- separable allocator -----------------------------------------------

bool grants_are_legal(const std::vector<std::uint32_t>& req,
                      const std::vector<int>& grant, int num_outputs) {
  std::vector<int> out_owner(static_cast<std::size_t>(num_outputs), -1);
  for (std::size_t i = 0; i < grant.size(); ++i) {
    const int o = grant[i];
    if (o < 0) continue;
    if (!(req[i] & (1u << o))) return false;            // unrequested grant
    if (out_owner[static_cast<std::size_t>(o)] >= 0) return false;  // dup
    out_owner[static_cast<std::size_t>(o)] = static_cast<int>(i);
  }
  return true;
}

TEST(Separable, SingleRequestGranted) {
  SeparableAllocator alloc(5, 5);
  std::vector<std::uint32_t> req(5, 0);
  req[2] = 0b00010;  // input 2 wants output 1
  const auto g = alloc.allocate(req);
  EXPECT_EQ(g[2], 1);
  EXPECT_TRUE(grants_are_legal(req, g, 5));
}

TEST(Separable, ConflictGrantsExactlyOne) {
  SeparableAllocator alloc(5, 5);
  std::vector<std::uint32_t> req(5, 0);
  req[0] = req[1] = req[2] = 0b00001;  // all want output 0
  const auto g = alloc.allocate(req);
  int winners = 0;
  for (int i = 0; i < 5; ++i) {
    if (g[static_cast<std::size_t>(i)] == 0) ++winners;
  }
  EXPECT_EQ(winners, 1);
  EXPECT_TRUE(grants_are_legal(req, g, 5));
}

TEST(Separable, DisjointRequestsAllGranted) {
  SeparableAllocator alloc(5, 5);
  std::vector<std::uint32_t> req(5, 0);
  for (int i = 0; i < 5; ++i) req[static_cast<std::size_t>(i)] = 1u << i;
  const auto g = alloc.allocate(req);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(g[static_cast<std::size_t>(i)], i);
}

// Property: random request matrices always yield legal matchings, and
// any input whose every requested output went ungranted to anyone would
// contradict output-first arbitration (maximality at the output stage).
TEST(Separable, RandomRequestsAlwaysLegal) {
  SeparableAllocator alloc(5, 5);
  Rng rng(123);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint32_t> req(5);
    for (auto& r : req) r = static_cast<std::uint32_t>(rng()) & 0x1F;
    const auto g = alloc.allocate(req);
    ASSERT_TRUE(grants_are_legal(req, g, 5));
    // Output-stage maximality: a requested output with no winner at all
    // means no input requested it (stage 1 always picks a requester).
    std::uint32_t requested = 0, granted = 0;
    for (int i = 0; i < 5; ++i) {
      requested |= req[static_cast<std::size_t>(i)];
      if (g[static_cast<std::size_t>(i)] >= 0) {
        granted |= 1u << g[static_cast<std::size_t>(i)];
      }
    }
    // Every requested output was won by someone at stage 1; stage 2 can
    // drop it only if that input also won another output.  So at least
    // one grant exists whenever any request exists.
    if (requested != 0) {
      ASSERT_NE(granted, 0u);
    }
  }
}

TEST(Separable, LongRunFairness) {
  SeparableAllocator alloc(2, 1);
  std::vector<std::uint32_t> req = {1, 1};  // both always want output 0
  int wins[2] = {0, 0};
  for (int i = 0; i < 1000; ++i) {
    const auto g = alloc.allocate(req);
    for (int k = 0; k < 2; ++k) {
      if (g[static_cast<std::size_t>(k)] == 0) ++wins[k];
    }
  }
  EXPECT_EQ(wins[0] + wins[1], 1000);
  EXPECT_NEAR(wins[0], 500, 1);
}

// ---- unified dual-input allocator --------------------------------------

UnifiedCandidate cand(std::uint32_t mask, std::uint64_t age,
                      bool elevated = false) {
  return {true, mask, age, elevated};
}

bool unified_legal(const std::array<UnifiedPortRequest, kNumPorts>& req,
                   const UnifiedGrants& g) {
  std::array<int, kNumPorts> owner;
  owner.fill(-1);
  for (int p = 0; p < kNumPorts; ++p) {
    const auto& pg = g.port[static_cast<std::size_t>(p)];
    const auto& pr = req[static_cast<std::size_t>(p)];
    if (pg.incoming_out >= 0) {
      if (!pr.incoming.valid) return false;
      if (!(pr.incoming.request_mask & (1u << pg.incoming_out))) return false;
      if (owner[static_cast<std::size_t>(pg.incoming_out)] >= 0) return false;
      owner[static_cast<std::size_t>(pg.incoming_out)] = p;
    }
    if (pg.buffered_out >= 0) {
      if (!pr.buffered.valid) return false;
      if (!(pr.buffered.request_mask & (1u << pg.buffered_out))) return false;
      if (owner[static_cast<std::size_t>(pg.buffered_out)] >= 0) return false;
      owner[static_cast<std::size_t>(pg.buffered_out)] = p;
    }
  }
  return true;
}

TEST(Unified, DualGrantSameInputPort) {
  // The headline capability: I0 -> O2 while I0' -> O3 simultaneously.
  UnifiedAllocator alloc;
  std::array<UnifiedPortRequest, kNumPorts> req{};
  req[0].incoming = cand(1u << 2, 10);
  req[0].buffered = cand(1u << 3, 20);
  const auto g = alloc.allocate(req, true);
  EXPECT_EQ(g.port[0].incoming_out, 2);
  EXPECT_EQ(g.port[0].buffered_out, 3);
  EXPECT_TRUE(unified_legal(req, g));
}

TEST(Unified, ConflictSwapFiresWhenBindingsCross) {
  // Both flits of port 1 won outputs, but the naive binding crosses:
  // incoming wants only O4, buffered wants only O2; the won set is
  // {O2, O4} with O2 first — direct binding fails, swap fixes it.
  UnifiedAllocator alloc;
  std::array<UnifiedPortRequest, kNumPorts> req{};
  req[1].incoming = cand(1u << 4, 5);
  req[1].buffered = cand(1u << 2, 7);
  const auto g = alloc.allocate(req, true);
  EXPECT_EQ(g.port[1].incoming_out, 4);
  EXPECT_EQ(g.port[1].buffered_out, 2);
  EXPECT_GE(g.swaps, 1);
  EXPECT_TRUE(unified_legal(req, g));
}

TEST(Unified, IncomingPriorityWinsContestedOutput) {
  UnifiedAllocator alloc;
  std::array<UnifiedPortRequest, kNumPorts> req{};
  req[0].incoming = cand(1u << 1, 50);  // younger incoming
  req[2].buffered = cand(1u << 1, 10);  // older buffered
  const auto g = alloc.allocate(req, /*incoming_priority=*/true);
  EXPECT_EQ(g.port[0].incoming_out, 1);
  EXPECT_EQ(g.port[2].buffered_out, -1);

  // Fairness flip: the buffered flit now outranks the incoming one.
  const auto flipped = alloc.allocate(req, /*incoming_priority=*/false);
  EXPECT_EQ(flipped.port[0].incoming_out, -1);
  EXPECT_EQ(flipped.port[2].buffered_out, 1);
}

TEST(Unified, AgeBreaksTiesWithinClass) {
  UnifiedAllocator alloc;
  std::array<UnifiedPortRequest, kNumPorts> req{};
  req[0].incoming = cand(1u << 0, 30);
  req[1].incoming = cand(1u << 0, 10);  // older, must win
  const auto g = alloc.allocate(req, true);
  EXPECT_EQ(g.port[0].incoming_out, -1);
  EXPECT_EQ(g.port[1].incoming_out, 0);
}

TEST(Unified, ElevatedCandidateOutranksFavouredClass) {
  UnifiedAllocator alloc;
  std::array<UnifiedPortRequest, kNumPorts> req{};
  req[0].incoming = cand(1u << 0, 5);
  req[1].buffered = cand(1u << 0, 50, /*elevated=*/true);
  const auto g = alloc.allocate(req, true);
  // Elevated buffered ties at class 0 with the incoming flit; the older
  // (age 5) incoming still wins on age.
  EXPECT_EQ(g.port[0].incoming_out, 0);

  req[1].buffered.age = 1;  // now older too
  const auto g2 = alloc.allocate(req, true);
  EXPECT_EQ(g2.port[1].buffered_out, 0);
}

// Property: random request matrices always produce legal grants, and
// whenever a port's two flits requested two disjoint singleton outputs
// that no other port contests, both get granted.
TEST(Unified, RandomRequestsAlwaysLegal) {
  UnifiedAllocator alloc;
  Rng rng(77);
  for (int iter = 0; iter < 3000; ++iter) {
    std::array<UnifiedPortRequest, kNumPorts> req{};
    for (int p = 0; p < kNumPorts; ++p) {
      if (rng.bernoulli(0.6)) {
        req[static_cast<std::size_t>(p)].incoming =
            cand(static_cast<std::uint32_t>(rng()) & 0x1F, rng() & 0xFF);
      }
      if (rng.bernoulli(0.6)) {
        req[static_cast<std::size_t>(p)].buffered =
            cand(static_cast<std::uint32_t>(rng()) & 0x1F, rng() & 0xFF);
      }
    }
    const bool prio = rng.bernoulli(0.5);
    const auto g = alloc.allocate(req, prio);
    ASSERT_TRUE(unified_legal(req, g));
  }
}

TEST(Unified, UncontestedDisjointSingletonsBothGranted) {
  UnifiedAllocator alloc;
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    const int o1 = static_cast<int>(rng.below(kNumPorts));
    int o2 = static_cast<int>(rng.below(kNumPorts));
    if (o2 == o1) o2 = (o1 + 1) % kNumPorts;
    std::array<UnifiedPortRequest, kNumPorts> req{};
    req[3].incoming = cand(1u << o1, rng() & 0xFF);
    req[3].buffered = cand(1u << o2, rng() & 0xFF);
    const auto g = alloc.allocate(req, true);
    EXPECT_EQ(g.port[3].incoming_out, o1);
    EXPECT_EQ(g.port[3].buffered_out, o2);
  }
}

// ---- fairness counter ---------------------------------------------------

TEST(Fairness, FlipsAfterThresholdConsecutiveWins) {
  FairnessCounter fc(4);
  for (int i = 0; i < 3; ++i) {
    fc.record(true, false, true);
    EXPECT_FALSE(fc.flipped());
  }
  fc.record(true, false, true);
  EXPECT_TRUE(fc.flipped());
}

TEST(Fairness, WaitingWinResets) {
  FairnessCounter fc(4);
  fc.record(true, false, true);
  fc.record(true, false, true);
  fc.record(true, true, true);  // a waiting flit got through
  EXPECT_EQ(fc.count(), 0);
  EXPECT_FALSE(fc.flipped());
}

TEST(Fairness, CounterIdleWithoutWaiters) {
  FairnessCounter fc(2);
  for (int i = 0; i < 10; ++i) fc.record(false, false, true);
  EXPECT_FALSE(fc.flipped());
  EXPECT_EQ(fc.count(), 0);
}

TEST(Fairness, FlipClearsOnceServed) {
  FairnessCounter fc(2);
  fc.record(true, false, true);
  fc.record(true, false, true);
  EXPECT_TRUE(fc.flipped());
  fc.record(true, true, false);  // flip cycle: waiting flit served
  EXPECT_FALSE(fc.flipped());
}

}  // namespace
}  // namespace dxbar
