// Tests for the link-fault extension: plan properties, the fault-aware
// route table, and end-to-end delivery on degraded topologies.
#include <gtest/gtest.h>

#include <tuple>

#include "fault/link_faults.hpp"
#include "routing/route_table.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

// ---- plan ------------------------------------------------------------------

TEST(LinkFaultPlan, NoneKillsNothing) {
  const Mesh m(8, 8);
  const auto p = LinkFaultPlan::none(m);
  EXPECT_EQ(p.num_dead_edges(), 0);
  EXPECT_FALSE(p.any());
  for (NodeId n = 0; n < 64; ++n) {
    for (Direction d : kLinkDirs) EXPECT_TRUE(p.alive(n, d));
  }
}

TEST(LinkFaultPlan, KillsBothDirections) {
  const Mesh m(8, 8);
  const LinkFaultPlan p(m, 0.2, 7);
  EXPECT_GT(p.num_dead_edges(), 0);
  for (NodeId n = 0; n < 64; ++n) {
    for (Direction d : kLinkDirs) {
      if (!m.has_link(n, d)) continue;
      const NodeId nb = *m.neighbor(n, d);
      EXPECT_EQ(p.alive(n, d), p.alive(nb, opposite(d)))
          << "edge liveness must be symmetric";
    }
  }
}

TEST(LinkFaultPlan, NeverDisconnects) {
  const Mesh m(8, 8);
  // Even an absurd fraction must keep a spanning tree alive.
  const LinkFaultPlan p(m, 1.0, 3);
  // BFS over live links reaches every node.
  std::vector<bool> seen(64, false);
  std::vector<NodeId> q{0};
  seen[0] = true;
  std::size_t head = 0;
  while (head < q.size()) {
    const NodeId cur = q[head++];
    for (Direction d : kLinkDirs) {
      if (!m.has_link(cur, d) || !p.alive(cur, d)) continue;
      const NodeId nb = *m.neighbor(cur, d);
      if (!seen[nb]) {
        seen[nb] = true;
        q.push_back(nb);
      }
    }
  }
  EXPECT_EQ(q.size(), 64u);
  // A spanning tree needs 63 edges; the mesh has 112 -> at most 49 die.
  EXPECT_LE(p.num_dead_edges(), 112 - 63);
  EXPECT_GT(p.num_dead_edges(), 20);
}

TEST(LinkFaultPlan, MonotoneInFraction) {
  const Mesh m(8, 8);
  const LinkFaultPlan p10(m, 0.1, 5);
  const LinkFaultPlan p30(m, 0.3, 5);
  for (NodeId n = 0; n < 64; ++n) {
    for (Direction d : kLinkDirs) {
      if (!p10.alive(n, d)) {
        EXPECT_FALSE(p30.alive(n, d));
      }
    }
  }
  EXPECT_GT(p30.num_dead_edges(), p10.num_dead_edges());
}

// ---- route table --------------------------------------------------------------

TEST(RouteTable, MatchesManhattanOnHealthyMesh) {
  const Mesh m(6, 6);
  const RouteTable table(m, [](NodeId, Direction) { return true; });
  for (NodeId a = 0; a < 36; ++a) {
    for (NodeId b = 0; b < 36; ++b) {
      EXPECT_EQ(table.distance(a, b), m.distance(a, b));
    }
  }
}

TEST(RouteTable, RoutesAroundDeadLink) {
  const Mesh m(4, 4);
  // Kill the edge (1,1)->(2,1) in both directions.
  const NodeId a = m.node(1, 1);
  const NodeId b = m.node(2, 1);
  auto alive = [&](NodeId n, Direction d) {
    if (n == a && d == Direction::East) return false;
    if (n == b && d == Direction::West) return false;
    return true;
  };
  const RouteTable table(m, alive);
  // Distance grows by 2 (detour), and the dead direction never appears.
  EXPECT_EQ(table.distance(a, b), 3);
  const RouteSet r = table.routes(a, b);
  EXPECT_FALSE(r.contains(Direction::East));
  EXPECT_FALSE(r.empty());
  // Every offered next hop really is one step closer.
  for (Direction d : r) {
    const NodeId nb = *m.neighbor(a, d);
    EXPECT_EQ(table.distance(nb, b), 2);
  }
}

TEST(RouteTable, AllRoutesDescendToDestination) {
  const Mesh m(5, 4);
  const LinkFaultPlan plan(m, 0.25, 9);
  const RouteTable table(
      m, [&](NodeId n, Direction d) { return plan.alive(n, d); });
  for (NodeId s = 0; s < 20; ++s) {
    for (NodeId t = 0; t < 20; ++t) {
      if (s == t) continue;
      const RouteSet r = table.routes(s, t);
      ASSERT_FALSE(r.empty());
      for (Direction d : r) {
        ASSERT_TRUE(plan.alive(s, d));
        const NodeId nb = *m.neighbor(s, d);
        ASSERT_EQ(table.distance(nb, t), table.distance(s, t) - 1);
      }
    }
  }
}

// ---- end-to-end ------------------------------------------------------------------

class LinkFaultDeliveryTest
    : public ::testing::TestWithParam<std::tuple<RouterDesign, double>> {};

TEST_P(LinkFaultDeliveryTest, EveryFlitDeliveredOnDegradedMesh) {
  SimConfig cfg;
  cfg.design = std::get<0>(GetParam());
  cfg.link_fault_fraction = std::get<1>(GetParam());
  cfg.offered_load = 0.15;
  cfg.packet_length = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 800;
  cfg.seed = 17;

  Network net(cfg);
  EXPECT_GT(net.link_faults().num_dead_edges(), 0);
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 800; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 120000 && !net.idle(); ++t) net.step();
  ASSERT_TRUE(net.idle()) << "degraded mesh failed to drain";
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndFractions, LinkFaultDeliveryTest,
    ::testing::Combine(::testing::Values(RouterDesign::DXbar,
                                         RouterDesign::UnifiedXbar,
                                         RouterDesign::FlitBless,
                                         RouterDesign::Scarab,
                                         RouterDesign::Afc,
                                         RouterDesign::MinBD),
                       ::testing::Values(0.1, 0.3)),
    [](const auto& info) {
      std::string name =
          std::string(to_string(std::get<0>(info.param))) + "_lf" +
          std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(LinkFaults, CreditOnlyDesignsAreRejected) {
  // Turn-model deadlock freedom does not survive table routing; designs
  // without a deflection escape valve must refuse the configuration.
  SimConfig cfg;
  cfg.link_fault_fraction = 0.1;
  for (RouterDesign d : {RouterDesign::Buffered4, RouterDesign::Buffered8,
                         RouterDesign::BufferedVC}) {
    cfg.design = d;
    EXPECT_NE(cfg.validate(), "") << to_string(d);
  }
  cfg.design = RouterDesign::DXbar;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(LinkFaults, LatencyGrowsWithDeadEdges) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.15;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1200;

  const RunStats healthy = run_open_loop(cfg);
  cfg.link_fault_fraction = 0.25;
  const RunStats degraded = run_open_loop(cfg);
  EXPECT_GT(degraded.avg_hops, healthy.avg_hops);
  EXPECT_GT(degraded.avg_packet_latency, healthy.avg_packet_latency);
  EXPECT_TRUE(degraded.drained);
}

}  // namespace
}  // namespace dxbar
