// Unit and property tests for routing/: DOR, West-First turn model,
// deflection ranking.
#include <gtest/gtest.h>

#include "routing/deflect.hpp"
#include "routing/dor.hpp"
#include "routing/routing_algorithm.hpp"
#include "routing/west_first.hpp"

namespace dxbar {
namespace {

TEST(Dor, ResolvesXBeforeY) {
  const Mesh m(8, 8);
  EXPECT_EQ(dor_route(m, m.node(2, 2), m.node(5, 6)), Direction::East);
  EXPECT_EQ(dor_route(m, m.node(5, 2), m.node(5, 6)), Direction::North);
  EXPECT_EQ(dor_route(m, m.node(5, 6), m.node(2, 2)), Direction::West);
  EXPECT_EQ(dor_route(m, m.node(2, 6), m.node(2, 2)), Direction::South);
  EXPECT_EQ(dor_route(m, m.node(3, 3), m.node(3, 3)), Direction::Local);
}

// Property: following DOR from any source always reaches the destination
// in exactly the Manhattan distance.
TEST(Dor, AlwaysMinimalAndTerminates) {
  const Mesh m(6, 5);
  for (NodeId s = 0; s < static_cast<NodeId>(m.num_nodes()); ++s) {
    for (NodeId d = 0; d < static_cast<NodeId>(m.num_nodes()); ++d) {
      NodeId cur = s;
      int hops = 0;
      while (cur != d) {
        const Direction dir = dor_route(m, cur, d);
        ASSERT_NE(dir, Direction::Local);
        const auto next = m.neighbor(cur, dir);
        ASSERT_TRUE(next.has_value());
        cur = *next;
        ++hops;
        ASSERT_LE(hops, m.distance(s, d));
      }
      EXPECT_EQ(hops, m.distance(s, d));
    }
  }
}

TEST(WestFirst, WestIsExclusiveWhenDestinationIsWest) {
  const Mesh m(8, 8);
  const RouteSet r = wf_routes(m, m.node(5, 3), m.node(2, 6));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], Direction::West);
}

TEST(WestFirst, AdaptiveWhenDestinationIsEastOrAligned) {
  const Mesh m(8, 8);
  const RouteSet r = wf_routes(m, m.node(2, 2), m.node(5, 6));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.contains(Direction::East));
  EXPECT_TRUE(r.contains(Direction::North));

  const RouteSet straight = wf_routes(m, m.node(2, 2), m.node(5, 2));
  ASSERT_EQ(straight.size(), 1u);
  EXPECT_EQ(straight[0], Direction::East);
}

TEST(WestFirst, LocalWhenArrived) {
  const Mesh m(4, 4);
  const RouteSet r = wf_routes(m, m.node(1, 1), m.node(1, 1));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], Direction::Local);
}

TEST(WestFirst, TurnLegality) {
  // Forbidden: entering West after travelling North or South.
  EXPECT_FALSE(wf_turn_legal(Direction::North, Direction::West));
  EXPECT_FALSE(wf_turn_legal(Direction::South, Direction::West));
  EXPECT_TRUE(wf_turn_legal(Direction::West, Direction::West));
  EXPECT_TRUE(wf_turn_legal(Direction::East, Direction::West));  // U-turnish
  EXPECT_TRUE(wf_turn_legal(Direction::North, Direction::East));
  EXPECT_TRUE(wf_turn_legal(Direction::South, Direction::North));
}

// Property: every route WF produces is minimal AND never makes a
// forbidden turn across two consecutive hops, for every (src, dst) pair
// and every adaptive choice.
TEST(WestFirst, NoIllegalTurnReachableProperty) {
  const Mesh m(5, 5);
  for (NodeId s = 0; s < static_cast<NodeId>(m.num_nodes()); ++s) {
    for (NodeId d = 0; d < static_cast<NodeId>(m.num_nodes()); ++d) {
      if (s == d) continue;
      // BFS over (position, last direction) states reachable via WF.
      struct State {
        NodeId at;
        Direction came;
      };
      std::vector<State> stack{{s, Direction::Local}};
      int guard = 0;
      while (!stack.empty() && ++guard < 1000) {
        const State st = stack.back();
        stack.pop_back();
        if (st.at == d) continue;
        const RouteSet routes = wf_routes(m, st.at, d);
        ASSERT_FALSE(routes.empty());
        for (Direction dir : routes) {
          ASSERT_NE(dir, Direction::Local);
          if (st.came != Direction::Local) {
            ASSERT_TRUE(wf_turn_legal(st.came, dir))
                << "illegal turn " << to_string(st.came) << "->"
                << to_string(dir);
          }
          const auto next = m.neighbor(st.at, dir);
          ASSERT_TRUE(next.has_value());
          ASSERT_LT(m.distance(*next, d), m.distance(st.at, d));
          stack.push_back({*next, dir});
        }
      }
    }
  }
}

TEST(Deflect, ProductivePortsRankFirst) {
  const Mesh m(8, 8);
  const NodeId cur = m.node(2, 2);
  const NodeId dst = m.node(5, 5);
  const auto ranking = deflection_ranking(m, cur, dst, 0);
  // First two must be the productive East/North in some order.
  EXPECT_TRUE((ranking[0] == Direction::East && ranking[1] == Direction::North) ||
              (ranking[0] == Direction::North && ranking[1] == Direction::East));
}

TEST(Deflect, MissingEdgeLinksRankLast) {
  const Mesh m(4, 4);
  const NodeId corner = m.node(0, 0);
  const auto ranking = deflection_ranking(m, corner, m.node(3, 3), 0);
  // West and South do not exist at the corner and must rank behind the
  // two existing links.
  EXPECT_TRUE(ranking[2] == Direction::West || ranking[2] == Direction::South);
  EXPECT_TRUE(ranking[3] == Direction::West || ranking[3] == Direction::South);
}

TEST(Deflect, IsProductiveMatchesDistance) {
  const Mesh m(8, 8);
  const NodeId cur = m.node(4, 4);
  EXPECT_TRUE(is_productive(m, cur, m.node(6, 4), Direction::East));
  EXPECT_FALSE(is_productive(m, cur, m.node(6, 4), Direction::West));
  EXPECT_FALSE(is_productive(m, cur, m.node(6, 4), Direction::North));
  EXPECT_FALSE(is_productive(m, cur, m.node(4, 4), Direction::East));
}

TEST(Deflect, RankingIsAPermutation) {
  const Mesh m(8, 8);
  for (std::uint64_t salt = 0; salt < 16; ++salt) {
    const auto r = deflection_ranking(m, m.node(3, 3), m.node(1, 6), salt);
    std::array<bool, kNumLinkDirs> seen{};
    for (Direction d : r) seen[port_index(d)] = true;
    for (bool b : seen) EXPECT_TRUE(b);
  }
}

TEST(RoutingAlgorithm, DispatchesPerAlgo) {
  const Mesh m(8, 8);
  const RouteSet dor = compute_routes(RoutingAlgo::DOR, m, m.node(2, 2),
                                      m.node(5, 6));
  ASSERT_EQ(dor.size(), 1u);
  EXPECT_EQ(dor[0], Direction::East);

  const RouteSet wf = compute_routes(RoutingAlgo::WestFirst, m, m.node(2, 2),
                                     m.node(5, 6));
  EXPECT_EQ(wf.size(), 2u);
}

// Property sweep: for every pair, DOR's port is always contained in some
// minimal direction set and WF contains DOR's x-first choice when the
// destination is not to the west.
TEST(RoutingAlgorithm, DorConsistentWithWf) {
  const Mesh m(6, 6);
  for (NodeId s = 0; s < static_cast<NodeId>(m.num_nodes()); ++s) {
    for (NodeId d = 0; d < static_cast<NodeId>(m.num_nodes()); ++d) {
      if (s == d) continue;
      const Direction xy = dor_route(m, s, d);
      const RouteSet wf = wf_routes(m, s, d);
      if (m.coord(d).x != m.coord(s).x) {
        // X not resolved: DOR goes east/west; WF must offer the same.
        EXPECT_TRUE(wf.contains(xy));
      }
    }
  }
}

}  // namespace
}  // namespace dxbar
