// Tests for fault/: plan generation, seed stability, detection delay.
#include <gtest/gtest.h>

#include "fault/fault_model.hpp"

namespace dxbar {
namespace {

int count_faulty(const FaultPlan& p, int n) {
  int c = 0;
  for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
    if (p.at(i).faulty) ++c;
  }
  return c;
}

TEST(FaultPlan, NoneHasNoFaults) {
  const auto p = FaultPlan::none(64);
  EXPECT_EQ(count_faulty(p, 64), 0);
  EXPECT_EQ(p.num_faulty(), 0);
  for (NodeId i = 0; i < 64; ++i) {
    EXPECT_FALSE(p.manifest(i, 1000));
    EXPECT_FALSE(p.detected(i, 1000));
  }
}

TEST(FaultPlan, FractionControlsCount) {
  EXPECT_EQ(count_faulty(FaultPlan(64, 0.25, 1), 64), 16);
  EXPECT_EQ(count_faulty(FaultPlan(64, 0.50, 1), 64), 32);
  EXPECT_EQ(count_faulty(FaultPlan(64, 1.00, 1), 64), 64);
  EXPECT_EQ(count_faulty(FaultPlan(64, 0.30, 1), 64), 20);  // ceil(19.2)
}

// Paper methodology: "randomly generated at different crossbars with the
// same random seed but varying percentages" — growing the percentage
// must extend, not reshuffle, the fault set.
TEST(FaultPlan, SameSeedFaultSetsAreNested) {
  const FaultPlan p25(64, 0.25, 7);
  const FaultPlan p50(64, 0.50, 7);
  const FaultPlan p75(64, 0.75, 7);
  for (NodeId i = 0; i < 64; ++i) {
    if (p25.at(i).faulty) {
      EXPECT_TRUE(p50.at(i).faulty);
      // The failed crossbar choice is stable across fractions too.
      EXPECT_EQ(p25.at(i).failed, p50.at(i).failed);
    }
    if (p50.at(i).faulty) {
      EXPECT_TRUE(p75.at(i).faulty);
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a(64, 0.25, 1);
  const FaultPlan b(64, 0.25, 2);
  int differing = 0;
  for (NodeId i = 0; i < 64; ++i) {
    if (a.at(i).faulty != b.at(i).faulty) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, BothCrossbarKindsOccur) {
  const FaultPlan p(64, 1.0, 3);
  int primary = 0, secondary = 0;
  for (NodeId i = 0; i < 64; ++i) {
    if (p.at(i).failed == CrossbarKind::Primary) {
      ++primary;
    } else {
      ++secondary;
    }
  }
  EXPECT_GT(primary, 10);
  EXPECT_GT(secondary, 10);
}

TEST(FaultPlan, DetectionLagsManifestationByDelay) {
  const FaultPlan p(16, 1.0, 5, /*onset_spread=*/1, /*detect_delay=*/5);
  for (NodeId i = 0; i < 16; ++i) {
    ASSERT_TRUE(p.at(i).faulty);
    EXPECT_TRUE(p.manifest(i, 0));
    EXPECT_FALSE(p.detected(i, 0));
    EXPECT_FALSE(p.detected(i, 4));
    EXPECT_TRUE(p.detected(i, 5));
  }
  EXPECT_EQ(p.detect_delay(), 5u);
}

TEST(FaultPlan, OnsetSpreadStaggersFaults) {
  const FaultPlan p(64, 1.0, 9, /*onset_spread=*/1000);
  Cycle min_onset = ~Cycle{0};
  Cycle max_onset = 0;
  for (NodeId i = 0; i < 64; ++i) {
    min_onset = std::min(min_onset, p.at(i).onset);
    max_onset = std::max(max_onset, p.at(i).onset);
    EXPECT_LT(p.at(i).onset, 1000u);
  }
  EXPECT_LT(min_onset, max_onset);
}

TEST(FaultPlan, ZeroFractionEdgeCases) {
  const FaultPlan p(64, 0.0, 1);
  EXPECT_EQ(p.num_faulty(), 0);
  // A tiny positive fraction still faults at least one router (ceil).
  const FaultPlan q(64, 0.001, 1);
  EXPECT_EQ(q.num_faulty(), 1);
}

}  // namespace
}  // namespace dxbar
