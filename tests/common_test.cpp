// Unit tests for common/: types, rng, fixed queue, config, stats.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/fixed_queue.hpp"
#include "common/flit.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/text.hpp"

namespace dxbar {
namespace {

TEST(Text, GlobMatchStarAndQuestion) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig*", "fig5"));
  EXPECT_TRUE(glob_match("fig*", "fig"));
  EXPECT_FALSE(glob_match("fig*", "table1"));
  EXPECT_TRUE(glob_match("fig1?", "fig10"));
  EXPECT_FALSE(glob_match("fig1?", "fig1"));
  EXPECT_TRUE(glob_match("*_sat*", "table_saturation"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("fig5", "fig5"));  // literal, no wildcards
}

TEST(Types, OppositeIsInvolution) {
  for (Direction d : kLinkDirs) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
  }
  EXPECT_EQ(opposite(Direction::Local), Direction::Local);
}

TEST(Types, PortIndexRoundTrip) {
  for (int i = 0; i < kNumPorts; ++i) {
    EXPECT_EQ(port_index(port_from_index(i)), i);
  }
}

TEST(Flit, AgeOrderingIsTotalAndDeterministic) {
  Flit a{.packet = 1, .born_at = 10};
  Flit b{.packet = 2, .born_at = 5};
  EXPECT_TRUE(b.older_than(a));
  EXPECT_FALSE(a.older_than(b));

  Flit c{.packet = 3, .born_at = 10};
  EXPECT_TRUE(a.older_than(c));  // same age: lower packet id wins
  EXPECT_FALSE(c.older_than(a));
  EXPECT_FALSE(a.older_than(a));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    if (x != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(10), 10u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(FixedQueue, FifoOrder) {
  FixedQueue<int> q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(4));  // overflow rejected, nothing lost
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.push(4));
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, TryPushProbesWithoutAsserting) {
  FixedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front(), 1);
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(NDEBUG)
// push() (unlike try_push) promises space exists; violating that is a
// programming error that must be caught loudly in debug builds instead
// of silently truncating traffic.
TEST(FixedQueueDeathTest, PushToFullAsserts) {
  FixedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  EXPECT_DEATH((void)q.push(2), "full");
}

TEST(FixedQueueDeathTest, PopFromEmptyAsserts) {
  FixedQueue<int> q(1);
  EXPECT_DEATH((void)q.pop(), "empty");
}
#endif

TEST(FixedQueue, WrapsAroundManyTimes) {
  FixedQueue<int> q(4);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (!q.full()) q.push(next_in++);
    while (!q.empty()) EXPECT_EQ(q.pop(), next_out++);
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(FixedQueue, AtIndexesFromHead) {
  FixedQueue<int> q(4);
  q.push(10);
  q.push(11);
  q.push(12);
  q.pop();
  q.push(13);
  EXPECT_EQ(q.at(0), 11);
  EXPECT_EQ(q.at(1), 12);
  EXPECT_EQ(q.at(2), 13);
}

TEST(Config, DefaultsValid) {
  SimConfig cfg;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(Config, OverridesApply) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "design=bless"), "");
  EXPECT_EQ(cfg.design, RouterDesign::FlitBless);
  EXPECT_EQ(apply_override(cfg, "routing=wf"), "");
  EXPECT_EQ(cfg.routing, RoutingAlgo::WestFirst);
  EXPECT_EQ(apply_override(cfg, "load=0.55"), "");
  EXPECT_DOUBLE_EQ(cfg.offered_load, 0.55);
  EXPECT_EQ(apply_override(cfg, "pattern=tornado"), "");
  EXPECT_EQ(cfg.pattern, TrafficPattern::Tornado);
  EXPECT_EQ(apply_override(cfg, "width=4"), "");
  EXPECT_EQ(cfg.mesh_width, 4);
  EXPECT_EQ(apply_override(cfg, "faults=0.5"), "");
  EXPECT_DOUBLE_EQ(cfg.fault_fraction, 0.5);
}

TEST(Config, RejectsBadInput) {
  SimConfig cfg;
  EXPECT_NE(apply_override(cfg, "nonsense=1"), "");
  EXPECT_NE(apply_override(cfg, "design=unknown"), "");
  EXPECT_NE(apply_override(cfg, "load=abc"), "");
  EXPECT_NE(apply_override(cfg, "noequals"), "");
}

TEST(Config, ValidateCatchesBadRanges) {
  SimConfig cfg;
  cfg.offered_load = 1.5;
  EXPECT_NE(cfg.validate(), "");
  cfg = SimConfig{};
  cfg.mesh_width = 1;
  EXPECT_NE(cfg.validate(), "");
  cfg = SimConfig{};
  cfg.fault_fraction = -0.1;
  EXPECT_NE(cfg.validate(), "");
  cfg = SimConfig{};
  cfg.buffer_depth = 0;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, ParseDesignNames) {
  RouterDesign d;
  EXPECT_TRUE(parse_design("DXbar", d));
  EXPECT_EQ(d, RouterDesign::DXbar);
  EXPECT_TRUE(parse_design("buffered8", d));
  EXPECT_EQ(d, RouterDesign::Buffered8);
  EXPECT_TRUE(parse_design("unified", d));
  EXPECT_EQ(d, RouterDesign::UnifiedXbar);
  EXPECT_TRUE(parse_design("scarab", d));
  EXPECT_EQ(d, RouterDesign::Scarab);
  EXPECT_FALSE(parse_design("", d));
}

TEST(Stats, WindowedThroughputCountsOnlyWindowEjections) {
  StatsCollector sc(100, 200, 4);
  Flit f;
  sc.on_flit_ejected(f, 50);    // before window
  sc.on_flit_ejected(f, 100);   // in window
  sc.on_flit_ejected(f, 199);   // in window
  sc.on_flit_ejected(f, 200);   // after window
  const RunStats s = sc.summarize(0.5, true);
  EXPECT_EQ(s.flits_ejected, 2u);
  // 2 flits / (100 cycles * 4 nodes)
  EXPECT_DOUBLE_EQ(s.accepted_load, 2.0 / 400.0);
}

TEST(Stats, LatencyAveragesOnlyWindowPackets) {
  StatsCollector sc(100, 200, 4);
  PacketRecord in_window{.id = 1, .length = 1, .created = 150,
                         .injected = 150, .completed = 170};
  PacketRecord outside{.id = 2, .length = 1, .created = 50,
                       .injected = 50, .completed = 90};
  sc.on_packet_completed(in_window);
  sc.on_packet_completed(outside);
  const RunStats s = sc.summarize(0.5, true);
  EXPECT_EQ(s.packets_completed, 1u);
  EXPECT_DOUBLE_EQ(s.avg_packet_latency, 20.0);
}

TEST(Stats, AccumulatorTracksMinMeanMax) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  a.add(6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_EQ(a.count(), 3u);
}

}  // namespace
}  // namespace dxbar
