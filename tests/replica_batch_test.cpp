// The replica engine's contract: batching K simulations into lockstep
// lanes — cold or forked from one shared warm snapshot — changes
// execution order and memory locality, never results.  Every test here
// compares against plain run_open_loop on the same configs, field- or
// byte-exactly, across router designs (devirtualized batched stepping
// for DXbar/Bless/Buffered, virtual fallback elsewhere, the Scarab
// NACK network included) and fault plans.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/replica_batch.hpp"
#include "sim/sim_runner.hpp"
#include "sim/sweep.hpp"
#include "snapshot/serialize.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {
namespace {

constexpr std::uint32_t kSecWorkload = section_tag("WKLD");

std::vector<std::uint8_t> stats_bytes(const RunStats& s) {
  SnapshotWriter w;
  save_run_stats(w, s);
  return w.take();
}

void expect_packets_identical(const std::vector<PacketRecord>& a,
                              const std::vector<PacketRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].created, b[i].created);
    EXPECT_EQ(a[i].injected, b[i].injected);
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].total_hops, b[i].total_hops);
    EXPECT_EQ(a[i].total_deflections, b[i].total_deflections);
    EXPECT_EQ(a[i].total_retransmits, b[i].total_retransmits);
  }
}

SimConfig small_cfg(RouterDesign design) {
  SimConfig cfg;
  cfg.design = design;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  cfg.drain_cycles = 2000;
  cfg.offered_load = 0.25;
  cfg.seed = 7;
  return cfg;
}

/// Runs `configs` both ways — one ReplicaBatch (cold, from cycle 0)
/// and K solo run_open_loop_detailed calls — and requires bit-equal
/// RunStats and packet records per lane.
void expect_batch_matches_serial(const std::vector<SimConfig>& configs) {
  ReplicaBatch batch{configs};
  batch.run();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    const DetailedRun solo = run_open_loop_detailed(configs[i]);
    EXPECT_EQ(stats_bytes(batch.stats(i)), stats_bytes(solo.stats));
    expect_packets_identical(batch.packets(i), solo.packets);
  }
}

// --- batch vs serial bit-exactness -------------------------------------

class BatchDesignTest : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(BatchDesignTest, TwoSeedLanesMatchSerial) {
  std::vector<SimConfig> configs(2, small_cfg(GetParam()));
  configs[1].measure_seed = 0xDEADBEEFULL;
  expect_batch_matches_serial(configs);
}

TEST_P(BatchDesignTest, EightMixedLanesMatchSerial) {
  // Lanes diverge in measurement seed AND offered load, so they finish
  // their drains at different cycles and drop out of the lockstep set
  // at different times.
  std::vector<SimConfig> configs(8, small_cfg(GetParam()));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].measure_seed = i == 0 ? 0 : 1000 + 77 * i;
    configs[i].offered_load = 0.10 + 0.05 * static_cast<double>(i % 4);
  }
  expect_batch_matches_serial(configs);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, BatchDesignTest,
    ::testing::Values(RouterDesign::DXbar,        // batched step_batch
                      RouterDesign::FlitBless,    // batched step_batch
                      RouterDesign::Buffered4,    // batched step_batch
                      RouterDesign::Scarab,       // NACK net, virtual path
                      RouterDesign::UnifiedXbar,  // virtual fallback
                      RouterDesign::Afc,          // virtual fallback
                      RouterDesign::Damq,         // batched step_batch
                      RouterDesign::MinBD),       // batched step_batch
    [](const ::testing::TestParamInfo<RouterDesign>& info) {
      std::string name(to_string(info.param));
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name;
    });

TEST(ReplicaBatchTest, FaultPlanLanesMatchSerial) {
  for (const RouterDesign design :
       {RouterDesign::DXbar, RouterDesign::UnifiedXbar}) {
    SCOPED_TRACE(std::string(to_string(design)));
    std::vector<SimConfig> configs(3, small_cfg(design));
    for (std::size_t i = 0; i < configs.size(); ++i) {
      configs[i].fault_fraction = 0.5;
      configs[i].fault_onset_spread = 300;
      configs[i].measure_seed = 31 * i;
    }
    expect_batch_matches_serial(configs);
  }
}

TEST(ReplicaBatchTest, RandomizedLaneFuzzMatchesSerial) {
  // Deterministic fuzz: random design / lane count / per-lane loads and
  // seeds, always checked against the serial twin.
  constexpr RouterDesign kDesigns[] = {
      RouterDesign::DXbar, RouterDesign::FlitBless, RouterDesign::Buffered8,
      RouterDesign::Scarab, RouterDesign::BufferedVC};
  SplitMix64 rng(20260808);
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const RouterDesign design = kDesigns[rng.next() % std::size(kDesigns)];
    const std::size_t lanes = 2 + rng.next() % 5;
    std::vector<SimConfig> configs;
    for (std::size_t i = 0; i < lanes; ++i) {
      SimConfig cfg = small_cfg(design);
      cfg.measure_cycles = 400;
      cfg.seed = 1 + rng.next() % 4;  // let some lanes share whole streams
      cfg.measure_seed = rng.next() % 3 == 0 ? 0 : rng.next();
      cfg.offered_load =
          0.05 + 0.01 * static_cast<double>(rng.next() % 30);
      configs.push_back(cfg);
    }
    expect_batch_matches_serial(configs);
  }
}

// --- warm snapshot interplay -------------------------------------------

TEST(ReplicaBatchTest, WarmForkedLanesMatchColdSerialRuns) {
  // One warmup execution, snapshotted; K measure_seed replicas forked
  // from it must equal the cold straight-through run of each replica
  // config.  This is the claim that makes `--seeds N` free: the reseed
  // sits after the snapshot point.
  const SimConfig base = small_cfg(RouterDesign::DXbar);
  std::vector<SimConfig> configs(4, base);
  for (std::size_t i = 1; i < configs.size(); ++i) {
    configs[i].measure_seed = 0x9E37 + i;
  }

  Network warm_net(base);
  SyntheticWorkload warm_wl(base, warm_net.mesh());
  warm_net.set_workload(&warm_wl);
  advance_open_loop(warm_net, base.warmup_cycles);
  SnapshotWriter w;
  warm_net.save(w);
  w.begin_section(kSecWorkload);
  warm_wl.save_state(w);
  w.end_section();
  const std::vector<std::uint8_t> snap = w.take();

  ReplicaBatch batch{configs};
  batch.warm_start(snap);
  batch.run();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    const DetailedRun cold = run_open_loop_detailed(configs[i]);
    EXPECT_EQ(stats_bytes(batch.stats(i)), stats_bytes(cold.stats));
    expect_packets_identical(batch.packets(i), cold.packets);
  }
}

TEST(ReplicaBatchTest, MeasureSeedZeroAndNonzeroDiverge) {
  SimConfig a = small_cfg(RouterDesign::DXbar);
  SimConfig b = a;
  b.measure_seed = 12345;
  EXPECT_NE(stats_bytes(run_open_loop(a)), stats_bytes(run_open_loop(b)));
  // ... and the same measure_seed is fully deterministic.
  EXPECT_EQ(stats_bytes(run_open_loop(b)), stats_bytes(run_open_loop(b)));
}

TEST(ReplicaBatchTest, MeasureSeedSurvivesConfigSnapshotRoundtrip) {
  SimConfig cfg = small_cfg(RouterDesign::Buffered4);
  cfg.measure_seed = 0xABCDEF0123ULL;
  SnapshotWriter w;
  save_config(w, cfg);
  const std::vector<std::uint8_t> bytes = w.take();
  SnapshotReader r(bytes);
  const SimConfig back = load_config(r);
  EXPECT_EQ(back.measure_seed, cfg.measure_seed);
  EXPECT_EQ(back.seed, cfg.seed);
}

// --- composition limits ------------------------------------------------

TEST(ReplicaBatchTest, RejectsShardedConfigs) {
  std::vector<SimConfig> configs(2, small_cfg(RouterDesign::DXbar));
  configs[1].shards = 2;
  EXPECT_THROW(ReplicaBatch{configs}, std::invalid_argument);
}

TEST(ReplicaBatchTest, RejectsMixedDesignsAndOversizedBatches) {
  std::vector<SimConfig> mixed(2, small_cfg(RouterDesign::DXbar));
  mixed[1].design = RouterDesign::FlitBless;
  EXPECT_THROW(ReplicaBatch{mixed}, std::invalid_argument);

  const std::vector<SimConfig> too_many(Network::kMaxStepLanes + 1,
                                        small_cfg(RouterDesign::DXbar));
  EXPECT_THROW(ReplicaBatch{too_many}, std::invalid_argument);
}

TEST(ReplicaBatchTest, SweepSerializesShardedConfigs) {
  // shards > 1 never batches, but run_replica_sweep must still return
  // the bit-exact serial result for it (run cold via run_open_loop).
  std::vector<SimConfig> configs(3, small_cfg(RouterDesign::DXbar));
  configs[0].measure_seed = 11;
  configs[1].shards = 2;
  configs[2].measure_seed = 22;
  ReplicaSweepReport report;
  const auto batched = run_replica_sweep(configs, 1, nullptr, &report);
  const auto serial = run_sweep(configs, 1);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(stats_bytes(batched[i]), stats_bytes(serial[i]));
  }
  // The two measure_seed siblings grouped; the sharded point ran cold.
  ASSERT_EQ(report.warm.groups.size(), 1u);
  EXPECT_EQ(report.warm.groups[0].size(), 2u);
  EXPECT_EQ(report.warm.cold_points, 1u);
}

// --- warmup cache ------------------------------------------------------

TEST(WarmupCacheTest, CountsHitsAndMisses) {
  WarmupCache cache;
  const std::vector<std::uint8_t> key{1, 2, 3};
  EXPECT_EQ(cache.find(key), nullptr);
  const auto stored = cache.insert(key, {9, 9});
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.find(key), stored);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(WarmupCacheTest, SweepReusesCachedWarmupsAcrossCalls) {
  std::vector<SimConfig> configs(3, small_cfg(RouterDesign::FlitBless));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].measure_seed = 5 + i;
  }
  WarmupCache cache;
  ReplicaSweepReport first, second;
  const auto r1 = run_replica_sweep(configs, 1, &cache, &first);
  const auto r2 = run_replica_sweep(configs, 1, &cache, &second);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_EQ(second.cache_misses, 0u);
  // Cached warmups change where the warmup ran, never the results.
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(stats_bytes(r1[i]), stats_bytes(r2[i]));
  }
}

// --- warmup signature --------------------------------------------------

TEST(WarmupSignatureTest, NeutralizesMeasureOnlyFields) {
  const SimConfig base = small_cfg(RouterDesign::DXbar);
  SimConfig seeded = base;
  seeded.measure_seed = 99;
  SimConfig drained = base;
  drained.drain_cycles = 123;
  EXPECT_EQ(warmup_signature(base), warmup_signature(seeded));
  EXPECT_EQ(warmup_signature(base), warmup_signature(drained));

  SimConfig other_design = base;
  other_design.design = RouterDesign::Scarab;
  EXPECT_NE(warmup_signature(base), warmup_signature(other_design));
}

TEST(WarmupSignatureTest, OfferedLoadNeutralizedOnlyUnderPinnedWarmup) {
  SimConfig base = small_cfg(RouterDesign::DXbar);
  SimConfig hotter = base;
  hotter.offered_load = 0.35;
  // Unpinned warmup injects at offered_load: different loads mean
  // different warmups, so the signatures must differ.
  EXPECT_NE(warmup_signature(base), warmup_signature(hotter));
  // A pinned warmup_load makes the warmup load-independent.
  base.warmup_load = 0.2;
  hotter.warmup_load = 0.2;
  EXPECT_EQ(warmup_signature(base), warmup_signature(hotter));
}

}  // namespace
}  // namespace dxbar
