// Closed-loop request-reply workload (DESIGN.md section 12): the
// fixed-bucket latency histogram, the protocol-deadlock-freedom
// invariant (forward progress at saturation for every design), the
// MLP bound, determinism across execution strategies (shards, sweep
// threads, replica batches), snapshot/restore, and the point-level
// ClosedLoopCampaign resume format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "sim/closed_loop_campaign.hpp"
#include "sim/replica_batch.hpp"
#include "sim/sim_runner.hpp"
#include "sim/sweep.hpp"
#include "workload/closed_loop.hpp"
#include "workload/factory.hpp"
#include "common/latency_histogram.hpp"

namespace dxbar {
namespace {

constexpr RouterDesign kAllDesigns[] = {
    RouterDesign::FlitBless, RouterDesign::Scarab,     RouterDesign::Buffered4,
    RouterDesign::Buffered8, RouterDesign::DXbar,      RouterDesign::UnifiedXbar,
    RouterDesign::BufferedVC, RouterDesign::Afc,       RouterDesign::Damq,
    RouterDesign::MinBD,
};

std::string design_name(RouterDesign d) {
  std::string name(to_string(d));
  for (char& c : name) {
    if (c == '-' || c == ' ') c = '_';
  }
  return name;
}

SimConfig closed_loop_cfg(RouterDesign design) {
  SimConfig cfg;
  cfg.design = design;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.workload = WorkloadKind::ClosedLoop;
  cfg.mlp = 4;
  cfg.service_delay = 8;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1500;
  cfg.seed = 7;
  return cfg;
}

// Every RunStats field including the request-latency block, compared
// exactly: determinism means bit-identical doubles.
void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.accepted_load, b.accepted_load);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.packets_completed, b.packets_completed);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.energy_buffer_nj, b.energy_buffer_nj);
  EXPECT_EQ(a.energy_crossbar_nj, b.energy_crossbar_nj);
  EXPECT_EQ(a.energy_link_nj, b.energy_link_nj);
  EXPECT_EQ(a.energy_control_nj, b.energy_control_nj);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.avg_req_latency, b.avg_req_latency);
  EXPECT_EQ(a.req_latency_p50, b.req_latency_p50);
  EXPECT_EQ(a.req_latency_p95, b.req_latency_p95);
  EXPECT_EQ(a.req_latency_p99, b.req_latency_p99);
  EXPECT_EQ(a.req_latency_max, b.req_latency_max);
}

// --- latency histogram ---------------------------------------------------

TEST(LatencyHistogramTest, LowLatenciesAreExact) {
  LatencyHistogram h;
  for (Cycle v = 0; v < LatencyHistogram::kLinearBuckets; ++v) h.record(v);
  EXPECT_EQ(h.count(), LatencyHistogram::kLinearBuckets);
  EXPECT_EQ(h.max(), 127.0);
  EXPECT_EQ(h.mean(), 63.5);
  // 128 samples 0..127: rank(q) = floor(q*127) is exact below the
  // linear/bucketed boundary.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 63.0);
  EXPECT_EQ(h.quantile(1.0), 127.0);
}

TEST(LatencyHistogramTest, QuantileErrorAboveLinearIsBounded) {
  // One sub-bucket spans 2^(major-4) cycles, so the midpoint is within
  // 2^-5 ~ 3.2% of any sample it holds.
  for (Cycle v : {Cycle{1000}, Cycle{12345}, Cycle{1'000'000}}) {
    LatencyHistogram h;
    h.record(v);
    const double q = h.quantile(0.5);
    EXPECT_NEAR(q, static_cast<double>(v),
                0.04 * static_cast<double>(v))
        << "sample " << v;
    EXPECT_EQ(h.max(), static_cast<double>(v));  // max is tracked exactly
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (Cycle v = 0; v < 500; v += 3) {
    a.record(v);
    both.record(v);
  }
  for (Cycle v = 1; v < 90'000; v += 701) {
    b.record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.mean(), both.mean());
  EXPECT_EQ(a.max(), both.max());
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(q), both.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, SaveLoadRoundTripIsBitExact) {
  LatencyHistogram h;
  for (Cycle v = 1; v < 300'000; v += 997) h.record(v);

  SnapshotWriter w;
  h.save(w);
  LatencyHistogram back;
  back.record(42);  // load() must fully reset prior state
  SnapshotReader r(w.data());
  back.load(r);

  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.mean(), h.mean());
  EXPECT_EQ(back.max(), h.max());
  SnapshotWriter w2;
  back.save(w2);
  EXPECT_EQ(w.data(), w2.data());  // identical sparse encoding
}

TEST(LatencyHistogramTest, BucketIndexHandlesExtremeTail) {
  LatencyHistogram h;
  h.record(~Cycle{0});  // clamps into the final bucket, must not overflow
  h.record(Cycle{1} << 45);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), static_cast<double>(~Cycle{0}));
  EXPECT_GT(h.quantile(0.5), 0.0);
}

// --- protocol deadlock freedom: forward progress at saturation -----------

class ClosedLoopSaturationTest
    : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(ClosedLoopSaturationTest, ForwardProgressAndCleanDrainAtSaturation) {
  // mlp=16 on a 4x4 mesh oversubscribes every design well past
  // saturation; the request->reply cycle must keep completing anyway,
  // and the drain must empty both the network and the reply queue
  // (drained == true is the workload-quiescence statement).
  SimConfig cfg = closed_loop_cfg(GetParam());
  cfg.mlp = 16;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GT(s.requests_completed, 100u) << "no forward progress";
  EXPECT_TRUE(s.drained) << "request-reply cycle failed to drain";
  EXPECT_GT(s.avg_req_latency, 0.0);
  EXPECT_GE(s.req_latency_max, s.req_latency_p99);
  EXPECT_GE(s.req_latency_p99, s.req_latency_p50);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, ClosedLoopSaturationTest, ::testing::ValuesIn(kAllDesigns),
    [](const ::testing::TestParamInfo<RouterDesign>& info) {
      return design_name(info.param);
    });

TEST(ClosedLoopInvariant, OutstandingNeverExceedsMlpBound) {
  SimConfig cfg = closed_loop_cfg(RouterDesign::DXbar);
  cfg.mlp = 3;
  Network net(cfg);
  ClosedLoopWorkload wl(cfg, net.mesh());
  net.set_workload(&wl);
  const std::uint64_t bound =
      static_cast<std::uint64_t>(cfg.num_nodes()) *
      static_cast<std::uint64_t>(cfg.mlp);
  for (int t = 0; t < 2000; ++t) {
    net.step();
    ASSERT_LE(wl.outstanding_total(), bound) << "cycle " << net.now();
  }
  EXPECT_GT(wl.replies_completed(), 0u);
  EXPECT_GE(wl.requests_issued(), wl.replies_completed());
}

// --- coherence-shaped client mix -----------------------------------------

TEST(CoherenceMix, PureReadIssuesNoWritebacksAndMatchesDefaultBitExactly) {
  // read_fraction = 1.0 must short-circuit the bernoulli draw: the run
  // is bit-identical to a config that never mentions the knob, and no
  // writeback traffic exists.
  const SimConfig base = closed_loop_cfg(RouterDesign::DXbar);
  SimConfig pure = base;
  pure.read_fraction = 1.0;
  expect_identical(run_open_loop(base), run_open_loop(pure));

  Network net(base);
  ClosedLoopWorkload wl(base, net.mesh());
  net.set_workload(&wl);
  for (int t = 0; t < 1200; ++t) net.step();
  EXPECT_GT(wl.replies_completed(), 0u);
  EXPECT_EQ(wl.writebacks_issued(), 0u);
}

TEST(CoherenceMix, MixedRunIssuesWritebacksRoughlyAtWriteFraction) {
  SimConfig cfg = closed_loop_cfg(RouterDesign::DXbar);
  cfg.read_fraction = 0.6;
  Network net(cfg);
  ClosedLoopWorkload wl(cfg, net.mesh());
  net.set_workload(&wl);
  for (int t = 0; t < 1500; ++t) net.step();
  ASSERT_GT(wl.requests_issued(), 500u);
  EXPECT_GT(wl.writebacks_issued(), 0u);
  // One writeback per write transaction: the ratio concentrates near
  // 1 - read_fraction (loose 3-sigma-ish bounds, deterministic seed).
  const double ratio = static_cast<double>(wl.writebacks_issued()) /
                       static_cast<double>(wl.requests_issued());
  EXPECT_GT(ratio, 0.30);
  EXPECT_LT(ratio, 0.50);
}

class CoherenceMixDrainTest : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(CoherenceMixDrainTest, MixedTrafficDrainsAndMakesForwardProgress) {
  // The deadlock-freedom argument must survive the mix: writebacks are
  // terminal and hold no MSHR, so the request->reply cycle still drains
  // on every design, including the new shared-buffer and side-buffer
  // routers.
  SimConfig cfg = closed_loop_cfg(GetParam());
  cfg.read_fraction = 0.5;
  cfg.mlp = 8;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GT(s.requests_completed, 100u) << "no forward progress";
  EXPECT_TRUE(s.drained) << "mixed-traffic run failed to drain";
}

INSTANTIATE_TEST_SUITE_P(
    Designs, CoherenceMixDrainTest,
    ::testing::Values(RouterDesign::DXbar, RouterDesign::BufferedVC,
                      RouterDesign::Damq, RouterDesign::MinBD),
    [](const ::testing::TestParamInfo<RouterDesign>& info) {
      return design_name(info.param);
    });

TEST(CoherenceMix, MidRunSaveRestoreResumesBitExactly) {
  // The v6 snapshot block (per-reply lengths, writeback counter) must
  // round-trip: resume mid-measurement under a mixed workload and land
  // on the uninterrupted run's stats.
  SimConfig cfg = closed_loop_cfg(RouterDesign::DXbar);
  cfg.read_fraction = 0.7;

  Network net(cfg);
  auto wl = make_workload(cfg, net.mesh());
  net.set_workload(wl.get());
  advance_open_loop(net, 700);

  const std::vector<std::uint8_t> net_bytes = net.snapshot();
  SnapshotWriter w;
  wl->save_state(w);
  const RunStats straight = finish_open_loop(net, *wl);

  Network resumed(cfg);
  auto wl2 = make_workload(cfg, resumed.mesh());
  resumed.set_workload(wl2.get());
  resumed.restore(net_bytes);
  SnapshotReader r(w.data());
  wl2->load_state(r);
  expect_identical(straight, finish_open_loop(resumed, *wl2));
}

// --- determinism across execution strategies -----------------------------

TEST(ClosedLoopDeterminism, RepeatRunsAreBitIdentical) {
  const SimConfig cfg = closed_loop_cfg(RouterDesign::UnifiedXbar);
  expect_identical(run_open_loop(cfg), run_open_loop(cfg));
}

TEST(ClosedLoopDeterminism, ShardedRunMatchesSingleThreaded) {
  for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::BufferedVC}) {
    SimConfig cfg = closed_loop_cfg(d);
    cfg.shards = 1;
    const RunStats serial = run_open_loop(cfg);
    for (int shards : {2, 4}) {
      SCOPED_TRACE(design_name(d) + " shards=" + std::to_string(shards));
      cfg.shards = shards;
      expect_identical(serial, run_open_loop(cfg));
    }
  }
}

TEST(ClosedLoopDeterminism, SweepResultsIndependentOfThreadCount) {
  std::vector<SimConfig> configs;
  for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::Buffered4}) {
    for (int mlp : {1, 4, 16}) {
      SimConfig cfg = closed_loop_cfg(d);
      cfg.mlp = mlp;
      configs.push_back(cfg);
    }
  }
  const std::vector<RunStats> one = run_sweep(configs, 1);
  const std::vector<RunStats> four = run_sweep(configs, 4);
  ASSERT_EQ(one.size(), configs.size());
  ASSERT_EQ(four.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("sweep point " + std::to_string(i));
    expect_identical(one[i], four[i]);
  }
}

TEST(ClosedLoopReplicaSweep, SeedReplicasMatchSerialRuns) {
  // The --seeds engine: measure_seed replicas of one closed-loop point
  // batched in lockstep must reproduce each replica's solo run.
  std::vector<SimConfig> configs;
  for (std::uint64_t ms : {1u, 2u, 3u}) {
    SimConfig cfg = closed_loop_cfg(RouterDesign::DXbar);
    cfg.measure_seed = ms;
    configs.push_back(cfg);
  }
  const std::vector<RunStats> serial = run_sweep(configs, 1);
  const std::vector<RunStats> batched = run_replica_sweep(configs, 1);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("replica " + std::to_string(i));
    expect_identical(serial[i], batched[i]);
  }
}

TEST(ClosedLoopSnapshot, MidRunSaveRestoreResumesBitExactly) {
  // Mirror of the campaign checkpoint protocol: network snapshot plus
  // the workload's WKLD state (MSHRs, in-flight txns, pending replies,
  // histogram) taken mid-measurement must resume into the exact stats
  // of the uninterrupted run.
  const SimConfig cfg = closed_loop_cfg(RouterDesign::DXbar);

  Network net(cfg);
  auto wl = make_workload(cfg, net.mesh());
  ASSERT_TRUE(wl->snapshot_supported());
  net.set_workload(wl.get());
  advance_open_loop(net, 700);  // mid-measurement (warmup ends at 200)

  const std::vector<std::uint8_t> net_bytes = net.snapshot();
  SnapshotWriter w;
  wl->save_state(w);
  const RunStats straight = finish_open_loop(net, *wl);

  Network resumed(cfg);
  auto wl2 = make_workload(cfg, resumed.mesh());
  resumed.set_workload(wl2.get());
  resumed.restore(net_bytes);
  SnapshotReader r(w.data());
  wl2->load_state(r);
  expect_identical(straight, finish_open_loop(resumed, *wl2));
}

// --- ClosedLoopCampaign: point-level resume ------------------------------

ClosedLoopResult sample_result(std::uint64_t i) {
  ClosedLoopResult r;
  r.completion_cycles = 1000 + i;
  r.finished = true;
  r.packets = 50 * (i + 1);
  r.energy_nj = 1.25 * static_cast<double>(i);
  r.energy_per_packet_nj = 0.5 + static_cast<double>(i);
  r.avg_packet_latency = 20.0 + static_cast<double>(i);
  return r;
}

void expect_result(const ClosedLoopResult& a, const ClosedLoopResult& b) {
  EXPECT_EQ(a.completion_cycles, b.completion_cycles);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.energy_nj, b.energy_nj);
  EXPECT_EQ(a.energy_per_packet_nj, b.energy_per_packet_nj);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
}

TEST(ClosedLoopCampaignTest, ResumeSkipsCompletedPoints) {
  const std::string dir = ::testing::TempDir() + "/clc_resume";
  std::filesystem::remove_all(dir);  // stale state from a prior run
  std::filesystem::create_directories(dir);
  constexpr std::uint64_t kFp = 0xfeedface;

  {
    ClosedLoopCampaign c(4, dir, kFp);
    EXPECT_EQ(c.completed(), 0u);
    c.record(0, sample_result(0));
    c.record(2, sample_result(2));
    EXPECT_EQ(c.completed(), 2u);
  }
  {
    ClosedLoopCampaign c(4, dir, kFp);
    EXPECT_EQ(c.completed(), 2u);
    ASSERT_TRUE(c.results()[0].has_value());
    EXPECT_FALSE(c.results()[1].has_value());
    ASSERT_TRUE(c.results()[2].has_value());
    expect_result(*c.results()[0], sample_result(0));
    expect_result(*c.results()[2], sample_result(2));
    c.record(1, sample_result(1));
    c.record(3, sample_result(3));
  }
  ClosedLoopCampaign c(4, dir, kFp);
  EXPECT_EQ(c.completed(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    expect_result(*c.results()[i], sample_result(i));
  }
}

TEST(ClosedLoopCampaignTest, ForeignFingerprintFramesAreIgnored) {
  const std::string dir = ::testing::TempDir() + "/clc_foreign";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  {
    ClosedLoopCampaign quick(3, dir, /*fingerprint=*/111);
    quick.record(0, sample_result(0));
    quick.record(1, sample_result(1));
  }
  // A full run sharing the directory: the quick run's frames must not
  // leak in as completed points.
  {
    ClosedLoopCampaign full(3, dir, /*fingerprint=*/222);
    EXPECT_EQ(full.completed(), 0u);
    full.record(2, sample_result(7));
  }
  // And back: each fingerprint still sees exactly its own frames.
  ClosedLoopCampaign quick(3, dir, 111);
  EXPECT_EQ(quick.completed(), 2u);
  ClosedLoopCampaign full(3, dir, 222);
  ASSERT_EQ(full.completed(), 1u);
  expect_result(*full.results()[2], sample_result(7));
}

TEST(ClosedLoopCampaignTest, TornTailIsDroppedNotFatal) {
  const std::string dir = ::testing::TempDir() + "/clc_torn";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  constexpr std::uint64_t kFp = 42;

  {
    ClosedLoopCampaign c(2, dir, kFp);
    c.record(0, sample_result(0));
  }
  {
    // Simulate a crash mid-append: garbage after the last valid frame.
    std::ofstream out(dir + "/results.bin",
                      std::ios::binary | std::ios::app);
    out.write("\x13\x37\x13", 3);
  }
  ClosedLoopCampaign c(2, dir, kFp);
  EXPECT_EQ(c.completed(), 1u);
  expect_result(*c.results()[0], sample_result(0));
}

}  // namespace
}  // namespace dxbar
