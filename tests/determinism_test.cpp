// Determinism guarantees backing the perf-regression harness: a seeded
// open-loop run is a pure function of its SimConfig, and the threaded
// sweep driver returns the same results regardless of the worker count.
// Any hidden global state, allocation-order dependence, or cross-thread
// leak in the simulation kernel shows up here as a field mismatch.
#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_runner.hpp"
#include "sim/sweep.hpp"

namespace dxbar {
namespace {

constexpr RouterDesign kAllDesigns[] = {
    RouterDesign::FlitBless, RouterDesign::Scarab,     RouterDesign::Buffered4,
    RouterDesign::Buffered8, RouterDesign::DXbar,      RouterDesign::UnifiedXbar,
    RouterDesign::BufferedVC, RouterDesign::Afc,       RouterDesign::Damq,
    RouterDesign::MinBD,
};

// Every field, compared exactly: determinism means bit-identical doubles,
// not merely close ones.
void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.accepted_load, b.accepted_load);
  EXPECT_EQ(a.accepted_load_stddev, b.accepted_load_stddev);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.latency_max, b.latency_max);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.deflections_per_flit, b.deflections_per_flit);
  EXPECT_EQ(a.retransmits_per_flit, b.retransmits_per_flit);
  EXPECT_EQ(a.packets_completed, b.packets_completed);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packet_length, b.packet_length);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.energy_buffer_nj, b.energy_buffer_nj);
  EXPECT_EQ(a.energy_crossbar_nj, b.energy_crossbar_nj);
  EXPECT_EQ(a.energy_link_nj, b.energy_link_nj);
  EXPECT_EQ(a.energy_control_nj, b.energy_control_nj);
}

SimConfig small_cfg(RouterDesign design) {
  SimConfig cfg;
  cfg.design = design;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1500;
  cfg.offered_load = 0.25;
  cfg.seed = 7;
  return cfg;
}

class DeterminismTest : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(DeterminismTest, OpenLoopRunIsBitIdenticalAcrossInvocations) {
  const SimConfig cfg = small_cfg(GetParam());
  const RunStats first = run_open_loop(cfg);
  const RunStats second = run_open_loop(cfg);
  expect_identical(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, DeterminismTest, ::testing::ValuesIn(kAllDesigns),
    [](const ::testing::TestParamInfo<RouterDesign>& info) {
      std::string name(to_string(info.param));
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name;
    });

// --- sharded in-sim parallelism ---------------------------------------
//
// The shard-count-invariance guarantee (DESIGN.md §10): splitting one
// simulation across threads is purely an execution choice.  Final
// RunStats AND the per-packet delivery records must be bit-exact against
// the single-threaded run for every design, mesh size, and shard count —
// doubles included.

void expect_identical_packets(const std::vector<PacketRecord>& a,
                              const std::vector<PacketRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("packet record " + std::to_string(i));
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].created, b[i].created);
    EXPECT_EQ(a[i].injected, b[i].injected);
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].total_hops, b[i].total_hops);
    EXPECT_EQ(a[i].total_deflections, b[i].total_deflections);
    EXPECT_EQ(a[i].total_retransmits, b[i].total_retransmits);
  }
}

struct ShardCase {
  RouterDesign design;
  int mesh = 8;  ///< width == height
};

class ShardEquivalenceTest : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardEquivalenceTest, ShardedRunIsBitIdenticalToSingleThreaded) {
  const ShardCase& c = GetParam();
  SimConfig cfg;
  cfg.design = c.design;
  cfg.mesh_width = c.mesh;
  cfg.mesh_height = c.mesh;
  cfg.offered_load = 0.30;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = c.mesh >= 16 ? 600 : 1200;
  cfg.seed = 11;

  cfg.shards = 1;
  const DetailedRun serial = run_open_loop_detailed(cfg);
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    cfg.shards = shards;
    const DetailedRun sharded = run_open_loop_detailed(cfg);
    expect_identical(serial.stats, sharded.stats);
    expect_identical_packets(serial.packets, sharded.packets);
  }
}

std::vector<ShardCase> shard_cases() {
  std::vector<ShardCase> cases;
  for (RouterDesign d : kAllDesigns) {
    cases.push_back({d, 8});
    cases.push_back({d, 16});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, ShardEquivalenceTest, ::testing::ValuesIn(shard_cases()),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      std::string name(to_string(info.param.design));
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name + "_" + std::to_string(info.param.mesh) + "x" +
             std::to_string(info.param.mesh);
    });

TEST(ShardEquivalence, FaultPlansWithBistTimersStayBitExact) {
  // Crossbar faults manifest and get detected on per-node BIST timers;
  // both are pure functions of (node, cycle), so sharding must not move
  // any routing decision.  Staggered onsets keep detection transients
  // firing throughout the run.
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.fault_fraction = 0.5;
  cfg.fault_onset_spread = 400;
  cfg.offered_load = 0.25;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1200;
  cfg.seed = 23;

  cfg.shards = 1;
  const DetailedRun serial = run_open_loop_detailed(cfg);
  cfg.shards = 4;
  const DetailedRun sharded = run_open_loop_detailed(cfg);
  expect_identical(serial.stats, sharded.stats);
  expect_identical_packets(serial.packets, sharded.packets);
}

TEST(ShardEquivalence, ScarabNackNetworkStaysBitExact) {
  // SCARAB drops cross shard boundaries through the staged-drop commit;
  // the NACK network's wire arbitration is sequence-ordered, so this
  // pins the commit order to the single-threaded call order.  High load
  // forces plenty of drops.
  SimConfig cfg;
  cfg.design = RouterDesign::Scarab;
  cfg.offered_load = 0.45;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1200;
  cfg.seed = 29;

  cfg.shards = 1;
  const DetailedRun serial = run_open_loop_detailed(cfg);
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    cfg.shards = shards;
    const DetailedRun sharded = run_open_loop_detailed(cfg);
    expect_identical(serial.stats, sharded.stats);
    expect_identical_packets(serial.packets, sharded.packets);
  }
}

TEST(ShardEquivalence, ShardCountClampsToMeshHeight) {
  // More shards than rows degenerates to one row per shard.
  SimConfig cfg = small_cfg(RouterDesign::DXbar);
  cfg.shards = 1;
  const RunStats serial = run_open_loop(cfg);
  cfg.shards = 64;  // 4-row mesh: clamps to 4
  const RunStats sharded = run_open_loop(cfg);
  expect_identical(serial, sharded);
}

TEST(SweepDeterminism, ResultsIndependentOfThreadCount) {
  // A mixed batch (several designs x loads) exercises work stealing with
  // unequal point costs; results must align with the input order and be
  // identical for any worker count.
  std::vector<SimConfig> configs;
  for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::FlitBless,
                         RouterDesign::Buffered4}) {
    for (double load : {0.1, 0.3, 0.45}) {
      SimConfig cfg = small_cfg(d);
      cfg.offered_load = load;
      configs.push_back(cfg);
    }
  }

  const std::vector<RunStats> one = run_sweep(configs, 1);
  const std::vector<RunStats> two = run_sweep(configs, 2);
  const std::vector<RunStats> eight = run_sweep(configs, 8);

  ASSERT_EQ(one.size(), configs.size());
  ASSERT_EQ(two.size(), configs.size());
  ASSERT_EQ(eight.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("sweep point " + std::to_string(i));
    expect_identical(one[i], two[i]);
    expect_identical(one[i], eight[i]);
  }
}

}  // namespace
}  // namespace dxbar
