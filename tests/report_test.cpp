// src/report/ — JSON reader round-trips, curve analysis, shape diffing,
// rendering, and the dxbar_report CLI surface.
//
// The load-bearing guarantee: `dxbar_bench --json` output parses back
// bit-exactly (execute -> result_doc -> to_json -> from_json -> to_json
// is byte-stable) for EVERY registered experiment, so nothing the bench
// writes can drift away from what the report subsystem reads.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "report/analysis.hpp"
#include "report/diff.hpp"
#include "report/render.hpp"
#include "report/report_main.hpp"
#include "report/result_io.hpp"

#ifndef DXBAR_TEST_DATA_DIR
#define DXBAR_TEST_DATA_DIR "."
#endif

namespace dxbar::report {
namespace {

namespace fs = std::filesystem;
using exp::Experiment;
using exp::ExperimentResult;
using exp::Registry;
using exp::RunOptions;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("report_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------------
// JsonValue parser (common/json.hpp)

TEST(JsonParse, ScalarsAndStructure) {
  JsonValue v;
  ASSERT_EQ(json_parse(R"({"a": [1, 2.5, "x"], "b": true, "c": null})", v),
            "");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[0].as_int64(), 1);
  EXPECT_DOUBLE_EQ(a->items[1].as_double(), 2.5);
  EXPECT_EQ(a->items[2].scalar, "x");
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_TRUE(v.find("c")->is_null());
}

TEST(JsonParse, SeventeenDigitDoublesAreBitExact) {
  // %.17g is what the writer emits; strtod must recover the exact bits.
  for (double want :
       {0.1, 1.0 / 3.0, 0.29999999999999999, 6.0221407599999999e23,
        5e-324 /* min denormal */, 1.7976931348623157e308 /* max */}) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.17g]", want);
    JsonValue v;
    ASSERT_EQ(json_parse(buf, v), "") << buf;
    const double got = v.items[0].as_double();
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0) << buf;
  }
}

TEST(JsonParse, StringEscapes) {
  JsonValue v;
  ASSERT_EQ(json_parse(R"(["a\"b\\c\n\tAé"])", v), "");
  EXPECT_EQ(v.items[0].scalar, "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  JsonValue v;
  const std::string err = json_parse("{\n  \"a\": [1,\n 2,]\n}", v);
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(JsonParse, RejectsDuplicateKeysAndTrailingContent) {
  JsonValue v;
  EXPECT_NE(json_parse(R"({"a": 1, "a": 2})", v), "");
  EXPECT_NE(json_parse(R"({"a": 1} trailing)", v), "");
  EXPECT_NE(json_parse("", v), "");
}

TEST(JsonParse, DepthLimitIsEnforcedNotCrashed) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue v;
  const std::string err = json_parse(deep, v);
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("too deep"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Writer -> reader round trip, for every registered experiment

RunOptions tiny_options() {
  RunOptions opt;
  opt.quick = true;
  opt.base.mesh_width = 4;
  opt.base.mesh_height = 4;
  opt.base.warmup_cycles = 60;
  opt.base.measure_cycles = 120;
  opt.base.drain_cycles = 300;
  opt.overrides = {"seed=7"};
  return opt;
}

TEST(ReportRoundTrip, EveryRegisteredExperimentIsByteStable) {
  for (const Experiment* e : Registry::instance().all()) {
    const RunOptions opt = tiny_options();
    const ExperimentResult result = exp::execute(*e, opt);
    const ResultDoc doc = exp::result_doc(*e, result, opt);
    const std::string first = to_json(doc);

    ResultDoc parsed;
    ASSERT_EQ(from_json(first, parsed), "") << e->name;
    EXPECT_EQ(parsed.experiment, e->name);
    EXPECT_EQ(to_json(parsed), first)
        << e->name << ": reader lost information the writer emitted";
  }
}

TEST(ReportRoundTrip, NonFiniteValuesSurviveAsNull) {
  ResultDoc doc;
  doc.experiment = "nan_check";
  doc.executor = "custom";
  TableDoc t;
  t.title = "t";
  t.x_label = "x";
  t.x = {"1", "2"};
  t.series.push_back({"s", {std::nan(""), 2.0}});
  doc.tables.push_back(t);

  const std::string text = to_json(doc);
  EXPECT_NE(text.find("null"), std::string::npos);
  ResultDoc parsed;
  ASSERT_EQ(from_json(text, parsed), "");
  EXPECT_TRUE(std::isnan(parsed.tables[0].series[0].values[0]));
  EXPECT_EQ(to_json(parsed), text);  // null re-serializes as null
}

// ---------------------------------------------------------------------
// Strict-reader rejection: every failure mode is a loud, located error

std::string minimal_doc_text() {
  ResultDoc doc;
  doc.experiment = "mini";
  doc.title = "minimal";
  doc.git_describe = "test";
  doc.executor = "custom";
  return to_json(doc);
}

TEST(ReportReader, RejectsMalformedJsonWithLocation) {
  ResultDoc out;
  const std::string err = from_json("{\"schema\": ", out, "bad.json");
  ASSERT_FALSE(err.empty());
  EXPECT_EQ(err.find("bad.json: "), 0u) << err;
  EXPECT_NE(err.find("line "), std::string::npos) << err;
}

TEST(ReportReader, RejectsTruncatedDocument) {
  const std::string text = minimal_doc_text();
  ResultDoc out;
  EXPECT_NE(from_json(text.substr(0, text.size() / 2), out), "");
}

TEST(ReportReader, RejectsMissingFieldNamingIt) {
  std::string text = minimal_doc_text();
  const auto pos = text.find("  \"executor\"");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, text.find('\n', pos) - pos + 1);
  ResultDoc out;
  const std::string err = from_json(text, out);
  EXPECT_NE(err.find("missing key 'executor'"), std::string::npos) << err;
}

TEST(ReportReader, RejectsUnknownKeyNamingIt) {
  std::string text = minimal_doc_text();
  const auto pos = text.find("\"notes\"");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "\"surprise\": 1,\n  ");
  ResultDoc out;
  const std::string err = from_json(text, out);
  EXPECT_NE(err.find("unknown key 'surprise'"), std::string::npos) << err;
}

TEST(ReportReader, RejectsWrongSchemaAndVersion) {
  std::string text = minimal_doc_text();
  ResultDoc out;

  std::string wrong = text;
  wrong.replace(wrong.find("dxbar-experiment-result"),
                std::string("dxbar-experiment-result").size(), "other");
  EXPECT_NE(from_json(wrong, out).find("$.schema"), std::string::npos);

  wrong = text;
  wrong.replace(wrong.find("\"schema_version\": 1"),
                std::string("\"schema_version\": 1").size(),
                "\"schema_version\": 99");
  const std::string err = from_json(wrong, out);
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_NE(err.find("99"), std::string::npos) << err;
}

TEST(ReportReader, RejectsUnknownEnumValues) {
  std::string text = minimal_doc_text();
  text.replace(text.find("\"design\": \"DXbar\""),
               std::string("\"design\": \"DXbar\"").size(),
               "\"design\": \"Warp\"");
  ResultDoc out;
  const std::string err = from_json(text, out);
  EXPECT_NE(err.find("unknown design 'Warp'"), std::string::npos) << err;
}

TEST(ReportReader, RejectsSeriesLengthMismatch) {
  ResultDoc doc;
  doc.experiment = "mini";
  doc.executor = "custom";
  TableDoc t;
  t.title = "t";
  t.x_label = "x";
  t.x = {"1", "2"};
  t.series.push_back({"s", {1.0, 2.0}});
  doc.tables.push_back(t);
  std::string text = to_json(doc);
  // Drop one value from the series.
  const auto pos = text.find("            1,\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string("            1,\n").size());
  ResultDoc out;
  const std::string err = from_json(text, out);
  EXPECT_NE(err.find("1 values for 2 x entries"), std::string::npos) << err;
}

TEST(ReportReader, DirLoadKeepsGoodFilesAndReportsBadOnes) {
  const std::string dir = scratch_dir("mixed");
  std::ofstream(dir + "/good.json") << minimal_doc_text();
  std::ofstream(dir + "/bad.json") << "{ nope";
  std::ofstream(dir + "/ignored.txt") << "not json";
  std::vector<ResultDoc> docs;
  const std::string err = load_result_dir(dir, docs);
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].experiment, "mini");
  EXPECT_NE(err.find("bad.json"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Golden v1 fixture: the on-disk schema is pinned by a checked-in file.
// Regenerate deliberately with: DXBAR_REGEN_GOLDEN=1 ./dxbar_tests

ResultDoc golden_doc() {
  ResultDoc doc;
  doc.experiment = "golden";
  doc.title = "golden fixture";
  doc.git_describe = "v1-fixture";
  doc.quick = true;
  doc.executor = "warm_sweep";
  doc.warm_groups = 1;
  doc.overrides = {"seed=7"};
  TableDoc t;
  t.title = "accepted vs offered";
  t.x_label = "offered";
  t.x = {"0.1", "0.2"};
  t.series.push_back({"DXbar", {0.1, 0.2}});
  t.series.push_back({"Flit-Bless", {0.1, std::nan("")}});
  doc.tables.push_back(t);
  doc.notes = "two-point fixture\n";
  PointDoc p;
  p.config.offered_load = 0.1;
  p.stats.offered_load = 0.1;
  p.stats.accepted_load = 0.099999999999999992;
  p.stats.drained = true;
  doc.points.push_back(p);
  return doc;
}

TEST(ReportGolden, CheckedInV1FixtureStaysReadableAndByteExact) {
  const std::string path =
      std::string(DXBAR_TEST_DATA_DIR) + "/golden_result_v1.json";
  const std::string want = to_json(golden_doc());
  if (std::getenv("DXBAR_REGEN_GOLDEN") != nullptr) {
    std::ofstream(path) << want;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << path << " missing; run with DXBAR_REGEN_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), want)
      << "golden fixture drifted; if the schema changed on purpose, bump "
         "kSchemaVersion and regenerate with DXBAR_REGEN_GOLDEN=1";

  ResultDoc parsed;
  ASSERT_EQ(from_json(buf.str(), parsed, path), "");
  EXPECT_EQ(parsed.experiment, "golden");
  EXPECT_EQ(parsed.points.size(), 1u);
  EXPECT_EQ(parsed.points[0].stats.accepted_load, 0.099999999999999992);
}

// ---------------------------------------------------------------------
// Analysis: direction, winners, saturation, knee

TableDoc accepted_table(std::vector<double> a, std::vector<double> b) {
  TableDoc t;
  t.title = "accepted load vs offered load";
  t.x_label = "offered";
  for (std::size_t i = 0; i < a.size(); ++i) {
    t.x.push_back(exp::fmt(0.1 * static_cast<double>(i + 1), "%.1f"));
  }
  t.series.push_back({"A", std::move(a)});
  t.series.push_back({"B", std::move(b)});
  return t;
}

TEST(ReportAnalysis, SaturationMatchesTheBenchCriterion) {
  // Same 90%-of-offered rule the fig5 reducer prints.
  EXPECT_DOUBLE_EQ(
      saturation_from_points({0.1, 0.2, 0.3, 0.4}, {0.1, 0.2, 0.25, 0.25}),
      0.3);
  // Never dips below 90% -> saturation is the last bin.
  EXPECT_DOUBLE_EQ(saturation_from_points({0.1, 0.2}, {0.1, 0.2}), 0.2);
}

TEST(ReportAnalysis, WinnersRequireDecisiveMarginOverRunnerUp) {
  const TableDoc t =
      accepted_table({0.10, 0.20, 0.35}, {0.10, 0.201, 0.30});
  const TableAnalysis a = analyze_table(t);
  ASSERT_EQ(a.winner_per_bin.size(), 3u);
  EXPECT_EQ(a.winner_per_bin[0], -1);  // exactly equal -> tie
  EXPECT_EQ(a.winner_per_bin[1], -1);  // 0.5% apart -> inside tie margin
  EXPECT_EQ(a.winner_per_bin[2], 0);   // 16% apart -> decisive
  EXPECT_EQ(a.direction, MetricDirection::HigherBetter);
  EXPECT_TRUE(a.is_accepted_vs_offered);
}

TEST(ReportAnalysis, LatencyTablesAreLowerBetter) {
  TableDoc t;
  t.title = "average latency vs offered load";
  t.x_label = "offered";
  t.x = {"0.1"};
  t.series.push_back({"A", {10.0}});
  t.series.push_back({"B", {20.0}});
  const TableAnalysis a = analyze_table(t);
  EXPECT_EQ(a.direction, MetricDirection::LowerBetter);
  EXPECT_EQ(a.winner_per_bin[0], 0);
  EXPECT_FALSE(a.is_accepted_vs_offered);
}

TEST(ReportAnalysis, KneeFindsTheSaturationCorner) {
  const TableDoc t = accepted_table({0.1, 0.2, 0.3, 0.31, 0.32},
                                    {0.1, 0.2, 0.3, 0.4, 0.5});
  const TableAnalysis a = analyze_table(t);
  EXPECT_NEAR(a.series[0].knee_x, 0.3, 1e-9);   // bends at 0.3
  EXPECT_TRUE(std::isnan(a.series[1].knee_x));  // straight line: no knee
}

// ---------------------------------------------------------------------
// Diff classification

ResultDoc one_table_doc(TableDoc t, const std::string& name = "exp1") {
  ResultDoc doc;
  doc.experiment = name;
  doc.title = name;
  doc.git_describe = "base";
  doc.executor = "warm_sweep";
  doc.tables.push_back(std::move(t));
  return doc;
}

TEST(ReportDiff, IdenticalIgnoresGitDescribe) {
  ResultDoc a = one_table_doc(accepted_table({0.1}, {0.1}));
  ResultDoc b = a;
  b.git_describe = "fresh";
  const DiffReport r = diff_results({a}, {b});
  ASSERT_EQ(r.experiments.size(), 1u);
  EXPECT_EQ(r.experiments[0].cls, DiffClass::Identical);
  EXPECT_FALSE(r.has_shape_regression());
}

TEST(ReportDiff, SmallValueChangesAreDriftNotRegression) {
  const ResultDoc a =
      one_table_doc(accepted_table({0.10, 0.20, 0.35}, {0.10, 0.20, 0.30}));
  const ResultDoc b = one_table_doc(
      accepted_table({0.101, 0.20, 0.352}, {0.10, 0.199, 0.301}));
  const DiffReport r = diff_results({a}, {b});
  ASSERT_EQ(r.experiments.size(), 1u);
  EXPECT_EQ(r.experiments[0].cls, DiffClass::NumericDrift);
  EXPECT_GT(r.experiments[0].tables[0].max_rel_delta, 0.0);
}

TEST(ReportDiff, DecisiveWinnerFlipIsAShapeRegression) {
  const ResultDoc a = one_table_doc(
      accepted_table({0.1, 0.2, 0.35, 0.36}, {0.1, 0.2, 0.30, 0.30}));
  const ResultDoc b = one_table_doc(
      accepted_table({0.1, 0.2, 0.30, 0.30}, {0.1, 0.2, 0.35, 0.36}));
  const DiffReport r = diff_results({a}, {b});
  ASSERT_EQ(r.experiments.size(), 1u);
  ASSERT_EQ(r.experiments[0].cls, DiffClass::ShapeRegression);
  bool flip_reason = false;
  for (const std::string& reason : r.experiments[0].tables[0].reasons) {
    if (reason.find("flipped") != std::string::npos) flip_reason = true;
  }
  EXPECT_TRUE(flip_reason);
  EXPECT_TRUE(r.has_shape_regression());
}

TEST(ReportDiff, SaturationShiftBeyondToleranceIsAShapeRegression) {
  // Base saturates at 0.3; fresh holds to 0.5 — a two-bin shift (the
  // default tolerance is 1.5 bins).
  const ResultDoc a = one_table_doc(accepted_table(
      {0.1, 0.2, 0.25, 0.25, 0.25}, {0.1, 0.2, 0.25, 0.25, 0.25}));
  const ResultDoc b = one_table_doc(accepted_table(
      {0.1, 0.2, 0.30, 0.40, 0.50}, {0.1, 0.2, 0.25, 0.25, 0.25}));
  const DiffReport r = diff_results({a}, {b});
  ASSERT_EQ(r.experiments[0].cls, DiffClass::ShapeRegression);
  bool sat_reason = false;
  for (const std::string& reason : r.experiments[0].tables[0].reasons) {
    if (reason.find("saturation") != std::string::npos) sat_reason = true;
  }
  EXPECT_TRUE(sat_reason);
}

TEST(ReportDiff, StructuralChangeIsAShapeRegression) {
  const ResultDoc a = one_table_doc(accepted_table({0.1, 0.2}, {0.1, 0.2}));
  const ResultDoc b =
      one_table_doc(accepted_table({0.1, 0.2, 0.3}, {0.1, 0.2, 0.3}));
  EXPECT_EQ(diff_results({a}, {b}).experiments[0].cls,
            DiffClass::ShapeRegression);
}

/// Adds "<label> ±ci95" companion columns holding `rel` times each
/// base cell (a uniform relative halfwidth), as --seeds N emits them.
TableDoc with_ci_columns(TableDoc t, double rel) {
  const std::size_t n = t.series.size();
  for (std::size_t s = 0; s < n; ++s) {
    SeriesDoc ci;
    ci.label = t.series[s].label + std::string(kCiSuffix);
    for (double v : t.series[s].values) ci.values.push_back(rel * v);
    t.series.push_back(std::move(ci));
  }
  return t;
}

TEST(ReportAnalysis, CiCompanionColumnsCarryNoShapeSemantics) {
  EXPECT_TRUE(is_ci_series("A ±ci95"));
  EXPECT_FALSE(is_ci_series("A"));
  EXPECT_FALSE(is_ci_series("±ci95 of A"));

  const TableDoc t = with_ci_columns(
      accepted_table({0.1, 0.2, 0.25, 0.25}, {0.1, 0.2, 0.30, 0.35}),
      0.02);
  const TableAnalysis a = analyze_table(t);
  ASSERT_EQ(a.series.size(), 4u);
  // The CI columns never win a bin (their tiny values would "win" a
  // lower-better metric otherwise) and have no saturation or knee.
  for (int w : a.winner_per_bin) EXPECT_LT(w, 2);
  EXPECT_TRUE(std::isnan(a.series[2].saturation));
  EXPECT_TRUE(std::isnan(a.series[3].knee_x));
  EXPECT_FALSE(std::isnan(a.series[0].saturation));
}

TEST(ReportDiff, ReplicaNoiseWidensTheDriftTolerance) {
  // The same decisive winner flip as above: a shape regression when the
  // tables carry no noise information...
  const TableDoc base =
      accepted_table({0.1, 0.2, 0.35, 0.36}, {0.1, 0.2, 0.30, 0.30});
  const TableDoc flipped =
      accepted_table({0.1, 0.2, 0.30, 0.30}, {0.1, 0.2, 0.35, 0.36});
  ASSERT_EQ(diff_results({one_table_doc(base)}, {one_table_doc(flipped)})
                .experiments[0]
                .cls,
            DiffClass::ShapeRegression);

  // ...but drift when ±ci95 columns show the flip is inside two
  // relative confidence halfwidths (9% noise -> 18% margin > the 17%
  // gap between 0.35 and 0.30).
  const DiffReport noisy =
      diff_results({one_table_doc(with_ci_columns(base, 0.09))},
                   {one_table_doc(with_ci_columns(flipped, 0.09))});
  EXPECT_EQ(noisy.experiments[0].cls, DiffClass::NumericDrift);
}

TEST(ReportDiff, CiColumnsAreExcludedFromMaxRelDelta) {
  const TableDoc a = with_ci_columns(accepted_table({0.2}, {0.2}), 0.01);
  TableDoc b = with_ci_columns(accepted_table({0.202}, {0.2}), 0.01);
  b.series[2].values[0] = 0.1;  // wild CI change must not dominate
  const TableDiff d = diff_tables(a, b);
  EXPECT_EQ(d.cls, DiffClass::NumericDrift);
  EXPECT_LT(d.max_rel_delta, 0.05);
}

TEST(ReportDiff, AddedAndRemovedExperimentsAreClassified) {
  const ResultDoc a = one_table_doc(accepted_table({0.1}, {0.1}), "old_exp");
  const ResultDoc b = one_table_doc(accepted_table({0.1}, {0.1}), "new_exp");
  const DiffReport r = diff_results({a}, {b});
  EXPECT_EQ(r.count(DiffClass::Removed), 1u);
  EXPECT_EQ(r.count(DiffClass::Added), 1u);
  EXPECT_FALSE(r.has_shape_regression());
}

// ---------------------------------------------------------------------
// Rendering

TEST(ReportRender, ReportContainsSvgTableAndShapeMetrics) {
  const ResultDoc doc = one_table_doc(
      accepted_table({0.1, 0.2, 0.25, 0.25}, {0.1, 0.2, 0.30, 0.35}));
  const std::string md = render_report({doc}, "unit");
  EXPECT_NE(md.find("<svg"), std::string::npos);
  EXPECT_NE(md.find("| offered |"), std::string::npos);
  EXPECT_NE(md.find("Saturation"), std::string::npos);
  EXPECT_NE(md.find("## exp1"), std::string::npos);
}

TEST(ReportRender, RenderIsDeterministic) {
  const ResultDoc doc = one_table_doc(accepted_table({0.1}, {0.2}));
  EXPECT_EQ(render_report({doc}, "unit"), render_report({doc}, "unit"));
}

TEST(ReportRender, DiffReportOverlaysRegressedTables) {
  const ResultDoc a = one_table_doc(
      accepted_table({0.1, 0.2, 0.35, 0.36}, {0.1, 0.2, 0.30, 0.30}));
  const ResultDoc b = one_table_doc(
      accepted_table({0.1, 0.2, 0.30, 0.30}, {0.1, 0.2, 0.35, 0.36}));
  const DiffReport r = diff_results({a}, {b});
  const std::string md = render_diff(r, {a}, {b}, "base", "fresh");
  EXPECT_NE(md.find("SHAPE-REGRESSION"), std::string::npos);
  EXPECT_NE(md.find("<svg"), std::string::npos);
  EXPECT_NE(md.find("stroke-dasharray"), std::string::npos);  // base overlay
}

// ---------------------------------------------------------------------
// CLI surface: exit codes are the CI contract

int run_cli(std::vector<const char*> argv) {
  return report_main(
      std::span<const char* const>(argv.data(), argv.size()));
}

TEST(ReportCli, RenderThenSelfDiffExitsZero) {
  const std::string dir = scratch_dir("cli");
  std::ofstream(dir + "/mini.json") << minimal_doc_text();
  EXPECT_EQ(run_cli({"render", dir.c_str()}), 0);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "report.md"));
  EXPECT_EQ(run_cli({"diff", dir.c_str(), dir.c_str()}), 0);
}

TEST(ReportCli, ShapeRegressionExitsOne) {
  const std::string base = scratch_dir("cli_base");
  const std::string fresh = scratch_dir("cli_fresh");
  const ResultDoc a = one_table_doc(
      accepted_table({0.1, 0.2, 0.35, 0.36}, {0.1, 0.2, 0.30, 0.30}));
  const ResultDoc b = one_table_doc(
      accepted_table({0.1, 0.2, 0.30, 0.30}, {0.1, 0.2, 0.35, 0.36}));
  std::ofstream(base + "/exp1.json") << to_json(a);
  std::ofstream(fresh + "/exp1.json") << to_json(b);
  const std::string out = scratch_dir("cli_out") + "/diff.md";
  EXPECT_EQ(run_cli({"diff", base.c_str(), fresh.c_str(), "-o",
                     out.c_str()}),
            1);
  EXPECT_TRUE(fs::exists(out));
}

TEST(ReportCli, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_cli({}), 2);
  EXPECT_EQ(run_cli({"frobnicate"}), 2);
  EXPECT_EQ(run_cli({"render"}), 2);
  EXPECT_EQ(run_cli({"render", "/no/such/dir"}), 2);
  EXPECT_EQ(run_cli({"diff", "/no/such/dir", "/no/such/dir"}), 2);
  EXPECT_EQ(run_cli({"diff", "a", "b", "--tie-margin", "bogus"}), 2);
  const std::string empty = scratch_dir("cli_empty");
  EXPECT_EQ(run_cli({"render", empty.c_str()}), 2);  // no documents
  EXPECT_EQ(run_cli({"--help"}), 0);
}

}  // namespace
}  // namespace dxbar::report
