// Crash-resumable campaign runner tests.
//
// The contract under test: a campaign interrupted at arbitrary points
// (budget pauses model SIGKILL — no extra checkpoint is written) and
// resumed by fresh Campaign instances produces results bit-identical to
// an uninterrupted run, and damaged persistence (torn result tail,
// corrupt or stale checkpoint) degrades to recomputation, never to
// wrong numbers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dxbar.hpp"

namespace dxbar {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> stats_bytes(const RunStats& s) {
  SnapshotWriter w;
  save_run_stats(w, s);
  return w.take();
}

std::vector<SimConfig> tiny_points() {
  std::vector<SimConfig> points;
  for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::FlitBless}) {
    for (double load : {0.10, 0.25}) {
      SimConfig cfg;
      cfg.mesh_width = 4;
      cfg.mesh_height = 4;
      cfg.design = d;
      cfg.pattern = TrafficPattern::UniformRandom;
      cfg.offered_load = load;
      cfg.warmup_cycles = 150;
      cfg.measure_cycles = 200;
      points.push_back(cfg);
    }
  }
  return points;
}

/// Fresh scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("campaign_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void expect_same_results(const Campaign& a, const Campaign& b) {
  const auto& ra = a.results();
  const auto& rb = b.results();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_TRUE(ra[i].has_value()) << "point " << i;
    ASSERT_TRUE(rb[i].has_value()) << "point " << i;
    EXPECT_EQ(stats_bytes(*ra[i]), stats_bytes(*rb[i])) << "point " << i;
  }
}

TEST(Campaign, UninterruptedRunCompletesAndMatchesOpenLoop) {
  const auto points = tiny_points();
  Campaign campaign(points, scratch_dir("straight"), 100);
  const CampaignStatus st = campaign.run();
  EXPECT_TRUE(st.finished);
  EXPECT_EQ(st.completed, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(campaign.results()[i].has_value());
    EXPECT_EQ(stats_bytes(*campaign.results()[i]),
              stats_bytes(run_open_loop(points[i])))
        << "point " << i;
  }
}

TEST(Campaign, BudgetSlicedCrashResumeIsBitExact) {
  const auto points = tiny_points();

  const std::string ref_dir = scratch_dir("crash_ref");
  Campaign reference(points, ref_dir, 100);
  ASSERT_TRUE(reference.run().finished);

  // Simulate a batch queue that SIGKILLs the job every ~300 simulated
  // cycles: each slice is a FRESH Campaign instance (no carried state),
  // and budget pauses deliberately skip the courtesy checkpoint, so
  // every resume goes through the real crash-recovery path.
  const std::string dir = scratch_dir("crash_sliced");
  bool finished = false;
  int slices = 0;
  while (!finished) {
    ASSERT_LT(++slices, 200) << "campaign failed to make progress";
    Campaign slice(points, dir, 100);
    finished = slice.run(300).finished;
  }
  EXPECT_GT(slices, 2) << "budget too generous to exercise resume";

  Campaign done(points, dir, 100);
  EXPECT_TRUE(done.status().finished);
  expect_same_results(done, reference);

  // The persisted artifacts themselves must agree byte-for-byte.
  std::ifstream fa(fs::path(ref_dir) / "results.bin", std::ios::binary);
  std::ifstream fb(fs::path(dir) / "results.bin", std::ios::binary);
  const std::string ba((std::istreambuf_iterator<char>(fa)), {});
  const std::string bb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(ba, bb);
}

TEST(Campaign, SameInstanceResumesAfterBudgetPause) {
  const auto points = tiny_points();
  Campaign reference(points, scratch_dir("same_ref"), 100);
  ASSERT_TRUE(reference.run().finished);

  Campaign campaign(points, scratch_dir("same_inst"), 100);
  int calls = 0;
  while (!campaign.run(400).finished) {
    ASSERT_LT(++calls, 200);
  }
  expect_same_results(campaign, reference);
}

TEST(Campaign, FreshInstanceSeesPersistedCompletion) {
  const auto points = tiny_points();
  const std::string dir = scratch_dir("reopen");
  {
    Campaign campaign(points, dir, 100);
    ASSERT_TRUE(campaign.run().finished);
  }
  Campaign reopened(points, dir, 100);
  // status() alone must report completion — no simulation needed.
  EXPECT_TRUE(reopened.status().finished);
  EXPECT_EQ(reopened.status().completed, points.size());
  for (const auto& r : reopened.results()) EXPECT_TRUE(r.has_value());
}

TEST(Campaign, TornResultTailIsDroppedAndRecomputed) {
  const auto points = tiny_points();
  const std::string dir = scratch_dir("torn");
  {
    Campaign campaign(points, dir, 100);
    ASSERT_TRUE(campaign.run().finished);
  }

  // A crash mid-append leaves a half-written final frame: model it by
  // chopping a few bytes off the end of results.bin.
  const fs::path results = fs::path(dir) / "results.bin";
  const auto size = fs::file_size(results);
  fs::resize_file(results, size - 5);

  Campaign damaged(points, dir, 100);
  const CampaignStatus before = damaged.status();
  EXPECT_FALSE(before.finished);
  EXPECT_EQ(before.completed, points.size() - 1);  // only the tail is lost

  ASSERT_TRUE(damaged.run().finished);
  Campaign reference(points, scratch_dir("torn_ref"), 100);
  ASSERT_TRUE(reference.run().finished);
  expect_same_results(damaged, reference);
}

TEST(Campaign, CorruptCheckpointFallsBackToColdStart) {
  const auto points = tiny_points();
  const std::string dir = scratch_dir("corrupt_ckpt");
  {
    Campaign campaign(points, dir, 100);
    campaign.run(300);  // pause mid-point, checkpoint on disk
  }
  const fs::path ckpt = fs::path(dir) / "checkpoint.bin";
  ASSERT_TRUE(fs::exists(ckpt));
  {
    // Scribble over the middle of the checkpoint.
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(ckpt) / 2));
    const char junk[8] = {0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A};
    f.write(junk, sizeof junk);
  }

  Campaign damaged(points, dir, 100);
  ASSERT_TRUE(damaged.run().finished);
  Campaign reference(points, scratch_dir("corrupt_ref"), 100);
  ASSERT_TRUE(reference.run().finished);
  expect_same_results(damaged, reference);
}

TEST(Campaign, CheckpointFromDifferentCampaignIsIgnored) {
  const auto points = tiny_points();
  const std::string dir = scratch_dir("foreign_ckpt");
  {
    Campaign campaign(points, dir, 100);
    campaign.run(300);  // leaves a checkpoint for THIS point list
  }
  // Re-open the directory with a different point list (different seed →
  // different fingerprint): the stale checkpoint must not be restored.
  auto other_points = tiny_points();
  for (auto& p : other_points) p.seed = 77;
  Campaign other(other_points, dir, 100);
  ASSERT_TRUE(other.run().finished);

  Campaign reference(other_points, scratch_dir("foreign_ref"), 100);
  ASSERT_TRUE(reference.run().finished);
  expect_same_results(other, reference);
}

}  // namespace
}  // namespace dxbar
