// Experiment-harness tests: registry contents and ordering, the
// dxbar_bench argument parser (notably the override-vs---quick ordering
// contract the legacy bench_util parser violated), executor equivalence
// (warm sweep vs campaign, thread-count invariance), JSON output
// well-formedness and CSV emission behavior.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dxbar.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "report/analysis.hpp"

namespace dxbar::exp {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Registry

// Keep in sync with DXBAR_EXPERIMENT_NAMES in bench/CMakeLists.txt (the
// ctest smoke-run list); this test is the drift guard between the two.
const std::vector<std::string> kExpectedExperiments = {
    "ablation_buffer_depth",
    "ablation_energy_breakdown",
    "ablation_energy_scaling",
    "ablation_extensions",
    "ablation_fairness_threshold",
    "ablation_link_faults",
    "ablation_mesh_scaling",
    "ablation_routing",
    "ablation_stall_escape",
    "ablation_topology",
    "ablation_unified_vs_dual",
    "closedloop_fault_tail",
    "closedloop_hotspot",
    "closedloop_saturation",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table1",
    "table2",
    "table3",
    "table_router_zoo",
    "table_saturation",
};

TEST(ExpRegistry, AllExperimentsRegisteredInNaturalOrder) {
  std::vector<std::string> names;
  for (const Experiment* e : Registry::instance().all()) {
    names.push_back(e->name);
  }
  EXPECT_EQ(names, kExpectedExperiments);
}

TEST(ExpRegistry, EveryExperimentIsRunnableAndDocumented) {
  for (const Experiment* e : Registry::instance().all()) {
    EXPECT_FALSE(e->title.empty()) << e->name;
    const bool has_grid = static_cast<bool>(e->grid);
    const bool has_run = static_cast<bool>(e->run);
    EXPECT_TRUE(has_grid || has_run) << e->name;
    if (has_grid) {
      EXPECT_TRUE(static_cast<bool>(e->reduce)) << e->name;
    }
  }
}

TEST(ExpRegistry, FindIsExactAndMissesReturnNull) {
  EXPECT_NE(Registry::instance().find("fig5"), nullptr);
  EXPECT_EQ(Registry::instance().find("fig"), nullptr);
  EXPECT_EQ(Registry::instance().find("fig55"), nullptr);
}

TEST(ExpRegistry, NaturalLessComparesDigitRunsNumerically) {
  EXPECT_TRUE(natural_less("fig5", "fig10"));
  EXPECT_FALSE(natural_less("fig10", "fig5"));
  EXPECT_TRUE(natural_less("fig9", "fig12"));
  EXPECT_TRUE(natural_less("table1", "table3"));
  EXPECT_TRUE(natural_less("ablation_a", "fig1"));
  EXPECT_FALSE(natural_less("fig5", "fig5"));
  EXPECT_TRUE(natural_less("a2b", "a10b"));
}

// ---------------------------------------------------------------------
// Argument parsing and config construction

BenchArgs parse(std::vector<const char*> argv) {
  return parse_bench_args(std::span<const char* const>(argv.data(),
                                                       argv.size()));
}

TEST(ExpParser, ClassifiesFlagsExperimentsAndOverrides) {
  const BenchArgs a = parse({"fig5", "--quick", "seed=7", "fig10",
                             "--threads", "3", "--csv", "c", "--json", "j",
                             "--resume", "r"});
  EXPECT_TRUE(a.error.empty()) << a.error;
  EXPECT_TRUE(a.quick);
  EXPECT_EQ(a.threads, 3u);
  EXPECT_EQ(a.csv_dir, "c");
  EXPECT_EQ(a.json_dir, "j");
  EXPECT_EQ(a.resume_dir, "r");
  EXPECT_EQ(a.experiments, (std::vector<std::string>{"fig5", "fig10"}));
  EXPECT_EQ(a.overrides, (std::vector<std::string>{"seed=7"}));
}

TEST(ExpParser, UnknownOptionIsAnError) {
  EXPECT_FALSE(parse({"--frobnicate"}).error.empty());
  EXPECT_FALSE(parse({"--threads"}).error.empty());  // missing value
}

TEST(ExpParser, OverridesWinOverQuickRegardlessOfOrder) {
  // The legacy bench_util parser applied --quick after the override
  // loop, silently clobbering explicit warmup/measure settings.  The
  // contract now: overrides are applied last, in both argument orders.
  for (const auto& argv :
       {std::vector<const char*>{"fig5", "warmup=5000", "--quick"},
        std::vector<const char*>{"fig5", "--quick", "warmup=5000"}}) {
    const BenchArgs a = parse(argv);
    ASSERT_TRUE(a.error.empty()) << a.error;
    SimConfig cfg;
    ASSERT_EQ(make_base_config(a, cfg), "");
    EXPECT_EQ(cfg.warmup_cycles, 5000u);
    EXPECT_EQ(cfg.measure_cycles, 1200u);  // --quick still sets the rest
    EXPECT_EQ(cfg.drain_cycles, 2000u);
  }
}

TEST(ExpParser, PhaseWindowDefaultsAndQuick) {
  SimConfig cfg;
  ASSERT_EQ(make_base_config(parse({"fig5"}), cfg), "");
  EXPECT_EQ(cfg.warmup_cycles, 1000u);
  EXPECT_EQ(cfg.measure_cycles, 4000u);
  EXPECT_EQ(cfg.drain_cycles, 6000u);

  SimConfig quick;
  ASSERT_EQ(make_base_config(parse({"fig5", "--quick"}), quick), "");
  EXPECT_EQ(quick.warmup_cycles, 300u);
  EXPECT_EQ(quick.measure_cycles, 1200u);
  EXPECT_EQ(quick.drain_cycles, 2000u);
}

TEST(ExpParser, BadOverrideIsReportedNotIgnored) {
  SimConfig cfg;
  EXPECT_NE(make_base_config(parse({"fig5", "no_such_knob=1"}), cfg), "");
}

TEST(ExpParser, FilterFlagIsParsed) {
  const BenchArgs a = parse({"--filter", "fig*", "--quick"});
  EXPECT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(a.filter, "fig*");
  EXPECT_FALSE(parse({"--filter"}).error.empty());  // missing value
}

std::vector<std::string> selected_names(const BenchArgs& a,
                                        std::string* err_out = nullptr) {
  std::vector<const Experiment*> sel;
  const std::string err = select_experiments(a, sel);
  if (err_out != nullptr) *err_out = err;
  std::vector<std::string> names;
  for (const Experiment* e : sel) names.push_back(e->name);
  return names;
}

TEST(ExpFilter, GlobSelectsMatchingExperimentsInRegistryOrder) {
  const auto names = selected_names(parse({"--filter", "fig1?"}));
  EXPECT_EQ(names, (std::vector<std::string>{"fig10", "fig11", "fig12"}));

  const auto tables = selected_names(parse({"--filter", "table*"}));
  EXPECT_EQ(tables, (std::vector<std::string>{"table1", "table2", "table3",
                                              "table_router_zoo",
                                              "table_saturation"}));
}

TEST(ExpFilter, ComposesWithAllAndPositionalsWithoutDuplicates) {
  // --all already selects everything; adding a filter or names that
  // overlap must not run an experiment twice.
  const auto all = selected_names(parse({"--all", "--filter", "fig*",
                                         "fig5"}));
  EXPECT_EQ(all, kExpectedExperiments);

  const auto mix = selected_names(parse({"--filter", "fig5", "fig5",
                                         "table1"}));
  EXPECT_EQ(mix, (std::vector<std::string>{"fig5", "table1"}));
}

TEST(ExpFilter, UnmatchedGlobIsAnErrorListingRegisteredNames) {
  std::string err;
  const auto names = selected_names(parse({"--filter", "zzz*"}), &err);
  EXPECT_TRUE(names.empty());
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("zzz*"), std::string::npos) << err;
  EXPECT_NE(err.find("fig5"), std::string::npos)
      << "error should list registered names: " << err;
}

TEST(ExpFilter, UnknownPositionalIsStillAnError) {
  std::string err;
  selected_names(parse({"no_such_exp"}), &err);
  EXPECT_NE(err.find("no_such_exp"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Execution: warm sweep, campaign, thread invariance

std::vector<std::uint8_t> stats_bytes(const std::vector<RunStats>& stats) {
  SnapshotWriter w;
  for (const RunStats& s : stats) save_run_stats(w, s);
  return w.take();
}

Experiment tiny_experiment() {
  Experiment e;
  e.name = "exp_test_tiny";
  e.title = "harness test grid";
  e.grid = [](const RunContext& ctx) {
    std::vector<SimConfig> cfgs;
    for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::FlitBless}) {
      for (double load : {0.10, 0.25}) {
        SimConfig c = ctx.base;
        c.design = d;
        c.offered_load = load;
        cfgs.push_back(c);
      }
    }
    return cfgs;
  };
  e.reduce = [](const RunContext&, const std::vector<RunStats>& stats) {
    ExperimentResult r;
    r.addf("points: %zu\n", stats.size());
    return r;
  };
  return e;
}

RunOptions tiny_options() {
  RunOptions opt;
  opt.base.mesh_width = 4;
  opt.base.mesh_height = 4;
  opt.base.warmup_cycles = 150;
  opt.base.measure_cycles = 200;
  opt.base.drain_cycles = 400;
  return opt;
}

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("exp_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(ExpExecute, ResultsAreThreadCountInvariant) {
  const Experiment e = tiny_experiment();
  RunOptions one = tiny_options();
  one.threads = 1;
  RunOptions many = tiny_options();
  many.threads = 4;
  const ExperimentResult ra = execute(e, one);
  const ExperimentResult rb = execute(e, many);
  ASSERT_EQ(ra.grid_stats.size(), 4u);
  EXPECT_EQ(ra.executor, "warm_sweep");
  EXPECT_EQ(stats_bytes(ra.grid_stats), stats_bytes(rb.grid_stats));
}

TEST(ExpExecute, CampaignExecutorIsBitIdenticalToWarmSweep) {
  const Experiment e = tiny_experiment();
  const ExperimentResult direct = execute(e, tiny_options());

  RunOptions resumed = tiny_options();
  resumed.resume_dir = scratch_dir("campaign");
  const ExperimentResult first = execute(e, resumed);
  EXPECT_EQ(first.executor, "campaign");
  EXPECT_EQ(stats_bytes(direct.grid_stats), stats_bytes(first.grid_stats));

  // Second run resumes from the completed campaign (pure cache replay)
  // and must reproduce the same bytes.
  const ExperimentResult second = execute(e, resumed);
  EXPECT_EQ(stats_bytes(direct.grid_stats), stats_bytes(second.grid_stats));
}

TEST(ExpExecute, WarmupPinningActivatesGrouping) {
  const Experiment e = tiny_experiment();
  RunOptions opt = tiny_options();
  const ExperimentResult cold = execute(e, opt);
  EXPECT_EQ(cold.warm_groups, 0u);  // warmup_load unset: cold fallback

  RunOptions warm = tiny_options();
  warm.base.warmup_load = 0.10;
  const ExperimentResult grouped = execute(e, warm);
  // Two designs x one pinned warmup: one snapshot group per design.
  EXPECT_EQ(grouped.warm_groups, 2u);
  ASSERT_EQ(grouped.grid_stats.size(), 4u);
}

// ---------------------------------------------------------------------
// JSON output

// Minimal recursive-descent JSON well-formedness checker (no deps).
struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool value();
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    return eat('"');
  }
  bool number_or_word() {
    ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '+' ||
            s[i] == '-' || s[i] == '.')) {
      ++i;
    }
    return i > start;
  }
};

bool JsonCursor::value() {
  ws();
  if (i >= s.size()) return false;
  if (s[i] == '{') {
    ++i;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  if (s[i] == '[') {
    ++i;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  if (s[i] == '"') return string();
  return number_or_word();
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ExpJson, OutputIsWellFormedAndSchemaStamped) {
  const Experiment* fig5 = Registry::instance().find("fig5");
  ASSERT_NE(fig5, nullptr);

  RunOptions opt = tiny_options();
  opt.quick = true;
  opt.json_dir = scratch_dir("json");
  opt.overrides = {"seed=7"};
  opt.base.measure_cycles = 100;  // keep the 63-point grid cheap
  opt.base.warmup_cycles = 50;
  opt.base.drain_cycles = 150;
  const ExperimentResult result = execute(*fig5, opt);
  ASSERT_TRUE(write_json_result(*fig5, result, opt));

  const std::string doc = slurp(fs::path(opt.json_dir) / "fig5.json");
  ASSERT_FALSE(doc.empty());

  JsonCursor c{doc};
  EXPECT_TRUE(c.value() && (c.ws(), c.i == doc.size()))
      << "malformed JSON at offset " << c.i;

  for (const char* needle :
       {"\"schema\": \"dxbar-experiment-result\"", "\"schema_version\": 1",
        "\"experiment\": \"fig5\"", "\"git_describe\"",
        "\"overrides\"", "\"seed=7\"", "\"base_config\"", "\"tables\"",
        "\"x_label\"", "\"series\"", "\"points\"", "\"executor\"",
        "\"offered_load\"", "\"accepted_load\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
}

TEST(ExpJson, IoFailureIsReportedNotSilent) {
  const Experiment e = tiny_experiment();
  RunOptions opt = tiny_options();
  // A path under an existing *file* cannot be created as a directory.
  const std::string file = scratch_dir("jsonfail") + "/blocker";
  std::ofstream(file) << "x";
  opt.json_dir = file + "/sub";
  const ExperimentResult result = execute(e, opt);
  EXPECT_FALSE(write_json_result(e, result, opt));
}

// ---------------------------------------------------------------------
// CSV output

ExperimentResult two_same_titled_tables() {
  ExperimentResult r;
  Table t;
  t.title = "same title";
  t.x_label = "x";
  t.x = {"1", "2"};
  t.series_labels = {"s"};
  t.values = {{1.0, 2.0}};
  r.add_table(t);
  r.add_table(t);
  return r;
}

TEST(ExpCsv, CreatesDirAndDisambiguatesEqualSlugs) {
  Experiment e;
  e.name = "exp_test_csv";
  const std::string dir = scratch_dir("csv") + "/nested/deeper";
  std::vector<std::string> used;
  ASSERT_TRUE(write_csv_tables(e, two_same_titled_tables(), dir, used));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "exp_test_csv_same_title.csv"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "exp_test_csv_same_title_2.csv"));

  // A second experiment session sharing `used` can never overwrite.
  ASSERT_TRUE(write_csv_tables(e, two_same_titled_tables(), dir, used));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "exp_test_csv_same_title_3.csv"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "exp_test_csv_same_title_4.csv"));
}

TEST(ExpCsv, UnwritableDirReportsFailure) {
  Experiment e;
  e.name = "exp_test_csv";
  const std::string file = scratch_dir("csvfail") + "/blocker";
  std::ofstream(file) << "x";
  std::vector<std::string> used;
  EXPECT_FALSE(
      write_csv_tables(e, two_same_titled_tables(), file + "/sub", used));
}

// ---------------------------------------------------------------------
// Warm-sweep grouping report (the runner's executor telemetry)

TEST(ExpWarmReport, GroupsShareWarmupAndColdPointsAreCounted) {
  std::vector<SimConfig> cfgs;
  for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::FlitBless}) {
    for (double load : {0.10, 0.25}) {
      SimConfig c;
      c.mesh_width = 4;
      c.mesh_height = 4;
      c.warmup_cycles = 100;
      c.measure_cycles = 150;
      c.design = d;
      c.offered_load = load;
      c.warmup_load = 0.10;
      cfgs.push_back(c);
    }
  }
  SimConfig cold = cfgs.front();
  cold.warmup_load = -1.0;  // unset: must fall back to a cold run
  cfgs.push_back(cold);

  WarmSweepReport report;
  const auto stats = run_warm_sweep(cfgs, report);
  ASSERT_EQ(stats.size(), cfgs.size());
  EXPECT_EQ(report.groups.size(), 2u);
  EXPECT_EQ(report.warm_points(), 4u);
  EXPECT_EQ(report.cold_points, 1u);

  // Bit-exact vs the plain cold sweep, per the warm-sweep contract.
  const auto cold_stats = run_sweep(cfgs);
  EXPECT_EQ(stats_bytes(stats), stats_bytes(cold_stats));
}

// ---------------------------------------------------------------------
// --seeds N replication

TEST(ExpParser, SeedsFlagIsParsedAndValidated) {
  const BenchArgs ok = parse({"--seeds", "5"});
  EXPECT_TRUE(ok.error.empty()) << ok.error;
  EXPECT_EQ(ok.seeds, 5);
  EXPECT_EQ(parse({}).seeds, 1);  // default: single replica

  EXPECT_NE(parse({"--seeds", "0"}).error.find("--seeds"),
            std::string::npos);
  EXPECT_FALSE(parse({"--seeds", "many"}).error.empty());
  EXPECT_FALSE(parse({"--seeds", "-2"}).error.empty());
  EXPECT_FALSE(parse({"--seeds"}).error.empty());  // missing value
}

/// A grid experiment whose reducer emits a real table (one series over
/// the two offered loads), so replication has columns to widen.
Experiment table_experiment() {
  Experiment e;
  e.name = "exp_test_table";
  e.title = "ci table grid";
  e.grid = [](const RunContext& ctx) {
    std::vector<SimConfig> cfgs;
    for (double load : {0.10, 0.25}) {
      SimConfig c = ctx.base;
      c.design = RouterDesign::DXbar;
      c.offered_load = load;
      cfgs.push_back(c);
    }
    return cfgs;
  };
  e.reduce = [](const RunContext&, const std::vector<RunStats>& stats) {
    ExperimentResult r;
    Table t;
    t.title = "accepted load";
    t.x_label = "offered";
    t.series_labels = {"acc"};
    t.values.resize(1);
    for (const RunStats& s : stats) {
      t.x.push_back(fmt(s.offered_load, "%.2f"));
      t.values[0].push_back(s.accepted_load);
    }
    r.add_table(std::move(t));
    r.addf("rows: %zu\n", stats.size());
    return r;
  };
  return e;
}

TEST(ExpExecute, SeedsExpandTheGridRepMajorWithDerivedSeeds) {
  const Experiment e = table_experiment();
  RunOptions opt = tiny_options();
  opt.seeds = 3;
  const ExperimentResult r = execute(e, opt);

  ASSERT_EQ(r.grid.size(), 6u);  // 2 points x 3 replicas, all raw points
  ASSERT_EQ(r.grid_stats.size(), 6u);
  // Replica 0 is the untouched base grid; later replicas carry derived
  // nonzero measurement seeds, distinct across replicas of one point.
  EXPECT_EQ(r.grid[0].measure_seed, 0u);
  EXPECT_EQ(r.grid[1].measure_seed, 0u);
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_NE(r.grid[i].measure_seed, 0u) << i;
  }
  EXPECT_EQ(r.grid[2].offered_load, r.grid[0].offered_load);
  EXPECT_NE(r.grid[2].measure_seed, r.grid[4].measure_seed);
  // The three replicas of each point share one warmup group.
  EXPECT_EQ(r.warm_groups, 2u);
}

TEST(ExpExecute, SeedsAddMeanAndCiColumnsDeterministically) {
  const Experiment e = table_experiment();
  RunOptions opt = tiny_options();
  opt.seeds = 3;
  const ExperimentResult r = execute(e, opt);

  const Table* table = nullptr;
  for (const Block& b : r.blocks) {
    if (b.kind == Block::Kind::Table) table = &b.table;
  }
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->series_labels.size(), 2u);
  EXPECT_EQ(table->series_labels[0], "acc");
  EXPECT_EQ(table->series_labels[1],
            "acc" + std::string(report::kCiSuffix));

  // Cell = mean of the three replicas of that point (rep-major slices).
  for (std::size_t row = 0; row < 2; ++row) {
    const double mean = (r.grid_stats[row].accepted_load +
                         r.grid_stats[row + 2].accepted_load +
                         r.grid_stats[row + 4].accepted_load) /
                        3.0;
    EXPECT_DOUBLE_EQ(table->values[0][row], mean);
    EXPECT_GE(table->values[1][row], 0.0);  // ci95 halfwidth
  }

  // Replication is deterministic end to end.
  const ExperimentResult again = execute(e, opt);
  EXPECT_EQ(stats_bytes(r.grid_stats), stats_bytes(again.grid_stats));
}

}  // namespace
}  // namespace dxbar::exp
