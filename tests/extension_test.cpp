// Tests for the extension baselines (VC router, AFC router), per-VC
// channel credits, and latency percentiles.
#include <gtest/gtest.h>

#include "router/afc_router.hpp"
#include "router/vc_router.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "topology/channel.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {
namespace {

// ---- per-VC channel credits ---------------------------------------------

TEST(VcChannel, IndependentCreditPools) {
  Channel ch(/*num_vcs=*/2, /*per_vc_credits=*/2);
  EXPECT_EQ(ch.num_vcs(), 2);
  EXPECT_EQ(ch.credits(), 4);

  ch.send_vc(Flit{.packet = 1}, 0);
  ch.advance();
  ch.send_vc(Flit{.packet = 2}, 0);
  ch.advance();
  EXPECT_FALSE(ch.can_send_vc(0));  // VC0 pool exhausted
  EXPECT_TRUE(ch.can_send_vc(1));   // VC1 pool untouched

  ch.return_credit_vc(0);
  EXPECT_FALSE(ch.can_send_vc(0));  // one-cycle return latency
  (void)ch.take_arrival();          // consume, as the network does each cycle
  ch.advance();
  EXPECT_TRUE(ch.can_send_vc(0));
}

TEST(VcChannel, SendTagsFlitWithVc) {
  Channel ch(2, 4);
  ch.send_vc(Flit{.packet = 9}, 1);
  ch.advance();
  ch.advance();
  const auto got = ch.take_arrival();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->vc, 1);
}

TEST(VcChannel, OnlyOneFlitPerCycleAcrossVcs) {
  Channel ch(2, 4);
  ch.send_vc(Flit{}, 0);
  EXPECT_FALSE(ch.can_send_vc(1));  // link occupied this cycle
  ch.advance();
  EXPECT_TRUE(ch.can_send_vc(1));
}

// ---- latency percentiles -------------------------------------------------

TEST(Percentiles, OrderedAndBounded) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.3;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GT(s.latency_p50, 0.0);
  EXPECT_LE(s.latency_p50, s.latency_p95);
  EXPECT_LE(s.latency_p95, s.latency_p99);
  EXPECT_LE(s.latency_p99, s.latency_max);
  EXPECT_LE(s.avg_packet_latency, s.latency_max);
  EXPECT_GE(s.latency_max, s.latency_p50);
}

TEST(Percentiles, EmptyWindowIsZero) {
  StatsCollector sc(0, 10, 4);
  const RunStats s = sc.summarize(0.0, true);
  EXPECT_DOUBLE_EQ(s.latency_p50, 0.0);
  EXPECT_DOUBLE_EQ(s.latency_max, 0.0);
}

// ---- VC router -------------------------------------------------------------

TEST(VcRouter, ConservesFlitsAndDrains) {
  SimConfig cfg;
  cfg.design = RouterDesign::BufferedVC;
  cfg.offered_load = 0.25;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1000;

  Network net(cfg);
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 1000; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 30000 && !net.idle(); ++t) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
}

TEST(VcRouter, SpeculationFailuresHappenUnderLoad) {
  SimConfig cfg;
  cfg.design = RouterDesign::BufferedVC;
  cfg.offered_load = 0.45;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1500;

  Network net(cfg);
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 1500; ++t) net.step();

  std::uint64_t failures = 0;
  for (NodeId n = 0; n < 64; ++n) {
    failures += dynamic_cast<const VcRouter&>(net.router(n))
                    .speculation_failures();
  }
  EXPECT_GT(failures, 0u)
      << "speculative SA must sometimes win without a downstream credit";
}

TEST(VcRouter, RespectsVcDepthDivisibility) {
  SimConfig cfg;
  cfg.design = RouterDesign::BufferedVC;
  cfg.buffer_depth = 5;
  cfg.num_vcs = 2;
  EXPECT_NE(cfg.validate(), "");
  cfg.buffer_depth = 4;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(VcRouter, WestFirstWorksToo) {
  SimConfig cfg;
  cfg.design = RouterDesign::BufferedVC;
  cfg.routing = RoutingAlgo::WestFirst;
  cfg.offered_load = 0.2;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  const RunStats s = run_open_loop(cfg);
  EXPECT_TRUE(s.drained);
  EXPECT_NEAR(s.accepted_load, 0.2, 0.02);
}

// ---- AFC router -------------------------------------------------------------

TEST(Afc, StaysBufferlessAtLowLoad) {
  SimConfig cfg;
  cfg.design = RouterDesign::Afc;
  cfg.offered_load = 0.05;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1500;

  Network net(cfg);
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 1500; ++t) net.step();

  int buffered = 0;
  for (NodeId n = 0; n < 64; ++n) {
    if (dynamic_cast<const AfcRouter&>(net.router(n)).buffered_mode()) {
      ++buffered;
    }
  }
  EXPECT_LT(buffered, 8) << "low load must keep routers bufferless";

  // Bufferless mode spends no buffer energy.
  EXPECT_LT(net.energy().buffer_nj(), net.energy().total_nj() * 0.01);
}

TEST(Afc, SwitchesToBufferedAtHighLoad) {
  SimConfig cfg;
  cfg.design = RouterDesign::Afc;
  cfg.offered_load = 0.6;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1500;

  Network net(cfg);
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 1500; ++t) net.step();

  int buffered = 0;
  std::uint64_t switches = 0;
  for (NodeId n = 0; n < 64; ++n) {
    const auto& r = dynamic_cast<const AfcRouter&>(net.router(n));
    if (r.buffered_mode()) ++buffered;
    switches += r.mode_switches();
  }
  EXPECT_GT(buffered, 16) << "center routers must switch to buffered mode";
  EXPECT_GT(switches, 0u);
  EXPECT_GT(net.energy().buffer_nj(), 0.0);
}

TEST(Afc, ConservesFlitsAcrossModeSwitches) {
  // Alternate heavy bursts with silence to force repeated transitions.
  SimConfig cfg;
  cfg.design = RouterDesign::Afc;
  cfg.packet_length = 1;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;

  std::vector<TraceEntry> entries;
  Rng rng(5);
  for (int burst = 0; burst < 6; ++burst) {
    const Cycle base = static_cast<Cycle>(burst) * 400;
    for (Cycle t = 0; t < 120; ++t) {
      for (int k = 0; k < 3; ++k) {
        const NodeId src = rng.below(64);
        NodeId dst = rng.below(64);
        if (dst == src) dst = (dst + 1) % 64;
        entries.push_back({base + t, src, dst, 1});
      }
    }
  }
  const std::size_t total = entries.size();

  Network net(cfg);
  TraceWorkload w(std::move(entries));
  net.set_workload(&w);
  Cycle t = 0;
  while ((!w.finished() || !net.idle()) && t < 100000) {
    net.step();
    ++t;
  }
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.packets_delivered(), total);
}

TEST(Afc, EnergyBetweenBlessAndBuffered) {
  SimConfig cfg;
  cfg.offered_load = 0.45;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;

  cfg.design = RouterDesign::Afc;
  const RunStats afc = run_open_loop(cfg);
  cfg.design = RouterDesign::FlitBless;
  const RunStats bless = run_open_loop(cfg);

  // Past Bless's saturation, AFC's buffered mode must beat pure
  // deflection on energy.
  EXPECT_LT(afc.energy_per_packet_nj(), bless.energy_per_packet_nj());
}

}  // namespace
}  // namespace dxbar
