// Snapshot/restore subsystem tests.
//
// The keystone property: running N cycles, snapshotting, restoring (in
// process or from bytes into a fresh network) and running M more cycles
// produces bit-identical RunStats to the straight N+M run — for every
// router design, with crossbar faults mid-BIST, with link faults, and
// with SCARAB retransmissions in flight.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/dxbar.hpp"
#include "fault/link_faults.hpp"
#include "routing/route_cache.hpp"
#include "routing/route_table.hpp"

namespace dxbar {
namespace {

constexpr std::uint32_t kSecWorkload = section_tag("WKLD");

std::vector<std::uint8_t> stats_bytes(const RunStats& s) {
  SnapshotWriter w;
  save_run_stats(w, s);
  return w.take();
}

std::vector<std::uint8_t> snapshot_with_workload(
    const Network& net, const SyntheticWorkload& workload) {
  SnapshotWriter w;
  net.save(w);
  w.begin_section(kSecWorkload);
  workload.save_state(w);
  w.end_section();
  return w.take();
}

void restore_with_workload(Network& net, SyntheticWorkload& workload,
                           const std::vector<std::uint8_t>& bytes) {
  SnapshotReader r(bytes);
  net.load(r);
  (void)r.expect_section(kSecWorkload);
  workload.load_state(r);
}

SimConfig small_cfg(RouterDesign design) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.design = design;
  cfg.pattern = TrafficPattern::UniformRandom;
  cfg.offered_load = 0.20;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 300;
  return cfg;
}

/// Straight run vs snapshot-at-`snap_at` + bytes-restore-into-fresh run.
void expect_fork_bit_exact(const SimConfig& cfg, Cycle snap_at) {
  const RunStats straight = run_open_loop(cfg);

  Network net(cfg);
  SyntheticWorkload workload(cfg, net.mesh());
  net.set_workload(&workload);
  advance_open_loop(net, snap_at);
  ASSERT_EQ(net.now(), snap_at);
  const auto bytes = snapshot_with_workload(net, workload);

  Network fresh(cfg);
  SyntheticWorkload fresh_workload(cfg, fresh.mesh());
  fresh.set_workload(&fresh_workload);
  restore_with_workload(fresh, fresh_workload, bytes);
  EXPECT_EQ(fresh.now(), snap_at);
  EXPECT_EQ(fresh.flits_created(), net.flits_created());

  const RunStats resumed = finish_open_loop(fresh, fresh_workload);
  EXPECT_EQ(stats_bytes(resumed), stats_bytes(straight));
}

// --- snapshot x sharding interplay ------------------------------------
//
// Shard layout is structural, not serialized: a DXSN checkpoint taken at
// any shard count must restore into a network running at any other, and
// the resumed run must match the straight single-threaded run bit-exactly.
// Snapshots happen at step boundaries, where per-shard transients (staged
// drops, unfolded energy counts, injection tallies) are all committed, so
// there is nothing shard-shaped to serialize.
void expect_cross_shard_fork_bit_exact(SimConfig cfg, Cycle snap_at,
                                       int save_shards, int restore_shards) {
  cfg.shards = 1;
  const RunStats straight = run_open_loop(cfg);

  cfg.shards = save_shards;
  Network net(cfg);
  SyntheticWorkload workload(cfg, net.mesh());
  net.set_workload(&workload);
  advance_open_loop(net, snap_at);
  ASSERT_EQ(net.now(), snap_at);
  const auto bytes = snapshot_with_workload(net, workload);

  cfg.shards = restore_shards;
  Network fresh(cfg);
  SyntheticWorkload fresh_workload(cfg, fresh.mesh());
  fresh.set_workload(&fresh_workload);
  restore_with_workload(fresh, fresh_workload, bytes);
  EXPECT_EQ(fresh.now(), snap_at);
  EXPECT_EQ(fresh.flits_created(), net.flits_created());

  const RunStats resumed = finish_open_loop(fresh, fresh_workload);
  EXPECT_EQ(stats_bytes(resumed), stats_bytes(straight));
}

class ShardSnapshotInterplayTest
    : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(ShardSnapshotInterplayTest, SaveShardedRestoreAtDifferentShardCount) {
  SimConfig cfg = small_cfg(GetParam());
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.offered_load = 0.30;
  // 4-way save -> 2-way restore, mid-measurement (retransmissions and
  // BIST-free steady state in flight).
  expect_cross_shard_fork_bit_exact(cfg, 350, 4, 2);
  // Sharded save -> single-threaded restore and the reverse.
  expect_cross_shard_fork_bit_exact(cfg, 350, 2, 1);
  expect_cross_shard_fork_bit_exact(cfg, 350, 1, 4);
}

INSTANTIATE_TEST_SUITE_P(Designs, ShardSnapshotInterplayTest,
                         ::testing::Values(RouterDesign::DXbar,
                                           RouterDesign::Scarab,
                                           RouterDesign::BufferedVC),
                         [](const auto& info) {
                           std::string name;
                           for (char c : to_string(info.param)) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               name += c;
                             }
                           }
                           return name;
                         });

class SnapshotDesignTest : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(SnapshotDesignTest, MidMeasureForkIsBitExact) {
  expect_fork_bit_exact(small_cfg(GetParam()), 350);
}

TEST_P(SnapshotDesignTest, MidWarmupForkIsBitExact) {
  expect_fork_bit_exact(small_cfg(GetParam()), 120);
}

TEST_P(SnapshotDesignTest, InProcessRestoreRewindsAFinishedNetwork) {
  const SimConfig cfg = small_cfg(GetParam());
  Network net(cfg);
  SyntheticWorkload workload(cfg, net.mesh());
  net.set_workload(&workload);
  advance_open_loop(net, 350);
  const auto bytes = snapshot_with_workload(net, workload);

  // Finish the run (drains the network, disables injection), then rewind
  // the SAME network/workload pair to the snapshot and finish again: the
  // two finishes must agree bit-exactly with each other and with a cold
  // run — save() must not perturb and load() must fully reset.
  const RunStats first = finish_open_loop(net, workload);
  restore_with_workload(net, workload, bytes);
  const RunStats second = finish_open_loop(net, workload);
  EXPECT_EQ(stats_bytes(first), stats_bytes(second));
  EXPECT_EQ(stats_bytes(first), stats_bytes(run_open_loop(cfg)));
}

INSTANTIATE_TEST_SUITE_P(
    Designs, SnapshotDesignTest,
    ::testing::Values(RouterDesign::FlitBless, RouterDesign::Scarab,
                      RouterDesign::Buffered4, RouterDesign::Buffered8,
                      RouterDesign::DXbar, RouterDesign::UnifiedXbar,
                      RouterDesign::BufferedVC, RouterDesign::Afc,
                      RouterDesign::Damq, RouterDesign::MinBD),
    [](const auto& info) {
      std::string name;
      for (char c : to_string(info.param)) {
        if (std::isalnum(static_cast<unsigned char>(c))) name += c;
      }
      return name;
    });

TEST(SnapshotFaults, CrossbarFaultsWithBistTimersMidFlight) {
  SimConfig cfg = small_cfg(RouterDesign::DXbar);
  cfg.fault_fraction = 0.25;
  // Onsets scattered across the run with a long detection delay, so at
  // the snapshot point some faults have manifested but are not yet
  // detected — the restore must reproduce those pending BIST timers.
  cfg.fault_onset_spread = 400;
  cfg.fault_detect_delay = 150;
  expect_fork_bit_exact(cfg, 300);
}

TEST(SnapshotFaults, LinkFaultedTopologyForkIsBitExact) {
  SimConfig cfg = small_cfg(RouterDesign::DXbar);
  cfg.link_fault_fraction = 0.2;
  expect_fork_bit_exact(cfg, 350);
}

TEST(SnapshotFaults, ScarabRetransmissionsInFlight) {
  SimConfig cfg = small_cfg(RouterDesign::Scarab);
  cfg.offered_load = 0.35;     // past SCARAB's comfort zone: forces drops
  cfg.retransmit_buffer = 4;   // small, so staging backs up too
  expect_fork_bit_exact(cfg, 350);
}

TEST(SnapshotFaults, TorusForkIsBitExact) {
  SimConfig cfg = small_cfg(RouterDesign::Scarab);
  cfg.torus = true;
  ASSERT_EQ(cfg.validate(), "");
  expect_fork_bit_exact(cfg, 350);
}

// --- convenience byte API ------------------------------------------------

TEST(Snapshot, RestoreBytesReproducesDrainTrajectory) {
  const SimConfig cfg = small_cfg(RouterDesign::DXbar);
  Network net(cfg);
  SyntheticWorkload workload(cfg, net.mesh());
  net.set_workload(&workload);
  advance_open_loop(net, 350);
  net.set_workload(nullptr);  // no more injection: pure drain from here

  Network fresh(cfg);
  fresh.restore(net.snapshot());
  for (int t = 0; t < 200; ++t) {
    net.step();
    fresh.step();
  }
  EXPECT_EQ(fresh.now(), net.now());
  EXPECT_EQ(fresh.flits_created(), net.flits_created());
  EXPECT_EQ(fresh.flits_delivered(), net.flits_delivered());
  EXPECT_EQ(fresh.packets_delivered(), net.packets_delivered());
  EXPECT_EQ(fresh.energy().total_nj(), net.energy().total_nj());
}

// --- error handling ------------------------------------------------------

TEST(SnapshotErrors, BadMagicIsRejected) {
  Network net(small_cfg(RouterDesign::DXbar));
  auto bytes = net.snapshot();
  bytes[0] ^= 0xFF;
  Network other(small_cfg(RouterDesign::DXbar));
  EXPECT_THROW(other.restore(bytes), SnapshotError);
}

TEST(SnapshotErrors, UnsupportedVersionIsRejected) {
  Network net(small_cfg(RouterDesign::DXbar));
  auto bytes = net.snapshot();
  bytes[4] = 0x7F;  // version lives right after the u32 magic
  bytes[5] = 0x00;
  Network other(small_cfg(RouterDesign::DXbar));
  EXPECT_THROW(other.restore(bytes), SnapshotError);
}

TEST(SnapshotErrors, TruncatedStreamIsRejected) {
  Network net(small_cfg(RouterDesign::DXbar));
  auto bytes = net.snapshot();
  bytes.resize(bytes.size() / 2);
  Network other(small_cfg(RouterDesign::DXbar));
  EXPECT_THROW(other.restore(bytes), SnapshotError);
}

TEST(SnapshotErrors, TamperedSectionTagIsRejected) {
  Network net(small_cfg(RouterDesign::DXbar));
  auto bytes = net.snapshot();
  bytes[8] ^= 0xFF;  // first section tag follows the 8-byte header
  Network other(small_cfg(RouterDesign::DXbar));
  EXPECT_THROW(other.restore(bytes), SnapshotError);
}

TEST(SnapshotErrors, StructuralMismatchIsRejected) {
  Network net(small_cfg(RouterDesign::DXbar));
  const auto bytes = net.snapshot();

  Network other_design(small_cfg(RouterDesign::FlitBless));
  EXPECT_THROW(other_design.restore(bytes), SnapshotError);

  SimConfig other_seed_cfg = small_cfg(RouterDesign::DXbar);
  other_seed_cfg.seed = 99;
  Network other_seed(other_seed_cfg);
  EXPECT_THROW(other_seed.restore(bytes), SnapshotError);
}

// --- value-type round trips ---------------------------------------------

TEST(SnapshotValues, RngRoundTripIsBitExact) {
  Rng a(42);
  for (int i = 0; i < 100; ++i) (void)a.uniform();
  SnapshotWriter w;
  a.save(w);
  const double expect0 = a.uniform();
  const double expect1 = a.uniform();

  Rng b(7);
  SnapshotReader r(w.data());
  b.load(r);
  EXPECT_EQ(b.uniform(), expect0);
  EXPECT_EQ(b.uniform(), expect1);
}

TEST(SnapshotValues, FlitRoundTrip) {
  Flit f;
  f.packet = 12345;
  f.seq = 3;
  f.packet_len = 5;
  f.src = 7;
  f.dst = 42;
  f.injected_at = 1000;
  f.born_at = 998;
  f.vc = 1;
  f.deflections = 2;
  f.retransmits = 1;
  f.hops = 9;
  SnapshotWriter w;
  save_flit(w, f);
  SnapshotReader r(w.data());
  const Flit g = load_flit(r);
  EXPECT_EQ(g.packet, f.packet);
  EXPECT_EQ(g.seq, f.seq);
  EXPECT_EQ(g.packet_len, f.packet_len);
  EXPECT_EQ(g.src, f.src);
  EXPECT_EQ(g.dst, f.dst);
  EXPECT_EQ(g.injected_at, f.injected_at);
  EXPECT_EQ(g.born_at, f.born_at);
  EXPECT_EQ(g.vc, f.vc);
  EXPECT_EQ(g.deflections, f.deflections);
  EXPECT_EQ(g.retransmits, f.retransmits);
  EXPECT_EQ(g.hops, f.hops);
}

TEST(SnapshotValues, ConfigRoundTripAndFingerprint) {
  SimConfig cfg = small_cfg(RouterDesign::UnifiedXbar);
  cfg.torus = false;
  cfg.warmup_load = 0.15;
  SnapshotWriter w;
  save_config(w, cfg);
  SnapshotReader r(w.data());
  const SimConfig back = load_config(r);
  EXPECT_EQ(back.design, cfg.design);
  EXPECT_EQ(back.mesh_width, cfg.mesh_width);
  EXPECT_EQ(back.offered_load, cfg.offered_load);
  EXPECT_EQ(back.warmup_load, cfg.warmup_load);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(structural_fingerprint(back), structural_fingerprint(cfg));

  // Workload-level fields do not change the structural identity...
  SimConfig fork = cfg;
  fork.offered_load = 0.77;
  fork.warmup_load = -1.0;
  fork.pattern = TrafficPattern::BitReversal;
  fork.drain_cycles += 1000;
  EXPECT_EQ(structural_fingerprint(fork), structural_fingerprint(cfg));

  // ...while structural fields do.
  SimConfig other = cfg;
  other.buffer_depth = 8;
  EXPECT_NE(structural_fingerprint(other), structural_fingerprint(cfg));
  other = cfg;
  other.seed = 2;
  EXPECT_NE(structural_fingerprint(other), structural_fingerprint(cfg));
  other = cfg;
  other.link_fault_fraction = 0.1;
  EXPECT_NE(structural_fingerprint(other), structural_fingerprint(cfg));
}

// tech_node feeds the derived energy/area parameters, so it is part of
// the structural identity and must survive a snapshot round trip.
TEST(SnapshotValues, TechNodeRoundTripAndFingerprint) {
  SimConfig cfg = small_cfg(RouterDesign::DXbar);
  cfg.tech_node = 32;
  SnapshotWriter w;
  save_config(w, cfg);
  SnapshotReader r(w.data());
  const SimConfig back = load_config(r);
  EXPECT_EQ(back.tech_node, 32);
  EXPECT_EQ(structural_fingerprint(back), structural_fingerprint(cfg));

  SimConfig other = cfg;
  other.tech_node = 16;
  EXPECT_NE(structural_fingerprint(other), structural_fingerprint(cfg));
}

// --- warm-start sweeps ---------------------------------------------------

TEST(WarmSweep, BitIdenticalToColdSweep) {
  std::vector<SimConfig> configs;
  for (RouterDesign d : {RouterDesign::DXbar, RouterDesign::Buffered4}) {
    for (double load : {0.10, 0.20, 0.30}) {
      SimConfig cfg = small_cfg(d);
      cfg.offered_load = load;
      cfg.warmup_load = 0.15;
      configs.push_back(cfg);
    }
  }
  // One config without a warmup_load: exercises the cold fallback path
  // inside run_warm_sweep.
  configs.push_back(small_cfg(RouterDesign::FlitBless));

  const auto cold = run_sweep(configs, 1);
  const auto warm = run_warm_sweep(configs, 1);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(stats_bytes(cold[i]), stats_bytes(warm[i])) << "point " << i;
  }
}

TEST(WarmSweep, SharedWarmupActuallyShares) {
  // Distinct warmup_loads must land in distinct groups — otherwise the
  // fork would silently replay the wrong warmup traffic.
  SimConfig a = small_cfg(RouterDesign::DXbar);
  a.warmup_load = 0.10;
  SimConfig b = a;
  b.warmup_load = 0.20;
  const auto ra = run_warm_sweep({a}, 1);
  const auto rb = run_warm_sweep({b}, 1);
  // Same offered_load, different warmup traffic: the measured windows
  // start from different network states and must not match.
  EXPECT_NE(stats_bytes(ra[0]), stats_bytes(rb[0]));
}

// --- route cache/table consistency (satellite: invalidation coverage) ----

TEST(RouteCacheInvalidation, LinkFaultsForceTheBfsTable) {
  const SimConfig healthy = small_cfg(RouterDesign::DXbar);
  Network h(healthy);
  EXPECT_TRUE(h.using_route_cache());
  EXPECT_FALSE(h.using_route_table());

  SimConfig faulted = healthy;
  faulted.link_fault_fraction = 0.2;
  Network f(faulted);
  ASSERT_TRUE(f.link_faults().any());
  EXPECT_TRUE(f.using_route_table());
  EXPECT_FALSE(f.using_route_cache());
}

TEST(RouteCacheInvalidation, DegradedTableNeverServesDeadLinks) {
  const Mesh mesh(6, 6);
  const LinkFaultPlan faults(mesh, 0.2, 7);
  ASSERT_TRUE(faults.any());
  const RouteTable table(
      mesh, [&](NodeId n, Direction d) { return faults.alive(n, d); });
  const RouteCache stale_cache(RoutingAlgo::DOR, mesh);  // healthy-only

  bool stale_cache_crosses_dead_link = false;
  for (NodeId s = 0; s < static_cast<NodeId>(mesh.num_nodes()); ++s) {
    for (NodeId d = 0; d < static_cast<NodeId>(mesh.num_nodes()); ++d) {
      if (s == d) continue;
      for (Direction dir : table.routes(s, d)) {
        EXPECT_TRUE(faults.alive(s, dir))
            << "BFS table routed over dead link at node " << s;
      }
      for (Direction dir : stale_cache.routes(s, d)) {
        if (!faults.alive(s, dir)) stale_cache_crosses_dead_link = true;
      }
    }
  }
  // The healthy-topology cache WOULD cross dead links on this plan —
  // which is exactly why a link-faulted network must never build it
  // (LinkFaultsForceTheBfsTable) and why the structural fingerprint
  // refuses to restore across a link-fault config change.
  EXPECT_TRUE(stale_cache_crosses_dead_link);
}

TEST(RouteCacheInvalidation, RestoreRebuildsTheRightRoutingStructure) {
  SimConfig faulted = small_cfg(RouterDesign::DXbar);
  faulted.link_fault_fraction = 0.2;
  Network net(faulted);
  SyntheticWorkload workload(faulted, net.mesh());
  net.set_workload(&workload);
  advance_open_loop(net, 250);
  const auto bytes = net.snapshot();

  Network fresh(faulted);
  fresh.restore(bytes);
  // A restored network derives its routing structure from construction,
  // so the degraded topology keeps the BFS table (never a stale cache).
  EXPECT_TRUE(fresh.using_route_table());
  EXPECT_FALSE(fresh.using_route_cache());

  // And a healthy network refuses the degraded snapshot outright.
  Network healthy(small_cfg(RouterDesign::DXbar));
  EXPECT_THROW(healthy.restore(bytes), SnapshotError);
}

}  // namespace
}  // namespace dxbar
