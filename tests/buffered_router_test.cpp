// Focused tests for the generic buffered baseline routers and the
// remaining channel corner cases.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {
namespace {

std::vector<PacketRecord> run_trace(SimConfig cfg,
                                    std::vector<TraceEntry> entries,
                                    Cycle max_cycles = 20000) {
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = max_cycles;
  Network net(cfg);
  TraceWorkload w(std::move(entries));

  std::vector<PacketRecord> done;
  class Tap final : public WorkloadModel {
   public:
    Tap(TraceWorkload& inner, std::vector<PacketRecord>& out)
        : inner_(inner), out_(out) {}
    void begin_cycle(Cycle now, Injector& inject) override {
      inner_.begin_cycle(now, inject);
    }
    void on_packet_delivered(const PacketRecord& rec, Cycle,
                             Injector&) override {
      out_.push_back(rec);
    }
   private:
    TraceWorkload& inner_;
    std::vector<PacketRecord>& out_;
  } tap(w, done);
  net.set_workload(&tap);

  for (Cycle t = 0; t < max_cycles; ++t) {
    net.step();
    if (w.finished() && net.idle()) break;
  }
  EXPECT_TRUE(net.idle());
  return done;
}

SimConfig small(RouterDesign d) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.design = d;
  cfg.packet_length = 1;
  return cfg;
}

// The 3-stage pipeline: a flit written into the FIFO is not eligible
// for switch allocation until the next cycle.
TEST(BufferedRouter, BufferWriteCostsOneCyclePerHop) {
  const Mesh m(4, 4);
  const auto done = run_trace(small(RouterDesign::Buffered4),
                              {{0, m.node(0, 0), m.node(2, 0), 1}});
  ASSERT_EQ(done.size(), 1u);
  // Timeline: inject/ST at cycle 0, arrive (1,0) at 2 (2-cycle link
  // pipeline), buffer-write stage makes it eligible at 3, ST at 3,
  // arrive (2,0) at 5, eligible 6, eject 6 — i.e. 3 cycles per hop
  // against DXbar's 2.  Pinned exactly so pipeline regressions are
  // caught.
  EXPECT_EQ(done[0].network_latency(), 6u);
}

TEST(BufferedRouter, CreditsStallInjectionWhenDownstreamFull) {
  // Saturate one link: a stream from (0,0) to (3,0) at 1 packet/cycle
  // cannot exceed the link bandwidth; the source queue absorbs the rest
  // and everything still drains.
  const Mesh m(4, 4);
  std::vector<TraceEntry> entries;
  for (Cycle t = 0; t < 100; ++t) {
    entries.push_back({t, m.node(0, 0), m.node(3, 0), 1});
  }
  const auto done = run_trace(small(RouterDesign::Buffered4), entries);
  EXPECT_EQ(done.size(), 100u);
}

TEST(BufferedRouter, Buffered8AcceptsMoreThanBuffered4PastSaturation) {
  SimConfig cfg;
  cfg.offered_load = 0.45;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;

  cfg.design = RouterDesign::Buffered4;
  const RunStats b4 = run_open_loop(cfg);
  cfg.design = RouterDesign::Buffered8;
  const RunStats b8 = run_open_loop(cfg);
  EXPECT_GT(b8.accepted_load, b4.accepted_load * 1.1);
}

TEST(BufferedRouter, WestFirstAdaptivityHelpsTranspose) {
  SimConfig cfg;
  cfg.design = RouterDesign::Buffered8;
  cfg.pattern = TrafficPattern::Transpose;
  cfg.offered_load = 0.4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;

  const RunStats dor = run_open_loop(cfg);
  cfg.routing = RoutingAlgo::WestFirst;
  const RunStats wf = run_open_loop(cfg);
  EXPECT_GT(wf.accepted_load, dor.accepted_load);
}

// Channel: stop combined with per-VC credits.
TEST(VcChannel, StopBlocksAllVcs) {
  Channel ch(2, 4);
  ch.set_stop(true);
  ch.advance();
  EXPECT_FALSE(ch.can_send_vc(0));
  EXPECT_FALSE(ch.can_send_vc(1));
  ch.set_stop(false);
  ch.advance();
  EXPECT_TRUE(ch.can_send_vc(0));
}

// Splash message mix: data packets (5 flits) must appear once replies
// start flowing, and the control/data split must look MESI-like.
TEST(Splash, MessageMixContainsControlAndData) {
  SimConfig cfg;
  const Mesh m(8, 8);
  SplashProfile app = *find_splash_profile("Ocean");
  app.transactions_per_node = 30;
  const auto trace = generate_splash_trace(app, cfg, m);

  std::size_t control = 0, data = 0;
  for (const TraceEntry& e : trace) {
    if (e.length == 1) {
      ++control;
    } else {
      ++data;
    }
  }
  EXPECT_GT(control, 0u);
  EXPECT_GT(data, 0u);
  // Every transaction produces exactly one data reply (less the
  // self-homed ones) plus 1-3 control messages.
  EXPECT_GT(control, data / 2);
  EXPECT_LT(control, data * 4);
}

TEST(Splash, WriteFractionDrivesInvalidationTraffic) {
  SimConfig cfg;
  const Mesh m(8, 8);
  SplashProfile reads = *find_splash_profile("Raytrace");  // 15% writes
  SplashProfile writes = *find_splash_profile("Radix");    // 45% writes
  reads.transactions_per_node = 30;
  writes.transactions_per_node = 30;
  // Equalize issue behaviour so only the write mix differs.
  writes.intensity = reads.intensity;
  writes.on_to_off = reads.on_to_off;
  writes.off_to_on = reads.off_to_on;

  const auto a = generate_splash_trace(reads, cfg, m);
  const auto b = generate_splash_trace(writes, cfg, m);
  // More writes -> more inval/ack control messages per transaction.
  const double ctrl_a = static_cast<double>(std::count_if(
      a.begin(), a.end(), [](const TraceEntry& e) { return e.length == 1; }));
  const double ctrl_b = static_cast<double>(std::count_if(
      b.begin(), b.end(), [](const TraceEntry& e) { return e.length == 1; }));
  EXPECT_GT(ctrl_b / static_cast<double>(b.size()),
            ctrl_a / static_cast<double>(a.size()));
}

}  // namespace
}  // namespace dxbar
