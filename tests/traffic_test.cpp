// Tests for traffic/: pattern definitions, Bernoulli injection rates,
// the SPLASH-2 substitute, and trace I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "traffic/patterns.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace_io.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {
namespace {

// Collects everything a workload injects.
class CapturingInjector final : public Injector {
 public:
  struct Entry {
    NodeId src, dst;
    int length;
    Cycle when;
  };

  PacketId inject_packet(NodeId src, NodeId dst, int length,
                         Cycle now) override {
    entries.push_back({src, dst, length, now});
    return static_cast<PacketId>(entries.size());
  }

  std::vector<Entry> entries;
};

TEST(Patterns, DeterministicPatternsArePermutations) {
  const Mesh m(8, 8);
  Rng rng(1);
  for (TrafficPattern p :
       {TrafficPattern::BitReversal, TrafficPattern::Butterfly,
        TrafficPattern::Complement, TrafficPattern::Transpose,
        TrafficPattern::PerfectShuffle, TrafficPattern::Neighbor,
        TrafficPattern::Tornado}) {
    std::array<int, 64> hits{};
    for (NodeId s = 0; s < 64; ++s) {
      const NodeId d = pattern_destination(p, m, s, rng);
      ASSERT_LT(d, 64u);
      ++hits[d];
    }
    for (int h : hits) {
      EXPECT_EQ(h, 1) << "pattern " << to_string(p) << " is not a bijection";
    }
  }
}

TEST(Patterns, KnownValues) {
  const Mesh m(8, 8);
  Rng rng(1);
  // Complement of node 0 (000000) is node 63.
  EXPECT_EQ(pattern_destination(TrafficPattern::Complement, m, 0, rng), 63u);
  // Bit reversal of 0b000001 on 6 bits is 0b100000 = 32.
  EXPECT_EQ(pattern_destination(TrafficPattern::BitReversal, m, 1, rng), 32u);
  // Transpose of (3, 1) = node 11 is (1, 3) = node 25.
  EXPECT_EQ(pattern_destination(TrafficPattern::Transpose, m, m.node(3, 1), rng),
            m.node(1, 3));
  // Neighbor of (7, 0) wraps to (0, 0).
  EXPECT_EQ(pattern_destination(TrafficPattern::Neighbor, m, m.node(7, 0), rng),
            m.node(0, 0));
  // Tornado from (0, 2) goes ceil(8/2)-1 = 3 to the east.
  EXPECT_EQ(pattern_destination(TrafficPattern::Tornado, m, m.node(0, 2), rng),
            m.node(3, 2));
  // Butterfly swaps MSB/LSB: 0b000001 -> 0b100000.
  EXPECT_EQ(pattern_destination(TrafficPattern::Butterfly, m, 1, rng), 32u);
  // Perfect shuffle rotates left: 0b100000 -> 0b000001.
  EXPECT_EQ(pattern_destination(TrafficPattern::PerfectShuffle, m, 32, rng),
            1u);
}

TEST(Patterns, UniformRandomNeverSelf) {
  const Mesh m(8, 8);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const NodeId s = rng.below(64);
    const NodeId d =
        pattern_destination(TrafficPattern::UniformRandom, m, s, rng);
    ASSERT_NE(d, s);
    ASSERT_LT(d, 64u);
  }
}

TEST(Patterns, UniformRandomCoversAllDestinations) {
  const Mesh m(4, 4);
  Rng rng(7);
  std::array<int, 16> hits{};
  for (int i = 0; i < 4000; ++i) {
    ++hits[pattern_destination(TrafficPattern::UniformRandom, m, 0, rng)];
  }
  EXPECT_EQ(hits[0], 0);
  for (NodeId d = 1; d < 16; ++d) EXPECT_GT(hits[d], 150);
}

TEST(Patterns, HotspotBiasInNUR) {
  const Mesh m(8, 8);
  Rng rng(5);
  int hot = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    const NodeId s = rng.below(64);
    const NodeId d =
        pattern_destination(TrafficPattern::NonUniformRandom, m, s, rng);
    if (is_hotspot(m, d)) ++hot;
  }
  // 4/64 nodes would get ~6.3% under UR; NUR adds 25% directed traffic.
  const double frac = static_cast<double>(hot) / total;
  EXPECT_GT(frac, 0.20);
  EXPECT_LT(frac, 0.40);
}

TEST(Patterns, HotspotGroupIsCenterFour) {
  const Mesh m(8, 8);
  int count = 0;
  for (NodeId n = 0; n < 64; ++n) {
    if (is_hotspot(m, n)) ++count;
  }
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(is_hotspot(m, m.node(3, 3)));
  EXPECT_TRUE(is_hotspot(m, m.node(4, 4)));
  EXPECT_FALSE(is_hotspot(m, m.node(0, 0)));
}

TEST(Synthetic, InjectionRateMatchesOfferedLoad) {
  SimConfig cfg;
  cfg.offered_load = 0.4;
  cfg.packet_length = 5;
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  CapturingInjector sink;
  const int cycles = 4000;
  for (Cycle t = 0; t < static_cast<Cycle>(cycles); ++t) {
    w.begin_cycle(t, sink);
  }
  // Offered flits per node per cycle should approximate the load.
  double flits = 0;
  for (const auto& e : sink.entries) flits += e.length;
  const double rate = flits / (64.0 * cycles);
  EXPECT_NEAR(rate, 0.4, 0.02);
}

TEST(Synthetic, DisableStopsInjection) {
  SimConfig cfg;
  cfg.offered_load = 0.5;
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  CapturingInjector sink;
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 100; ++t) w.begin_cycle(t, sink);
  EXPECT_TRUE(sink.entries.empty());
}

TEST(Splash, ProfilesCoverPaperApplications) {
  const auto& profiles = splash_profiles();
  ASSERT_EQ(profiles.size(), 9u);
  for (const char* name : {"FFT", "LU", "Radiosity", "Ocean", "Raytrace",
                           "Radix", "Water", "FMM", "Barnes"}) {
    EXPECT_NE(find_splash_profile(name), nullptr) << name;
  }
  EXPECT_EQ(find_splash_profile("fft"), find_splash_profile("FFT"));
  EXPECT_EQ(find_splash_profile("nope"), nullptr);
}

TEST(Splash, RequestsGoToMemoryControllers) {
  SimConfig cfg;
  const Mesh m(8, 8);
  SplashWorkload w(*find_splash_profile("Radix"), cfg, m);
  CapturingInjector sink;
  for (Cycle t = 0; t < 500; ++t) w.begin_cycle(t, sink);
  ASSERT_FALSE(sink.entries.empty());
  for (const auto& e : sink.entries) {
    const Coord c = m.coord(e.dst);
    EXPECT_EQ(c.x % 2, 1) << "request to a non-MC node";
    EXPECT_EQ(c.y % 2, 1);
    EXPECT_EQ(e.length, 1);  // control packet
  }
}

TEST(Splash, MshrThrottlesOutstanding) {
  SimConfig cfg;
  const Mesh m(8, 8);
  MachineParams machine;
  machine.mshr_entries = 2;
  SplashWorkload w(*find_splash_profile("Radix"), cfg, m, machine);
  CapturingInjector sink;
  // Without any deliveries, each node can issue at most 2 requests.
  for (Cycle t = 0; t < 2000; ++t) w.begin_cycle(t, sink);
  std::array<int, 64> per_node{};
  for (const auto& e : sink.entries) ++per_node[e.src];
  for (int c : per_node) EXPECT_LE(c, 2);
}

TEST(Splash, RepliesCompleteTransactions) {
  SimConfig cfg;
  const Mesh m(8, 8);
  SplashWorkload w(*find_splash_profile("Water"), cfg, m);
  CapturingInjector sink;

  // Drive the workload with an oracle that instantly "delivers" every
  // injected packet after one cycle.
  std::vector<PacketRecord> pending;
  PacketId next = 1;
  class Oracle final : public Injector {
   public:
    explicit Oracle(std::vector<PacketRecord>& out, PacketId& next)
        : out_(out), next_(next) {}
    PacketId inject_packet(NodeId src, NodeId dst, int length,
                           Cycle now) override {
      PacketRecord r;
      r.id = next_++;
      r.src = src;
      r.dst = dst;
      r.length = static_cast<std::uint16_t>(length);
      r.created = now;
      r.injected = now;
      r.completed = now + 1;
      out_.push_back(r);
      return r.id;
    }
   private:
    std::vector<PacketRecord>& out_;
    PacketId& next_;
  } oracle(pending, next);

  Cycle t = 0;
  const Cycle limit = 400000;
  while (!w.finished() && t < limit) {
    w.begin_cycle(t, oracle);
    std::vector<PacketRecord> due;
    due.swap(pending);
    for (const auto& r : due) w.on_packet_delivered(r, t, oracle);
    ++t;
  }
  EXPECT_TRUE(w.finished());
  EXPECT_EQ(w.transactions_completed(), w.transactions_total());
  EXPECT_EQ(w.transactions_total(),
            static_cast<std::uint64_t>(
                find_splash_profile("Water")->transactions_per_node) *
                64u);
}

TEST(TraceIo, RoundTrip) {
  std::vector<TraceEntry> in = {
      {5, 1, 2, 5}, {3, 0, 63, 1}, {5, 2, 3, 5}, {9, 10, 20, 2}};
  std::ostringstream os;
  write_trace(os, in);
  std::istringstream is(os.str());
  const auto out = read_trace(is);
  ASSERT_EQ(out.size(), 4u);
  // Sorted by cycle, stable within the same cycle.
  EXPECT_EQ(out[0], (TraceEntry{3, 0, 63, 1}));
  EXPECT_EQ(out[1], (TraceEntry{5, 1, 2, 5}));
  EXPECT_EQ(out[2], (TraceEntry{5, 2, 3, 5}));
  EXPECT_EQ(out[3], (TraceEntry{9, 10, 20, 2}));
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  std::istringstream is("# header\n\n1 2 3 4\n # trailing\n2 3 4 1 # note\n");
  const auto out = read_trace(is);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (TraceEntry{1, 2, 3, 4}));
}

TEST(TraceIo, RejectsMalformedLines) {
  std::istringstream is("1 2\n");
  EXPECT_THROW(read_trace(is), std::runtime_error);
  std::istringstream bad_len("1 2 3 0\n");
  EXPECT_THROW(read_trace(bad_len), std::runtime_error);
}

TEST(TraceIo, WorkloadReplaysAtScheduledCycles) {
  TraceWorkload w({{2, 0, 1, 1}, {2, 1, 2, 3}, {7, 3, 4, 1}});
  CapturingInjector sink;
  for (Cycle t = 0; t < 10; ++t) w.begin_cycle(t, sink);
  ASSERT_EQ(sink.entries.size(), 3u);
  EXPECT_EQ(sink.entries[0].when, 2u);
  EXPECT_EQ(sink.entries[1].when, 2u);
  EXPECT_EQ(sink.entries[2].when, 7u);
  EXPECT_TRUE(w.finished());
}

TEST(TraceIo, WorkloadSkipsSelfPackets) {
  TraceWorkload w({{1, 5, 5, 1}, {2, 1, 2, 1}});
  CapturingInjector sink;
  for (Cycle t = 0; t < 5; ++t) w.begin_cycle(t, sink);
  ASSERT_EQ(sink.entries.size(), 1u);
  EXPECT_EQ(sink.entries[0].src, 1u);
}

}  // namespace
}  // namespace dxbar
