// Golden pins for the zero-allocation kernel rewrite.
//
// The rows below were recorded by running the PRE-optimization simulation
// kernel (the seed revision, before the flit arena / route cache / flat
// channel-array / devirtualized-dispatch rewrite) with the stock
// SimConfig (8x8 mesh, DOR, uniform-random, packet length 5, warmup
// 1000, measure 8000, drain cap 50000, seed 1) at three offered loads
// per design.  The rewrite is required to be behaviour-preserving, so
// every value must still reproduce EXACTLY — doubles included, which is
// why the comparisons are == and not near: the optimized kernel executes
// the same arithmetic in the same order, only faster.
//
// If an intentional behaviour change ever invalidates these, re-record
// them (see EXPERIMENTS.md, "Perf harness") in the same commit that
// changes the behaviour, and say why in that commit's message.
#include <gtest/gtest.h>

#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

struct Golden {
  const char* name;
  RouterDesign design;
  double load;
  double accepted_load;
  double avg_packet_latency;
  double avg_network_latency;
  double deflections_per_flit;
  std::uint64_t flits_injected;
  std::uint64_t flits_ejected;
  std::uint64_t packets_completed;
  bool drained;
};

constexpr Golden kGoldens[] = {
    {"DXbar", RouterDesign::DXbar, 0.10, 0.099287109375000002,
     16.744444444444444, 16.134218289085545, 3.9331366764995083e-05, 50856,
     50835, 10170, true},
    {"DXbar", RouterDesign::DXbar, 0.25, 0.24885156250000001,
     25.570671378091873, 21.371574401256382, 0.00043188064389477815, 127371,
     127412, 25470, true},
    {"DXbar", RouterDesign::DXbar, 0.40, 0.36183593749999998,
     558.11590792086486, 42.757716162879063, 0.0070996053050918096, 185263,
     185260, 40791, true},
    {"FlitBless", RouterDesign::FlitBless, 0.10, 0.099283203124999997,
     16.576892822025567, 16.360176991150443, 0.24230088495575222, 50851,
     50833, 10170, true},
    {"FlitBless", RouterDesign::FlitBless, 0.25, 0.24902539062500001,
     29.674479780133492, 24.65429917550059, 1.3958146839418923, 127459,
     127501, 25470, true},
    {"FlitBless", RouterDesign::FlitBless, 0.40, 0.28357031249999998,
     2144.880316736535, 38.834988110122332, 2.4787673751562846, 145188,
     145188, 40791, true},
    {"Buffered4", RouterDesign::Buffered4, 0.10, 0.099281250000000001,
     22.456833824975419, 22.141592920353983, 0, 50853, 50832, 10170, true},
    {"Buffered4", RouterDesign::Buffered4, 0.25, 0.249337890625,
     54.96588142913231, 34.085904986258342, 0, 127663, 127661, 25470, true},
    {"Buffered4", RouterDesign::Buffered4, 0.40, 0.26865234375000002,
     2482.7858351106861, 40.612806746586259, 0, 137577, 137550, 40791, true},
};

class GoldenReproductionTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenReproductionTest, MatchesPreOptimizationKernelExactly) {
  const Golden& g = GetParam();
  SimConfig cfg;  // stock defaults; only the swept axes vary
  cfg.design = g.design;
  cfg.offered_load = g.load;

  const RunStats s = run_open_loop(cfg);

  EXPECT_EQ(s.accepted_load, g.accepted_load);
  EXPECT_EQ(s.avg_packet_latency, g.avg_packet_latency);
  EXPECT_EQ(s.avg_network_latency, g.avg_network_latency);
  EXPECT_EQ(s.deflections_per_flit, g.deflections_per_flit);
  EXPECT_EQ(s.flits_injected, g.flits_injected);
  EXPECT_EQ(s.flits_ejected, g.flits_ejected);
  EXPECT_EQ(s.packets_completed, g.packets_completed);
  EXPECT_EQ(s.drained, g.drained);
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenReproductionTest, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden>& info) {
      const int pct = static_cast<int>(info.param.load * 100 + 0.5);
      return std::string(info.param.name) + "_load" + std::to_string(pct);
    });

// The sharded execution path must reproduce the same pre-optimization
// goldens: threading one simulation is an execution choice, not a
// behaviour change.  One load point per design keeps this subset cheap;
// the full cross-design sweep lives in determinism_test.cpp.
class GoldenShardReproductionTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenShardReproductionTest, ShardedRunMatchesGoldensExactly) {
  const Golden& g = GetParam();
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SimConfig cfg;
    cfg.design = g.design;
    cfg.offered_load = g.load;
    cfg.shards = shards;

    const RunStats s = run_open_loop(cfg);

    EXPECT_EQ(s.accepted_load, g.accepted_load);
    EXPECT_EQ(s.avg_packet_latency, g.avg_packet_latency);
    EXPECT_EQ(s.avg_network_latency, g.avg_network_latency);
    EXPECT_EQ(s.deflections_per_flit, g.deflections_per_flit);
    EXPECT_EQ(s.flits_injected, g.flits_injected);
    EXPECT_EQ(s.flits_ejected, g.flits_ejected);
    EXPECT_EQ(s.packets_completed, g.packets_completed);
    EXPECT_EQ(s.drained, g.drained);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenShardReproductionTest,
    ::testing::Values(kGoldens[1], kGoldens[4], kGoldens[7]),
    [](const ::testing::TestParamInfo<Golden>& info) {
      const int pct = static_cast<int>(info.param.load * 100 + 0.5);
      return std::string(info.param.name) + "_load" + std::to_string(pct);
    });

}  // namespace
}  // namespace dxbar
