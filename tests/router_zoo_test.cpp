// Targeted tests for the round-2 router zoo: the DAMQ shared-buffer
// router (credit-grant flow control over one slot pool) and the minBD
// deflection router (side buffer + golden-flit escape).  The generic
// cross-design suites (conservation, determinism, snapshot, chaos,
// closed-loop) already include both designs; this file checks the
// design-specific invariants those sweeps cannot see — grant
// accounting, dynamic slot sharing, side-buffer capture, golden-epoch
// rotation — plus name-tagged shard-equivalence runs for the TSan job.
#include <gtest/gtest.h>

#include <string>

#include "router/damq_router.hpp"
#include "router/minbd_router.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

SimConfig zoo_cfg(RouterDesign design, double load) {
  SimConfig cfg;
  cfg.design = design;
  cfg.mesh_width = 6;
  cfg.mesh_height = 6;
  cfg.offered_load = load;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 1000;
  cfg.seed = 11;
  return cfg;
}

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.accepted_load, b.accepted_load);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.deflections_per_flit, b.deflections_per_flit);
  EXPECT_EQ(a.packets_completed, b.packets_completed);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.energy_buffer_nj, b.energy_buffer_nj);
  EXPECT_EQ(a.energy_crossbar_nj, b.energy_crossbar_nj);
  EXPECT_EQ(a.energy_link_nj, b.energy_link_nj);
}

// --- DAMQ: credit-grant accounting -----------------------------------------

TEST(DamqRouterTest, GrantAccountingInvariantHoldsEveryCycle) {
  // sum_d (queued + outstanding) <= pool at every observable point, and
  // no upstream ever holds more than the grant window.  This is the
  // overflow-freedom argument checked live, not just the router's own
  // debug assert.
  SimConfig cfg = zoo_cfg(RouterDesign::Damq, 0.35);
  Network net(cfg);
  SyntheticWorkload w(cfg, net.mesh());
  net.set_workload(&w);

  for (Cycle t = 0; t < 800; ++t) {
    net.step();
    for (NodeId n = 0; n < static_cast<NodeId>(cfg.num_nodes()); ++n) {
      const auto* r = dynamic_cast<const DamqRouter*>(&net.router(n));
      ASSERT_NE(r, nullptr);
      int claim = 0;
      for (int d = 0; d < kNumLinkDirs; ++d) {
        ASSERT_GE(r->queued(d), 0);
        ASSERT_GE(r->outstanding(d), 0);
        ASSERT_LE(r->outstanding(d), DamqRouter::kGrantWindow);
        claim += r->queued(d) + r->outstanding(d);
      }
      ASSERT_LE(claim, r->pool_slots()) << "node " << n << " cycle " << t;
    }
  }
}

TEST(DamqRouterTest, SlotsMigrateToLoadedInputsBeyondStaticShare) {
  // The point of a DAMQ: under skewed traffic some input's logical FIFO
  // must grow past the static per-port share (pool / 4 = buffer_depth),
  // which a statically partitioned Buffered-4 bank can never do.
  SimConfig cfg = zoo_cfg(RouterDesign::Damq, 0.45);
  cfg.pattern = TrafficPattern::Transpose;
  Network net(cfg);
  SyntheticWorkload w(cfg, net.mesh());
  net.set_workload(&w);

  int max_queued = 0;
  for (Cycle t = 0; t < 1500; ++t) {
    net.step();
    for (NodeId n = 0; n < static_cast<NodeId>(cfg.num_nodes()); ++n) {
      const auto* r = dynamic_cast<const DamqRouter*>(&net.router(n));
      for (int d = 0; d < kNumLinkDirs; ++d) {
        if (r->queued(d) > max_queued) max_queued = r->queued(d);
      }
    }
  }
  EXPECT_GT(max_queued, cfg.buffer_depth)
      << "no input ever outgrew its static share -- pool is not shared";
}

// --- minBD: side buffer and golden epochs ----------------------------------

TEST(MinBDRouterTest, GoldenEpochRotatesThroughAllPacketClasses) {
  // Golden status is (packet & 7) == epoch(now): within one epoch
  // exactly one residue class is golden, and over 8 consecutive epochs
  // every class gets its turn (the livelock-escape fairness argument).
  Flit f;
  for (std::uint64_t pkt = 0; pkt < 8; ++pkt) {
    f.packet = pkt;
    int golden_epochs = 0;
    for (int epoch = 0; epoch < 8; ++epoch) {
      const Cycle now = static_cast<Cycle>(epoch) << 8;
      if (MinBDRouter::is_golden(f, now)) ++golden_epochs;
      // Stable within the epoch.
      EXPECT_EQ(MinBDRouter::is_golden(f, now),
                MinBDRouter::is_golden(f, now + 255));
    }
    EXPECT_EQ(golden_epochs, 1) << "packet " << pkt;
  }
}

TEST(MinBDRouterTest, SideBufferCapturesUnderContention) {
  // At a contended load the side buffers must actually be used — if
  // side_occupancy() never rises the design degenerates to Flit-Bless
  // and the buffered-energy model charges for silicon that does nothing.
  SimConfig cfg = zoo_cfg(RouterDesign::MinBD, 0.40);
  Network net(cfg);
  SyntheticWorkload w(cfg, net.mesh());
  net.set_workload(&w);

  int max_side = 0;
  for (Cycle t = 0; t < 1200; ++t) {
    net.step();
    for (NodeId n = 0; n < static_cast<NodeId>(cfg.num_nodes()); ++n) {
      const auto* r = dynamic_cast<const MinBDRouter*>(&net.router(n));
      ASSERT_NE(r, nullptr);
      if (r->side_occupancy() > max_side) max_side = r->side_occupancy();
    }
  }
  EXPECT_GT(max_side, 0) << "side buffer never captured a deflection";
}

TEST(MinBDRouterTest, BuffersDeflectLessThanPureBless) {
  // Each capture converts a would-be deflection into storage, so at the
  // same operating point minBD's deflection rate must sit below the
  // bufferless baseline's.
  const RunStats minbd = run_open_loop(zoo_cfg(RouterDesign::MinBD, 0.30));
  const RunStats bless =
      run_open_loop(zoo_cfg(RouterDesign::FlitBless, 0.30));
  ASSERT_TRUE(minbd.drained);
  ASSERT_TRUE(bless.drained);
  EXPECT_LT(minbd.deflections_per_flit, bless.deflections_per_flit);
}

// --- shard equivalence (TSan-covered: these names match the CI filter) -----

TEST(DamqShardEquivalence, OneTwoFourShardsAreBitExact) {
  SimConfig cfg = zoo_cfg(RouterDesign::Damq, 0.30);
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.shards = 1;
  const RunStats serial = run_open_loop(cfg);
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    cfg.shards = shards;
    expect_identical(serial, run_open_loop(cfg));
  }
}

TEST(MinBDShardEquivalence, OneTwoFourShardsAreBitExact) {
  SimConfig cfg = zoo_cfg(RouterDesign::MinBD, 0.30);
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.shards = 1;
  const RunStats serial = run_open_loop(cfg);
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    cfg.shards = shards;
    expect_identical(serial, run_open_loop(cfg));
  }
}

// --- snapshot round-trip under live traffic --------------------------------

class ZooSnapshotTest : public ::testing::TestWithParam<RouterDesign> {};

TEST_P(ZooSnapshotTest, MidTrafficSaveRestoreResumesBitExactly) {
  // Save mid-measurement with queues, side buffers, outstanding credits
  // and in-flight channel state all populated; the restored run must
  // finish on identical stats.  (The generic snapshot suite covers the
  // same protocol; this pins it at a hotter operating point for the two
  // new designs specifically.)
  SimConfig cfg = zoo_cfg(GetParam(), 0.40);

  Network net(cfg);
  SyntheticWorkload w(cfg, net.mesh());
  net.set_workload(&w);
  advance_open_loop(net, 600);  // mid-measurement, queues loaded

  SnapshotWriter sw;
  net.save(sw);
  w.save_state(sw);
  const std::vector<std::uint8_t> bytes = sw.take();
  const RunStats straight = finish_open_loop(net, w);

  Network resumed(cfg);
  SyntheticWorkload w2(cfg, resumed.mesh());
  resumed.set_workload(&w2);
  SnapshotReader sr(bytes);
  resumed.load(sr);
  w2.load_state(sr);
  expect_identical(straight, finish_open_loop(resumed, w2));
}

INSTANTIATE_TEST_SUITE_P(DamqAndMinBD, ZooSnapshotTest,
                         ::testing::Values(RouterDesign::Damq,
                                           RouterDesign::MinBD),
                         [](const auto& info) {
                           return info.param == RouterDesign::Damq
                                      ? std::string("Damq")
                                      : std::string("MinBD");
                         });

}  // namespace
}  // namespace dxbar
