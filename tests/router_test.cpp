// Behavioural tests for the router microarchitectures, driven through
// small deterministic networks with trace workloads.
#include <gtest/gtest.h>

#include "router/dxbar_router.hpp"
#include "router/unified_router.hpp"
#include "sim/network.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {
namespace {

SimConfig small_cfg(RouterDesign design) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.design = design;
  cfg.packet_length = 1;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 10000;
  return cfg;
}

/// Runs a trace to completion; returns completed packet records in
/// completion order.
std::vector<PacketRecord> run_trace(const SimConfig& cfg,
                                    std::vector<TraceEntry> entries,
                                    Cycle max_cycles = 20000) {
  Network net(cfg);
  TraceWorkload w(std::move(entries));
  net.set_workload(&w);

  std::vector<PacketRecord> done;
  class Tap final : public WorkloadModel {
   public:
    Tap(TraceWorkload& inner, std::vector<PacketRecord>& out)
        : inner_(inner), out_(out) {}
    void begin_cycle(Cycle now, Injector& inject) override {
      inner_.begin_cycle(now, inject);
    }
    void on_packet_delivered(const PacketRecord& rec, Cycle now,
                             Injector& inject) override {
      out_.push_back(rec);
      inner_.on_packet_delivered(rec, now, inject);
    }
   private:
    TraceWorkload& inner_;
    std::vector<PacketRecord>& out_;
  } tap(w, done);
  net.set_workload(&tap);

  for (Cycle t = 0; t < max_cycles; ++t) {
    net.step();
    if (w.finished() && net.idle()) break;
  }
  EXPECT_TRUE(net.idle()) << "trace did not drain";
  return done;
}

// ---- per-hop latency of the pipelines ---------------------------------

TEST(PipelineLatency, DXbarTwoCyclesPerHop) {
  // A single uncontended 1-flit packet over h hops completes after
  // 2h cycles (SA/ST + LT per hop); ejection happens in the arrival SA.
  const SimConfig cfg = small_cfg(RouterDesign::DXbar);
  const Mesh m(4, 4);
  const auto done =
      run_trace(cfg, {{0, m.node(0, 0), m.node(3, 0), 1}});
  ASSERT_EQ(done.size(), 1u);
  // Injected at cycle 0, 3 hops east: SA at 0 (inject+ST), arrive hop
  // router at 2, 4, eject at 6.
  EXPECT_EQ(done[0].network_latency(), 6u);
  EXPECT_EQ(done[0].total_hops, 3u);
}

TEST(PipelineLatency, BlessMatchesDXbarAtZeroLoad) {
  const SimConfig dx = small_cfg(RouterDesign::DXbar);
  const SimConfig bl = small_cfg(RouterDesign::FlitBless);
  const std::vector<TraceEntry> trace = {{0, 0, 15, 1}};
  const auto a = run_trace(dx, trace);
  const auto b = run_trace(bl, trace);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].network_latency(), b[0].network_latency());
}

TEST(PipelineLatency, BufferedAddsOneCyclePerHop) {
  const SimConfig dx = small_cfg(RouterDesign::DXbar);
  const SimConfig b4 = small_cfg(RouterDesign::Buffered4);
  const Mesh m(4, 4);
  const std::vector<TraceEntry> trace = {{0, m.node(0, 0), m.node(3, 0), 1}};
  const auto fast = run_trace(dx, trace);
  const auto slow = run_trace(b4, trace);
  ASSERT_EQ(fast.size(), 1u);
  ASSERT_EQ(slow.size(), 1u);
  // Buffered: +1 cycle (BW/RC) at each intermediate router.
  EXPECT_GT(slow[0].network_latency(), fast[0].network_latency());
  EXPECT_LE(slow[0].network_latency(), fast[0].network_latency() + 3);
}

// ---- conflict handling -------------------------------------------------

TEST(DXbar, ConflictLoserIsBufferedNotDeflected) {
  // Two packets contending for the same output; DXbar must deliver both
  // with zero deflections (the loser waits in the secondary buffers).
  const SimConfig cfg = small_cfg(RouterDesign::DXbar);
  const Mesh m(4, 4);
  // Both cross router (1,1) heading east to (3,1).
  const auto done = run_trace(
      cfg, {{0, m.node(0, 1), m.node(3, 1), 1}, {0, m.node(1, 0), m.node(1, 3), 1},
            {0, m.node(0, 0), m.node(3, 3), 1}, {0, m.node(2, 0), m.node(2, 3), 1}});
  ASSERT_EQ(done.size(), 4u);
  for (const auto& r : done) {
    EXPECT_EQ(r.total_deflections, 0u);
    EXPECT_EQ(r.total_hops, static_cast<std::uint32_t>(
                                m.distance(r.src, r.dst)))
        << "DXbar below saturation must route minimally";
  }
}

TEST(Bless, ConflictCausesDeflectionButDelivers) {
  const SimConfig cfg = small_cfg(RouterDesign::FlitBless);
  const Mesh m(4, 4);
  // Four packets all funnelling into node (3,3)'s single ejection port
  // at the same time: some must deflect or take extra hops.
  const auto done = run_trace(
      cfg, {{0, m.node(0, 3), m.node(3, 3), 1}, {0, m.node(3, 0), m.node(3, 3), 1},
            {1, m.node(0, 2), m.node(3, 3), 1}, {1, m.node(2, 0), m.node(3, 3), 1}});
  ASSERT_EQ(done.size(), 4u);
  std::uint32_t extra = 0;
  for (const auto& r : done) {
    extra += r.total_hops - static_cast<std::uint32_t>(m.distance(r.src, r.dst));
  }
  EXPECT_GT(extra, 0u) << "ejection conflicts must deflect somebody";
}

TEST(Scarab, DropsTriggerRetransmissionAndDelivery) {
  const SimConfig cfg = small_cfg(RouterDesign::Scarab);
  const Mesh m(4, 4);
  // Heavy convergence on one ejection port forces drops.
  std::vector<TraceEntry> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back({static_cast<Cycle>(i / 4), m.node(i % 4, 0),
                     m.node(1, 3), 1});
  }
  trace.push_back({0, m.node(0, 3), m.node(1, 3), 1});
  trace.push_back({0, m.node(3, 3), m.node(1, 3), 1});
  const auto done = run_trace(cfg, trace);
  EXPECT_EQ(done.size(), 10u) << "every dropped flit must be retransmitted";
}

TEST(DXbar, FairnessUnblocksCenterInjection) {
  // Saturate the row through the center with old edge traffic and check
  // a center node still injects within a bounded time.
  SimConfig cfg = small_cfg(RouterDesign::DXbar);
  cfg.fairness_threshold = 4;
  const Mesh m(4, 4);
  std::vector<TraceEntry> trace;
  // A continuous stream along row 1 from the west edge.
  for (Cycle t = 0; t < 60; ++t) {
    trace.push_back({t, m.node(0, 1), m.node(3, 1), 1});
  }
  // The center node wants to send one flit east on the same row.
  trace.push_back({10, m.node(1, 1), m.node(3, 1), 1});
  const auto done = run_trace(cfg, trace);
  ASSERT_EQ(done.size(), 61u);
  for (const auto& r : done) {
    if (r.src == m.node(1, 1)) {
      // Without the fairness flip it would wait ~50 cycles behind the
      // whole stream; with threshold 4 it must leave much sooner.
      EXPECT_LT(r.latency(), 30u);
    }
  }
}

TEST(DXbar, CountersTrackCrossbarUsage) {
  SimConfig cfg = small_cfg(RouterDesign::DXbar);
  cfg.offered_load = 0.3;
  cfg.packet_length = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 500;
  Network net(cfg);
  const Mesh m(4, 4);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 500; ++t) net.step();

  std::uint64_t primary = 0, secondary = 0;
  for (NodeId n = 0; n < 16; ++n) {
    const auto& r = dynamic_cast<const DXbarRouter&>(net.router(n));
    primary += r.primary_traversals();
    secondary += r.secondary_traversals();
  }
  EXPECT_GT(primary, 0u);
  EXPECT_GT(secondary, 0u);  // injections go through the secondary
  EXPECT_GT(primary, secondary)
      << "through-traffic should dominate the primary crossbar";
}

TEST(Unified, MatchesDXbarAtLowLoadAndUsesDualGrants) {
  SimConfig cfg = small_cfg(RouterDesign::UnifiedXbar);
  cfg.offered_load = 0.35;
  cfg.measure_cycles = 1500;
  cfg.packet_length = 2;
  Network net(cfg);
  const Mesh m(4, 4);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 1500; ++t) net.step();

  std::uint64_t dual = 0;
  for (NodeId n = 0; n < 16; ++n) {
    dual += dynamic_cast<const UnifiedRouter&>(net.router(n)).dual_grant_cycles();
  }
  EXPECT_GT(dual, 0u)
      << "the unified crossbar should sometimes send two flits from one "
         "input port";
}

TEST(Buffered, Buffered8RemovesHeadOfLineBlocking) {
  // HoL scenario under DOR: the east output of router (2,1) is contested
  // between a stream arriving on the west input (from (0,1)) and the
  // router's own injection stream, so the west-input FIFO at (2,1) backs
  // up, which in turn blocks east-bound heads at (1,1).  A north-bound
  // "overtaker" injected into the same west stream is stuck behind them
  // in Buffered4's single FIFO; Buffered8's second lane frees it.
  const Mesh m(4, 4);
  std::vector<TraceEntry> trace;
  for (Cycle t = 0; t < 30; ++t) {
    trace.push_back({t, m.node(0, 1), m.node(3, 1), 1});  // west stream
    trace.push_back({t, m.node(2, 1), m.node(3, 1), 1});  // competitor
  }
  trace.push_back({14, m.node(0, 1), m.node(1, 3), 1});  // the overtaker

  SimConfig b4 = small_cfg(RouterDesign::Buffered4);
  SimConfig b8 = small_cfg(RouterDesign::Buffered8);
  const auto r4 = run_trace(b4, trace);
  const auto r8 = run_trace(b8, trace);

  auto latency_of = [&](const std::vector<PacketRecord>& rs) -> Cycle {
    for (const auto& r : rs) {
      if (r.dst == m.node(1, 3)) return r.latency();
    }
    ADD_FAILURE();
    return 0;
  };
  EXPECT_LT(latency_of(r8), latency_of(r4));
}

}  // namespace
}  // namespace dxbar
