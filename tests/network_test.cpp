// Network-level property tests: flit conservation, drain, determinism,
// invariants across every design x routing x pattern combination.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {
namespace {

constexpr RouterDesign kDesigns[] = {
    RouterDesign::FlitBless, RouterDesign::Scarab,
    RouterDesign::Buffered4,  RouterDesign::Buffered8,
    RouterDesign::DXbar,      RouterDesign::UnifiedXbar,
    RouterDesign::BufferedVC, RouterDesign::Afc,
    RouterDesign::Damq,       RouterDesign::MinBD};

// ---- conservation: nothing lost, nothing duplicated ---------------------

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<RouterDesign, RoutingAlgo>> {
};

TEST_P(ConservationTest, AllInjectedFlitsDeliveredExactlyOnce) {
  const auto [design, routing] = GetParam();
  SimConfig cfg;
  cfg.mesh_width = 6;
  cfg.mesh_height = 6;
  cfg.design = design;
  cfg.routing = routing;
  cfg.offered_load = 0.25;
  cfg.packet_length = 3;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1200;
  cfg.seed = 99;

  Network net(cfg);
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);

  for (Cycle t = 0; t < 1200; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 30000 && !net.idle(); ++t) net.step();

  ASSERT_TRUE(net.idle()) << "network failed to drain";
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
  EXPECT_EQ(net.packets_created(), net.packets_delivered());
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, ConservationTest,
    ::testing::Combine(::testing::ValuesIn(kDesigns),
                       ::testing::Values(RoutingAlgo::DOR,
                                         RoutingAlgo::WestFirst)),
    [](const auto& info) {
      std::string name =
          std::string(to_string(std::get<0>(info.param))) + "_" +
          std::string(to_string(std::get<1>(info.param)));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- conservation under every traffic pattern (DXbar) -------------------

class PatternConservationTest
    : public ::testing::TestWithParam<TrafficPattern> {};

TEST_P(PatternConservationTest, DXbarConservesFlits) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.pattern = GetParam();
  cfg.offered_load = 0.3;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 800;
  cfg.seed = 3;

  Network net(cfg);
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 800; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 30000 && !net.idle(); ++t) net.step();

  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternConservationTest,
                         ::testing::ValuesIn(kAllPatterns),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- fault-tolerance delivery guarantee ---------------------------------

class FaultDeliveryTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultDeliveryTest, DXbarDeliversEverythingDespiteFaults) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.2;
  cfg.fault_fraction = GetParam();
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1000;
  cfg.seed = 11;

  Network net(cfg);
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 1000; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 60000 && !net.idle(); ++t) net.step();

  ASSERT_TRUE(net.idle()) << "faulty network failed to drain";
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
  // With fraction f, ceil(f*64) routers must actually be degraded.
  EXPECT_EQ(net.faults().num_faulty(),
            static_cast<int>(std::ceil(GetParam() * 64)));
}

INSTANTIATE_TEST_SUITE_P(FaultFractions, FaultDeliveryTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                         [](const auto& info) {
                           return "f" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// ---- determinism ---------------------------------------------------------

TEST(Determinism, SameSeedSameResults) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.35;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  const RunStats a = run_open_loop(cfg);
  const RunStats b = run_open_loop(cfg);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_DOUBLE_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_DOUBLE_EQ(a.total_energy_nj(), b.total_energy_nj());

  cfg.seed = 1234;
  const RunStats c = run_open_loop(cfg);
  EXPECT_NE(a.flits_ejected, c.flits_ejected);
}

// ---- windowed measurement behaviour --------------------------------------

TEST(Measurement, AcceptedTracksOfferedBelowSaturation) {
  for (RouterDesign d : kDesigns) {
    SimConfig cfg;
    cfg.design = d;
    cfg.offered_load = 0.15;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 2000;
    const RunStats s = run_open_loop(cfg);
    EXPECT_NEAR(s.accepted_load, 0.15, 0.02) << to_string(d);
    EXPECT_TRUE(s.drained) << to_string(d);
  }
}

TEST(Measurement, LatencyIncludesSourceQueueing) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.1;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1000;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GE(s.avg_packet_latency, s.avg_network_latency);
  EXPECT_GT(s.avg_network_latency, 0.0);
}

// ---- minimality below saturation ----------------------------------------

TEST(Minimality, BufferedDesignsRouteMinimally) {
  for (RouterDesign d : {RouterDesign::Buffered4, RouterDesign::Buffered8,
                         RouterDesign::DXbar}) {
    SimConfig cfg;
    cfg.design = d;
    cfg.offered_load = 0.2;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 1000;
    const RunStats s = run_open_loop(cfg);
    if (d == RouterDesign::DXbar) {
      // DXbar's overflow escape valve may fire on transient FIFO fills,
      // but below saturation it must stay rare (paper: flits are
      // buffered, not deflected).
      EXPECT_LT(s.deflections_per_flit, 0.01) << to_string(d);
    } else {
      EXPECT_EQ(s.deflections_per_flit, 0.0) << to_string(d);
    }
    // Average UR hop count on an 8x8 mesh is ~5.33.
    EXPECT_NEAR(s.avg_hops, Mesh(8, 8).average_distance(), 0.35)
        << to_string(d);
  }
}

TEST(Minimality, BlessDeflectsUnderLoadButNotAtZeroLoad) {
  SimConfig cfg;
  cfg.design = RouterDesign::FlitBless;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1500;

  cfg.offered_load = 0.05;
  const RunStats low = run_open_loop(cfg);
  cfg.offered_load = 0.45;
  const RunStats high = run_open_loop(cfg);
  // Even at 5% load the 5-flit trains occasionally cross, so a small
  // deflection rate remains; it must grow sharply toward saturation.
  EXPECT_LT(low.deflections_per_flit, 0.25);
  EXPECT_GT(high.deflections_per_flit, low.deflections_per_flit * 3);
}

TEST(Scarab, RetransmitsAppearUnderLoad) {
  SimConfig cfg;
  cfg.design = RouterDesign::Scarab;
  cfg.offered_load = 0.45;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1500;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GT(s.retransmits_per_flit, 0.0);
  EXPECT_GT(s.energy_control_nj, 0.0);  // NACK network energy
}

// ---- energy sanity --------------------------------------------------------

TEST(Energy, BufferlessDesignsSpendNoBufferEnergy) {
  for (RouterDesign d : {RouterDesign::FlitBless, RouterDesign::Scarab}) {
    SimConfig cfg;
    cfg.design = d;
    cfg.offered_load = 0.2;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 800;
    const RunStats s = run_open_loop(cfg);
    EXPECT_DOUBLE_EQ(s.energy_buffer_nj, 0.0) << to_string(d);
  }
}

TEST(Energy, BufferedChargesEveryHop) {
  SimConfig cfg;
  cfg.design = RouterDesign::Buffered4;
  cfg.offered_load = 0.2;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  const RunStats s = run_open_loop(cfg);
  EXPECT_GT(s.energy_buffer_nj, 0.0);
  // DXbar at the same load buffers rarely -> much lower buffer energy.
  cfg.design = RouterDesign::DXbar;
  const RunStats dx = run_open_loop(cfg);
  EXPECT_LT(dx.energy_buffer_nj, s.energy_buffer_nj * 0.5);
}

}  // namespace
}  // namespace dxbar
