// Wide parameter-matrix property sweeps: conservation and drain across
// mesh sizes, seeds, packet lengths, and design/routing combinations —
// the soak-style coverage a downstream user relies on before trusting a
// new configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/network.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

bool conserve(SimConfig cfg, Cycle inject_cycles, Cycle drain_cap = 60000) {
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = inject_cycles;
  Network net(cfg);
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < inject_cycles; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < drain_cap && !net.idle(); ++t) net.step();
  if (!net.idle()) {
    ADD_FAILURE() << "failed to drain";
    return false;
  }
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
  EXPECT_EQ(net.packets_created(), net.packets_delivered());
  return net.flits_created() == net.flits_delivered();
}

// ---- mesh-size matrix -----------------------------------------------------

class MeshMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, RouterDesign>> {};

TEST_P(MeshMatrixTest, ConservesOnEveryMeshShape) {
  SimConfig cfg;
  cfg.mesh_width = std::get<0>(GetParam());
  cfg.mesh_height = std::get<1>(GetParam());
  cfg.design = std::get<2>(GetParam());
  cfg.offered_load = 0.2;
  cfg.packet_length = 2;
  cfg.seed = 42;
  EXPECT_TRUE(conserve(cfg, 600));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshMatrixTest,
    ::testing::Combine(::testing::Values(2, 4, 5, 8),
                       ::testing::Values(2, 3, 8),
                       ::testing::Values(RouterDesign::DXbar,
                                         RouterDesign::UnifiedXbar,
                                         RouterDesign::FlitBless,
                                         RouterDesign::Afc,
                                         RouterDesign::Damq,
                                         RouterDesign::MinBD)),
    [](const auto& info) {
      std::string name = std::to_string(std::get<0>(info.param)) + "x" +
                         std::to_string(std::get<1>(info.param)) + "_" +
                         std::string(to_string(std::get<2>(info.param)));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- seed matrix ------------------------------------------------------------

class SeedMatrixTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedMatrixTest, DXbarConservesUnderHighLoadAnySeed) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.6;  // well past saturation
  cfg.seed = GetParam();
  EXPECT_TRUE(conserve(cfg, 800, 120000));
}

TEST_P(SeedMatrixTest, ScarabConservesUnderHighLoadAnySeed) {
  SimConfig cfg;
  cfg.design = RouterDesign::Scarab;
  cfg.offered_load = 0.5;
  cfg.seed = GetParam();
  EXPECT_TRUE(conserve(cfg, 800, 120000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedMatrixTest,
                         ::testing::Values(1, 2, 3, 1234, 0xDEADBEEF),
                         [](const auto& info) {
                           return "s" + std::to_string(info.index);
                         });

// ---- packet-length matrix ----------------------------------------------------

class PacketLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(PacketLengthTest, AllLengthsReassemble) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.packet_length = GetParam();
  cfg.offered_load = 0.25;
  EXPECT_TRUE(conserve(cfg, 600));
}

INSTANTIATE_TEST_SUITE_P(Lengths, PacketLengthTest,
                         ::testing::Values(1, 2, 5, 9),
                         [](const auto& info) {
                           return "len" + std::to_string(info.param);
                         });

// ---- buffer-depth x design matrix ---------------------------------------------

class DepthMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, RouterDesign>> {};

TEST_P(DepthMatrixTest, DepthVariantsConserve) {
  SimConfig cfg;
  cfg.buffer_depth = std::get<0>(GetParam());
  cfg.design = std::get<1>(GetParam());
  cfg.num_vcs = 1;  // keep VC divisibility for any depth
  cfg.offered_load = 0.3;
  EXPECT_TRUE(conserve(cfg, 600));
}

INSTANTIATE_TEST_SUITE_P(
    Depths, DepthMatrixTest,
    ::testing::Combine(::testing::Values(1, 2, 8),
                       ::testing::Values(RouterDesign::DXbar,
                                         RouterDesign::Buffered4,
                                         RouterDesign::BufferedVC,
                                         RouterDesign::Damq,
                                         RouterDesign::MinBD)),
    [](const auto& info) {
      std::string name = "d" + std::to_string(std::get<0>(info.param)) + "_" +
                         std::string(to_string(std::get<1>(info.param)));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- soak -----------------------------------------------------------------

TEST(Soak, MixedLoadRampNeverLosesAFlit) {
  // Ramp the load up and down over a long run; verify conservation and
  // that the network drains at the end.
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.routing = RoutingAlgo::WestFirst;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;

  Network net(cfg);
  const Mesh m(8, 8);

  // Hand-rolled workload with a time-varying load.
  class Ramp final : public WorkloadModel {
   public:
    explicit Ramp(const Mesh& mesh) : mesh_(mesh), rng_(7) {}
    void begin_cycle(Cycle now, Injector& inject) override {
      if (!enabled_) return;
      // Load oscillates between 0.05 and 0.65 with period 1000.
      const double phase = static_cast<double>(now % 1000) / 1000.0;
      const double load = 0.05 + 0.6 * (phase < 0.5 ? phase * 2 : (1 - phase) * 2);
      for (NodeId src = 0; src < 64; ++src) {
        if (!rng_.bernoulli(load / 3.0)) continue;
        NodeId dst = rng_.below(64);
        if (dst == src) continue;
        inject.inject_packet(src, dst, 3, now);
      }
    }
    void set_injection_enabled(bool on) override { enabled_ = on; }
   private:
    const Mesh& mesh_;
    Rng rng_;
    bool enabled_ = true;
  } ramp(m);

  net.set_workload(&ramp);
  for (Cycle t = 0; t < 6000; ++t) net.step();
  ramp.set_injection_enabled(false);
  for (Cycle t = 0; t < 120000 && !net.idle(); ++t) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
  EXPECT_GT(net.packets_delivered(), 10000u);
}

}  // namespace
}  // namespace dxbar
