// Cross-cutting invariants: energy-accounting identity, on/off
// backpressure behaviour, DXbar degraded-mode unit behaviour, stall
// escape, multi-flit reassembly.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "router/dxbar_router.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {
namespace {

// ---- energy accounting identity -----------------------------------------

TEST(EnergyIdentity, CrossbarEnergyMatchesTraversalCounters) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.3;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 800;

  Network net(cfg);  // energy enabled from cycle 0 by default
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 800; ++t) net.step();

  std::uint64_t traversals = 0;
  for (NodeId n = 0; n < 64; ++n) {
    const auto& r = dynamic_cast<const DXbarRouter&>(net.router(n));
    traversals += r.primary_traversals() + r.secondary_traversals();
  }
  const double expected =
      static_cast<double>(traversals) * net.energy().params().crossbar_pj * 1e-3;
  EXPECT_NEAR(net.energy().crossbar_nj(), expected, 1e-6);
}

TEST(EnergyIdentity, LinkEnergyMatchesHops) {
  // With energy enabled for the whole run and a fully drained network,
  // link energy must equal (total hops of all packets) x link_pj.
  SimConfig cfg;
  cfg.design = RouterDesign::Buffered4;
  cfg.packet_length = 1;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;

  std::vector<TraceEntry> entries;
  Rng rng(3);
  for (Cycle t = 0; t < 200; ++t) {
    const NodeId src = rng.below(64);
    NodeId dst = rng.below(64);
    if (dst == src) dst = (dst + 1) % 64;
    entries.push_back({t, src, dst, 1});
  }

  Network net(cfg);
  TraceWorkload w(std::move(entries));
  net.set_workload(&w);

  std::uint64_t hops = 0;
  class Tap final : public WorkloadModel {
   public:
    Tap(TraceWorkload& inner, std::uint64_t& hops)
        : inner_(inner), hops_(hops) {}
    void begin_cycle(Cycle now, Injector& inject) override {
      inner_.begin_cycle(now, inject);
    }
    void on_packet_delivered(const PacketRecord& rec, Cycle, Injector&)
        override {
      hops_ += rec.total_hops;
    }
   private:
    TraceWorkload& inner_;
    std::uint64_t& hops_;
  } tap(w, hops);
  net.set_workload(&tap);

  Cycle t = 0;
  while ((!w.finished() || !net.idle()) && t < 100000) {
    net.step();
    ++t;
  }
  ASSERT_TRUE(net.idle());
  const double expected =
      static_cast<double>(hops) * net.energy().params().link_pj * 1e-3;
  EXPECT_NEAR(net.energy().link_nj(), expected, 1e-6);
}

// ---- on/off backpressure ---------------------------------------------------

TEST(Backpressure, StopTakesEffectNextCycle) {
  Channel ch(kUnlimitedCredits);
  EXPECT_TRUE(ch.can_send());
  ch.set_stop(true);
  EXPECT_TRUE(ch.can_send());  // not yet visible
  ch.advance();
  EXPECT_FALSE(ch.can_send());
  EXPECT_TRUE(ch.can_send_ignoring_stop());
  ch.set_stop(false);
  ch.advance();
  EXPECT_TRUE(ch.can_send());
}

TEST(Backpressure, StopDoesNotBlockInFlightDelivery) {
  Channel ch(kUnlimitedCredits);
  ch.send(Flit{.packet = 1});
  ch.set_stop(true);
  ch.advance();
  ch.advance();
  EXPECT_TRUE(ch.take_arrival().has_value());
}

// ---- DXbar degraded modes ---------------------------------------------------

SimConfig faulty_cfg(double fraction) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.packet_length = 1;
  cfg.fault_fraction = fraction;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;
  return cfg;
}

TEST(DXbarFaults, PrimaryFailedRouterBuffersEverything) {
  // Route a stream through one faulty router and check it only uses the
  // secondary crossbar after the fault manifests.
  SimConfig cfg = faulty_cfg(1.0);  // every router faulty
  Network net(cfg);

  // Find a router whose *primary* failed.
  NodeId victim = kInvalidNode;
  for (NodeId n = 0; n < 16; ++n) {
    if (net.faults().at(n).failed == CrossbarKind::Primary) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  const Mesh m(4, 4);
  const Coord c = m.coord(victim);
  // A packet crossing the victim horizontally (if possible) or ending
  // there.
  std::vector<TraceEntry> entries;
  const NodeId src = m.node(0, c.y);
  const NodeId dst = m.node(3, c.y);
  if (src != dst) entries.push_back({0, src, dst, 1});

  TraceWorkload w(std::move(entries));
  net.set_workload(&w);
  Cycle t = 0;
  while ((!w.finished() || !net.idle()) && t < 2000) {
    net.step();
    ++t;
  }
  ASSERT_TRUE(net.idle());

  const auto& r = dynamic_cast<const DXbarRouter&>(net.router(victim));
  EXPECT_EQ(r.primary_traversals(), 0u)
      << "a dead primary crossbar must never be traversed";
  if (c.x > 0 && c.x < 3) {
    EXPECT_GT(r.secondary_traversals(), 0u);
  }
}

TEST(DXbarFaults, SecondaryFailedRouterUsesPrimaryAfterDetection) {
  SimConfig cfg = faulty_cfg(1.0);
  Network net(cfg);

  NodeId victim = kInvalidNode;
  for (NodeId n = 0; n < 16; ++n) {
    const Coord c = Mesh(4, 4).coord(n);
    if (net.faults().at(n).failed == CrossbarKind::Secondary && c.x > 0 &&
        c.x < 3) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  const Mesh m(4, 4);
  const Coord c = m.coord(victim);
  std::vector<TraceEntry> entries;
  // Enough traffic through the victim that some flits must be buffered
  // and later leave through the (still working) primary crossbar.
  for (Cycle t = 20; t < 60; ++t) {
    entries.push_back({t, m.node(0, c.y), m.node(3, c.y), 1});
    entries.push_back({t, m.node(c.x, 0), m.node(c.x, 3), 1});
  }
  const std::size_t total = entries.size();

  TraceWorkload w(std::move(entries));
  net.set_workload(&w);
  Cycle t = 0;
  while ((!w.finished() || !net.idle()) && t < 5000) {
    net.step();
    ++t;
  }
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.packets_delivered(), total);

  const auto& r = dynamic_cast<const DXbarRouter&>(net.router(victim));
  EXPECT_EQ(r.secondary_traversals(), 0u)
      << "a dead secondary crossbar must never be traversed";
  EXPECT_GT(r.primary_traversals(), 0u);
}

TEST(DXbarFaults, WholeNetworkStillMinimalBelowSaturationWithDor) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.fault_fraction = 1.0;
  cfg.offered_load = 0.15;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1200;
  const RunStats s = run_open_loop(cfg);
  EXPECT_TRUE(s.drained);
  // Degraded-but-buffered routers should barely deflect at this load.
  EXPECT_LT(s.deflections_per_flit, 0.02);
  EXPECT_NEAR(s.accepted_load, 0.15, 0.02);
}

// ---- stall escape -----------------------------------------------------------

TEST(StallEscape, LargerDelayMeansFewerDeflections) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.pattern = TrafficPattern::NonUniformRandom;
  cfg.offered_load = 0.5;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1200;

  cfg.stall_escape_delay = 2;
  const RunStats fast = run_open_loop(cfg);
  cfg.stall_escape_delay = 64;
  const RunStats slow = run_open_loop(cfg);
  EXPECT_GT(fast.deflections_per_flit, slow.deflections_per_flit * 2);
}

// ---- multi-flit reassembly ---------------------------------------------------

TEST(Reassembly, MultiFlitPacketRecordIsConsistent) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.packet_length = 5;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;

  Network net(cfg);
  const Mesh m(4, 4);
  TraceWorkload w({{0, m.node(0, 0), m.node(3, 2), 5}});

  PacketRecord got{};
  bool seen = false;
  class Tap final : public WorkloadModel {
   public:
    Tap(TraceWorkload& inner, PacketRecord& rec, bool& seen)
        : inner_(inner), rec_(rec), seen_(seen) {}
    void begin_cycle(Cycle now, Injector& inject) override {
      inner_.begin_cycle(now, inject);
    }
    void on_packet_delivered(const PacketRecord& rec, Cycle,
                             Injector&) override {
      rec_ = rec;
      seen_ = true;
    }
   private:
    TraceWorkload& inner_;
    PacketRecord& rec_;
    bool& seen_;
  } tap(w, got, seen);
  net.set_workload(&tap);

  for (Cycle t = 0; t < 1000 && !(seen && net.idle()); ++t) {
    net.step();
  }
  ASSERT_TRUE(seen);
  EXPECT_EQ(got.length, 5);
  EXPECT_EQ(got.src, m.node(0, 0));
  EXPECT_EQ(got.dst, m.node(3, 2));
  // Uncontended: every flit takes the minimal 5-hop route.
  EXPECT_EQ(got.total_hops, 25u);
  EXPECT_EQ(got.total_deflections, 0u);
  // Serialization: 5 flits leave back-to-back; last flit completes
  // 2*hops + (length-1) cycles after injection.
  EXPECT_EQ(got.network_latency(), 2u * 5u + 4u);
}

// ---- flit-conservation fuzz -------------------------------------------------
//
// Random small configurations across every router design, with and
// without link faults.  After injection stops and the network drains,
// three invariants must hold exactly:
//   1. every created flit was delivered (conservation),
//   2. no router still buffers anything (structural drain),
//   3. the flit arena reports zero live slots — the pool-backed source
//      queues and SCARAB staging leaked nothing.

struct FuzzPoint {
  RouterDesign design;
  double link_fault_fraction;
};

class FlitConservationFuzz : public ::testing::TestWithParam<FuzzPoint> {};

TEST_P(FlitConservationFuzz, DrainsConservesAndFreesPool) {
  const FuzzPoint& p = GetParam();
  // A few random configs per (design, fault) point; seeds fixed so
  // failures reproduce.
  for (std::uint64_t round = 0; round < 3; ++round) {
    Rng rng((static_cast<std::uint64_t>(p.design) << 8 | round) *
                0x9E3779B97F4A7C15ULL +
            1);
    SimConfig cfg;
    cfg.design = p.design;
    cfg.mesh_width = 3 + static_cast<int>(rng.below(3));   // 3..5
    cfg.mesh_height = 3 + static_cast<int>(rng.below(3));  // 3..5
    cfg.offered_load = 0.05 + 0.3 * rng.uniform();
    cfg.packet_length = 1 + static_cast<int>(rng.below(5));
    cfg.buffer_depth = 2 + static_cast<int>(rng.below(4));
    cfg.link_fault_fraction = p.link_fault_fraction;
    cfg.seed = 100 + round;
    SCOPED_TRACE(std::string(to_string(p.design)) + " faults=" +
                 std::to_string(p.link_fault_fraction) + " round=" +
                 std::to_string(round));
    ASSERT_EQ(cfg.validate(), "");

    Network net(cfg);
    SyntheticWorkload w(cfg, net.mesh());
    net.set_workload(&w);
    for (Cycle t = 0; t < 1200; ++t) net.step();
    w.set_injection_enabled(false);
    for (Cycle guard = 0; !net.idle() && guard < 30000; ++guard) net.step();

    ASSERT_TRUE(net.idle());
    EXPECT_EQ(net.flits_created(), net.flits_delivered());
    for (NodeId n = 0; n < static_cast<NodeId>(cfg.num_nodes()); ++n) {
      EXPECT_EQ(net.router(n).occupancy(), 0);
    }
    EXPECT_EQ(net.flit_pool_live(), 0u);
  }
}

// Link-fault variants exist only for designs with a deflection escape
// valve: SimConfig::validate() rejects faults on the credit-only
// designs (Buffered4/8, BufferedVC), which can genuinely deadlock on a
// degraded topology — not a conservation bug, a refused configuration.
INSTANTIATE_TEST_SUITE_P(
    AllDesignsAndFaults, FlitConservationFuzz,
    ::testing::Values(
        FuzzPoint{RouterDesign::FlitBless, 0.0},
        FuzzPoint{RouterDesign::FlitBless, 0.15},
        FuzzPoint{RouterDesign::Scarab, 0.0},
        FuzzPoint{RouterDesign::Scarab, 0.15},
        FuzzPoint{RouterDesign::Buffered4, 0.0},
        FuzzPoint{RouterDesign::Buffered8, 0.0},
        FuzzPoint{RouterDesign::DXbar, 0.0},
        FuzzPoint{RouterDesign::DXbar, 0.15},
        FuzzPoint{RouterDesign::UnifiedXbar, 0.0},
        FuzzPoint{RouterDesign::UnifiedXbar, 0.15},
        FuzzPoint{RouterDesign::BufferedVC, 0.0},
        FuzzPoint{RouterDesign::Afc, 0.0},
        FuzzPoint{RouterDesign::Afc, 0.15},
        FuzzPoint{RouterDesign::Damq, 0.0},
        FuzzPoint{RouterDesign::MinBD, 0.0},
        FuzzPoint{RouterDesign::MinBD, 0.15}),
    [](const ::testing::TestParamInfo<FuzzPoint>& info) {
      std::string name(to_string(info.param.design));
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name +
             (info.param.link_fault_fraction > 0.0 ? "_LinkFaults" : "_Healthy");
    });

}  // namespace
}  // namespace dxbar
