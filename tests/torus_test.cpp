// Tests for the torus extension: wrap-around geometry, shortest-way
// routing, conservation, and the mesh-vs-torus performance relations.
#include <gtest/gtest.h>

#include "routing/dor.hpp"
#include "routing/routing_algorithm.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

TEST(Torus, NeighborsWrapAround) {
  const Mesh t(8, 8, /*wrap=*/true);
  EXPECT_EQ(t.neighbor(t.node(7, 3), Direction::East), t.node(0, 3));
  EXPECT_EQ(t.neighbor(t.node(0, 3), Direction::West), t.node(7, 3));
  EXPECT_EQ(t.neighbor(t.node(3, 7), Direction::North), t.node(3, 0));
  EXPECT_EQ(t.neighbor(t.node(3, 0), Direction::South), t.node(3, 7));
  // Every router has full degree.
  for (NodeId n = 0; n < 64; ++n) {
    for (Direction d : kLinkDirs) {
      EXPECT_TRUE(t.has_link(n, d));
    }
  }
  EXPECT_EQ(t.all_links().size(), std::size_t{64 * 4});
}

TEST(Torus, DistanceTakesTheShortWayAround) {
  const Mesh t(8, 8, true);
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(7, 0)), 1);  // wrap west
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(4, 0)), 4);  // tie
  EXPECT_EQ(t.distance(t.node(1, 1), t.node(6, 6)), 3 + 3);
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(7, 7)), 2);
  // Mesh distances unchanged.
  const Mesh m(8, 8);
  EXPECT_EQ(m.distance(m.node(0, 0), m.node(7, 7)), 14);
}

TEST(Torus, OffsetsSignedShortest) {
  const Mesh t(8, 8, true);
  EXPECT_EQ(t.offset_x(t.node(0, 0), t.node(7, 0)), -1);
  EXPECT_EQ(t.offset_x(t.node(7, 0), t.node(0, 0)), 1);
  EXPECT_EQ(t.offset_x(t.node(0, 0), t.node(4, 0)), 4);  // tie -> east
  EXPECT_EQ(t.offset_y(t.node(0, 7), t.node(0, 1)), 2);
}

TEST(Torus, DorRoutesTheShortWay) {
  const Mesh t(8, 8, true);
  EXPECT_EQ(dor_route(t, t.node(0, 0), t.node(7, 0)), Direction::West);
  EXPECT_EQ(dor_route(t, t.node(0, 0), t.node(0, 7)), Direction::South);
  EXPECT_EQ(dor_route(t, t.node(0, 0), t.node(2, 0)), Direction::East);
}

TEST(Torus, DorAlwaysMinimalAndTerminates) {
  const Mesh t(6, 6, true);
  for (NodeId s = 0; s < 36; ++s) {
    for (NodeId d = 0; d < 36; ++d) {
      NodeId cur = s;
      int hops = 0;
      while (cur != d) {
        const Direction dir = dor_route(t, cur, d);
        ASSERT_NE(dir, Direction::Local);
        cur = *t.neighbor(cur, dir);
        ++hops;
        ASSERT_LE(hops, t.distance(s, d));
      }
      EXPECT_EQ(hops, t.distance(s, d));
    }
  }
}

TEST(Torus, TurnModelsDegradeToMinimalAdaptive) {
  const Mesh t(8, 8, true);
  // WF on a torus must offer the wrap-west route (forbidden on a mesh
  // turn model, irrelevant here since it degenerates to minimal).
  const RouteSet r =
      compute_routes(RoutingAlgo::WestFirst, t, t.node(0, 0), t.node(7, 7));
  EXPECT_TRUE(r.contains(Direction::West));
  EXPECT_TRUE(r.contains(Direction::South));
}

TEST(Torus, CreditOnlyDesignsRejected) {
  SimConfig cfg;
  cfg.torus = true;
  for (RouterDesign d : {RouterDesign::Buffered4, RouterDesign::Buffered8,
                         RouterDesign::BufferedVC}) {
    cfg.design = d;
    EXPECT_NE(cfg.validate(), "") << to_string(d);
  }
  cfg.design = RouterDesign::DXbar;
  EXPECT_EQ(cfg.validate(), "");
}

class TorusConservationTest : public ::testing::TestWithParam<RouterDesign> {
};

TEST_P(TorusConservationTest, ConservesAndDrains) {
  SimConfig cfg;
  cfg.torus = true;
  cfg.design = GetParam();
  cfg.offered_load = 0.3;
  cfg.packet_length = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 800;

  Network net(cfg);
  const Mesh t(8, 8, true);
  SyntheticWorkload w(cfg, t);
  net.set_workload(&w);
  for (Cycle c = 0; c < 800; ++c) net.step();
  w.set_injection_enabled(false);
  for (Cycle c = 0; c < 60000 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
}

INSTANTIATE_TEST_SUITE_P(Designs, TorusConservationTest,
                         ::testing::Values(RouterDesign::DXbar,
                                           RouterDesign::UnifiedXbar,
                                           RouterDesign::FlitBless,
                                           RouterDesign::Scarab,
                                           RouterDesign::Afc,
                                           RouterDesign::MinBD),
                         [](const auto& info) {
                           std::string n(to_string(info.param));
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(Torus, HigherThroughputAndFewerHopsThanMesh) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.45;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;

  const RunStats mesh = run_open_loop(cfg);
  cfg.torus = true;
  const RunStats torus = run_open_loop(cfg);

  // Wrap links double the bisection and cut the average distance.
  EXPECT_LT(torus.avg_hops, mesh.avg_hops * 0.85);
  EXPECT_GT(torus.accepted_load, mesh.accepted_load * 1.1);
}

}  // namespace
}  // namespace dxbar
