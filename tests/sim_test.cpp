// Tests for sim/: runners, sweeps, saturation search, closed-loop runs,
// NACK network and the core facade.
#include <gtest/gtest.h>

#include "core/dxbar.hpp"
#include "sim/nack_network.hpp"

namespace dxbar {
namespace {

TEST(NackNetwork, DeliversAfterDistancePlusOne) {
  const Mesh m(8, 8);
  SimConfig scarab;
  scarab.design = RouterDesign::Scarab;
  EnergyMeter energy(scarab);
  NackNetwork nn;
  Flit f{.packet = 1, .src = m.node(0, 0)};
  nn.schedule(f, m.node(3, 4), /*now=*/10, m, energy);
  EXPECT_TRUE(nn.deliveries(10).empty());
  EXPECT_TRUE(nn.deliveries(17).empty());  // distance 7 + 1 => cycle 18
  const auto got = nn.deliveries(18);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].packet, 1u);
  EXPECT_TRUE(nn.empty());
  // Energy: 7 NACK hops charged.
  EXPECT_DOUBLE_EQ(energy.control_nj(),
                   7 * energy.params().nack_hop_pj * 1e-3);
}

TEST(NackNetwork, PerSourceWireSerializesBursts) {
  const Mesh m(4, 4);
  SimConfig scarab;
  scarab.design = RouterDesign::Scarab;
  EnergyMeter energy(scarab);
  NackNetwork nn;
  nn.set_num_nodes(16);
  // Three drops against the same source, all 1 hop away at cycle 0:
  // ideal delivery would be cycle 2 for each; the 1-bit wire spreads
  // them over cycles 2, 3, 4.
  for (int i = 0; i < 3; ++i) {
    Flit f{.packet = static_cast<PacketId>(i + 1), .src = 0};
    nn.schedule(f, 1, 0, m, energy);
  }
  EXPECT_EQ(nn.deliveries(1).size(), 0u);
  EXPECT_EQ(nn.deliveries(2).size(), 1u);
  EXPECT_EQ(nn.deliveries(3).size(), 1u);
  EXPECT_EQ(nn.deliveries(4).size(), 1u);
  EXPECT_TRUE(nn.empty());
}

TEST(NackNetwork, SameCycleDeliveriesKeepFifoOrder) {
  const Mesh m(4, 4);
  SimConfig scarab;
  scarab.design = RouterDesign::Scarab;
  EnergyMeter energy(scarab);
  NackNetwork nn;
  Flit a{.packet = 1, .src = 0};
  Flit b{.packet = 2, .src = 0};
  nn.schedule(a, 1, 0, m, energy);
  nn.schedule(b, 1, 0, m, energy);
  const auto got = nn.deliveries(100);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].packet, 1u);
  EXPECT_EQ(got[1].packet, 2u);
}

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<SimConfig> cfgs;
  for (double load : {0.1, 0.2, 0.3}) {
    SimConfig c;
    c.design = RouterDesign::DXbar;
    c.offered_load = load;
    c.warmup_cycles = 100;
    c.measure_cycles = 400;
    cfgs.push_back(c);
  }
  const auto serial = run_sweep(cfgs, 1);
  const auto parallel = run_sweep(cfgs, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].flits_ejected, parallel[i].flits_ejected);
    EXPECT_DOUBLE_EQ(serial[i].avg_packet_latency,
                     parallel[i].avg_packet_latency);
  }
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&](std::size_t i) { ++hits[i]; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  parallel_for(0, [&](std::size_t) { FAIL(); }, 4);
}

TEST(Facade, LoadSweepAlignsWithInput) {
  SimConfig base;
  base.design = RouterDesign::DXbar;
  base.warmup_cycles = 100;
  base.measure_cycles = 300;
  const auto points = load_sweep(base, {0.1, 0.3});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].offered_load, 0.1);
  EXPECT_DOUBLE_EQ(points[1].offered_load, 0.3);
  EXPECT_LT(points[0].stats.accepted_load, points[1].stats.accepted_load);
}

TEST(Facade, SaturationDetectsBufferlessBelowDXbar) {
  SimConfig base;
  base.warmup_cycles = 300;
  base.measure_cycles = 1200;

  base.design = RouterDesign::FlitBless;
  const double bless = find_saturation(base, 0.1, 0.9);
  base.design = RouterDesign::DXbar;
  const double dx = find_saturation(base, 0.1, 0.9);
  EXPECT_GT(dx, bless);
}

TEST(ClosedLoop, SplashRunsToCompletion) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  const SplashProfile* app = find_splash_profile("Water");
  ASSERT_NE(app, nullptr);
  SplashProfile small = *app;
  small.transactions_per_node = 10;  // keep the test fast
  const ClosedLoopResult r = run_splash(cfg, small, 400000);
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.completion_cycles, 0u);
  EXPECT_GT(r.packets, 0u);
  EXPECT_GT(r.energy_nj, 0.0);
  EXPECT_GT(r.avg_packet_latency, 0.0);
}

TEST(ClosedLoop, AllDesignsFinishTheSameWorkload) {
  SplashProfile small = *find_splash_profile("FMM");
  small.transactions_per_node = 6;
  for (RouterDesign d :
       {RouterDesign::FlitBless, RouterDesign::Scarab, RouterDesign::Buffered4,
        RouterDesign::DXbar, RouterDesign::UnifiedXbar}) {
    SimConfig cfg;
    cfg.design = d;
    const ClosedLoopResult r = run_splash(cfg, small, 600000);
    EXPECT_TRUE(r.finished) << to_string(d);
  }
}

TEST(ClosedLoop, TraceReplayFinishesAndDrains) {
  SimConfig cfg;
  cfg.design = RouterDesign::UnifiedXbar;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100000;
  std::vector<TraceEntry> entries;
  for (Cycle t = 0; t < 100; ++t) {
    entries.push_back({t, static_cast<NodeId>(t % 64),
                       static_cast<NodeId>((t * 7 + 1) % 64), 3});
  }
  TraceWorkload w(std::move(entries));
  const ClosedLoopResult r = run_closed_loop(cfg, w, 100000);
  EXPECT_TRUE(r.finished);
}

TEST(Facade, VersionIsSemver) {
  const auto v = version();
  EXPECT_FALSE(v.empty());
  EXPECT_NE(v.find('.'), std::string_view::npos);
}

TEST(Runner, UnDrainedRunIsReported) {
  // Absurd overload with a tiny drain budget: drained must be false and
  // the run must still return sensible partial statistics.
  SimConfig cfg;
  cfg.design = RouterDesign::Buffered4;
  cfg.offered_load = 0.9;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 500;
  cfg.drain_cycles = 10;
  const RunStats s = run_open_loop(cfg);
  EXPECT_FALSE(s.drained);
  EXPECT_GT(s.flits_ejected, 0u);
}

}  // namespace
}  // namespace dxbar
