// Property tests for the extension turn models (negative-first,
// north-last): minimality, termination, turn legality along every
// adaptive choice, and end-to-end conservation.
#include <gtest/gtest.h>

#include "routing/routing_algorithm.hpp"
#include "routing/turn_models.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {
namespace {

struct Model {
  const char* name;
  RouteSet (*routes)(const Mesh&, NodeId, NodeId);
  bool (*legal)(Direction, Direction);
};

const Model kModels[] = {
    {"negative-first", nf_routes, nf_turn_legal},
    {"north-last", nl_routes, nl_turn_legal},
};

TEST(TurnModels, MinimalLegalAndTerminating) {
  const Mesh m(5, 5);
  for (const Model& model : kModels) {
    for (NodeId s = 0; s < static_cast<NodeId>(m.num_nodes()); ++s) {
      for (NodeId d = 0; d < static_cast<NodeId>(m.num_nodes()); ++d) {
        if (s == d) continue;
        struct State {
          NodeId at;
          Direction came;
        };
        std::vector<State> stack{{s, Direction::Local}};
        int guard = 0;
        while (!stack.empty() && ++guard < 2000) {
          const State st = stack.back();
          stack.pop_back();
          if (st.at == d) continue;
          const RouteSet routes = model.routes(m, st.at, d);
          ASSERT_FALSE(routes.empty()) << model.name;
          for (Direction dir : routes) {
            ASSERT_NE(dir, Direction::Local) << model.name;
            if (st.came != Direction::Local) {
              ASSERT_TRUE(model.legal(st.came, dir))
                  << model.name << ": " << to_string(st.came) << "->"
                  << to_string(dir);
            }
            const auto next = m.neighbor(st.at, dir);
            ASSERT_TRUE(next.has_value()) << model.name;
            ASSERT_LT(m.distance(*next, d), m.distance(st.at, d))
                << model.name;
            stack.push_back({*next, dir});
          }
        }
        ASSERT_LT(guard, 2000) << model.name << " runaway";
      }
    }
  }
}

TEST(TurnModels, NegativeFirstKnownCases) {
  const Mesh m(8, 8);
  // Needs west and north: west (negative) must come first.
  const RouteSet r = nf_routes(m, m.node(5, 2), m.node(2, 6));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], Direction::West);
  // Needs west and south: adaptive among both negatives.
  const RouteSet r2 = nf_routes(m, m.node(5, 6), m.node(2, 2));
  EXPECT_EQ(r2.size(), 2u);
  EXPECT_TRUE(r2.contains(Direction::West));
  EXPECT_TRUE(r2.contains(Direction::South));
  // Only positives remain: adaptive among them.
  const RouteSet r3 = nf_routes(m, m.node(2, 2), m.node(5, 6));
  EXPECT_EQ(r3.size(), 2u);
  EXPECT_TRUE(r3.contains(Direction::East));
  EXPECT_TRUE(r3.contains(Direction::North));
}

TEST(TurnModels, NorthLastKnownCases) {
  const Mesh m(8, 8);
  // Needs east and north: east first (north is last).
  const RouteSet r = nl_routes(m, m.node(2, 2), m.node(5, 6));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], Direction::East);
  // Needs east and south: adaptive.
  const RouteSet r2 = nl_routes(m, m.node(2, 6), m.node(5, 2));
  EXPECT_EQ(r2.size(), 2u);
  EXPECT_TRUE(r2.contains(Direction::East));
  EXPECT_TRUE(r2.contains(Direction::South));
  // Only north remains.
  const RouteSet r3 = nl_routes(m, m.node(5, 2), m.node(5, 6));
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_EQ(r3[0], Direction::North);
}

TEST(TurnModels, DispatchThroughComputeRoutes) {
  const Mesh m(8, 8);
  EXPECT_EQ(compute_routes(RoutingAlgo::NegativeFirst, m, m.node(5, 6),
                           m.node(2, 2))
                .size(),
            2u);
  EXPECT_EQ(compute_routes(RoutingAlgo::NorthLast, m, m.node(5, 2),
                           m.node(5, 6))[0],
            Direction::North);
}

TEST(TurnModels, ParseNames) {
  RoutingAlgo a;
  EXPECT_TRUE(parse_routing("nf", a));
  EXPECT_EQ(a, RoutingAlgo::NegativeFirst);
  EXPECT_TRUE(parse_routing("north-last", a));
  EXPECT_EQ(a, RoutingAlgo::NorthLast);
}

class TurnModelConservationTest
    : public ::testing::TestWithParam<RoutingAlgo> {};

TEST_P(TurnModelConservationTest, DXbarConservesAndDrains) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.routing = GetParam();
  cfg.offered_load = 0.35;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1200;
  const RunStats s = run_open_loop(cfg);
  EXPECT_TRUE(s.drained) << to_string(GetParam());
  EXPECT_GT(s.accepted_load, 0.3) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algos, TurnModelConservationTest,
                         ::testing::Values(RoutingAlgo::NegativeFirst,
                                           RoutingAlgo::NorthLast),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(DetailedRun, ExposesWindowPackets) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.2;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  const DetailedRun run = run_open_loop_detailed(cfg);
  EXPECT_EQ(run.packets.size(), run.stats.packets_completed);
  ASSERT_FALSE(run.packets.empty());
  for (const PacketRecord& p : run.packets) {
    EXPECT_GE(p.created, cfg.warmup_cycles);
    EXPECT_LT(p.created, cfg.warmup_cycles + cfg.measure_cycles);
    EXPECT_GE(p.completed, p.injected);
    EXPECT_GE(p.injected, p.created);
  }
}

}  // namespace
}  // namespace dxbar
