// Tests for power/: the parametric technology model.  Golden tests pin
// the 65 nm / 1.0 V / 1 GHz / 128-bit operating point to the paper's
// Table III values; property tests check the derivation is monotone in
// flit width, buffer depth, crossbar radix and tech node; meter tests
// check the accounting identities over derived parameters.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "power/component_models.hpp"
#include "power/energy_model.hpp"
#include "power/tech_params.hpp"
#include "router/factory.hpp"

namespace dxbar {
namespace {

SimConfig config_for(RouterDesign d, int tech_node = 65) {
  SimConfig c;
  c.design = d;
  c.tech_node = tech_node;
  return c;
}

// Golden validation: at the paper's operating point the derived
// per-event energies reproduce Table III within 5%.
TEST(PowerTableIII, GoldenEnergies65nm) {
  const EnergyParams dx = derive_energy_params(config_for(RouterDesign::DXbar));
  EXPECT_NEAR(dx.crossbar_pj, 13.0, 13.0 * 0.05);  // paper: 13 pJ/flit
  EXPECT_NEAR(dx.link_pj, 36.0, 36.0 * 0.05);      // paper: 36 pJ/traversal
  EXPECT_NEAR(dx.nack_hop_pj, 1.5, 1.5 * 0.05);
  EXPECT_NEAR(dx.buffer_write_pj, 2.8, 2.8 * 0.05);
  EXPECT_NEAR(dx.buffer_read_pj, 2.2, 2.2 * 0.05);

  const EnergyParams uni =
      derive_energy_params(config_for(RouterDesign::UnifiedXbar));
  EXPECT_NEAR(uni.crossbar_pj, 15.0, 15.0 * 0.05);  // transmission gates

  // Buffered 8 pays deeper access wiring than Buffered 4.
  const EnergyParams b8 =
      derive_energy_params(config_for(RouterDesign::Buffered8));
  const EnergyParams b4 =
      derive_energy_params(config_for(RouterDesign::Buffered4));
  EXPECT_GT(b8.buffer_write_pj, b4.buffer_write_pj);
  EXPECT_GT(b8.buffer_read_pj, b4.buffer_read_pj);
}

TEST(PowerTableIII, GoldenAreaRelations65nm) {
  const auto area = [](RouterDesign d) {
    const SimConfig c = config_for(d);
    return router_area_mm2(d, derive_area_params(c));
  };
  const double bless = area(RouterDesign::FlitBless);
  const double scarab = area(RouterDesign::Scarab);
  const double b4 = area(RouterDesign::Buffered4);
  const double b8 = area(RouterDesign::Buffered8);
  const double dx = area(RouterDesign::DXbar);
  const double uni = area(RouterDesign::UnifiedXbar);

  // "DXbar occupies 33% more area than Flit-Bless ... the unified
  //  crossbar design occupies 25% more."  5% tolerance on the ratios.
  EXPECT_NEAR(dx / bless, 1.33, 1.33 * 0.05);
  EXPECT_NEAR(uni / bless, 1.25, 1.25 * 0.05);

  // "DXbar occupies more area than buffered 4 ... less than buffered 8
  //  because the buffers have a larger area than the crossbar."
  EXPECT_GT(dx, b4);
  EXPECT_LT(dx, b8);

  // "The unified crossbar design occupies less area than DXbar."
  EXPECT_LT(uni, dx);

  // SCARAB adds only the NACK circuit over Flit-Bless.
  EXPECT_GT(scarab, bless);
  EXPECT_LT(scarab - bless, 0.01);

  const AreaParams p = derive_area_params(config_for(RouterDesign::DXbar));
  EXPECT_GT(p.buffer_bank_mm2, p.crossbar_mm2);
}

TEST(PowerTiming, UnderOneNanosecondClock) {
  const TimingParams t;
  EXPECT_LT(t.link_traversal_ns, 1.0);   // paper: 0.47 ns
  EXPECT_LT(t.unified_switch_ns, 1.0);   // paper: 0.27 ns
  EXPECT_DOUBLE_EQ(t.link_traversal_ns, 0.47);
  EXPECT_DOUBLE_EQ(t.unified_switch_ns, 0.27);
}

// Property: every per-event energy scales up with flit width (more bits
// switching the same wires).
TEST(PowerScaling, MonotoneInFlitWidth) {
  SimConfig narrow = config_for(RouterDesign::DXbar);
  SimConfig wide = narrow;
  narrow.flit_bits = 64;
  wide.flit_bits = 256;
  const EnergyParams lo = derive_energy_params(narrow);
  const EnergyParams hi = derive_energy_params(wide);
  EXPECT_GT(hi.crossbar_pj, lo.crossbar_pj);
  EXPECT_GT(hi.link_pj, lo.link_pj);
  EXPECT_GT(hi.buffer_write_pj, lo.buffer_write_pj);
  EXPECT_GT(hi.buffer_read_pj, lo.buffer_read_pj);
  // Wider flits also mean wider crossbars and buffers.
  const AreaParams alo = derive_area_params(narrow);
  const AreaParams ahi = derive_area_params(wide);
  EXPECT_GT(ahi.crossbar_mm2, alo.crossbar_mm2);
  EXPECT_GT(ahi.buffer_bank_mm2, alo.buffer_bank_mm2);
  EXPECT_GT(ahi.links_mm2, alo.links_mm2);
}

// Property: deeper FIFOs cost more per access (longer bitlines) and
// more silicon.
TEST(PowerScaling, MonotoneInBufferDepth) {
  SimConfig shallow = config_for(RouterDesign::Buffered4);
  SimConfig deep = shallow;
  shallow.buffer_depth = 2;
  deep.buffer_depth = 16;
  const EnergyParams lo = derive_energy_params(shallow);
  const EnergyParams hi = derive_energy_params(deep);
  EXPECT_GT(hi.buffer_write_pj, lo.buffer_write_pj);
  EXPECT_GT(hi.buffer_read_pj, lo.buffer_read_pj);
  // Crossbar and link energy do not depend on buffering.
  EXPECT_DOUBLE_EQ(hi.crossbar_pj, lo.crossbar_pj);
  EXPECT_DOUBLE_EQ(hi.link_pj, lo.link_pj);
  EXPECT_GT(derive_area_params(deep).buffer_bank_mm2,
            derive_area_params(shallow).buffer_bank_mm2);
}

// Property: a bigger crossbar radix means longer input/output wires,
// so both traversal energy and area grow.
TEST(PowerScaling, MonotoneInCrossbarRadix) {
  const TechParams t = TechParams::node(65);
  const MatrixCrossbarModel small(5, 5, 128, t);
  const MatrixCrossbarModel big(8, 8, 128, t);
  EXPECT_GT(big.traversal_pj(), small.traversal_pj());
  EXPECT_GT(big.area_mm2(), small.area_mm2());
  // Segmentation adds gate capacitance on top of the matrix wires.
  const SegmentedCrossbarModel seg(5, 5, 128, 5, t);
  EXPECT_GT(seg.traversal_pj(), small.traversal_pj());
  EXPECT_GT(seg.area_mm2(), small.area_mm2());
}

// Property: newer nodes run at lower Vdd with shorter wires, so every
// per-event energy and every area shrinks monotonically 65 > 32 > 16.
TEST(PowerScaling, ShrinksWithTechNode) {
  const EnergyParams e65 =
      derive_energy_params(config_for(RouterDesign::DXbar, 65));
  const EnergyParams e32 =
      derive_energy_params(config_for(RouterDesign::DXbar, 32));
  const EnergyParams e16 =
      derive_energy_params(config_for(RouterDesign::DXbar, 16));
  EXPECT_GT(e65.crossbar_pj, e32.crossbar_pj);
  EXPECT_GT(e32.crossbar_pj, e16.crossbar_pj);
  EXPECT_GT(e65.link_pj, e32.link_pj);
  EXPECT_GT(e32.link_pj, e16.link_pj);
  EXPECT_GT(e65.buffer_write_pj, e32.buffer_write_pj);
  EXPECT_GT(e32.buffer_write_pj, e16.buffer_write_pj);

  const AreaParams a65 = derive_area_params(config_for(RouterDesign::DXbar, 65));
  const AreaParams a32 = derive_area_params(config_for(RouterDesign::DXbar, 32));
  const AreaParams a16 = derive_area_params(config_for(RouterDesign::DXbar, 16));
  EXPECT_GT(a65.crossbar_mm2, a32.crossbar_mm2);
  EXPECT_GT(a32.crossbar_mm2, a16.crossbar_mm2);
  EXPECT_GT(a65.buffer_bank_mm2, a32.buffer_bank_mm2);
  EXPECT_GT(a32.buffer_bank_mm2, a16.buffer_bank_mm2);
}

// The area ratios the paper states are pure geometry — they survive a
// tech shrink even though the absolute numbers change.
TEST(PowerScaling, AreaRatiosSurviveShrink) {
  for (int node : {32, 16}) {
    const auto area = [&](RouterDesign d) {
      const SimConfig c = config_for(d, node);
      return router_area_mm2(d, derive_area_params(c));
    };
    const double bless = area(RouterDesign::FlitBless);
    EXPECT_NEAR(area(RouterDesign::DXbar) / bless, 1.33, 1.33 * 0.05)
        << node << " nm";
    EXPECT_NEAR(area(RouterDesign::UnifiedXbar) / bless, 1.25, 1.25 * 0.05)
        << node << " nm";
  }
}

// --- router-zoo component models (DAMQ shared buffer, minBD side buffer) --

TEST(PowerZoo, DamqPaysPointerOverheadOverStaticBanks) {
  // A DAMQ access spans the whole pool depth and each word carries a
  // next-pointer, so per-access energy and per-slot area both exceed the
  // statically partitioned Buffered-4 bank at the same total storage.
  const EnergyParams damq =
      derive_energy_params(config_for(RouterDesign::Damq));
  const EnergyParams b4 =
      derive_energy_params(config_for(RouterDesign::Buffered4));
  EXPECT_GT(damq.buffer_write_pj, b4.buffer_write_pj);
  EXPECT_GT(damq.buffer_read_pj, b4.buffer_read_pj);

  const AreaParams a = derive_area_params(config_for(RouterDesign::Damq));
  EXPECT_GT(a.damq_buffer_mm2, 0.0);
  EXPECT_GT(a.damq_buffer_mm2, a.buffer_bank_mm2);
  // ...but the pointer overhead is bounded: well under 2x.
  EXPECT_LT(a.damq_buffer_mm2, 2.0 * a.buffer_bank_mm2);
}

TEST(PowerZoo, MinBDSideBufferIsTheCheapestBufferedStorage) {
  // One small FIFO plus a redirection mux: minBD's buffered-storage
  // area sits far below any four-bank input-queued design at the same
  // depth parameter.
  const AreaParams minbd =
      derive_area_params(config_for(RouterDesign::MinBD));
  const AreaParams b4 =
      derive_area_params(config_for(RouterDesign::Buffered4));
  EXPECT_GT(minbd.side_buffer_mm2, 0.0);
  EXPECT_LT(minbd.side_buffer_mm2, b4.buffer_bank_mm2);
  EXPECT_LT(router_area_mm2(RouterDesign::MinBD, minbd),
            router_area_mm2(RouterDesign::Buffered4, b4));
  // The redirection mux makes a side-buffer access cost more than a
  // bare FIFO of the same shape would, and energy stays monotone in
  // depth like every other storage model.
  SimConfig shallow = config_for(RouterDesign::MinBD);
  SimConfig deep = shallow;
  shallow.buffer_depth = 4;
  deep.buffer_depth = 16;
  EXPECT_GT(derive_energy_params(deep).buffer_write_pj,
            derive_energy_params(shallow).buffer_write_pj);
  EXPECT_GT(derive_area_params(deep).side_buffer_mm2,
            derive_area_params(shallow).side_buffer_mm2);
}

TEST(PowerZoo, EqualBudgetDepthsMatchAcrossDesigns) {
  // The shootout's equal-budget premise: 16 flit-slots per node is
  // reachable by every contender, and the helper agrees on how.
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::DXbar, 4), 16);
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::Damq, 4), 16);
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::UnifiedXbar, 4), 16);
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::MinBD, 16), 16);
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::Buffered8, 2), 16);
  // Bufferless designs provision nothing.
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::FlitBless, 4), 0);
  EXPECT_EQ(buffer_slots_per_node(RouterDesign::Scarab, 4), 0);
}

// --- leakage ---------------------------------------------------------------

TEST(PowerLeakage, PositiveAndProportionalToAreaAndTime) {
  const SimConfig cfg = config_for(RouterDesign::DXbar);
  const double mw = router_leakage_mw(cfg);
  EXPECT_GT(mw, 0.0);
  // leakage power = area x density, exactly.
  const TechParams t = TechParams::node(65);
  EXPECT_DOUBLE_EQ(mw,
                   router_area_mm2(RouterDesign::DXbar,
                                   derive_area_params(cfg)) *
                       t.leakage_mw_per_mm2);
  // Energy over a window is linear in cycle count.
  const double e1 = network_leakage_nj(cfg, 1000);
  const double e2 = network_leakage_nj(cfg, 2000);
  EXPECT_GT(e1, 0.0);
  EXPECT_DOUBLE_EQ(e2, 2.0 * e1);
}

TEST(PowerLeakage, BiggerRoutersLeakMore) {
  EXPECT_GT(router_leakage_mw(config_for(RouterDesign::Buffered8)),
            router_leakage_mw(config_for(RouterDesign::FlitBless)));
  EXPECT_GT(router_leakage_mw(config_for(RouterDesign::DXbar)),
            router_leakage_mw(config_for(RouterDesign::UnifiedXbar)));
}

TEST(PowerLeakage, ExcludedFromDynamicTotals) {
  // Table III stays dynamic-only: leakage lives in its own RunStats
  // field and never contaminates total_energy_nj or pJ/flit.
  RunStats s;
  s.energy_buffer_nj = 1.0;
  s.energy_crossbar_nj = 2.0;
  s.energy_link_nj = 3.0;
  s.energy_leakage_nj = 100.0;
  s.flits_ejected = 6;
  EXPECT_DOUBLE_EQ(s.total_energy_nj(), 6.0);
  EXPECT_DOUBLE_EQ(s.energy_per_flit_nj(), 1.0);
}

TEST(PowerLeakage, DensityIsPerNodeNotScaled) {
  // High-k 32 nm leaks more per mm^2 than 65 nm; the FinFET 16 nm point
  // drops back below it.  (Set per node, not derived by scaling.)
  EXPECT_GT(TechParams::node(32).leakage_mw_per_mm2,
            TechParams::node(65).leakage_mw_per_mm2);
  EXPECT_LT(TechParams::node(16).leakage_mw_per_mm2,
            TechParams::node(32).leakage_mw_per_mm2);
}

TEST(EnergyMeter, AccountingIdentity) {
  const SimConfig cfg = config_for(RouterDesign::DXbar);
  EnergyMeter m(cfg);
  m.crossbar_traversal();
  m.crossbar_traversal();
  m.link_traversal();
  m.buffer_write();
  m.buffer_read();
  m.nack_hops(4);

  const EnergyParams p = derive_energy_params(cfg);
  EXPECT_DOUBLE_EQ(m.crossbar_nj(), 2 * p.crossbar_pj * 1e-3);
  EXPECT_DOUBLE_EQ(m.link_nj(), p.link_pj * 1e-3);
  EXPECT_DOUBLE_EQ(m.buffer_nj(),
                   (p.buffer_write_pj + p.buffer_read_pj) * 1e-3);
  EXPECT_DOUBLE_EQ(m.control_nj(), 4 * p.nack_hop_pj * 1e-3);
  EXPECT_DOUBLE_EQ(
      m.total_nj(),
      m.crossbar_nj() + m.link_nj() + m.buffer_nj() + m.control_nj());
}

TEST(EnergyMeter, DisabledRecordsNothing) {
  EnergyMeter m(config_for(RouterDesign::DXbar));
  m.set_enabled(false);
  m.crossbar_traversal();
  m.link_traversal();
  m.buffer_write();
  EXPECT_DOUBLE_EQ(m.total_nj(), 0.0);
  m.set_enabled(true);
  m.link_traversal();
  EXPECT_GT(m.total_nj(), 0.0);
}

TEST(EnergyMeter, ResetClears) {
  EnergyMeter m(config_for(RouterDesign::Buffered4));
  m.buffer_write();
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_nj(), 0.0);
}

TEST(EnergyMeter, UnifiedChargesGateOverhead) {
  EnergyMeter dx(config_for(RouterDesign::DXbar));
  EnergyMeter uni(config_for(RouterDesign::UnifiedXbar));
  dx.crossbar_traversal();
  uni.crossbar_traversal();
  EXPECT_GT(uni.crossbar_nj(), dx.crossbar_nj());
}

// At 32 nm the same event stream costs strictly less than at 65 nm —
// the meter is wired to the derived parameters, not constants.
TEST(EnergyMeter, TechNodeChangesCharges) {
  EnergyMeter m65(config_for(RouterDesign::DXbar, 65));
  EnergyMeter m32(config_for(RouterDesign::DXbar, 32));
  for (EnergyMeter* m : {&m65, &m32}) {
    m->crossbar_traversal();
    m->link_traversal();
    m->buffer_write();
    m->buffer_read();
  }
  EXPECT_GT(m65.total_nj(), m32.total_nj());
}

}  // namespace
}  // namespace dxbar
