// Tests for power/: Table III constants, the area relations the paper
// states in prose, and energy-meter accounting identities.
#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace dxbar {
namespace {

TEST(EnergyParams, PaperConstants) {
  const EnergyParams dx = energy_params(RouterDesign::DXbar);
  EXPECT_DOUBLE_EQ(dx.crossbar_pj, 13.0);  // paper: 13 pJ/flit
  EXPECT_DOUBLE_EQ(dx.link_pj, 36.0);      // paper: 36 pJ per flit traversal

  const EnergyParams uni = energy_params(RouterDesign::UnifiedXbar);
  EXPECT_DOUBLE_EQ(uni.crossbar_pj, 15.0);  // transmission gates: 15 pJ

  const EnergyParams b8 = energy_params(RouterDesign::Buffered8);
  const EnergyParams b4 = energy_params(RouterDesign::Buffered4);
  EXPECT_GT(b8.buffer_write_pj, b4.buffer_write_pj);
  EXPECT_GT(b8.buffer_read_pj, b4.buffer_read_pj);
}

TEST(Area, PaperRelationsHold) {
  const double bless = router_area_mm2(RouterDesign::FlitBless);
  const double scarab = router_area_mm2(RouterDesign::Scarab);
  const double b4 = router_area_mm2(RouterDesign::Buffered4);
  const double b8 = router_area_mm2(RouterDesign::Buffered8);
  const double dx = router_area_mm2(RouterDesign::DXbar);
  const double uni = router_area_mm2(RouterDesign::UnifiedXbar);

  // "DXbar occupies 33% more area than Flit-Bless ... the unified
  //  crossbar design occupies 25% more."
  EXPECT_NEAR(dx / bless, 1.33, 0.02);
  EXPECT_NEAR(uni / bless, 1.25, 0.02);

  // "DXbar occupies more area than buffered 4 ... less than buffered 8
  //  because the buffers have a larger area than the crossbar."
  EXPECT_GT(dx, b4);
  EXPECT_LT(dx, b8);

  // "The unified crossbar design occupies less area than DXbar."
  EXPECT_LT(uni, dx);

  // SCARAB adds only the NACK circuit over Flit-Bless.
  EXPECT_GT(scarab, bless);
  EXPECT_LT(scarab - bless, 0.01);

  const AreaParams p;
  EXPECT_GT(p.buffer_bank_mm2, p.crossbar_mm2);
}

TEST(Timing, UnderOneNanosecondClock) {
  const TimingParams t;
  EXPECT_LT(t.link_traversal_ns, 1.0);   // paper: 0.47 ns
  EXPECT_LT(t.unified_switch_ns, 1.0);   // paper: 0.27 ns
  EXPECT_DOUBLE_EQ(t.link_traversal_ns, 0.47);
  EXPECT_DOUBLE_EQ(t.unified_switch_ns, 0.27);
}

TEST(EnergyMeter, AccountingIdentity) {
  EnergyMeter m(RouterDesign::DXbar);
  m.crossbar_traversal();
  m.crossbar_traversal();
  m.link_traversal();
  m.buffer_write();
  m.buffer_read();
  m.nack_hops(4);

  const EnergyParams p = energy_params(RouterDesign::DXbar);
  EXPECT_DOUBLE_EQ(m.crossbar_nj(), 2 * p.crossbar_pj * 1e-3);
  EXPECT_DOUBLE_EQ(m.link_nj(), p.link_pj * 1e-3);
  EXPECT_DOUBLE_EQ(m.buffer_nj(),
                   (p.buffer_write_pj + p.buffer_read_pj) * 1e-3);
  EXPECT_DOUBLE_EQ(m.control_nj(), 4 * p.nack_hop_pj * 1e-3);
  EXPECT_DOUBLE_EQ(
      m.total_nj(),
      m.crossbar_nj() + m.link_nj() + m.buffer_nj() + m.control_nj());
}

TEST(EnergyMeter, DisabledRecordsNothing) {
  EnergyMeter m(RouterDesign::DXbar);
  m.set_enabled(false);
  m.crossbar_traversal();
  m.link_traversal();
  m.buffer_write();
  EXPECT_DOUBLE_EQ(m.total_nj(), 0.0);
  m.set_enabled(true);
  m.link_traversal();
  EXPECT_GT(m.total_nj(), 0.0);
}

TEST(EnergyMeter, ResetClears) {
  EnergyMeter m(RouterDesign::Buffered4);
  m.buffer_write();
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_nj(), 0.0);
}

TEST(EnergyMeter, UnifiedChargesGateOverhead) {
  EnergyMeter dx(RouterDesign::DXbar);
  EnergyMeter uni(RouterDesign::UnifiedXbar);
  dx.crossbar_traversal();
  uni.crossbar_traversal();
  EXPECT_GT(uni.crossbar_nj(), dx.crossbar_nj());
}

}  // namespace
}  // namespace dxbar
