// Chaos testing: pseudo-random configurations drawn from the whole knob
// space.  Every generated configuration must either fail validation or
// simulate cleanly — conserve flits, drain, and produce sane statistics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "topology/partition.hpp"

namespace dxbar {
namespace {

SimConfig random_config(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  SimConfig cfg;
  cfg.mesh_width = 2 + static_cast<int>(rng.below(7));   // 2..8
  cfg.mesh_height = 2 + static_cast<int>(rng.below(7));  // 2..8

  constexpr RouterDesign designs[] = {
      RouterDesign::FlitBless,  RouterDesign::Scarab,
      RouterDesign::Buffered4,  RouterDesign::Buffered8,
      RouterDesign::DXbar,      RouterDesign::UnifiedXbar,
      RouterDesign::BufferedVC, RouterDesign::Afc,
      RouterDesign::Damq,       RouterDesign::MinBD};
  cfg.design = designs[rng.below(10)];

  constexpr RoutingAlgo algos[] = {RoutingAlgo::DOR, RoutingAlgo::WestFirst,
                                   RoutingAlgo::NegativeFirst,
                                   RoutingAlgo::NorthLast};
  cfg.routing = algos[rng.below(4)];

  // Patterns with bit-permutation definitions need power-of-two node
  // counts; restrict those to compatible meshes.
  const bool pow2 =
      (cfg.num_nodes() & (cfg.num_nodes() - 1)) == 0;
  if (pow2 && rng.bernoulli(0.5)) {
    cfg.pattern = kAllPatterns[rng.below(kNumPatterns)];
  } else {
    constexpr TrafficPattern safe[] = {TrafficPattern::UniformRandom,
                                       TrafficPattern::NonUniformRandom,
                                       TrafficPattern::Transpose,
                                       TrafficPattern::Neighbor,
                                       TrafficPattern::Tornado};
    cfg.pattern = safe[rng.below(5)];
  }

  cfg.offered_load = 0.05 + 0.5 * rng.uniform();
  cfg.packet_length = 1 + static_cast<int>(rng.below(6));
  cfg.buffer_depth = 1 + static_cast<int>(rng.below(8));
  cfg.num_vcs = 1 + static_cast<int>(rng.below(2));
  cfg.fairness_threshold = 1 + static_cast<int>(rng.below(16));
  cfg.stall_escape_delay = 1 + static_cast<int>(rng.below(32));
  cfg.fault_fraction = rng.bernoulli(0.3) ? rng.uniform() : 0.0;
  if (rng.bernoulli(0.25)) cfg.link_fault_fraction = 0.2 * rng.uniform();
  if (rng.bernoulli(0.25)) cfg.torus = true;
  cfg.seed = seed;
  return cfg;
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, RandomConfigValidatesOrSimulatesCleanly) {
  SimConfig cfg = random_config(GetParam());
  if (!cfg.validate().empty()) {
    // Invalid combinations must be *rejected*, never crash: fix the
    // offending knobs and retry so every chaos seed exercises a run.
    cfg.link_fault_fraction = 0.0;
    cfg.torus = false;
    if (cfg.design == RouterDesign::BufferedVC &&
        cfg.buffer_depth % cfg.num_vcs != 0) {
      cfg.num_vcs = 1;
    }
    ASSERT_EQ(cfg.validate(), "") << cfg.describe();
  }

  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 400;
  Network net(cfg);
  const Mesh m(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 400; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 120000 && !net.idle(); ++t) net.step();

  ASSERT_TRUE(net.idle()) << cfg.describe();
  EXPECT_EQ(net.flits_created(), net.flits_delivered()) << cfg.describe();
  EXPECT_EQ(net.packets_created(), net.packets_delivered())
      << cfg.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range<std::uint64_t>(1, 41),
                         [](const auto& info) {
                           return "c" + std::to_string(info.param);
                         });

// --- randomized-partition fuzz ----------------------------------------
//
// The shard-equivalence suite (determinism_test.cpp) covers the even
// row split the production path uses; this family drives *arbitrary*
// cut lines — including maximally unbalanced ones (a 1-row shard next
// to a 9-row shard) — across random designs, loads, and injected link
// faults, asserting flit conservation and bit-exact stats against the
// single-threaded run.  Any partition of the rows must be unobservable.

/// Open-loop run on an explicitly partitioned network, with the same
/// phase structure as run_open_loop.
RunStats run_with_partition(const SimConfig& cfg, const MeshPartition& part) {
  Network net(cfg, part);
  const Mesh m(cfg.mesh_width, cfg.mesh_height, cfg.torus);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  const RunStats s = finish_open_loop(net, w);
  if (s.drained) {
    EXPECT_TRUE(net.idle()) << cfg.describe();
    EXPECT_EQ(net.flits_created(), net.flits_delivered()) << cfg.describe();
    EXPECT_EQ(net.packets_created(), net.packets_delivered())
        << cfg.describe();
    EXPECT_EQ(net.flit_pool_live(), 0u) << cfg.describe();
  }
  return s;
}

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const SimConfig& cfg) {
  EXPECT_EQ(a.accepted_load, b.accepted_load) << cfg.describe();
  EXPECT_EQ(a.accepted_load_stddev, b.accepted_load_stddev);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency) << cfg.describe();
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.latency_max, b.latency_max);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.deflections_per_flit, b.deflections_per_flit);
  EXPECT_EQ(a.retransmits_per_flit, b.retransmits_per_flit);
  EXPECT_EQ(a.packets_completed, b.packets_completed) << cfg.describe();
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.energy_buffer_nj, b.energy_buffer_nj);
  EXPECT_EQ(a.energy_crossbar_nj, b.energy_crossbar_nj);
  EXPECT_EQ(a.energy_link_nj, b.energy_link_nj);
  EXPECT_EQ(a.energy_control_nj, b.energy_control_nj) << cfg.describe();
}

class ShardFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardFuzzTest, RandomPartitionIsBitExactAndConserving) {
  Rng rng(GetParam() * 0xD1B54A32D192ED03ULL + 5);

  SimConfig cfg;
  // Designs with a deflection escape valve, so random link faults are
  // always a valid combination.
  constexpr RouterDesign valve[] = {
      RouterDesign::FlitBless,   RouterDesign::Scarab, RouterDesign::DXbar,
      RouterDesign::UnifiedXbar, RouterDesign::Afc,    RouterDesign::MinBD};
  cfg.design = valve[rng.below(6)];
  cfg.mesh_width = 4 + static_cast<int>(rng.below(5));    // 4..8
  cfg.mesh_height = 4 + static_cast<int>(rng.below(7));   // 4..10
  cfg.offered_load = 0.05 + 0.35 * rng.uniform();
  cfg.packet_length = 1 + static_cast<int>(rng.below(5));
  if (rng.bernoulli(0.5)) cfg.link_fault_fraction = 0.15 * rng.uniform();
  if (rng.bernoulli(0.3)) {
    cfg.fault_fraction = rng.uniform();
    cfg.fault_onset_spread = 1 + rng.below(300);
  }
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 500;
  cfg.seed = GetParam();
  ASSERT_EQ(cfg.validate(), "") << cfg.describe();

  // Random interior cut lines: each row boundary becomes a cut with
  // p=0.4, yielding anywhere from one shard to one-per-row.
  const Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  std::vector<int> cuts;
  for (int y = 1; y < cfg.mesh_height; ++y) {
    if (rng.bernoulli(0.4)) cuts.push_back(y);
  }
  const MeshPartition part = MeshPartition::from_row_cuts(mesh, cuts);

  const RunStats serial = run_open_loop(cfg);  // cfg.shards == 1
  const RunStats sharded = run_with_partition(cfg, part);
  SCOPED_TRACE("shards=" + std::to_string(part.shards()));
  expect_stats_identical(serial, sharded, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 25),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST(Describe, MentionsEveryHeadlineKnob) {
  SimConfig cfg;
  cfg.design = RouterDesign::UnifiedXbar;
  cfg.routing = RoutingAlgo::NorthLast;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("Unified Xbar"), std::string::npos);
  EXPECT_NE(d.find("NL"), std::string::npos);
  EXPECT_NE(d.find("8x8"), std::string::npos);
  EXPECT_NE(d.find("seed"), std::string::npos);
}

TEST(OnsetSpread, StaggeredFaultsStillConserve) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.fault_fraction = 1.0;
  cfg.fault_onset_spread = 500;  // faults appear throughout the run
  cfg.offered_load = 0.2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 800;

  Network net(cfg);
  const Mesh m(8, 8);
  SyntheticWorkload w(cfg, m);
  net.set_workload(&w);
  for (Cycle t = 0; t < 800; ++t) net.step();
  w.set_injection_enabled(false);
  for (Cycle t = 0; t < 60000 && !net.idle(); ++t) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.flits_created(), net.flits_delivered());
}

}  // namespace
}  // namespace dxbar
