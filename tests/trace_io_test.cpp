// Binary "DXTR" streaming trace format: round-trips, the typed error
// paths (truncation, corrupt header, version mismatch, malformed
// records), byte-mutation fuzzing over a golden trace, the O(chunk)
// memory bound, and replay equivalence between the streaming and the
// in-memory trace workloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sim_runner.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {
namespace {

std::vector<TraceEntry> make_trace(std::size_t n, NodeId nodes = 16) {
  std::vector<TraceEntry> entries;
  entries.reserve(n);
  Cycle cycle = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cycle += i % 3;  // non-decreasing, with repeats
    const NodeId src = static_cast<NodeId>(i % nodes);
    const NodeId dst = static_cast<NodeId>((i * 7 + 1) % nodes);
    entries.push_back({cycle, src, dst, static_cast<int>(i % 4) + 1});
  }
  return entries;
}

std::string golden_bytes(std::size_t n) {
  std::stringstream ss;
  const std::vector<TraceEntry> entries = make_trace(n);
  write_trace_binary(ss, entries);
  return ss.str();
}

TraceError::Kind read_kind(const std::string& bytes) {
  std::stringstream ss(bytes);
  try {
    StreamingTraceReader reader(ss);
    TraceEntry e;
    while (reader.next(e)) {
    }
  } catch (const TraceError& err) {
    return err.kind();
  }
  ADD_FAILURE() << "expected a TraceError";
  return TraceError::Kind::Malformed;
}

// --- round trips ---------------------------------------------------------

TEST(TraceBinaryIo, RoundTripPreservesEveryEntry) {
  const std::vector<TraceEntry> entries = make_trace(1000);
  std::stringstream ss;
  write_trace_binary(ss, entries);
  EXPECT_EQ(ss.str().size(), 16 + 1000 * 20u);  // fixed-size records

  const std::vector<TraceEntry> back = read_trace_binary(ss);
  EXPECT_EQ(back, entries);
}

TEST(TraceBinaryIo, WriterCountsAndBackpatches) {
  std::stringstream ss;
  StreamingTraceWriter w(ss, /*chunk=*/8);
  const std::vector<TraceEntry> entries = make_trace(100);
  for (const TraceEntry& e : entries) w.append(e);
  EXPECT_EQ(w.entries_written(), 100u);
  w.finish();
  w.finish();  // idempotent

  StreamingTraceReader r(ss);
  EXPECT_EQ(r.total_entries(), 100u);
}

TEST(TraceBinaryIo, EmptyTraceIsValid) {
  std::stringstream ss;
  write_trace_binary(ss, {});
  std::stringstream in(ss.str());
  StreamingTraceReader r(in);
  EXPECT_EQ(r.total_entries(), 0u);
  TraceEntry e;
  EXPECT_FALSE(r.next(e));
}

// --- writer validation ---------------------------------------------------

TEST(TraceBinaryIo, WriterRejectsMalformedAppends) {
  std::stringstream ss;
  StreamingTraceWriter w(ss);
  w.append({10, 0, 1, 1});
  try {
    w.append({10, 0, 1, 0});  // length < 1
    FAIL() << "length 0 accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.kind(), TraceError::Kind::Malformed);
  }
  try {
    w.append({9, 0, 1, 1});  // cycle regression
    FAIL() << "cycle regression accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.kind(), TraceError::Kind::Malformed);
  }
  w.finish();
  EXPECT_THROW(w.append({11, 0, 1, 1}), TraceError);
}

// --- typed reader error paths --------------------------------------------

TEST(TraceBinaryIo, UnfinishedWriterReadsAsTruncated) {
  std::stringstream ss;
  StreamingTraceWriter w(ss, /*chunk=*/4);
  for (const TraceEntry& e : make_trace(10)) w.append(e);
  // No finish(): the count sentinel stays in the header.
  EXPECT_EQ(read_kind(ss.str()), TraceError::Kind::Truncated);
}

TEST(TraceBinaryIo, ShortHeaderIsTruncated) {
  EXPECT_EQ(read_kind(""), TraceError::Kind::Truncated);
  EXPECT_EQ(read_kind(golden_bytes(5).substr(0, 9)),
            TraceError::Kind::Truncated);
}

TEST(TraceBinaryIo, TruncatedBodyIsTruncated) {
  const std::string bytes = golden_bytes(50);
  // Mid-record and whole-records-missing truncations both count.
  EXPECT_EQ(read_kind(bytes.substr(0, bytes.size() - 7)),
            TraceError::Kind::Truncated);
  EXPECT_EQ(read_kind(bytes.substr(0, 16 + 20 * 20)),
            TraceError::Kind::Truncated);
}

TEST(TraceBinaryIo, CorruptMagicOrEndianIsCorruptHeader) {
  std::string bad_magic = golden_bytes(5);
  bad_magic[0] = 'X';
  EXPECT_EQ(read_kind(bad_magic), TraceError::Kind::CorruptHeader);

  std::string bad_endian = golden_bytes(5);
  bad_endian[6] = '\x00';  // endian marker bytes are 6..7
  EXPECT_EQ(read_kind(bad_endian), TraceError::Kind::CorruptHeader);
}

TEST(TraceBinaryIo, UnknownVersionIsVersionMismatch) {
  std::string bytes = golden_bytes(5);
  bytes[4] = 2;  // version field bytes are 4..5
  EXPECT_EQ(read_kind(bytes), TraceError::Kind::VersionMismatch);
}

TEST(TraceBinaryIo, MalformedRecordsAreMalformed) {
  // Zero out a record's length field (header 16 + cycle 8 + src/dst 8).
  std::string zero_len = golden_bytes(5);
  for (int i = 0; i < 4; ++i) zero_len[16 + 16 + i] = '\x00';
  EXPECT_EQ(read_kind(zero_len), TraceError::Kind::Malformed);

  // Make a later record's cycle regress below its predecessor's.
  std::string regress = golden_bytes(5);
  for (int i = 0; i < 8; ++i) regress[16 + 4 * 20 + i] = '\x00';
  EXPECT_EQ(read_kind(regress), TraceError::Kind::Malformed);
}

TEST(TraceBinaryIo, FuzzedGoldenNeverEscapesTypedErrors) {
  // Every single-byte mutation of a golden trace must either replay
  // cleanly (data bytes are free to change) or throw TraceError — no
  // other exception, no crash, no over-read past the claimed count.
  const std::string golden = golden_bytes(50);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    for (const unsigned char delta : {0x01, 0x80, 0xFF}) {
      std::string mutated = golden;
      mutated[i] = static_cast<char>(mutated[i] ^ delta);
      std::stringstream ss(mutated);
      try {
        StreamingTraceReader reader(ss, /*chunk=*/7);
        TraceEntry e;
        std::uint64_t seen = 0;
        while (reader.next(e)) ++seen;
        EXPECT_EQ(seen, reader.total_entries())
            << "byte " << i << " delta " << int{delta};
        EXPECT_LE(reader.buffered_entries(), 7u);
      } catch (const TraceError&) {
        // Expected for structural mutations.
      }
    }
  }
}

// --- O(chunk) memory -----------------------------------------------------

TEST(TraceBinaryIo, LargeTraceStreamsInBoundedMemory) {
  // 200k records (~4 MB) written and read through 512-entry chunks:
  // the reader must never hold more than one chunk of decoded entries,
  // which is the whole point of the streaming format.
  constexpr std::size_t kEntries = 200'000;
  constexpr std::size_t kChunk = 512;
  std::stringstream ss;
  {
    StreamingTraceWriter w(ss, kChunk);
    TraceEntry e{0, 0, 1, 1};
    for (std::size_t i = 0; i < kEntries; ++i) {
      e.cycle = i / 4;
      e.src = static_cast<NodeId>(i % 64);
      e.dst = static_cast<NodeId>((i + 5) % 64);
      w.append(e);
    }
    w.finish();
  }

  StreamingTraceReader r(ss, kChunk);
  ASSERT_EQ(r.total_entries(), kEntries);
  TraceEntry e;
  std::size_t max_buffered = 0;
  while (r.next(e)) {
    max_buffered = std::max(max_buffered, r.buffered_entries());
  }
  EXPECT_EQ(r.entries_read(), kEntries);
  EXPECT_LE(max_buffered, kChunk);
  EXPECT_EQ(e.cycle, (kEntries - 1) / 4);  // last record intact
}

// --- replay equivalence --------------------------------------------------

TEST(TraceBinaryIo, StreamingReplayMatchesInMemoryReplay) {
  const std::vector<TraceEntry> entries = make_trace(800);
  std::stringstream ss;
  write_trace_binary(ss, entries);

  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.seed = 3;
  constexpr Cycle kMax = 100'000;

  const ClosedLoopResult in_memory = run_trace_replay(cfg, entries, kMax);

  SimConfig run_cfg = cfg;  // mirror run_trace_replay's window setup
  run_cfg.warmup_cycles = 0;
  run_cfg.measure_cycles = kMax;
  StreamingTraceReader reader(ss, /*chunk=*/64);
  StreamingTraceWorkload workload(reader);
  const ClosedLoopResult streamed =
      run_closed_loop(run_cfg, workload, kMax);

  EXPECT_TRUE(in_memory.finished);
  EXPECT_TRUE(streamed.finished);
  EXPECT_EQ(streamed.completion_cycles, in_memory.completion_cycles);
  EXPECT_EQ(streamed.packets, in_memory.packets);
  EXPECT_EQ(streamed.energy_nj, in_memory.energy_nj);
  EXPECT_EQ(streamed.avg_packet_latency, in_memory.avg_packet_latency);
}

// --- text format ---------------------------------------------------------

TEST(TraceTextIo, MalformedLineThrowsTypedError) {
  // A line whose cycle parses but whose tail is junk; non-numeric lines
  // are comment-like and skipped by design.
  std::istringstream is("10 0 1 1\n11 0 junk\n");
  try {
    (void)read_trace(is);
    FAIL() << "malformed line accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.kind(), TraceError::Kind::Malformed);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace dxbar
