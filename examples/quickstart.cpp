// Quickstart: simulate the DXbar router on an 8x8 mesh under uniform
// random traffic and print throughput, latency and energy.
//
//   ./quickstart [key=value ...]      e.g.  ./quickstart load=0.4 routing=wf
//
// Every SimConfig knob is overridable; see common/config.hpp.
#include <cstdio>
#include <span>

#include "core/dxbar.hpp"

int main(int argc, char** argv) {
  dxbar::SimConfig cfg;
  cfg.design = dxbar::RouterDesign::DXbar;
  cfg.pattern = dxbar::TrafficPattern::UniformRandom;
  cfg.offered_load = 0.30;

  const auto err = dxbar::apply_overrides(
      cfg, std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (const auto verr = cfg.validate(); !verr.empty()) {
    std::fprintf(stderr, "invalid config: %s\n", verr.c_str());
    return 1;
  }

  std::printf("dxbar-noc %s quickstart\n", std::string(dxbar::version()).c_str());
  std::printf("design=%s routing=%s pattern=%s mesh=%dx%d load=%.2f\n",
              std::string(to_string(cfg.design)).c_str(),
              std::string(to_string(cfg.routing)).c_str(),
              std::string(to_string(cfg.pattern)).c_str(), cfg.mesh_width,
              cfg.mesh_height, cfg.offered_load);

  const dxbar::RunStats s = dxbar::run_open_loop(cfg);

  std::printf("\n--- results (measurement window: %llu cycles) ---\n",
              static_cast<unsigned long long>(s.cycles));
  std::printf("accepted load        : %.4f flits/node/cycle\n",
              s.accepted_load);
  std::printf("avg packet latency   : %.1f cycles\n", s.avg_packet_latency);
  std::printf("avg network latency  : %.1f cycles\n", s.avg_network_latency);
  std::printf("latency p50/p95/p99  : %.0f / %.0f / %.0f cycles (max %.0f)\n",
              s.latency_p50, s.latency_p95, s.latency_p99, s.latency_max);
  std::printf("avg hops per flit    : %.2f\n", s.avg_hops);
  std::printf("packets completed    : %llu\n",
              static_cast<unsigned long long>(s.packets_completed));
  std::printf("energy per packet    : %.3f nJ (buffer %.1f%%, xbar %.1f%%, "
              "link %.1f%%)\n",
              s.energy_per_packet_nj(),
              100.0 * s.energy_buffer_nj / s.total_energy_nj(),
              100.0 * s.energy_crossbar_nj / s.total_energy_nj(),
              100.0 * s.energy_link_nj / s.total_energy_nj());
  std::printf("drained cleanly      : %s\n", s.drained ? "yes" : "no");
  return 0;
}
