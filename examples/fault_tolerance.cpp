// Fault-tolerance walkthrough: inject crossbar faults into every router
// of a DXbar mesh and show the network degrading gracefully instead of
// failing (paper section II.C) — including the guarantee that no packet
// is ever lost.
//
//   ./fault_tolerance [key=value ...]     e.g.  ./fault_tolerance routing=wf
#include <cstdio>
#include <span>

#include "core/dxbar.hpp"

int main(int argc, char** argv) {
  dxbar::SimConfig base;
  base.design = dxbar::RouterDesign::DXbar;
  base.offered_load = 0.30;
  base.warmup_cycles = 500;
  base.measure_cycles = 3000;

  const auto err = dxbar::apply_overrides(
      base, std::span<const char* const>(argv + 1,
                                         static_cast<std::size_t>(argc - 1)));
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  std::printf("DXbar fault tolerance, %s routing, load %.2f, 8x8 mesh\n",
              std::string(to_string(base.routing)).c_str(),
              base.offered_load);
  std::printf("%-8s %10s %12s %12s %10s\n", "faults", "routers", "accepted",
              "latency", "drained");

  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    dxbar::SimConfig cfg = base;
    cfg.fault_fraction = frac;

    // Count the faulty routers the plan will produce, then run.
    const dxbar::FaultPlan plan(cfg.num_nodes(), frac, cfg.seed, 1,
                                cfg.fault_detect_delay);
    const dxbar::RunStats s = dxbar::run_open_loop(cfg);
    std::printf("%-8.0f%% %9d %12.4f %10.1f cy %10s\n", frac * 100,
                plan.num_faulty(), s.accepted_load, s.avg_packet_latency,
                s.drained ? "yes" : "NO");
  }

  std::puts("\nEven with a crossbar fault in every router (100%), the 2x2");
  std::puts("steering crossbars keep each router alive as a buffered");
  std::puts("single-crossbar router: every injected packet still drains.");
  return 0;
}
