// Link-utilization heatmap: run a workload and print per-link flit
// rates, the per-router ASCII heat map, and the hottest links — handy
// for seeing *why* a pattern saturates where it does (e.g. CP funnels
// everything through the mesh center, NUR through the hot-spot ring).
//
//   ./link_heatmap [key=value ...]   e.g.  ./link_heatmap pattern=cp load=0.4
#include <algorithm>
#include <cstdio>
#include <span>

#include "core/dxbar.hpp"

int main(int argc, char** argv) {
  dxbar::SimConfig cfg;
  cfg.design = dxbar::RouterDesign::DXbar;
  cfg.offered_load = 0.35;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 3000;

  const auto err = dxbar::apply_overrides(
      cfg, std::span<const char* const>(argv + 1,
                                        static_cast<std::size_t>(argc - 1)));
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  dxbar::Network net(cfg);
  const dxbar::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  dxbar::SyntheticWorkload workload(cfg, mesh);
  net.set_workload(&workload);

  const dxbar::Cycle total = cfg.warmup_cycles + cfg.measure_cycles;
  for (dxbar::Cycle t = 0; t < total; ++t) net.step();

  const auto usage = net.link_usage();
  const double cycles = static_cast<double>(total);

  // Per-router heat = mean utilization of its outgoing links.
  std::printf("design=%s pattern=%s load=%.2f — router heat map "
              "(mean outgoing link utilization, %%)\n\n",
              std::string(to_string(cfg.design)).c_str(),
              std::string(to_string(cfg.pattern)).c_str(), cfg.offered_load);
  for (int y = mesh.height() - 1; y >= 0; --y) {
    for (int x = 0; x < mesh.width(); ++x) {
      const dxbar::NodeId n = mesh.node(x, y);
      double sum = 0.0;
      int links = 0;
      for (const auto& u : usage) {
        if (u.link.node == n) {
          sum += static_cast<double>(u.flits) / cycles;
          ++links;
        }
      }
      std::printf(" %4.0f", links == 0 ? 0.0 : 100.0 * sum / links);
    }
    std::printf("\n");
  }

  // Hottest links.
  auto sorted = usage;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.flits > b.flits; });
  std::printf("\nhottest links (utilization = flits/cycle):\n");
  for (std::size_t i = 0; i < 8 && i < sorted.size(); ++i) {
    const auto c = mesh.coord(sorted[i].link.node);
    std::printf("  (%d,%d) %s : %.3f\n", c.x, c.y,
                std::string(to_string(sorted[i].link.dir)).c_str(),
                static_cast<double>(sorted[i].flits) / cycles);
  }

  // Aggregate network load vs the bisection bound.
  double flit_hops = 0.0;
  for (const auto& u : usage) flit_hops += static_cast<double>(u.flits);
  std::printf("\nmean link utilization: %.3f flits/cycle over %zu links\n",
              flit_hops / cycles / static_cast<double>(usage.size()),
              usage.size());
  return 0;
}
