// Packet journey: trace one long-distance packet hop by hop through a
// loaded network — which routers it visited, where it was deflected or
// dropped, and how its flits interleaved.  Uses the Network EventTracer
// hooks; handy for understanding a design's behaviour at a glance.
//
//   ./packet_journey [key=value ...]   e.g.  ./packet_journey design=bless load=0.45
#include <cstdio>
#include <span>
#include <vector>

#include "core/dxbar.hpp"

namespace {

using namespace dxbar;

/// Traces the first corner-to-corner packet created after warmup.
class JourneyTracer final : public EventTracer {
 public:
  JourneyTracer(const Mesh& mesh, Cycle from) : mesh_(mesh), from_(from) {}

  void on_packet_created(PacketId id, NodeId src, NodeId dst, int length,
                         Cycle now) override {
    if (target_ != 0 || now < from_) return;
    if (mesh_.distance(src, dst) < mesh_.width() + 2) return;
    target_ = id;
    std::printf("tracking packet %llu: (%d,%d) -> (%d,%d), %d flits, "
                "created cycle %llu\n\n",
                static_cast<unsigned long long>(id), mesh_.coord(src).x,
                mesh_.coord(src).y, mesh_.coord(dst).x, mesh_.coord(dst).y,
                length, static_cast<unsigned long long>(now));
  }

  void on_flit_hop(const Flit& f, NodeId at, Cycle now) override {
    if (f.packet != target_) return;
    std::printf("  cycle %5llu  flit %d at (%d,%d)%s\n",
                static_cast<unsigned long long>(now), f.seq,
                mesh_.coord(at).x, mesh_.coord(at).y,
                f.deflections > 0 ? "  [has been deflected]" : "");
  }

  void on_flit_dropped(const Flit& f, NodeId at, Cycle now) override {
    if (f.packet != target_) return;
    std::printf("  cycle %5llu  flit %d DROPPED at (%d,%d) -> NACK\n",
                static_cast<unsigned long long>(now), f.seq,
                mesh_.coord(at).x, mesh_.coord(at).y);
  }

  void on_flit_ejected(const Flit& f, Cycle now) override {
    if (f.packet != target_) return;
    std::printf("  cycle %5llu  flit %d EJECTED (%u hops, %u deflections, "
                "%u retransmits)\n",
                static_cast<unsigned long long>(now), f.seq, f.hops,
                f.deflections, f.retransmits);
  }

  void on_packet_completed(const PacketRecord& rec, Cycle now) override {
    if (rec.id != target_) return;
    std::printf("\npacket complete at cycle %llu: latency %llu cycles, "
                "%u total hops (minimal %d per flit)\n",
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(rec.latency()),
                rec.total_hops, mesh_.distance(rec.src, rec.dst));
    done = true;
  }

  bool done = false;

 private:
  const Mesh& mesh_;
  Cycle from_;
  PacketId target_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  SimConfig cfg;
  cfg.design = RouterDesign::DXbar;
  cfg.offered_load = 0.4;

  const auto err = apply_overrides(
      cfg, std::span<const char* const>(argv + 1,
                                        static_cast<std::size_t>(argc - 1)));
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  std::printf("%s", cfg.describe().c_str());
  std::printf("\n");

  Network net(cfg);
  const Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  SyntheticWorkload workload(cfg, mesh);
  net.set_workload(&workload);
  JourneyTracer tracer(mesh, /*from=*/200);
  net.set_tracer(&tracer);

  for (Cycle t = 0; t < 20000 && !tracer.done; ++t) net.step();
  if (!tracer.done) std::puts("no qualifying packet completed in time");
  return tracer.done ? 0 : 1;
}
