// SPLASH-2 trace tooling: generate a coherence-traffic trace for one of
// the nine applications (or read one from a file) and replay it against
// a router design, reporting makespan, latency and energy.
//
//   ./splash_traces generate <app> <file> [key=value ...]
//   ./splash_traces replay <file> [key=value ...]
//   ./splash_traces run <app> [key=value ...]     # closed-loop, no file
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>

#include "core/dxbar.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: splash_traces generate <app> <file> [key=value ...]\n"
               "       splash_traces replay <file> [key=value ...]\n"
               "       splash_traces run <app> [key=value ...]\n"
               "apps: FFT LU Radiosity Ocean Raytrace Radix Water FMM "
               "Barnes\n");
}

void report(const dxbar::ClosedLoopResult& r) {
  std::printf("finished            : %s\n", r.finished ? "yes" : "NO");
  std::printf("execution time      : %llu cycles\n",
              static_cast<unsigned long long>(r.completion_cycles));
  std::printf("packets delivered   : %llu\n",
              static_cast<unsigned long long>(r.packets));
  std::printf("avg packet latency  : %.1f cycles\n", r.avg_packet_latency);
  std::printf("energy per packet   : %.3f nJ (total %.1f nJ)\n",
              r.energy_per_packet_nj, r.energy_nj);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 1;
  }
  const std::string_view mode = argv[1];

  dxbar::SimConfig cfg;
  cfg.design = dxbar::RouterDesign::DXbar;
  const int fixed_args = mode == "generate" ? 4 : 3;
  if (argc < fixed_args) {
    usage();
    return 1;
  }
  const auto err = dxbar::apply_overrides(
      cfg, std::span<const char* const>(
               argv + fixed_args, static_cast<std::size_t>(argc - fixed_args)));
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  const dxbar::Mesh mesh(cfg.mesh_width, cfg.mesh_height);

  if (mode == "generate") {
    const dxbar::SplashProfile* app = dxbar::find_splash_profile(argv[2]);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown application '%s'\n", argv[2]);
      return 1;
    }
    const auto trace = dxbar::generate_splash_trace(*app, cfg, mesh);
    std::ofstream out(argv[3]);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", argv[3]);
      return 1;
    }
    dxbar::write_trace(out, trace);
    std::printf("wrote %zu packets to %s\n", trace.size(), argv[3]);
    return 0;
  }

  if (mode == "replay") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", argv[2]);
      return 1;
    }
    const auto trace = dxbar::read_trace(in);
    std::printf("replaying %zu packets on %s...\n", trace.size(),
                std::string(to_string(cfg.design)).c_str());
    report(dxbar::run_trace_replay(cfg, trace));
    return 0;
  }

  if (mode == "run") {
    const dxbar::SplashProfile* app = dxbar::find_splash_profile(argv[2]);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown application '%s'\n", argv[2]);
      return 1;
    }
    std::printf("closed-loop %s on %s...\n", argv[2],
                std::string(to_string(cfg.design)).c_str());
    report(dxbar::run_splash(cfg, *app));
    return 0;
  }

  usage();
  return 1;
}
