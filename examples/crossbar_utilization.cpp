// Crossbar-utilization study: drive a DXbar (or unified) network and
// report how traffic splits between the primary (bufferless) and
// secondary (buffered) crossbars — the paper's "only 1/6 of packets are
// buffered after saturation" observation (section III.C).
//
//   ./crossbar_utilization [key=value ...]
#include <cstdio>
#include <span>

#include "core/dxbar.hpp"
#include "router/dxbar_router.hpp"
#include "router/unified_router.hpp"

int main(int argc, char** argv) {
  dxbar::SimConfig cfg;
  cfg.design = dxbar::RouterDesign::DXbar;
  cfg.offered_load = 0.45;
  cfg.measure_cycles = 4000;

  const auto err = dxbar::apply_overrides(
      cfg, std::span<const char* const>(argv + 1,
                                        static_cast<std::size_t>(argc - 1)));
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  dxbar::Network net(cfg);
  const dxbar::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  dxbar::SyntheticWorkload workload(cfg, mesh);
  net.set_workload(&workload);

  const dxbar::Cycle total = cfg.warmup_cycles + cfg.measure_cycles;
  for (dxbar::Cycle t = 0; t < total; ++t) net.step();

  std::uint64_t primary = 0, secondary = 0, diverted = 0;
  std::uint64_t deflections = 0, contention_stalls = 0;
  for (dxbar::NodeId n = 0; n < static_cast<dxbar::NodeId>(cfg.num_nodes());
       ++n) {
    if (cfg.design == dxbar::RouterDesign::DXbar) {
      const auto& r = dynamic_cast<const dxbar::DXbarRouter&>(net.router(n));
      primary += r.primary_traversals();
      secondary += r.secondary_traversals();
      diverted += r.buffered_diversions();
      deflections += r.overflow_deflections();
      contention_stalls += r.contention_stalls();
    } else if (cfg.design == dxbar::RouterDesign::UnifiedXbar) {
      const auto& r = dynamic_cast<const dxbar::UnifiedRouter&>(net.router(n));
      std::printf("node %u: swaps=%llu dual-grant cycles=%llu\n", n,
                  static_cast<unsigned long long>(r.swap_count()),
                  static_cast<unsigned long long>(r.dual_grant_cycles()));
    }
  }

  if (cfg.design == dxbar::RouterDesign::DXbar) {
    const double traversals = static_cast<double>(primary + secondary);
    std::printf("design=%s load=%.2f over %llu cycles\n",
                std::string(to_string(cfg.design)).c_str(), cfg.offered_load,
                static_cast<unsigned long long>(total));
    std::printf("primary traversals   : %llu (%.1f%%)\n",
                static_cast<unsigned long long>(primary),
                100.0 * static_cast<double>(primary) / traversals);
    std::printf("secondary traversals : %llu (%.1f%%)\n",
                static_cast<unsigned long long>(secondary),
                100.0 * static_cast<double>(secondary) / traversals);
    std::printf("buffering rate       : %.3f of router traversals\n",
                static_cast<double>(diverted) /
                    (static_cast<double>(primary) +
                     static_cast<double>(diverted)));
    std::printf("overflow deflections : %llu (escape valve)\n",
                static_cast<unsigned long long>(deflections));
    std::printf("port-allocation misses: %llu (contention)\n",
                static_cast<unsigned long long>(contention_stalls));
  }
  return 0;
}
