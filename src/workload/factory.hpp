// Workload construction from a SimConfig: the one switch point every
// runner (sweeps, replica batches, campaigns) goes through, so a new
// WorkloadKind automatically works under --seeds, --resume, warm-start
// sweeps and snapshot/restore.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "topology/mesh.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {

/// Builds the workload cfg.workload selects.  `mesh` must outlive the
/// returned model.
std::unique_ptr<WorkloadModel> make_workload(const SimConfig& cfg,
                                             const Mesh& mesh);

}  // namespace dxbar
