// Closed-loop request-reply client model (DESIGN.md section 12).
//
// Every node is a client with up to cfg.mlp outstanding requests (an
// MSHR model).  A request travels to a uniformly random server node
// (optionally biased toward the four mesh-center hotspot nodes), which
// "serves" it for cfg.service_delay cycles and then injects a reply
// back to the client; the client's MSHR frees when the reply finishes
// ejecting, which is also when the end-to-end latency sample — request
// issue to reply eject — lands in the fixed-bucket histogram.
//
// Deadlock freedom: requests and replies are distinct message classes
// (Flit::cls).  Replies beat requests in every age-based arbitration
// and claim a reserved downstream-VC partition on the VC router, the
// ejection port always accepts, pending replies wait at the workload
// level holding no network resource, and new requests are bounded by
// the per-node MLP — so the request->reply dependency chain can always
// drain and the classic request-reply protocol deadlock cannot form.
//
// Coherence-shaped mix (cfg.read_fraction < 1): a write transaction
// swaps the packet roles — a long data-carrying request (packet_length
// flits) answered by a short ack (request_length flits) — and evicts a
// victim line as a fire-and-forget MsgClass::Writeback data packet to
// an independent destination.  Writebacks are terminal (nothing waits
// on them; top class priority only shortens dependency chains) and hold
// no MSHR, so the deadlock argument above is unchanged.  The server
// infers each reply's length from the request's length, so reads and
// writes share one transaction path.  read_fraction = 1.0 draws no
// extra RNG samples — pure-read runs are bit-identical to the
// pre-coherence-mix behaviour.
//
// The model is windowed exactly like the open-loop workloads (warmup /
// measure / drain; only requests issued inside the measurement window
// are recorded), so it composes unchanged with warm-start sweeps,
// lockstep replica batches (--seeds), campaigns (--resume), sharding,
// and snapshot/restore.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "traffic/traffic_gen.hpp"
#include "common/latency_histogram.hpp"

namespace dxbar {

class ClosedLoopWorkload final : public WorkloadModel {
 public:
  ClosedLoopWorkload(const SimConfig& cfg, const Mesh& mesh);

  void begin_cycle(Cycle now, Injector& inject) override;
  void on_packet_delivered(const PacketRecord& rec, Cycle now,
                           Injector& inject) override;
  void set_injection_enabled(bool on) override { enabled_ = on; }
  void fill_run_stats(RunStats& out) const override;
  [[nodiscard]] bool quiescent() const override { return pending_.empty(); }

  // ---- snapshot protocol ---------------------------------------------
  [[nodiscard]] bool snapshot_supported() const override { return true; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  // ---- introspection (tests, experiments) ----------------------------
  /// Replies ejected since construction (whole run, not just window).
  [[nodiscard]] std::uint64_t replies_completed() const noexcept {
    return replies_completed_;
  }
  /// Requests issued since construction.
  [[nodiscard]] std::uint64_t requests_issued() const noexcept {
    return requests_issued_;
  }
  /// Requests currently outstanding across all clients.
  [[nodiscard]] std::uint64_t outstanding_total() const noexcept;
  /// Fire-and-forget writeback packets issued since construction.
  [[nodiscard]] std::uint64_t writebacks_issued() const noexcept {
    return writebacks_issued_;
  }
  [[nodiscard]] const LatencyHistogram& histogram() const noexcept {
    return hist_;
  }

 private:
  /// An in-flight transaction: which client issued it and when.
  struct Txn {
    NodeId client = kInvalidNode;
    Cycle issued = 0;
  };
  /// A served request waiting out its service delay at the server.
  struct PendingReply {
    Cycle ready = 0;
    NodeId server = kInvalidNode;
    NodeId client = kInvalidNode;
    Cycle issued = 0;
    int length = 0;  ///< reply flits: data for a read, short ack for a write
  };

  [[nodiscard]] NodeId pick_destination(NodeId src);
  void record_reply(const Txn& txn, Cycle now);

  const Mesh& mesh_;
  int mlp_;
  Cycle service_delay_;
  int request_length_;
  int reply_length_;
  double hotspot_fraction_;
  double read_fraction_;
  Cycle warmup_end_;
  Cycle window_end_;
  std::uint64_t measure_seed_;
  std::vector<NodeId> hotspot_servers_;  ///< the four mesh-center nodes

  Rng rng_;
  bool enabled_ = true;
  std::vector<int> outstanding_;          ///< per client
  std::map<PacketId, Txn> requests_;      ///< request packet -> txn
  std::map<PacketId, Txn> replies_;       ///< reply packet -> txn
  std::deque<PendingReply> pending_;      ///< FIFO: constant service delay
  LatencyHistogram hist_;                 ///< window-gated by issue cycle
  std::uint64_t requests_issued_ = 0;
  std::uint64_t replies_completed_ = 0;
  std::uint64_t writebacks_issued_ = 0;
};

}  // namespace dxbar
