#include "workload/closed_loop.hpp"

#include <cassert>

#include "snapshot/serialize.hpp"

namespace dxbar {

ClosedLoopWorkload::ClosedLoopWorkload(const SimConfig& cfg, const Mesh& mesh)
    : mesh_(mesh),
      mlp_(cfg.mlp),
      service_delay_(cfg.service_delay),
      request_length_(cfg.request_length),
      reply_length_(cfg.packet_length),
      hotspot_fraction_(cfg.hotspot_fraction),
      read_fraction_(cfg.read_fraction),
      warmup_end_(cfg.warmup_cycles),
      window_end_(cfg.warmup_cycles + cfg.measure_cycles),
      measure_seed_(cfg.measure_seed),
      rng_(cfg.seed ^ 0xC105EDULL),
      outstanding_(static_cast<std::size_t>(mesh.num_nodes()), 0) {
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.num_nodes()); ++n) {
    if (is_hotspot(mesh, n)) hotspot_servers_.push_back(n);
  }
}

NodeId ClosedLoopWorkload::pick_destination(NodeId src) {
  if (hotspot_fraction_ > 0.0 && !hotspot_servers_.empty() &&
      rng_.bernoulli(hotspot_fraction_)) {
    const std::size_t i = rng_.below(
        static_cast<std::uint32_t>(hotspot_servers_.size()));
    NodeId dst = hotspot_servers_[i];
    if (dst == src) {
      dst = hotspot_servers_[(i + 1) % hotspot_servers_.size()];
    }
    if (dst != src) return dst;
    // A 1x1 hotspot set containing src: fall through to uniform.
  }
  // Uniform over the other N-1 nodes with a single draw.
  NodeId dst = rng_.below(
      static_cast<std::uint32_t>(mesh_.num_nodes() - 1));
  if (dst >= src) ++dst;
  return dst;
}

void ClosedLoopWorkload::begin_cycle(Cycle now, Injector& inject) {
  // Same reseed point as SyntheticWorkload: replicas differing only in
  // measure_seed share a bit-identical warmup and diverge exactly at
  // the warmup/measurement boundary (see traffic_gen.cpp).
  if (now == warmup_end_ && measure_seed_ != 0) rng_ = Rng(measure_seed_);

  // Replies first: a served request's reply enters the network the
  // cycle its service delay elapses, regardless of the drain gate —
  // outstanding transactions must complete for the network to drain.
  while (!pending_.empty() && pending_.front().ready <= now) {
    const PendingReply p = pending_.front();
    pending_.pop_front();
    const PacketId id = inject.inject_packet(p.server, p.client,
                                             p.length, now,
                                             MsgClass::Reply);
    replies_.emplace(id, Txn{p.client, p.issued});
  }

  // New requests: each client tops up to its MLP limit.
  if (!enabled_) return;
  const NodeId n = static_cast<NodeId>(mesh_.num_nodes());
  for (NodeId src = 0; src < n; ++src) {
    while (outstanding_[src] < mlp_) {
      const NodeId dst = pick_destination(src);
      assert(dst != src);
      // The >= 1.0 short-circuit skips the bernoulli draw entirely, so
      // pure-read runs replay the pre-coherence-mix RNG stream exactly.
      const bool is_read =
          read_fraction_ >= 1.0 || rng_.bernoulli(read_fraction_);
      const int req_len = is_read ? request_length_ : reply_length_;
      const PacketId id = inject.inject_packet(src, dst, req_len,
                                               now, MsgClass::Request);
      requests_.emplace(id, Txn{src, now});
      ++outstanding_[src];
      ++requests_issued_;
      if (!is_read) {
        // The write evicts a victim line: a fire-and-forget data packet
        // to an independent destination, holding no MSHR — terminal, so
        // it cannot extend any dependency cycle.
        const NodeId wb_dst = pick_destination(src);
        inject.inject_packet(src, wb_dst, reply_length_, now,
                             MsgClass::Writeback);
        ++writebacks_issued_;
      }
    }
  }
}

void ClosedLoopWorkload::record_reply(const Txn& txn, Cycle now) {
  ++replies_completed_;
  assert(outstanding_[txn.client] > 0);
  --outstanding_[txn.client];
  if (txn.issued >= warmup_end_ && txn.issued < window_end_) {
    hist_.record(now - txn.issued);
  }
}

void ClosedLoopWorkload::on_packet_delivered(const PacketRecord& rec,
                                             Cycle now, Injector& inject) {
  (void)inject;
  if (static_cast<MsgClass>(rec.cls) == MsgClass::Request) {
    const auto it = requests_.find(rec.id);
    if (it == requests_.end()) return;  // not ours (mixed workloads)
    // Reply length is inferred from the request's shape: a short (read)
    // request is answered with the data line, a long (write) request
    // with a short ack.  When the two lengths coincide the inference is
    // vacuous — both replies are the same size.
    const int reply_len =
        rec.length == request_length_ ? reply_length_ : request_length_;
    pending_.push_back(PendingReply{now + service_delay_, rec.dst,
                                    it->second.client, it->second.issued,
                                    reply_len});
    requests_.erase(it);
  } else if (static_cast<MsgClass>(rec.cls) == MsgClass::Reply) {
    const auto it = replies_.find(rec.id);
    if (it == replies_.end()) return;
    record_reply(it->second, now);
    replies_.erase(it);
  }
}

std::uint64_t ClosedLoopWorkload::outstanding_total() const noexcept {
  std::uint64_t total = 0;
  for (int o : outstanding_) total += static_cast<std::uint64_t>(o);
  return total;
}

void ClosedLoopWorkload::fill_run_stats(RunStats& out) const {
  out.requests_completed = hist_.count();
  out.avg_req_latency = hist_.mean();
  out.req_latency_p50 = hist_.quantile(0.50);
  out.req_latency_p95 = hist_.quantile(0.95);
  out.req_latency_p99 = hist_.quantile(0.99);
  out.req_latency_max = hist_.max();
  out.req_hist = hist_;
}

void ClosedLoopWorkload::save_state(SnapshotWriter& w) const {
  rng_.save(w);
  w.boolean(enabled_);
  w.u64(requests_issued_);
  w.u64(replies_completed_);
  w.u64(outstanding_.size());
  for (int o : outstanding_) w.i32(o);
  // std::map iterates in key order, so the byte stream is deterministic.
  w.u64(requests_.size());
  for (const auto& [id, txn] : requests_) {
    w.u64(id);
    w.u32(txn.client);
    w.u64(txn.issued);
  }
  w.u64(replies_.size());
  for (const auto& [id, txn] : replies_) {
    w.u64(id);
    w.u32(txn.client);
    w.u64(txn.issued);
  }
  w.u64(pending_.size());
  for (const PendingReply& p : pending_) {
    w.u64(p.ready);
    w.u32(p.server);
    w.u32(p.client);
    w.u64(p.issued);
    w.i32(p.length);  // added in snapshot version 6 (coherence mix)
  }
  hist_.save(w);
  w.u64(writebacks_issued_);  // added in snapshot version 6
}

void ClosedLoopWorkload::load_state(SnapshotReader& r) {
  rng_.load(r);
  enabled_ = r.boolean();
  requests_issued_ = r.u64();
  replies_completed_ = r.u64();
  const std::uint64_t nodes = r.count();
  if (nodes != outstanding_.size()) {
    throw SnapshotError("closed-loop workload node count mismatch");
  }
  for (int& o : outstanding_) o = r.i32();
  requests_.clear();
  const std::uint64_t nreq = r.count();
  for (std::uint64_t i = 0; i < nreq; ++i) {
    const PacketId id = r.u64();
    Txn t;
    t.client = r.u32();
    t.issued = r.u64();
    requests_.emplace(id, t);
  }
  replies_.clear();
  const std::uint64_t nrep = r.count();
  for (std::uint64_t i = 0; i < nrep; ++i) {
    const PacketId id = r.u64();
    Txn t;
    t.client = r.u32();
    t.issued = r.u64();
    replies_.emplace(id, t);
  }
  pending_.clear();
  const std::uint64_t npend = r.count();
  for (std::uint64_t i = 0; i < npend; ++i) {
    PendingReply p;
    p.ready = r.u64();
    p.server = r.u32();
    p.client = r.u32();
    p.issued = r.u64();
    // Pre-v6 streams are pure-read: every reply carries the data line.
    p.length = r.version() >= 6 ? r.i32() : reply_length_;
    pending_.push_back(p);
  }
  hist_.load(r);
  if (r.version() >= 6) writebacks_issued_ = r.u64();
}

}  // namespace dxbar
