#include "workload/factory.hpp"

#include "workload/closed_loop.hpp"

namespace dxbar {

std::unique_ptr<WorkloadModel> make_workload(const SimConfig& cfg,
                                             const Mesh& mesh) {
  switch (cfg.workload) {
    case WorkloadKind::ClosedLoop:
      return std::make_unique<ClosedLoopWorkload>(cfg, mesh);
    case WorkloadKind::Synthetic:
      break;
  }
  return std::make_unique<SyntheticWorkload>(cfg, mesh);
}

}  // namespace dxbar
