// Schema-v1 experiment-result documents: the typed form of the JSON
// files `dxbar_bench --json` writes, readable back with a bit-exact
// round-trip guarantee.
//
// `ResultDoc` is used in both directions: the experiment runner builds
// one and serializes it with `to_json` (so the writer and the reader
// share one layout by construction), and the report/diff tools load
// directories of them with `load_result_dir`.  Doubles are serialized
// with %.17g and parsed with strtod, which recovers the exact bit
// pattern; 64-bit integers never round through a double.  Non-finite
// doubles are stored as JSON null and load back as quiet NaN (the only
// lossy case, and it is text-stable: null re-serializes as null).
//
// The reader is strict: a missing or extra key, or a wrong type, is an
// error naming the file, the JSON path and the offending key — schema
// drift fails loudly instead of producing half-filled documents.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar::report {

/// Current (and only) schema version understood by the reader.
inline constexpr int kSchemaVersion = 1;
inline constexpr std::string_view kSchemaName = "dxbar-experiment-result";

struct SeriesDoc {
  std::string label;
  std::vector<double> values;
};

struct TableDoc {
  std::string title;
  std::string x_label;
  std::vector<std::string> x;  ///< row labels, as printed
  std::vector<SeriesDoc> series;
};

/// One raw grid point: the exact SimConfig that ran and its RunStats.
struct PointDoc {
  SimConfig config;
  RunStats stats;
};

struct ResultDoc {
  int schema_version = kSchemaVersion;
  std::string experiment;    ///< registry name, e.g. "fig5"
  std::string title;         ///< human title
  std::string git_describe;  ///< source version the result was built at
  bool quick = false;
  std::string executor;  ///< "warm_sweep" | "campaign" | "custom"
  std::uint64_t warm_groups = 0;
  std::vector<std::string> overrides;
  SimConfig base_config;
  std::vector<TableDoc> tables;
  std::string notes;
  std::vector<PointDoc> points;
};

/// Serializes `doc` to the schema-v1 JSON text (trailing newline
/// included, matching what dxbar_bench writes to disk).
std::string to_json(const ResultDoc& doc);

/// Parses schema-v1 JSON text into `out`.  Returns an empty string on
/// success or an actionable error ("tables[0].series[2]: missing key
/// 'values'").  `where` (typically the file name) prefixes the error.
std::string from_json(std::string_view text, ResultDoc& out,
                      std::string_view where = {});

/// Reads one result file.  Returns an empty string on success.
std::string load_result_file(const std::string& path, ResultDoc& out);

/// Reads every `*.json` result document under `dir` (non-recursive),
/// sorted by experiment name in natural order.  Files that fail to
/// parse are reported in the returned error (one line per file) but do
/// not suppress the files that loaded; `out` always holds the loadable
/// subset.  An empty return means every file loaded.
std::string load_result_dir(const std::string& dir,
                            std::vector<ResultDoc>& out);

}  // namespace dxbar::report
