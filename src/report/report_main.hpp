// dxbar_report CLI logic, exposed as a function so tests can drive the
// exact command surface (including exit codes) in-process.
//
// Exit codes: 0 = success / no shape regressions; 1 = the diff found at
// least one SHAPE-REGRESSION (the CI gate); 2 = usage or I/O error.
#pragma once

#include <span>

namespace dxbar::report {

/// `args` excludes the program name:
///   render <dir> [-o FILE]                 (default FILE: <dir>/report.md)
///   diff <base-dir> <new-dir> [-o FILE] [--tie-margin X] [--sat-tol X]
int report_main(std::span<const char* const> args);

}  // namespace dxbar::report
