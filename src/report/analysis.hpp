// Curve analysis over result tables: the derived metrics the report
// prints and the diff engine guards.
//
// A table is a family of curves (one per series) over a shared x axis.
// Analysis derives, deterministically from the stored points:
//   * metric direction — whether larger values win (throughput) or
//     smaller ones do (latency, energy), inferred from the title/label
//     vocabulary the experiments use;
//   * the winner per x bin (best series at that load, when the margin
//     is meaningful);
//   * the saturation point per series for accepted-vs-offered-load
//     tables, using find_saturation's criterion (first offered load
//     where acceptance < 90% of offered; the last bin when the series
//     never saturates in range — exactly what fig5's summary prints);
//   * a knee location per series (point of maximum distance from the
//     first-to-last chord — where the curve bends hardest).
//
// These are the curve *shapes* BLESS-lineage papers argue about
// (saturation ordering, who wins at which load), so the shape-diff in
// diff.hpp is defined in terms of them.
#pragma once

#include <string>
#include <vector>

#include "report/result_io.hpp"

namespace dxbar::report {

enum class MetricDirection {
  HigherBetter,  ///< throughput-like: larger values win
  LowerBetter,   ///< latency/energy-like: smaller values win
  Unknown,       ///< no winner semantics (e.g. parameter tables)
};

struct SeriesAnalysis {
  std::string label;
  /// Offered load where the series saturates (accepted-load tables
  /// only); NaN when not applicable.
  double saturation = 0.0;
  /// x of the maximum-distance-from-chord point; NaN for degenerate
  /// curves (fewer than 3 points or a flat chord).
  double knee_x = 0.0;
};

struct TableAnalysis {
  MetricDirection direction = MetricDirection::Unknown;
  /// True when every x label parses as a number (curve semantics);
  /// false for categorical axes (designs, patterns, benchmarks).
  bool numeric_x = false;
  std::vector<double> xs;  ///< parsed x values (numeric_x only)
  /// True when this looks like an accepted-vs-offered-load table (the
  /// saturation criterion applies).
  bool is_accepted_vs_offered = false;
  /// Best series index per x bin; -1 where no meaningful winner exists
  /// (unknown direction, or all series within the tie margin).
  std::vector<int> winner_per_bin;
  std::vector<SeriesAnalysis> series;
};

/// Relative margin below which two series are considered tied at a bin
/// (no winner is declared and a flip is not meaningful).
inline constexpr double kTieMargin = 0.02;

/// Label suffix marking a confidence-interval companion series
/// ("<series> ±ci95"), appended by `dxbar_bench --seeds N`.  CI series
/// carry 95% confidence halfwidths, not metric values: analysis skips
/// them for winner/knee/saturation, charts draw them as error bars on
/// the base series instead of as curves, and shape diffs widen their
/// noise tolerance from them rather than comparing them.
inline constexpr std::string_view kCiSuffix = " ±ci95";

/// True when `label` names a CI companion series (ends in kCiSuffix).
[[nodiscard]] bool is_ci_series(std::string_view label);

/// Analyzes one table; purely a function of the stored values.
/// `tie_margin` is the relative margin for winner ties (kTieMargin by
/// default; the diff engine widens it with measured replica noise).
TableAnalysis analyze_table(const TableDoc& table,
                            double tie_margin = kTieMargin);

/// find_saturation's criterion on stored points: the first x where
/// value < ratio * x, else the last x.  `xs` must be nonempty.
double saturation_from_points(const std::vector<double>& xs,
                              const std::vector<double>& values,
                              double ratio = 0.9);

/// True when series a and b are tied at one bin under kTieMargin
/// (relative to the larger magnitude).
bool tied(double a, double b, double margin = kTieMargin);

}  // namespace dxbar::report
