// Markdown report rendering: turns loaded result documents (and diff
// reports) into a single self-contained markdown file with one section
// per experiment, an inline-SVG plot per table, the table data itself,
// and the derived shape metrics (saturation points, winners, knees).
//
// Diff reports render a classification summary up front, then detail
// sections for every non-identical experiment; shape-regressed tables
// get an overlay plot (baseline dashed, fresh solid, one hue per
// series) so the flagged change is visible at a glance.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "report/analysis.hpp"
#include "report/diff.hpp"
#include "report/result_io.hpp"
#include "report/svg.hpp"

namespace dxbar::report {

/// Builds the chart for one table: numeric x axes plot as curves,
/// categorical axes plot across slots with category tick labels; "±ci95"
/// companion series render as error bars on their base series.  Shared
/// by the markdown and HTML renderers.
SvgChart make_table_chart(const TableDoc& t, const TableAnalysis& a,
                          const std::string& title_override = {});

/// Renders the full report for one result directory.  `source_label`
/// names where the documents came from (shown in the header).
std::string render_report(const std::vector<ResultDoc>& docs,
                          std::string_view source_label);

/// Renders a diff report.  `base`/`fresh` provide the table data for
/// overlay plots; labels name the two directories.
std::string render_diff(const DiffReport& report,
                        const std::vector<ResultDoc>& base,
                        const std::vector<ResultDoc>& fresh,
                        std::string_view base_label,
                        std::string_view fresh_label);

}  // namespace dxbar::report
