#include "report/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace dxbar::report {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool contains_any(const std::string& haystack,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (haystack.find(n) != std::string::npos) return true;
  }
  return false;
}

/// Infers winner semantics from the vocabulary the experiment titles
/// use.  Lower-better terms are checked first: "latency vs load" must
/// classify as latency, and no current table mixes both families in a
/// way that would flip the answer.
MetricDirection infer_direction(const TableDoc& t) {
  const std::string text = lower(t.title) + " " + lower(t.x_label);
  if (contains_any(text, {"latency", "energy", "power", "time", "deflection",
                          "retransmit", "hops", "slowdown"})) {
    return MetricDirection::LowerBetter;
  }
  if (contains_any(text, {"accepted", "throughput", "saturation", "speedup",
                          "utilization", "delivered"})) {
    return MetricDirection::HigherBetter;
  }
  return MetricDirection::Unknown;
}

bool parse_all_numeric(const std::vector<std::string>& labels,
                       std::vector<double>& out) {
  out.clear();
  out.reserve(labels.size());
  for (const std::string& s : labels) {
    if (s.empty()) return false;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return false;
    out.push_back(v);
  }
  return !out.empty();
}

/// x of the point furthest from the first-to-last chord (classic knee
/// detection); NaN for curves too short or flat to have a knee.
double knee_x(const std::vector<double>& xs, const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  if (n < 3) return std::nan("");
  const double dx = xs[n - 1] - xs[0];
  const double dy = ys[n - 1] - ys[0];
  const double len = std::hypot(dx, dy);
  if (!(len > 0.0)) return std::nan("");
  double best = 0.0;
  double best_x = std::nan("");
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (std::isnan(ys[i])) continue;
    const double dist =
        std::fabs(dy * (xs[i] - xs[0]) - dx * (ys[i] - ys[0])) / len;
    if (dist > best) {
      best = dist;
      best_x = xs[i];
    }
  }
  return best_x;
}

}  // namespace

bool is_ci_series(std::string_view label) {
  return label.size() >= kCiSuffix.size() &&
         label.substr(label.size() - kCiSuffix.size()) == kCiSuffix;
}

bool tied(double a, double b, double margin) {
  if (std::isnan(a) || std::isnan(b)) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  if (!(scale > 0.0)) return true;
  return std::fabs(a - b) <= margin * scale;
}

double saturation_from_points(const std::vector<double>& xs,
                              const std::vector<double>& values,
                              double ratio) {
  for (std::size_t i = 0; i < xs.size() && i < values.size(); ++i) {
    if (values[i] < ratio * xs[i]) return xs[i];
  }
  return xs.back();
}

TableAnalysis analyze_table(const TableDoc& table, double tie_margin) {
  TableAnalysis a;
  a.direction = infer_direction(table);
  a.numeric_x = parse_all_numeric(table.x, a.xs);

  const std::string text = lower(table.title) + " " + lower(table.x_label);
  a.is_accepted_vs_offered =
      a.numeric_x && a.direction == MetricDirection::HigherBetter &&
      contains_any(text, {"accepted", "offered"});

  // CI companion columns hold confidence halfwidths, not metric values;
  // they never compete for a winner and have no saturation/knee.
  std::vector<bool> is_ci(table.series.size());
  std::size_t metric_series = 0;
  for (std::size_t s = 0; s < table.series.size(); ++s) {
    is_ci[s] = is_ci_series(table.series[s].label);
    if (!is_ci[s]) ++metric_series;
  }

  // Per-bin winner: best series at each x, ties -> -1.
  const std::size_t bins = table.x.size();
  a.winner_per_bin.assign(bins, -1);
  if (a.direction != MetricDirection::Unknown && metric_series >= 2) {
    for (std::size_t i = 0; i < bins; ++i) {
      const auto better = [&](double v, double w) {
        return a.direction == MetricDirection::HigherBetter ? v > w : v < w;
      };
      int best = -1, second = -1;
      for (std::size_t s = 0; s < table.series.size(); ++s) {
        if (is_ci[s]) continue;
        const double v = table.series[s].values[i];
        if (std::isnan(v)) continue;
        if (best < 0 ||
            better(v,
                   table.series[static_cast<std::size_t>(best)].values[i])) {
          second = best;
          best = static_cast<int>(s);
        } else if (second < 0 ||
                   better(v, table.series[static_cast<std::size_t>(second)]
                                 .values[i])) {
          second = static_cast<int>(s);
        }
      }
      // A winner inside the tie margin of the runner-up is no winner.
      if (best >= 0 && second >= 0 &&
          !tied(table.series[static_cast<std::size_t>(best)].values[i],
                table.series[static_cast<std::size_t>(second)].values[i],
                tie_margin)) {
        a.winner_per_bin[i] = best;
      }
    }
  }

  for (std::size_t s = 0; s < table.series.size(); ++s) {
    SeriesAnalysis sa;
    sa.label = table.series[s].label;
    sa.saturation = a.is_accepted_vs_offered && !is_ci[s]
                        ? saturation_from_points(a.xs, table.series[s].values)
                        : std::nan("");
    sa.knee_x = a.numeric_x && !is_ci[s]
                    ? knee_x(a.xs, table.series[s].values)
                    : std::nan("");
    a.series.push_back(std::move(sa));
  }
  return a;
}

}  // namespace dxbar::report
