#include "report/html.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "report/analysis.hpp"
#include "report/render.hpp"

namespace dxbar::report {

namespace {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string cell(double v) {
  if (std::isnan(v)) return "—";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// Shared <head> + styles + the click-to-sort script.  Sorting compares
/// numerically when both cells parse as numbers, lexically otherwise,
/// and a second click on the same header reverses the order.
void page_head(std::string& h, const std::string& title) {
  h += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  h += "<meta charset=\"utf-8\">\n";
  h += "<title>" + html_escape(title) + "</title>\n";
  h +=
      "<style>\n"
      "body{font-family:system-ui,sans-serif;margin:2rem auto;"
      "max-width:64rem;padding:0 1rem;color:#1a1a1a}\n"
      "table{border-collapse:collapse;margin:1rem 0}\n"
      "th,td{border:1px solid #ccc;padding:.25rem .6rem;"
      "text-align:right;font-variant-numeric:tabular-nums}\n"
      "th{background:#f2f2f2;cursor:pointer;user-select:none}\n"
      "th:first-child,td:first-child{text-align:left}\n"
      "th.sorted-asc::after{content:\" \\25B2\"}\n"
      "th.sorted-desc::after{content:\" \\25BC\"}\n"
      "details{margin:1rem 0}\n"
      "pre{background:#f7f7f7;padding:.75rem;overflow-x:auto}\n"
      "a{color:#0b61a4}\n"
      ".meta{color:#555}\n"
      "</style>\n";
  h +=
      "<script>\n"
      "function sortBy(th){\n"
      "  const table=th.closest('table');\n"
      "  const col=Array.prototype.indexOf.call(th.parentNode.children,th);\n"
      "  const asc=!th.classList.contains('sorted-asc');\n"
      "  for(const o of th.parentNode.children)"
      "o.classList.remove('sorted-asc','sorted-desc');\n"
      "  th.classList.add(asc?'sorted-asc':'sorted-desc');\n"
      "  const rows=Array.from(table.tBodies[0].rows);\n"
      "  rows.sort((a,b)=>{\n"
      "    const x=a.cells[col].textContent,y=b.cells[col].textContent;\n"
      "    const nx=parseFloat(x),ny=parseFloat(y);\n"
      "    const c=(!isNaN(nx)&&!isNaN(ny))?nx-ny:x.localeCompare(y);\n"
      "    return asc?c:-c;\n"
      "  });\n"
      "  for(const r of rows)table.tBodies[0].appendChild(r);\n"
      "}\n"
      "document.addEventListener('DOMContentLoaded',()=>{\n"
      "  for(const th of document.querySelectorAll('th'))"
      "th.onclick=()=>sortBy(th);\n"
      "});\n"
      "</script>\n";
  h += "</head>\n<body>\n";
}

void render_html_table(std::string& h, const TableDoc& t) {
  h += "<table>\n<thead><tr><th>" + html_escape(t.x_label) + "</th>";
  for (const SeriesDoc& s : t.series) {
    h += "<th>" + html_escape(s.label) + "</th>";
  }
  h += "</tr></thead>\n<tbody>\n";
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    h += "<tr><td>" + html_escape(t.x[i]) + "</td>";
    for (const SeriesDoc& s : t.series) {
      h += "<td>" + cell(s.values[i]) + "</td>";
    }
    h += "</tr>\n";
  }
  h += "</tbody>\n</table>\n";
}

std::string meta_line(const ResultDoc& doc) {
  std::string m = "executor <code>" + html_escape(doc.executor) + "</code>";
  if (!doc.points.empty()) {
    m += ", " + std::to_string(doc.points.size()) + " points";
  }
  if (doc.warm_groups > 0) {
    m += ", " + std::to_string(doc.warm_groups) + " warm group(s)";
  }
  if (doc.quick) m += ", quick";
  if (!doc.overrides.empty()) {
    m += ", overrides:";
    for (const std::string& o : doc.overrides) {
      m += " <code>" + html_escape(o) + "</code>";
    }
  }
  return m;
}

}  // namespace

std::string render_html_experiment(const ResultDoc& doc) {
  std::string h;
  page_head(h, doc.experiment + " — " + doc.title);
  h += "<p><a href=\"index.html\">&larr; index</a></p>\n";
  h += "<h1>" + html_escape(doc.experiment) + " — " +
       html_escape(doc.title) + "</h1>\n";
  h += "<p class=\"meta\">" + meta_line(doc) + ", git <code>" +
       html_escape(doc.git_describe) + "</code></p>\n";
  for (const TableDoc& t : doc.tables) {
    const TableAnalysis a = analyze_table(t);
    h += "<h2>" + html_escape(t.title) + "</h2>\n";
    if (!t.series.empty() && !t.x.empty()) {
      h += make_table_chart(t, a).render() + "\n";
      render_html_table(h, t);
    }
  }
  if (!doc.notes.empty()) {
    h += "<details><summary>notes</summary>\n<pre>" +
         html_escape(doc.notes) + "</pre>\n</details>\n";
  }
  h += "</body>\n</html>\n";
  return h;
}

std::string render_html_index(const std::vector<ResultDoc>& docs,
                              std::string_view source_label) {
  std::string h;
  page_head(h, "dxbar experiment report");
  h += "<h1>dxbar experiment report</h1>\n";
  h += "<p class=\"meta\">Source: <code>" + html_escape(source_label) +
       "</code> — " + std::to_string(docs.size()) + " experiment(s)";
  if (!docs.empty()) {
    h += ", git <code>" + html_escape(docs.front().git_describe) +
         "</code>, schema v" + std::to_string(docs.front().schema_version);
  }
  h += "</p>\n";
  h += "<table>\n<thead><tr><th>experiment</th><th>title</th>"
       "<th>executor</th><th>points</th><th>tables</th></tr></thead>\n"
       "<tbody>\n";
  for (const ResultDoc& doc : docs) {
    h += "<tr><td><a href=\"" + html_escape(doc.experiment) + ".html\">" +
         html_escape(doc.experiment) + "</a></td><td>" +
         html_escape(doc.title) + "</td><td>" + html_escape(doc.executor) +
         "</td><td>" + std::to_string(doc.points.size()) + "</td><td>" +
         std::to_string(doc.tables.size()) + "</td></tr>\n";
  }
  h += "</tbody>\n</table>\n";
  h += "</body>\n</html>\n";
  return h;
}

std::string write_html_report(const std::vector<ResultDoc>& docs,
                              const std::string& out_dir,
                              std::string_view source_label) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return out_dir + ": " + ec.message();

  auto write = [](const std::string& path,
                  const std::string& content) -> std::string {
    std::ofstream out(path);
    if (!out) return path + ": cannot open for writing";
    out << content;
    if (!out.flush()) return path + ": write failed";
    return {};
  };

  if (std::string err = write(out_dir + "/index.html",
                              render_html_index(docs, source_label));
      !err.empty()) {
    return err;
  }
  for (const ResultDoc& doc : docs) {
    if (std::string err = write(out_dir + "/" + doc.experiment + ".html",
                                render_html_experiment(doc));
        !err.empty()) {
      return err;
    }
  }
  return {};
}

}  // namespace dxbar::report
