#include "report/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dxbar::report {

namespace {

/// Okabe-Ito colorblind-safe palette.
constexpr const char* kPalette[] = {
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#999999",
};
constexpr int kPaletteSize = 8;

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Short tick label: %g keeps 0.1 as "0.1" and 4000 as "4000".
std::string tick_label(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Largest "nice" step (1/2/5 * 10^k) giving at most `max_ticks`
/// intervals over [lo, hi].
double nice_step(double lo, double hi, int max_ticks) {
  const double span = hi - lo;
  if (!(span > 0.0)) return 1.0;
  double step = std::pow(10.0, std::floor(std::log10(span / max_ticks)));
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (span / (step * mult) <= max_ticks) return step * mult;
  }
  return step * 10.0;
}

}  // namespace

void SvgChart::add_series(SvgSeries s) {
  if (s.color < 0) s.color = static_cast<int>(series_.size());
  series_.push_back(std::move(s));
}

std::string SvgChart::render(int width, int height) const {
  const double legend_w = 150.0;
  const double ml = 58.0, mr = 14.0 + legend_w, mt = 30.0, mb = 48.0;
  const double pw = width - ml - mr;   // plot width
  const double ph = height - mt - mb;  // plot height

  // Data bounds.
  double xmin = 0.0, xmax = 1.0, ymin = 0.0, ymax = 1.0;
  bool have = false;
  for (const SvgSeries& s : series_) {
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      if (std::isnan(s.xs[i]) || std::isnan(s.ys[i])) continue;
      // Error bars extend the data range; keep them inside the plot.
      double e = i < s.err.size() && !std::isnan(s.err[i]) ? s.err[i] : 0.0;
      if (e < 0.0) e = 0.0;
      if (!have) {
        xmin = xmax = s.xs[i];
        ymin = s.ys[i] - e;
        ymax = s.ys[i] + e;
        have = true;
      } else {
        xmin = std::min(xmin, s.xs[i]);
        xmax = std::max(xmax, s.xs[i]);
        ymin = std::min(ymin, s.ys[i] - e);
        ymax = std::max(ymax, s.ys[i] + e);
      }
    }
  }
  // Anchor non-negative data at zero (throughput/latency/energy all
  // read best against a zero baseline) and pad degenerate ranges.
  if (ymin > 0.0) ymin = 0.0;
  if (!(ymax > ymin)) ymax = ymin + 1.0;
  if (!(xmax > xmin)) xmax = xmin + 1.0;

  const auto px = [&](double x) {
    return ml + (x - xmin) / (xmax - xmin) * pw;
  };
  const auto py = [&](double y) {
    return mt + ph - (y - ymin) / (ymax - ymin) * ph;
  };

  std::string svg;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
                "height=\"%d\" viewBox=\"0 0 %d %d\" "
                "font-family=\"sans-serif\" font-size=\"11\">\n",
                width, height, width, height);
  svg += buf;
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Title.
  svg += "<text x=\"" + num(ml + pw / 2) +
         "\" y=\"16\" text-anchor=\"middle\" font-size=\"13\" "
         "fill=\"#1a1a1a\">" +
         xml_escape(title_) + "</text>\n";

  // Y grid + ticks.
  const double ystep = nice_step(ymin, ymax, 6);
  for (double y = std::ceil(ymin / ystep) * ystep; y <= ymax + 1e-12;
       y += ystep) {
    const double yy = py(y);
    svg += "<line x1=\"" + num(ml) + "\" y1=\"" + num(yy) + "\" x2=\"" +
           num(ml + pw) + "\" y2=\"" + num(yy) +
           "\" stroke=\"#e5e5e5\" stroke-width=\"1\"/>\n";
    svg += "<text x=\"" + num(ml - 6) + "\" y=\"" + num(yy + 3.5) +
           "\" text-anchor=\"end\" fill=\"#555\">" + tick_label(y) +
           "</text>\n";
  }

  // X ticks: category labels or nice numeric ticks.
  if (!categories_.empty()) {
    const bool rotate =
        std::any_of(categories_.begin(), categories_.end(),
                    [](const std::string& c) { return c.size() > 5; });
    for (std::size_t i = 0; i < categories_.size(); ++i) {
      const double xx = px(static_cast<double>(i));
      svg += "<line x1=\"" + num(xx) + "\" y1=\"" + num(mt + ph) +
             "\" x2=\"" + num(xx) + "\" y2=\"" + num(mt + ph + 4) +
             "\" stroke=\"#555\"/>\n";
      if (rotate) {
        svg += "<text x=\"" + num(xx) + "\" y=\"" + num(mt + ph + 14) +
               "\" text-anchor=\"end\" fill=\"#555\" transform=\"rotate(-30 " +
               num(xx) + " " + num(mt + ph + 14) + ")\">" +
               xml_escape(categories_[i]) + "</text>\n";
      } else {
        svg += "<text x=\"" + num(xx) + "\" y=\"" + num(mt + ph + 16) +
               "\" text-anchor=\"middle\" fill=\"#555\">" +
               xml_escape(categories_[i]) + "</text>\n";
      }
    }
  } else {
    const double xstep = nice_step(xmin, xmax, 8);
    for (double x = std::ceil(xmin / xstep) * xstep; x <= xmax + 1e-12;
         x += xstep) {
      const double xx = px(x);
      svg += "<line x1=\"" + num(xx) + "\" y1=\"" + num(mt + ph) +
             "\" x2=\"" + num(xx) + "\" y2=\"" + num(mt + ph + 4) +
             "\" stroke=\"#555\"/>\n";
      svg += "<text x=\"" + num(xx) + "\" y=\"" + num(mt + ph + 16) +
             "\" text-anchor=\"middle\" fill=\"#555\">" + tick_label(x) +
             "</text>\n";
    }
  }

  // Axes.
  svg += "<line x1=\"" + num(ml) + "\" y1=\"" + num(mt) + "\" x2=\"" +
         num(ml) + "\" y2=\"" + num(mt + ph) +
         "\" stroke=\"#333\" stroke-width=\"1\"/>\n";
  svg += "<line x1=\"" + num(ml) + "\" y1=\"" + num(mt + ph) + "\" x2=\"" +
         num(ml + pw) + "\" y2=\"" + num(mt + ph) +
         "\" stroke=\"#333\" stroke-width=\"1\"/>\n";

  // Axis labels.
  svg += "<text x=\"" + num(ml + pw / 2) + "\" y=\"" +
         num(height - 6.0) + "\" text-anchor=\"middle\" fill=\"#333\">" +
         xml_escape(x_label_) + "</text>\n";
  if (!y_label_.empty()) {
    svg += "<text x=\"14\" y=\"" + num(mt + ph / 2) +
           "\" text-anchor=\"middle\" fill=\"#333\" transform=\"rotate(-90 "
           "14 " +
           num(mt + ph / 2) + ")\">" + xml_escape(y_label_) + "</text>\n";
  }

  // Series.
  for (const SvgSeries& s : series_) {
    const char* color = kPalette[s.color % kPaletteSize];
    const char* dash = s.dashed ? " stroke-dasharray=\"6 4\"" : "";
    std::string points;
    bool open = false;
    auto flush = [&]() {
      if (open && !points.empty()) {
        svg += "<polyline fill=\"none\" stroke=\"";
        svg += color;
        svg += "\" stroke-width=\"2\"";
        svg += dash;
        svg += " points=\"" + points + "\"/>\n";
      }
      points.clear();
      open = false;
    };
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      if (std::isnan(s.xs[i]) || std::isnan(s.ys[i])) {
        flush();
        continue;
      }
      if (!points.empty()) points += ' ';
      points += num(px(s.xs[i])) + "," + num(py(s.ys[i]));
      open = true;
      if (i < s.err.size() && !std::isnan(s.err[i]) && s.err[i] > 0.0) {
        const double xx = px(s.xs[i]);
        const double y_lo = py(s.ys[i] - s.err[i]);
        const double y_hi = py(s.ys[i] + s.err[i]);
        svg += "<line x1=\"" + num(xx) + "\" y1=\"" + num(y_lo) +
               "\" x2=\"" + num(xx) + "\" y2=\"" + num(y_hi) +
               "\" stroke=\"";
        svg += color;
        svg += "\" stroke-width=\"1\"/>\n";
        for (double yy : {y_lo, y_hi}) {
          svg += "<line x1=\"" + num(xx - 3) + "\" y1=\"" + num(yy) +
                 "\" x2=\"" + num(xx + 3) + "\" y2=\"" + num(yy) +
                 "\" stroke=\"";
          svg += color;
          svg += "\" stroke-width=\"1\"/>\n";
        }
      }
      svg += "<circle cx=\"" + num(px(s.xs[i])) + "\" cy=\"" +
             num(py(s.ys[i])) + "\" r=\"2.5\" fill=\"";
      svg += color;
      svg += "\"/>\n";
    }
    flush();
  }

  // Legend, right of the plot.
  const double lx = ml + pw + 16.0;
  double ly = mt + 4.0;
  for (const SvgSeries& s : series_) {
    const char* color = kPalette[s.color % kPaletteSize];
    const char* dash = s.dashed ? " stroke-dasharray=\"6 4\"" : "";
    svg += "<line x1=\"" + num(lx) + "\" y1=\"" + num(ly) + "\" x2=\"" +
           num(lx + 22) + "\" y2=\"" + num(ly) + "\" stroke=\"";
    svg += color;
    svg += "\" stroke-width=\"2\"";
    svg += dash;
    svg += "/>\n";
    svg += "<text x=\"" + num(lx + 28) + "\" y=\"" + num(ly + 3.5) +
           "\" fill=\"#333\">" + xml_escape(s.label) + "</text>\n";
    ly += 16.0;
  }

  svg += "</svg>";
  return svg;
}

}  // namespace dxbar::report
