#include "report/report_main.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "report/diff.hpp"
#include "report/html.hpp"
#include "report/render.hpp"
#include "report/result_io.hpp"

namespace dxbar::report {

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: dxbar_report render <dir> [-o FILE] [--html]\n"
      "       dxbar_report diff <base-dir> <new-dir> [-o FILE]\n"
      "                    [--tie-margin X] [--sat-tol X]\n"
      "\n"
      "render  read every <dir>/*.json result (schema v1, as written by\n"
      "        `dxbar_bench --json`) and write a markdown report with an\n"
      "        inline-SVG plot, the table data and derived shape metrics\n"
      "        (saturation points, winners, knees) per experiment.\n"
      "        Default output: <dir>/report.md\n"
      "        --html writes a static HTML report instead: an index page\n"
      "        plus one page per experiment with SVG plots and sortable\n"
      "        tables.  -o names the output DIRECTORY (default\n"
      "        <dir>/html).\n"
      "diff    compare two result directories and classify every\n"
      "        experiment as identical / numeric-drift / SHAPE-REGRESSION\n"
      "        (winner flip, saturation shift, curve-crossing change).\n"
      "        Exits 1 when any experiment shape-regressed, so CI can\n"
      "        gate on it.  -o writes a markdown diff report with\n"
      "        base-vs-new overlay plots for regressed tables.\n"
      "\n"
      "  --tie-margin X   relative margin treating two series as tied\n"
      "                   (default %.2f)\n"
      "  --sat-tol X      saturation shift tolerance in offered-load\n"
      "                   units (default: 1.5 x-bins of the table)\n",
      kTieMargin);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "dxbar_report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << content;
  if (!out.flush()) {
    std::fprintf(stderr, "dxbar_report: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

int run_render(std::span<const char* const> args) {
  std::string dir, out_path;
  bool html = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (std::strcmp(args[i], "-o") == 0) {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "dxbar_report: -o requires a value\n");
        return 2;
      }
      out_path = args[++i];
    } else if (std::strcmp(args[i], "--html") == 0) {
      html = true;
    } else if (dir.empty()) {
      dir = args[i];
    } else {
      std::fprintf(stderr, "dxbar_report: unexpected argument '%s'\n",
                   args[i]);
      return 2;
    }
  }
  if (dir.empty()) {
    print_usage(stderr);
    return 2;
  }
  if (out_path.empty()) out_path = html ? dir + "/html" : dir + "/report.md";

  std::vector<ResultDoc> docs;
  const std::string errors = load_result_dir(dir, docs);
  if (!errors.empty()) {
    std::fprintf(stderr, "dxbar_report: %s\n", errors.c_str());
  }
  if (docs.empty()) {
    std::fprintf(stderr, "dxbar_report: no loadable result documents in %s\n",
                 dir.c_str());
    return 2;
  }
  if (html) {
    if (const std::string err = write_html_report(docs, out_path, dir);
        !err.empty()) {
      std::fprintf(stderr, "dxbar_report: %s\n", err.c_str());
      return 2;
    }
    std::printf("dxbar_report: wrote %s/index.html (+%zu page(s))\n",
                out_path.c_str(), docs.size());
  } else {
    if (!write_file(out_path, render_report(docs, dir))) return 2;
    std::printf("dxbar_report: wrote %s (%zu experiment(s))\n",
                out_path.c_str(), docs.size());
  }
  return errors.empty() ? 0 : 2;
}

int run_diff(std::span<const char* const> args) {
  std::string base_dir, fresh_dir, out_path;
  DiffOptions opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (std::strcmp(args[i], "-o") == 0) {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "dxbar_report: -o requires a value\n");
        return 2;
      }
      out_path = args[++i];
    } else if (std::strcmp(args[i], "--tie-margin") == 0 ||
               std::strcmp(args[i], "--sat-tol") == 0) {
      const char* flag = args[i];
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "dxbar_report: %s requires a value\n", flag);
        return 2;
      }
      double v = 0.0;
      if (!parse_double(args[++i], v)) {
        std::fprintf(stderr, "dxbar_report: bad %s value '%s'\n", flag,
                     args[i]);
        return 2;
      }
      if (std::strcmp(flag, "--tie-margin") == 0) {
        opt.tie_margin = v;
      } else {
        opt.saturation_tolerance = v;
      }
    } else if (base_dir.empty()) {
      base_dir = args[i];
    } else if (fresh_dir.empty()) {
      fresh_dir = args[i];
    } else {
      std::fprintf(stderr, "dxbar_report: unexpected argument '%s'\n",
                   args[i]);
      return 2;
    }
  }
  if (base_dir.empty() || fresh_dir.empty()) {
    print_usage(stderr);
    return 2;
  }

  std::vector<ResultDoc> base, fresh;
  bool load_failed = false;
  if (const std::string err = load_result_dir(base_dir, base); !err.empty()) {
    std::fprintf(stderr, "dxbar_report: %s\n", err.c_str());
    load_failed = true;
  }
  if (const std::string err = load_result_dir(fresh_dir, fresh);
      !err.empty()) {
    std::fprintf(stderr, "dxbar_report: %s\n", err.c_str());
    load_failed = true;
  }
  if (base.empty() || fresh.empty()) {
    std::fprintf(stderr,
                 "dxbar_report: no loadable result documents in %s\n",
                 base.empty() ? base_dir.c_str() : fresh_dir.c_str());
    return 2;
  }

  const DiffReport report = diff_results(base, fresh, opt);
  for (const ExperimentDiff& e : report.experiments) {
    std::string reasons;
    for (const TableDiff& t : e.tables) {
      for (const std::string& r : t.reasons) {
        reasons += "\n    " + r;
      }
    }
    std::printf("%-28s %s%s\n", e.name.c_str(),
                std::string(to_string(e.cls)).c_str(), reasons.c_str());
  }
  std::printf("dxbar_report: %zu shape regression(s), %zu drifted, "
              "%zu identical, %zu added, %zu removed\n",
              report.count(DiffClass::ShapeRegression),
              report.count(DiffClass::NumericDrift),
              report.count(DiffClass::Identical),
              report.count(DiffClass::Added),
              report.count(DiffClass::Removed));

  if (!out_path.empty() &&
      !write_file(out_path, render_diff(report, base, fresh, base_dir,
                                        fresh_dir))) {
    return 2;
  }
  if (load_failed) return 2;
  return report.has_shape_regression() ? 1 : 0;
}

}  // namespace

int report_main(std::span<const char* const> args) {
  if (args.empty()) {
    print_usage(stderr);
    return 2;
  }
  const std::string_view cmd = args[0];
  const auto rest = args.subspan(1);
  if (cmd == "render") return run_render(rest);
  if (cmd == "diff") return run_diff(rest);
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_usage(stdout);
    return 0;
  }
  std::fprintf(stderr, "dxbar_report: unknown command '%s'\n\n",
               std::string(cmd).c_str());
  print_usage(stderr);
  return 2;
}

}  // namespace dxbar::report
