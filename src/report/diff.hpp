// Cross-commit result diffing: compares two directories of schema-v1
// result documents and classifies each experiment.
//
//   identical        — the documents are byte-equivalent (ignoring the
//                      git_describe stamp, which legitimately differs
//                      across commits);
//   numeric-drift    — values moved but every guarded curve *shape* is
//                      intact (same winners, same saturation bins, same
//                      crossing structure);
//   SHAPE-REGRESSION — a shape signal changed: a decisive per-bin
//                      winner flipped, a saturation point shifted
//                      beyond tolerance, a pair of curves changed how
//                      often they cross, or the table structure itself
//                      changed (different x axis / series).
//
// Shape signals are evaluated on the rendered tables (what the paper
// plots), with the tie margin from analysis.hpp filtering noise-level
// flips: a "winner change" between two series that were within 2% of
// each other in both runs is drift, not a regression.  Tables produced
// by `dxbar_bench --seeds N` carry ±ci95 companion columns; the diff
// widens the tie margin to twice the largest relative CI halfwidth
// when that exceeds the static default, so the tolerance tracks the
// noise the replication actually measured.  The CLI exits
// nonzero iff any experiment is a SHAPE-REGRESSION, so CI can gate on
// reproduction claims ("DXbar saturates later than Flit-Bless") rather
// than on exact numbers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "report/analysis.hpp"
#include "report/result_io.hpp"

namespace dxbar::report {

enum class DiffClass {
  Identical,
  NumericDrift,
  ShapeRegression,
  Added,    ///< experiment only in the new directory
  Removed,  ///< experiment only in the base directory
};

std::string_view to_string(DiffClass c);

struct TableDiff {
  std::string title;
  DiffClass cls = DiffClass::Identical;
  /// Human-readable shape findings ("winner at offered=0.5 flipped:
  /// DXbar DOR -> Flit-Bless"); nonempty iff cls == ShapeRegression.
  std::vector<std::string> reasons;
  /// Largest relative per-cell change across the table's series.
  double max_rel_delta = 0.0;
};

struct ExperimentDiff {
  std::string name;
  DiffClass cls = DiffClass::Identical;
  std::vector<TableDiff> tables;  ///< empty for Added/Removed
};

struct DiffOptions {
  /// Relative margin under which a winner flip is noise (see
  /// analysis.hpp kTieMargin).
  double tie_margin = kTieMargin;
  /// Saturation shift tolerance in x units; negative (default) means
  /// "one x-bin step of the table" — a one-bin wobble is drift, two
  /// bins is a regression.
  double saturation_tolerance = -1.0;
};

struct DiffReport {
  std::vector<ExperimentDiff> experiments;

  [[nodiscard]] std::size_t count(DiffClass c) const {
    std::size_t n = 0;
    for (const ExperimentDiff& e : experiments) {
      if (e.cls == c) ++n;
    }
    return n;
  }
  [[nodiscard]] bool has_shape_regression() const {
    return count(DiffClass::ShapeRegression) > 0;
  }
};

/// Diffs two loaded result sets (keyed by experiment name; order does
/// not matter).  Purely functional: no I/O.
DiffReport diff_results(const std::vector<ResultDoc>& base,
                        const std::vector<ResultDoc>& fresh,
                        const DiffOptions& opt = {});

/// Diffs one pair of tables (exposed for the renderer and tests).
TableDiff diff_tables(const TableDoc& base, const TableDoc& fresh,
                      const DiffOptions& opt = {});

}  // namespace dxbar::report
