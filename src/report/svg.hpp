// Minimal deterministic SVG line charts for the markdown reports.  No
// external dependency and no randomness: the same data always renders
// to the same bytes, so reports diff cleanly under version control.
//
// Colors are the Okabe-Ito colorblind-safe palette (8 entries — one per
// router design, conveniently).  Diff overlays draw the baseline
// dashed and the fresh run solid in the same hue.
#pragma once

#include <string>
#include <vector>

namespace dxbar::report {

struct SvgSeries {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;  ///< NaN breaks the polyline
  /// Optional symmetric error halfwidths (e.g. ±ci95 from --seeds
  /// replication): when nonempty, point i gets a vertical error bar
  /// ys[i] ± err[i].  Zero/NaN entries draw no bar.
  std::vector<double> err;
  bool dashed = false;     ///< baseline style in diff overlays
  /// Palette slot; series added with add_series() get consecutive
  /// slots, but overlays may pin two series to one hue.
  int color = -1;
};

class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void add_series(SvgSeries s);

  /// Switches the x axis to category slots: series xs are slot indices
  /// (0..labels-1) and ticks show the labels instead of numbers.
  void set_categories(std::vector<std::string> labels) {
    categories_ = std::move(labels);
  }

  /// Renders the complete <svg> element.
  [[nodiscard]] std::string render(int width = 760, int height = 380) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<SvgSeries> series_;
  std::vector<std::string> categories_;
};

}  // namespace dxbar::report
