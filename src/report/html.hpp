// Static HTML report rendering: one self-contained page per experiment
// (inline-SVG plot + sortable data table per TableDoc) plus an index
// page linking them.  No external assets and no randomness — the same
// documents always render to the same bytes, like the markdown reports.
// Tables sort client-side with a ~20-line inline script; everything
// else is static markup.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "report/result_io.hpp"

namespace dxbar::report {

/// Renders the index page: experiment list with titles and run
/// metadata, each row linking to `<experiment>.html`.
std::string render_html_index(const std::vector<ResultDoc>& docs,
                              std::string_view source_label);

/// Renders one experiment page.
std::string render_html_experiment(const ResultDoc& doc);

/// Writes `index.html` plus one `<experiment>.html` per document into
/// `out_dir` (created if missing).  Returns an empty string on success
/// or the first error.
std::string write_html_report(const std::vector<ResultDoc>& docs,
                              const std::string& out_dir,
                              std::string_view source_label);

}  // namespace dxbar::report
