#include "report/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/text.hpp"

namespace dxbar::report {

std::string_view to_string(DiffClass c) {
  switch (c) {
    case DiffClass::Identical: return "identical";
    case DiffClass::NumericDrift: return "numeric-drift";
    case DiffClass::ShapeRegression: return "SHAPE-REGRESSION";
    case DiffClass::Added: return "added";
    case DiffClass::Removed: return "removed";
  }
  return "?";
}

namespace {

std::string fmt(const char* f, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// Severity order for aggregating table classes into an experiment
/// class (Added/Removed never come out of diff_tables).
int severity(DiffClass c) {
  switch (c) {
    case DiffClass::Identical: return 0;
    case DiffClass::NumericDrift: return 1;
    case DiffClass::ShapeRegression: return 2;
    default: return 2;
  }
}

bool bits_equal(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b && std::signbit(a) == std::signbit(b);
}

/// Representative x step of a numeric axis (for the default saturation
/// tolerance): the span divided by the bin count.
double typical_step(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return (xs.back() - xs.front()) / static_cast<double>(xs.size() - 1);
}

/// Counts sign alternations of (a - b) over the bins where the two
/// series are decisively apart (outside the tie margin); near-ties are
/// skipped so a noise-level wobble around zero is not a "crossing".
int crossing_count(const SeriesDoc& a, const SeriesDoc& b,
                   double tie_margin) {
  int count = 0;
  int last_sign = 0;
  for (std::size_t i = 0; i < a.values.size() && i < b.values.size(); ++i) {
    const double va = a.values[i], vb = b.values[i];
    if (std::isnan(va) || std::isnan(vb)) continue;
    if (tied(va, vb, tie_margin)) continue;
    const int sign = va > vb ? 1 : -1;
    if (last_sign != 0 && sign != last_sign) ++count;
    last_sign = sign;
  }
  return count;
}

/// Largest relative 95% confidence halfwidth recorded in a table's
/// ±ci95 companion columns — the measured replica noise floor of the
/// table.  Zero when the table carries no CI columns (single-seed run).
double relative_ci_noise(const TableDoc& t) {
  double noise = 0.0;
  for (const SeriesDoc& s : t.series) {
    if (!is_ci_series(s.label)) continue;
    const std::string base_label =
        s.label.substr(0, s.label.size() - kCiSuffix.size());
    for (const SeriesDoc& b : t.series) {
      if (b.label != base_label) continue;
      for (std::size_t i = 0; i < b.values.size() && i < s.values.size();
           ++i) {
        const double mean = std::fabs(b.values[i]);
        const double ci = s.values[i];
        if (std::isnan(mean) || std::isnan(ci) || !(mean > 0.0)) continue;
        noise = std::max(noise, ci / mean);
      }
      break;
    }
  }
  return noise;
}

bool same_structure(const TableDoc& base, const TableDoc& fresh,
                    std::vector<std::string>& reasons) {
  if (base.x_label != fresh.x_label) {
    reasons.push_back("x-axis label changed: '" + base.x_label + "' -> '" +
                      fresh.x_label + "'");
  }
  if (base.x != fresh.x) {
    reasons.push_back("x axis changed (" + std::to_string(base.x.size()) +
                      " -> " + std::to_string(fresh.x.size()) + " bins)");
  }
  std::vector<std::string> bl, fl;
  for (const SeriesDoc& s : base.series) bl.push_back(s.label);
  for (const SeriesDoc& s : fresh.series) fl.push_back(s.label);
  if (bl != fl) {
    reasons.push_back("series set changed (" + std::to_string(bl.size()) +
                      " -> " + std::to_string(fl.size()) + " series)");
  }
  return reasons.empty();
}

}  // namespace

TableDiff diff_tables(const TableDoc& base, const TableDoc& fresh,
                      const DiffOptions& opt) {
  TableDiff d;
  d.title = fresh.title;

  // Structural change is a shape regression by definition: the curves
  // being compared are no longer the same curves.
  if (!same_structure(base, fresh, d.reasons)) {
    d.cls = DiffClass::ShapeRegression;
    return d;
  }

  bool any_change = false;
  for (std::size_t s = 0; s < base.series.size(); ++s) {
    const bool ci_column = is_ci_series(base.series[s].label);
    for (std::size_t i = 0; i < base.x.size(); ++i) {
      const double b = base.series[s].values[i];
      const double f = fresh.series[s].values[i];
      if (!bits_equal(b, f)) any_change = true;
      if (ci_column) continue;  // halfwidths are not metric deltas
      if (std::isnan(b) || std::isnan(f)) continue;
      const double scale = std::max(std::fabs(b), std::fabs(f));
      if (scale > 0.0) {
        d.max_rel_delta = std::max(d.max_rel_delta, std::fabs(f - b) / scale);
      }
    }
  }
  if (!any_change) {
    d.cls = DiffClass::Identical;
    return d;
  }

  // Replicated tables carry their own noise floor: widen the tie
  // margin to two relative CI halfwidths when that exceeds the static
  // default, so a "winner flip" inside the measured seed-to-seed noise
  // reads as drift, not a shape regression.
  const double noise =
      std::max(relative_ci_noise(base), relative_ci_noise(fresh));
  const double tie_margin = std::max(opt.tie_margin, 2.0 * noise);

  const TableAnalysis ab = analyze_table(base, tie_margin);
  const TableAnalysis af = analyze_table(fresh, tie_margin);

  // Winner flips: a decisive winner in both runs that changed identity.
  for (std::size_t i = 0; i < ab.winner_per_bin.size(); ++i) {
    const int wb = ab.winner_per_bin[i];
    const int wf = af.winner_per_bin[i];
    if (wb >= 0 && wf >= 0 && wb != wf) {
      d.reasons.push_back(
          "winner at " + base.x_label + "=" + base.x[i] + " flipped: '" +
          base.series[static_cast<std::size_t>(wb)].label + "' -> '" +
          fresh.series[static_cast<std::size_t>(wf)].label + "'");
    }
  }

  // Saturation shifts beyond tolerance (accepted-vs-offered tables).
  if (ab.is_accepted_vs_offered && af.is_accepted_vs_offered) {
    double tol = opt.saturation_tolerance;
    if (tol < 0.0) tol = typical_step(ab.xs) * 1.5;
    for (std::size_t s = 0; s < ab.series.size(); ++s) {
      const double sb = ab.series[s].saturation;
      const double sf = af.series[s].saturation;
      if (std::isnan(sb) || std::isnan(sf)) continue;
      if (std::fabs(sf - sb) > tol) {
        d.reasons.push_back("saturation of '" + base.series[s].label +
                            "' shifted: " + fmt("%.3g", sb) + " -> " +
                            fmt("%.3g", sf));
      }
    }
  }

  // Crossing-structure changes per series pair (CI columns carry no
  // crossing semantics).
  if (ab.direction != MetricDirection::Unknown) {
    for (std::size_t i = 0; i < base.series.size(); ++i) {
      if (is_ci_series(base.series[i].label)) continue;
      for (std::size_t j = i + 1; j < base.series.size(); ++j) {
        if (is_ci_series(base.series[j].label)) continue;
        const int cb = crossing_count(base.series[i], base.series[j],
                                      tie_margin);
        const int cf = crossing_count(fresh.series[i], fresh.series[j],
                                      tie_margin);
        if (cb != cf) {
          d.reasons.push_back(
              "'" + base.series[i].label + "' vs '" + base.series[j].label +
              "' crossing count changed: " + std::to_string(cb) + " -> " +
              std::to_string(cf));
        }
      }
    }
  }

  d.cls = d.reasons.empty() ? DiffClass::NumericDrift
                            : DiffClass::ShapeRegression;
  return d;
}

DiffReport diff_results(const std::vector<ResultDoc>& base,
                        const std::vector<ResultDoc>& fresh,
                        const DiffOptions& opt) {
  DiffReport report;

  auto find = [](const std::vector<ResultDoc>& docs,
                 const std::string& name) -> const ResultDoc* {
    for (const ResultDoc& d : docs) {
      if (d.experiment == name) return &d;
    }
    return nullptr;
  };

  // Union of experiment names, natural-ordered.
  std::vector<std::string> names;
  for (const ResultDoc& d : base) names.push_back(d.experiment);
  for (const ResultDoc& d : fresh) {
    if (find(base, d.experiment) == nullptr) names.push_back(d.experiment);
  }
  std::sort(names.begin(), names.end(), natural_less);

  for (const std::string& name : names) {
    const ResultDoc* b = find(base, name);
    const ResultDoc* f = find(fresh, name);
    ExperimentDiff ed;
    ed.name = name;
    if (b == nullptr) {
      ed.cls = DiffClass::Added;
      report.experiments.push_back(std::move(ed));
      continue;
    }
    if (f == nullptr) {
      ed.cls = DiffClass::Removed;
      report.experiments.push_back(std::move(ed));
      continue;
    }

    // Byte-equivalence modulo the version stamp => identical, without
    // any per-field comparisons.
    ResultDoc bn = *b, fn = *f;
    bn.git_describe.clear();
    fn.git_describe.clear();
    if (to_json(bn) == to_json(fn)) {
      ed.cls = DiffClass::Identical;
      report.experiments.push_back(std::move(ed));
      continue;
    }

    if (b->tables.size() != f->tables.size()) {
      TableDiff td;
      td.title = "(table set)";
      td.cls = DiffClass::ShapeRegression;
      td.reasons.push_back("table count changed: " +
                           std::to_string(b->tables.size()) + " -> " +
                           std::to_string(f->tables.size()));
      ed.tables.push_back(std::move(td));
    } else {
      for (std::size_t t = 0; t < b->tables.size(); ++t) {
        ed.tables.push_back(diff_tables(b->tables[t], f->tables[t], opt));
      }
    }

    // The documents differ, so the floor is NumericDrift even when
    // every table matched (e.g. only raw points or notes moved).
    ed.cls = DiffClass::NumericDrift;
    for (const TableDiff& td : ed.tables) {
      if (severity(td.cls) > severity(ed.cls)) ed.cls = td.cls;
    }
    report.experiments.push_back(std::move(ed));
  }
  return report;
}

}  // namespace dxbar::report
