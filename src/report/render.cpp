#include "report/render.hpp"

#include <cmath>
#include <cstdio>

#include "report/analysis.hpp"
#include "report/svg.hpp"

namespace dxbar::report {

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// Cell formatting for the markdown tables: %g keeps integers short
/// and small fractions readable (full precision lives in the JSON).
std::string cell(double v) {
  if (std::isnan(v)) return "—";
  return fmt("%.4g", v);
}

/// Escapes `|` so labels cannot break markdown table cells.
std::string md_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

/// The "<label> ±ci95" companion of a series, when the table has one.
const SeriesDoc* ci_companion(const TableDoc& t, const std::string& label) {
  const std::string want = label + std::string(kCiSuffix);
  for (const SeriesDoc& s : t.series) {
    if (s.label == want) return &s;
  }
  return nullptr;
}

}  // namespace

SvgChart make_table_chart(const TableDoc& t, const TableAnalysis& a,
                          const std::string& title_override) {
  SvgChart chart(title_override.empty() ? t.title : title_override,
                 t.x_label, "");
  if (!a.numeric_x) chart.set_categories(t.x);
  int color = 0;
  for (std::size_t s = 0; s < t.series.size(); ++s) {
    // CI companions are not curves: they become error bars on their
    // base series.  Colors stay consecutive over the drawn curves.
    if (is_ci_series(t.series[s].label)) continue;
    SvgSeries sv;
    sv.label = t.series[s].label;
    sv.color = color++;
    const SeriesDoc* ci = ci_companion(t, t.series[s].label);
    for (std::size_t i = 0; i < t.x.size(); ++i) {
      sv.xs.push_back(a.numeric_x ? a.xs[i] : static_cast<double>(i));
      sv.ys.push_back(t.series[s].values[i]);
      if (ci != nullptr && i < ci->values.size()) {
        sv.err.push_back(ci->values[i]);
      }
    }
    chart.add_series(std::move(sv));
  }
  return chart;
}

namespace {

void render_markdown_table(std::string& md, const TableDoc& t) {
  md += "| " + md_escape(t.x_label) + " |";
  for (const SeriesDoc& s : t.series) md += " " + md_escape(s.label) + " |";
  md += "\n|---|";
  for (std::size_t s = 0; s < t.series.size(); ++s) md += "---|";
  md += "\n";
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    md += "| " + md_escape(t.x[i]) + " |";
    for (const SeriesDoc& s : t.series) md += " " + cell(s.values[i]) + " |";
    md += "\n";
  }
}

/// Compresses winner_per_bin into runs: "DXbar DOR: 0.1–0.9".
std::string winner_summary(const TableDoc& t, const TableAnalysis& a) {
  std::string out;
  std::size_t i = 0;
  while (i < a.winner_per_bin.size()) {
    const int w = a.winner_per_bin[i];
    std::size_t j = i;
    while (j + 1 < a.winner_per_bin.size() && a.winner_per_bin[j + 1] == w) {
      ++j;
    }
    if (w >= 0) {
      if (!out.empty()) out += "; ";
      out += t.series[static_cast<std::size_t>(w)].label + ": " + t.x[i];
      if (j > i) out += "–" + t.x[j];
    }
    i = j + 1;
  }
  return out;
}

void render_table_section(std::string& md, const TableDoc& t) {
  const TableAnalysis a = analyze_table(t);
  md += "### " + t.title + "\n\n";
  if (!t.series.empty() && !t.x.empty()) {
    md += make_table_chart(t, a).render() + "\n\n";
    render_markdown_table(md, t);
    md += "\n";
    if (a.is_accepted_vs_offered) {
      md += "*Saturation (acceptance < 90% of offered):* ";
      bool first = true;
      for (const SeriesAnalysis& s : a.series) {
        if (std::isnan(s.saturation)) continue;  // CI companion columns
        if (!first) md += ", ";
        first = false;
        md += s.label + " " + fmt("%.3g", s.saturation);
      }
      md += "\n\n";
    }
    if (a.direction != MetricDirection::Unknown) {
      const std::string winners = winner_summary(t, a);
      if (!winners.empty()) {
        md += std::string("*Best series per ") + t.x_label + " bin (" +
              (a.direction == MetricDirection::HigherBetter ? "higher"
                                                            : "lower") +
              " is better):* " + winners + "\n\n";
      }
    }
    if (a.numeric_x) {
      std::string knees;
      for (const SeriesAnalysis& s : a.series) {
        if (std::isnan(s.knee_x)) continue;
        if (!knees.empty()) knees += ", ";
        knees += s.label + " @ " + fmt("%.3g", s.knee_x);
      }
      if (!knees.empty()) md += "*Knee (max distance from chord):* " +
                                knees + "\n\n";
    }
  }
}

void render_experiment(std::string& md, const ResultDoc& doc) {
  md += "## " + doc.experiment + " — " + doc.title + "\n\n";
  md += "*executor:* `" + doc.executor + "`";
  if (!doc.points.empty()) {
    md += ", " + std::to_string(doc.points.size()) + " points";
  }
  if (doc.warm_groups > 0) {
    md += ", " + std::to_string(doc.warm_groups) + " warm group(s)";
  }
  if (doc.quick) md += ", quick";
  if (!doc.overrides.empty()) {
    md += ", overrides: ";
    for (std::size_t i = 0; i < doc.overrides.size(); ++i) {
      if (i > 0) md += " ";
      md += "`" + doc.overrides[i] + "`";
    }
  }
  md += "\n\n";
  for (const TableDoc& t : doc.tables) render_table_section(md, t);
  if (!doc.notes.empty()) {
    md += "<details><summary>notes</summary>\n\n```\n" + doc.notes +
          "\n```\n\n</details>\n\n";
  }
}

}  // namespace

std::string render_report(const std::vector<ResultDoc>& docs,
                          std::string_view source_label) {
  std::string md = "# dxbar experiment report\n\n";
  md += "Source: `" + std::string(source_label) + "` — " +
        std::to_string(docs.size()) + " experiment(s)";
  if (!docs.empty()) {
    md += ", git `" + docs.front().git_describe + "`, schema v" +
          std::to_string(docs.front().schema_version);
  }
  md += "\n\n";
  for (const ResultDoc& doc : docs) render_experiment(md, doc);
  return md;
}

std::string render_diff(const DiffReport& report,
                        const std::vector<ResultDoc>& base,
                        const std::vector<ResultDoc>& fresh,
                        std::string_view base_label,
                        std::string_view fresh_label) {
  auto find = [](const std::vector<ResultDoc>& docs,
                 const std::string& name) -> const ResultDoc* {
    for (const ResultDoc& d : docs) {
      if (d.experiment == name) return &d;
    }
    return nullptr;
  };

  std::string md = "# dxbar result diff\n\n";
  md += "Base: `" + std::string(base_label) + "`";
  if (const ResultDoc* d = base.empty() ? nullptr : &base.front()) {
    md += " (git `" + d->git_describe + "`)";
  }
  md += " → New: `" + std::string(fresh_label) + "`";
  if (const ResultDoc* d = fresh.empty() ? nullptr : &fresh.front()) {
    md += " (git `" + d->git_describe + "`)";
  }
  md += "\n\n";

  const std::size_t regressions =
      report.count(DiffClass::ShapeRegression);
  md += "**" + std::to_string(regressions) + " shape regression(s)**, " +
        std::to_string(report.count(DiffClass::NumericDrift)) + " drifted, " +
        std::to_string(report.count(DiffClass::Identical)) + " identical, " +
        std::to_string(report.count(DiffClass::Added)) + " added, " +
        std::to_string(report.count(DiffClass::Removed)) + " removed.\n\n";

  md += "| experiment | class | max rel Δ |\n|---|---|---|\n";
  for (const ExperimentDiff& e : report.experiments) {
    double max_delta = 0.0;
    for (const TableDiff& t : e.tables) {
      max_delta = std::max(max_delta, t.max_rel_delta);
    }
    std::string cls(to_string(e.cls));
    if (e.cls == DiffClass::ShapeRegression) cls = "**" + cls + "**";
    md += "| " + e.name + " | " + cls + " | " +
          (e.cls == DiffClass::Identical || e.cls == DiffClass::Added ||
                   e.cls == DiffClass::Removed
               ? std::string("—")
               : fmt("%.3g", max_delta)) +
          " |\n";
  }
  md += "\n";

  for (const ExperimentDiff& e : report.experiments) {
    if (e.cls != DiffClass::ShapeRegression &&
        e.cls != DiffClass::NumericDrift) {
      continue;
    }
    md += "## " + e.name + " — " + std::string(to_string(e.cls)) + "\n\n";
    const ResultDoc* bd = find(base, e.name);
    const ResultDoc* fd = find(fresh, e.name);
    for (const TableDiff& t : e.tables) {
      if (t.cls == DiffClass::Identical) continue;
      md += "### " + t.title + " — " + std::string(to_string(t.cls)) +
            " (max rel Δ " + fmt("%.3g", t.max_rel_delta) + ")\n\n";
      for (const std::string& r : t.reasons) md += "- " + r + "\n";
      if (!t.reasons.empty()) md += "\n";

      // Overlay plot for regressed tables: base dashed, new solid.
      if (t.cls == DiffClass::ShapeRegression && bd != nullptr &&
          fd != nullptr) {
        const TableDoc* bt = nullptr;
        const TableDoc* ft = nullptr;
        for (const TableDoc& cand : bd->tables) {
          if (cand.title == t.title) bt = &cand;
        }
        for (const TableDoc& cand : fd->tables) {
          if (cand.title == t.title) ft = &cand;
        }
        if (bt != nullptr && ft != nullptr &&
            bt->series.size() == ft->series.size() && bt->x == ft->x) {
          const TableAnalysis a = analyze_table(*ft);
          SvgChart chart(t.title + " (base dashed, new solid)", ft->x_label,
                         "");
          if (!a.numeric_x) chart.set_categories(ft->x);
          for (std::size_t s = 0; s < ft->series.size(); ++s) {
            if (is_ci_series(ft->series[s].label)) continue;
            SvgSeries solid, dashed;
            solid.label = ft->series[s].label;
            dashed.label = bt->series[s].label + " (base)";
            dashed.dashed = true;
            solid.color = static_cast<int>(s);
            dashed.color = static_cast<int>(s);
            for (std::size_t i = 0; i < ft->x.size(); ++i) {
              const double x =
                  a.numeric_x ? a.xs[i] : static_cast<double>(i);
              solid.xs.push_back(x);
              solid.ys.push_back(ft->series[s].values[i]);
              dashed.xs.push_back(x);
              dashed.ys.push_back(bt->series[s].values[i]);
            }
            chart.add_series(std::move(dashed));
            chart.add_series(std::move(solid));
          }
          md += chart.render() + "\n\n";
        }
      }
    }
  }
  return md;
}

}  // namespace dxbar::report
