#include "report/result_io.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/text.hpp"

namespace dxbar::report {

// ---------------------------------------------------------------------
// Serialization (the one layout shared with the dxbar_bench writer)

std::string to_json(const ResultDoc& doc) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kSchemaName);
  w.key("schema_version").value(doc.schema_version);
  w.key("experiment").value(doc.experiment);
  w.key("title").value(doc.title);
  w.key("git_describe").value(doc.git_describe);
  w.key("quick").value(doc.quick);
  w.key("executor").value(doc.executor);
  w.key("warm_groups").value(doc.warm_groups);
  w.key("overrides").begin_array();
  for (const std::string& o : doc.overrides) w.value(o);
  w.end_array();
  w.key("base_config");
  json_config(w, doc.base_config);
  w.key("tables").begin_array();
  for (const TableDoc& t : doc.tables) {
    w.begin_object();
    w.key("title").value(t.title);
    w.key("x_label").value(t.x_label);
    w.key("x").begin_array();
    for (const auto& x : t.x) w.value(x);
    w.end_array();
    w.key("series").begin_array();
    for (const SeriesDoc& s : t.series) {
      w.begin_object();
      w.key("label").value(s.label);
      w.key("values").begin_array();
      for (double v : s.values) w.value(v);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("notes").value(doc.notes);
  w.key("points").begin_array();
  for (const PointDoc& p : doc.points) {
    w.begin_object();
    w.key("config");
    json_config(w, p.config);
    w.key("stats");
    json_run_stats(w, p.stats);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

// ---------------------------------------------------------------------
// Parsing

namespace {

/// Reverse of to_string(RouterDesign) — the config serializer writes
/// display names ("Flit-Bless"), not the parse_design() short forms.
bool design_from_string(std::string_view s, RouterDesign& out) {
  for (RouterDesign d :
       {RouterDesign::FlitBless, RouterDesign::Scarab, RouterDesign::Buffered4,
        RouterDesign::Buffered8, RouterDesign::DXbar,
        RouterDesign::UnifiedXbar, RouterDesign::BufferedVC,
        RouterDesign::Afc, RouterDesign::Damq, RouterDesign::MinBD}) {
    if (to_string(d) == s) {
      out = d;
      return true;
    }
  }
  return false;
}

bool routing_from_string(std::string_view s, RoutingAlgo& out) {
  for (RoutingAlgo a : {RoutingAlgo::DOR, RoutingAlgo::WestFirst,
                        RoutingAlgo::NegativeFirst, RoutingAlgo::NorthLast}) {
    if (to_string(a) == s) {
      out = a;
      return true;
    }
  }
  return false;
}

bool pattern_from_string(std::string_view s, TrafficPattern& out) {
  for (TrafficPattern p : kAllPatterns) {
    if (to_string(p) == s) {
      out = p;
      return true;
    }
  }
  return false;
}

/// Strict member extraction with JSON-path error messages.  Every
/// getter records the member as "seen"; `finish()` then rejects any
/// member the schema does not know, so stray keys (schema drift) are
/// loud errors.
class ObjReader {
 public:
  ObjReader(const JsonValue& v, std::string path, std::string& err)
      : v_(v), path_(std::move(path)), err_(err) {
    if (err_.empty() && !v_.is_object()) {
      err_ = path_ + ": expected object, got " + std::string(v_.type_name());
    }
  }

  const JsonValue* get(std::string_view key, JsonValue::Type want,
                       std::string_view want_name) {
    if (!err_.empty()) return nullptr;
    const JsonValue* m = v_.find(key);
    if (m == nullptr) {
      err_ = path_ + ": missing key '" + std::string(key) + "'";
      return nullptr;
    }
    seen_.emplace_back(key);
    if (m->type != want) {
      err_ = path_ + "." + std::string(key) + ": expected " +
             std::string(want_name) + ", got " + std::string(m->type_name());
      return nullptr;
    }
    return m;
  }

  void string(std::string_view key, std::string& out) {
    if (const JsonValue* m = get(key, JsonValue::Type::String, "string")) {
      out = m->scalar;
    }
  }

  void boolean(std::string_view key, bool& out) {
    if (const JsonValue* m = get(key, JsonValue::Type::Bool, "bool")) {
      out = m->boolean;
    }
  }

  /// Number, with JSON null accepted as quiet NaN (the writer clamps
  /// non-finite doubles to null).
  void number(std::string_view key, double& out) {
    if (!err_.empty()) return;
    const JsonValue* m = v_.find(key);
    if (m == nullptr) {
      err_ = path_ + ": missing key '" + std::string(key) + "'";
      return;
    }
    seen_.emplace_back(key);
    if (m->is_null()) {
      out = std::nan("");
      return;
    }
    if (!m->is_number()) {
      err_ = path_ + "." + std::string(key) + ": expected number, got " +
             std::string(m->type_name());
      return;
    }
    out = m->as_double();
  }

  void integer(std::string_view key, int& out) {
    if (const JsonValue* m = get(key, JsonValue::Type::Number, "number")) {
      out = static_cast<int>(m->as_int64());
    }
  }

  void uint64(std::string_view key, std::uint64_t& out) {
    if (const JsonValue* m = get(key, JsonValue::Type::Number, "number")) {
      out = m->as_uint64();
    }
  }

  /// Like uint64(), but a missing key leaves `out` untouched — for
  /// fields the writer omits at their default value (measure_seed).
  void opt_uint64(std::string_view key, std::uint64_t& out) {
    if (!err_.empty() || v_.find(key) == nullptr) return;
    uint64(key, out);
  }

  /// Writer-omits-at-default variants for the closed-loop blocks.
  void opt_integer(std::string_view key, int& out) {
    if (!err_.empty() || v_.find(key) == nullptr) return;
    integer(key, out);
  }

  void opt_number(std::string_view key, double& out) {
    if (!err_.empty() || v_.find(key) == nullptr) return;
    number(key, out);
  }

  void opt_string(std::string_view key, std::string& out) {
    if (!err_.empty() || v_.find(key) == nullptr) return;
    string(key, out);
  }

  const JsonValue* array(std::string_view key) {
    return get(key, JsonValue::Type::Array, "array");
  }

  const JsonValue* object(std::string_view key) {
    return get(key, JsonValue::Type::Object, "object");
  }

  /// Rejects members no getter asked for.
  void finish() {
    if (!err_.empty()) return;
    for (const auto& [k, m] : v_.members) {
      (void)m;
      bool known = false;
      for (const std::string& s : seen_) {
        if (s == k) {
          known = true;
          break;
        }
      }
      if (!known) {
        err_ = path_ + ": unknown key '" + k +
               "' (schema v" + std::to_string(kSchemaVersion) +
               " does not define it)";
        return;
      }
    }
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool ok() const { return err_.empty(); }

 private:
  const JsonValue& v_;
  std::string path_;
  std::string& err_;
  std::vector<std::string> seen_;
};

void read_config(const JsonValue& v, const std::string& path, SimConfig& cfg,
                 std::string& err) {
  ObjReader r(v, path, err);
  r.integer("width", cfg.mesh_width);
  r.integer("height", cfg.mesh_height);
  std::string topology;
  r.string("topology", topology);
  if (r.ok()) {
    if (topology == "torus") {
      cfg.torus = true;
    } else if (topology == "mesh") {
      cfg.torus = false;
    } else {
      err = path + ".topology: unknown topology '" + topology + "'";
      return;
    }
  }
  std::string design, routing, pattern;
  r.string("design", design);
  if (r.ok() && !design_from_string(design, cfg.design)) {
    err = path + ".design: unknown design '" + design + "'";
    return;
  }
  r.string("routing", routing);
  if (r.ok() && !routing_from_string(routing, cfg.routing)) {
    err = path + ".routing: unknown routing '" + routing + "'";
    return;
  }
  r.string("pattern", pattern);
  if (r.ok() && !pattern_from_string(pattern, cfg.pattern)) {
    err = path + ".pattern: unknown pattern '" + pattern + "'";
    return;
  }
  r.integer("buffer_depth", cfg.buffer_depth);
  r.integer("fairness_threshold", cfg.fairness_threshold);
  r.integer("stall_escape", cfg.stall_escape_delay);
  r.integer("num_vcs", cfg.num_vcs);
  r.integer("source_queue_depth", cfg.source_queue_depth);
  r.integer("retransmit_buffer", cfg.retransmit_buffer);
  r.number("load", cfg.offered_load);
  r.number("warmup_load", cfg.warmup_load);
  r.integer("packet_length", cfg.packet_length);
  r.integer("flit_bits", cfg.flit_bits);
  r.opt_integer("tech", cfg.tech_node);
  r.uint64("warmup", cfg.warmup_cycles);
  r.uint64("measure", cfg.measure_cycles);
  r.uint64("drain", cfg.drain_cycles);
  r.number("faults", cfg.fault_fraction);
  r.uint64("fault_detect_delay", cfg.fault_detect_delay);
  r.uint64("fault_onset_spread", cfg.fault_onset_spread);
  r.number("link_faults", cfg.link_fault_fraction);
  r.uint64("seed", cfg.seed);
  r.opt_uint64("measure_seed", cfg.measure_seed);
  // Closed-loop block: present only when the writer saw a non-synthetic
  // workload, so the kind defaults to Synthetic when absent.
  std::string workload;
  r.opt_string("workload", workload);
  if (r.ok() && !workload.empty()) {
    if (workload == to_string(WorkloadKind::ClosedLoop)) {
      cfg.workload = WorkloadKind::ClosedLoop;
    } else if (workload == to_string(WorkloadKind::Synthetic)) {
      cfg.workload = WorkloadKind::Synthetic;
    } else {
      err = path + ".workload: unknown workload '" + workload + "'";
      return;
    }
  }
  r.opt_integer("mlp", cfg.mlp);
  std::uint64_t service_delay = cfg.service_delay;
  r.opt_uint64("service_delay", service_delay);
  cfg.service_delay = service_delay;
  r.opt_integer("request_length", cfg.request_length);
  r.opt_number("hotspot_fraction", cfg.hotspot_fraction);
  r.opt_number("read_fraction", cfg.read_fraction);
  r.finish();
}

void read_stats(const JsonValue& v, const std::string& path, RunStats& s,
                std::string& err) {
  ObjReader r(v, path, err);
  r.number("offered_load", s.offered_load);
  r.number("accepted_load", s.accepted_load);
  r.number("accepted_load_stddev", s.accepted_load_stddev);
  r.number("avg_packet_latency", s.avg_packet_latency);
  r.number("avg_network_latency", s.avg_network_latency);
  r.number("latency_p50", s.latency_p50);
  r.number("latency_p95", s.latency_p95);
  r.number("latency_p99", s.latency_p99);
  r.number("latency_max", s.latency_max);
  r.number("avg_hops", s.avg_hops);
  r.number("deflections_per_flit", s.deflections_per_flit);
  r.number("retransmits_per_flit", s.retransmits_per_flit);
  r.uint64("packets_completed", s.packets_completed);
  r.uint64("flits_ejected", s.flits_ejected);
  r.uint64("flits_injected", s.flits_injected);
  r.uint64("cycles", s.cycles);
  r.integer("packet_length", s.packet_length);
  r.boolean("drained", s.drained);
  r.number("energy_buffer_nj", s.energy_buffer_nj);
  r.number("energy_crossbar_nj", s.energy_crossbar_nj);
  r.number("energy_link_nj", s.energy_link_nj);
  r.number("energy_control_nj", s.energy_control_nj);
  // Separate static-power column, absent from pre-leakage corpora and
  // from empty-window documents.
  r.opt_number("energy_leakage_nj", s.energy_leakage_nj);
  // Derived at write time from the fields above; its presence is part
  // of the schema but the stored value is not load-bearing.
  double derived = 0.0;
  r.number("energy_per_packet_nj", derived);
  // Request-level block (closed-loop runs only; absent otherwise).
  r.opt_uint64("requests_completed", s.requests_completed);
  r.opt_number("avg_req_latency", s.avg_req_latency);
  r.opt_number("req_latency_p50", s.req_latency_p50);
  r.opt_number("req_latency_p95", s.req_latency_p95);
  r.opt_number("req_latency_p99", s.req_latency_p99);
  r.opt_number("req_latency_max", s.req_latency_max);
  r.finish();
}

void read_table(const JsonValue& v, const std::string& path, TableDoc& t,
                std::string& err) {
  ObjReader r(v, path, err);
  r.string("title", t.title);
  r.string("x_label", t.x_label);
  if (const JsonValue* xs = r.array("x")) {
    for (std::size_t i = 0; i < xs->items.size(); ++i) {
      const JsonValue& x = xs->items[i];
      if (!x.is_string()) {
        err = path + ".x[" + std::to_string(i) + "]: expected string, got " +
              std::string(x.type_name());
        return;
      }
      t.x.push_back(x.scalar);
    }
  }
  if (const JsonValue* series = r.array("series")) {
    for (std::size_t i = 0; i < series->items.size(); ++i) {
      const std::string spath = path + ".series[" + std::to_string(i) + "]";
      SeriesDoc s;
      ObjReader sr(series->items[i], spath, err);
      sr.string("label", s.label);
      if (const JsonValue* values = sr.array("values")) {
        for (std::size_t j = 0; j < values->items.size(); ++j) {
          const JsonValue& val = values->items[j];
          if (val.is_null()) {
            s.values.push_back(std::nan(""));
          } else if (val.is_number()) {
            s.values.push_back(val.as_double());
          } else {
            err = spath + ".values[" + std::to_string(j) +
                  "]: expected number, got " + std::string(val.type_name());
            return;
          }
        }
      }
      sr.finish();
      if (!err.empty()) return;
      if (s.values.size() != t.x.size()) {
        err = spath + ": series '" + s.label + "' has " +
              std::to_string(s.values.size()) + " values for " +
              std::to_string(t.x.size()) + " x entries";
        return;
      }
      t.series.push_back(std::move(s));
    }
  }
  r.finish();
}

}  // namespace

std::string from_json(std::string_view text, ResultDoc& out,
                      std::string_view where) {
  out = ResultDoc{};
  const std::string prefix =
      where.empty() ? std::string() : std::string(where) + ": ";
  JsonValue root;
  if (std::string err = json_parse(text, root); !err.empty()) {
    return prefix + err;
  }

  std::string err;
  ObjReader r(root, "$", err);
  std::string schema;
  r.string("schema", schema);
  if (r.ok() && schema != kSchemaName) {
    return prefix + "$.schema: expected \"" + std::string(kSchemaName) +
           "\", got \"" + schema + "\"";
  }
  int version = 0;
  r.integer("schema_version", version);
  if (r.ok() && version != kSchemaVersion) {
    return prefix + "$.schema_version: this reader understands version " +
           std::to_string(kSchemaVersion) + ", file has " +
           std::to_string(version);
  }
  out.schema_version = version;
  r.string("experiment", out.experiment);
  r.string("title", out.title);
  r.string("git_describe", out.git_describe);
  r.boolean("quick", out.quick);
  r.string("executor", out.executor);
  r.uint64("warm_groups", out.warm_groups);
  if (const JsonValue* overrides = r.array("overrides")) {
    for (std::size_t i = 0; i < overrides->items.size(); ++i) {
      const JsonValue& o = overrides->items[i];
      if (!o.is_string()) {
        return prefix + "$.overrides[" + std::to_string(i) +
               "]: expected string, got " + std::string(o.type_name());
      }
      out.overrides.push_back(o.scalar);
    }
  }
  if (const JsonValue* cfg = r.object("base_config")) {
    read_config(*cfg, "$.base_config", out.base_config, err);
  }
  if (const JsonValue* tables = r.array("tables")) {
    for (std::size_t i = 0; i < tables->items.size(); ++i) {
      if (!err.empty()) break;
      TableDoc t;
      read_table(tables->items[i], "$.tables[" + std::to_string(i) + "]", t,
                 err);
      if (err.empty()) out.tables.push_back(std::move(t));
    }
  }
  r.string("notes", out.notes);
  if (const JsonValue* points = r.array("points")) {
    for (std::size_t i = 0; i < points->items.size(); ++i) {
      if (!err.empty()) break;
      const std::string ppath = "$.points[" + std::to_string(i) + "]";
      PointDoc p;
      ObjReader pr(points->items[i], ppath, err);
      if (const JsonValue* cfg = pr.object("config")) {
        read_config(*cfg, ppath + ".config", p.config, err);
      }
      if (const JsonValue* stats = pr.object("stats")) {
        read_stats(*stats, ppath + ".stats", p.stats, err);
      }
      pr.finish();
      if (err.empty()) out.points.push_back(std::move(p));
    }
  }
  r.finish();
  if (!err.empty()) return prefix + err;
  return {};
}

std::string load_result_file(const std::string& path, ResultDoc& out) {
  std::ifstream in(path);
  if (!in) return path + ": cannot open for reading";
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return path + ": read error";
  return from_json(buf.str(), out, path);
}

std::string load_result_dir(const std::string& dir,
                            std::vector<ResultDoc>& out) {
  namespace fs = std::filesystem;
  out.clear();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return dir + ": not a directory";
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) return dir + ": " + ec.message();
  std::sort(files.begin(), files.end(), natural_less);

  std::string errors;
  for (const std::string& f : files) {
    ResultDoc doc;
    if (std::string err = load_result_file(f, doc); !err.empty()) {
      if (!errors.empty()) errors += '\n';
      errors += err;
      continue;
    }
    out.push_back(std::move(doc));
  }
  std::sort(out.begin(), out.end(), [](const ResultDoc& a,
                                       const ResultDoc& b) {
    return natural_less(a.experiment, b.experiment);
  });
  return errors;
}

}  // namespace dxbar::report
