#include "exp/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/text.hpp"

namespace dxbar::exp {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(Experiment e) {
  if (find(e.name) != nullptr) {
    std::fprintf(stderr, "duplicate experiment registration: '%s'\n",
                 e.name.c_str());
    std::abort();
  }
  experiments_.push_back(std::move(e));
}

const Experiment* Registry::find(std::string_view name) const {
  for (const Experiment& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const Experiment*> Registry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const Experiment& e : experiments_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return natural_less(a->name, b->name);
            });
  return out;
}

bool natural_less(std::string_view a, std::string_view b) {
  return dxbar::natural_less(a, b);
}

}  // namespace dxbar::exp
