#include "exp/registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dxbar::exp {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(Experiment e) {
  if (find(e.name) != nullptr) {
    std::fprintf(stderr, "duplicate experiment registration: '%s'\n",
                 e.name.c_str());
    std::abort();
  }
  experiments_.push_back(std::move(e));
}

const Experiment* Registry::find(std::string_view name) const {
  for (const Experiment& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const Experiment*> Registry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const Experiment& e : experiments_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return natural_less(a->name, b->name);
            });
  return out;
}

bool natural_less(std::string_view a, std::string_view b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const unsigned char ca = static_cast<unsigned char>(a[i]);
    const unsigned char cb = static_cast<unsigned char>(b[j]);
    if (std::isdigit(ca) && std::isdigit(cb)) {
      std::size_t ia = i, jb = j;
      while (ia < a.size() &&
             std::isdigit(static_cast<unsigned char>(a[ia]))) {
        ++ia;
      }
      while (jb < b.size() &&
             std::isdigit(static_cast<unsigned char>(b[jb]))) {
        ++jb;
      }
      // Compare the digit runs numerically: strip leading zeros, then
      // longer run wins, then lexicographic.
      std::string_view da = a.substr(i, ia - i);
      std::string_view db = b.substr(j, jb - j);
      while (da.size() > 1 && da.front() == '0') da.remove_prefix(1);
      while (db.size() > 1 && db.front() == '0') db.remove_prefix(1);
      if (da.size() != db.size()) return da.size() < db.size();
      if (da != db) return da < db;
      i = ia;
      j = jb;
      continue;
    }
    if (ca != cb) return ca < cb;
    ++i;
    ++j;
  }
  return a.size() - i < b.size() - j;
}

}  // namespace dxbar::exp
