// Static experiment registry.
//
// Registrations live in bench/experiments/*.cpp as namespace-scope
// `Registration` objects; everything linked into the driver (or a test)
// self-registers before main().  The TUs are compiled into an OBJECT
// library so the linker cannot drop "unreferenced" registrations.
#pragma once

#include <string_view>
#include <vector>

#include "exp/experiment.hpp"

namespace dxbar::exp {

class Registry {
 public:
  static Registry& instance();

  /// Registers an experiment; aborts on a duplicate name (two
  /// registrations colliding is a build error, not a runtime surprise).
  void add(Experiment e);

  /// nullptr when no experiment has that name.
  [[nodiscard]] const Experiment* find(std::string_view name) const;

  /// All experiments in natural name order (fig5 before fig10).
  [[nodiscard]] std::vector<const Experiment*> all() const;

 private:
  std::vector<Experiment> experiments_;
};

/// Natural string comparison: digit runs compare numerically, so
/// "fig5" < "fig10" and "table1" < "table3".
bool natural_less(std::string_view a, std::string_view b);

struct Registration {
  explicit Registration(Experiment e) {
    Registry::instance().add(std::move(e));
  }
};

}  // namespace dxbar::exp
