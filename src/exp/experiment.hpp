// Declarative experiment descriptions.
//
// Every table/figure/ablation of the paper reproduction is one
// registered `Experiment`: a point grid (SimConfig generator) plus a
// reducer from the grid's RunStats to named series and text summaries.
// The runner (exp/runner.hpp) owns execution — warm-start sweeps with
// shared-warmup grouping, crash-resumable campaigns, table rendering,
// CSV and schema-versioned JSON output — so a registration is ~40 lines
// of "what to simulate and how to present it" and nothing else.
//
// Experiments that are not open-loop grids (closed-loop SPLASH runs,
// static parameter tables) provide a custom `run` instead of
// `grid`/`reduce`; they lose campaign resumability but share the CLI,
// rendering and output plumbing.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar::exp {

/// One rendered table: row-per-x, column-per-series, exactly the layout
/// bench_util's print_table produced (the human output is byte-stable
/// across the migration from standalone binaries).
struct Table {
  std::string title;
  std::string x_label;
  std::vector<std::string> x;
  std::vector<std::string> series_labels;
  std::vector<std::vector<double>> values;  ///< [series][row]
  std::string fmt = "%10.4f";               ///< printf format per cell
};

/// Ordered output: tables interleaved with free-form text, printed in
/// emission order so migrated experiments reproduce their legacy stdout.
struct Block {
  enum class Kind { Table, Text };
  Kind kind = Kind::Text;
  Table table;       ///< valid when kind == Table
  std::string text;  ///< valid when kind == Text; printed verbatim
};

struct ExperimentResult {
  std::vector<Block> blocks;
  int exit_code = 0;

  // Filled by the runner for grid experiments (raw per-point results,
  // persisted in the JSON output; empty for custom experiments).
  std::vector<SimConfig> grid;
  std::vector<RunStats> grid_stats;
  std::size_t warm_groups = 0;
  std::string executor;  ///< "warm_sweep", "campaign" or "custom"

  void add_table(Table t) {
    Block b;
    b.kind = Block::Kind::Table;
    b.table = std::move(t);
    blocks.push_back(std::move(b));
  }

  /// Appends printf-formatted text (printed verbatim, no added newline).
  void addf(const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;
};

/// Execution context handed to grid generators and reducers.
struct RunContext {
  SimConfig base;  ///< bench defaults + --quick + key=value overrides
  bool quick = false;
  unsigned threads = 0;  ///< 0 = hardware concurrency

  /// Session --resume root, forwarded to experiments that declared
  /// `custom_resume` (empty otherwise): a custom `run` persists its own
  /// per-point results under `<resume_dir>/<name>/`.
  std::string resume_dir;

  /// Runs an open-loop grid through the session executor (warm-start
  /// sweep, or the crash-resumable campaign under --resume).  The
  /// runner invokes this on `Experiment::grid` output itself; custom
  /// `run` experiments may call it for embedded grids.
  std::function<std::vector<RunStats>(const std::vector<SimConfig>&)> sweep;
};

struct Experiment {
  std::string name;         ///< CLI name, e.g. "fig5"
  std::string title;        ///< one-liner shown by --list
  std::string paper_shape;  ///< expected paper shape (shown by --list)

  /// Open-loop point grid; when set, the runner executes it and feeds
  /// the stats to `reduce` (stats align with the returned configs).
  std::function<std::vector<SimConfig>(const RunContext&)> grid;
  std::function<ExperimentResult(const RunContext&,
                                 const std::vector<RunStats>&)>
      reduce;

  /// Optional replica combiner for grid experiments under --seeds N.
  /// Receives the rep-major stats (replica r's slice is element
  /// [r*grid_size, (r+1)*grid_size)) and the replica count, and owns
  /// the whole merged result.  When unset, the runner reduces each
  /// replica independently and folds the tables cell-wise into means
  /// with appended ±ci95 columns (exp/runner.hpp's
  /// combine_replica_results) — which is right for means but cannot
  /// pool order statistics such as p99 across replicas.  A combiner
  /// typically delegates to combine_replica_results for the mean/ci
  /// machinery and then overwrites the cells that need pooled data.
  std::function<ExperimentResult(const RunContext&,
                                 const std::vector<RunStats>&, int)>
      combine;

  /// Custom execution for non-grid experiments (used when grid == null).
  std::function<ExperimentResult(const RunContext&)> run;

  /// Custom `run` understands ctx.resume_dir (closed-loop campaigns):
  /// the runner forwards --resume instead of warning it has no effect.
  bool custom_resume = false;
};

/// snprintf into a std::string (the benches' number-formatting helper).
std::string fmt(double v, const char* f = "%.2f");

}  // namespace dxbar::exp
