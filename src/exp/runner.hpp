// Experiment runner: the execution and reporting engine behind the
// `dxbar_bench` driver.
//
// Execution routes every open-loop grid through run_warm_sweep — points
// that share a warmup (identical config up to measurement rate + drain
// cap, warmup_load pinned) are warmed once and forked from a snapshot,
// and the grouping is logged — or, under --resume, through the
// crash-resumable Campaign runner (kill the process at any instant,
// re-run the same command, get bit-identical results).
//
// Reporting renders the reduced tables to stdout (byte-compatible with
// the legacy per-figure binaries), optionally mirrors them to CSV, and
// optionally writes one schema-versioned JSON document per experiment
// (see DESIGN.md section 8 for the schema).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "report/result_io.hpp"

namespace dxbar {
class WarmupCache;  // sim/replica_batch.hpp
}

namespace dxbar::exp {

/// Parsed dxbar_bench command line.  Parsing never applies flag effects
/// in argument order: flags are collected first and key=value overrides
/// are applied to the base config LAST, so an explicit `warmup_cycles=`
/// override wins over --quick regardless of where it appears (the
/// legacy bench_util parser got this wrong).
struct BenchArgs {
  bool list = false;
  bool all = false;
  bool quick = false;
  unsigned threads = 0;
  int seeds = 1;  ///< measurement replicas per grid point (--seeds N)
  std::string csv_dir;
  std::string json_dir;
  std::string resume_dir;
  std::string filter;  ///< glob over registered names (`*`, `?`)
  std::vector<std::string> experiments;  ///< positional experiment names
  std::vector<std::string> overrides;    ///< key=value args, in order
  std::string error;                     ///< nonempty => unusable
};

BenchArgs parse_bench_args(std::span<const char* const> args);

/// Builds the base SimConfig for a session: bench-default phase windows
/// (warmup 1000 / measure 4000 / drain 6000), shrunk ~4x under --quick,
/// then the key=value overrides applied on top.  Returns an error
/// message for a bad override, empty on success.
std::string make_base_config(const BenchArgs& args, SimConfig& out);

/// How to execute and report one experiment.
struct RunOptions {
  SimConfig base;
  bool quick = false;
  unsigned threads = 0;
  /// Measurement replicas per grid point.  With N > 1 every grid is
  /// expanded rep-major (replica 0 keeps each config untouched; replica
  /// r > 0 derives an independent nonzero measure_seed), the replicas
  /// share warmups through the replica engine, and the reduced tables
  /// report per-cell means plus appended "<series> ±ci95" columns.
  int seeds = 1;
  /// Session-wide warm-snapshot cache (optional).  When set, warm
  /// sweeps consult it before running a warmup and publish every warmup
  /// they do run, so repeated (design, warmup) pairs across experiments
  /// warm once per session.
  WarmupCache* warm_cache = nullptr;
  std::string csv_dir;     ///< empty = no CSV
  std::string json_dir;    ///< empty = no JSON
  std::string resume_dir;  ///< nonempty = campaign execution (grids only)
  std::vector<std::string> overrides;  ///< recorded in the JSON output
};

/// Executes one experiment (no output side effects beyond stderr
/// progress logs).  Grid experiments run via warm sweep or campaign;
/// custom experiments call their `run`.
ExperimentResult execute(const Experiment& exp, const RunOptions& opt);

/// Folds N per-replica reductions into one result: every table cell
/// becomes the across-replica mean and each table gains one appended
/// "<series> ±ci95" column per original series (95% confidence
/// halfwidths); a note block is prepended.  The runner applies this to
/// every grid experiment under --seeds N that has no custom
/// `Experiment::combine`; custom combiners call it for the mean/ci
/// machinery before patching in pooled statistics.
ExperimentResult combine_replica_results(const std::string& exp_name,
                                         std::vector<ExperimentResult> reps);

/// Resolves a session's experiment selection: positional names (each
/// must exist), plus every registered experiment when `all` is set,
/// plus every registered name matching the `filter` glob.  A filter
/// matching nothing is an error that lists the registered names.
/// Returns an error message, empty on success.
std::string select_experiments(const BenchArgs& args,
                               std::vector<const Experiment*>& out);

/// Prints a per-experiment point-count / simulated-cycles / ETA table
/// to stderr before a multi-experiment session starts.  The ETA uses
/// the per-design cycles/sec baselines committed in BENCH_kernel.json
/// (searched in the current directory, then the source tree) divided
/// by the worker count; designs missing from the baseline fall back to
/// the slowest measured design.  Estimates are upper bounds: warm-start
/// sharing and drain-cap slack only make real runs faster.
void print_preflight(const std::vector<const Experiment*>& to_run,
                     const RunOptions& opt);

/// Prints the result blocks to stdout, exactly as the legacy binaries
/// printed them.
void print_result(const ExperimentResult& result);

/// Writes every table of `result` as CSV under opt.csv_dir (created if
/// missing).  Filenames are `<experiment>_<title-slug>.csv`,
/// disambiguated against `used_names` (shared across a session so two
/// experiments can never overwrite each other).  Returns false (after
/// printing to stderr) when the directory or a file cannot be created.
bool write_csv_tables(const Experiment& exp, const ExperimentResult& result,
                      const std::string& csv_dir,
                      std::vector<std::string>& used_names);

/// Builds the schema-v1 result document for one executed experiment —
/// the exact content `write_json_result` serializes (via
/// report::to_json, the layout shared with the report subsystem's
/// reader).
report::ResultDoc result_doc(const Experiment& exp,
                             const ExperimentResult& result,
                             const RunOptions& opt);

/// Writes `<json_dir>/<experiment>.json` (dir created if missing).
/// Returns false (after printing to stderr) on I/O failure.
bool write_json_result(const Experiment& exp, const ExperimentResult& result,
                       const RunOptions& opt);

/// Version stamp recorded in JSON outputs (`git describe` at configure
/// time, or "unknown").
std::string_view git_describe();

inline constexpr int kJsonSchemaVersion = 1;

}  // namespace dxbar::exp
