#include "exp/experiment.hpp"

#include <cstdio>

namespace dxbar::exp {

void ExperimentResult::addf(const char* fmt, ...) {
  char buf[4096];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (!blocks.empty() && blocks.back().kind == Block::Kind::Text) {
    blocks.back().text += buf;
    return;
  }
  Block b;
  b.kind = Block::Kind::Text;
  b.text = buf;
  blocks.push_back(std::move(b));
}

std::string fmt(double v, const char* f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

}  // namespace dxbar::exp
