#include "exp/runner.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <iterator>
#include <thread>

#include "common/json.hpp"
#include "common/text.hpp"
#include "sim/campaign.hpp"
#include "sim/sweep.hpp"

#ifndef DXBAR_GIT_DESCRIBE
#define DXBAR_GIT_DESCRIBE "unknown"
#endif
#ifndef DXBAR_SOURCE_DIR
#define DXBAR_SOURCE_DIR "."
#endif

namespace dxbar::exp {

std::string_view git_describe() { return DXBAR_GIT_DESCRIBE; }

BenchArgs parse_bench_args(std::span<const char* const> args) {
  BenchArgs out;
  auto need_value = [&](std::size_t& i, const char* flag,
                        std::string& dst) -> bool {
    if (i + 1 >= args.size()) {
      out.error = std::string(flag) + " requires a value";
      return false;
    }
    dst = args[++i];
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char* a = args[i];
    if (std::strcmp(a, "--list") == 0) {
      out.list = true;
    } else if (std::strcmp(a, "--all") == 0) {
      out.all = true;
    } else if (std::strcmp(a, "--quick") == 0) {
      out.quick = true;
    } else if (std::strcmp(a, "--csv") == 0) {
      if (!need_value(i, "--csv", out.csv_dir)) return out;
    } else if (std::strcmp(a, "--json") == 0) {
      if (!need_value(i, "--json", out.json_dir)) return out;
    } else if (std::strcmp(a, "--resume") == 0) {
      if (!need_value(i, "--resume", out.resume_dir)) return out;
    } else if (std::strcmp(a, "--filter") == 0) {
      if (!need_value(i, "--filter", out.filter)) return out;
    } else if (std::strcmp(a, "--threads") == 0) {
      std::string v;
      if (!need_value(i, "--threads", v)) return out;
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end != v.c_str() + v.size()) {
        out.error = "bad --threads value '" + v + "'";
        return out;
      }
      out.threads = static_cast<unsigned>(n);
    } else if (std::strchr(a, '=') != nullptr) {
      out.overrides.emplace_back(a);
    } else if (a[0] == '-') {
      out.error = "unknown option '" + std::string(a) + "'";
      return out;
    } else {
      out.experiments.emplace_back(a);
    }
  }
  return out;
}

std::string make_base_config(const BenchArgs& args, SimConfig& out) {
  out = SimConfig{};
  out.warmup_cycles = 1000;
  out.measure_cycles = 4000;
  out.drain_cycles = 6000;
  if (args.quick) {
    out.warmup_cycles = 300;
    out.measure_cycles = 1200;
    out.drain_cycles = 2000;
  }
  // Overrides are applied after the quick defaults so an explicit
  // `warmup_cycles=...` on the command line wins regardless of where it
  // appeared relative to --quick.
  for (const std::string& o : args.overrides) {
    if (const auto err = apply_override(out, o); !err.empty()) return err;
  }
  return {};
}

namespace {

/// Short human signature of a warm group (for the grouping log).
std::string group_signature(const SimConfig& cfg) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s %s warmup %llu @ load %.3g",
                std::string(to_string(cfg.design)).c_str(),
                std::string(to_string(cfg.routing)).c_str(),
                std::string(to_string(cfg.pattern)).c_str(),
                static_cast<unsigned long long>(cfg.warmup_cycles),
                cfg.warmup_load);
  return buf;
}

std::vector<RunStats> sweep_warm(const std::string& exp_name,
                                 const std::vector<SimConfig>& configs,
                                 unsigned threads, std::size_t& groups_out) {
  WarmSweepReport report;
  auto stats = run_warm_sweep(configs, report, threads);
  groups_out = report.groups.size();
  if (!report.groups.empty()) {
    std::fprintf(stderr,
                 "dxbar_bench: %s: warm-sweep formed %zu group(s) over %zu "
                 "points (%zu warm, %zu cold)\n",
                 exp_name.c_str(), report.groups.size(), configs.size(),
                 report.warm_points(), report.cold_points);
    for (std::size_t g = 0; g < report.groups.size(); ++g) {
      std::fprintf(
          stderr, "dxbar_bench: %s:   group %zu: %zu point(s), %s\n",
          exp_name.c_str(), g, report.groups[g].size(),
          group_signature(configs[report.groups[g].front()]).c_str());
    }
  }
  return stats;
}

std::vector<RunStats> sweep_campaign(const std::string& exp_name,
                                     const std::vector<SimConfig>& configs,
                                     const std::string& resume_root) {
  namespace fs = std::filesystem;
  const std::string dir = resume_root + "/" + exp_name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "dxbar_bench: cannot create campaign dir %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    std::exit(1);
  }
  Campaign campaign(configs, dir);
  const CampaignStatus before = campaign.status();
  std::fprintf(stderr,
               "dxbar_bench: %s: campaign of %zu point(s) in %s, %zu "
               "already complete\n",
               exp_name.c_str(), before.total, dir.c_str(), before.completed);
  const CampaignStatus after = campaign.run();
  if (!after.finished) {
    std::fprintf(stderr, "dxbar_bench: %s: campaign incomplete (%zu/%zu)\n",
                 exp_name.c_str(), after.completed, after.total);
    std::exit(1);
  }
  std::vector<RunStats> stats;
  stats.reserve(configs.size());
  for (const auto& r : campaign.results()) stats.push_back(*r);
  return stats;
}

}  // namespace

std::string select_experiments(const BenchArgs& args,
                               std::vector<const Experiment*>& out) {
  out.clear();
  const auto add = [&](const Experiment* e) {
    for (const Experiment* have : out) {
      if (have == e) return;
    }
    out.push_back(e);
  };
  if (args.all) {
    for (const Experiment* e : Registry::instance().all()) add(e);
  }
  if (!args.filter.empty()) {
    bool matched = false;
    for (const Experiment* e : Registry::instance().all()) {
      if (glob_match(args.filter, e->name)) {
        add(e);
        matched = true;
      }
    }
    if (!matched) {
      std::string err = "--filter '" + args.filter +
                        "' matches no registered experiment; registered:";
      for (const Experiment* e : Registry::instance().all()) {
        err += "\n  " + e->name;
      }
      return err;
    }
  }
  for (const std::string& name : args.experiments) {
    const Experiment* e = Registry::instance().find(name);
    if (e == nullptr) {
      return "unknown experiment '" + name + "' (see --list)";
    }
    add(e);
  }
  return {};
}

namespace {

/// Per-design simulation rates from the committed perf-kernel baseline.
struct KernelBaseline {
  std::vector<std::pair<std::string, double>> rates;  ///< name -> cycles/sec
  double slowest = 0.0;
  std::string source;  ///< empty = no baseline found
};

KernelBaseline load_kernel_baseline() {
  KernelBaseline kb;
  for (const char* path :
       {"BENCH_kernel.json", DXBAR_SOURCE_DIR "/BENCH_kernel.json"}) {
    std::ifstream in(path);
    if (!in) continue;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue root;
    if (!json_parse(text, root).empty() ||
        root.type != JsonValue::Type::Object) {
      continue;
    }
    const JsonValue* results = root.find("results");
    if (results == nullptr || results->type != JsonValue::Type::Array) {
      continue;
    }
    for (const JsonValue& item : results->items) {
      if (item.type != JsonValue::Type::Object) continue;
      const JsonValue* name = item.find("name");
      const JsonValue* rate = item.find("cycles_per_sec");
      if (name == nullptr || rate == nullptr ||
          name->type != JsonValue::Type::String) {
        continue;
      }
      const double r = rate->as_double();
      if (r > 0.0) kb.rates.emplace_back(name->scalar, r);
    }
    if (!kb.rates.empty()) {
      kb.source = path;
      kb.slowest = kb.rates.front().second;
      for (const auto& [n, r] : kb.rates) kb.slowest = std::min(kb.slowest, r);
      break;
    }
  }
  return kb;
}

/// Baseline rate for a design.  The kernel file abbreviates some names
/// ("Unified" for "Unified Xbar"), so a whole-word prefix also matches;
/// designs the baseline never measured fall back to the slowest rate
/// (a conservative ETA).
double rate_for(const KernelBaseline& kb, RouterDesign d) {
  const std::string label(to_string(d));
  for (const auto& [name, rate] : kb.rates) {
    if (name == label) return rate;
    if (label.size() > name.size() &&
        label.compare(0, name.size(), name) == 0 &&
        label[name.size()] == ' ') {
      return rate;
    }
  }
  return kb.slowest;
}

std::string fmt_eta(double seconds) {
  char buf[32];
  if (seconds >= 90.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

}  // namespace

void print_preflight(const std::vector<const Experiment*>& to_run,
                     const RunOptions& opt) {
  const KernelBaseline kb = load_kernel_baseline();
  RunContext ctx;
  ctx.base = opt.base;
  ctx.quick = opt.quick;
  ctx.threads = opt.threads;

  unsigned workers =
      opt.threads != 0 ? opt.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  std::fprintf(stderr, "dxbar_bench: preflight: %zu experiment(s), %u "
                       "worker(s)%s\n",
               to_run.size(), workers,
               kb.source.empty()
                   ? "; no BENCH_kernel.json baseline, point counts only"
                   : ("; ETA from " + kb.source).c_str());
  double total_sec = 0.0;
  unsigned long long total_points = 0, total_cycles = 0;
  for (const Experiment* e : to_run) {
    if (!e->grid) {
      std::fprintf(stderr, "dxbar_bench:   %-24s custom run (no estimate)\n",
                   e->name.c_str());
      continue;
    }
    const std::vector<SimConfig> cfgs = e->grid(ctx);
    unsigned long long cycles = 0;
    double sec = 0.0;
    for (const SimConfig& c : cfgs) {
      const unsigned long long pt = c.warmup_cycles + c.measure_cycles;
      cycles += pt;
      if (!kb.source.empty()) {
        sec += static_cast<double>(pt) / rate_for(kb, c.design);
      }
    }
    sec /= workers;
    total_points += cfgs.size();
    total_cycles += cycles;
    total_sec += sec;
    if (kb.source.empty()) {
      std::fprintf(stderr,
                   "dxbar_bench:   %-24s %4zu points, %8llu cycles\n",
                   e->name.c_str(), cfgs.size(), cycles);
    } else {
      std::fprintf(stderr,
                   "dxbar_bench:   %-24s %4zu points, %8llu cycles, "
                   "ETA %s\n",
                   e->name.c_str(), cfgs.size(), cycles,
                   fmt_eta(sec).c_str());
    }
  }
  if (kb.source.empty()) {
    std::fprintf(stderr,
                 "dxbar_bench: preflight total: %llu points, %llu cycles\n",
                 total_points, total_cycles);
  } else {
    std::fprintf(stderr,
                 "dxbar_bench: preflight total: %llu points, %llu cycles, "
                 "ETA %s (upper bound; warm-start sharing and drain slack "
                 "reduce it)\n",
                 total_points, total_cycles, fmt_eta(total_sec).c_str());
  }
}

ExperimentResult execute(const Experiment& exp, const RunOptions& opt) {
  RunContext ctx;
  ctx.base = opt.base;
  ctx.quick = opt.quick;
  ctx.threads = opt.threads;

  ExperimentResult result;
  std::size_t warm_groups = 0;
  const bool campaign_mode = !opt.resume_dir.empty();
  ctx.sweep = [&](const std::vector<SimConfig>& configs) {
    if (campaign_mode) {
      return sweep_campaign(exp.name, configs, opt.resume_dir);
    }
    return sweep_warm(exp.name, configs, opt.threads, warm_groups);
  };

  if (exp.grid) {
    const std::vector<SimConfig> configs = exp.grid(ctx);
    const std::vector<RunStats> stats = ctx.sweep(configs);
    result = exp.reduce(ctx, stats);
    result.grid = configs;
    result.grid_stats = stats;
    result.executor = campaign_mode ? "campaign" : "warm_sweep";
  } else {
    if (campaign_mode) {
      std::fprintf(stderr,
                   "dxbar_bench: %s: not an open-loop grid experiment; "
                   "--resume has no effect\n",
                   exp.name.c_str());
    }
    result = exp.run(ctx);
    result.executor = "custom";
  }
  result.warm_groups = warm_groups;
  return result;
}

void print_result(const ExperimentResult& result) {
  for (const Block& b : result.blocks) {
    if (b.kind == Block::Kind::Text) {
      std::fputs(b.text.c_str(), stdout);
      continue;
    }
    const Table& t = b.table;
    std::printf("\n%s\n", t.title.c_str());
    std::printf("%-10s", t.x_label.c_str());
    for (const auto& s : t.series_labels) std::printf(" %12s", s.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < t.x.size(); ++r) {
      std::printf("%-10s", t.x[r].c_str());
      for (std::size_t c = 0; c < t.series_labels.size(); ++c) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), t.fmt.c_str(), t.values[c][r]);
        std::printf(" %12s", buf);
      }
      std::printf("\n");
    }
  }
}

namespace {

std::string slug_of(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 60) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

bool ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "dxbar_bench: cannot create directory %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

}  // namespace

bool write_csv_tables(const Experiment& exp, const ExperimentResult& result,
                      const std::string& csv_dir,
                      std::vector<std::string>& used_names) {
  if (!ensure_dir(csv_dir)) return false;
  bool ok = true;
  for (const Block& b : result.blocks) {
    if (b.kind != Block::Kind::Table) continue;
    const Table& t = b.table;
    // Prefix the experiment name and disambiguate against every file
    // written this session: two tables may share a 60-char title slug,
    // but they must never overwrite each other.
    std::string name = exp.name + "_" + slug_of(t.title);
    std::string candidate = name;
    for (int n = 2;
         std::find(used_names.begin(), used_names.end(), candidate) !=
         used_names.end();
         ++n) {
      candidate = name + "_" + std::to_string(n);
    }
    used_names.push_back(candidate);

    const std::string path = csv_dir + "/" + candidate + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "dxbar_bench: cannot open %s for writing\n",
                   path.c_str());
      ok = false;
      continue;
    }
    out << t.x_label;
    for (const auto& s : t.series_labels) out << ',' << s;
    out << '\n';
    for (std::size_t r = 0; r < t.x.size(); ++r) {
      out << t.x[r];
      for (std::size_t c = 0; c < t.series_labels.size(); ++c) {
        out << ',' << t.values[c][r];
      }
      out << '\n';
    }
    if (!out.flush()) {
      std::fprintf(stderr, "dxbar_bench: failed writing %s\n", path.c_str());
      ok = false;
    }
  }
  return ok;
}

report::ResultDoc result_doc(const Experiment& exp,
                             const ExperimentResult& result,
                             const RunOptions& opt) {
  report::ResultDoc doc;
  doc.schema_version = kJsonSchemaVersion;
  doc.experiment = exp.name;
  doc.title = exp.title;
  doc.git_describe = std::string(git_describe());
  doc.quick = opt.quick;
  doc.executor = result.executor;
  doc.warm_groups = result.warm_groups;
  doc.overrides = opt.overrides;
  doc.base_config = opt.base;
  for (const Block& b : result.blocks) {
    if (b.kind == Block::Kind::Text) {
      doc.notes += b.text;
      continue;
    }
    const Table& t = b.table;
    report::TableDoc td;
    td.title = t.title;
    td.x_label = t.x_label;
    td.x = t.x;
    for (std::size_t s = 0; s < t.series_labels.size(); ++s) {
      td.series.push_back({t.series_labels[s], t.values[s]});
    }
    doc.tables.push_back(std::move(td));
  }
  for (std::size_t i = 0; i < result.grid.size(); ++i) {
    doc.points.push_back({result.grid[i], result.grid_stats[i]});
  }
  return doc;
}

bool write_json_result(const Experiment& exp, const ExperimentResult& result,
                       const RunOptions& opt) {
  if (!ensure_dir(opt.json_dir)) return false;

  const std::string path = opt.json_dir + "/" + exp.name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "dxbar_bench: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << report::to_json(result_doc(exp, result, opt));
  if (!out.flush()) {
    std::fprintf(stderr, "dxbar_bench: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace dxbar::exp
