#include "exp/runner.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <iterator>
#include <thread>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"
#include "report/analysis.hpp"
#include "sim/campaign.hpp"
#include "sim/replica_batch.hpp"
#include "sim/sweep.hpp"

#ifndef DXBAR_GIT_DESCRIBE
#define DXBAR_GIT_DESCRIBE "unknown"
#endif
#ifndef DXBAR_SOURCE_DIR
#define DXBAR_SOURCE_DIR "."
#endif

namespace dxbar::exp {

std::string_view git_describe() { return DXBAR_GIT_DESCRIBE; }

BenchArgs parse_bench_args(std::span<const char* const> args) {
  BenchArgs out;
  auto need_value = [&](std::size_t& i, const char* flag,
                        std::string& dst) -> bool {
    if (i + 1 >= args.size()) {
      out.error = std::string(flag) + " requires a value";
      return false;
    }
    dst = args[++i];
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char* a = args[i];
    if (std::strcmp(a, "--list") == 0) {
      out.list = true;
    } else if (std::strcmp(a, "--all") == 0) {
      out.all = true;
    } else if (std::strcmp(a, "--quick") == 0) {
      out.quick = true;
    } else if (std::strcmp(a, "--csv") == 0) {
      if (!need_value(i, "--csv", out.csv_dir)) return out;
    } else if (std::strcmp(a, "--json") == 0) {
      if (!need_value(i, "--json", out.json_dir)) return out;
    } else if (std::strcmp(a, "--resume") == 0) {
      if (!need_value(i, "--resume", out.resume_dir)) return out;
    } else if (std::strcmp(a, "--filter") == 0) {
      if (!need_value(i, "--filter", out.filter)) return out;
    } else if (std::strcmp(a, "--threads") == 0) {
      std::string v;
      if (!need_value(i, "--threads", v)) return out;
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end != v.c_str() + v.size()) {
        out.error = "bad --threads value '" + v + "'";
        return out;
      }
      out.threads = static_cast<unsigned>(n);
    } else if (std::strcmp(a, "--seeds") == 0) {
      std::string v;
      if (!need_value(i, "--seeds", v)) return out;
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (end != v.c_str() + v.size() || n < 1) {
        out.error = "bad --seeds value '" + v + "' (want an integer >= 1)";
        return out;
      }
      out.seeds = static_cast<int>(n);
    } else if (std::strchr(a, '=') != nullptr) {
      out.overrides.emplace_back(a);
    } else if (a[0] == '-') {
      out.error = "unknown option '" + std::string(a) + "'";
      return out;
    } else {
      out.experiments.emplace_back(a);
    }
  }
  return out;
}

std::string make_base_config(const BenchArgs& args, SimConfig& out) {
  out = SimConfig{};
  out.warmup_cycles = 1000;
  out.measure_cycles = 4000;
  out.drain_cycles = 6000;
  if (args.quick) {
    out.warmup_cycles = 300;
    out.measure_cycles = 1200;
    out.drain_cycles = 2000;
  }
  // Overrides are applied after the quick defaults so an explicit
  // `warmup_cycles=...` on the command line wins regardless of where it
  // appeared relative to --quick.
  for (const std::string& o : args.overrides) {
    if (const auto err = apply_override(out, o); !err.empty()) return err;
  }
  // Validate here, once, so every experiment — including custom `run`
  // ones that never construct a Network — rejects a bad base config
  // (e.g. tech=99) with a clean error instead of deriving from a
  // silently-defaulted value.
  return out.validate();
}

namespace {

/// Short human signature of a warm group (for the grouping log).
std::string group_signature(const SimConfig& cfg) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s %s warmup %llu @ load %.3g",
                std::string(to_string(cfg.design)).c_str(),
                std::string(to_string(cfg.routing)).c_str(),
                std::string(to_string(cfg.pattern)).c_str(),
                static_cast<unsigned long long>(cfg.warmup_cycles),
                cfg.warmup_load);
  return buf;
}

std::vector<RunStats> sweep_warm(const std::string& exp_name,
                                 const std::vector<SimConfig>& configs,
                                 unsigned threads, WarmupCache* cache,
                                 std::size_t& groups_out) {
  ReplicaSweepReport rep;
  auto stats = run_replica_sweep(configs, threads, cache, &rep);
  const WarmSweepReport& report = rep.warm;
  groups_out = report.groups.size();
  if (!report.groups.empty()) {
    std::fprintf(stderr,
                 "dxbar_bench: %s: warm-sweep formed %zu group(s) over %zu "
                 "points (%zu warm, %zu cold)\n",
                 exp_name.c_str(), report.groups.size(), configs.size(),
                 report.warm_points(), report.cold_points);
    for (std::size_t g = 0; g < report.groups.size(); ++g) {
      std::fprintf(
          stderr, "dxbar_bench: %s:   group %zu: %zu point(s), %s\n",
          exp_name.c_str(), g, report.groups[g].size(),
          group_signature(configs[report.groups[g].front()]).c_str());
    }
    std::fprintf(stderr,
                 "dxbar_bench: %s: %zu lockstep batch(es), widest %zu "
                 "lane(s)\n",
                 exp_name.c_str(), rep.batches, rep.max_lanes);
  }
  if (cache != nullptr && rep.cache_hits + rep.cache_misses > 0) {
    std::fprintf(stderr,
                 "dxbar_bench: %s: warm cache: %zu hit(s), %zu miss(es)\n",
                 exp_name.c_str(), rep.cache_hits, rep.cache_misses);
  }
  return stats;
}

std::vector<RunStats> sweep_campaign(const std::string& exp_name,
                                     const std::vector<SimConfig>& configs,
                                     const std::string& resume_root) {
  namespace fs = std::filesystem;
  const std::string dir = resume_root + "/" + exp_name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "dxbar_bench: cannot create campaign dir %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    std::exit(1);
  }
  Campaign campaign(configs, dir);
  const CampaignStatus before = campaign.status();
  std::fprintf(stderr,
               "dxbar_bench: %s: campaign of %zu point(s) in %s, %zu "
               "already complete\n",
               exp_name.c_str(), before.total, dir.c_str(), before.completed);
  const CampaignStatus after = campaign.run();
  if (!after.finished) {
    std::fprintf(stderr, "dxbar_bench: %s: campaign incomplete (%zu/%zu)\n",
                 exp_name.c_str(), after.completed, after.total);
    std::exit(1);
  }
  std::vector<RunStats> stats;
  stats.reserve(configs.size());
  for (const auto& r : campaign.results()) stats.push_back(*r);
  return stats;
}

}  // namespace

std::string select_experiments(const BenchArgs& args,
                               std::vector<const Experiment*>& out) {
  out.clear();
  const auto add = [&](const Experiment* e) {
    for (const Experiment* have : out) {
      if (have == e) return;
    }
    out.push_back(e);
  };
  if (args.all) {
    for (const Experiment* e : Registry::instance().all()) add(e);
  }
  if (!args.filter.empty()) {
    bool matched = false;
    for (const Experiment* e : Registry::instance().all()) {
      if (glob_match(args.filter, e->name)) {
        add(e);
        matched = true;
      }
    }
    if (!matched) {
      std::string err = "--filter '" + args.filter +
                        "' matches no registered experiment; registered:";
      for (const Experiment* e : Registry::instance().all()) {
        err += "\n  " + e->name;
      }
      return err;
    }
  }
  for (const std::string& name : args.experiments) {
    const Experiment* e = Registry::instance().find(name);
    if (e == nullptr) {
      return "unknown experiment '" + name + "' (see --list)";
    }
    add(e);
  }
  return {};
}

namespace {

/// Per-design simulation rates from the committed perf-kernel baseline.
struct KernelBaseline {
  std::vector<std::pair<std::string, double>> rates;  ///< name -> cycles/sec
  double slowest = 0.0;
  std::string source;  ///< empty = no baseline found
  // The baseline's recorded measurement config (empty / negative when
  // the file predates the config block) — checked against the session
  // so a stale or mismatched baseline is called out rather than
  // silently producing off-scale ETAs.
  std::string mesh;
  double offered_load = -1.0;
};

KernelBaseline load_kernel_baseline() {
  KernelBaseline kb;
  for (const char* path :
       {"BENCH_kernel.json", DXBAR_SOURCE_DIR "/BENCH_kernel.json"}) {
    std::ifstream in(path);
    if (!in) continue;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue root;
    if (!json_parse(text, root).empty() ||
        root.type != JsonValue::Type::Object) {
      continue;
    }
    const JsonValue* results = root.find("results");
    if (results == nullptr || results->type != JsonValue::Type::Array) {
      continue;
    }
    for (const JsonValue& item : results->items) {
      if (item.type != JsonValue::Type::Object) continue;
      const JsonValue* name = item.find("name");
      const JsonValue* rate = item.find("cycles_per_sec");
      if (name == nullptr || rate == nullptr ||
          name->type != JsonValue::Type::String) {
        continue;
      }
      const double r = rate->as_double();
      if (r > 0.0) kb.rates.emplace_back(name->scalar, r);
    }
    if (!kb.rates.empty()) {
      kb.source = path;
      kb.slowest = kb.rates.front().second;
      for (const auto& [n, r] : kb.rates) kb.slowest = std::min(kb.slowest, r);
      if (const JsonValue* config = root.find("config");
          config != nullptr && config->type == JsonValue::Type::Object) {
        if (const JsonValue* mesh = config->find("mesh");
            mesh != nullptr && mesh->type == JsonValue::Type::String) {
          kb.mesh = mesh->scalar;
        }
        if (const JsonValue* load = config->find("offered_load");
            load != nullptr) {
          kb.offered_load = load->as_double();
        }
      }
      break;
    }
  }
  return kb;
}

/// Baseline rate for a design, or nullptr when the baseline never
/// measured it.  The kernel file abbreviates some names ("Unified" for
/// "Unified Xbar"), so a whole-word prefix also matches.
const double* find_rate(const KernelBaseline& kb, RouterDesign d) {
  const std::string label(to_string(d));
  for (const auto& [name, rate] : kb.rates) {
    if (name == label) return &rate;
    if (label.size() > name.size() &&
        label.compare(0, name.size(), name) == 0 &&
        label[name.size()] == ' ') {
      return &rate;
    }
  }
  return nullptr;
}

/// find_rate with the slowest measured design as the conservative ETA
/// fallback for unmeasured ones.
double rate_for(const KernelBaseline& kb, RouterDesign d) {
  const double* r = find_rate(kb, d);
  return r != nullptr ? *r : kb.slowest;
}

std::string fmt_eta(double seconds) {
  char buf[32];
  if (seconds >= 90.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

}  // namespace

void print_preflight(const std::vector<const Experiment*>& to_run,
                     const RunOptions& opt) {
  const KernelBaseline kb = load_kernel_baseline();
  RunContext ctx;
  ctx.base = opt.base;
  ctx.quick = opt.quick;
  ctx.threads = opt.threads;

  unsigned workers =
      opt.threads != 0 ? opt.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  std::fprintf(stderr, "dxbar_bench: preflight: %zu experiment(s), %u "
                       "worker(s)%s\n",
               to_run.size(), workers,
               kb.source.empty()
                   ? "; no BENCH_kernel.json baseline, point counts only"
                   : ("; ETA from " + kb.source).c_str());
  if (kb.source.empty()) {
    std::fprintf(stderr,
                 "dxbar_bench: warning: BENCH_kernel.json not found in . or "
                 "%s — run bench/perf_kernel to record per-design rates and "
                 "get ETAs\n",
                 DXBAR_SOURCE_DIR);
  } else {
    // A baseline recorded under a different measurement config still
    // yields an ETA, but an off-scale one; say so up front instead of
    // letting a stale file mislead silently.
    char mesh[32];
    std::snprintf(mesh, sizeof(mesh), "%dx%d", opt.base.mesh_width,
                  opt.base.mesh_height);
    if (!kb.mesh.empty() && kb.mesh != mesh) {
      std::fprintf(stderr,
                   "dxbar_bench: warning: %s rates were measured on a %s "
                   "mesh but this session's base config is %s — ETAs scale "
                   "with mesh size and may be off\n",
                   kb.source.c_str(), kb.mesh.c_str(), mesh);
    }
    if (kb.offered_load >= 0.0 &&
        std::fabs(kb.offered_load - opt.base.offered_load) > 1e-9) {
      std::fprintf(stderr,
                   "dxbar_bench: warning: %s rates were measured at offered "
                   "load %.3g but this session's base config injects %.3g — "
                   "ETAs may be off\n",
                   kb.source.c_str(), kb.offered_load,
                   opt.base.offered_load);
    }
  }
  const unsigned long long seeds =
      static_cast<unsigned long long>(std::max(1, opt.seeds));
  double total_sec = 0.0;
  unsigned long long total_points = 0, total_cycles = 0;
  std::vector<std::string> unmeasured;
  for (const Experiment* e : to_run) {
    if (!e->grid) {
      std::fprintf(stderr, "dxbar_bench:   %-24s custom run (no estimate)\n",
                   e->name.c_str());
      continue;
    }
    const std::vector<SimConfig> cfgs = e->grid(ctx);
    unsigned long long cycles = 0;
    double sec = 0.0;
    for (const SimConfig& c : cfgs) {
      // Replicas share one warmup (replica engine), so --seeds N costs
      // one warmup plus N measurement windows per point.
      const unsigned long long pt =
          c.warmup_cycles + seeds * c.measure_cycles;
      cycles += pt;
      if (!kb.source.empty()) {
        sec += static_cast<double>(pt) / rate_for(kb, c.design);
        if (find_rate(kb, c.design) == nullptr) {
          const std::string label(to_string(c.design));
          if (std::find(unmeasured.begin(), unmeasured.end(), label) ==
              unmeasured.end()) {
            unmeasured.push_back(label);
          }
        }
      }
    }
    sec /= workers;
    total_points += cfgs.size() * seeds;
    total_cycles += cycles;
    total_sec += sec;
    if (kb.source.empty()) {
      std::fprintf(stderr,
                   "dxbar_bench:   %-24s %4zu points, %8llu cycles\n",
                   e->name.c_str(),
                   static_cast<std::size_t>(cfgs.size() * seeds), cycles);
    } else {
      std::fprintf(stderr,
                   "dxbar_bench:   %-24s %4zu points, %8llu cycles, "
                   "ETA %s\n",
                   e->name.c_str(),
                   static_cast<std::size_t>(cfgs.size() * seeds), cycles,
                   fmt_eta(sec).c_str());
    }
  }
  if (!unmeasured.empty()) {
    std::string names;
    for (const std::string& n : unmeasured) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    std::fprintf(stderr,
                 "dxbar_bench: warning: %s has no rate for: %s — their ETAs "
                 "use the slowest measured design\n",
                 kb.source.c_str(), names.c_str());
  }
  if (kb.source.empty()) {
    std::fprintf(stderr,
                 "dxbar_bench: preflight total: %llu points, %llu cycles\n",
                 total_points, total_cycles);
  } else {
    std::fprintf(stderr,
                 "dxbar_bench: preflight total: %llu points, %llu cycles, "
                 "ETA %s (upper bound; warm-start sharing and drain slack "
                 "reduce it)\n",
                 total_points, total_cycles, fmt_eta(total_sec).c_str());
  }
}

namespace {

/// Measurement seed for replica `rep` of one grid point.  Replica 0
/// keeps the config untouched (measure_seed as authored — usually 0,
/// the classic single-stream run); later replicas draw independent
/// streams from a SplitMix64 seeded by the point's own seeds, so
/// identical grid points replicate identically across sessions.
/// Nonzero by construction — zero would disable the boundary reseed.
std::uint64_t replica_measure_seed(const SimConfig& cfg, int rep) {
  SplitMix64 sm(cfg.seed ^ cfg.measure_seed);
  std::uint64_t s = 0;
  for (int r = 0; r < rep; ++r) s = sm.next();
  return s != 0 ? s : 1;
}

/// True when every replica reduced to the same block structure (same
/// table layouts).  Reducers derive tables from the grid, which is
/// identical across replicas, so a mismatch means a reducer let stats
/// leak into table *shape* — combining would misalign cells.
bool replica_results_compatible(const std::vector<ExperimentResult>& reps) {
  const auto& base = reps.front().blocks;
  for (const ExperimentResult& r : reps) {
    if (r.blocks.size() != base.size()) return false;
    for (std::size_t b = 0; b < base.size(); ++b) {
      if (r.blocks[b].kind != base[b].kind) return false;
      if (base[b].kind != Block::Kind::Table) continue;
      const Table& t0 = base[b].table;
      const Table& t = r.blocks[b].table;
      if (t.x != t0.x || t.series_labels != t0.series_labels) return false;
    }
  }
  return true;
}

}  // namespace

/// Folds N per-replica reductions into one result: every table cell
/// becomes the across-replica mean and each table gains one appended
/// "<series> ±ci95" column per original series (95% confidence
/// halfwidths).  Text blocks and table layout come from replica 0.
ExperimentResult combine_replica_results(const std::string& exp_name,
                                         std::vector<ExperimentResult> reps) {
  if (!replica_results_compatible(reps)) {
    std::fprintf(stderr,
                 "dxbar_bench: %s: replicas reduced to different table "
                 "shapes; reporting replica 0 only\n",
                 exp_name.c_str());
    return std::move(reps.front());
  }
  const int n = static_cast<int>(reps.size());
  int exit_code = 0;
  for (const ExperimentResult& r : reps) {
    exit_code = std::max(exit_code, r.exit_code);
  }
  ExperimentResult out = std::move(reps.front());
  out.exit_code = exit_code;

  std::vector<double> sample(static_cast<std::size_t>(n));
  for (std::size_t b = 0; b < out.blocks.size(); ++b) {
    if (out.blocks[b].kind != Block::Kind::Table) continue;
    Table& t = out.blocks[b].table;
    const std::size_t n_series = t.series_labels.size();
    std::vector<std::vector<double>> ci(
        n_series, std::vector<double>(t.x.size(), 0.0));
    for (std::size_t s = 0; s < n_series; ++s) {
      for (std::size_t row = 0; row < t.x.size(); ++row) {
        sample[0] = t.values[s][row];  // replica 0 was moved into `out`
        for (int rep = 1; rep < n; ++rep) {
          sample[static_cast<std::size_t>(rep)] =
              reps[static_cast<std::size_t>(rep)].blocks[b].table.values[s]
                  [row];
        }
        const MeanCi mc = mean_ci95(sample);
        t.values[s][row] = mc.mean;
        ci[s][row] = mc.ci95;
      }
    }
    for (std::size_t s = 0; s < n_series; ++s) {
      t.series_labels.push_back(t.series_labels[s] +
                                std::string(report::kCiSuffix));
      t.values.push_back(std::move(ci[s]));
    }
  }

  Block note;
  note.kind = Block::Kind::Text;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "(replicated over %d seeds: table cells are means, ±ci95 "
                "columns are 95%% confidence halfwidths; text summaries "
                "describe replica 0)\n",
                n);
  note.text = buf;
  out.blocks.insert(out.blocks.begin(), std::move(note));
  return out;
}

ExperimentResult execute(const Experiment& exp, const RunOptions& opt) {
  RunContext ctx;
  ctx.base = opt.base;
  ctx.quick = opt.quick;
  ctx.threads = opt.threads;

  ExperimentResult result;
  std::size_t warm_groups = 0;
  const bool campaign_mode = !opt.resume_dir.empty();
  ctx.sweep = [&](const std::vector<SimConfig>& configs) {
    if (campaign_mode) {
      return sweep_campaign(exp.name, configs, opt.resume_dir);
    }
    return sweep_warm(exp.name, configs, opt.threads, opt.warm_cache,
                      warm_groups);
  };

  if (exp.grid) {
    const std::vector<SimConfig> base_grid = exp.grid(ctx);
    const int seeds = std::max(1, opt.seeds);
    // Rep-major expansion: [rep0: all points][rep1: all points]... so
    // each replica slice is structurally identical to the base grid and
    // can be fed to the reducer unchanged.  The replica engine groups
    // the copies of each point into one shared-warmup lockstep batch.
    std::vector<SimConfig> configs = base_grid;
    if (seeds > 1) {
      configs.reserve(base_grid.size() * static_cast<std::size_t>(seeds));
      for (int rep = 1; rep < seeds; ++rep) {
        for (SimConfig cfg : base_grid) {
          cfg.measure_seed = replica_measure_seed(cfg, rep);
          configs.push_back(cfg);
        }
      }
    }
    const std::vector<RunStats> stats = ctx.sweep(configs);
    if (seeds > 1 && exp.combine) {
      // The experiment owns replica folding (e.g. pooling latency
      // histograms across replicas before taking order statistics).
      result = exp.combine(ctx, stats, seeds);
    } else if (seeds > 1) {
      const std::size_t pts = base_grid.size();
      std::vector<ExperimentResult> reps;
      reps.reserve(static_cast<std::size_t>(seeds));
      for (int rep = 0; rep < seeds; ++rep) {
        const auto begin =
            stats.begin() +
            static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rep) * pts);
        reps.push_back(exp.reduce(
            ctx, std::vector<RunStats>(
                     begin, begin + static_cast<std::ptrdiff_t>(pts))));
      }
      result = combine_replica_results(exp.name, std::move(reps));
    } else {
      result = exp.reduce(ctx, stats);
    }
    result.grid = std::move(configs);
    result.grid_stats = stats;
    result.executor = campaign_mode ? "campaign" : "warm_sweep";
  } else {
    if (campaign_mode) {
      if (exp.custom_resume) {
        ctx.resume_dir = opt.resume_dir;
      } else {
        std::fprintf(stderr,
                     "dxbar_bench: %s: not an open-loop grid experiment; "
                     "--resume has no effect\n",
                     exp.name.c_str());
      }
    }
    if (opt.seeds > 1) {
      std::fprintf(stderr,
                   "dxbar_bench: %s: not an open-loop grid experiment; "
                   "--seeds has no effect\n",
                   exp.name.c_str());
    }
    result = exp.run(ctx);
    result.executor = "custom";
  }
  result.warm_groups = warm_groups;
  return result;
}

void print_result(const ExperimentResult& result) {
  for (const Block& b : result.blocks) {
    if (b.kind == Block::Kind::Text) {
      std::fputs(b.text.c_str(), stdout);
      continue;
    }
    const Table& t = b.table;
    std::printf("\n%s\n", t.title.c_str());
    std::printf("%-10s", t.x_label.c_str());
    for (const auto& s : t.series_labels) std::printf(" %12s", s.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < t.x.size(); ++r) {
      std::printf("%-10s", t.x[r].c_str());
      for (std::size_t c = 0; c < t.series_labels.size(); ++c) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), t.fmt.c_str(), t.values[c][r]);
        std::printf(" %12s", buf);
      }
      std::printf("\n");
    }
  }
}

namespace {

std::string slug_of(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 60) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

bool ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "dxbar_bench: cannot create directory %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

}  // namespace

bool write_csv_tables(const Experiment& exp, const ExperimentResult& result,
                      const std::string& csv_dir,
                      std::vector<std::string>& used_names) {
  if (!ensure_dir(csv_dir)) return false;
  bool ok = true;
  for (const Block& b : result.blocks) {
    if (b.kind != Block::Kind::Table) continue;
    const Table& t = b.table;
    // Prefix the experiment name and disambiguate against every file
    // written this session: two tables may share a 60-char title slug,
    // but they must never overwrite each other.
    std::string name = exp.name + "_" + slug_of(t.title);
    std::string candidate = name;
    for (int n = 2;
         std::find(used_names.begin(), used_names.end(), candidate) !=
         used_names.end();
         ++n) {
      candidate = name + "_" + std::to_string(n);
    }
    used_names.push_back(candidate);

    const std::string path = csv_dir + "/" + candidate + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "dxbar_bench: cannot open %s for writing\n",
                   path.c_str());
      ok = false;
      continue;
    }
    out << t.x_label;
    for (const auto& s : t.series_labels) out << ',' << s;
    out << '\n';
    for (std::size_t r = 0; r < t.x.size(); ++r) {
      out << t.x[r];
      for (std::size_t c = 0; c < t.series_labels.size(); ++c) {
        out << ',' << t.values[c][r];
      }
      out << '\n';
    }
    if (!out.flush()) {
      std::fprintf(stderr, "dxbar_bench: failed writing %s\n", path.c_str());
      ok = false;
    }
  }
  return ok;
}

report::ResultDoc result_doc(const Experiment& exp,
                             const ExperimentResult& result,
                             const RunOptions& opt) {
  report::ResultDoc doc;
  doc.schema_version = kJsonSchemaVersion;
  doc.experiment = exp.name;
  doc.title = exp.title;
  doc.git_describe = std::string(git_describe());
  doc.quick = opt.quick;
  doc.executor = result.executor;
  doc.warm_groups = result.warm_groups;
  doc.overrides = opt.overrides;
  doc.base_config = opt.base;
  for (const Block& b : result.blocks) {
    if (b.kind == Block::Kind::Text) {
      doc.notes += b.text;
      continue;
    }
    const Table& t = b.table;
    report::TableDoc td;
    td.title = t.title;
    td.x_label = t.x_label;
    td.x = t.x;
    for (std::size_t s = 0; s < t.series_labels.size(); ++s) {
      td.series.push_back({t.series_labels[s], t.values[s]});
    }
    doc.tables.push_back(std::move(td));
  }
  for (std::size_t i = 0; i < result.grid.size(); ++i) {
    doc.points.push_back({result.grid[i], result.grid_stats[i]});
  }
  return doc;
}

bool write_json_result(const Experiment& exp, const ExperimentResult& result,
                       const RunOptions& opt) {
  if (!ensure_dir(opt.json_dir)) return false;

  const std::string path = opt.json_dir + "/" + exp.name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "dxbar_bench: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << report::to_json(result_doc(exp, result, opt));
  if (!out.flush()) {
    std::fprintf(stderr, "dxbar_bench: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace dxbar::exp
