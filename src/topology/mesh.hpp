// k-ary 2-mesh topology: node/coordinate mapping, neighbour lookup and
// link enumeration.  Pure geometry — no simulation state lives here.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "topology/coord.hpp"

namespace dxbar {

/// A directed link endpoint: the output `dir` of router `node`.
struct LinkId {
  NodeId node = kInvalidNode;
  Direction dir = Direction::Local;

  friend constexpr bool operator==(const LinkId&, const LinkId&) = default;
};

class Mesh {
 public:
  /// `wrap` turns the mesh into a torus: edge links wrap around and
  /// distances take the shorter way per dimension.
  Mesh(int width, int height, bool wrap = false);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int num_nodes() const noexcept { return width_ * height_; }
  [[nodiscard]] bool wraps() const noexcept { return wrap_; }

  /// Signed x-offset of the shortest route from `from` to `to`
  /// (positive = east); on a torus ties break eastward.
  [[nodiscard]] int offset_x(NodeId from, NodeId to) const noexcept {
    return axis_offset(coord(to).x - coord(from).x, width_);
  }

  /// Signed y-offset of the shortest route (positive = north).
  [[nodiscard]] int offset_y(NodeId from, NodeId to) const noexcept {
    return axis_offset(coord(to).y - coord(from).y, height_);
  }

  [[nodiscard]] Coord coord(NodeId n) const noexcept {
    return {static_cast<int>(n) % width_, static_cast<int>(n) / width_};
  }

  [[nodiscard]] NodeId node(Coord c) const noexcept {
    return static_cast<NodeId>(c.y * width_ + c.x);
  }

  [[nodiscard]] NodeId node(int x, int y) const noexcept {
    return node(Coord{x, y});
  }

  [[nodiscard]] bool contains(Coord c) const noexcept {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  /// The neighbour reached over output `dir`, or nullopt at a mesh edge.
  [[nodiscard]] std::optional<NodeId> neighbor(NodeId n, Direction dir) const;

  /// True when router `n` has a link in direction `dir`.
  [[nodiscard]] bool has_link(NodeId n, Direction dir) const {
    return neighbor(n, dir).has_value();
  }

  /// Hop distance under minimal routing (wrap-aware on a torus).
  [[nodiscard]] int distance(NodeId a, NodeId b) const noexcept {
    if (!wrap_) return manhattan(coord(a), coord(b));
    return std::abs(offset_x(a, b)) + std::abs(offset_y(a, b));
  }

  /// Every directed link in the mesh, deterministic order.
  [[nodiscard]] std::vector<LinkId> all_links() const;

  /// Average minimal hop count over all (src != dst) pairs — used for the
  /// uniform-random capacity normalisation.
  [[nodiscard]] double average_distance() const;

 private:
  /// Shortest signed offset along one axis of length `k` (torus-aware).
  [[nodiscard]] int axis_offset(int delta, int k) const noexcept {
    if (!wrap_) return delta;
    // Normalize into (-k/2, k/2]; ties (delta == k/2) go positive.
    int d = delta % k;
    if (d < 0) d += k;
    return d <= k / 2 ? d : d - k;
  }

  int width_;
  int height_;
  bool wrap_;
};

}  // namespace dxbar
