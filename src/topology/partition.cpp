#include "topology/partition.hpp"

#include <cassert>

namespace dxbar {

MeshPartition::MeshPartition(int width, int height,
                             std::vector<int> row_start)
    : width_(width), height_(height), row_start_(std::move(row_start)) {
  assert(row_start_.size() >= 2);
  assert(row_start_.front() == 0 && row_start_.back() == height_);
  shard_of_row_.resize(static_cast<std::size_t>(height_));
  for (int s = 0; s + 1 < static_cast<int>(row_start_.size()); ++s) {
    assert(row_start_[static_cast<std::size_t>(s)] <
           row_start_[static_cast<std::size_t>(s) + 1]);
    for (int y = row_start_[static_cast<std::size_t>(s)];
         y < row_start_[static_cast<std::size_t>(s) + 1]; ++y) {
      shard_of_row_[static_cast<std::size_t>(y)] = s;
    }
  }
}

MeshPartition MeshPartition::rows(const Mesh& mesh, int shards) {
  const int h = mesh.height();
  if (shards < 1) shards = 1;
  if (shards > h) shards = h;
  std::vector<int> starts(static_cast<std::size_t>(shards) + 1);
  for (int s = 0; s <= shards; ++s) {
    // Balanced split: the first (h % shards) strips get the extra row.
    starts[static_cast<std::size_t>(s)] =
        (s * h) / shards;
  }
  return MeshPartition(mesh.width(), h, std::move(starts));
}

MeshPartition MeshPartition::from_row_cuts(const Mesh& mesh,
                                           const std::vector<int>& cuts) {
  std::vector<int> starts;
  starts.reserve(cuts.size() + 2);
  starts.push_back(0);
  for (int c : cuts) {
    assert(c > 0 && c < mesh.height() && "cut row out of range");
    assert(c > starts.back() && "cut rows must be strictly increasing");
    starts.push_back(c);
  }
  starts.push_back(mesh.height());
  return MeshPartition(mesh.width(), mesh.height(), std::move(starts));
}

}  // namespace dxbar
