// Directed link channel between two routers.
//
// A flit sent during router cycle t occupies the link (LT stage) during
// t+1 and is delivered to the downstream input register at the start of
// t+2 — giving the paper's 2-cycle per-hop latency for the single-stage
// (SA/ST + LT) router pipelines.
//
// The channel also carries credits in the reverse direction with one
// cycle of return latency.  Credit-free channels (Flit-Bless / SCARAB
// links) are constructed with `kUnlimitedCredits`.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/flit.hpp"
#include "snapshot/serialize.hpp"

namespace dxbar {

inline constexpr int kUnlimitedCredits = -1;

class Channel {
 public:
  /// `credits` is the downstream buffer capacity backing this link, or
  /// kUnlimitedCredits for bufferless (never-blocking) links.
  explicit Channel(int credits = kUnlimitedCredits)
      : credits_(credits), limited_(credits != kUnlimitedCredits) {}

  /// Virtual-channel variant: `num_vcs` independent credit pools of
  /// `per_vc_credits` each (VC baseline router).  The aggregate
  /// `credits()`/`can_send()` interface keeps working and equals the
  /// pool sum; per-VC admission uses the *_vc methods.
  Channel(int num_vcs, int per_vc_credits)
      : credits_(num_vcs * per_vc_credits),
        limited_(true),
        vc_credits_(static_cast<std::size_t>(num_vcs), per_vc_credits),
        vc_pending_(static_cast<std::size_t>(num_vcs), 0) {}

  [[nodiscard]] int num_vcs() const noexcept {
    return static_cast<int>(vc_credits_.size());
  }

  /// A credit is available on the given VC and the link is free.
  [[nodiscard]] bool can_send_vc(int vc) const noexcept {
    if (staged_.has_value() || stop_) return false;
    return vc_credits_[static_cast<std::size_t>(vc)] > 0;
  }

  /// Stage a flit on a specific VC; consumes one credit of that VC.
  void send_vc(const Flit& f, int vc) {
    assert(can_send_vc(vc));
    --vc_credits_[static_cast<std::size_t>(vc)];
    --credits_;
    staged_ = f;
    staged_->vc = static_cast<std::uint8_t>(vc);
    ++total_sends_;
    touch();
  }

  /// Downstream freed a slot of the given VC.
  void return_credit_vc(int vc) noexcept {
    ++vc_pending_[static_cast<std::size_t>(vc)];
    ++pending_credits_;
    touch();
  }

  // ---- upstream (sender) side ----------------------------------------

  /// True when the sender holds a credit (always true when unlimited),
  /// the receiver has not asserted stop, and no flit was already sent
  /// this cycle.
  [[nodiscard]] bool can_send() const noexcept {
    if (staged_.has_value() || stop_) return false;
    return !limited_ || credits_ > 0;
  }

  /// Stage a flit for link traversal; consumes one credit when limited.
  /// Asserts link/credit availability but not `!stop_`: the DXbar /
  /// Unified liveness valves (must-win, stall-escape) legitimately send
  /// into a stopped receiver, where the arrival becomes a must-win flit.
  void send(const Flit& f) {
    assert(can_send_ignoring_stop());
    if (limited_) --credits_;
    staged_ = f;
    ++total_sends_;
    touch();
  }

  /// Hop-count bump applied in place on the just-staged flit, so the
  /// router send path copies each departing flit exactly once.
  void bump_staged_hops() noexcept {
    assert(staged_.has_value());
    ++staged_->hops;
  }

  /// Flits ever sent over this link (utilization accounting).
  [[nodiscard]] std::uint64_t total_sends() const noexcept {
    return total_sends_;
  }

  [[nodiscard]] int credits() const noexcept { return credits_; }

  // ---- downstream (receiver) side -------------------------------------

  /// The flit delivered this cycle, if any.  The network moves it into
  /// the downstream router's input register and clears it.
  [[nodiscard]] std::optional<Flit> take_arrival() noexcept {
    auto out = arrived_;
    arrived_.reset();
    return out;
  }

  /// Cheap emptiness probe so the network's per-cycle loop can skip the
  /// optional copy in take_arrival() for the (common) idle channels.
  [[nodiscard]] bool has_arrival() const noexcept {
    return arrived_.has_value();
  }

  /// Downstream frees a buffer slot (or forwarded the flit without ever
  /// buffering it); the credit becomes usable upstream next cycle.
  /// Gated on the immutable limited_ flag, NOT on credits_: on a pinned
  /// boundary channel this runs in the receiver's shard while the
  /// sender's shard may be decrementing credits_ in send(), so the
  /// receiver side must not read the live counter.
  void return_credit() noexcept {
    if (limited_) {
      ++pending_credits_;
      touch();
    }
  }

  /// On/off flow control (DXbar/Unified): the receiver asserts stop while
  /// its input FIFO is full.  Takes effect upstream one cycle later, so
  /// up to two in-flight flits can still arrive at a full FIFO — the
  /// router's deflection escape valve absorbs exactly that race.
  void set_stop(bool stop) noexcept {
    if (stop_pending_ != stop) {
      stop_pending_ = stop;
      touch();
    }
  }

  /// Sendability ignoring the stop signal.  Used by the deflection
  /// escape valve and the stall-escape override: sending into a stopped
  /// (full) receiver is *safe* — the arrival becomes a must-win flit
  /// there — stop is only a congestion heuristic, so liveness paths
  /// may override it.
  [[nodiscard]] bool can_send_ignoring_stop() const noexcept {
    if (staged_.has_value()) return false;
    return !limited_ || credits_ > 0;
  }

  // ---- per-cycle advance, called once by the network --------------------

  /// Moves the pipeline one cycle: in-flight -> arrived, staged -> in-flight,
  /// pending credit returns -> usable credits.
  void advance() noexcept {
    assert(!arrived_.has_value() && "previous arrival was not consumed");
    // Empty-pipeline fast path: shifting three empty optionals is a
    // no-op, so only do the copies when a flit is actually in transit.
    if (in_flight_.has_value() || staged_.has_value()) {
      arrived_ = in_flight_;
      in_flight_ = staged_;
      staged_.reset();
    }
    if (pending_credits_ != 0) {
      credits_ += pending_credits_;
      pending_credits_ = 0;
    }
    for (std::size_t v = 0; v < vc_credits_.size(); ++v) {
      vc_credits_[v] += vc_pending_[v];
      vc_pending_[v] = 0;
    }
    stop_ = stop_pending_;
  }

  /// Flits currently inside the channel (staged or on the wire).
  [[nodiscard]] int occupancy() const noexcept {
    return (staged_.has_value() ? 1 : 0) + (in_flight_.has_value() ? 1 : 0) +
           (arrived_.has_value() ? 1 : 0);
  }

  // ---- active-channel tracking ----------------------------------------
  //
  // The network only advances channels with something to do.  A channel
  // registers itself on the shared active list the moment any mutation
  // (send, credit return, stop-signal change) gives advance() work, and
  // the network delists it once it is quiescent again — advance() is the
  // identity on a quiescent channel, so skipping it is unobservable.
  // Standalone channels (unit tests) have no list and behave as before.

  /// Wire this channel to the owning network's active list.
  void attach_active_list(std::vector<std::uint32_t>* list,
                          std::uint32_t slot) noexcept {
    active_list_ = list;
    slot_ = slot;
  }

  /// Nothing in the pipeline, no credits to post, stop signal latched:
  /// advance() would change no state.
  [[nodiscard]] bool quiescent() const noexcept {
    return !staged_.has_value() && !in_flight_.has_value() &&
           !arrived_.has_value() && pending_credits_ == 0 &&
           stop_ == stop_pending_;
  }

  /// The network delists a quiescent channel during its sweep.
  void mark_delisted() noexcept { listed_ = false; }

  /// Permanently registers this channel on its active list: it is swept
  /// every cycle and never delisted, so touch() is a no-op forever after.
  /// Sharded networks pin every boundary channel (endpoints in different
  /// shards) — both endpoint routers may call send/return_credit/set_stop
  /// concurrently from their own threads, and with the channel pinned
  /// those calls mutate only endpoint-disjoint fields, never the shared
  /// list bookkeeping.  Structural, so not serialized; re-applied by the
  /// network on construction and honoured by load().
  void pin() {
    pinned_ = true;
    touch();
  }
  [[nodiscard]] bool pinned() const noexcept { return pinned_; }

  // ---- snapshot protocol ----------------------------------------------

  void save(SnapshotWriter& w) const {
    w.i32(credits_);
    w.i32(pending_credits_);
    w.u64(vc_credits_.size());
    for (int c : vc_credits_) w.i32(c);
    for (int c : vc_pending_) w.i32(c);
    w.u64(total_sends_);
    w.boolean(stop_);
    w.boolean(stop_pending_);
    save_optional_flit(w, staged_);
    save_optional_flit(w, in_flight_);
    save_optional_flit(w, arrived_);
  }

  /// Restores the channel's mutable state.  The caller must have cleared
  /// the owning active list first: load drops the listed flag and
  /// re-registers iff the restored state is non-quiescent, so the active
  /// list is rebuilt consistently (order is immaterial — channels are
  /// mutually independent and the sweep visits every listed channel).
  void load(SnapshotReader& r) {
    credits_ = r.i32();
    pending_credits_ = r.i32();
    const std::uint64_t nvc = r.count(4);
    if (nvc != vc_credits_.size()) {
      throw SnapshotError("channel VC count mismatch");
    }
    for (int& c : vc_credits_) c = r.i32();
    for (int& c : vc_pending_) c = r.i32();
    total_sends_ = r.u64();
    stop_ = r.boolean();
    stop_pending_ = r.boolean();
    staged_ = load_optional_flit(r);
    in_flight_ = load_optional_flit(r);
    arrived_ = load_optional_flit(r);
    listed_ = false;
    if (pinned_ || !quiescent()) touch();
  }

 private:
  void touch() {
    if (active_list_ != nullptr && !listed_) {
      listed_ = true;
      active_list_->push_back(slot_);
    }
  }

  int credits_;
  /// Construction-time constant: this channel carries a finite credit
  /// pool.  Receiver-side paths branch on this instead of comparing the
  /// (sender-mutated) credits_ counter against the sentinel.
  bool limited_;
  int pending_credits_ = 0;
  std::vector<int> vc_credits_;  ///< empty unless VC-constructed
  std::vector<int> vc_pending_;
  std::uint64_t total_sends_ = 0;
  std::vector<std::uint32_t>* active_list_ = nullptr;
  std::uint32_t slot_ = 0;
  bool listed_ = false;
  bool pinned_ = false;
  bool stop_ = false;
  bool stop_pending_ = false;
  std::optional<Flit> staged_;     ///< sent this cycle (ST just finished)
  std::optional<Flit> in_flight_;  ///< on the wire (LT stage)
  std::optional<Flit> arrived_;    ///< at the downstream input register
};

}  // namespace dxbar
