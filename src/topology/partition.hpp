// Row-strip partition of a mesh for sharded in-sim parallelism.
//
// Each shard owns a contiguous band of rows; with the row-major node
// numbering (id = y * width + x) that makes every shard a contiguous
// NodeId range, so per-shard loops are plain [begin, end) sweeps and the
// concatenation of the shards in index order reproduces the exact
// whole-mesh iteration order of a single-threaded run — the property the
// shard-count-invariance guarantee leans on (see DESIGN.md §10).
//
// A directed channel is owned by the shard of its *destination* router
// (the side whose input register the arrival lands in).  A channel whose
// endpoints live in different shards is a boundary channel; the network
// pins those so their bookkeeping never crosses threads.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

class MeshPartition {
 public:
  /// Even split of `mesh` into `shards` row strips.  The count is
  /// clamped to [1, height]: a shard must own at least one full row.
  static MeshPartition rows(const Mesh& mesh, int shards);

  /// Explicit interior cut rows (each in (0, height), strictly
  /// increasing): `cuts = {2, 5}` on an 8-row mesh yields strips
  /// [0,2), [2,5), [5,8).  Used by the partition fuzz tests to exercise
  /// arbitrary (including maximally unbalanced) strip placements.
  static MeshPartition from_row_cuts(const Mesh& mesh,
                                     const std::vector<int>& cuts);

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(row_start_.size()) - 1;
  }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  [[nodiscard]] int shard_of_node(NodeId n) const noexcept {
    return shard_of_row_[static_cast<std::size_t>(n) /
                         static_cast<std::size_t>(width_)];
  }

  /// Contiguous node range owned by shard `s`.
  [[nodiscard]] NodeId node_begin(int s) const noexcept {
    return static_cast<NodeId>(row_start_[static_cast<std::size_t>(s)] *
                               width_);
  }
  [[nodiscard]] NodeId node_end(int s) const noexcept {
    return static_cast<NodeId>(row_start_[static_cast<std::size_t>(s) + 1] *
                               width_);
  }

  /// Both endpoints in one shard?  False for channels crossing a cut
  /// line (and for torus wrap links between the first and last strips).
  [[nodiscard]] bool same_shard(NodeId a, NodeId b) const noexcept {
    return shard_of_node(a) == shard_of_node(b);
  }

 private:
  MeshPartition(int width, int height, std::vector<int> row_start);

  int width_;
  int height_;
  std::vector<int> row_start_;     ///< size shards+1; [s] .. [s+1] rows
  std::vector<int> shard_of_row_;  ///< size height
};

}  // namespace dxbar
