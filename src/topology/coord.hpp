// (x, y) coordinates on the mesh and conversions to flat node ids.
#pragma once

#include <cstdlib>

#include "common/types.hpp"

namespace dxbar {

struct Coord {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

/// Manhattan distance between two coordinates.
constexpr int manhattan(Coord a, Coord b) noexcept {
  const int dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const int dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

}  // namespace dxbar
