#include "topology/mesh.hpp"

#include <cassert>

namespace dxbar {

Mesh::Mesh(int width, int height, bool wrap)
    : width_(width), height_(height), wrap_(wrap) {
  assert(width >= 2 && height >= 2);
}

std::optional<NodeId> Mesh::neighbor(NodeId n, Direction dir) const {
  Coord c = coord(n);
  switch (dir) {
    case Direction::East: ++c.x; break;
    case Direction::West: --c.x; break;
    case Direction::North: ++c.y; break;
    case Direction::South: --c.y; break;
    case Direction::Local: return std::nullopt;
  }
  if (!contains(c)) {
    if (!wrap_) return std::nullopt;
    c.x = (c.x + width_) % width_;
    c.y = (c.y + height_) % height_;
  }
  return node(c);
}

std::vector<LinkId> Mesh::all_links() const {
  std::vector<LinkId> links;
  links.reserve(static_cast<std::size_t>(num_nodes()) * kNumLinkDirs);
  for (NodeId n = 0; n < static_cast<NodeId>(num_nodes()); ++n) {
    for (Direction d : kLinkDirs) {
      if (has_link(n, d)) links.push_back({n, d});
    }
  }
  return links;
}

double Mesh::average_distance() const {
  // For a W x H mesh the mean of |x1-x2| over uniform pairs is known in
  // closed form, but the direct sum is cheap and obviously correct.
  const int n = num_nodes();
  long long total = 0;
  for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
    for (NodeId b = 0; b < static_cast<NodeId>(n); ++b) {
      if (a != b) total += distance(a, b);
    }
  }
  const long long pairs = static_cast<long long>(n) * (n - 1);
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace dxbar
