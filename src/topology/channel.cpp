// Channel is header-only; this translation unit exists so the topology
// library has a home for future out-of-line channel variants and to keep
// one-TU-per-module symmetry.
#include "topology/channel.hpp"

namespace dxbar {
// Intentionally empty.
}  // namespace dxbar
