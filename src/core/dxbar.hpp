// dxbar-noc public API.
//
// Single-header entry point for library users: configure an experiment
// with SimConfig, run it with one of the functions below (or drive the
// Network cycle-by-cycle yourself), and read the RunStats.  Everything
// is deterministic for a given seed.
//
//   #include "core/dxbar.hpp"
//   dxbar::SimConfig cfg;
//   cfg.design = dxbar::RouterDesign::DXbar;
//   cfg.pattern = dxbar::TrafficPattern::UniformRandom;
//   cfg.offered_load = 0.3;
//   auto stats = dxbar::run_open_loop(cfg);
#pragma once

#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "fault/fault_model.hpp"
#include "power/energy_model.hpp"
#include "sim/campaign.hpp"
#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "sim/sweep.hpp"
#include "snapshot/serialize.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {

/// Library version.
std::string_view version();

/// One point of a load sweep.
struct LoadPoint {
  double offered_load = 0.0;
  RunStats stats;
};

/// Sweeps cfg over `loads` (in parallel) and returns one point per load.
std::vector<LoadPoint> load_sweep(const SimConfig& base,
                                  const std::vector<double>& loads,
                                  unsigned threads = 0);

/// The offered load at which acceptance first drops below
/// `acceptance_ratio` (default 90% of offered), scanned over
/// [step, max_load] in increments of `step`; returns max_load when the
/// network never saturates in range.  This is the paper's "saturation
/// point".
double find_saturation(const SimConfig& base, double step = 0.05,
                       double max_load = 0.95,
                       double acceptance_ratio = 0.9, unsigned threads = 0);

}  // namespace dxbar
