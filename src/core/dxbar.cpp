#include "core/dxbar.hpp"

namespace dxbar {

std::string_view version() { return "1.0.0"; }

std::vector<LoadPoint> load_sweep(const SimConfig& base,
                                  const std::vector<double>& loads,
                                  unsigned threads) {
  std::vector<SimConfig> cfgs;
  cfgs.reserve(loads.size());
  for (double l : loads) {
    SimConfig c = base;
    c.offered_load = l;
    cfgs.push_back(c);
  }
  const std::vector<RunStats> stats = run_sweep(cfgs, threads);

  std::vector<LoadPoint> out(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    out[i] = {loads[i], stats[i]};
  }
  return out;
}

double find_saturation(const SimConfig& base, double step, double max_load,
                       double acceptance_ratio, unsigned threads) {
  std::vector<double> loads;
  for (double l = step; l <= max_load + 1e-9; l += step) loads.push_back(l);

  const std::vector<LoadPoint> points = load_sweep(base, loads, threads);
  for (const LoadPoint& p : points) {
    if (p.stats.accepted_load < acceptance_ratio * p.offered_load) {
      return p.offered_load;
    }
  }
  return max_load;
}

}  // namespace dxbar
