#include "routing/routing_algorithm.hpp"

#include "routing/dor.hpp"
#include "routing/turn_models.hpp"
#include "routing/west_first.hpp"

namespace dxbar {

RouteSet minimal_routes(const Mesh& mesh, NodeId cur, NodeId dst) {
  RouteSet out;
  if (cur == dst) {
    out.push_back(Direction::Local);
    return out;
  }
  const int ox = mesh.offset_x(cur, dst);
  const int oy = mesh.offset_y(cur, dst);
  if (ox > 0) out.push_back(Direction::East);
  if (ox < 0) out.push_back(Direction::West);
  if (oy > 0) out.push_back(Direction::North);
  if (oy < 0 && out.size() < 3) out.push_back(Direction::South);
  return out;
}

RouteSet compute_routes(RoutingAlgo algo, const Mesh& mesh, NodeId cur,
                        NodeId dst) {
  RouteSet out;
  // The geometric turn models assume a mesh; on a torus every algorithm
  // degenerates to minimal adaptive routing (DOR keeps its x-then-y
  // determinism via the wrap-aware offsets).
  if (mesh.wraps() && algo != RoutingAlgo::DOR) {
    return minimal_routes(mesh, cur, dst);
  }
  switch (algo) {
    case RoutingAlgo::DOR:
      out.push_back(dor_route(mesh, cur, dst));
      return out;
    case RoutingAlgo::WestFirst:
      return wf_routes(mesh, cur, dst);
    case RoutingAlgo::NegativeFirst:
      return nf_routes(mesh, cur, dst);
    case RoutingAlgo::NorthLast:
      return nl_routes(mesh, cur, dst);
  }
  return out;
}

}  // namespace dxbar
