// Fault-aware routing: per-destination next-hop table from BFS over the
// live links only.
//
// When the topology is degraded (dead links), the geometric turn models
// no longer apply — a minimal live path may not exist in the allowed
// turn set.  The table offers every next hop that lies on *some*
// shortest live path, preference-ordered deterministically.  The turn
// guarantees are gone, so deadlock freedom rests on the routers' escape
// valves (deflection, stall escape); the conservation test matrix
// exercises this empirically.
#pragma once

#include <functional>
#include <vector>

#include "routing/route.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

class RouteTable {
 public:
  /// Builds the table over links for which `alive(node, dir)` is true;
  /// the live graph must be connected.
  RouteTable(const Mesh& mesh,
             const std::function<bool(NodeId, Direction)>& alive);

  /// Next hops on shortest live paths from `cur` to `dst`; contains only
  /// Direction::Local when cur == dst.
  [[nodiscard]] RouteSet routes(NodeId cur, NodeId dst) const;

  /// Live-path distance (hops) from `cur` to `dst`.
  [[nodiscard]] int distance(NodeId cur, NodeId dst) const {
    return dist_[index(cur, dst)];
  }

 private:
  [[nodiscard]] std::size_t index(NodeId cur, NodeId dst) const noexcept {
    return static_cast<std::size_t>(cur) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  int n_;
  std::vector<std::uint8_t> next_mask_;  ///< bitmask of link dirs per (cur,dst)
  std::vector<int> dist_;
};

}  // namespace dxbar
