#include "routing/turn_models.hpp"

namespace dxbar {

RouteSet nf_routes(const Mesh& mesh, NodeId cur, NodeId dst) {
  RouteSet out;
  const Coord c = mesh.coord(cur);
  const Coord d = mesh.coord(dst);
  if (c == d) {
    out.push_back(Direction::Local);
    return out;
  }
  // Negative hops (West, South) first, adaptively when both remain.
  if (c.x > d.x) out.push_back(Direction::West);
  if (c.y > d.y) out.push_back(Direction::South);
  if (!out.empty()) return out;
  // Only positive hops remain; adapt among them.
  if (c.x < d.x) out.push_back(Direction::East);
  if (c.y < d.y) out.push_back(Direction::North);
  return out;
}

bool nf_turn_legal(Direction arrived_over, Direction out) {
  // Forbidden: entering a negative direction after travelling a
  // positive one.
  const bool from_positive =
      arrived_over == Direction::East || arrived_over == Direction::North;
  const bool to_negative =
      out == Direction::West || out == Direction::South;
  return !(from_positive && to_negative);
}

RouteSet nl_routes(const Mesh& mesh, NodeId cur, NodeId dst) {
  RouteSet out;
  const Coord c = mesh.coord(cur);
  const Coord d = mesh.coord(dst);
  if (c == d) {
    out.push_back(Direction::Local);
    return out;
  }
  // Everything except North first, adaptively.
  if (c.x < d.x) out.push_back(Direction::East);
  if (c.x > d.x) out.push_back(Direction::West);
  if (c.y > d.y) out.push_back(Direction::South);
  if (!out.empty()) return out;
  // North only once it is the sole remaining dimension.
  out.push_back(Direction::North);
  return out;
}

bool nl_turn_legal(Direction arrived_over, Direction out) {
  // Forbidden: any turn out of North (North must be last).
  if (arrived_over != Direction::North) return true;
  return out == Direction::North || out == Direction::Local;
}

}  // namespace dxbar
