// Dimension-ordered (XY) routing: resolve the x offset completely before
// turning into the y dimension.  Deadlock-free on meshes with any number
// of buffers because the channel dependence graph is acyclic.
#pragma once

#include "common/types.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// The single productive output port under XY routing; Direction::Local
/// when `cur == dst`.
Direction dor_route(const Mesh& mesh, NodeId cur, NodeId dst);

}  // namespace dxbar
