#include "routing/dor.hpp"

namespace dxbar {

Direction dor_route(const Mesh& mesh, NodeId cur, NodeId dst) {
  // Signed shortest offsets (wrap-aware on a torus; plain deltas on a
  // mesh): resolve x completely, then y.
  const int ox = mesh.offset_x(cur, dst);
  if (ox > 0) return Direction::East;
  if (ox < 0) return Direction::West;
  const int oy = mesh.offset_y(cur, dst);
  if (oy > 0) return Direction::North;
  if (oy < 0) return Direction::South;
  return Direction::Local;
}

}  // namespace dxbar
