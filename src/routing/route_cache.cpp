#include "routing/route_cache.hpp"

namespace dxbar {

RouteCache::RouteCache(RoutingAlgo algo, const Mesh& mesh)
    : n_(mesh.num_nodes()) {
  const std::size_t n = static_cast<std::size_t>(n_);
  algo_.resize(n * n);
  minimal_.resize(n * n);
  for (NodeId cur = 0; cur < static_cast<NodeId>(n_); ++cur) {
    for (NodeId dst = 0; dst < static_cast<NodeId>(n_); ++dst) {
      algo_[index(cur, dst)] = compute_routes(algo, mesh, cur, dst);
      minimal_[index(cur, dst)] = minimal_routes(mesh, cur, dst);
    }
  }
}

}  // namespace dxbar
