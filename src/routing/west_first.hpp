// West-first minimal adaptive routing (turn model).
//
// A packet travels all of its westward hops first; once it has turned
// out of the west direction it may never turn back west.  Equivalently:
// if the destination lies to the west, West is the only legal port;
// otherwise the packet may adaptively pick among its minimal ports in
// {East, North, South}.  The two forbidden turns (N->W and S->W) break
// every cycle in the channel dependence graph, so the algorithm is
// deadlock-free with simple FIFO buffering.
#pragma once

#include "routing/route.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// The legal minimal output ports for a flit at `cur` heading to `dst`,
/// preference-ordered (x-dimension first, matching the paper's DOR bias).
/// Contains only Direction::Local when cur == dst.
RouteSet wf_routes(const Mesh& mesh, NodeId cur, NodeId dst);

/// True when turning from input `in_from` (the port the flit arrived on)
/// to output `out` is legal under the west-first turn model.  Used by
/// property tests; the route computation above never produces an illegal
/// turn by construction.
bool wf_turn_legal(Direction arrived_over, Direction out);

}  // namespace dxbar
