// Shared routing vocabulary: the set of output ports a routing function
// permits for a flit at a given router.
#pragma once

#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace dxbar {

/// Preference-ordered productive output ports (at most 2 on a 2D mesh
/// under minimal routing, plus Local when the flit has arrived).
using RouteSet = SmallVec<Direction, 3>;

}  // namespace dxbar
