#include "routing/deflect.hpp"

#include <algorithm>

namespace dxbar {

bool is_productive(const Mesh& mesh, NodeId cur, NodeId dst, Direction dir) {
  const auto next = mesh.neighbor(cur, dir);
  if (!next) return false;
  return mesh.distance(*next, dst) < mesh.distance(cur, dst);
}

std::array<Direction, kNumLinkDirs> deflection_ranking(const Mesh& mesh,
                                                       NodeId cur, NodeId dst,
                                                       std::uint64_t salt) {
  // Wrap-aware signed offsets: on a torus the shorter way around wins.
  const int dx = mesh.offset_x(cur, dst);
  const int dy = mesh.offset_y(cur, dst);

  // Score each direction: progress made (+2 per productive hop with the
  // larger remaining offset slightly preferred), link existence required.
  struct Ranked {
    Direction dir;
    int score;
  };
  std::array<Ranked, kNumLinkDirs> ranked{};
  int i = 0;
  for (Direction dir : kLinkDirs) {
    int score = 0;
    if (!mesh.has_link(cur, dir)) {
      score = -1000;  // never pick a missing edge link
    } else {
      // Signed offset remaining along this direction's axis, positive when
      // the direction is productive.
      int progress = 0;
      switch (dir) {
        case Direction::East: progress = dx; break;
        case Direction::West: progress = -dx; break;
        case Direction::North: progress = dy; break;
        case Direction::South: progress = -dy; break;
        case Direction::Local: break;
      }
      if (progress > 0) {
        score = 100 + progress;  // productive: larger offsets first
      } else if (progress < 0) {
        score = -10;  // anti-productive: last resort
      }
      // Deterministic tie-break so deflections spread over directions.
      score = score * 4 + static_cast<int>((salt >> (port_index(dir) * 2)) & 3);
    }
    ranked[i++] = {dir, score};
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.score > b.score; });

  std::array<Direction, kNumLinkDirs> out{};
  for (int k = 0; k < kNumLinkDirs; ++k) out[k] = ranked[k].dir;
  return out;
}

}  // namespace dxbar
