// Uniform entry point over the routing algorithms the paper evaluates.
#pragma once

#include "common/config.hpp"
#include "routing/route.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// Productive, legality-checked output ports for a flit at `cur` heading
/// to `dst` under `algo`, preference-ordered.  DOR yields exactly one
/// port; West-First yields one or two.  Contains only Direction::Local
/// when cur == dst.
RouteSet compute_routes(RoutingAlgo algo, const Mesh& mesh, NodeId cur,
                        NodeId dst);

/// Minimal adaptive set: every port that reduces the (wrap-aware)
/// distance to dst; Local only when cur == dst.
RouteSet minimal_routes(const Mesh& mesh, NodeId cur, NodeId dst);

}  // namespace dxbar
