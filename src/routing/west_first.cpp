#include "routing/west_first.hpp"

namespace dxbar {

RouteSet wf_routes(const Mesh& mesh, NodeId cur, NodeId dst) {
  RouteSet out;
  const Coord c = mesh.coord(cur);
  const Coord d = mesh.coord(dst);

  if (c == d) {
    out.push_back(Direction::Local);
    return out;
  }

  if (c.x > d.x) {
    // All westward hops must be completed before anything else.
    out.push_back(Direction::West);
    return out;
  }

  // Destination is east of or aligned with us: adapt among minimal ports.
  if (c.x < d.x) out.push_back(Direction::East);
  if (c.y < d.y) out.push_back(Direction::North);
  if (c.y > d.y) out.push_back(Direction::South);
  return out;
}

bool wf_turn_legal(Direction arrived_over, Direction out) {
  // `arrived_over` is the direction of travel on the previous hop
  // (i.e. the upstream router's output port).  The two forbidden turns
  // of the west-first model are North->West and South->West.
  if (out != Direction::West) return true;
  return arrived_over != Direction::North && arrived_over != Direction::South;
}

}  // namespace dxbar
