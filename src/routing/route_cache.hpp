// Precomputed routing lookup tables.
//
// On a healthy topology every routing function is a pure function of
// (current node, destination), yet the simulation kernel used to
// recompute it for every candidate flit every cycle — ~35M calls for a
// 200k-cycle 8x8 run, the single largest line in the profile.  The
// cache materialises both the configured algorithm's route sets and the
// minimal-adaptive sets once per network, turning each hot-path lookup
// into one array read.
//
// The tables are O(N^2) in mesh nodes, so construction is gated by
// `RouteCache::worthwhile` (64 KB per table on the paper's 8x8 mesh,
// ~2 MB at the 32x32 gate).  Degraded topologies (link faults) use the
// BFS RouteTable instead and never build this cache.
#pragma once

#include <vector>

#include "routing/route.hpp"
#include "routing/routing_algorithm.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

class RouteCache {
 public:
  RouteCache(RoutingAlgo algo, const Mesh& mesh);

  /// Preference-ordered productive ports under the configured algorithm.
  [[nodiscard]] const RouteSet& routes(NodeId cur, NodeId dst) const {
    return algo_[index(cur, dst)];
  }

  /// Minimal-adaptive set (every distance-reducing port).
  [[nodiscard]] const RouteSet& minimal(NodeId cur, NodeId dst) const {
    return minimal_[index(cur, dst)];
  }

  /// The O(N^2) tables pay for themselves up to a few thousand nodes;
  /// beyond that fall back to on-the-fly computation.
  [[nodiscard]] static bool worthwhile(const Mesh& mesh) noexcept {
    return mesh.num_nodes() <= 1024;
  }

 private:
  [[nodiscard]] std::size_t index(NodeId cur, NodeId dst) const noexcept {
    return static_cast<std::size_t>(cur) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  int n_;
  std::vector<RouteSet> algo_;
  std::vector<RouteSet> minimal_;
};

}  // namespace dxbar
