// Additional minimal-adaptive turn models (Glass & Ni): negative-first
// and north-last.  Extensions beyond the paper's DOR/West-First pair —
// they slot into the same RouteSet interface, so every router design can
// run them, and `bench/ablation_routing` compares all four on the
// adversarial patterns.
//
// Negative-first: all hops in the negative directions (West, South) are
// taken before any positive hop; forbidden turns are positive->negative.
// North-last: a packet may only head North once nothing else remains;
// forbidden turns are North->anything-else.
#pragma once

#include "routing/route.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// Legal minimal ports under negative-first, preference-ordered.
RouteSet nf_routes(const Mesh& mesh, NodeId cur, NodeId dst);

/// True when turning from travel direction `arrived_over` into `out` is
/// legal under negative-first.
bool nf_turn_legal(Direction arrived_over, Direction out);

/// Legal minimal ports under north-last, preference-ordered.
RouteSet nl_routes(const Mesh& mesh, NodeId cur, NodeId dst);

/// True when the turn is legal under north-last.
bool nl_turn_legal(Direction arrived_over, Direction out);

}  // namespace dxbar
