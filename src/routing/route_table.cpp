#include "routing/route_table.hpp"

#include <cassert>

namespace dxbar {

RouteTable::RouteTable(const Mesh& mesh,
                       const std::function<bool(NodeId, Direction)>& alive)
    : n_(mesh.num_nodes()),
      next_mask_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                 0),
      dist_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1) {
  // One reverse BFS per destination over live links.
  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(n_));
  for (NodeId dst = 0; dst < static_cast<NodeId>(n_); ++dst) {
    queue.clear();
    queue.push_back(dst);
    dist_[index(dst, dst)] = 0;
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId cur = queue[head++];
      for (Direction d : kLinkDirs) {
        if (!mesh.has_link(cur, d) || !alive(cur, d)) continue;
        const NodeId nb = *mesh.neighbor(cur, d);
        if (dist_[index(nb, dst)] < 0) {
          dist_[index(nb, dst)] = dist_[index(cur, dst)] + 1;
          queue.push_back(nb);
        }
      }
    }
    assert(queue.size() == static_cast<std::size_t>(n_) &&
           "live topology must be connected");

    // Next hops: every live neighbour one step closer to dst.
    for (NodeId cur = 0; cur < static_cast<NodeId>(n_); ++cur) {
      if (cur == dst) continue;
      std::uint8_t mask = 0;
      for (Direction d : kLinkDirs) {
        if (!mesh.has_link(cur, d) || !alive(cur, d)) continue;
        const NodeId nb = *mesh.neighbor(cur, d);
        if (dist_[index(nb, dst)] == dist_[index(cur, dst)] - 1) {
          mask |= static_cast<std::uint8_t>(1u << port_index(d));
        }
      }
      next_mask_[index(cur, dst)] = mask;
    }
  }
}

RouteSet RouteTable::routes(NodeId cur, NodeId dst) const {
  RouteSet out;
  if (cur == dst) {
    out.push_back(Direction::Local);
    return out;
  }
  const std::uint8_t mask = next_mask_[index(cur, dst)];
  for (Direction d : kLinkDirs) {
    if (mask & (1u << port_index(d))) {
      out.push_back(d);
      if (out.size() == 3) break;  // RouteSet capacity
    }
  }
  return out;
}

}  // namespace dxbar
