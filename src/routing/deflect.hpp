// Deflection-routing port preference for bufferless designs.
//
// Flit-Bless assigns *every* incoming flit to some output port each
// cycle: productive ports first, then the least-harmful non-productive
// ports.  The ranking below orders all four link directions so that the
// age-ordered assignment loop can walk it and take the first free port.
#pragma once

#include <array>

#include "common/types.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// All four link directions ranked for a flit at `cur` heading to `dst`:
/// productive dimensions first (larger remaining offset preferred), then
/// non-productive ones (the reverse of a productive port last).  `salt`
/// deterministically breaks ties between equally attractive ports so
/// deflections do not always pick the same victim direction.
std::array<Direction, kNumLinkDirs> deflection_ranking(const Mesh& mesh,
                                                       NodeId cur, NodeId dst,
                                                       std::uint64_t salt);

/// True when `dir` strictly reduces the distance to `dst` from `cur`.
bool is_productive(const Mesh& mesh, NodeId cur, NodeId dst, Direction dir);

}  // namespace dxbar
