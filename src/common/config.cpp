#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dxbar {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool parse_double(std::string_view v, double& out) {
  // std::from_chars<double> is not universally available; use strtod on a
  // bounded copy.
  std::string buf(v);
  char* end = nullptr;
  const double x = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = x;
  return true;
}

bool parse_int(std::string_view v, long long& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && p == v.data() + v.size();
}

}  // namespace

bool parse_design(std::string_view name, RouterDesign& out) {
  const std::string n = lower(name);
  if (n == "bless" || n == "flit-bless" || n == "flitbless") {
    out = RouterDesign::FlitBless;
  } else if (n == "scarab") {
    out = RouterDesign::Scarab;
  } else if (n == "buffered4" || n == "buffered") {
    out = RouterDesign::Buffered4;
  } else if (n == "buffered8") {
    out = RouterDesign::Buffered8;
  } else if (n == "dxbar") {
    out = RouterDesign::DXbar;
  } else if (n == "unified" || n == "unifiedxbar") {
    out = RouterDesign::UnifiedXbar;
  } else if (n == "bufferedvc" || n == "vc") {
    out = RouterDesign::BufferedVC;
  } else if (n == "afc") {
    out = RouterDesign::Afc;
  } else if (n == "damq") {
    out = RouterDesign::Damq;
  } else if (n == "minbd") {
    out = RouterDesign::MinBD;
  } else {
    return false;
  }
  return true;
}

bool parse_pattern(std::string_view name, TrafficPattern& out) {
  const std::string n = lower(name);
  if (n == "ur" || n == "uniform") {
    out = TrafficPattern::UniformRandom;
  } else if (n == "nur" || n == "hotspot") {
    out = TrafficPattern::NonUniformRandom;
  } else if (n == "br" || n == "bitreversal") {
    out = TrafficPattern::BitReversal;
  } else if (n == "bf" || n == "butterfly") {
    out = TrafficPattern::Butterfly;
  } else if (n == "cp" || n == "complement") {
    out = TrafficPattern::Complement;
  } else if (n == "mt" || n == "transpose") {
    out = TrafficPattern::Transpose;
  } else if (n == "ps" || n == "shuffle") {
    out = TrafficPattern::PerfectShuffle;
  } else if (n == "nb" || n == "neighbor") {
    out = TrafficPattern::Neighbor;
  } else if (n == "tor" || n == "tornado") {
    out = TrafficPattern::Tornado;
  } else {
    return false;
  }
  return true;
}

bool parse_routing(std::string_view name, RoutingAlgo& out) {
  const std::string n = lower(name);
  if (n == "dor" || n == "xy") {
    out = RoutingAlgo::DOR;
  } else if (n == "wf" || n == "west-first" || n == "westfirst") {
    out = RoutingAlgo::WestFirst;
  } else if (n == "nf" || n == "negative-first" || n == "negativefirst") {
    out = RoutingAlgo::NegativeFirst;
  } else if (n == "nl" || n == "north-last" || n == "northlast") {
    out = RoutingAlgo::NorthLast;
  } else {
    return false;
  }
  return true;
}

std::string SimConfig::validate() const {
  if (mesh_width < 2 || mesh_height < 2) {
    return "mesh must be at least 2x2";
  }
  if (buffer_depth < 1) return "buffer_depth must be >= 1";
  if (fairness_threshold < 1) return "fairness_threshold must be >= 1";
  if (stall_escape_delay < 1) return "stall_escape_delay must be >= 1";
  if (num_vcs < 1) return "num_vcs must be >= 1";
  if (design == RouterDesign::BufferedVC && buffer_depth % num_vcs != 0) {
    return "buffer_depth must be divisible by num_vcs for the VC router";
  }
  if (offered_load < 0.0 || offered_load > 1.0) {
    return "offered_load must lie in [0, 1]";
  }
  if (warmup_load > 1.0) {
    return "warmup_load must lie in [0, 1] (or be negative for "
           "\"same as offered_load\")";
  }
  if (packet_length < 1) return "packet_length must be >= 1";
  if (flit_bits < 1) return "flit_bits must be >= 1";
  if (tech_node != 65 && tech_node != 32 && tech_node != 16) {
    return "tech_node must be one of 65, 32, 16 (nm)";
  }
  if (mlp < 1) return "mlp must be >= 1";
  if (request_length < 1) return "request_length must be >= 1";
  if (hotspot_fraction < 0.0 || hotspot_fraction > 1.0) {
    return "hotspot_fraction must lie in [0, 1]";
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    return "read_fraction must lie in [0, 1]";
  }
  if (workload == WorkloadKind::ClosedLoop &&
      design == RouterDesign::BufferedVC && num_vcs < 2) {
    // Replies ride a reserved VC partition on the VC router; with one VC
    // there is no partition and request-reply cycles could deadlock.
    return "closedloop workload on the VC router requires num_vcs >= 2";
  }
  if (fault_fraction < 0.0 || fault_fraction > 1.0) {
    return "fault_fraction must lie in [0, 1]";
  }
  if (link_fault_fraction < 0.0 || link_fault_fraction > 1.0) {
    return "link_fault_fraction must lie in [0, 1]";
  }
  if (torus && (design == RouterDesign::Buffered4 ||
                design == RouterDesign::Buffered8 ||
                design == RouterDesign::BufferedVC ||
                design == RouterDesign::Damq)) {
    // Wrap links close ring dependency cycles; without VC datelines the
    // credit-based designs (DAMQ included — its grants are credits over
    // a shared pool) can deadlock on a torus.
    return "torus requires a design with a deflection escape valve "
           "(dxbar, unified, bless, scarab, afc, minbd)";
  }
  if (link_fault_fraction > 0.0 &&
      (design == RouterDesign::Buffered4 ||
       design == RouterDesign::Buffered8 ||
       design == RouterDesign::BufferedVC ||
       design == RouterDesign::Damq)) {
    // Fault-aware table routing abandons the turn-model acyclicity the
    // credit-based routers rely on; without a deflection escape valve
    // they can deadlock on a degraded topology.
    return "link faults require a design with a deflection escape valve "
           "(dxbar, unified, bless, scarab, afc, minbd)";
  }
  if (source_queue_depth < 1) return "source_queue_depth must be >= 1";
  if (retransmit_buffer < 1) return "retransmit_buffer must be >= 1";
  if (shards < 1) return "shards must be >= 1";
  return {};
}

std::string SimConfig::describe() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "mesh              %dx%d%s\n"
      "design            %s\n"
      "routing           %s\n"
      "pattern           %s\n"
      "workload          %s (mlp %d, service %llu, req_len %d, "
      "hotspot %.2f, reads %.2f)\n"
      "offered_load      %.3f\n"
      "packet_length     %d flits (%d bits each)\n"
      "tech_node         %d nm\n"
      "buffer_depth      %d\n"
      "num_vcs           %d\n"
      "fairness          %d\n"
      "stall_escape      %d\n"
      "phases            warmup %llu / measure %llu / drain %llu\n"
      "faults            crossbar %.2f (detect %llu, spread %llu), "
      "links %.2f\n"
      "shards            %d\n"
      "seed              %llu\n"
      "measure_seed      %llu\n",
      mesh_width, mesh_height, torus ? " torus" : "",
      std::string(to_string(design)).c_str(),
      std::string(to_string(routing)).c_str(),
      std::string(to_string(pattern)).c_str(),
      std::string(to_string(workload)).c_str(), mlp,
      static_cast<unsigned long long>(service_delay), request_length,
      hotspot_fraction, read_fraction, offered_load, packet_length,
      flit_bits, tech_node, buffer_depth, num_vcs, fairness_threshold,
      stall_escape_delay, static_cast<unsigned long long>(warmup_cycles),
      static_cast<unsigned long long>(measure_cycles),
      static_cast<unsigned long long>(drain_cycles), fault_fraction,
      static_cast<unsigned long long>(fault_detect_delay),
      static_cast<unsigned long long>(fault_onset_spread),
      link_fault_fraction, shards, static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(measure_seed));
  return buf;
}

std::string apply_override(SimConfig& cfg, std::string_view arg) {
  const auto eq = arg.find('=');
  if (eq == std::string_view::npos) {
    return "expected key=value, got '" + std::string(arg) + "'";
  }
  const std::string key = lower(arg.substr(0, eq));
  const std::string_view val = arg.substr(eq + 1);

  auto bad = [&] { return "bad value for '" + key + "'"; };

  long long i = 0;
  double d = 0.0;
  if (key == "width") {
    if (!parse_int(val, i)) return bad();
    cfg.mesh_width = static_cast<int>(i);
  } else if (key == "height") {
    if (!parse_int(val, i)) return bad();
    cfg.mesh_height = static_cast<int>(i);
  } else if (key == "topology") {
    const std::string t = lower(val);
    if (t == "torus") {
      cfg.torus = true;
    } else if (t == "mesh") {
      cfg.torus = false;
    } else {
      return bad();
    }
  } else if (key == "design") {
    if (!parse_design(val, cfg.design)) return bad();
  } else if (key == "routing") {
    if (!parse_routing(val, cfg.routing)) return bad();
  } else if (key == "pattern") {
    if (!parse_pattern(val, cfg.pattern)) return bad();
  } else if (key == "buffer_depth") {
    if (!parse_int(val, i)) return bad();
    cfg.buffer_depth = static_cast<int>(i);
  } else if (key == "fairness_threshold") {
    if (!parse_int(val, i)) return bad();
    cfg.fairness_threshold = static_cast<int>(i);
  } else if (key == "stall_escape") {
    if (!parse_int(val, i)) return bad();
    cfg.stall_escape_delay = static_cast<int>(i);
  } else if (key == "num_vcs") {
    if (!parse_int(val, i)) return bad();
    cfg.num_vcs = static_cast<int>(i);
  } else if (key == "workload") {
    const std::string w = lower(val);
    if (w == "synthetic" || w == "open") {
      cfg.workload = WorkloadKind::Synthetic;
    } else if (w == "closedloop" || w == "closed") {
      cfg.workload = WorkloadKind::ClosedLoop;
    } else {
      return bad();
    }
  } else if (key == "mlp") {
    if (!parse_int(val, i)) return bad();
    cfg.mlp = static_cast<int>(i);
  } else if (key == "service_delay") {
    if (!parse_int(val, i)) return bad();
    cfg.service_delay = static_cast<Cycle>(i);
  } else if (key == "request_length") {
    if (!parse_int(val, i)) return bad();
    cfg.request_length = static_cast<int>(i);
  } else if (key == "hotspot_fraction") {
    if (!parse_double(val, d)) return bad();
    cfg.hotspot_fraction = d;
  } else if (key == "read_fraction") {
    if (!parse_double(val, d)) return bad();
    cfg.read_fraction = d;
  } else if (key == "load") {
    if (!parse_double(val, d)) return bad();
    cfg.offered_load = d;
  } else if (key == "warmup_load") {
    if (!parse_double(val, d)) return bad();
    cfg.warmup_load = d;
  } else if (key == "packet_length") {
    if (!parse_int(val, i)) return bad();
    cfg.packet_length = static_cast<int>(i);
  } else if (key == "flit_bits") {
    if (!parse_int(val, i)) return bad();
    cfg.flit_bits = static_cast<int>(i);
  } else if (key == "tech") {
    if (!parse_int(val, i)) return bad();
    cfg.tech_node = static_cast<int>(i);
  } else if (key == "warmup") {
    if (!parse_int(val, i)) return bad();
    cfg.warmup_cycles = static_cast<Cycle>(i);
  } else if (key == "measure") {
    if (!parse_int(val, i)) return bad();
    cfg.measure_cycles = static_cast<Cycle>(i);
  } else if (key == "drain") {
    if (!parse_int(val, i)) return bad();
    cfg.drain_cycles = static_cast<Cycle>(i);
  } else if (key == "faults") {
    if (!parse_double(val, d)) return bad();
    cfg.fault_fraction = d;
  } else if (key == "link_faults") {
    if (!parse_double(val, d)) return bad();
    cfg.link_fault_fraction = d;
  } else if (key == "fault_onset_spread") {
    if (!parse_int(val, i)) return bad();
    cfg.fault_onset_spread = static_cast<Cycle>(i);
  } else if (key == "shards") {
    if (!parse_int(val, i)) return bad();
    cfg.shards = static_cast<int>(i);
  } else if (key == "seed") {
    if (!parse_int(val, i)) return bad();
    cfg.seed = static_cast<std::uint64_t>(i);
  } else if (key == "measure_seed") {
    if (!parse_int(val, i)) return bad();
    cfg.measure_seed = static_cast<std::uint64_t>(i);
  } else {
    return "unknown key '" + key + "'";
  }
  return {};
}

std::string apply_overrides(SimConfig& cfg,
                            std::span<const char* const> args) {
  for (const char* a : args) {
    if (auto err = apply_override(cfg, a); !err.empty()) return err;
  }
  return {};
}

}  // namespace dxbar
