#include "common/text.hpp"

#include <cctype>
#include <string>

namespace dxbar {

bool natural_less(std::string_view a, std::string_view b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const unsigned char ca = static_cast<unsigned char>(a[i]);
    const unsigned char cb = static_cast<unsigned char>(b[j]);
    if (std::isdigit(ca) && std::isdigit(cb)) {
      std::size_t ia = i, jb = j;
      while (ia < a.size() &&
             std::isdigit(static_cast<unsigned char>(a[ia]))) {
        ++ia;
      }
      while (jb < b.size() &&
             std::isdigit(static_cast<unsigned char>(b[jb]))) {
        ++jb;
      }
      // Compare the digit runs numerically: strip leading zeros, then
      // longer run wins, then lexicographic.
      std::string_view da = a.substr(i, ia - i);
      std::string_view db = b.substr(j, jb - j);
      while (da.size() > 1 && da.front() == '0') da.remove_prefix(1);
      while (db.size() > 1 && db.front() == '0') db.remove_prefix(1);
      if (da.size() != db.size()) return da.size() < db.size();
      if (da != db) return da < db;
      i = ia;
      j = jb;
      continue;
    }
    if (ca != cb) return ca < cb;
    ++i;
    ++j;
  }
  return a.size() - i < b.size() - j;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative matcher with single-star backtracking: on mismatch after
  // a '*', re-anchor the star to swallow one more character.
  std::size_t p = 0, t = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace dxbar
