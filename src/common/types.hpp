// Core scalar types and port/direction vocabulary shared by every module.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dxbar {

/// Simulation time in router clock cycles (1 GHz nominal clock).
using Cycle = std::uint64_t;

/// Flat node index into the mesh (row-major: id = y * width + x).
using NodeId = std::uint32_t;

/// Monotonically increasing packet identifier, unique per simulation.
using PacketId = std::uint64_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// The four cardinal link directions plus the local PE port.
/// The numeric values index port arrays throughout the router models.
enum class Direction : std::uint8_t {
  East = 0,   ///< x+
  West = 1,   ///< x-
  North = 2,  ///< y+
  South = 3,  ///< y-
  Local = 4,  ///< processing-element injection/ejection port
};

inline constexpr int kNumLinkDirs = 4;   ///< cardinal link ports per router
inline constexpr int kNumPorts = 5;      ///< link ports + local port

/// All directions including Local, in index order.
inline constexpr std::array<Direction, kNumPorts> kAllPorts = {
    Direction::East, Direction::West, Direction::North, Direction::South,
    Direction::Local};

/// The four link directions only.
inline constexpr std::array<Direction, kNumLinkDirs> kLinkDirs = {
    Direction::East, Direction::West, Direction::North, Direction::South};

constexpr int port_index(Direction d) noexcept {
  return static_cast<int>(d);
}

constexpr Direction port_from_index(int i) noexcept {
  return static_cast<Direction>(i);
}

/// The direction a flit arriving over `d` came *from* at the receiver
/// (East output feeds the West input of the x+ neighbour, etc.).
constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::East: return Direction::West;
    case Direction::West: return Direction::East;
    case Direction::North: return Direction::South;
    case Direction::South: return Direction::North;
    case Direction::Local: return Direction::Local;
  }
  return Direction::Local;
}

constexpr std::string_view to_string(Direction d) noexcept {
  switch (d) {
    case Direction::East: return "E";
    case Direction::West: return "W";
    case Direction::North: return "N";
    case Direction::South: return "S";
    case Direction::Local: return "L";
  }
  return "?";
}

/// Router microarchitectures evaluated in the paper (Figs 5-12), plus
/// extension baselines built on the same substrates.
enum class RouterDesign : std::uint8_t {
  FlitBless,    ///< bufferless deflection routing [Moscibroda & Mutlu]
  Scarab,       ///< bufferless drop + NACK retransmission [Hayenga et al.]
  Buffered4,    ///< generic router, one 4-flit FIFO per input
  Buffered8,    ///< generic router, two 4-flit FIFOs per input (no HoL)
  DXbar,        ///< proposed dual-crossbar router
  UnifiedXbar,  ///< proposed dual-input single-crossbar router
  BufferedVC,   ///< extension: VC router w/ speculative SA (Fig 2(c) style)
  Afc,          ///< extension: adaptive bufferless/buffered switching [AFC]
  Damq,         ///< extension: shared-buffer DAMQ router (one slot pool
                ///< dynamically allocated across inputs) [Tamir & Frazier]
  MinBD,        ///< extension: minimally-buffered deflection (side buffer
                ///< + golden-flit escape) [Fallin et al.]
};

constexpr std::string_view to_string(RouterDesign d) noexcept {
  switch (d) {
    case RouterDesign::FlitBless: return "Flit-Bless";
    case RouterDesign::Scarab: return "SCARAB";
    case RouterDesign::Buffered4: return "Buffered 4";
    case RouterDesign::Buffered8: return "Buffered 8";
    case RouterDesign::DXbar: return "DXbar";
    case RouterDesign::UnifiedXbar: return "Unified Xbar";
    case RouterDesign::BufferedVC: return "Buffered VC";
    case RouterDesign::Afc: return "AFC";
    case RouterDesign::Damq: return "DAMQ";
    case RouterDesign::MinBD: return "minBD";
  }
  return "?";
}

/// The nine synthetic traffic patterns of the paper's evaluation.
enum class TrafficPattern : std::uint8_t {
  UniformRandom,     ///< UR
  NonUniformRandom,  ///< NUR: 25% extra traffic to a hot-spot node group
  BitReversal,       ///< BR
  Butterfly,         ///< BF: swap MSB and LSB of the node index
  Complement,        ///< CP
  Transpose,         ///< MT: (x, y) -> (y, x)
  PerfectShuffle,    ///< PS: rotate node-index bits left by one
  Neighbor,          ///< NB: (x+1 mod W, y)
  Tornado,           ///< TOR: (x + ceil(W/2) - 1 mod W, y)
};

inline constexpr int kNumPatterns = 9;

inline constexpr std::array<TrafficPattern, kNumPatterns> kAllPatterns = {
    TrafficPattern::UniformRandom, TrafficPattern::NonUniformRandom,
    TrafficPattern::BitReversal,   TrafficPattern::Butterfly,
    TrafficPattern::Complement,    TrafficPattern::Transpose,
    TrafficPattern::PerfectShuffle, TrafficPattern::Neighbor,
    TrafficPattern::Tornado};

constexpr std::string_view to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::UniformRandom: return "UR";
    case TrafficPattern::NonUniformRandom: return "NUR";
    case TrafficPattern::BitReversal: return "BR";
    case TrafficPattern::Butterfly: return "BF";
    case TrafficPattern::Complement: return "CP";
    case TrafficPattern::Transpose: return "MT";
    case TrafficPattern::PerfectShuffle: return "PS";
    case TrafficPattern::Neighbor: return "NB";
    case TrafficPattern::Tornado: return "TOR";
  }
  return "?";
}

/// Message classes for request-reply (closed-loop) traffic.  Replies
/// must never be blocked behind requests — they ride a reserved VC
/// partition on buffered-VC designs and win age-arbitration ties on
/// every other design — so request-reply dependency cycles cannot
/// protocol-deadlock (DESIGN.md section 12).  Writebacks (coherence-mix
/// evictions) are terminal fire-and-forget messages: nothing downstream
/// ever waits on one, so giving them the highest class priority can
/// only shorten dependency chains, never close a cycle.
enum class MsgClass : std::uint8_t {
  Request = 0,
  Reply = 1,
  Writeback = 2,
};

constexpr std::string_view to_string(MsgClass c) noexcept {
  switch (c) {
    case MsgClass::Request: return "req";
    case MsgClass::Reply: return "rep";
    case MsgClass::Writeback: return "wb";
  }
  return "?";
}

/// Which workload model drives injection for a run.
enum class WorkloadKind : std::uint8_t {
  Synthetic,   ///< open-loop Bernoulli pattern traffic (the paper's)
  ClosedLoop,  ///< finite-MLP request-reply clients (DESIGN.md section 12)
};

constexpr std::string_view to_string(WorkloadKind k) noexcept {
  switch (k) {
    case WorkloadKind::Synthetic: return "synthetic";
    case WorkloadKind::ClosedLoop: return "closedloop";
  }
  return "?";
}

/// Routing algorithms: the paper evaluates DOR and West-First; the
/// other turn models are extensions on the same interface.
enum class RoutingAlgo : std::uint8_t {
  DOR,            ///< dimension-ordered (XY) deterministic routing
  WestFirst,      ///< west-first minimal adaptive (turn model)
  NegativeFirst,  ///< extension: negative-first minimal adaptive
  NorthLast,      ///< extension: north-last minimal adaptive
};

constexpr std::string_view to_string(RoutingAlgo a) noexcept {
  switch (a) {
    case RoutingAlgo::DOR: return "DOR";
    case RoutingAlgo::WestFirst: return "WF";
    case RoutingAlgo::NegativeFirst: return "NF";
    case RoutingAlgo::NorthLast: return "NL";
  }
  return "?";
}

}  // namespace dxbar
