// Minimal JSON emission (no external dependency): an append-style
// writer with automatic comma/indent bookkeeping, plus serializers for
// the two structs the experiment harness persists (SimConfig, RunStats).
//
// Doubles are printed with %.17g so a reader recovers the exact bit
// pattern — the harness's determinism guarantees are checked through
// this text form.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single line.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) {
    return value(static_cast<std::uint64_t>(u));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void before_value();
  void newline();

  std::string out_;
  int indent_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Emits every SimConfig knob as one JSON object, using the same key
/// names apply_override accepts where one exists (so a config object can
/// be replayed as key=value overrides).
void json_config(JsonWriter& w, const SimConfig& cfg);

/// Emits a RunStats as one JSON object (raw fields plus the derived
/// energy-per-packet metric the paper plots).
void json_run_stats(JsonWriter& w, const RunStats& s);

}  // namespace dxbar
