// Minimal JSON emission and parsing (no external dependency): an
// append-style writer with automatic comma/indent bookkeeping, a small
// recursive-descent DOM parser, plus serializers for the two structs
// the experiment harness persists (SimConfig, RunStats).
//
// Doubles are printed with %.17g so a reader recovers the exact bit
// pattern — the harness's determinism guarantees are checked through
// this text form.  The parser keeps every number's source lexeme, so
// integer fields round-trip without a double conversion in between.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single line.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) {
    return value(static_cast<std::uint64_t>(u));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void before_value();
  void newline();

  std::string out_;
  int indent_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Parsed JSON document node.  Numbers keep their source lexeme and are
/// converted on access, so `%.17g`-printed doubles recover the exact
/// bit pattern and 64-bit integers never round through a double.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  /// String value (unescaped) for Type::String; number lexeme for
  /// Type::Number.
  std::string scalar;
  std::vector<JsonValue> items;  ///< Type::Array elements, in order
  /// Type::Object members in source order (duplicate keys are rejected
  /// by the parser).
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::Null; }
  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::Array; }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::String;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::Number;
  }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::Bool; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Number conversions (valid only for Type::Number; strtod of a
  /// %.17g lexeme is bit-exact).
  [[nodiscard]] double as_double() const noexcept;
  [[nodiscard]] std::int64_t as_int64() const noexcept;
  [[nodiscard]] std::uint64_t as_uint64() const noexcept;

  /// Human name of `type` for error messages ("object", "number", ...).
  [[nodiscard]] std::string_view type_name() const noexcept;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// anything else after the value is an error).  Returns an empty string
/// on success, or an actionable message with 1-based line:column
/// position ("line 3:17: expected ':' after object key").
std::string json_parse(std::string_view text, JsonValue& out);

/// Emits every SimConfig knob as one JSON object, using the same key
/// names apply_override accepts where one exists (so a config object can
/// be replayed as key=value overrides).
void json_config(JsonWriter& w, const SimConfig& cfg);

/// Emits a RunStats as one JSON object (raw fields plus the derived
/// energy-per-packet metric the paper plots).
void json_run_stats(JsonWriter& w, const RunStats& s);

}  // namespace dxbar
