// Fixed-bucket latency histogram.
//
// End-to-end request latencies are tracked as bucket counts, not a
// sample vector, so the closed-loop workload composes with everything
// the sample-vector StatsCollector cannot: snapshots stay O(buckets)
// regardless of run length, two replicas' histograms merge by adding
// counters, and save/restore round-trips are bit-exact.
//
// Layout: latencies below kLinearBuckets cycles get one exact bucket
// each; above that, one major bucket per power of two split into 16
// linear sub-buckets (constant ~6% relative quantile error), up to
// 2^(kMaxMajor+1) cycles where the final bucket absorbs the tail.
// Count, sum and max are tracked exactly, so the mean and the maximum
// carry no bucketing error — only the interior quantiles do.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

class LatencyHistogram {
 public:
  static constexpr std::uint64_t kLinearBuckets = 128;  // exact below this
  static constexpr int kSubBits = 4;                    // 16 sub-buckets
  static constexpr int kFirstMajor = 7;                 // 2^7 == kLinear
  static constexpr int kMaxMajor = 39;                  // tail above 2^40
  static constexpr std::size_t kNumBuckets =
      kLinearBuckets +
      static_cast<std::size_t>(kMaxMajor - kFirstMajor + 1) * (1u << kSubBits);

  void record(Cycle latency) noexcept {
    ++buckets_[bucket_index(latency)];
    ++count_;
    sum_ += latency;
    if (latency > max_) max_ = latency;
  }

  /// Adds another histogram's samples into this one.
  void merge(const LatencyHistogram& o) noexcept {
    for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  [[nodiscard]] double max() const noexcept {
    return static_cast<double>(max_);
  }

  /// Quantile by bucket walk: the representative value of the bucket
  /// holding the rank-floor(q*(n-1)) sample.  Exact below kLinearBuckets
  /// cycles; bucket midpoint above.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return representative(i);
    }
    return static_cast<double>(max_);
  }

  // ---- snapshot protocol ---------------------------------------------
  void save(SnapshotWriter& w) const {
    w.u64(count_);
    w.u64(sum_);
    w.u64(max_);
    // Sparse encoding: (index, count) pairs for nonzero buckets.
    std::uint64_t nonzero = 0;
    for (std::uint64_t b : buckets_) nonzero += b != 0 ? 1 : 0;
    w.u64(nonzero);
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] != 0) {
        w.u32(static_cast<std::uint32_t>(i));
        w.u64(buckets_[i]);
      }
    }
  }
  void load(SnapshotReader& r) {
    buckets_.fill(0);
    count_ = r.u64();
    sum_ = r.u64();
    max_ = r.u64();
    const std::uint64_t nonzero = r.count();
    for (std::uint64_t i = 0; i < nonzero; ++i) {
      const std::uint32_t idx = r.u32();
      if (idx >= kNumBuckets) {
        throw SnapshotError("latency histogram bucket index out of range");
      }
      buckets_[idx] = r.u64();
    }
  }

 private:
  [[nodiscard]] static std::size_t bucket_index(Cycle v) noexcept {
    if (v < kLinearBuckets) return static_cast<std::size_t>(v);
    int major = 63 - __builtin_clzll(v);
    if (major > kMaxMajor) {
      major = kMaxMajor;
      v = (Cycle{1} << (kMaxMajor + 1)) - 1;  // clamp into the last bucket
    }
    const std::size_t sub =
        static_cast<std::size_t>(v >> (major - kSubBits)) & ((1u << kSubBits) - 1);
    return kLinearBuckets +
           static_cast<std::size_t>(major - kFirstMajor) * (1u << kSubBits) +
           sub;
  }

  [[nodiscard]] static double representative(std::size_t idx) noexcept {
    if (idx < kLinearBuckets) return static_cast<double>(idx);
    const std::size_t rel = idx - kLinearBuckets;
    const int major = kFirstMajor + static_cast<int>(rel >> kSubBits);
    const std::size_t sub = rel & ((1u << kSubBits) - 1);
    const double width =
        static_cast<double>(Cycle{1} << (major - kSubBits));
    return static_cast<double>(Cycle{1} << major) +
           (static_cast<double>(sub) + 0.5) * width;
  }

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dxbar
