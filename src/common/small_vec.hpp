// Tiny fixed-capacity inline vector for hot-path port lists (no heap).
#pragma once

#include <cassert>
#include <cstddef>

namespace dxbar {

template <typename T, std::size_t N>
class SmallVec {
 public:
  void push_back(T v) {
    assert(size_ < N);
    data_[size_++] = v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] bool contains(const T& v) const noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == v) return true;
    }
    return false;
  }

 private:
  T data_[N] = {};
  std::size_t size_ = 0;
};

/// Stable insertion sort for tiny ranges.  Used instead of std::sort on
/// SmallVec contents: the ranges never exceed a handful of elements and
/// std::sort's 16-element insertion threshold trips GCC's array-bounds
/// analysis on fixed-size storage.
template <typename T, std::size_t N, typename Less>
void insertion_sort(SmallVec<T, N>& v, Less less) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    T key = v[i];
    std::size_t j = i;
    while (j > 0 && less(key, v[j - 1])) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = key;
  }
}

}  // namespace dxbar
