// Open-addressed hash map keyed by non-zero PacketId, used for the
// ejection-side reassembly MSHRs.
//
// std::unordered_map allocates one node per insert, which put the
// global allocator on the per-packet hot path.  This table stores
// slots inline in one flat array (linear probing, backward-shift
// deletion), so lookups are one cache line in the common case and the
// only heap traffic is the rare amortized rehash.  The live population
// is bounded by packets concurrently in flight, which is small, so the
// table stays compact.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dxbar {

template <typename V>
class PacketMap {
 public:
  explicit PacketMap(std::size_t initial_capacity = 64) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap *= 2;
    slots_.resize(cap);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visits every (key, value) pair in slot order.  Slot order depends
  /// on insertion history, so callers must not attach semantics to it —
  /// serialization may use it because rebuilding the map in any order
  /// reproduces identical lookup behaviour.
  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.key != 0) f(s.key, s.value);
    }
  }

  /// Empties the map, keeping the current capacity.
  void clear() noexcept {
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  /// Value for `key`, default-constructing it on first access.
  V& operator[](PacketId key) {
    assert(key != 0 && "PacketId 0 is the empty-slot sentinel");
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) {
        s.key = key;
        s.value = V{};
        ++size_;
        return s.value;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Removes `key` if present (backward-shift deletion keeps probe
  /// chains intact without tombstones).
  void erase(PacketId key) {
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == 0) return;  // not present
      if (s.key == key) break;
      i = (i + 1) & (slots_.size() - 1);
    }
    --size_;
    std::size_t hole = i;
    for (;;) {
      i = (i + 1) & (slots_.size() - 1);
      Slot& s = slots_[i];
      if (s.key == 0) break;
      // A slot may backfill the hole only if its home position does not
      // lie strictly between the hole and the slot (cyclically).
      const std::size_t home = probe_start(s.key);
      const bool movable = ((i - home) & (slots_.size() - 1)) >=
                           ((i - hole) & (slots_.size() - 1));
      if (movable) {
        slots_[hole] = s;
        hole = i;
      }
    }
    slots_[hole] = Slot{};
  }

 private:
  struct Slot {
    PacketId key = 0;
    V value{};
  };

  [[nodiscard]] std::size_t probe_start(PacketId key) const noexcept {
    // Fibonacci hashing spreads the sequential packet ids.
    return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ULL) &
           (slots_.size() - 1);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != 0) (*this)[s.key] = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace dxbar
