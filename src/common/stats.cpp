#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "snapshot/serialize.hpp"

namespace dxbar {
namespace {

/// Nearest-rank percentile of a sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

RunStats StatsCollector::summarize(double offered_load, bool drained) const {
  RunStats out;
  out.offered_load = offered_load;
  out.cycles = window_end_ - window_start_;
  out.flits_ejected = window_flits_ejected_;
  out.flits_injected = window_flits_injected_;
  out.drained = drained;

  if (out.cycles > 0 && num_nodes_ > 0) {
    out.accepted_load = static_cast<double>(window_flits_ejected_) /
                        (static_cast<double>(out.cycles) * num_nodes_);

    if (out.cycles >= kBatches) {
      const double batch_cycles =
          static_cast<double>(out.cycles) / kBatches;
      double mean = 0.0;
      for (auto b : batch_ejections_) {
        mean += static_cast<double>(b) / (batch_cycles * num_nodes_);
      }
      mean /= kBatches;
      double var = 0.0;
      for (auto b : batch_ejections_) {
        const double x = static_cast<double>(b) / (batch_cycles * num_nodes_);
        var += (x - mean) * (x - mean);
      }
      out.accepted_load_stddev = std::sqrt(var / kBatches);
    }
  }

  out.packets_completed = window_packets_.size();
  if (!window_packets_.empty()) {
    double lat = 0.0;
    double net_lat = 0.0;
    double hops = 0.0;
    double defl = 0.0;
    double retx = 0.0;
    double flits = 0.0;
    for (const PacketRecord& p : window_packets_) {
      lat += static_cast<double>(p.latency());
      net_lat += static_cast<double>(p.network_latency());
      hops += static_cast<double>(p.total_hops);
      defl += static_cast<double>(p.total_deflections);
      retx += static_cast<double>(p.total_retransmits);
      flits += static_cast<double>(p.length);
    }
    const auto n = static_cast<double>(window_packets_.size());
    out.avg_packet_latency = lat / n;
    out.avg_network_latency = net_lat / n;

    std::vector<double> sorted;
    sorted.reserve(window_packets_.size());
    for (const PacketRecord& p : window_packets_) {
      sorted.push_back(static_cast<double>(p.latency()));
    }
    std::sort(sorted.begin(), sorted.end());
    out.latency_p50 = percentile(sorted, 0.50);
    out.latency_p95 = percentile(sorted, 0.95);
    out.latency_p99 = percentile(sorted, 0.99);
    out.latency_max = sorted.back();
    if (flits > 0.0) {
      out.avg_hops = hops / flits;
      out.deflections_per_flit = defl / flits;
      out.retransmits_per_flit = retx / flits;
    }
  }
  return out;
}

void StatsCollector::save(SnapshotWriter& w) const {
  w.u64(window_start_);
  w.u64(window_end_);
  w.u64(window_flits_ejected_);
  for (std::uint64_t b : batch_ejections_) w.u64(b);
  w.u64(window_flits_injected_);
  w.u64(window_packets_.size());
  for (const PacketRecord& p : window_packets_) save_packet_record(w, p);
}

void StatsCollector::load(SnapshotReader& r) {
  window_start_ = r.u64();
  window_end_ = r.u64();
  window_flits_ejected_ = r.u64();
  for (std::uint64_t& b : batch_ejections_) b = r.u64();
  window_flits_injected_ = r.u64();
  const std::uint64_t n = r.count(16);
  window_packets_.clear();
  window_packets_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    window_packets_.push_back(load_packet_record(r));
  }
}

}  // namespace dxbar
