// Simulation configuration.  One value-semantic struct describes a whole
// experiment point; helpers parse "key=value" command-line overrides so
// examples and benches share one configuration surface.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dxbar {

struct SimConfig {
  // --- topology -------------------------------------------------------
  int mesh_width = 8;
  int mesh_height = 8;
  /// Extension: wrap the mesh into a torus.  Wrap links close ring
  /// dependency cycles, so only designs with a deflection escape valve
  /// are allowed; the geometric turn models degenerate to minimal
  /// adaptive routing (shortest way around per dimension).
  bool torus = false;

  // --- router microarchitecture ---------------------------------------
  RouterDesign design = RouterDesign::DXbar;
  RoutingAlgo routing = RoutingAlgo::DOR;
  /// Secondary-crossbar / input FIFO depth in flits (paper: 4).
  int buffer_depth = 4;
  /// Consecutive primary-side wins before priority flips (paper: 4).
  int fairness_threshold = 4;
  /// Cycles a DXbar/Unified FIFO head (or the injection front) may be
  /// denied by on/off backpressure before it pushes into a stopped
  /// receiver anyway (liveness valve; see router/router.hpp).  Smaller
  /// values raise peak throughput but cost deflection energy around
  /// hot spots; larger values do the reverse.
  int stall_escape_delay = 16;
  /// Virtual channels per input for the BufferedVC extension baseline
  /// (each gets buffer_depth / num_vcs slots).
  int num_vcs = 2;
  /// Source-side injection queue depth (packets awaiting injection).
  int source_queue_depth = 64;
  /// SCARAB retransmission buffer entries per node.
  int retransmit_buffer = 16;

  // --- traffic ----------------------------------------------------------
  /// Synthetic pattern for open-loop runs.
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  /// Offered load as a fraction of per-node injection capacity
  /// (1.0 == one flit per node per cycle).
  double offered_load = 0.3;
  /// Injection rate used during the warmup phase only; negative (the
  /// default) means "same as offered_load".  Pinning this to one value
  /// across a load sweep makes every point's warmup traffic identical,
  /// which is what lets a warm-start sweep run warmup once, snapshot,
  /// and fork the measured phase bit-exactly (see sim/sweep.hpp).
  double warmup_load = -1.0;
  /// Packet length in flits (cache-line data packet: 64 B / 16 B flits + head).
  int packet_length = 5;
  /// Flit width in bits (paper: 128).
  int flit_bits = 128;

  // --- technology -------------------------------------------------------
  /// Process node in nm for the parametric energy/area model (65, 32 or
  /// 16; the paper's Table III point is 65).  Structural for snapshot
  /// identity: the derived per-event energies are part of what a result
  /// means, even though the cycle-level dynamics are node-independent.
  int tech_node = 65;

  // --- closed-loop workload (workload=closedloop; DESIGN.md section 12) --
  /// Which workload model drives injection.  Synthetic (default) keeps
  /// the paper's open-loop Bernoulli traffic; ClosedLoop switches to the
  /// finite-MLP request-reply client model in src/workload/.
  WorkloadKind workload = WorkloadKind::Synthetic;
  /// Memory-level parallelism: outstanding requests each node may hold.
  int mlp = 4;
  /// Cycles the destination "serves" a request before issuing the reply.
  Cycle service_delay = 8;
  /// Request packet length in flits (a read request is address-only;
  /// the reply carries the data and uses packet_length).
  int request_length = 1;
  /// Fraction of requests aimed at the four mesh-center hotspot nodes
  /// instead of a uniformly random destination.
  double hotspot_fraction = 0.0;
  /// Coherence-shaped client mix: fraction of transactions that are
  /// reads (short request -> long data reply).  The remainder are
  /// writes: a long data-carrying request, a short ack reply, and a
  /// fire-and-forget writeback packet (MsgClass::Writeback — the
  /// evicted victim line) to an independent destination.  1.0 (the
  /// default) draws no extra RNG samples, so pure-read runs are
  /// bit-identical to the pre-knob behaviour.
  double read_fraction = 1.0;

  // --- phases -----------------------------------------------------------
  Cycle warmup_cycles = 1000;
  Cycle measure_cycles = 8000;
  /// Cap on the drain phase after injection stops.
  Cycle drain_cycles = 50000;

  // --- faults -----------------------------------------------------------
  /// Fraction of routers with one failed crossbar in [0, 1]
  /// (paper's "100% faults" == a fault in almost every router).
  double fault_fraction = 0.0;
  /// BIST detection delay in cycles (paper assumes 5).
  Cycle fault_detect_delay = 5;
  /// Crossbar-fault onset spread: faults manifest at a random cycle in
  /// [0, spread).  1 (default) = all faults present from cycle 0, the
  /// paper's static-fault methodology; larger values stagger the onsets
  /// so detection transients occur throughout the run.
  Cycle fault_onset_spread = 1;
  /// Extension: fraction of mesh *edges* that are dead (both directions),
  /// routed around via the fault-aware BFS table.  The plan never
  /// disconnects the mesh.
  double link_fault_fraction = 0.0;

  // --- execution ---------------------------------------------------------
  /// Worker threads one simulation is sharded across (row-strip mesh
  /// partition; see DESIGN.md §10).  Purely an execution knob: results
  /// are bit-exact for every value, and it is clamped to the mesh height
  /// at build time.  Not part of the snapshot identity — a checkpoint
  /// taken at any shard count restores under any other.
  int shards = 1;

  // --- misc ---------------------------------------------------------------
  std::uint64_t seed = 1;
  /// Nonzero: reseed the synthetic workload RNG with this value at the
  /// warmup/measurement boundary.  Replicas that differ only in
  /// measure_seed share a bit-identical warmup phase (so one warm
  /// snapshot forks into all of them) yet diverge statistically in the
  /// measurement window — the mechanism behind `--seeds N`.  Zero (the
  /// default) keeps the classic single-stream behaviour.
  std::uint64_t measure_seed = 0;

  [[nodiscard]] int num_nodes() const noexcept {
    return mesh_width * mesh_height;
  }

  /// Validates invariants; returns an error message or empty on success.
  [[nodiscard]] std::string validate() const;

  /// Human-readable one-per-line summary of every knob.
  [[nodiscard]] std::string describe() const;
};

/// Applies "key=value" overrides (e.g. "load=0.5", "design=bless",
/// "routing=wf") to `cfg`.  Returns an error message for an unknown key
/// or malformed value, empty string on success.
std::string apply_override(SimConfig& cfg, std::string_view arg);

/// Applies a span of overrides; stops at the first error.
std::string apply_overrides(SimConfig& cfg, std::span<const char* const> args);

/// Parses a design name ("bless", "scarab", "buffered4", "buffered8",
/// "dxbar", "unified", "vc", "afc", "damq", "minbd"); returns true on
/// success.
bool parse_design(std::string_view name, RouterDesign& out);

/// Parses a routing algorithm name ("dor" or "wf").
bool parse_routing(std::string_view name, RoutingAlgo& out);

/// Parses a traffic pattern name ("ur", "nur", "br", "bf", "cp", "mt",
/// "ps", "nb", "tor").
bool parse_pattern(std::string_view name, TrafficPattern& out);

}  // namespace dxbar
