// Flit and packet representations.
//
// In every design reproduced here each flit is a *head* flit (paper
// section II.A): it carries its full routing state so flits of one packet
// may be switched independently and arrive out of order.  The destination
// reassembles them via an MSHR-style completion count.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dxbar {

/// Sentinel for "not yet injected into the network" (still queued at the
/// source); the injection queue stamps the real cycle on first pop.
inline constexpr Cycle kNotInjected = ~Cycle{0};

/// A single 128-bit flow-control unit.  The payload itself is not
/// simulated; the struct carries the metadata the routers switch on.
struct Flit {
  PacketId packet = 0;        ///< owning packet id
  std::uint16_t seq = 0;      ///< flit index within the packet
  std::uint16_t packet_len = 1;  ///< total flits in the packet
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Cycle injected_at = 0;      ///< cycle the flit entered the network
  Cycle born_at = 0;          ///< cycle the packet was created (age basis)
  std::uint8_t vc = 0;            ///< virtual channel (VC router only)
  std::uint8_t cls = 0;           ///< MsgClass (replies beat requests)
  std::uint8_t deflections = 0;   ///< times this flit was deflected
  std::uint8_t retransmits = 0;   ///< times this flit was dropped+resent
  std::uint16_t hops = 0;         ///< link traversals so far

  /// Age-based priority: reply-class flits beat request-class flits (the
  /// deadlock-avoidance rule for closed-loop traffic; single-class runs
  /// are unaffected since every cls is 0), then older packets win;
  /// packet id breaks ties so the order is total and deterministic.
  [[nodiscard]] bool older_than(const Flit& o) const noexcept {
    if (cls != o.cls) return cls > o.cls;
    if (born_at != o.born_at) return born_at < o.born_at;
    if (packet != o.packet) return packet < o.packet;
    return seq < o.seq;
  }

  [[nodiscard]] bool is_tail() const noexcept {
    return seq + 1 == packet_len;
  }
};

/// Record of a fully reassembled packet, produced by the ejection-side
/// MSHR model and consumed by the statistics collector.
struct PacketRecord {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint16_t length = 1;
  std::uint8_t cls = 0;  ///< MsgClass of the packet's flits
  Cycle created = 0;    ///< packet creation (queued at source)
  Cycle injected = 0;   ///< first flit entered the network
  Cycle completed = 0;  ///< last flit ejected
  std::uint32_t total_hops = 0;
  std::uint32_t total_deflections = 0;
  std::uint32_t total_retransmits = 0;

  [[nodiscard]] Cycle latency() const noexcept { return completed - created; }
  [[nodiscard]] Cycle network_latency() const noexcept {
    return completed - injected;
  }
};

}  // namespace dxbar
