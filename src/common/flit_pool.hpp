// Per-network flit arena: an index-based slab pool plus an intrusive
// FIFO over it.
//
// Source queues and SCARAB staging previously lived in std::deque, so
// every injection burst touched the global allocator on the hot path.
// The pool recycles fixed slots through a freelist: after a short
// ramp-up (or an up-front reserve) the steady state performs no heap
// traffic at all, and `live()` gives tests an exact leak check — a
// drained network must report zero live flits.
//
// Indices are 32-bit and stable across pool growth (the backing vector
// may reallocate, so *references* returned by at() are invalidated by
// the next acquire; hold indices, not references).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/flit.hpp"
#include "snapshot/serialize.hpp"

namespace dxbar {

class FlitPool {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNil = ~Index{0};

  FlitPool() = default;

  /// Pre-sizes the slab so steady-state traffic never allocates.
  void reserve(std::size_t n) { nodes_.reserve(n); }

  /// Copies `f` into a recycled (or fresh) slot and returns its index.
  Index acquire(const Flit& f) {
    Index idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = nodes_[idx].next;
    } else {
      idx = static_cast<Index>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[idx].flit = f;
    nodes_[idx].next = kNil;
    ++live_;
    return idx;
  }

  /// Returns a slot to the freelist.  The flit value becomes garbage.
  void release(Index idx) {
    assert(idx < nodes_.size());
    assert(live_ > 0);
    nodes_[idx].next = free_head_;
    free_head_ = idx;
    --live_;
  }

  [[nodiscard]] Flit& at(Index idx) {
    assert(idx < nodes_.size());
    return nodes_[idx].flit;
  }
  [[nodiscard]] const Flit& at(Index idx) const {
    assert(idx < nodes_.size());
    return nodes_[idx].flit;
  }

  [[nodiscard]] Index next(Index idx) const {
    assert(idx < nodes_.size());
    return nodes_[idx].next;
  }
  void set_next(Index idx, Index n) {
    assert(idx < nodes_.size());
    nodes_[idx].next = n;
  }

  /// Flits currently acquired and not yet released ("live allocations").
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  /// Total slots ever created (high-water mark of concurrent flits).
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    Flit flit;
    Index next = kNil;
  };
  std::vector<Node> nodes_;
  Index free_head_ = kNil;
  std::size_t live_ = 0;
};

/// FIFO of pooled flits with O(1) push_back / push_front / pop_front —
/// the operation set the injection queues need.  Intrusively linked
/// through the pool, so the queue itself is three words and never
/// allocates.
class PooledFlitDeque {
 public:
  /// Wires the backing pool; the queue must be empty when re-attached.
  void attach_pool(FlitPool* pool) noexcept {
    assert(size_ == 0);
    pool_ = pool;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] const Flit& front() const {
    assert(!empty());
    return pool_->at(head_);
  }
  [[nodiscard]] Flit& front() {
    assert(!empty());
    return pool_->at(head_);
  }

  void push_back(const Flit& f) {
    const FlitPool::Index idx = pool_->acquire(f);
    if (tail_ == FlitPool::kNil) {
      head_ = tail_ = idx;
    } else {
      pool_->set_next(tail_, idx);
      tail_ = idx;
    }
    ++size_;
  }

  void push_front(const Flit& f) {
    const FlitPool::Index idx = pool_->acquire(f);
    pool_->set_next(idx, head_);
    head_ = idx;
    if (tail_ == FlitPool::kNil) tail_ = idx;
    ++size_;
  }

  Flit pop_front() {
    assert(!empty());
    const FlitPool::Index idx = head_;
    const Flit f = pool_->at(idx);
    head_ = pool_->next(idx);
    if (head_ == FlitPool::kNil) tail_ = FlitPool::kNil;
    pool_->release(idx);
    --size_;
    return f;
  }

  /// Visits every queued flit front-to-back without mutating the queue.
  template <typename F>
  void for_each(F&& f) const {
    for (FlitPool::Index i = head_; i != FlitPool::kNil; i = pool_->next(i)) {
      f(pool_->at(i));
    }
  }

  /// Releases every queued flit back to the pool.
  void clear() {
    while (!empty()) (void)pop_front();
  }

  /// Snapshot protocol: the queue serializes by value (front-to-back);
  /// pool slot assignment is an implementation detail the restore
  /// re-derives by re-acquiring slots, so freelist layout never has to
  /// match across a save/load round trip.
  void save(SnapshotWriter& w) const {
    w.u64(size_);
    for_each([&](const Flit& f) { save_flit(w, f); });
  }
  void load(SnapshotReader& r) {
    clear();
    const std::uint64_t n = r.count(8);
    for (std::uint64_t i = 0; i < n; ++i) push_back(load_flit(r));
  }

 private:
  FlitPool* pool_ = nullptr;
  FlitPool::Index head_ = FlitPool::kNil;
  FlitPool::Index tail_ = FlitPool::kNil;
  std::size_t size_ = 0;
};

}  // namespace dxbar
