// Fixed-capacity ring-buffer FIFO used for router input buffers and
// source queues.  No heap allocation after construction; overflow and
// underflow are programming errors and assert in debug builds.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace dxbar {

template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return slots_.size() - size_;
  }

  /// Append to the tail.  Pushing to a full queue is a programming
  /// error: it asserts in debug builds, and in release builds returns
  /// false without dropping anything (so a missed caller check degrades
  /// to back-pressure, not silent truncation).  Callers that probe for
  /// space as part of normal control flow use try_push instead.
  bool push(T value) {
    assert(!full() && "push to full FixedQueue");
    return try_push(std::move(value));
  }

  /// Append to the tail if space remains; returns false when full.
  bool try_push(T value) {
    if (full()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// The element at the head; queue must be non-empty.
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return slots_[head_];
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return slots_[head_];
  }

  /// Remove and return the head element; queue must be non-empty.
  T pop() {
    assert(!empty());
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return out;
  }

  /// Element i positions behind the head (0 == front).
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dxbar
