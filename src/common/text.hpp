// Small string utilities shared across subsystems: natural ordering
// (digit runs compare numerically, so "fig5" < "fig10") and shell-style
// glob matching for experiment-name filters.
#pragma once

#include <string_view>

namespace dxbar {

/// Natural string comparison: digit runs compare numerically, so
/// "fig5" < "fig10" and "table1" < "table3".
bool natural_less(std::string_view a, std::string_view b);

/// Shell-style glob match over the whole of `text`: `*` matches any run
/// (including empty), `?` matches exactly one character; everything
/// else matches literally.  No character classes.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace dxbar
