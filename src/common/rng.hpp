// Deterministic, fast pseudo-random streams.
//
// All stochastic behaviour in the simulator (Bernoulli injection, traffic
// destinations, fault placement) draws from these generators so that a
// given seed reproduces a run bit-for-bit.  SplitMix64 seeds xoshiro256**.
#pragma once

#include <cstdint>

#include "snapshot/snapshot.hpp"

namespace dxbar {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint32_t below(std::uint32_t bound) noexcept {
    std::uint64_t x = (*this)() >> 32;
    std::uint64_t m = x * bound;
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Snapshot protocol: the four state words capture the stream exactly.
  void save(SnapshotWriter& w) const {
    for (std::uint64_t s : s_) w.u64(s);
  }
  void load(SnapshotReader& r) {
    for (std::uint64_t& s : s_) s = r.u64();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace dxbar
