#include "common/json.hpp"

#include <cstdio>

namespace dxbar {

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
  if (depth_ > 0) newline();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  --depth_;
  if (need_comma_) newline();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  --depth_;
  if (need_comma_) newline();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (need_comma_) out_ += ',';
  newline();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  need_comma_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // JSON has no inf/nan literals; clamp to null.
  const std::string_view sv(buf);
  if (sv.find("inf") != std::string_view::npos ||
      sv.find("nan") != std::string_view::npos) {
    out_ += "null";
  } else {
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  before_value();
  out_ += std::to_string(i);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  before_value();
  out_ += std::to_string(u);
  need_comma_ = true;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_config(JsonWriter& w, const SimConfig& cfg) {
  w.begin_object();
  w.key("width").value(cfg.mesh_width);
  w.key("height").value(cfg.mesh_height);
  w.key("topology").value(cfg.torus ? "torus" : "mesh");
  w.key("design").value(to_string(cfg.design));
  w.key("routing").value(to_string(cfg.routing));
  w.key("pattern").value(to_string(cfg.pattern));
  w.key("buffer_depth").value(cfg.buffer_depth);
  w.key("fairness_threshold").value(cfg.fairness_threshold);
  w.key("stall_escape").value(cfg.stall_escape_delay);
  w.key("num_vcs").value(cfg.num_vcs);
  w.key("source_queue_depth").value(cfg.source_queue_depth);
  w.key("retransmit_buffer").value(cfg.retransmit_buffer);
  w.key("load").value(cfg.offered_load);
  w.key("warmup_load").value(cfg.warmup_load);
  w.key("packet_length").value(cfg.packet_length);
  w.key("flit_bits").value(cfg.flit_bits);
  w.key("warmup").value(static_cast<std::uint64_t>(cfg.warmup_cycles));
  w.key("measure").value(static_cast<std::uint64_t>(cfg.measure_cycles));
  w.key("drain").value(static_cast<std::uint64_t>(cfg.drain_cycles));
  w.key("faults").value(cfg.fault_fraction);
  w.key("fault_detect_delay")
      .value(static_cast<std::uint64_t>(cfg.fault_detect_delay));
  w.key("fault_onset_spread")
      .value(static_cast<std::uint64_t>(cfg.fault_onset_spread));
  w.key("link_faults").value(cfg.link_fault_fraction);
  w.key("seed").value(cfg.seed);
  w.end_object();
}

void json_run_stats(JsonWriter& w, const RunStats& s) {
  w.begin_object();
  w.key("offered_load").value(s.offered_load);
  w.key("accepted_load").value(s.accepted_load);
  w.key("accepted_load_stddev").value(s.accepted_load_stddev);
  w.key("avg_packet_latency").value(s.avg_packet_latency);
  w.key("avg_network_latency").value(s.avg_network_latency);
  w.key("latency_p50").value(s.latency_p50);
  w.key("latency_p95").value(s.latency_p95);
  w.key("latency_p99").value(s.latency_p99);
  w.key("latency_max").value(s.latency_max);
  w.key("avg_hops").value(s.avg_hops);
  w.key("deflections_per_flit").value(s.deflections_per_flit);
  w.key("retransmits_per_flit").value(s.retransmits_per_flit);
  w.key("packets_completed").value(s.packets_completed);
  w.key("flits_ejected").value(s.flits_ejected);
  w.key("flits_injected").value(s.flits_injected);
  w.key("cycles").value(s.cycles);
  w.key("packet_length").value(s.packet_length);
  w.key("drained").value(s.drained);
  w.key("energy_buffer_nj").value(s.energy_buffer_nj);
  w.key("energy_crossbar_nj").value(s.energy_crossbar_nj);
  w.key("energy_link_nj").value(s.energy_link_nj);
  w.key("energy_control_nj").value(s.energy_control_nj);
  w.key("energy_per_packet_nj").value(s.energy_per_packet_nj());
  w.end_object();
}

}  // namespace dxbar
