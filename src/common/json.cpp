#include "common/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dxbar {

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
  if (depth_ > 0) newline();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  --depth_;
  if (need_comma_) newline();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  --depth_;
  if (need_comma_) newline();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (need_comma_) out_ += ',';
  newline();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  need_comma_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // JSON has no inf/nan literals; clamp to null.
  const std::string_view sv(buf);
  if (sv.find("inf") != std::string_view::npos ||
      sv.find("nan") != std::string_view::npos) {
    out_ += "null";
  } else {
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  before_value();
  out_ += std::to_string(i);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  before_value();
  out_ += std::to_string(u);
  need_comma_ = true;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_double() const noexcept {
  return std::strtod(scalar.c_str(), nullptr);
}

std::int64_t JsonValue::as_int64() const noexcept {
  return std::strtoll(scalar.c_str(), nullptr, 10);
}

std::uint64_t JsonValue::as_uint64() const noexcept {
  return std::strtoull(scalar.c_str(), nullptr, 10);
}

std::string_view JsonValue::type_name() const noexcept {
  switch (type) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Number: return "number";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
  }
  return "?";
}

namespace {

/// Recursive-descent parser over an in-memory document.  Errors carry a
/// 1-based line:column computed from the failing offset.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::string parse(JsonValue& out) {
    std::string err = value(out, 0);
    if (!err.empty()) return err;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing content after the JSON document");
    }
    return {};
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    char where[48];
    std::snprintf(where, sizeof(where), "line %zu:%zu: ", line, col);
    return where + what;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::string string_body(std::string& out) {
    // Caller consumed the opening quote.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return {};
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character inside string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode (surrogate pairs are not combined — the writer
          // only ever emits \u00xx for control characters).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape sequence");
      }
    }
    return fail("unterminated string");
  }

  std::string number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&]() {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) return fail("malformed number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail("malformed number (missing fraction)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return fail("malformed number (missing exponent)");
    }
    out.type = JsonValue::Type::Number;
    out.scalar.assign(text_.substr(start, pos_ - start));
    return {};
  }

  std::string value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = JsonValue::Type::Object;
      if (eat('}')) return {};
      do {
        skip_ws();
        if (!eat('"')) return fail("expected '\"' to open an object key");
        std::string key;
        if (auto err = string_body(key); !err.empty()) return err;
        if (out.find(key) != nullptr) {
          return fail("duplicate object key \"" + key + "\"");
        }
        if (!eat(':')) return fail("expected ':' after object key");
        JsonValue member;
        if (auto err = value(member, depth + 1); !err.empty()) return err;
        out.members.emplace_back(std::move(key), std::move(member));
      } while (eat(','));
      if (!eat('}')) return fail("expected ',' or '}' inside object");
      return {};
    }
    if (c == '[') {
      ++pos_;
      out.type = JsonValue::Type::Array;
      if (eat(']')) return {};
      do {
        JsonValue item;
        if (auto err = value(item, depth + 1); !err.empty()) return err;
        out.items.push_back(std::move(item));
      } while (eat(','));
      if (!eat(']')) return fail("expected ',' or ']' inside array");
      return {};
    }
    if (c == '"') {
      ++pos_;
      out.type = JsonValue::Type::String;
      return string_body(out.scalar);
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal (expected 'true')");
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      return {};
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal (expected 'false')");
      out.type = JsonValue::Type::Bool;
      out.boolean = false;
      return {};
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal (expected 'null')");
      out.type = JsonValue::Type::Null;
      return {};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return number(out);
    return fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_parse(std::string_view text, JsonValue& out) {
  out = JsonValue{};
  return JsonParser(text).parse(out);
}

void json_config(JsonWriter& w, const SimConfig& cfg) {
  w.begin_object();
  w.key("width").value(cfg.mesh_width);
  w.key("height").value(cfg.mesh_height);
  w.key("topology").value(cfg.torus ? "torus" : "mesh");
  w.key("design").value(to_string(cfg.design));
  w.key("routing").value(to_string(cfg.routing));
  w.key("pattern").value(to_string(cfg.pattern));
  w.key("buffer_depth").value(cfg.buffer_depth);
  w.key("fairness_threshold").value(cfg.fairness_threshold);
  w.key("stall_escape").value(cfg.stall_escape_delay);
  w.key("num_vcs").value(cfg.num_vcs);
  w.key("source_queue_depth").value(cfg.source_queue_depth);
  w.key("retransmit_buffer").value(cfg.retransmit_buffer);
  w.key("load").value(cfg.offered_load);
  w.key("warmup_load").value(cfg.warmup_load);
  w.key("packet_length").value(cfg.packet_length);
  w.key("flit_bits").value(cfg.flit_bits);
  // Written only off the paper's 65 nm default so existing result
  // corpora (including the golden fixture) stay byte-identical.
  if (cfg.tech_node != 65) w.key("tech").value(cfg.tech_node);
  w.key("warmup").value(static_cast<std::uint64_t>(cfg.warmup_cycles));
  w.key("measure").value(static_cast<std::uint64_t>(cfg.measure_cycles));
  w.key("drain").value(static_cast<std::uint64_t>(cfg.drain_cycles));
  w.key("faults").value(cfg.fault_fraction);
  w.key("fault_detect_delay")
      .value(static_cast<std::uint64_t>(cfg.fault_detect_delay));
  w.key("fault_onset_spread")
      .value(static_cast<std::uint64_t>(cfg.fault_onset_spread));
  w.key("link_faults").value(cfg.link_fault_fraction);
  w.key("seed").value(cfg.seed);
  // Written only when set, like the `shards` execution knob it follows:
  // existing result corpora stay byte-identical.
  if (cfg.measure_seed != 0) w.key("measure_seed").value(cfg.measure_seed);
  // Closed-loop knobs appear only for closed-loop runs, so synthetic
  // result corpora (including the golden file) stay byte-identical.
  if (cfg.workload != WorkloadKind::Synthetic) {
    w.key("workload").value(to_string(cfg.workload));
    w.key("mlp").value(cfg.mlp);
    w.key("service_delay").value(static_cast<std::uint64_t>(cfg.service_delay));
    w.key("request_length").value(cfg.request_length);
    w.key("hotspot_fraction").value(cfg.hotspot_fraction);
    // Written only off the pure-read default, so pre-coherence-mix
    // closed-loop corpora stay byte-identical.
    if (cfg.read_fraction != 1.0) {
      w.key("read_fraction").value(cfg.read_fraction);
    }
  }
  w.end_object();
}

void json_run_stats(JsonWriter& w, const RunStats& s) {
  w.begin_object();
  w.key("offered_load").value(s.offered_load);
  w.key("accepted_load").value(s.accepted_load);
  w.key("accepted_load_stddev").value(s.accepted_load_stddev);
  w.key("avg_packet_latency").value(s.avg_packet_latency);
  w.key("avg_network_latency").value(s.avg_network_latency);
  w.key("latency_p50").value(s.latency_p50);
  w.key("latency_p95").value(s.latency_p95);
  w.key("latency_p99").value(s.latency_p99);
  w.key("latency_max").value(s.latency_max);
  w.key("avg_hops").value(s.avg_hops);
  w.key("deflections_per_flit").value(s.deflections_per_flit);
  w.key("retransmits_per_flit").value(s.retransmits_per_flit);
  w.key("packets_completed").value(s.packets_completed);
  w.key("flits_ejected").value(s.flits_ejected);
  w.key("flits_injected").value(s.flits_injected);
  w.key("cycles").value(s.cycles);
  w.key("packet_length").value(s.packet_length);
  w.key("drained").value(s.drained);
  w.key("energy_buffer_nj").value(s.energy_buffer_nj);
  w.key("energy_crossbar_nj").value(s.energy_crossbar_nj);
  w.key("energy_link_nj").value(s.energy_link_nj);
  w.key("energy_control_nj").value(s.energy_control_nj);
  // Leakage rides its own optional column (dynamic-only totals are what
  // Table III pins); zero only when the window is empty, in which case
  // omitting it keeps legacy documents byte-identical.
  if (s.energy_leakage_nj != 0.0) {
    w.key("energy_leakage_nj").value(s.energy_leakage_nj);
  }
  w.key("energy_per_packet_nj").value(s.energy_per_packet_nj());
  // Request-level (closed-loop) block: omitted when no requests
  // completed, which keeps open-loop documents byte-identical.
  if (s.requests_completed != 0) {
    w.key("requests_completed").value(s.requests_completed);
    w.key("avg_req_latency").value(s.avg_req_latency);
    w.key("req_latency_p50").value(s.req_latency_p50);
    w.key("req_latency_p95").value(s.req_latency_p95);
    w.key("req_latency_p99").value(s.req_latency_p99);
    w.key("req_latency_max").value(s.req_latency_max);
  }
  w.end_object();
}

}  // namespace dxbar
