// Measurement-window statistics collection.
//
// The collector tags each packet by whether it was created inside the
// measurement window; throughput counts flit ejections during the window
// and latency averages only window packets, the standard open-loop
// methodology (warmup / measure / drain).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/flit.hpp"
#include "common/latency_histogram.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

/// Aggregate results of one simulation run, in the units the paper plots.
struct RunStats {
  double offered_load = 0.0;    ///< configured fraction of capacity
  double accepted_load = 0.0;   ///< ejected flits / node / cycle (fraction)
  /// Standard deviation of the accepted load across 8 equal sub-batches
  /// of the measurement window — a warm-up/stationarity sanity signal.
  double accepted_load_stddev = 0.0;
  double avg_packet_latency = 0.0;   ///< cycles, creation -> completion
  double avg_network_latency = 0.0;  ///< cycles, injection -> completion
  // Packet-latency distribution over window packets (cycles).
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;
  double avg_hops = 0.0;             ///< link traversals per flit
  double deflections_per_flit = 0.0;
  double retransmits_per_flit = 0.0;
  std::uint64_t packets_completed = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t cycles = 0;       ///< measurement window length
  int packet_length = 1;          ///< flits per packet (for per-packet energy)
  bool drained = false;           ///< all in-flight traffic delivered
  // Energy (nJ) accumulated over the measurement window, split by source.
  double energy_buffer_nj = 0.0;
  double energy_crossbar_nj = 0.0;
  double energy_link_nj = 0.0;
  double energy_control_nj = 0.0;  ///< NACK network, retransmission control
  /// Static (leakage) energy over the measurement window: router area
  /// times the node's leakage density times the window's wall time.
  /// Deliberately EXCLUDED from total_energy_nj — the paper's Table III
  /// numbers are dynamic-only, so the pinned 65 nm energies and every
  /// derived per-flit/per-packet metric stay untouched.  Reported as
  /// its own column where leakage matters (the smaller tech nodes).
  double energy_leakage_nj = 0.0;
  // Closed-loop request-reply latency (cycles, request inject -> reply
  // eject), filled by ClosedLoopWorkload::fill_run_stats; all zero for
  // open-loop runs.
  double avg_req_latency = 0.0;
  double req_latency_p50 = 0.0;
  double req_latency_p95 = 0.0;
  double req_latency_p99 = 0.0;
  double req_latency_max = 0.0;
  std::uint64_t requests_completed = 0;
  /// The full request-latency distribution behind the quantile summary
  /// above (empty for open-loop runs).  Mergeable by construction, so
  /// `--seeds N` replication can pool replicas and report quantiles of
  /// the pooled distribution instead of averaging per-replica
  /// quantiles.
  LatencyHistogram req_hist;

  [[nodiscard]] double total_energy_nj() const noexcept {
    return energy_buffer_nj + energy_crossbar_nj + energy_link_nj +
           energy_control_nj;
  }
  /// Energy per delivered flit over the measurement window (nJ).  Both
  /// numerator and denominator are window-scoped, so the metric stays
  /// unbiased past saturation.
  [[nodiscard]] double energy_per_flit_nj() const noexcept {
    return flits_ejected == 0
               ? 0.0
               : total_energy_nj() / static_cast<double>(flits_ejected);
  }
  /// Average energy per delivered packet (nJ), the paper's Fig 6/8
  /// metric: window energy per ejected flit scaled by the packet length.
  [[nodiscard]] double energy_per_packet_nj() const noexcept {
    return energy_per_flit_nj() * packet_length;
  }
};

/// Window-gated injection counter a single shard can bump without
/// touching the shared StatsCollector.  One tally lives per shard
/// (cache-line aligned so neighbouring shards don't false-share); the
/// network folds every tally into the collector at the end of each
/// cycle via `take()` + `StatsCollector::add_injected`, so the
/// collector's observable state at cycle boundaries is identical to the
/// single-threaded run.
class alignas(64) InjectionTally {
 public:
  InjectionTally(Cycle window_start, Cycle window_end) noexcept
      : window_start_(window_start), window_end_(window_end) {}

  void on_flit_injected(const Flit& f, Cycle now) noexcept {
    if (now >= window_start_ && now < window_end_) ++count_;
    (void)f;
  }

  /// Returns and clears the pending count.
  [[nodiscard]] std::uint64_t take() noexcept {
    const std::uint64_t n = count_;
    count_ = 0;
    return n;
  }

 private:
  Cycle window_start_;
  Cycle window_end_;
  std::uint64_t count_ = 0;
};

/// Collects per-packet records and distils them into RunStats.
class StatsCollector {
 public:
  StatsCollector(Cycle window_start, Cycle window_end, int num_nodes)
      : window_start_(window_start),
        window_end_(window_end),
        num_nodes_(num_nodes) {}

  static constexpr int kBatches = 8;

  /// A flit left the network at its destination at cycle `now`.
  void on_flit_ejected(const Flit& f, Cycle now) noexcept {
    if (now >= window_start_ && now < window_end_) {
      ++window_flits_ejected_;
      const Cycle span = window_end_ - window_start_;
      if (span >= kBatches) {
        const auto b = static_cast<std::size_t>(
            (now - window_start_) * kBatches / span);
        ++batch_ejections_[b < kBatches ? b : kBatches - 1];
      }
    }
    (void)f;
  }

  /// A flit entered the network (left a source queue) at cycle `now`.
  void on_flit_injected(const Flit& f, Cycle now) noexcept {
    if (now >= window_start_ && now < window_end_) ++window_flits_injected_;
    (void)f;
  }

  /// Folds a shard's InjectionTally (already window-gated) in.
  void add_injected(std::uint64_t n) noexcept { window_flits_injected_ += n; }

  /// A packet finished reassembly.  Only packets *created* during the
  /// window contribute to latency averages.
  void on_packet_completed(const PacketRecord& rec) {
    if (rec.created >= window_start_ && rec.created < window_end_) {
      window_packets_.push_back(rec);
    }
  }

  [[nodiscard]] Cycle window_start() const noexcept { return window_start_; }
  [[nodiscard]] Cycle window_end() const noexcept { return window_end_; }
  [[nodiscard]] std::uint64_t window_flits_ejected() const noexcept {
    return window_flits_ejected_;
  }
  [[nodiscard]] const std::vector<PacketRecord>& window_packets()
      const noexcept {
    return window_packets_;
  }

  /// Summarises into RunStats (energy fields are filled by the caller).
  [[nodiscard]] RunStats summarize(double offered_load, bool drained) const;

  /// Snapshot protocol: captures the window bounds and all in-flight
  /// accumulation (ejection/injection counters, batch histogram, window
  /// packet records).
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  Cycle window_start_;
  Cycle window_end_;
  int num_nodes_;
  std::uint64_t window_flits_ejected_ = 0;
  std::array<std::uint64_t, kBatches> batch_ejections_{};
  std::uint64_t window_flits_injected_ = 0;
  std::vector<PacketRecord> window_packets_;
};

/// Online mean/min/max accumulator used in benches.
class Accumulator {
 public:
  void add(double x) noexcept {
    sum_ += x;
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  [[nodiscard]] double mean() const noexcept {
    return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
  }
  [[nodiscard]] double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

 private:
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t n_ = 0;
};

/// Mean and 95% confidence-interval halfwidth (normal approximation,
/// 1.96 * s / sqrt(n), sample stddev with the n-1 divisor) of a small
/// replica set — the statistic behind `dxbar_bench --seeds N`.
struct MeanCi {
  double mean = 0.0;
  double ci95 = 0.0;  ///< halfwidth; 0 for n < 2
};

/// Computes MeanCi over `values`; NaN entries (unmeasurable points,
/// e.g. latency past saturation) poison the mean like they poison a
/// single run, keeping a replicated sweep's gaps where the serial
/// sweep had them.
[[nodiscard]] inline MeanCi mean_ci95(const std::vector<double>& values) {
  MeanCi out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double ss = 0.0;
  for (double v : values) ss += (v - out.mean) * (v - out.mean);
  const double sd =
      std::sqrt(ss / static_cast<double>(values.size() - 1));
  out.ci95 = 1.96 * sd / std::sqrt(static_cast<double>(values.size()));
  return out;
}

}  // namespace dxbar
