#include "alloc/arbiter.hpp"

namespace dxbar {

int RoundRobinArbiter::pick(std::uint32_t requests) const noexcept {
  if (requests == 0) return -1;
  for (int k = 0; k < n_; ++k) {
    const int i = (next_ + k) % n_;
    if (requests & (1u << i)) return i;
  }
  return -1;
}

int RoundRobinArbiter::grant(std::uint32_t requests) noexcept {
  const int winner = pick(requests);
  if (winner >= 0) next_ = (winner + 1) % n_;
  return winner;
}

int pick_oldest(std::span<const Flit* const> candidates) noexcept {
  int best = -1;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const Flit* f = candidates[i];
    if (f == nullptr) continue;
    if (best < 0 || f->older_than(*candidates[best])) best = i;
  }
  return best;
}

}  // namespace dxbar
