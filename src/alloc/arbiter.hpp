// Reusable arbiter primitives.
//
// Routers in this library arbitrate on either rotating priority
// (round-robin, the generic-router default) or packet age (the bufferless
// designs and DXbar, where the oldest flit must win to bound deflections).
#pragma once

#include <cstdint>
#include <span>

#include "common/flit.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

/// Round-robin arbiter over up to 32 requesters.  `grant` returns the
/// winning index (or -1 when no requests) and rotates priority past it.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int num_inputs) : n_(num_inputs) {}

  /// `requests` bit i set means input i requests the resource.
  [[nodiscard]] int pick(std::uint32_t requests) const noexcept;

  /// Picks and advances the priority pointer past the winner.
  int grant(std::uint32_t requests) noexcept;

  [[nodiscard]] int num_inputs() const noexcept { return n_; }
  [[nodiscard]] int priority_pointer() const noexcept { return next_; }

  // Snapshot protocol: the rotating priority pointer is the only state.
  void save(SnapshotWriter& w) const { w.i32(next_); }
  void load(SnapshotReader& r) { next_ = r.i32(); }

 private:
  int n_;
  int next_ = 0;
};

/// Index of the oldest flit among the non-null entries (age-based
/// priority with the deterministic tie-break from Flit::older_than);
/// -1 when all entries are null.
int pick_oldest(std::span<const Flit* const> candidates) noexcept;

}  // namespace dxbar
