// Augmented separable output-first allocator for the unified dual-input
// single crossbar (paper section II.B).
//
// Each of the five input ports can present TWO flits per cycle: the
// bufferless incoming flit (I_k) and the buffered/injection flit (I_k').
// Per output, a P:1 arbiter picks one *input port* among those whose
// OR-combined request includes the output.  Per input port, two V:1
// arbiters in series then bind up to two of the won outputs to the two
// flits; because each arbiter selects an output without knowing which
// flit requested it, the bindings can cross (I_k given the output only
// I_k' wanted and vice versa) — the conflict-detection stage swaps them,
// exactly the multiplexer fix of Fig. 4(c).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace dxbar {

/// One flit's allocation request at an input port.
struct UnifiedCandidate {
  bool valid = false;
  std::uint32_t request_mask = 0;  ///< bit o set: wants output port o
  std::uint64_t age = 0;           ///< smaller == older == higher priority
  bool elevated = false;           ///< fairness-flipped priority class
};

/// Requests of one input port: the bufferless (incoming) flit and the
/// buffered (FIFO-head or injection) flit.
struct UnifiedPortRequest {
  UnifiedCandidate incoming;
  UnifiedCandidate buffered;
};

/// Result per input port: output index granted to each flit, or -1.
struct UnifiedPortGrant {
  int incoming_out = -1;
  int buffered_out = -1;
};

struct UnifiedGrants {
  std::array<UnifiedPortGrant, kNumPorts> port{};
  /// Number of times the conflict-free swap stage fired (statistics).
  int swaps = 0;
};

class UnifiedAllocator {
 public:
  /// `incoming_priority` mirrors DXbar semantics: when true (the normal
  /// case), incoming flits outrank buffered flits at the output arbiters;
  /// the fairness counter flips it.
  [[nodiscard]] UnifiedGrants allocate(
      const std::array<UnifiedPortRequest, kNumPorts>& req,
      bool incoming_priority) const;
};

}  // namespace dxbar
