#include "alloc/separable_allocator.hpp"

#include <cassert>

namespace dxbar {

SeparableAllocator::SeparableAllocator(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  output_arbiters_.reserve(static_cast<std::size_t>(num_outputs));
  for (int o = 0; o < num_outputs; ++o) {
    output_arbiters_.emplace_back(num_inputs);
  }
  input_arbiters_.reserve(static_cast<std::size_t>(num_inputs));
  for (int i = 0; i < num_inputs; ++i) {
    input_arbiters_.emplace_back(num_outputs);
  }
}

std::vector<int> SeparableAllocator::allocate(
    const std::vector<std::uint32_t>& requests) {
  assert(static_cast<int>(requests.size()) == num_inputs_);

  // Stage 1: each output picks one requesting input.
  std::vector<int> output_winner(static_cast<std::size_t>(num_outputs_), -1);
  for (int o = 0; o < num_outputs_; ++o) {
    std::uint32_t req = 0;
    for (int i = 0; i < num_inputs_; ++i) {
      if (requests[static_cast<std::size_t>(i)] & (1u << o)) req |= 1u << i;
    }
    output_winner[static_cast<std::size_t>(o)] =
        output_arbiters_[static_cast<std::size_t>(o)].pick(req);
  }

  // Stage 2: each input picks one output that granted it.
  std::vector<int> grant(static_cast<std::size_t>(num_inputs_), -1);
  for (int i = 0; i < num_inputs_; ++i) {
    std::uint32_t won = 0;
    for (int o = 0; o < num_outputs_; ++o) {
      if (output_winner[static_cast<std::size_t>(o)] == i) won |= 1u << o;
    }
    grant[static_cast<std::size_t>(i)] =
        input_arbiters_[static_cast<std::size_t>(i)].pick(won);
  }

  // Advance only the arbiters whose grants were actually consumed, so
  // unmatched requesters keep their priority (work-conserving rotation).
  for (int i = 0; i < num_inputs_; ++i) {
    const int o = grant[static_cast<std::size_t>(i)];
    if (o >= 0) {
      input_arbiters_[static_cast<std::size_t>(i)].grant(1u << o);
      output_arbiters_[static_cast<std::size_t>(o)].grant(1u << i);
    }
  }
  return grant;
}

}  // namespace dxbar
