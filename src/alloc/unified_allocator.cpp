#include "alloc/unified_allocator.hpp"

#include "common/small_vec.hpp"

namespace dxbar {
namespace {

/// Lower key == higher priority at the output arbiters.
struct PriorityKey {
  int klass;  ///< 0 = favoured flit class this cycle, 1 = other
  std::uint64_t age;

  [[nodiscard]] bool beats(const PriorityKey& o) const noexcept {
    if (klass != o.klass) return klass < o.klass;
    return age < o.age;
  }
};

PriorityKey key_of(const UnifiedCandidate& c, bool is_incoming,
                   bool incoming_priority) {
  const bool favoured = c.elevated || (is_incoming == incoming_priority);
  return {favoured ? 0 : 1, c.age};
}

}  // namespace

UnifiedGrants UnifiedAllocator::allocate(
    const std::array<UnifiedPortRequest, kNumPorts>& req,
    bool incoming_priority) const {
  UnifiedGrants result;

  // ---- Stage 1: per-output P:1 arbitration over input *ports* --------
  // Each port's request line for output o is the OR of its two flits'
  // requests; the arbiter grants the port whose best requesting flit has
  // the highest priority (age-ordered within priority class).
  std::array<int, kNumPorts> output_winner;  // winning port per output
  output_winner.fill(-1);
  for (int o = 0; o < kNumPorts; ++o) {
    int best_port = -1;
    PriorityKey best_key{2, ~std::uint64_t{0}};
    for (int p = 0; p < kNumPorts; ++p) {
      const UnifiedPortRequest& r = req[static_cast<std::size_t>(p)];
      PriorityKey port_key{2, ~std::uint64_t{0}};
      bool requests = false;
      if (r.incoming.valid && (r.incoming.request_mask & (1u << o))) {
        port_key = key_of(r.incoming, /*is_incoming=*/true, incoming_priority);
        requests = true;
      }
      if (r.buffered.valid && (r.buffered.request_mask & (1u << o))) {
        const PriorityKey k =
            key_of(r.buffered, /*is_incoming=*/false, incoming_priority);
        if (!requests || k.beats(port_key)) port_key = k;
        requests = true;
      }
      if (requests && (best_port < 0 || port_key.beats(best_key))) {
        best_port = p;
        best_key = port_key;
      }
    }
    output_winner[static_cast<std::size_t>(o)] = best_port;
  }

  // ---- Stage 2: per-port serial V:1 binding + conflict-free swap -----
  for (int p = 0; p < kNumPorts; ++p) {
    const UnifiedPortRequest& r = req[static_cast<std::size_t>(p)];
    SmallVec<int, kNumPorts> won;
    for (int o = 0; o < kNumPorts; ++o) {
      if (output_winner[static_cast<std::size_t>(o)] == p) won.push_back(o);
    }
    if (won.empty()) continue;

    const std::uint32_t in_mask = r.incoming.valid ? r.incoming.request_mask : 0;
    const std::uint32_t buf_mask = r.buffered.valid ? r.buffered.request_mask : 0;

    // The hardware binds the first won output via the first V:1 arbiter
    // and (serially) a second won output to the *other* flit.  We take
    // the first two won outputs, evaluate both flit<->output pairings,
    // and keep the better one — the swapped pairing models the
    // conflict-detection multiplexers firing.
    const int o1 = won[0];
    const int o2 = won.size() > 1 ? won[1] : -1;

    auto legal = [](std::uint32_t mask, int o) {
      return o >= 0 && (mask & (1u << o)) != 0;
    };
    const int direct = (legal(in_mask, o1) ? 1 : 0) + (legal(buf_mask, o2) ? 1 : 0);
    const int swapped = (legal(in_mask, o2) ? 1 : 0) + (legal(buf_mask, o1) ? 1 : 0);

    UnifiedPortGrant& g = result.port[static_cast<std::size_t>(p)];
    if (swapped > direct) {
      if (legal(in_mask, o2)) g.incoming_out = o2;
      if (legal(buf_mask, o1)) g.buffered_out = o1;
      // A true cross-swap needs both outputs; with a single won output
      // this branch is just the match stage binding the right flit.
      if (o2 >= 0) ++result.swaps;
    } else {
      if (legal(in_mask, o1)) g.incoming_out = o1;
      if (legal(buf_mask, o2)) g.buffered_out = o2;
    }
  }
  return result;
}

}  // namespace dxbar
