// FairnessCounter is header-only; see fairness.hpp.
#include "alloc/fairness.hpp"

namespace dxbar {
// Intentionally empty.
}  // namespace dxbar
