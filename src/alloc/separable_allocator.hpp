// Separable output-first switch allocator (Becker & Dally style) used by
// the generic buffered baseline routers.
//
// Stage 1: one arbiter per output port picks among the inputs requesting
// it.  Stage 2: one arbiter per input port picks among the outputs that
// granted it.  The result is a legal partial matching computed in a
// single cycle, possibly leaving some matchable pairs unmatched — the
// same quality/complexity trade-off real routers make.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "alloc/arbiter.hpp"
#include "common/types.hpp"

namespace dxbar {

class SeparableAllocator {
 public:
  SeparableAllocator(int num_inputs, int num_outputs);

  /// `requests[i]` is the bitmask of outputs input i wants.  Returns for
  /// each input the granted output index or -1.  Each output is granted
  /// to at most one input and vice versa.
  [[nodiscard]] std::vector<int> allocate(
      const std::vector<std::uint32_t>& requests);

  [[nodiscard]] int num_inputs() const noexcept { return num_inputs_; }
  [[nodiscard]] int num_outputs() const noexcept { return num_outputs_; }

  // Snapshot protocol: both arbiter banks' priority pointers.
  void save(SnapshotWriter& w) const {
    for (const RoundRobinArbiter& a : output_arbiters_) a.save(w);
    for (const RoundRobinArbiter& a : input_arbiters_) a.save(w);
  }
  void load(SnapshotReader& r) {
    for (RoundRobinArbiter& a : output_arbiters_) a.load(r);
    for (RoundRobinArbiter& a : input_arbiters_) a.load(r);
  }

 private:
  int num_inputs_;
  int num_outputs_;
  std::vector<RoundRobinArbiter> output_arbiters_;  ///< stage 1, per output
  std::vector<RoundRobinArbiter> input_arbiters_;   ///< stage 2, per input
};

}  // namespace dxbar
