// Fairness counter (paper section II.A.2).
//
// With age-based priority, edge-injected flits starve center nodes: the
// center's buffered and injection-port flits keep losing to older
// through-traffic on the primary crossbar.  Each router therefore counts
// consecutive arbitrations in which a primary-side (incoming) flit won
// while at least one buffered/injection flit was waiting; past the
// threshold the priority flips for the next arbitration so the waiting
// flits are served first.  The counter resets whenever a waiting flit
// wins.  The paper settles on a threshold of four.
#pragma once

#include "snapshot/snapshot.hpp"

namespace dxbar {

class FairnessCounter {
 public:
  explicit FairnessCounter(int threshold) : threshold_(threshold) {}

  /// True when buffered/injection flits get priority this cycle.
  [[nodiscard]] bool flipped() const noexcept { return count_ >= threshold_; }

  /// Record the outcome of one arbitration cycle.
  /// `waiting`   — a buffered or injection flit wanted an output port.
  /// `waiting_won` — at least one such flit was granted a port.
  /// `incoming_won` — at least one incoming (primary) flit was granted.
  void record(bool waiting, bool waiting_won, bool incoming_won) noexcept {
    if (!waiting) return;  // the counter only runs while flits wait
    if (waiting_won) {
      count_ = 0;
    } else if (incoming_won) {
      ++count_;
    }
  }

  [[nodiscard]] int count() const noexcept { return count_; }
  [[nodiscard]] int threshold() const noexcept { return threshold_; }
  void reset() noexcept { count_ = 0; }

  // Snapshot protocol (the threshold is configuration, not state).
  void save(SnapshotWriter& w) const { w.i32(count_); }
  void load(SnapshotReader& r) { count_ = r.i32(); }

 private:
  int threshold_;
  int count_ = 0;
};

}  // namespace dxbar
