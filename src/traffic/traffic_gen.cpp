#include "traffic/traffic_gen.hpp"

namespace dxbar {

SyntheticWorkload::SyntheticWorkload(const SimConfig& cfg, const Mesh& mesh)
    : mesh_(mesh),
      pattern_(cfg.pattern),
      packet_probability_(cfg.offered_load /
                          static_cast<double>(cfg.packet_length)),
      packet_length_(cfg.packet_length),
      rng_(cfg.seed ^ 0x7AFF1CULL) {}

void SyntheticWorkload::begin_cycle(Cycle now, Injector& inject) {
  if (!enabled_) return;
  const int n = mesh_.num_nodes();
  for (NodeId src = 0; src < static_cast<NodeId>(n); ++src) {
    if (!rng_.bernoulli(packet_probability_)) continue;
    const NodeId dst = pattern_destination(pattern_, mesh_, src, rng_);
    if (dst == src) continue;  // fixed point of a permutation pattern
    inject.inject_packet(src, dst, packet_length_, now);
  }
}

}  // namespace dxbar
