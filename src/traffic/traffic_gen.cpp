#include "traffic/traffic_gen.hpp"

namespace dxbar {

SyntheticWorkload::SyntheticWorkload(const SimConfig& cfg, const Mesh& mesh)
    : mesh_(mesh),
      pattern_(cfg.pattern),
      packet_probability_(cfg.offered_load /
                          static_cast<double>(cfg.packet_length)),
      warmup_probability_(
          (cfg.warmup_load >= 0.0 ? cfg.warmup_load : cfg.offered_load) /
          static_cast<double>(cfg.packet_length)),
      warmup_end_(cfg.warmup_cycles),
      packet_length_(cfg.packet_length),
      measure_seed_(cfg.measure_seed),
      rng_(cfg.seed ^ 0x7AFF1CULL) {}

void SyntheticWorkload::begin_cycle(Cycle now, Injector& inject) {
  // The reseed sits at the warmup/measurement boundary, which is after
  // the point where warm-start sweeps snapshot (advance_open_loop stops
  // before begin_cycle(warmup_end_)): replicas differing only in
  // measure_seed share one warmup stream and diverge exactly here,
  // whether they ran straight through or forked from a warm snapshot.
  if (now == warmup_end_ && measure_seed_ != 0) rng_ = Rng(measure_seed_);
  if (!enabled_) return;
  const double p = now < warmup_end_ ? warmup_probability_ : packet_probability_;
  const int n = mesh_.num_nodes();
  for (NodeId src = 0; src < static_cast<NodeId>(n); ++src) {
    if (!rng_.bernoulli(p)) continue;
    const NodeId dst = pattern_destination(pattern_, mesh_, src, rng_);
    if (dst == src) continue;  // fixed point of a permutation pattern
    inject.inject_packet(src, dst, packet_length_, now);
  }
}

}  // namespace dxbar
