#include "traffic/splash.hpp"

#include <algorithm>
#include <cctype>

namespace dxbar {

const std::vector<SplashProfile>& splash_profiles() {
  // Relative intensities/write shares follow the qualitative SPLASH-2
  // characterisation (Woo et al., ISCA'95): Radix and Ocean are the most
  // communication-intensive, FFT is bursty (all-to-all transpose
  // phases), Water/FMM/LU compute-bound, Raytrace read-dominated.
  // Burst intensities are tuned so that during ON phases the MSHRs fill
  // (execution becomes sensitive to the network round-trip latency) and
  // the communication-heavy applications (Radix, Ocean, FFT) push the
  // memory-controller hot spots toward congestion — where deflection and
  // drop-based routers pay — while the compute-bound ones (Water, FMM,
  // LU) stay comfortably below saturation.
  static const std::vector<SplashProfile> profiles = {
      {"FFT", 0.300, 0.30, 0.040, 0.008, 500},
      {"LU", 0.050, 0.25, 0.010, 0.020, 500},
      {"Radiosity", 0.150, 0.35, 0.015, 0.010, 500},
      {"Ocean", 0.250, 0.40, 0.020, 0.010, 500},
      {"Raytrace", 0.120, 0.15, 0.015, 0.010, 500},
      {"Radix", 0.400, 0.45, 0.020, 0.012, 500},
      {"Water", 0.040, 0.25, 0.005, 0.020, 500},
      {"FMM", 0.060, 0.20, 0.008, 0.015, 500},
      {"Barnes", 0.120, 0.30, 0.012, 0.010, 500},
  };
  return profiles;
}

namespace {

/// Deterministic per-event randomness: a short SplitMix64 stream seeded
/// by (seed, stream tag, index).  Using counter-derived streams instead
/// of one shared generator keeps the traffic *content* identical across
/// router designs — only the timing differs — which removes cross-design
/// noise from the closed-loop comparison.
SplitMix64 stream(std::uint64_t seed, std::uint64_t tag, std::uint64_t idx) {
  return SplitMix64(seed ^ (tag * 0x9E3779B97F4A7C15ULL) ^
                    (idx * 0xC2B2AE3D27D4EB4FULL));
}

double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const SplashProfile* find_splash_profile(std::string_view name) {
  auto eq = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(a[i])) !=
          std::tolower(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  };
  for (const SplashProfile& p : splash_profiles()) {
    if (eq(p.name, name)) return &p;
  }
  return nullptr;
}

SplashWorkload::SplashWorkload(const SplashProfile& profile,
                               const SimConfig& cfg, const Mesh& mesh,
                               MachineParams machine)
    : profile_(profile),
      machine_(machine),
      mesh_(mesh),
      seed_(cfg.seed ^ 0x5B1A54ULL),
      nodes_(static_cast<std::size_t>(mesh.num_nodes())) {
  for (auto& n : nodes_) n.remaining = profile_.transactions_per_node;
  total_ = static_cast<std::uint64_t>(profile_.transactions_per_node) *
           static_cast<std::uint64_t>(mesh.num_nodes());

  // Memory controllers at every (odd, odd) coordinate: 16 MCs on the
  // paper's 8x8 mesh, evenly spread (Table II: 16 memory controllers).
  for (int y = 1; y < mesh.height(); y += 2) {
    for (int x = 1; x < mesh.width(); x += 2) {
      mc_nodes_.push_back(mesh.node(x, y));
    }
  }
}

void SplashWorkload::begin_cycle(Cycle now, Injector& inject) {
  // Release home-node responses whose directory/memory latency elapsed.
  while (!scheduled_.empty() && scheduled_.top().ready <= now) {
    const Scheduled s = scheduled_.top();
    scheduled_.pop();
    if (s.src == s.dst) {
      // Requester happens to co-locate with the home: deliver directly.
      if (s.type == MsgType::Reply) {
        ++completed_;
        --nodes_[s.requester].outstanding;
      }
      continue;
    }
    const PacketId id = inject.inject_packet(s.src, s.dst, s.length, now);
    in_flight_.insert({id, {s.type, s.requester, s.is_write, s.tx}});
  }

  // Issue new misses.
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    NodeState& st = nodes_[n];
    // Two-state burst process, drawn per (node, cycle) so the burst
    // trajectory is identical for every router design.
    SplitMix64 cycle_draws = stream(seed_, 0xB057ULL + n, now);
    if (st.on) {
      if (to_unit(cycle_draws.next()) < profile_.on_to_off) st.on = false;
    } else {
      if (to_unit(cycle_draws.next()) < profile_.off_to_on) st.on = true;
    }
    if (!st.on || st.remaining == 0 ||
        st.outstanding >= machine_.mshr_entries) {
      continue;
    }
    if (to_unit(cycle_draws.next()) >= profile_.intensity) continue;

    // Per-transaction content (home, read/write, owner, ...) derives
    // from the transaction index, not from issue timing.
    const std::uint64_t tx =
        (static_cast<std::uint64_t>(n) << 32) |
        (profile_.transactions_per_node - st.remaining);
    SplitMix64 tx_draws = stream(seed_, 0x7EAALL, tx);
    const NodeId home = mc_nodes_[tx_draws.next() % mc_nodes_.size()];
    const bool is_write = to_unit(tx_draws.next()) < profile_.write_fraction;
    --st.remaining;
    ++st.outstanding;
    if (home == n) {
      // Local home: the miss is satisfied without network traffic after
      // the directory latency.
      scheduled_.push({now + machine_.directory_latency, n, n,
                       machine_.data_packet_flits, MsgType::Reply, n,
                       is_write, tx});
      continue;
    }
    const PacketId id = inject.inject_packet(
        n, home, machine_.control_packet_flits, now);
    in_flight_.insert({id, {MsgType::Request, n, is_write, tx}});
  }
}

void SplashWorkload::on_packet_delivered(const PacketRecord& rec, Cycle now,
                                         Injector& inject) {
  (void)inject;
  const auto it = in_flight_.find(rec.id);
  if (it == in_flight_.end()) return;
  const InFlight msg = it->second;
  in_flight_.erase(it);

  switch (msg.type) {
    case MsgType::Request: {
      // Home directory resolves the miss: forward to the owning L2
      // (cache-to-cache transfer) or answer from memory/directory.
      // All outcomes derive from the transaction id, not from timing.
      SplitMix64 tx_draws = stream(seed_, 0xD14ULL, msg.tx);
      if (to_unit(tx_draws.next()) < machine_.cache_to_cache_fraction) {
        NodeId owner = static_cast<NodeId>(
            tx_draws.next() % static_cast<std::uint64_t>(mesh_.num_nodes()));
        if (owner == msg.requester) {
          owner = (owner + 1) % static_cast<NodeId>(mesh_.num_nodes());
        }
        if (owner == rec.dst) {
          // Home itself owns the line: reply directly after the lookup.
          scheduled_.push({now + machine_.directory_latency, rec.dst,
                           msg.requester, machine_.data_packet_flits,
                           MsgType::Reply, msg.requester, msg.is_write,
                           msg.tx});
        } else {
          scheduled_.push({now + machine_.directory_latency, rec.dst, owner,
                           machine_.control_packet_flits, MsgType::Forward,
                           msg.requester, msg.is_write, msg.tx});
        }
      } else {
        Cycle latency = machine_.directory_latency;
        if (to_unit(tx_draws.next()) < machine_.memory_miss_fraction) {
          latency += machine_.memory_latency;
        }
        scheduled_.push({now + latency, rec.dst, msg.requester,
                         machine_.data_packet_flits, MsgType::Reply,
                         msg.requester, msg.is_write, msg.tx});
      }
      if (msg.is_write) {
        // Invalidate one sharer (MESI ownership acquisition).
        const NodeId sharer = static_cast<NodeId>(
            tx_draws.next() % static_cast<std::uint64_t>(mesh_.num_nodes()));
        if (sharer != rec.dst && sharer != msg.requester) {
          scheduled_.push({now + 1, rec.dst, sharer,
                           machine_.control_packet_flits, MsgType::Inval,
                           msg.requester, false, msg.tx});
        }
      }
      break;
    }
    case MsgType::Forward:
      // Owning L2 sends the block straight to the requester.
      scheduled_.push({now + machine_.l2_access_latency, rec.dst,
                       msg.requester, machine_.data_packet_flits,
                       MsgType::Reply, msg.requester, msg.is_write, msg.tx});
      break;
    case MsgType::Reply:
      ++completed_;
      --nodes_[msg.requester].outstanding;
      break;
    case MsgType::Inval:
      // Sharer acknowledges to the home node.
      scheduled_.push({now + 1, rec.dst, rec.src,
                       machine_.control_packet_flits, MsgType::Ack,
                       msg.requester, false, msg.tx});
      break;
    case MsgType::Ack:
      break;
  }
}

bool SplashWorkload::finished() const {
  if (completed_ < total_) return false;
  return scheduled_.empty() && in_flight_.empty();
}

namespace {

/// Ideal network: delivers every packet after minimal latency and
/// records the injections.
class OracleNetwork final : public Injector {
 public:
  explicit OracleNetwork(const Mesh& mesh) : mesh_(mesh) {}

  PacketId inject_packet(NodeId src, NodeId dst, int length,
                         Cycle now) override {
    const PacketId id = next_++;
    trace_.push_back({now, src, dst, length});
    // 2 cycles per hop + flit serialization + ejection.
    const Cycle latency =
        2 * static_cast<Cycle>(mesh_.distance(src, dst)) +
        static_cast<Cycle>(length) + 1;
    PacketRecord rec;
    rec.id = id;
    rec.src = src;
    rec.dst = dst;
    rec.length = static_cast<std::uint16_t>(length);
    rec.created = now;
    rec.injected = now;
    rec.completed = now + latency;
    pending_.push(rec);
    return id;
  }

  /// Packets arriving at or before `now`, in completion order.
  std::vector<PacketRecord> due(Cycle now) {
    std::vector<PacketRecord> out;
    while (!pending_.empty() && pending_.top().completed <= now) {
      out.push_back(pending_.top());
      pending_.pop();
    }
    return out;
  }

  [[nodiscard]] bool busy() const { return !pending_.empty(); }
  [[nodiscard]] std::vector<TraceEntry> take_trace() {
    return std::move(trace_);
  }

 private:
  struct ByCompletion {
    bool operator()(const PacketRecord& a, const PacketRecord& b) const {
      if (a.completed != b.completed) return a.completed > b.completed;
      return a.id > b.id;
    }
  };

  const Mesh& mesh_;
  PacketId next_ = 1;
  std::vector<TraceEntry> trace_;
  std::priority_queue<PacketRecord, std::vector<PacketRecord>, ByCompletion>
      pending_;
};

}  // namespace

std::vector<TraceEntry> generate_splash_trace(const SplashProfile& profile,
                                              const SimConfig& cfg,
                                              const Mesh& mesh,
                                              MachineParams machine) {
  SplashWorkload workload(profile, cfg, mesh, machine);
  OracleNetwork oracle(mesh);
  Cycle t = 0;
  const Cycle limit = 4'000'000;
  while ((!workload.finished() || oracle.busy()) && t < limit) {
    workload.begin_cycle(t, oracle);
    for (const PacketRecord& rec : oracle.due(t)) {
      workload.on_packet_delivered(rec, t, oracle);
    }
    ++t;
  }
  return oracle.take_trace();
}

}  // namespace dxbar
