// Workload abstraction: how packets enter the network.
//
// Open-loop synthetic traffic (Figs 5-8, 11-12) injects by a Bernoulli
// process at a configured offered load; closed-loop workloads (the
// SPLASH-2 substitute, Figs 9-10) react to delivered packets and finish
// after a fixed amount of work.
#pragma once

#include "common/config.hpp"
#include "common/flit.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/mesh.hpp"
#include "traffic/patterns.hpp"

namespace dxbar {

/// Provided by the network: creates a packet's flits in the source queue
/// of `src` and returns the packet id for correlation.
class Injector {
 public:
  virtual ~Injector() = default;
  virtual PacketId inject_packet(NodeId src, NodeId dst, int length,
                                 Cycle now) = 0;

  /// Class-tagged injection for request-reply workloads.  The default
  /// forwards to the classic overload (dropping the class), so injector
  /// implementations that predate message classes keep working; the
  /// Network overrides this to stamp the class on every flit.
  virtual PacketId inject_packet(NodeId src, NodeId dst, int length,
                                 Cycle now, MsgClass cls) {
    (void)cls;
    return inject_packet(src, dst, length, now);
  }
};

class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  /// Called at the start of every cycle; enqueue new packets here.
  virtual void begin_cycle(Cycle now, Injector& inject) = 0;

  /// A packet finished reassembly at its destination.
  virtual void on_packet_delivered(const PacketRecord& rec, Cycle now,
                                   Injector& inject) {
    (void)rec;
    (void)now;
    (void)inject;
  }

  /// Closed-loop workloads report completion; open-loop never finishes.
  [[nodiscard]] virtual bool finished() const { return false; }

  /// Open-loop drain control: the runner disables injection after the
  /// measurement window.
  virtual void set_injection_enabled(bool on) { (void)on; }

  /// Merges workload-level telemetry (e.g. the closed-loop end-to-end
  /// request-latency distribution) into a finished run's stats.  The
  /// default contributes nothing.
  virtual void fill_run_stats(RunStats& out) const { (void)out; }

  /// True when the workload holds no deferred work of its own (e.g.
  /// served requests waiting out their service delay before the reply
  /// injects).  The drain loop runs until the network is idle AND the
  /// workload is quiescent, so workload-held transactions still
  /// complete after injection is disabled.
  [[nodiscard]] virtual bool quiescent() const { return true; }

  // ---- snapshot protocol ----------------------------------------------
  //
  // A snapshotable workload serializes its cursor (RNG stream position,
  // trace index, enable flag) so a restored network resumes with the
  // exact injection sequence of an uninterrupted run.  Workloads with
  // state the snapshot format does not cover (the SPLASH closed-loop
  // machine) keep the throwing defaults.

  [[nodiscard]] virtual bool snapshot_supported() const { return false; }
  virtual void save_state(SnapshotWriter& w) const {
    (void)w;
    throw SnapshotError("workload does not support snapshots");
  }
  virtual void load_state(SnapshotReader& r) {
    (void)r;
    throw SnapshotError("workload does not support snapshots");
  }
};

/// Bernoulli open-loop injection of one of the nine synthetic patterns.
/// Each node independently starts a packet with probability
/// offered_load / packet_length per cycle, so the offered *flit* rate
/// per node equals the configured load.  During the warmup phase the
/// probability is derived from cfg.warmup_load instead when that is set
/// (>= 0): every Bernoulli trial consumes exactly one RNG draw whatever
/// its probability, so runs that share the warmup rate draw identical
/// streams through warmup regardless of their measurement load — the
/// property warm-start sweeps rely on.
class SyntheticWorkload final : public WorkloadModel {
 public:
  SyntheticWorkload(const SimConfig& cfg, const Mesh& mesh);

  void begin_cycle(Cycle now, Injector& inject) override;
  void set_injection_enabled(bool on) override { enabled_ = on; }

  [[nodiscard]] bool snapshot_supported() const override { return true; }
  void save_state(SnapshotWriter& w) const override {
    rng_.save(w);
    w.boolean(enabled_);
  }
  void load_state(SnapshotReader& r) override {
    rng_.load(r);
    enabled_ = r.boolean();
  }

 private:
  const Mesh& mesh_;
  TrafficPattern pattern_;
  double packet_probability_;
  double warmup_probability_;
  Cycle warmup_end_;
  int packet_length_;
  std::uint64_t measure_seed_;
  Rng rng_;
  bool enabled_ = true;
};

}  // namespace dxbar
