// SPLASH-2 workload substitute (see DESIGN.md section 4).
//
// The paper drives its Figs 9-10 with network traces captured from
// Simics/GEMS running nine SPLASH-2 applications on the Table I/II
// machine (64 in-order cores, private L1/L2, MESI, 16 memory
// controllers).  Without that toolchain we model the *network-visible*
// behaviour of such a machine directly: every L2 miss becomes a 1-flit
// request to the home directory (an MC node); most misses are satisfied
// cache-to-cache (the home forwards to the owning L2, which sends the
// 5-flit data block straight to the requester), the rest by the
// directory or memory after their latencies; writes additionally spawn
// a 1-flit invalidation to a sharer and its 1-flit ack.  Each node
// self-throttles at 16 outstanding misses (the MSHR limit) and runs a
// two-state ON/OFF burst process, so the traffic is closed-loop, bursty
// and directory-hot-spotted — the properties that determine the
// relative router rankings the paper reports.  All per-transaction
// randomness is hash-derived from the transaction id so every router
// design sees identical traffic content.
//
// "Execution time" is the cycle at which the configured number of
// transactions per node has completed, the same quantity a trace replay
// measures.
#pragma once

#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "traffic/trace_io.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {

/// Per-application traffic profile.  Values are qualitative calibrations
/// of published SPLASH-2 characterisations (relative miss intensity,
/// write share, burstiness), not measurements — see DESIGN.md.
struct SplashProfile {
  std::string_view name;
  double intensity;       ///< request probability per node per ON cycle
  double write_fraction;  ///< fraction of misses that are ownership misses
  double on_to_off;       ///< P(ON -> OFF) per cycle (burst shaping)
  double off_to_on;       ///< P(OFF -> ON) per cycle
  std::uint32_t transactions_per_node;  ///< work per node until "done"
};

/// The nine applications of the paper's Fig 9/10, in paper order:
/// FFT, LU, Radiosity, Ocean, Raytrace, Radix, Water, FMM, Barnes.
const std::vector<SplashProfile>& splash_profiles();

/// Look up a profile by (case-insensitive) name; nullptr when unknown.
const SplashProfile* find_splash_profile(std::string_view name);

/// Machine parameters from the paper's Tables I and II that shape the
/// coherence traffic.
struct MachineParams {
  int mshr_entries = 16;       ///< outstanding misses per node
  Cycle directory_latency = 80;
  Cycle memory_latency = 160;  ///< added when the directory misses
  double memory_miss_fraction = 0.3;  ///< directory misses that hit memory
  /// Fraction of misses satisfied by a peer L2 (MESI cache-to-cache):
  /// the home forwards the request to the owner, which sends the data
  /// directly to the requester.  Spreads data-reply injection over all
  /// nodes instead of concentrating it at the 16 MCs.
  double cache_to_cache_fraction = 0.65;
  Cycle l2_access_latency = 4;  ///< owner L2 lookup before forwarding data
  int data_packet_flits = 5;   ///< 64 B block over 128-bit flits + head
  int control_packet_flits = 1;
};

/// Generates an open-loop replay trace for one application: the
/// closed-loop workload is run against an *oracle* network that delivers
/// every packet after its minimal latency (2 cycles/hop + serialization),
/// and every injection is recorded.  Replaying the trace open-loop
/// against the real router models reproduces the paper's methodology
/// (Simics/GEMS trace capture, then NoC-simulator replay): the trace's
/// bursts are not throttled by the network under test, so congestive
/// pathologies — deflection storms, drop/retransmit storms — show up
/// exactly as they would in a trace-driven simulation.
std::vector<TraceEntry> generate_splash_trace(const SplashProfile& profile,
                                              const SimConfig& cfg,
                                              const Mesh& mesh,
                                              MachineParams machine = {});

class SplashWorkload final : public WorkloadModel {
 public:
  SplashWorkload(const SplashProfile& profile, const SimConfig& cfg,
                 const Mesh& mesh, MachineParams machine = {});

  void begin_cycle(Cycle now, Injector& inject) override;
  void on_packet_delivered(const PacketRecord& rec, Cycle now,
                           Injector& inject) override;
  [[nodiscard]] bool finished() const override;

  [[nodiscard]] std::uint64_t transactions_completed() const {
    return completed_;
  }
  [[nodiscard]] std::uint64_t transactions_total() const { return total_; }

 private:
  enum class MsgType : std::uint8_t { Request, Forward, Reply, Inval, Ack };

  struct InFlight {
    MsgType type;
    NodeId requester;  ///< node whose transaction this message serves
    bool is_write;
    std::uint64_t tx;  ///< transaction id (node << 32 | index)
  };

  struct Scheduled {
    Cycle ready;
    NodeId src;
    NodeId dst;
    int length;
    MsgType type;
    NodeId requester;
    bool is_write;
    std::uint64_t tx;

    [[nodiscard]] bool operator>(const Scheduled& o) const noexcept {
      return ready > o.ready;
    }
  };

  struct NodeState {
    std::uint32_t remaining = 0;  ///< transactions still to issue
    int outstanding = 0;          ///< in-flight misses (<= MSHR)
    bool on = true;               ///< burst state
  };

  SplashProfile profile_;
  MachineParams machine_;
  const Mesh& mesh_;
  std::uint64_t seed_;
  std::vector<NodeState> nodes_;
  std::vector<NodeId> mc_nodes_;  ///< the 16 memory-controller positions
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      scheduled_;
  std::unordered_map<PacketId, InFlight> in_flight_;
  std::uint64_t completed_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dxbar
