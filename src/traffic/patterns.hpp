// Destination functions for the nine synthetic traffic patterns
// (paper section III.A).  The permutation patterns operate on the
// log2(N)-bit node index (the standard definitions from Dally & Towles)
// and therefore require a power-of-two node count; coordinate patterns
// (MT, NB, TOR) work on any mesh.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// Destination for a packet injected at `src`.  Random patterns (UR, NUR)
/// draw from `rng`; deterministic patterns ignore it.  May return `src`
/// (a fixed point of the permutation) — callers skip such packets.
NodeId pattern_destination(TrafficPattern p, const Mesh& mesh, NodeId src,
                           Rng& rng);

/// The hot-spot node group NUR concentrates its extra traffic on: the
/// four center nodes of the mesh.
bool is_hotspot(const Mesh& mesh, NodeId n);

}  // namespace dxbar
