#include "traffic/trace_io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dxbar {

std::vector<TraceEntry> read_trace(std::istream& is) {
  std::vector<TraceEntry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TraceEntry e;
    if (!(ls >> e.cycle)) continue;  // blank or comment-only line
    if (!(ls >> e.src >> e.dst >> e.length) || e.length < 1) {
      throw std::runtime_error("malformed trace line " +
                               std::to_string(lineno));
    }
    entries.push_back(e);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
  return entries;
}

void write_trace(std::ostream& os, std::span<const TraceEntry> entries) {
  os << "# cycle src dst length\n";
  for (const TraceEntry& e : entries) {
    os << e.cycle << ' ' << e.src << ' ' << e.dst << ' ' << e.length << '\n';
  }
}

TraceWorkload::TraceWorkload(std::vector<TraceEntry> entries)
    : entries_(std::move(entries)) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
}

void TraceWorkload::begin_cycle(Cycle now, Injector& inject) {
  if (!enabled_) {
    // Skip entries scheduled while injection is disabled.
    while (next_ < entries_.size() && entries_[next_].cycle <= now) ++next_;
    return;
  }
  while (next_ < entries_.size() && entries_[next_].cycle <= now) {
    const TraceEntry& e = entries_[next_++];
    if (e.src != e.dst) inject.inject_packet(e.src, e.dst, e.length, now);
  }
}

}  // namespace dxbar
