#include "traffic/trace_io.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace dxbar {

namespace {

constexpr std::uint32_t kTraceMagic = 0x52545844u;  // "DXTR" little-endian
constexpr std::uint16_t kEndianMarker = 0xFEFFu;
constexpr std::uint64_t kCountSentinel =
    std::numeric_limits<std::uint64_t>::max();
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 20;
constexpr std::streamoff kCountOffset = 8;  // magic + version + endian

void put_le(std::vector<std::uint8_t>& buf, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_le(const std::uint8_t* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<TraceEntry> read_trace(std::istream& is) {
  std::vector<TraceEntry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TraceEntry e;
    if (!(ls >> e.cycle)) continue;  // blank or comment-only line
    if (!(ls >> e.src >> e.dst >> e.length) || e.length < 1) {
      throw TraceError(TraceError::Kind::Malformed,
                       "malformed trace line " + std::to_string(lineno));
    }
    entries.push_back(e);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
  return entries;
}

void write_trace(std::ostream& os, std::span<const TraceEntry> entries) {
  os << "# cycle src dst length\n";
  for (const TraceEntry& e : entries) {
    os << e.cycle << ' ' << e.src << ' ' << e.dst << ' ' << e.length << '\n';
  }
}

TraceWorkload::TraceWorkload(std::vector<TraceEntry> entries)
    : entries_(std::move(entries)) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
}

// ---------------------------------------------------------------------
// Binary "DXTR" streaming format

StreamingTraceWriter::StreamingTraceWriter(std::ostream& out,
                                           std::size_t chunk)
    : out_(out), chunk_(chunk == 0 ? 1 : chunk) {
  buf_.reserve(std::min(chunk_, std::size_t{kDefaultChunk}) * kRecordBytes);
  std::vector<std::uint8_t> header;
  put_le(header, kTraceMagic, 4);
  put_le(header, kTraceFormatVersion, 2);
  put_le(header, kEndianMarker, 2);
  put_le(header, kCountSentinel, 8);  // backpatched by finish()
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

void StreamingTraceWriter::append(const TraceEntry& e) {
  if (finished_) {
    throw TraceError(TraceError::Kind::Malformed,
                     "append() after finish()");
  }
  if (e.length < 1) {
    throw TraceError(TraceError::Kind::Malformed,
                     "trace entry " + std::to_string(count_) +
                         ": length " + std::to_string(e.length) + " < 1");
  }
  if (count_ != 0 && e.cycle < last_cycle_) {
    throw TraceError(TraceError::Kind::Malformed,
                     "trace entry " + std::to_string(count_) +
                         ": cycle regressed");
  }
  last_cycle_ = e.cycle;
  put_le(buf_, e.cycle, 8);
  put_le(buf_, e.src, 4);
  put_le(buf_, e.dst, 4);
  put_le(buf_, static_cast<std::uint32_t>(e.length), 4);
  ++count_;
  if (buf_.size() >= chunk_ * kRecordBytes) flush_chunk();
}

void StreamingTraceWriter::flush_chunk() {
  if (buf_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void StreamingTraceWriter::finish() {
  if (finished_) return;
  flush_chunk();
  // Backpatch the record count over the sentinel; only a finished trace
  // carries a real count, so torn writes stay detectable.
  std::vector<std::uint8_t> le;
  put_le(le, count_, 8);
  out_.seekp(kCountOffset, std::ios::beg);
  out_.write(reinterpret_cast<const char*>(le.data()), 8);
  out_.seekp(0, std::ios::end);
  out_.flush();
  finished_ = true;
}

StreamingTraceReader::StreamingTraceReader(std::istream& in,
                                           std::size_t chunk)
    : in_(in), chunk_(chunk == 0 ? 1 : chunk) {
  std::array<std::uint8_t, kHeaderBytes> header{};
  in_.read(reinterpret_cast<char*>(header.data()), kHeaderBytes);
  if (static_cast<std::size_t>(in_.gcount()) != kHeaderBytes) {
    throw TraceError(TraceError::Kind::Truncated,
                     "trace shorter than its 16-byte header");
  }
  if (get_le(header.data(), 4) != kTraceMagic) {
    throw TraceError(TraceError::Kind::CorruptHeader,
                     "bad trace magic (not a DXTR trace)");
  }
  const auto version =
      static_cast<std::uint16_t>(get_le(header.data() + 4, 2));
  if (get_le(header.data() + 6, 2) != kEndianMarker) {
    throw TraceError(TraceError::Kind::CorruptHeader,
                     "bad endian marker in trace header");
  }
  if (version != kTraceFormatVersion) {
    throw TraceError(TraceError::Kind::VersionMismatch,
                     "trace format version " + std::to_string(version) +
                         ", this reader understands " +
                         std::to_string(kTraceFormatVersion));
  }
  total_ = get_le(header.data() + 8, 8);
  if (total_ == kCountSentinel) {
    throw TraceError(TraceError::Kind::Truncated,
                     "trace was never finalized (count sentinel present)");
  }
}

void StreamingTraceReader::refill() {
  buf_.clear();
  pos_ = 0;
  const std::uint64_t remaining = total_ - consumed_;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, chunk_));
  if (want == 0) return;
  std::vector<std::uint8_t> raw(want * kRecordBytes);
  in_.read(reinterpret_cast<char*>(raw.data()),
           static_cast<std::streamsize>(raw.size()));
  const auto got = static_cast<std::size_t>(in_.gcount());
  if (got != raw.size()) {
    throw TraceError(
        TraceError::Kind::Truncated,
        "trace ends after " +
            std::to_string(consumed_ + got / kRecordBytes) + " of " +
            std::to_string(total_) + " records");
  }
  buf_.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    const std::uint8_t* p = raw.data() + i * kRecordBytes;
    TraceEntry e;
    e.cycle = get_le(p, 8);
    e.src = static_cast<NodeId>(get_le(p + 8, 4));
    e.dst = static_cast<NodeId>(get_le(p + 12, 4));
    e.length = static_cast<int>(get_le(p + 16, 4));
    const std::uint64_t index = consumed_ + i;
    if (e.length < 1) {
      throw TraceError(TraceError::Kind::Malformed,
                       "trace record " + std::to_string(index) +
                           ": length " + std::to_string(e.length) + " < 1");
    }
    if (index != 0 && e.cycle < last_cycle_) {
      throw TraceError(TraceError::Kind::Malformed,
                       "trace record " + std::to_string(index) +
                           ": cycle regressed");
    }
    last_cycle_ = e.cycle;
    buf_.push_back(e);
  }
}

bool StreamingTraceReader::next(TraceEntry& out) {
  if (pos_ >= buf_.size()) {
    if (consumed_ >= total_) return false;
    refill();
    if (pos_ >= buf_.size()) return false;
  }
  out = buf_[pos_++];
  ++consumed_;
  return true;
}

std::vector<TraceEntry> read_trace_binary(std::istream& is) {
  StreamingTraceReader reader(is);
  std::vector<TraceEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(reader.total_entries(), 1u << 20)));
  TraceEntry e;
  while (reader.next(e)) entries.push_back(e);
  return entries;
}

void write_trace_binary(std::ostream& os,
                        std::span<const TraceEntry> entries) {
  StreamingTraceWriter writer(os);
  for (const TraceEntry& e : entries) writer.append(e);
  writer.finish();
}

StreamingTraceWorkload::StreamingTraceWorkload(StreamingTraceReader& reader)
    : reader_(reader) {
  have_pending_ = reader_.next(pending_);
}

void StreamingTraceWorkload::begin_cycle(Cycle now, Injector& inject) {
  while (have_pending_ && pending_.cycle <= now) {
    if (enabled_ && pending_.src != pending_.dst) {
      inject.inject_packet(pending_.src, pending_.dst, pending_.length, now);
    }
    have_pending_ = reader_.next(pending_);
  }
}

void TraceWorkload::begin_cycle(Cycle now, Injector& inject) {
  if (!enabled_) {
    // Skip entries scheduled while injection is disabled.
    while (next_ < entries_.size() && entries_[next_].cycle <= now) ++next_;
    return;
  }
  while (next_ < entries_.size() && entries_[next_].cycle <= now) {
    const TraceEntry& e = entries_[next_++];
    if (e.src != e.dst) inject.inject_packet(e.src, e.dst, e.length, now);
  }
}

}  // namespace dxbar
