// Plain-text packet trace format and replay workload.
//
// Format: one packet per line, "<cycle> <src> <dst> <length>", '#'
// comments and blank lines ignored, entries sorted by cycle.  Traces
// recorded from one design (or produced externally) can be replayed
// open-loop against any other design for apples-to-apples comparisons.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "traffic/traffic_gen.hpp"

namespace dxbar {

struct TraceEntry {
  Cycle cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  int length = 1;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Parses a trace; throws std::runtime_error on malformed input.
/// Entries are returned sorted by cycle (stable).
std::vector<TraceEntry> read_trace(std::istream& is);

/// Writes entries in the canonical format.
void write_trace(std::ostream& os, std::span<const TraceEntry> entries);

/// Replays a trace open-loop: each entry is injected at its cycle.
class TraceWorkload final : public WorkloadModel {
 public:
  explicit TraceWorkload(std::vector<TraceEntry> entries);

  void begin_cycle(Cycle now, Injector& inject) override;
  /// All entries have been injected (the network may still be draining).
  [[nodiscard]] bool finished() const override {
    return next_ >= entries_.size();
  }
  void set_injection_enabled(bool on) override { enabled_ = on; }

  // Snapshot protocol: the replay cursor (the entry list itself is
  // configuration the caller reconstructs).
  [[nodiscard]] bool snapshot_supported() const override { return true; }
  void save_state(SnapshotWriter& w) const override {
    w.u64(next_);
    w.boolean(enabled_);
  }
  void load_state(SnapshotReader& r) override {
    next_ = r.u64();
    enabled_ = r.boolean();
  }

 private:
  std::vector<TraceEntry> entries_;
  std::size_t next_ = 0;
  bool enabled_ = true;
};

/// Records every injected packet; used to capture traces from synthetic
/// or SPLASH workloads for later replay.
class RecordingInjector final : public Injector {
 public:
  explicit RecordingInjector(Injector& inner) : inner_(inner) {}

  PacketId inject_packet(NodeId src, NodeId dst, int length,
                         Cycle now) override {
    entries_.push_back({now, src, dst, length});
    return inner_.inject_packet(src, dst, length, now);
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }

 private:
  Injector& inner_;
  std::vector<TraceEntry> entries_;
};

}  // namespace dxbar
