// Packet trace formats and replay workloads.
//
// Text format: one packet per line, "<cycle> <src> <dst> <length>", '#'
// comments and blank lines ignored, entries sorted by cycle.  Traces
// recorded from one design (or produced externally) can be replayed
// open-loop against any other design for apples-to-apples comparisons.
//
// Binary streaming format ("DXTR"): a 16-byte little-endian header —
// magic "DXTR" (u32), version (u16), endian marker 0xFEFF (u16), record
// count (u64) — followed by `count` fixed 20-byte records (cycle u64,
// src u32, dst u32, length u32), cycles non-decreasing.  The writer
// stamps the count sentinel ~0 first and backpatches the real count on
// finish(), so a trace from a crashed producer is detected as truncated
// instead of replaying a silent prefix.  Reader and writer both work in
// bounded chunks, so multi-GB traces stream in O(chunk) memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "traffic/traffic_gen.hpp"

namespace dxbar {

struct TraceEntry {
  Cycle cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  int length = 1;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Typed trace I/O failure.  Derives from std::runtime_error so callers
/// that only care about "trace is bad" keep working; callers that care
/// WHY (tests, tooling) switch on kind().
class TraceError : public std::runtime_error {
 public:
  enum class Kind {
    Truncated,        ///< file ends mid-record, or an unfinished writer
    CorruptHeader,    ///< bad magic or endian marker
    VersionMismatch,  ///< header version this reader does not understand
    Malformed,        ///< bad field values (length < 1, cycle regression)
  };

  TraceError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

constexpr std::string_view to_string(TraceError::Kind k) noexcept {
  switch (k) {
    case TraceError::Kind::Truncated: return "truncated";
    case TraceError::Kind::CorruptHeader: return "corrupt-header";
    case TraceError::Kind::VersionMismatch: return "version-mismatch";
    case TraceError::Kind::Malformed: return "malformed";
  }
  return "?";
}

/// Parses a text trace; throws TraceError (Kind::Malformed) on bad
/// input.  Entries are returned sorted by cycle (stable).
std::vector<TraceEntry> read_trace(std::istream& is);

/// Writes entries in the canonical text format.
void write_trace(std::ostream& os, std::span<const TraceEntry> entries);

/// Current binary trace format version (header field).
inline constexpr std::uint16_t kTraceFormatVersion = 1;

/// Incremental writer for the binary "DXTR" format.  Records must be
/// appended in non-decreasing cycle order with length >= 1 (TraceError
/// Kind::Malformed otherwise).  The header is written with a count
/// sentinel that finish() backpatches, so the stream must be seekable;
/// a writer destroyed without finish() leaves the sentinel in place and
/// readers reject the trace as truncated.
class StreamingTraceWriter {
 public:
  static constexpr std::size_t kDefaultChunk = 4096;  ///< entries

  explicit StreamingTraceWriter(std::ostream& out,
                                std::size_t chunk = kDefaultChunk);

  void append(const TraceEntry& e);

  /// Flushes buffered records and backpatches the header count.
  /// Idempotent; append() after finish() throws.
  void finish();

  [[nodiscard]] std::uint64_t entries_written() const { return count_; }

 private:
  void flush_chunk();

  std::ostream& out_;
  std::size_t chunk_;
  std::vector<std::uint8_t> buf_;
  std::uint64_t count_ = 0;
  Cycle last_cycle_ = 0;
  bool finished_ = false;
};

/// Chunked reader for the binary "DXTR" format: holds at most `chunk`
/// decoded entries in memory regardless of trace size.  Header and
/// record problems throw TraceError with the precise kind.
class StreamingTraceReader {
 public:
  static constexpr std::size_t kDefaultChunk = 4096;  ///< entries

  explicit StreamingTraceReader(std::istream& in,
                                std::size_t chunk = kDefaultChunk);

  /// Advances to the next entry.  Returns false at a clean end of
  /// trace; throws TraceError on truncation or malformed records.
  bool next(TraceEntry& out);

  [[nodiscard]] std::uint64_t total_entries() const { return total_; }
  [[nodiscard]] std::uint64_t entries_read() const { return consumed_; }
  /// Entries currently decoded in memory — the O(chunk) bound.
  [[nodiscard]] std::size_t buffered_entries() const {
    return buf_.size() - pos_;
  }

 private:
  void refill();

  std::istream& in_;
  std::size_t chunk_;
  std::uint64_t total_ = 0;
  std::uint64_t consumed_ = 0;
  std::vector<TraceEntry> buf_;
  std::size_t pos_ = 0;
  Cycle last_cycle_ = 0;
};

/// Convenience: streams the whole binary trace into a vector (use the
/// reader directly when the trace may not fit in memory).
std::vector<TraceEntry> read_trace_binary(std::istream& is);

/// Convenience: writes `entries` (already cycle-sorted) as one binary
/// trace, finish() included.
void write_trace_binary(std::ostream& os, std::span<const TraceEntry> entries);

/// Replays a trace open-loop: each entry is injected at its cycle.
class TraceWorkload final : public WorkloadModel {
 public:
  explicit TraceWorkload(std::vector<TraceEntry> entries);

  void begin_cycle(Cycle now, Injector& inject) override;
  /// All entries have been injected (the network may still be draining).
  [[nodiscard]] bool finished() const override {
    return next_ >= entries_.size();
  }
  void set_injection_enabled(bool on) override { enabled_ = on; }

  // Snapshot protocol: the replay cursor (the entry list itself is
  // configuration the caller reconstructs).
  [[nodiscard]] bool snapshot_supported() const override { return true; }
  void save_state(SnapshotWriter& w) const override {
    w.u64(next_);
    w.boolean(enabled_);
  }
  void load_state(SnapshotReader& r) override {
    next_ = r.u64();
    enabled_ = r.boolean();
  }

 private:
  std::vector<TraceEntry> entries_;
  std::size_t next_ = 0;
  bool enabled_ = true;
};

/// Replays a binary trace straight off the stream: the workload only
/// ever holds the reader's bounded chunk plus one lookahead entry, so a
/// multi-GB trace replays in O(chunk) memory.  The reader (and its
/// stream) must outlive the workload.  Snapshotting is not supported —
/// the replay position lives in the external stream.
class StreamingTraceWorkload final : public WorkloadModel {
 public:
  explicit StreamingTraceWorkload(StreamingTraceReader& reader);

  void begin_cycle(Cycle now, Injector& inject) override;
  [[nodiscard]] bool finished() const override { return !have_pending_; }
  void set_injection_enabled(bool on) override { enabled_ = on; }

 private:
  StreamingTraceReader& reader_;
  TraceEntry pending_{};
  bool have_pending_ = false;
  bool enabled_ = true;
};

/// Records every injected packet; used to capture traces from synthetic
/// or SPLASH workloads for later replay.
class RecordingInjector final : public Injector {
 public:
  explicit RecordingInjector(Injector& inner) : inner_(inner) {}

  PacketId inject_packet(NodeId src, NodeId dst, int length,
                         Cycle now) override {
    entries_.push_back({now, src, dst, length});
    return inner_.inject_packet(src, dst, length, now);
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }

 private:
  Injector& inner_;
  std::vector<TraceEntry> entries_;
};

}  // namespace dxbar
