#include "traffic/patterns.hpp"

#include <bit>
#include <cassert>

namespace dxbar {
namespace {

/// Number of index bits when N is a power of two, else 0.
int index_bits(int num_nodes) {
  if (!std::has_single_bit(static_cast<unsigned>(num_nodes))) return 0;
  return std::countr_zero(static_cast<unsigned>(num_nodes));
}

NodeId bit_reverse(NodeId v, int bits) {
  NodeId out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

}  // namespace

bool is_hotspot(const Mesh& mesh, NodeId n) {
  const Coord c = mesh.coord(n);
  const int cx = mesh.width() / 2;
  const int cy = mesh.height() / 2;
  return (c.x == cx || c.x == cx - 1) && (c.y == cy || c.y == cy - 1);
}

NodeId pattern_destination(TrafficPattern p, const Mesh& mesh, NodeId src,
                           Rng& rng) {
  const int n = mesh.num_nodes();
  const int bits = index_bits(n);
  const Coord c = mesh.coord(src);

  switch (p) {
    case TrafficPattern::UniformRandom: {
      // Uniform over all other nodes.
      NodeId dst = rng.below(static_cast<std::uint32_t>(n - 1));
      if (dst >= src) ++dst;
      return dst;
    }
    case TrafficPattern::NonUniformRandom: {
      // 25% additional traffic to the four-node hot-spot group.
      if (rng.bernoulli(0.25)) {
        const int cx = mesh.width() / 2;
        const int cy = mesh.height() / 2;
        const std::uint32_t k = rng.below(4);
        const NodeId dst = mesh.node(cx - 1 + static_cast<int>(k % 2),
                                     cy - 1 + static_cast<int>(k / 2));
        if (dst != src) return dst;
      }
      NodeId dst = rng.below(static_cast<std::uint32_t>(n - 1));
      if (dst >= src) ++dst;
      return dst;
    }
    case TrafficPattern::BitReversal:
      assert(bits > 0 && "bit permutations need a power-of-two node count");
      return bit_reverse(src, bits);
    case TrafficPattern::Butterfly: {
      assert(bits > 0 && "bit permutations need a power-of-two node count");
      const NodeId lo = src & 1u;
      const NodeId hi = (src >> (bits - 1)) & 1u;
      NodeId dst = src & ~((NodeId{1} << (bits - 1)) | 1u);
      dst |= (lo << (bits - 1)) | hi;
      return dst;
    }
    case TrafficPattern::Complement:
      assert(bits > 0 && "bit permutations need a power-of-two node count");
      return (~src) & static_cast<NodeId>(n - 1);
    case TrafficPattern::Transpose:
      // Defined for square meshes; asymmetric meshes wrap coordinates.
      return mesh.node(c.y % mesh.width(), c.x % mesh.height());
    case TrafficPattern::PerfectShuffle: {
      assert(bits > 0 && "bit permutations need a power-of-two node count");
      const NodeId msb = (src >> (bits - 1)) & 1u;
      return ((src << 1) | msb) & static_cast<NodeId>(n - 1);
    }
    case TrafficPattern::Neighbor:
      return mesh.node((c.x + 1) % mesh.width(), c.y);
    case TrafficPattern::Tornado:
      return mesh.node((c.x + (mesh.width() + 1) / 2 - 1) % mesh.width(), c.y);
  }
  return src;
}

}  // namespace dxbar
