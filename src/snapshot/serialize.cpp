#include "snapshot/serialize.hpp"

namespace dxbar {

void save_run_stats(SnapshotWriter& w, const RunStats& s) {
  w.f64(s.offered_load);
  w.f64(s.accepted_load);
  w.f64(s.accepted_load_stddev);
  w.f64(s.avg_packet_latency);
  w.f64(s.avg_network_latency);
  w.f64(s.latency_p50);
  w.f64(s.latency_p95);
  w.f64(s.latency_p99);
  w.f64(s.latency_max);
  w.f64(s.avg_hops);
  w.f64(s.deflections_per_flit);
  w.f64(s.retransmits_per_flit);
  w.u64(s.packets_completed);
  w.u64(s.flits_ejected);
  w.u64(s.flits_injected);
  w.u64(s.cycles);
  w.i32(s.packet_length);
  w.boolean(s.drained);
  w.f64(s.energy_buffer_nj);
  w.f64(s.energy_crossbar_nj);
  w.f64(s.energy_link_nj);
  w.f64(s.energy_control_nj);
  // Closed-loop request-reply block, added in snapshot version 4.
  w.f64(s.avg_req_latency);
  w.f64(s.req_latency_p50);
  w.f64(s.req_latency_p95);
  w.f64(s.req_latency_p99);
  w.f64(s.req_latency_max);
  w.u64(s.requests_completed);
  // Full request-latency histogram (sparse), added in snapshot
  // version 5 so replicated runs can pool tail quantiles.
  s.req_hist.save(w);
  // Separate static-power column, added in snapshot version 6.
  w.f64(s.energy_leakage_nj);
}

RunStats load_run_stats(SnapshotReader& r) {
  RunStats s;
  s.offered_load = r.f64();
  s.accepted_load = r.f64();
  s.accepted_load_stddev = r.f64();
  s.avg_packet_latency = r.f64();
  s.avg_network_latency = r.f64();
  s.latency_p50 = r.f64();
  s.latency_p95 = r.f64();
  s.latency_p99 = r.f64();
  s.latency_max = r.f64();
  s.avg_hops = r.f64();
  s.deflections_per_flit = r.f64();
  s.retransmits_per_flit = r.f64();
  s.packets_completed = r.u64();
  s.flits_ejected = r.u64();
  s.flits_injected = r.u64();
  s.cycles = r.u64();
  s.packet_length = r.i32();
  s.drained = r.boolean();
  s.energy_buffer_nj = r.f64();
  s.energy_crossbar_nj = r.f64();
  s.energy_link_nj = r.f64();
  s.energy_control_nj = r.f64();
  if (r.version() >= 4) {
    s.avg_req_latency = r.f64();
    s.req_latency_p50 = r.f64();
    s.req_latency_p95 = r.f64();
    s.req_latency_p99 = r.f64();
    s.req_latency_max = r.f64();
    s.requests_completed = r.u64();
  }
  // Pre-v5 streams carry the quantile summary only; the histogram
  // stays empty, which merges as "no samples".
  if (r.version() >= 5) s.req_hist.load(r);
  // Pre-v6 streams are dynamic-only; zero means "not modelled", which
  // matches how those runs were reported.
  if (r.version() >= 6) s.energy_leakage_nj = r.f64();
  return s;
}

void save_config(SnapshotWriter& w, const SimConfig& cfg) {
  w.i32(cfg.mesh_width);
  w.i32(cfg.mesh_height);
  w.boolean(cfg.torus);
  w.u8(static_cast<std::uint8_t>(cfg.design));
  w.u8(static_cast<std::uint8_t>(cfg.routing));
  w.i32(cfg.buffer_depth);
  w.i32(cfg.fairness_threshold);
  w.i32(cfg.stall_escape_delay);
  w.i32(cfg.num_vcs);
  w.i32(cfg.source_queue_depth);
  w.i32(cfg.retransmit_buffer);
  w.u8(static_cast<std::uint8_t>(cfg.pattern));
  w.f64(cfg.offered_load);
  w.f64(cfg.warmup_load);
  w.i32(cfg.packet_length);
  w.i32(cfg.flit_bits);
  w.u64(cfg.warmup_cycles);
  w.u64(cfg.measure_cycles);
  w.u64(cfg.drain_cycles);
  w.f64(cfg.fault_fraction);
  w.u64(cfg.fault_detect_delay);
  w.u64(cfg.fault_onset_spread);
  w.f64(cfg.link_fault_fraction);
  w.u64(cfg.seed);
  w.u64(cfg.measure_seed);  // added in snapshot version 3
  // Closed-loop workload knobs, added in snapshot version 4.
  w.u8(static_cast<std::uint8_t>(cfg.workload));
  w.i32(cfg.mlp);
  w.u64(cfg.service_delay);
  w.i32(cfg.request_length);
  w.f64(cfg.hotspot_fraction);
  // Technology node for the parametric energy model, added in snapshot
  // version 5.
  w.i32(cfg.tech_node);
  // Coherence-mix read fraction, added in snapshot version 6.  Being
  // part of the config bytes also feeds warmup_signature(), so two
  // configs differing only in read_fraction never share a warm
  // snapshot.
  w.f64(cfg.read_fraction);
}

SimConfig load_config(SnapshotReader& r) {
  SimConfig cfg;
  cfg.mesh_width = r.i32();
  cfg.mesh_height = r.i32();
  cfg.torus = r.boolean();
  cfg.design = static_cast<RouterDesign>(r.u8());
  cfg.routing = static_cast<RoutingAlgo>(r.u8());
  cfg.buffer_depth = r.i32();
  cfg.fairness_threshold = r.i32();
  cfg.stall_escape_delay = r.i32();
  cfg.num_vcs = r.i32();
  cfg.source_queue_depth = r.i32();
  cfg.retransmit_buffer = r.i32();
  cfg.pattern = static_cast<TrafficPattern>(r.u8());
  cfg.offered_load = r.f64();
  cfg.warmup_load = r.f64();
  cfg.packet_length = r.i32();
  cfg.flit_bits = r.i32();
  cfg.warmup_cycles = r.u64();
  cfg.measure_cycles = r.u64();
  cfg.drain_cycles = r.u64();
  cfg.fault_fraction = r.f64();
  cfg.fault_detect_delay = r.u64();
  cfg.fault_onset_spread = r.u64();
  cfg.link_fault_fraction = r.f64();
  cfg.seed = r.u64();
  // Version 2 streams (pre-measure_seed) end here; the field defaults
  // to 0, which is the exact pre-v3 behaviour.
  if (r.version() >= 3) cfg.measure_seed = r.u64();
  // Pre-v4 streams default to the synthetic workload, which is exactly
  // the pre-v4 behaviour.
  if (r.version() >= 4) {
    cfg.workload = static_cast<WorkloadKind>(r.u8());
    cfg.mlp = r.i32();
    cfg.service_delay = r.u64();
    cfg.request_length = r.i32();
    cfg.hotspot_fraction = r.f64();
  }
  // Pre-v5 streams were all recorded at the paper's 65 nm point, which
  // is the field's default.
  if (r.version() >= 5) cfg.tech_node = r.i32();
  // Pre-v6 streams were all pure-read, the field's default.
  if (r.version() >= 6) cfg.read_fraction = r.f64();
  return cfg;
}

std::uint64_t structural_fingerprint(const SimConfig& cfg) {
  SnapshotWriter w;
  w.i32(cfg.mesh_width);
  w.i32(cfg.mesh_height);
  w.boolean(cfg.torus);
  w.u8(static_cast<std::uint8_t>(cfg.design));
  w.u8(static_cast<std::uint8_t>(cfg.routing));
  w.i32(cfg.buffer_depth);
  w.i32(cfg.fairness_threshold);
  w.i32(cfg.stall_escape_delay);
  w.i32(cfg.num_vcs);
  w.i32(cfg.retransmit_buffer);
  w.i32(cfg.packet_length);
  w.i32(cfg.flit_bits);
  // The tech node never changes cycle-level behaviour, but it scales
  // every derived energy/area figure, so two runs at different nodes
  // are different experiments — a snapshot must not restore across
  // them.
  w.i32(cfg.tech_node);
  w.u64(cfg.warmup_cycles);
  w.u64(cfg.measure_cycles);
  w.f64(cfg.fault_fraction);
  w.u64(cfg.fault_detect_delay);
  w.u64(cfg.fault_onset_spread);
  w.f64(cfg.link_fault_fraction);
  w.u64(cfg.seed);
  // The workload kind gates the VC router's class partition (switching
  // behaviour), so it is structural; the remaining closed-loop knobs
  // (mlp, service_delay, ...) live entirely in the workload model.
  w.u8(static_cast<std::uint8_t>(cfg.workload));
  return fnv1a(w.data().data(), w.data().size());
}

}  // namespace dxbar
