// Versioned binary checkpoint format (the snapshot subsystem's wire
// layer).
//
// A snapshot is a little-endian byte stream:
//
//   magic   u32  'DXSN'
//   version u16  kSnapshotVersion
//   endian  u16  0xFEFF (written natively; a byte-swapped reader sees
//                0xFFFE and rejects the stream)
//   sections ... each: tag u32 (fourcc) + payload length u64 + payload
//
// Sections let a reader validate that it is decoding what the writer
// produced and give forward-compatible framing: a future version can
// append sections without breaking older payload layouts (the version
// field still gates semantic changes).
//
// Components implement the Snapshotable protocol — a pair of methods
//
//   void save(SnapshotWriter&) const;
//   void load(SnapshotReader&);
//
// with the invariant that load() applied to a freshly constructed
// object (same constructor arguments) reproduces the saved object's
// observable behaviour bit-exactly.  Structural state derived from the
// configuration (mesh wiring, route tables, credit sizing) is NOT
// serialized: restore always goes through normal construction, so a
// snapshot holds only the mutable simulation state.
//
// Readers throw SnapshotError on truncation, tag mismatch, or version
// skew; writers never fail (they append to an in-memory buffer the
// caller persists).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dxbar {

inline constexpr std::uint32_t kSnapshotMagic = 0x4E535844;  // "DXSN"
inline constexpr std::uint16_t kSnapshotVersion = 6;  // 2: EnergyMeter
                                                      // stores event counts
                                                      // 3: SimConfig grows
                                                      // measure_seed
                                                      // 4: Flit/PacketRecord
                                                      // grow cls; SimConfig
                                                      // grows the closed-loop
                                                      // workload knobs;
                                                      // RunStats grows the
                                                      // request-latency block
                                                      // 5: SimConfig grows
                                                      // tech_node; RunStats
                                                      // grows the request
                                                      // latency histogram
                                                      // 6: SimConfig grows
                                                      // read_fraction;
                                                      // RunStats grows
                                                      // energy_leakage_nj;
                                                      // closed-loop workload
                                                      // grows the coherence
                                                      // mix block
inline constexpr std::uint16_t kSnapshotEndianMark = 0xFEFF;

/// Builds a four-character section tag, e.g. section_tag("CHAN").
constexpr std::uint32_t section_tag(const char (&s)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

class SnapshotWriter {
 public:
  SnapshotWriter() { write_header(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Doubles travel as their IEEE-754 bit pattern: restore is bit-exact.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Opens a section; every begin must be matched by end_section, and
  /// sections do not nest.
  void begin_section(std::uint32_t tag) {
    u32(tag);
    section_start_ = buf_.size();
    u64(0);  // length placeholder, patched by end_section
  }

  void end_section() {
    const std::uint64_t len = buf_.size() - section_start_ - 8;
    for (int i = 0; i < 8; ++i) {
      buf_[section_start_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void write_header() {
    u32(kSnapshotMagic);
    u16(kSnapshotVersion);
    u16(kSnapshotEndianMark);
  }

  std::vector<std::uint8_t> buf_;
  std::size_t section_start_ = 0;
};

class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {
    read_header();
  }
  explicit SnapshotReader(const std::vector<std::uint8_t>& buf)
      : SnapshotReader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(read_le<std::uint32_t>());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  /// Consumes the header of the next section and checks its tag.
  /// Returns the payload length.
  std::uint64_t expect_section(std::uint32_t tag) {
    const std::uint32_t got = u32();
    if (got != tag) {
      throw SnapshotError("section tag mismatch: expected " + tag_name(tag) +
                          ", got " + tag_name(got));
    }
    const std::uint64_t len = u64();
    if (len > size_ - pos_) {
      throw SnapshotError("section " + tag_name(tag) +
                          " overruns the stream");
    }
    return len;
  }

  /// Counts a size/length field against what the stream can still hold,
  /// so corrupt counts fail fast instead of driving giant allocations.
  [[nodiscard]] std::uint64_t count(std::uint64_t max_element_bytes = 1) {
    const std::uint64_t n = u64();
    if (max_element_bytes != 0 && n > (size_ - pos_) / max_element_bytes) {
      throw SnapshotError("element count overruns the stream");
    }
    return n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }
  [[nodiscard]] std::uint16_t version() const noexcept { return version_; }

 private:
  static std::string tag_name(std::uint32_t tag) {
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
      const char c = static_cast<char>(tag >> (8 * i));
      s[static_cast<std::size_t>(i)] = (c >= 32 && c < 127) ? c : '?';
    }
    return "'" + s + "'";
  }

  void need(std::size_t n) const {
    if (n > size_ - pos_) throw SnapshotError("truncated stream");
  }

  template <typename T>
  T read_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  void read_header() {
    if (u32() != kSnapshotMagic) throw SnapshotError("bad magic");
    version_ = u16();
    if (version_ == 0 || version_ > kSnapshotVersion) {
      throw SnapshotError("unsupported version " + std::to_string(version_));
    }
    if (u16() != kSnapshotEndianMark) {
      throw SnapshotError("endianness mismatch");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint16_t version_ = 1;
};

/// FNV-1a over a byte range; the campaign runner frames records with it
/// to detect torn writes after a crash.
[[nodiscard]] constexpr std::uint64_t fnv1a(const std::uint8_t* data,
                                            std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace dxbar
