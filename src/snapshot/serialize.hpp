// Serializers for the shared value types (Flit, PacketRecord, RunStats,
// SimConfig) plus small container helpers, layered on the snapshot wire
// format.  Components with private state implement their own
// save()/load() members; everything that is a plain value round-trips
// through these free functions so every writer and reader agree on one
// field order.
#pragma once

#include <optional>

#include "common/config.hpp"
#include "common/fixed_queue.hpp"
#include "common/flit.hpp"
#include "common/stats.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

// ---- Flit -----------------------------------------------------------

inline void save_flit(SnapshotWriter& w, const Flit& f) {
  w.u64(f.packet);
  w.u16(f.seq);
  w.u16(f.packet_len);
  w.u32(f.src);
  w.u32(f.dst);
  w.u64(f.injected_at);
  w.u64(f.born_at);
  w.u8(f.vc);
  w.u8(f.cls);  // added in snapshot version 4
  w.u8(f.deflections);
  w.u8(f.retransmits);
  w.u16(f.hops);
}

inline Flit load_flit(SnapshotReader& r) {
  Flit f;
  f.packet = r.u64();
  f.seq = r.u16();
  f.packet_len = r.u16();
  f.src = r.u32();
  f.dst = r.u32();
  f.injected_at = r.u64();
  f.born_at = r.u64();
  f.vc = r.u8();
  if (r.version() >= 4) f.cls = r.u8();
  f.deflections = r.u8();
  f.retransmits = r.u8();
  f.hops = r.u16();
  return f;
}

inline void save_optional_flit(SnapshotWriter& w,
                               const std::optional<Flit>& f) {
  w.boolean(f.has_value());
  if (f.has_value()) save_flit(w, *f);
}

inline std::optional<Flit> load_optional_flit(SnapshotReader& r) {
  if (!r.boolean()) return std::nullopt;
  return load_flit(r);
}

// ---- PacketRecord ---------------------------------------------------

inline void save_packet_record(SnapshotWriter& w, const PacketRecord& p) {
  w.u64(p.id);
  w.u32(p.src);
  w.u32(p.dst);
  w.u16(p.length);
  w.u8(p.cls);  // added in snapshot version 4
  w.u64(p.created);
  w.u64(p.injected);
  w.u64(p.completed);
  w.u32(p.total_hops);
  w.u32(p.total_deflections);
  w.u32(p.total_retransmits);
}

inline PacketRecord load_packet_record(SnapshotReader& r) {
  PacketRecord p;
  p.id = r.u64();
  p.src = r.u32();
  p.dst = r.u32();
  p.length = r.u16();
  if (r.version() >= 4) p.cls = r.u8();
  p.created = r.u64();
  p.injected = r.u64();
  p.completed = r.u64();
  p.total_hops = r.u32();
  p.total_deflections = r.u32();
  p.total_retransmits = r.u32();
  return p;
}

// ---- RunStats / SimConfig (campaign persistence) --------------------

void save_run_stats(SnapshotWriter& w, const RunStats& s);
RunStats load_run_stats(SnapshotReader& r);

void save_config(SnapshotWriter& w, const SimConfig& cfg);
SimConfig load_config(SnapshotReader& r);

/// Hash of the configuration fields that determine a network's structure
/// and switching behaviour (mesh, design, buffer sizing, fault plans,
/// seed, stats window).  Network::load refuses a snapshot whose
/// fingerprint differs from the target's — the remaining fields
/// (offered_load, warmup_load, pattern, drain cap) belong to the
/// workload and may legitimately differ across a warm-start fork.
std::uint64_t structural_fingerprint(const SimConfig& cfg);

// ---- container helpers ----------------------------------------------

/// Writes a FixedQueue front-to-back through a per-element serializer
/// `f(writer, elem)`.
template <typename T, typename SaveElem>
void save_fixed_queue(SnapshotWriter& w, const FixedQueue<T>& q,
                      SaveElem&& f) {
  w.u64(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) f(w, q.at(i));
}

/// Restores a FixedQueue in place from `f(reader) -> elem`; the queue's
/// capacity is structural and must hold the serialized population.
template <typename T, typename LoadElem>
void load_fixed_queue(SnapshotReader& r, FixedQueue<T>& q, LoadElem&& f) {
  q.clear();
  const std::uint64_t n = r.count();
  if (n > q.capacity()) {
    throw SnapshotError("fixed queue population exceeds capacity");
  }
  for (std::uint64_t i = 0; i < n; ++i) (void)q.push(f(r));
}

}  // namespace dxbar
