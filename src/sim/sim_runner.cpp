#include "sim/sim_runner.hpp"

#include "workload/factory.hpp"

namespace dxbar {

void advance_open_loop(Network& net, Cycle until) {
  const SimConfig& cfg = net.config();
  const Cycle warmup = cfg.warmup_cycles;
  const Cycle measure_end = warmup + cfg.measure_cycles;
  if (until > measure_end) until = measure_end;

  // Energy accumulates only inside the measurement window; deriving the
  // gate from the clock makes the call position-independent, so a
  // restored network resumes with the exact setting the straight run had.
  net.energy().set_enabled(net.now() >= warmup && net.now() < measure_end);
  while (net.now() < until) {
    if (net.now() == warmup) net.energy().set_enabled(true);
    net.step();
  }
}

RunStats finish_open_loop(Network& net, WorkloadModel& workload,
                          std::vector<PacketRecord>* packets_out) {
  const SimConfig& cfg = net.config();
  advance_open_loop(net, cfg.warmup_cycles + cfg.measure_cycles);
  net.energy().set_enabled(false);
  workload.set_injection_enabled(false);

  bool drained = false;
  for (Cycle t = 0; t < cfg.drain_cycles; ++t) {
    if (net.idle() && workload.quiescent()) {
      drained = true;
      break;
    }
    net.step();
  }
  drained = drained || (net.idle() && workload.quiescent());

  RunStats out = net.stats().summarize(cfg.offered_load, drained);
  out.packet_length = cfg.packet_length;
  out.energy_buffer_nj = net.energy().buffer_nj();
  out.energy_crossbar_nj = net.energy().crossbar_nj();
  out.energy_link_nj = net.energy().link_nj();
  out.energy_control_nj = net.energy().control_nj();
  out.energy_leakage_nj = network_leakage_nj(cfg, out.cycles);
  workload.fill_run_stats(out);
  if (packets_out != nullptr) *packets_out = net.stats().window_packets();
  return out;
}

namespace {

/// Shared body of the open-loop runners.
RunStats open_loop_impl(const SimConfig& cfg, WorkloadModel& workload,
                        std::vector<PacketRecord>* packets_out) {
  Network net(cfg);
  net.set_workload(&workload);
  return finish_open_loop(net, workload, packets_out);
}

}  // namespace

RunStats run_open_loop(const SimConfig& cfg, WorkloadModel& workload) {
  return open_loop_impl(cfg, workload, nullptr);
}

RunStats run_open_loop(const SimConfig& cfg) {
  const Mesh mesh(cfg.mesh_width, cfg.mesh_height, cfg.torus);
  const auto workload = make_workload(cfg, mesh);
  return run_open_loop(cfg, *workload);
}

DetailedRun run_open_loop_detailed(const SimConfig& cfg) {
  const Mesh mesh(cfg.mesh_width, cfg.mesh_height, cfg.torus);
  const auto workload = make_workload(cfg, mesh);
  DetailedRun out;
  out.stats = open_loop_impl(cfg, *workload, &out.packets);
  return out;
}

ClosedLoopResult run_closed_loop(const SimConfig& cfg,
                                 WorkloadModel& workload, Cycle max_cycles) {
  Network net(cfg);
  net.set_workload(&workload);
  net.energy().set_enabled(true);

  ClosedLoopResult out;
  while (net.now() < max_cycles) {
    if (workload.finished() && net.idle()) {
      out.finished = true;
      break;
    }
    net.step();
  }
  out.completion_cycles = net.now();
  out.packets = net.packets_delivered();
  out.energy_nj = net.energy().total_nj();
  out.energy_per_packet_nj =
      out.packets == 0 ? 0.0
                       : out.energy_nj / static_cast<double>(out.packets);

  // Whole-run latency average (closed-loop runs have no warmup window).
  const auto& packets = net.stats().window_packets();
  if (!packets.empty()) {
    double sum = 0.0;
    for (const PacketRecord& p : packets) {
      sum += static_cast<double>(p.latency());
    }
    out.avg_packet_latency = sum / static_cast<double>(packets.size());
  }
  return out;
}

ClosedLoopResult run_trace_replay(const SimConfig& cfg,
                                  std::vector<TraceEntry> entries,
                                  Cycle max_cycles) {
  SimConfig run_cfg = cfg;
  run_cfg.warmup_cycles = 0;
  run_cfg.measure_cycles = max_cycles;
  TraceWorkload workload(std::move(entries));
  return run_closed_loop(run_cfg, workload, max_cycles);
}

ClosedLoopResult run_splash(const SimConfig& cfg, const SplashProfile& app,
                            Cycle max_cycles) {
  // The whole run is the measurement: make the stats window cover it.
  SimConfig run_cfg = cfg;
  run_cfg.warmup_cycles = 0;
  run_cfg.measure_cycles = max_cycles;

  const Mesh mesh(run_cfg.mesh_width, run_cfg.mesh_height);
  SplashWorkload workload(app, run_cfg, mesh);
  return run_closed_loop(run_cfg, workload, max_cycles);
}

}  // namespace dxbar
