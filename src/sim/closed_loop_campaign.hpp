// Point-level resume for closed-loop (custom-run) experiments.
//
// The open-loop Campaign checkpoints mid-point because open-loop points
// are long and individually expensive.  Closed-loop jobs (SPLASH runs,
// trace replays) are short but numerous, so the useful resume grain is
// the completed point: each finished ClosedLoopResult is appended to
// `results.bin` as a self-checking frame (tag + length + payload +
// FNV-1a), and a fresh campaign on the same directory skips every point
// whose frame loads.  A torn tail from a crash mid-append is detected
// and dropped, exactly like the open-loop results file.
//
// Every frame carries the caller's job-list fingerprint; frames from a
// different job list are ignored (those points simply re-run), so a
// directory can be reused across --quick and full runs without poisoned
// results.  record() is thread-safe — jobs complete from a parallel_for.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/sim_runner.hpp"

namespace dxbar {

class ClosedLoopCampaign {
 public:
  /// Loads any prior results for this (directory, fingerprint) pair.
  /// `points` is the job-list size; out-of-range frames are ignored.
  ClosedLoopCampaign(std::size_t points, std::string dir,
                     std::uint64_t fingerprint);

  /// Per-point results; nullopt while a point is still pending.
  [[nodiscard]] const std::vector<std::optional<ClosedLoopResult>>& results()
      const {
    return results_;
  }

  [[nodiscard]] std::size_t completed() const;

  /// Persists one finished point (thread-safe; durable once returned).
  void record(std::size_t point, const ClosedLoopResult& r);

 private:
  [[nodiscard]] std::string results_path() const;
  void load_results();

  std::string dir_;
  std::uint64_t fingerprint_;
  std::vector<std::optional<ClosedLoopResult>> results_;
  std::mutex mu_;
};

}  // namespace dxbar
