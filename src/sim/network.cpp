#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "router/afc_router.hpp"
#include "router/bless_router.hpp"
#include "router/buffered_router.hpp"
#include "router/damq_router.hpp"
#include "router/dxbar_router.hpp"
#include "router/minbd_router.hpp"
#include "router/scarab_router.hpp"
#include "router/unified_router.hpp"
#include "router/vc_router.hpp"

namespace dxbar {

Network::Network(const SimConfig& cfg)
    : Network(cfg, FaultPlan(cfg.num_nodes(), cfg.fault_fraction, cfg.seed,
                             cfg.fault_onset_spread,
                             cfg.fault_detect_delay)) {}

Network::Network(const SimConfig& cfg, FaultPlan plan)
    : Network(cfg, std::move(plan),
              MeshPartition::rows(
                  Mesh(cfg.mesh_width, cfg.mesh_height, cfg.torus),
                  cfg.shards)) {}

Network::Network(const SimConfig& cfg, const MeshPartition& part)
    : Network(cfg,
              FaultPlan(cfg.num_nodes(), cfg.fault_fraction, cfg.seed,
                        cfg.fault_onset_spread, cfg.fault_detect_delay),
              part) {}

Network::Network(const SimConfig& cfg, FaultPlan plan,
                 const MeshPartition& part)
    : cfg_(cfg),
      mesh_(cfg.mesh_width, cfg.mesh_height, cfg.torus),
      part_(part),
      energy_(derive_energy_params(cfg)),
      faults_(std::move(plan)),
      link_faults_(mesh_, cfg.link_fault_fraction, cfg.seed),
      stats_(cfg.warmup_cycles, cfg.warmup_cycles + cfg.measure_cycles,
             cfg.num_nodes()) {
  assert(part_.width() == mesh_.width() &&
         part_.height() == mesh_.height() && "partition/mesh mismatch");
  assert(cfg_.validate().empty() && "invalid SimConfig");
  if (link_faults_.any()) {
    route_table_ = std::make_unique<RouteTable>(
        mesh_, [this](NodeId n, Direction d) {
          return link_faults_.alive(n, d);
        });
  } else if (RouteCache::worthwhile(mesh_)) {
    route_cache_ = std::make_unique<RouteCache>(cfg_.routing, mesh_);
  }
  build();
}

Network::~Network() = default;

void Network::build() {
  const int n = mesh_.num_nodes();
  const int credits = link_credits_for(cfg_.design, cfg_.buffer_depth);

  // Channels: one per existing directed link, packed contiguously in
  // (node, dir) order.  channel_at(a, d) carries flits from router a's
  // output d to the neighbour's opposite input port.  The vector is
  // fully populated before any Channel* is handed out, so the pointers
  // stay stable for the network's lifetime.
  link_slot_.assign(static_cast<std::size_t>(n) * kNumLinkDirs, -1);
  for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
    for (Direction d : kLinkDirs) {
      const auto nb = mesh_.neighbor(a, d);
      if (!nb) continue;
      if (!link_faults_.alive(a, d)) continue;  // dead link: no channel
      link_slot_[static_cast<std::size_t>(link_index(a, port_index(d)))] =
          static_cast<std::int32_t>(channels_.size());
      if (cfg_.design == RouterDesign::BufferedVC) {
        channels_.emplace_back(cfg_.num_vcs,
                               cfg_.buffer_depth / cfg_.num_vcs);
      } else {
        channels_.emplace_back(credits);
      }
      channel_meta_.push_back(
          {a, *nb, port_index(opposite(d))});
    }
  }

  // Per-shard state.  Heap-allocated so each block honours alignas(64)
  // and keeps a stable address for the wiring below.
  const int num_shards = part_.shards();
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardState>(
        energy_.params(), cfg_.warmup_cycles,
        cfg_.warmup_cycles + cfg_.measure_cycles));
    // Pre-size the shard's flit arena so steady-state injection recycles
    // slots instead of growing (growth remains correct, just amortized).
    shards_.back()->flit_pool.reserve(
        static_cast<std::size_t>(part_.node_end(s) - part_.node_begin(s)) *
        16);
    shards_.back()->active_channels.reserve(channels_.size());
  }
  if (num_shards > 1) pool_ = std::make_unique<ShardPool>(num_shards);

  // A channel belongs to the shard of its destination router: that shard
  // advances it and delivers its arrival.  Interior channels (both
  // endpoints in one shard) self-register on the owner's active list
  // when a send / credit return / stop flip gives advance() work, and
  // the sweep delists them once quiescent.  Boundary channels are
  // *pinned* — permanently listed — because their two endpoint routers
  // run on different threads and touch() list maintenance is the one
  // channel mutation that is not endpoint-disjoint; pinned, touch()
  // never writes, and the shard-private field writes that remain
  // (sender: staged/credits/total_sends; receiver: pending credits,
  // stop_pending) never conflict.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ChannelMeta& m = channel_meta_[i];
    ShardState& owner = *shards_[static_cast<std::size_t>(
        part_.shard_of_node(m.dst_node))];
    channels_[i].attach_active_list(&owner.active_channels,
                                    static_cast<std::uint32_t>(i));
    if (!part_.same_shard(m.src_node, m.dst_node)) channels_[i].pin();
  }

  sources_.resize(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    ShardState& owner =
        *shards_[static_cast<std::size_t>(part_.shard_of_node(id))];
    sources_[id].attach(&now_, &owner.tally, &owner.flit_pool);
  }

  routers_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    ShardState& owner =
        *shards_[static_cast<std::size_t>(part_.shard_of_node(id))];
    RouterEnv env;
    env.cfg = &cfg_;
    env.mesh = &mesh_;
    env.energy = &owner.energy;
    env.faults = &faults_;
    env.route_table = route_table_.get();
    env.route_cache = route_cache_.get();
    for (Direction d : kLinkDirs) {
      const int di = port_index(d);
      // Outgoing: our own link in direction d.
      env.out_links[static_cast<std::size_t>(di)] = channel_at(id, di);
      // Incoming over input port d: the neighbour-in-direction-d's link
      // pointing back at us.
      const auto nb = mesh_.neighbor(id, d);
      if (nb) {
        env.in_links[static_cast<std::size_t>(di)] =
            channel_at(*nb, port_index(opposite(d)));
      }
    }
    auto router = make_router(id, env);
    router->source = &sources_[id];
    router->nack_sink = &owner;
    routers_.push_back(std::move(router));
  }

  if (cfg_.design == RouterDesign::Scarab) {
    scarab_staging_.resize(static_cast<std::size_t>(n));
    for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
      scarab_staging_[id].attach_pool(
          &shards_[static_cast<std::size_t>(part_.shard_of_node(id))]
               ->flit_pool);
    }
    scarab_outstanding_.assign(static_cast<std::size_t>(n), 0);
    scarab_capacity_flits_ = cfg_.retransmit_buffer * cfg_.packet_length;
    nacks_.set_num_nodes(n);
  }
}

PacketId Network::inject_packet(NodeId src, NodeId dst, int length,
                                Cycle now) {
  return inject_packet(src, dst, length, now, MsgClass::Request);
}

PacketId Network::inject_packet(NodeId src, NodeId dst, int length, Cycle now,
                                MsgClass cls) {
  assert(src != dst && "self-addressed packets are not routed");
  const PacketId id = next_packet_++;
  for (int s = 0; s < length; ++s) {
    Flit f;
    f.packet = id;
    f.seq = static_cast<std::uint16_t>(s);
    f.packet_len = static_cast<std::uint16_t>(length);
    f.src = src;
    f.dst = dst;
    f.cls = static_cast<std::uint8_t>(cls);
    f.born_at = now;
    f.injected_at = kNotInjected;
    if (cfg_.design == RouterDesign::Scarab) {
      scarab_staging_[src].push_back(f);
    } else {
      sources_[src].push_back(f);
    }
  }
  ++packets_created_;
  flits_created_ += static_cast<std::uint64_t>(length);
  if (tracer_ != nullptr) {
    tracer_->on_packet_created(id, src, dst, length, now);
  }
  return id;
}

void Network::scarab_release_staging() {
  for (NodeId n = 0; n < static_cast<NodeId>(scarab_staging_.size()); ++n) {
    auto& staging = scarab_staging_[n];
    while (!staging.empty() &&
           scarab_outstanding_[n] < scarab_capacity_flits_) {
      sources_[n].push_back(staging.pop_front());
      ++scarab_outstanding_[n];
    }
  }
}

void Network::scarab_deliver_nacks() {
  for (Flit f : nacks_.deliveries(now_)) {
    ++f.retransmits;
    // Retransmissions keep their original age so they eventually win
    // (SCARAB's forward-progress argument).
    sources_[f.src].push_front(f);
  }
}

void Network::handle_ejections() {
  for (auto& router : routers_) {
    if (router->ejected.empty()) continue;
    for (const Flit& f : router->ejected) {
      assert(f.dst == router->id() && "flit ejected at wrong node");
      ++flits_delivered_;
      stats_.on_flit_ejected(f, now_);
      if (tracer_ != nullptr) tracer_->on_flit_ejected(f, now_);
      if (cfg_.design == RouterDesign::Scarab) {
        --scarab_outstanding_[f.src];
      }

      Assembly& a = assembly_[f.packet];
      if (a.received == 0) {
        a.rec.id = f.packet;
        a.rec.src = f.src;
        a.rec.dst = f.dst;
        a.rec.length = f.packet_len;
        a.rec.cls = f.cls;
        a.rec.created = f.born_at;
        a.rec.injected = f.injected_at;
      }
      ++a.received;
      a.rec.injected = std::min(a.rec.injected, f.injected_at);
      a.rec.total_hops += f.hops;
      a.rec.total_deflections += f.deflections;
      a.rec.total_retransmits += f.retransmits;
      if (a.received == f.packet_len) {
        a.rec.completed = now_;
        PacketRecord rec = a.rec;
        assembly_.erase(f.packet);
        ++packets_delivered_;
        stats_.on_packet_completed(rec);
        if (tracer_ != nullptr) tracer_->on_packet_completed(rec, now_);
        if (workload_ != nullptr) {
          workload_->on_packet_delivered(rec, now_, *this);
        }
      }
    }
    router->ejected.clear();
  }
}

namespace {

/// Steps the routers in [begin, end) through their concrete type.  All
/// routers of one network share the design, so the per-cycle loop
/// dispatches once on the enum instead of once per router through the
/// vtable; the virtual interface remains for extensions and tests.
template <typename ConcreteRouter>
void step_range(std::vector<std::unique_ptr<Router>>& routers, NodeId begin,
                NodeId end, Cycle now) {
  for (NodeId i = begin; i < end; ++i) {
    static_cast<ConcreteRouter*>(routers[i].get())->step(now);
  }
}

}  // namespace

void Network::step_routers_shard(int shard) {
  const NodeId b = part_.node_begin(shard);
  const NodeId e = part_.node_end(shard);
  switch (cfg_.design) {
    case RouterDesign::FlitBless:
      step_range<BlessRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::Scarab:
      step_range<ScarabRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::Buffered4:
    case RouterDesign::Buffered8:
      step_range<BufferedRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::DXbar:
      step_range<DXbarRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::UnifiedXbar:
      step_range<UnifiedRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::BufferedVC:
      step_range<VcRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::Afc:
      step_range<AfcRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::Damq:
      step_range<DamqRouter>(routers_, b, e, now_);
      return;
    case RouterDesign::MinBD:
      step_range<MinBDRouter>(routers_, b, e, now_);
      return;
  }
  for (NodeId i = b; i < e; ++i) routers_[i]->step(now_);  // unreachable
}

void Network::sweep_channels(int shard) {
  // Links move: flits advance one stage, pending credits post, and this
  // cycle's arrival (if any) lands in the downstream input register —
  // always a router of this shard, since the shard owns the channel by
  // its destination.  Only channels with pending work are visited
  // (advance() is the identity on a quiescent channel); channels are
  // mutually independent, so advancing and delivering in the same sweep
  // is equivalent to a full two-pass formulation, and per-shard sweep
  // order is immaterial.  A channel that went quiescent is delisted in
  // place and re-registers itself on its next mutation; pinned
  // (boundary) channels stay listed forever.
  auto& list = shards_[static_cast<std::size_t>(shard)]->active_channels;
  std::size_t keep = 0;
  for (std::size_t k = 0; k < list.size(); ++k) {
    const std::uint32_t i = list[k];
    Channel& ch = channels_[i];
    ch.advance();
    if (ch.has_arrival()) {
      const Flit f = *ch.take_arrival();
      const ChannelMeta m = channel_meta_[i];
      auto& slot =
          routers_[m.dst_node]->in[static_cast<std::size_t>(m.dst_port)];
      assert(!slot.has_value() && "input register collision");
      if (tracer_ != nullptr) tracer_->on_flit_hop(f, m.dst_node, now_);
      slot = f;
    }
    if (!ch.pinned() && ch.quiescent()) {
      ch.mark_delisted();
    } else {
      list[keep++] = i;
    }
  }
  list.resize(keep);
}

void Network::commit_shard_effects() {
  for (auto& sp : shards_) {
    ShardState& s = *sp;
    // SCARAB drops, in node order (shards are ascending contiguous node
    // ranges, and each shard recorded its drops in node order): the
    // NACK network's wire arbitration is sequence-numbered, so commit
    // order must reproduce the single-threaded call order exactly.
    for (const StagedDrop& d : s.drops) {
      ++flits_dropped_;
      if (tracer_ != nullptr) tracer_->on_flit_dropped(d.flit, d.at, now_);
      nacks_.schedule(d.flit, d.at, now_, mesh_, energy_);
    }
    s.drops.clear();
    // Integer event counts fold order-independently, which is what
    // keeps energy totals bit-identical across shard counts.
    energy_.absorb(s.energy);
    stats_.add_injected(s.tally.take());
  }
}

template <typename F>
void Network::run_sharded(F&& fn) {
  if (pool_ != nullptr && tracer_ == nullptr) {
    pool_->run(fn);
  } else {
    for (int s = 0; s < part_.shards(); ++s) fn(s);
  }
}

void Network::step() {
  // One cycle, in five phases.  The parallel phases (1, 4) are a data
  // partition of the single-threaded loop — same per-element work, only
  // the executing thread differs — and the barriers between phases are
  // the only synchronization, so every shard count computes the same
  // cycle function (DESIGN.md §10).

  // 1. [parallel] Links move; arrivals land in input registers.
  run_sharded([this](int s) { sweep_channels(s); });

  // 2. [serial] SCARAB control: NACK deliveries re-queue drops; staging
  //    drains into the sources while retransmit-buffer space allows.
  if (cfg_.design == RouterDesign::Scarab) {
    scarab_deliver_nacks();
    scarab_release_staging();
  }

  // 3. [serial] Workload injects this cycle's new packets.  Kept serial
  //    so the traffic RNG stays one stream with the single-threaded
  //    draw order — bit-exactness by construction, not reconstruction.
  if (workload_ != nullptr) workload_->begin_cycle(now_, *this);

  // 4. [parallel] Routers switch.  All inter-router coupling is
  //    channel-mediated and endpoint-disjoint, so iteration order is
  //    immaterial; shared side effects (drops, energy, injection
  //    counts) are staged per shard.
  run_sharded([this](int s) { step_routers_shard(s); });

  // 5. [serial] Fold staged effects, then ejections, reassembly,
  //    completion callbacks.
  commit_shard_effects();
  handle_ejections();

  ++now_;
}

namespace {

/// Node-major batched router phase across K lanes: node 0 in every
/// lane, then node 1, ...  Same per-lane work as step_routers_shard on
/// a single shard, only the interleaving differs (lanes are disjoint
/// networks, so any interleaving computes the same per-lane result).
template <typename ConcreteRouter>
void step_routers_node_major(std::unique_ptr<Router>* const* routers,
                             const Cycle* nows, std::size_t lanes,
                             NodeId num_nodes) {
  ConcreteRouter* batch[Network::kMaxStepLanes];
  for (NodeId node = 0; node < num_nodes; ++node) {
    for (std::size_t l = 0; l < lanes; ++l) {
      batch[l] = static_cast<ConcreteRouter*>(routers[l][node].get());
    }
    ConcreteRouter::step_batch(batch, nows, lanes);
  }
}

/// Fallback for designs without a batched entry point: still node-major
/// for locality, but through the virtual interface.
void step_routers_node_major_virtual(std::unique_ptr<Router>* const* routers,
                                     const Cycle* nows, std::size_t lanes,
                                     NodeId num_nodes) {
  for (NodeId node = 0; node < num_nodes; ++node) {
    for (std::size_t l = 0; l < lanes; ++l) {
      routers[l][node]->step(nows[l]);
    }
  }
}

}  // namespace

void Network::step_lanes(Network* const* lanes, std::size_t n) {
  if (n == 0) return;
  if (n > kMaxStepLanes) {
    throw std::invalid_argument("step_lanes: too many lanes");
  }
  const Network& first = *lanes[0];
  for (std::size_t l = 0; l < n; ++l) {
    const Network& lane = *lanes[l];
    if (lane.part_.shards() != 1) {
      throw std::invalid_argument(
          "step_lanes: lanes must be single-sharded (shards == 1); "
          "sharded execution and replica batching do not compose — run "
          "sharded configs serially");
    }
    if (lane.tracer_ != nullptr) {
      throw std::invalid_argument("step_lanes: lanes cannot carry tracers");
    }
    if (lane.cfg_.design != first.cfg_.design ||
        lane.mesh_.width() != first.mesh_.width() ||
        lane.mesh_.height() != first.mesh_.height()) {
      throw std::invalid_argument(
          "step_lanes: lanes must share one design and mesh shape");
    }
  }

  // The five phases of step(), interleaved across lanes.  Every lane
  // passes through its phases in the same order as a solo step(); lanes
  // share no state, so the cross-lane interleaving is unobservable.

  // 1. Links move; arrivals land in input registers.
  for (std::size_t l = 0; l < n; ++l) lanes[l]->sweep_channels(0);

  // 2. SCARAB control.
  if (first.cfg_.design == RouterDesign::Scarab) {
    for (std::size_t l = 0; l < n; ++l) {
      lanes[l]->scarab_deliver_nacks();
      lanes[l]->scarab_release_staging();
    }
  }

  // 3. Workloads inject.
  for (std::size_t l = 0; l < n; ++l) {
    Network& lane = *lanes[l];
    if (lane.workload_ != nullptr) {
      lane.workload_->begin_cycle(lane.now_, lane);
    }
  }

  // 4. Routers switch, node-major across lanes.
  std::unique_ptr<Router>* routers[kMaxStepLanes];
  Cycle nows[kMaxStepLanes];
  for (std::size_t l = 0; l < n; ++l) {
    routers[l] = lanes[l]->routers_.data();
    nows[l] = lanes[l]->now_;
  }
  const NodeId num_nodes = static_cast<NodeId>(first.mesh_.num_nodes());
  switch (first.cfg_.design) {
    case RouterDesign::FlitBless:
      step_routers_node_major<BlessRouter>(routers, nows, n, num_nodes);
      break;
    case RouterDesign::Buffered4:
    case RouterDesign::Buffered8:
      step_routers_node_major<BufferedRouter>(routers, nows, n, num_nodes);
      break;
    case RouterDesign::DXbar:
      step_routers_node_major<DXbarRouter>(routers, nows, n, num_nodes);
      break;
    case RouterDesign::Damq:
      step_routers_node_major<DamqRouter>(routers, nows, n, num_nodes);
      break;
    case RouterDesign::MinBD:
      step_routers_node_major<MinBDRouter>(routers, nows, n, num_nodes);
      break;
    default:
      step_routers_node_major_virtual(routers, nows, n, num_nodes);
      break;
  }

  // 5. Fold staged effects, ejections, reassembly; clocks tick.
  for (std::size_t l = 0; l < n; ++l) {
    lanes[l]->commit_shard_effects();
    lanes[l]->handle_ejections();
    ++lanes[l]->now_;
  }
}

std::vector<Network::LinkUsage> Network::link_usage() const {
  std::vector<LinkUsage> out;
  for (NodeId n = 0; n < static_cast<NodeId>(mesh_.num_nodes()); ++n) {
    for (Direction d : kLinkDirs) {
      const std::int32_t slot =
          link_slot_[static_cast<std::size_t>(link_index(n, port_index(d)))];
      if (slot >= 0) {
        out.push_back(
            {LinkId{n, d},
             channels_[static_cast<std::size_t>(slot)].total_sends()});
      }
    }
  }
  return out;
}

bool Network::idle_by_scan() const {
  for (const auto& s : sources_) {
    if (!s.empty()) return false;
  }
  for (const auto& r : routers_) {
    if (r->occupancy() != 0) return false;
  }
  for (const Channel& ch : channels_) {
    if (ch.occupancy() != 0) return false;
  }
  if (!nacks_.empty()) return false;
  for (const auto& st : scarab_staging_) {
    if (!st.empty()) return false;
  }
  return true;
}

bool Network::idle() const {
  // Flit conservation: every created flit sits in exactly one of the
  // places idle_by_scan() walks until it is delivered, so the counter
  // identity is equivalent to the structural scan (asserted in debug).
  const bool fast = flits_created_ == flits_delivered_;
  assert(fast == idle_by_scan());
  return fast;
}

}  // namespace dxbar
