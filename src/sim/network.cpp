#include "sim/network.hpp"

#include <algorithm>
#include <cassert>

namespace dxbar {

Network::Network(const SimConfig& cfg)
    : Network(cfg, FaultPlan(cfg.num_nodes(), cfg.fault_fraction, cfg.seed,
                             cfg.fault_onset_spread,
                             cfg.fault_detect_delay)) {}

Network::Network(const SimConfig& cfg, FaultPlan plan)
    : cfg_(cfg),
      mesh_(cfg.mesh_width, cfg.mesh_height, cfg.torus),
      energy_(cfg.design),
      faults_(std::move(plan)),
      link_faults_(mesh_, cfg.link_fault_fraction, cfg.seed),
      stats_(cfg.warmup_cycles, cfg.warmup_cycles + cfg.measure_cycles,
             cfg.num_nodes()) {
  assert(cfg_.validate().empty() && "invalid SimConfig");
  if (link_faults_.any()) {
    route_table_ = std::make_unique<RouteTable>(
        mesh_, [this](NodeId n, Direction d) {
          return link_faults_.alive(n, d);
        });
  }
  build();
}

Network::~Network() = default;

void Network::build() {
  const int n = mesh_.num_nodes();
  const int credits = link_credits_for(cfg_.design, cfg_.buffer_depth);

  // Channels: one per existing directed link.  links_[link_index(a, d)]
  // carries flits from router a's output d to the neighbour's opposite
  // input port.
  links_.resize(static_cast<std::size_t>(n) * kNumLinkDirs);
  for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
    for (Direction d : kLinkDirs) {
      const auto nb = mesh_.neighbor(a, d);
      if (!nb) continue;
      if (!link_faults_.alive(a, d)) continue;  // dead link: no channel
      Link& link = links_[static_cast<std::size_t>(link_index(a, port_index(d)))];
      if (cfg_.design == RouterDesign::BufferedVC) {
        link.channel = std::make_unique<Channel>(
            cfg_.num_vcs, cfg_.buffer_depth / cfg_.num_vcs);
      } else {
        link.channel = std::make_unique<Channel>(credits);
      }
      link.dst_node = *nb;
      link.dst_port = port_index(opposite(d));
    }
  }

  sources_.resize(static_cast<std::size_t>(n));
  for (auto& s : sources_) s.attach(&now_, &stats_);

  routers_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    RouterEnv env;
    env.cfg = &cfg_;
    env.mesh = &mesh_;
    env.energy = &energy_;
    env.faults = &faults_;
    env.route_table = route_table_.get();
    for (Direction d : kLinkDirs) {
      const int di = port_index(d);
      // Outgoing: our own link in direction d.
      Link& out = links_[static_cast<std::size_t>(link_index(id, di))];
      env.out_links[static_cast<std::size_t>(di)] = out.channel.get();
      // Incoming over input port d: the neighbour-in-direction-d's link
      // pointing back at us.
      const auto nb = mesh_.neighbor(id, d);
      if (nb) {
        Link& in = links_[static_cast<std::size_t>(
            link_index(*nb, port_index(opposite(d))))];
        env.in_links[static_cast<std::size_t>(di)] = in.channel.get();
      }
    }
    auto router = make_router(id, env);
    router->source = &sources_[id];
    router->nack_sink = this;
    routers_.push_back(std::move(router));
  }

  if (cfg_.design == RouterDesign::Scarab) {
    scarab_staging_.resize(static_cast<std::size_t>(n));
    scarab_outstanding_.assign(static_cast<std::size_t>(n), 0);
    scarab_capacity_flits_ = cfg_.retransmit_buffer * cfg_.packet_length;
    nacks_.set_num_nodes(n);
  }
}

PacketId Network::inject_packet(NodeId src, NodeId dst, int length,
                                Cycle now) {
  assert(src != dst && "self-addressed packets are not routed");
  const PacketId id = next_packet_++;
  for (int s = 0; s < length; ++s) {
    Flit f;
    f.packet = id;
    f.seq = static_cast<std::uint16_t>(s);
    f.packet_len = static_cast<std::uint16_t>(length);
    f.src = src;
    f.dst = dst;
    f.born_at = now;
    f.injected_at = kNotInjected;
    if (cfg_.design == RouterDesign::Scarab) {
      scarab_staging_[src].push_back(f);
    } else {
      sources_[src].push_back(f);
    }
  }
  ++packets_created_;
  flits_created_ += static_cast<std::uint64_t>(length);
  if (tracer_ != nullptr) {
    tracer_->on_packet_created(id, src, dst, length, now);
  }
  return id;
}

void Network::on_drop(const Flit& flit, NodeId at, Cycle now) {
  ++flits_dropped_;
  if (tracer_ != nullptr) tracer_->on_flit_dropped(flit, at, now);
  nacks_.schedule(flit, at, now, mesh_, energy_);
}

void Network::scarab_release_staging() {
  for (NodeId n = 0; n < static_cast<NodeId>(scarab_staging_.size()); ++n) {
    auto& staging = scarab_staging_[n];
    while (!staging.empty() &&
           scarab_outstanding_[n] < scarab_capacity_flits_) {
      sources_[n].push_back(staging.front());
      staging.pop_front();
      ++scarab_outstanding_[n];
    }
  }
}

void Network::scarab_deliver_nacks() {
  for (Flit f : nacks_.deliveries(now_)) {
    ++f.retransmits;
    // Retransmissions keep their original age so they eventually win
    // (SCARAB's forward-progress argument).
    sources_[f.src].push_front(f);
  }
}

void Network::handle_ejections() {
  for (auto& router : routers_) {
    for (const Flit& f : router->ejected) {
      assert(f.dst == router->id() && "flit ejected at wrong node");
      ++flits_delivered_;
      stats_.on_flit_ejected(f, now_);
      if (tracer_ != nullptr) tracer_->on_flit_ejected(f, now_);
      if (cfg_.design == RouterDesign::Scarab) {
        --scarab_outstanding_[f.src];
      }

      Assembly& a = assembly_[f.packet];
      if (a.received == 0) {
        a.rec.id = f.packet;
        a.rec.src = f.src;
        a.rec.dst = f.dst;
        a.rec.length = f.packet_len;
        a.rec.created = f.born_at;
        a.rec.injected = f.injected_at;
      }
      ++a.received;
      a.rec.injected = std::min(a.rec.injected, f.injected_at);
      a.rec.total_hops += f.hops;
      a.rec.total_deflections += f.deflections;
      a.rec.total_retransmits += f.retransmits;
      if (a.received == f.packet_len) {
        a.rec.completed = now_;
        PacketRecord rec = a.rec;
        assembly_.erase(f.packet);
        ++packets_delivered_;
        stats_.on_packet_completed(rec);
        if (tracer_ != nullptr) tracer_->on_packet_completed(rec, now_);
        if (workload_ != nullptr) {
          workload_->on_packet_delivered(rec, now_, *this);
        }
      }
    }
    router->ejected.clear();
  }
}

void Network::step() {
  // 1. Links move: flits advance one stage, pending credits post.
  for (Link& l : links_) {
    if (l.channel) l.channel->advance();
  }

  // 2. Deliver arrivals into the routers' input registers.
  for (Link& l : links_) {
    if (!l.channel) continue;
    if (auto f = l.channel->take_arrival()) {
      auto& slot = routers_[l.dst_node]->in[static_cast<std::size_t>(l.dst_port)];
      assert(!slot.has_value() && "input register collision");
      if (tracer_ != nullptr) tracer_->on_flit_hop(*f, l.dst_node, now_);
      slot = *f;
    }
  }

  // 3. SCARAB control: NACK deliveries re-queue drops; staging drains
  //    into the sources while retransmit-buffer space allows.
  if (cfg_.design == RouterDesign::Scarab) {
    scarab_deliver_nacks();
    scarab_release_staging();
  }

  // 4. Workload injects this cycle's new packets.
  if (workload_ != nullptr) workload_->begin_cycle(now_, *this);

  // 5. Routers switch.  All inter-router coupling is channel-mediated,
  //    so iteration order is immaterial.
  for (auto& r : routers_) r->step(now_);

  // 6. Ejections, reassembly, completion callbacks.
  handle_ejections();

  ++now_;
}

std::vector<Network::LinkUsage> Network::link_usage() const {
  std::vector<LinkUsage> out;
  for (NodeId n = 0; n < static_cast<NodeId>(mesh_.num_nodes()); ++n) {
    for (Direction d : kLinkDirs) {
      const Link& l =
          links_[static_cast<std::size_t>(link_index(n, port_index(d)))];
      if (l.channel) {
        out.push_back({LinkId{n, d}, l.channel->total_sends()});
      }
    }
  }
  return out;
}

bool Network::idle() const {
  for (const auto& s : sources_) {
    if (!s.empty()) return false;
  }
  for (const auto& r : routers_) {
    if (r->occupancy() != 0) return false;
  }
  for (const Link& l : links_) {
    if (l.channel && l.channel->occupancy() != 0) return false;
  }
  if (!nacks_.empty()) return false;
  for (const auto& st : scarab_staging_) {
    if (!st.empty()) return false;
  }
  return true;
}

}  // namespace dxbar
