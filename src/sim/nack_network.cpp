// NackNetwork is header-only; see nack_network.hpp.
#include "sim/nack_network.hpp"

namespace dxbar {
// Intentionally empty.
}  // namespace dxbar
