#include "sim/replica_batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "sim/sim_runner.hpp"
#include "snapshot/serialize.hpp"
#include "workload/factory.hpp"

namespace dxbar {
namespace {

constexpr std::uint32_t kSecWorkload = section_tag("WKLD");

}  // namespace

// ---------------------------------------------------------------------------
// ReplicaBatch

/// One lane: a complete simulation plus the open-loop phase machine
/// that mirrors advance_open_loop / finish_open_loop cycle for cycle.
struct ReplicaBatch::Lane {
  enum class Phase { Measure, Drain, Done };

  SimConfig cfg;
  Network net;
  std::unique_ptr<WorkloadModel> workload;
  Phase phase = Phase::Measure;
  Cycle drain_taken = 0;
  RunStats stats;
  std::vector<PacketRecord> packets;

  explicit Lane(const SimConfig& c)
      : cfg(c), net(cfg), workload(make_workload(cfg, net.mesh())) {
    net.set_workload(workload.get());
    derive_energy_gate();
  }

  [[nodiscard]] Cycle measure_end() const noexcept {
    return cfg.warmup_cycles + cfg.measure_cycles;
  }

  /// Re-derives the energy gate from the clock, exactly as
  /// advance_open_loop does on entry — position-independent, so it
  /// holds for fresh lanes and for lanes restored from a warm snapshot.
  void derive_energy_gate() {
    net.energy().set_enabled(net.now() >= cfg.warmup_cycles &&
                             net.now() < measure_end());
  }

  /// Per-cycle bookkeeping before a lockstep step: phase transitions,
  /// the energy flip at the warmup boundary, drain bookkeeping.
  /// Returns true when the lane takes part in this cycle's step; false
  /// means the lane just finished (phase == Done).  The transition
  /// points replay finish_open_loop's control flow exactly: energy and
  /// injection turn off when the clock reaches the measurement end, the
  /// drain loop checks idle() before each of its up-to-drain_cycles
  /// steps, and a lane that exhausts the budget records drained only if
  /// it is idle at that final check.
  bool pre_step() {
    if (phase == Phase::Measure) {
      if (net.now() >= measure_end()) {
        net.energy().set_enabled(false);
        workload->set_injection_enabled(false);
        phase = Phase::Drain;
        drain_taken = 0;
      } else {
        if (net.now() == cfg.warmup_cycles) net.energy().set_enabled(true);
        return true;
      }
    }
    if (phase == Phase::Drain) {
      if (net.idle() && workload->quiescent()) {
        finish(true);
        return false;
      }
      if (drain_taken == cfg.drain_cycles) {
        finish(false);
        return false;
      }
      ++drain_taken;
      return true;
    }
    return false;
  }

  void finish(bool drained) {
    stats = net.stats().summarize(cfg.offered_load, drained);
    stats.packet_length = cfg.packet_length;
    stats.energy_buffer_nj = net.energy().buffer_nj();
    stats.energy_crossbar_nj = net.energy().crossbar_nj();
    stats.energy_link_nj = net.energy().link_nj();
    stats.energy_control_nj = net.energy().control_nj();
    stats.energy_leakage_nj = network_leakage_nj(cfg, stats.cycles);
    workload->fill_run_stats(stats);
    packets = net.stats().window_packets();
    phase = Phase::Done;
  }
};

ReplicaBatch::ReplicaBatch(std::vector<SimConfig> configs) {
  if (configs.size() > Network::kMaxStepLanes) {
    throw std::invalid_argument("ReplicaBatch: too many lanes");
  }
  for (const SimConfig& cfg : configs) {
    if (auto err = cfg.validate(); !err.empty()) {
      throw std::invalid_argument("ReplicaBatch: " + err);
    }
    if (cfg.shards != 1) {
      throw std::invalid_argument(
          "ReplicaBatch: shards > 1 is not batchable — sharded execution "
          "parallelizes inside one simulation, replica batching across "
          "simulations; run sharded configs serially instead");
    }
    if (cfg.design != configs.front().design ||
        cfg.mesh_width != configs.front().mesh_width ||
        cfg.mesh_height != configs.front().mesh_height ||
        cfg.torus != configs.front().torus) {
      throw std::invalid_argument(
          "ReplicaBatch: lanes must share one design and mesh shape");
    }
  }
  lanes_.reserve(configs.size());
  for (const SimConfig& cfg : configs) {
    lanes_.push_back(std::make_unique<Lane>(cfg));
  }
}

ReplicaBatch::~ReplicaBatch() = default;

void ReplicaBatch::warm_start(const std::vector<std::uint8_t>& warm_state) {
  if (ran_) throw std::logic_error("ReplicaBatch: warm_start after run");
  for (auto& lane : lanes_) {
    SnapshotReader r(warm_state);
    lane->net.load(r);
    (void)r.expect_section(kSecWorkload);
    lane->workload->load_state(r);
    lane->derive_energy_gate();
  }
}

void ReplicaBatch::run() {
  if (ran_) throw std::logic_error("ReplicaBatch: run called twice");
  ran_ = true;
  std::vector<Network*> active;
  active.reserve(lanes_.size());
  for (;;) {
    // pre_step either keeps a lane in this cycle's lockstep set or
    // retires it (Done), so an empty set means every lane finished.
    active.clear();
    for (auto& lane : lanes_) {
      if (lane->phase != Lane::Phase::Done && lane->pre_step()) {
        active.push_back(&lane->net);
      }
    }
    if (active.empty()) break;
    Network::step_lanes(active.data(), active.size());
  }
}

const RunStats& ReplicaBatch::stats(std::size_t lane) const {
  return lanes_.at(lane)->stats;
}

const std::vector<PacketRecord>& ReplicaBatch::packets(
    std::size_t lane) const {
  return lanes_.at(lane)->packets;
}

// ---------------------------------------------------------------------------
// WarmupCache

std::shared_ptr<const std::vector<std::uint8_t>> WarmupCache::find(
    const std::vector<std::uint8_t>& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<const std::vector<std::uint8_t>> WarmupCache::insert(
    const std::vector<std::uint8_t>& key, std::vector<std::uint8_t> state) {
  auto sp = std::make_shared<const std::vector<std::uint8_t>>(
      std::move(state));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = map_.try_emplace(key, std::move(sp));
  return it->second;
}

std::size_t WarmupCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ---------------------------------------------------------------------------
// run_replica_sweep

std::vector<std::uint8_t> warmup_signature(const SimConfig& cfg) {
  // The full config with every field that cannot influence the warmup
  // phase neutralized: members of one signature replay an identical
  // warmup.  The drain cap and measure_seed never matter (the reseed
  // fires after the warmup snapshot point); offered_load matters only
  // when no explicit warmup_load pins the warmup rate.
  SimConfig key = cfg;
  key.drain_cycles = 0;
  key.measure_seed = 0;
  if (key.warmup_load >= 0.0) key.offered_load = 0.0;
  SnapshotWriter w;
  save_config(w, key);
  return w.take();
}

std::vector<RunStats> run_replica_sweep(const std::vector<SimConfig>& configs,
                                        unsigned threads, WarmupCache* cache,
                                        ReplicaSweepReport* report) {
  struct Group {
    std::vector<std::size_t> members;
    std::vector<std::uint8_t> key;
    std::shared_ptr<const std::vector<std::uint8_t>> warm_state;
    bool from_cache = false;
  };

  // A config can share a warmup when it is single-sharded (replica
  // lanes cannot shard) and actually has a warmup phase, and either
  // carries an explicit warmup_load (the classic warm-sweep rule: the
  // measurement load is neutralized out of the signature) or has at
  // least one sibling identical up to measure_seed / drain cap (seed
  // replication without an explicit warmup_load).
  const auto eligible = [](const SimConfig& cfg) {
    return cfg.shards == 1 && cfg.warmup_cycles > 0;
  };
  std::map<std::vector<std::uint8_t>, std::size_t> key_count;
  for (const SimConfig& cfg : configs) {
    if (eligible(cfg)) ++key_count[warmup_signature(cfg)];
  }

  std::vector<Group> groups;
  std::map<std::vector<std::uint8_t>, std::size_t> group_of;
  // -1 == cold run (no shared-warmup eligibility).
  std::vector<std::ptrdiff_t> group_index(configs.size(), -1);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SimConfig& cfg = configs[i];
    if (!eligible(cfg)) continue;
    auto key = warmup_signature(cfg);
    if (cfg.warmup_load < 0.0 && key_count[key] < 2) continue;
    const auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().key = std::move(key);
    }
    groups[it->second].members.push_back(i);
    group_index[i] = static_cast<std::ptrdiff_t>(it->second);
  }

  // Phase 1: one warmup per group — served from the session cache when
  // possible, executed and published into it otherwise.
  parallel_for(
      groups.size(),
      [&](std::size_t g) {
        Group& grp = groups[g];
        if (cache != nullptr) {
          if (auto hit = cache->find(grp.key)) {
            grp.warm_state = std::move(hit);
            grp.from_cache = true;
            return;
          }
        }
        const SimConfig& cfg = configs[grp.members.front()];
        Network net(cfg);
        const auto workload = make_workload(cfg, net.mesh());
        net.set_workload(workload.get());
        advance_open_loop(net, cfg.warmup_cycles);
        SnapshotWriter w;
        net.save(w);
        w.begin_section(kSecWorkload);
        workload->save_state(w);
        w.end_section();
        if (cache != nullptr) {
          grp.warm_state = cache->insert(grp.key, w.take());
        } else {
          grp.warm_state =
              std::make_shared<const std::vector<std::uint8_t>>(w.take());
        }
      },
      threads);

  // Phase 2: work items — lockstep chunks of each group's members plus
  // the cold configs.  Chunk width adapts to the worker count so a wide
  // sweep still fans out across threads: every lane in a chunk runs on
  // one thread, so oversized chunks would serialize what the thread
  // pool could parallelize.
  unsigned workers =
      threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 4;
  std::size_t warm_lanes = 0;
  for (const Group& g : groups) warm_lanes += g.members.size();
  const std::size_t chunk = std::max<std::size_t>(
      1, std::min<std::size_t>(8, (warm_lanes + workers - 1) / workers));

  struct Item {
    std::ptrdiff_t group = -1;               ///< -1 == cold single config
    std::vector<std::size_t> members;        ///< indices into configs
  };
  std::vector<Item> items;
  std::size_t max_lanes = 0;
  std::size_t batches = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& members = groups[g].members;
    for (std::size_t b = 0; b < members.size(); b += chunk) {
      Item item;
      item.group = static_cast<std::ptrdiff_t>(g);
      const std::size_t e = std::min(b + chunk, members.size());
      item.members.assign(members.begin() + static_cast<std::ptrdiff_t>(b),
                          members.begin() + static_cast<std::ptrdiff_t>(e));
      max_lanes = std::max(max_lanes, item.members.size());
      ++batches;
      items.push_back(std::move(item));
    }
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (group_index[i] < 0) items.push_back({-1, {i}});
  }

  std::vector<RunStats> results(configs.size());
  parallel_for(
      items.size(),
      [&](std::size_t n) {
        const Item& item = items[n];
        if (item.group < 0) {
          results[item.members.front()] =
              run_open_loop(configs[item.members.front()]);
          return;
        }
        std::vector<SimConfig> lane_cfgs;
        lane_cfgs.reserve(item.members.size());
        for (std::size_t m : item.members) lane_cfgs.push_back(configs[m]);
        ReplicaBatch batch(std::move(lane_cfgs));
        batch.warm_start(
            *groups[static_cast<std::size_t>(item.group)].warm_state);
        batch.run();
        for (std::size_t j = 0; j < item.members.size(); ++j) {
          results[item.members[j]] = batch.stats(j);
        }
      },
      threads);

  if (report != nullptr) {
    report->warm.groups.clear();
    for (const Group& g : groups) report->warm.groups.push_back(g.members);
    report->warm.cold_points = configs.size() - report->warm.warm_points();
    report->cache_hits = 0;
    report->cache_misses = 0;
    if (cache != nullptr) {
      for (const Group& g : groups) {
        if (g.from_cache) {
          ++report->cache_hits;
        } else {
          ++report->cache_misses;
        }
      }
    }
    report->batches = batches;
    report->max_lanes = max_lanes;
  }
  return results;
}

}  // namespace dxbar
