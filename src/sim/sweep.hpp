// Parallel parameter sweeps.
//
// Simulation points are independent, deterministic, and CPU-bound, so
// benches fan them out over a small thread pool.  Results come back in
// input order regardless of completion order.
#pragma once

#include <functional>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar {

/// Runs run_open_loop for every config, using up to `threads` worker
/// threads (0 == hardware concurrency).  Results align with `configs`.
std::vector<RunStats> run_sweep(const std::vector<SimConfig>& configs,
                                unsigned threads = 0);

/// Like run_sweep, but configs that differ only in workload-level fields
/// (offered_load, drain cap) and carry an explicit warmup_load share ONE
/// warmup execution: the group's network is advanced to the warmup
/// boundary once, snapshotted, and every member's measurement phase is
/// forked from the snapshot bytes.  Because SyntheticWorkload injects at
/// warmup_load until the warmup boundary and consumes exactly one RNG
/// draw per node per cycle regardless of the rate, the fork is
/// bit-identical to the cold run of each member — run_warm_sweep and
/// run_sweep return byte-for-byte equal RunStats.
///
/// Configs with warmup_load unset (< 0) or warmup_cycles == 0 fall back
/// to cold runs inside the same call — except that warmup_load-unset
/// configs identical up to measure_seed / drain cap still share their
/// warmup (seed replication; see sim/replica_batch.hpp, which houses
/// the engine behind this entry point).  Sharded configs (shards > 1)
/// always run cold; sharding parallelizes inside one simulation and
/// does not compose with replica batching.
std::vector<RunStats> run_warm_sweep(const std::vector<SimConfig>& configs,
                                     unsigned threads = 0);

/// How a run_warm_sweep call partitioned its configs: one entry per
/// shared-warmup group (member indices into the config vector), plus the
/// count of configs that ran cold.  Lets callers log which groups were
/// formed (the experiment harness prints this per grid).
struct WarmSweepReport {
  std::vector<std::vector<std::size_t>> groups;
  std::size_t cold_points = 0;

  [[nodiscard]] std::size_t warm_points() const noexcept {
    std::size_t n = 0;
    for (const auto& g : groups) n += g.size();
    return n;
  }
};

/// run_warm_sweep that also reports the grouping it performed.
std::vector<RunStats> run_warm_sweep(const std::vector<SimConfig>& configs,
                                     WarmSweepReport& report,
                                     unsigned threads = 0);

/// Generic parallel map over an index range [0, n): `fn(i)` must be
/// thread-safe and is invoked exactly once per index.  Work is claimed
/// in small chunks off a shared atomic counter (work stealing), so
/// imbalanced ranges keep every worker busy; the result is independent
/// of the thread count.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace dxbar
