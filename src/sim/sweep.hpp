// Parallel parameter sweeps.
//
// Simulation points are independent, deterministic, and CPU-bound, so
// benches fan them out over a small thread pool.  Results come back in
// input order regardless of completion order.
#pragma once

#include <functional>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar {

/// Runs run_open_loop for every config, using up to `threads` worker
/// threads (0 == hardware concurrency).  Results align with `configs`.
std::vector<RunStats> run_sweep(const std::vector<SimConfig>& configs,
                                unsigned threads = 0);

/// Generic parallel map over an index range [0, n): `fn(i)` must be
/// thread-safe and is invoked exactly once per index.  Work is claimed
/// in small chunks off a shared atomic counter (work stealing), so
/// imbalanced ranges keep every worker busy; the result is independent
/// of the thread count.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace dxbar
