#include "sim/sweep.hpp"

#include <atomic>
#include <thread>

#include "sim/sim_runner.hpp"

namespace dxbar {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 4;
  if (workers > n) workers = static_cast<unsigned>(n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

std::vector<RunStats> run_sweep(const std::vector<SimConfig>& configs,
                                unsigned threads) {
  std::vector<RunStats> results(configs.size());
  parallel_for(
      configs.size(),
      [&](std::size_t i) { results[i] = run_open_loop(configs[i]); }, threads);
  return results;
}

}  // namespace dxbar
