#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/replica_batch.hpp"
#include "sim/sim_runner.hpp"

namespace dxbar {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 4;
  if (workers > n) workers = static_cast<unsigned>(n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked atomic-counter work stealing: every worker claims a small
  // contiguous run of indices per fetch_add.  Chunks amortize counter
  // contention while staying small enough that imbalanced sweeps (the
  // saturated high-load points run much longer than low-load ones)
  // keep all workers busy until the range is exhausted.
  std::atomic<std::size_t> next{0};
  const std::size_t chunk = std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(workers) * 8));
  const auto work = [&] {
    for (;;) {
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the calling thread participates instead of blocking
  for (auto& t : pool) t.join();
}

std::vector<RunStats> run_sweep(const std::vector<SimConfig>& configs,
                                unsigned threads) {
  std::vector<RunStats> results(configs.size());
  parallel_for(
      configs.size(),
      [&](std::size_t i) { results[i] = run_open_loop(configs[i]); }, threads);
  return results;
}

std::vector<RunStats> run_warm_sweep(const std::vector<SimConfig>& configs,
                                     unsigned threads) {
  WarmSweepReport report;
  return run_warm_sweep(configs, report, threads);
}

std::vector<RunStats> run_warm_sweep(const std::vector<SimConfig>& configs,
                                     WarmSweepReport& report,
                                     unsigned threads) {
  // The warm sweep is now a view of the replica engine: the grouping
  // rule, the shared-warmup phase, and the forked measurement phases
  // all live in run_replica_sweep (sim/replica_batch.hpp), which also
  // steps each group's members in lockstep batches.
  ReplicaSweepReport rep;
  auto results = run_replica_sweep(configs, threads, nullptr, &rep);
  report = std::move(rep.warm);
  return results;
}

}  // namespace dxbar
