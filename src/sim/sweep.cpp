#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "sim/network.hpp"
#include "sim/sim_runner.hpp"
#include "snapshot/serialize.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 4;
  if (workers > n) workers = static_cast<unsigned>(n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked atomic-counter work stealing: every worker claims a small
  // contiguous run of indices per fetch_add.  Chunks amortize counter
  // contention while staying small enough that imbalanced sweeps (the
  // saturated high-load points run much longer than low-load ones)
  // keep all workers busy until the range is exhausted.
  std::atomic<std::size_t> next{0};
  const std::size_t chunk = std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(workers) * 8));
  const auto work = [&] {
    for (;;) {
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the calling thread participates instead of blocking
  for (auto& t : pool) t.join();
}

std::vector<RunStats> run_sweep(const std::vector<SimConfig>& configs,
                                unsigned threads) {
  std::vector<RunStats> results(configs.size());
  parallel_for(
      configs.size(),
      [&](std::size_t i) { results[i] = run_open_loop(configs[i]); }, threads);
  return results;
}

namespace {

constexpr std::uint32_t kSecWorkload = section_tag("WKLD");

/// Group key: the full config with the fields that do not influence the
/// warmup phase (measurement-rate and drain cap) neutralized.  Members
/// of one group replay an identical warmup.
std::vector<std::uint8_t> warmup_group_key(const SimConfig& cfg) {
  SimConfig key = cfg;
  key.offered_load = 0.0;
  key.drain_cycles = 0;
  SnapshotWriter w;
  save_config(w, key);
  return w.take();
}

}  // namespace

std::vector<RunStats> run_warm_sweep(const std::vector<SimConfig>& configs,
                                     unsigned threads) {
  WarmSweepReport report;
  return run_warm_sweep(configs, report, threads);
}

std::vector<RunStats> run_warm_sweep(const std::vector<SimConfig>& configs,
                                     WarmSweepReport& report,
                                     unsigned threads) {
  struct Group {
    std::vector<std::size_t> members;
    std::vector<std::uint8_t> warm_state;  ///< network + workload at warmup
  };
  std::vector<Group> groups;
  std::map<std::vector<std::uint8_t>, std::size_t> group_of;
  // -1 == cold run (no shared-warmup eligibility).
  std::vector<std::ptrdiff_t> group_index(configs.size(), -1);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SimConfig& cfg = configs[i];
    if (cfg.warmup_load < 0.0 || cfg.warmup_cycles == 0) continue;
    const auto key = warmup_group_key(cfg);
    const auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].members.push_back(i);
    group_index[i] = static_cast<std::ptrdiff_t>(it->second);
  }

  report.groups.clear();
  for (const Group& g : groups) report.groups.push_back(g.members);
  report.cold_points = configs.size() - report.warm_points();

  // Phase 1: one warmup per group, snapshotted at the warmup boundary.
  parallel_for(
      groups.size(),
      [&](std::size_t g) {
        const SimConfig& cfg = configs[groups[g].members.front()];
        Network net(cfg);
        SyntheticWorkload workload(cfg, net.mesh());
        net.set_workload(&workload);
        advance_open_loop(net, cfg.warmup_cycles);
        SnapshotWriter w;
        net.save(w);
        w.begin_section(kSecWorkload);
        workload.save_state(w);
        w.end_section();
        groups[g].warm_state = w.take();
      },
      threads);

  // Phase 2: fork every member's measurement phase from its group's
  // snapshot (cold members just run straight through).
  std::vector<RunStats> results(configs.size());
  parallel_for(
      configs.size(),
      [&](std::size_t i) {
        if (group_index[i] < 0) {
          results[i] = run_open_loop(configs[i]);
          return;
        }
        const SimConfig& cfg = configs[i];
        Network net(cfg);
        SyntheticWorkload workload(cfg, net.mesh());
        net.set_workload(&workload);
        SnapshotReader r(
            groups[static_cast<std::size_t>(group_index[i])].warm_state);
        net.load(r);
        (void)r.expect_section(kSecWorkload);
        workload.load_state(r);
        results[i] = finish_open_loop(net, workload);
      },
      threads);
  return results;
}

}  // namespace dxbar
