// Experiment drivers: open-loop (warmup / measure / drain) runs for the
// synthetic-traffic figures and closed-loop runs for the SPLASH-2
// substitute.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/network.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace_io.hpp"

namespace dxbar {

/// One open-loop simulation: Bernoulli injection of cfg.pattern at
/// cfg.offered_load, measured over cfg.measure_cycles after
/// cfg.warmup_cycles, then drained (injection off) for up to
/// cfg.drain_cycles.  Energy accumulates only during the measurement
/// window.  Fully deterministic for a given cfg.
RunStats run_open_loop(const SimConfig& cfg);

/// Like run_open_loop but against a caller-provided workload (e.g. a
/// trace replay).  The workload must honour set_injection_enabled.
RunStats run_open_loop(const SimConfig& cfg, WorkloadModel& workload);

/// Steps `net` forward to cycle `until` (capped at the end of the
/// measurement window), flipping the energy meter on at the warmup
/// boundary.  The energy gate is re-derived from the clock on entry, so
/// calling this on a network restored from a snapshot reproduces the
/// straight-through run exactly.  The building block behind warm-start
/// sweeps and resumable campaigns.
void advance_open_loop(Network& net, Cycle until);

/// Completes an open-loop run from the network's current cycle:
/// advances to the end of the measurement window, disables energy and
/// injection, drains (up to cfg.drain_cycles), and summarizes.
/// `workload` must be the workload attached to `net`.  Equivalent to
/// the tail of run_open_loop, so a warmup snapshot + finish_open_loop
/// is bit-identical to a cold run.
RunStats finish_open_loop(Network& net, WorkloadModel& workload,
                          std::vector<PacketRecord>* packets_out = nullptr);

/// Open-loop run that also returns the per-packet records of the
/// measurement window (for per-node fairness analysis, latency
/// distributions, custom post-processing).
struct DetailedRun {
  RunStats stats;
  std::vector<PacketRecord> packets;  ///< window packets, completion order
};
DetailedRun run_open_loop_detailed(const SimConfig& cfg);

/// Result of a closed-loop (fixed-work) run.
struct ClosedLoopResult {
  Cycle completion_cycles = 0;  ///< "execution time" of the workload
  bool finished = false;        ///< false when the cycle cap was hit
  std::uint64_t packets = 0;
  double energy_nj = 0.0;       ///< whole-run network energy
  double energy_per_packet_nj = 0.0;
  double avg_packet_latency = 0.0;
};

/// Runs a SPLASH-2 substitute application to completion (or `max_cycles`)
/// in closed-loop mode (the network's latency feeds back into issue).
ClosedLoopResult run_splash(const SimConfig& cfg, const SplashProfile& app,
                            Cycle max_cycles = 2'000'000);

/// Replays a packet trace open-loop (the paper's trace methodology);
/// completion_cycles is the makespan until the last packet drains.
ClosedLoopResult run_trace_replay(const SimConfig& cfg,
                                  std::vector<TraceEntry> entries,
                                  Cycle max_cycles = 2'000'000);

/// Runs an arbitrary closed-loop workload to completion + drain.
ClosedLoopResult run_closed_loop(const SimConfig& cfg,
                                 WorkloadModel& workload, Cycle max_cycles);

}  // namespace dxbar
