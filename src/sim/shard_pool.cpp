#include "sim/shard_pool.hpp"

namespace dxbar {

ShardPool::ShardPool(int shards) : shards_(shards < 1 ? 1 : shards) {
  workers_.reserve(static_cast<std::size_t>(shards_ - 1));
  for (int s = 1; s < shards_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardPool::run(const std::function<void(int)>& fn) {
  if (shards_ == 1) {  // no workers; nothing to publish
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = shards_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();

  fn(0);  // caller is shard 0

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ShardPool::worker_loop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(shard);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace dxbar
