// Network snapshot/restore: serializes the mutable simulation state as
// tagged sections (see snapshot/snapshot.hpp for the wire format).
//
// Section order is part of the format:
//   NETW  fingerprint + clock + global flit/packet counters
//   ENRG  energy accumulators
//   FLTP  crossbar fault plan (custom plans travel with the snapshot)
//   CHAN  per-channel pipeline registers, credits, stop state
//   RTRS  per-router design state (buffers, arbiters, counters)
//   SRCQ  per-node source queues
//   ASMB  packet-reassembly MSHRs
//   SCRB  SCARAB staging/outstanding/NACK network (empty otherwise)
//   STAT  statistics collector (window + per-packet records)
//
// Structural state (mesh wiring, route tables/caches, credit sizing) is
// never serialized: load() targets a freshly constructed — or previously
// stepped — network built from a structurally identical SimConfig, and
// the NETW fingerprint check enforces that before anything is mutated.
#include <cassert>

#include "sim/network.hpp"
#include "snapshot/serialize.hpp"

namespace dxbar {

namespace {

constexpr std::uint32_t kSecNetwork = section_tag("NETW");
constexpr std::uint32_t kSecEnergy = section_tag("ENRG");
constexpr std::uint32_t kSecFaults = section_tag("FLTP");
constexpr std::uint32_t kSecChannels = section_tag("CHAN");
constexpr std::uint32_t kSecRouters = section_tag("RTRS");
constexpr std::uint32_t kSecSources = section_tag("SRCQ");
constexpr std::uint32_t kSecAssembly = section_tag("ASMB");
constexpr std::uint32_t kSecScarab = section_tag("SCRB");
constexpr std::uint32_t kSecStats = section_tag("STAT");

}  // namespace

void Network::save(SnapshotWriter& w) const {
  w.begin_section(kSecNetwork);
  w.u64(structural_fingerprint(cfg_));
  w.u64(now_);
  w.u64(next_packet_);
  w.u64(flits_created_);
  w.u64(flits_delivered_);
  w.u64(packets_created_);
  w.u64(packets_delivered_);
  w.u64(flits_dropped_);
  w.end_section();

  w.begin_section(kSecEnergy);
  energy_.save(w);
  w.end_section();

  w.begin_section(kSecFaults);
  faults_.save(w);
  w.end_section();

  w.begin_section(kSecChannels);
  w.u64(channels_.size());
  for (const Channel& ch : channels_) ch.save(w);
  w.end_section();

  w.begin_section(kSecRouters);
  w.u64(routers_.size());
  for (const auto& r : routers_) {
#ifndef NDEBUG
    for (const auto& slot : r->in) {
      assert(!slot.has_value() && "snapshot mid-cycle: input register full");
    }
    assert(r->ejected.empty() && "snapshot mid-cycle: ejections pending");
#endif
    r->save_state(w);
  }
  w.end_section();

  w.begin_section(kSecSources);
  w.u64(sources_.size());
  for (const auto& s : sources_) s.save(w);
  w.end_section();

  w.begin_section(kSecAssembly);
  w.u64(assembly_.size());
  assembly_.for_each([&w](PacketId key, const Assembly& a) {
    w.u64(key);
    w.i32(a.received);
    save_packet_record(w, a.rec);
  });
  w.end_section();

  w.begin_section(kSecScarab);
  w.u64(scarab_staging_.size());
  for (const auto& st : scarab_staging_) st.save(w);
  for (int o : scarab_outstanding_) w.i32(o);
  nacks_.save(w);
  w.end_section();

  w.begin_section(kSecStats);
  stats_.save(w);
  w.end_section();
}

void Network::load(SnapshotReader& r) {
  (void)r.expect_section(kSecNetwork);
  if (r.u64() != structural_fingerprint(cfg_)) {
    throw SnapshotError(
        "structural fingerprint mismatch: the snapshot was taken on a "
        "network with a different structure (mesh, design, buffers, "
        "faults, seed, or stats window)");
  }
  now_ = r.u64();
  next_packet_ = r.u64();
  flits_created_ = r.u64();
  flits_delivered_ = r.u64();
  packets_created_ = r.u64();
  packets_delivered_ = r.u64();
  flits_dropped_ = r.u64();

  (void)r.expect_section(kSecEnergy);
  energy_.load(r);

  (void)r.expect_section(kSecFaults);
  faults_.load(r);

  (void)r.expect_section(kSecChannels);
  if (r.count() != channels_.size()) {
    throw SnapshotError("channel count mismatch");
  }
  // Channel::load re-registers each non-quiescent (or pinned) channel
  // on its owning shard's active list; drop the current lists first so
  // stale slots never linger.  Shard layout is structural, not part of
  // the stream — a snapshot taken at any shard count restores here.
  for (auto& s : shards_) s->active_channels.clear();
  for (Channel& ch : channels_) ch.load(r);

  (void)r.expect_section(kSecRouters);
  if (r.count() != routers_.size()) {
    throw SnapshotError("router count mismatch");
  }
  for (auto& rt : routers_) {
    for (auto& slot : rt->in) slot.reset();
    rt->ejected.clear();
    rt->load_state(r);
  }

  (void)r.expect_section(kSecSources);
  if (r.count() != sources_.size()) {
    throw SnapshotError("source queue count mismatch");
  }
  for (auto& s : sources_) s.load(r);

  (void)r.expect_section(kSecAssembly);
  assembly_.clear();
  const std::uint64_t mshrs = r.count(8 + 4);
  for (std::uint64_t i = 0; i < mshrs; ++i) {
    const PacketId key = r.u64();
    Assembly& a = assembly_[key];
    a.received = r.i32();
    a.rec = load_packet_record(r);
  }

  (void)r.expect_section(kSecScarab);
  if (r.count() != scarab_staging_.size()) {
    throw SnapshotError("SCARAB staging count mismatch");
  }
  for (auto& st : scarab_staging_) st.load(r);
  for (int& o : scarab_outstanding_) o = r.i32();
  nacks_.load(r);

  (void)r.expect_section(kSecStats);
  stats_.load(r);
}

std::vector<std::uint8_t> Network::snapshot() const {
  SnapshotWriter w;
  save(w);
  return w.take();
}

void Network::restore(const std::vector<std::uint8_t>& bytes) {
  SnapshotReader r(bytes);
  load(r);
}

}  // namespace dxbar
