// Crash-resumable simulation campaigns.
//
// A campaign is an ordered list of open-loop simulation points run to
// completion with all progress persisted under one directory:
//
//   results.bin     append-only, one framed record per completed point
//                   (tag + length + payload + FNV-1a of the payload, so
//                   a torn tail after a crash is detected and dropped)
//   checkpoint.bin  periodic snapshot of the in-flight point (network +
//                   workload + campaign cursor), replaced atomically via
//                   write-to-temp + rename
//
// Killing the process at ANY instant (SIGKILL included) loses at most
// one checkpoint interval of simulated work: a fresh Campaign on the
// same directory skips completed points, restores the in-flight point
// from the last checkpoint, and produces bit-identical results to an
// uninterrupted run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace dxbar {

struct CampaignStatus {
  std::size_t completed = 0;  ///< points with persisted results
  std::size_t total = 0;
  bool finished = false;  ///< every point completed
};

class Campaign {
 public:
  /// `points` defines the campaign (order matters: it is the execution
  /// and resume order).  `dir` must exist; pass the same points to
  /// resume — the persisted state carries a fingerprint of the point
  /// list and a checkpoint for a different campaign is rejected.
  /// `checkpoint_interval` is in simulated cycles.
  Campaign(std::vector<SimConfig> points, std::string dir,
           Cycle checkpoint_interval = 50'000);

  /// Runs points in order until all complete or `cycle_budget` simulated
  /// cycles have been stepped by this call (0 = unlimited).  A budget
  /// pause returns WITHOUT writing an extra checkpoint — exactly the
  /// guarantee a kill gets — so tests exercising budget pauses measure
  /// the real crash-recovery path.
  CampaignStatus run(std::uint64_t cycle_budget = 0);

  [[nodiscard]] CampaignStatus status() const;

  /// Per-point results; nullopt while a point is still pending.
  [[nodiscard]] const std::vector<std::optional<RunStats>>& results() const {
    return results_;
  }

  [[nodiscard]] const std::string& directory() const { return dir_; }

 private:
  [[nodiscard]] std::string results_path() const;
  [[nodiscard]] std::string checkpoint_path() const;

  void load_results();
  void append_result(std::size_t point, const RunStats& stats);
  void write_checkpoint(std::size_t point, std::uint8_t stage, Cycle drain_t,
                        const class Network& net,
                        const class WorkloadModel& workload) const;

  std::vector<SimConfig> points_;
  std::string dir_;
  Cycle checkpoint_interval_;
  std::uint64_t fingerprint_;  ///< over the full point list
  std::vector<std::optional<RunStats>> results_;
};

}  // namespace dxbar
