// Batched multi-replica execution of open-loop simulations.
//
// A ReplicaBatch holds K complete simulations ("lanes") of one router
// design and mesh shape — typically replicas of one experiment point
// that differ only in measure_seed and/or offered load — and steps them
// in lockstep through Network::step_lanes: every per-cycle phase runs
// for all lanes before the next phase, and the router phase runs
// node-major across lanes through the per-design batched entry points.
// Each lane's RunStats and packet records are bit-exactly what a solo
// run_open_loop of that lane's config would have produced; the batch
// changes execution order and memory locality, never results.
//
// Lanes diverge naturally: a lane whose measurement window ends (or
// whose drain finishes early) drops out of the lockstep set, and the
// remaining lanes keep stepping together.  Combined with a shared warm
// snapshot (warm_start), a batch of K measure_seed replicas costs one
// warmup plus K measurement phases instead of K full runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/network.hpp"
#include "sim/sweep.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {

class ReplicaBatch {
 public:
  /// Builds one lane per config.  All configs must validate, be
  /// single-sharded (shards == 1 — sharded execution and replica
  /// batching do not compose; throws std::invalid_argument with the
  /// serialize-instead hint), share one design and mesh shape, and
  /// number at most Network::kMaxStepLanes.
  explicit ReplicaBatch(std::vector<SimConfig> configs);
  ~ReplicaBatch();

  ReplicaBatch(const ReplicaBatch&) = delete;
  ReplicaBatch& operator=(const ReplicaBatch&) = delete;

  /// Restores every lane from one warm snapshot (network sections plus
  /// the WKLD workload section, as produced by the warm-sweep phase 1).
  /// The snapshot's structural fingerprint must match every lane —
  /// which is exactly the statement that the lanes share the snapshot's
  /// warmup.  Must be called before run(), at most once.
  void warm_start(const std::vector<std::uint8_t>& warm_state);

  /// Steps all lanes in lockstep to completion (measure + drain).
  void run();

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

  /// Per-lane results, valid after run().
  [[nodiscard]] const RunStats& stats(std::size_t lane) const;
  [[nodiscard]] const std::vector<PacketRecord>& packets(
      std::size_t lane) const;

 private:
  struct Lane;
  std::vector<std::unique_ptr<Lane>> lanes_;
  bool ran_ = false;
};

/// Session-wide cache of warm snapshots, keyed by the warmup signature
/// (the serialized config with measurement-only fields neutralized —
/// structural identity plus warmup phase identity).  Threads share it
/// across experiments so `--all` warms each (design, warmup) pair once.
class WarmupCache {
 public:
  /// Returns the cached snapshot for `key` (counts a hit), or nullptr
  /// (counts a miss).
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> find(
      const std::vector<std::uint8_t>& key);
  /// Stores `state` under `key` and returns the stored snapshot.  When
  /// a concurrent thread raced the same warmup in first, its (identical
  /// — warmups are deterministic) bytes win and are returned instead.
  std::shared_ptr<const std::vector<std::uint8_t>> insert(
      const std::vector<std::uint8_t>& key, std::vector<std::uint8_t> state);

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t entries() const;

 private:
  mutable std::mutex mu_;
  std::map<std::vector<std::uint8_t>,
           std::shared_ptr<const std::vector<std::uint8_t>>>
      map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// How a run_replica_sweep call executed its configs.
struct ReplicaSweepReport {
  /// Shared-warmup grouping (same shape run_warm_sweep reported).
  WarmSweepReport warm;
  /// Warmups served from / inserted into the session cache (both zero
  /// when no cache was supplied).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Lockstep batches executed and the widest lane count among them.
  std::size_t batches = 0;
  std::size_t max_lanes = 0;
};

/// The sweep engine behind run_warm_sweep and `--seeds N`: groups
/// configs that share a warmup (explicit warmup_load, or identical
/// configs differing only in measure_seed / drain cap), warms each
/// group once (consulting `cache` when non-null), then runs each
/// group's members as lockstep replica batches.  Configs that cannot
/// share a warmup run cold; sharded configs (shards > 1) are serialized
/// through run_open_loop, never batched.  Results are bit-exact against
/// run_sweep for every config.
std::vector<RunStats> run_replica_sweep(const std::vector<SimConfig>& configs,
                                        unsigned threads = 0,
                                        WarmupCache* cache = nullptr,
                                        ReplicaSweepReport* report = nullptr);

/// The warmup-signature cache key for `cfg` (exposed for tests).
std::vector<std::uint8_t> warmup_signature(const SimConfig& cfg);

}  // namespace dxbar
