// The network: routers, channels, injection queues, packet reassembly,
// SCARAB retransmission control and the per-cycle simulation loop.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/flit_pool.hpp"
#include "common/packet_map.hpp"
#include "common/stats.hpp"
#include "fault/fault_model.hpp"
#include "fault/link_faults.hpp"
#include "routing/route_cache.hpp"
#include "routing/route_table.hpp"
#include "power/energy_model.hpp"
#include "router/factory.hpp"
#include "sim/nack_network.hpp"
#include "topology/mesh.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {

/// Optional observer of network events, for debugging and journey
/// visualisation (`examples/packet_journey`).  All callbacks fire inside
/// Network::step; keep them cheap.
class EventTracer {
 public:
  virtual ~EventTracer() = default;
  virtual void on_packet_created(PacketId id, NodeId src, NodeId dst,
                                 int length, Cycle now) {
    (void)id; (void)src; (void)dst; (void)length; (void)now;
  }
  /// A flit arrived at a router's input register.
  virtual void on_flit_hop(const Flit& f, NodeId at, Cycle now) {
    (void)f; (void)at; (void)now;
  }
  virtual void on_flit_ejected(const Flit& f, Cycle now) {
    (void)f; (void)now;
  }
  /// SCARAB only: the flit was dropped and will be NACKed.
  virtual void on_flit_dropped(const Flit& f, NodeId at, Cycle now) {
    (void)f; (void)at; (void)now;
  }
  virtual void on_packet_completed(const PacketRecord& rec, Cycle now) {
    (void)rec; (void)now;
  }
};

class Network final : public Injector, public NackSink {
 public:
  /// Builds the mesh of routers for `cfg`; the fault plan defaults to
  /// the one derived from cfg.fault_fraction / cfg.seed.
  explicit Network(const SimConfig& cfg);
  Network(const SimConfig& cfg, FaultPlan plan);
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The workload drives injection; must outlive the network's use.
  void set_workload(WorkloadModel* w) { workload_ = w; }

  /// Optional event observer (may be null to detach).
  void set_tracer(EventTracer* t) { tracer_ = t; }

  /// Advance one cycle: channel movement, arrivals, injection, router
  /// switching, ejection/reassembly, NACK deliveries.
  void step();

  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// No flit anywhere in the system (queues, routers, links, NACKs).
  /// O(1): every created flit is delivered exactly once, so the
  /// created/delivered counters balance exactly when nothing is in
  /// flight (drops re-enter the source queue without re-counting).
  [[nodiscard]] bool idle() const;

  // --- Injector -------------------------------------------------------
  PacketId inject_packet(NodeId src, NodeId dst, int length,
                         Cycle now) override;

  // --- NackSink (SCARAB) ----------------------------------------------
  void on_drop(const Flit& flit, NodeId at, Cycle now) override;

  // --- component access -------------------------------------------------
  [[nodiscard]] const Mesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] StatsCollector& stats() noexcept { return stats_; }
  [[nodiscard]] EnergyMeter& energy() noexcept { return energy_; }
  [[nodiscard]] Router& router(NodeId n) { return *routers_[n]; }
  [[nodiscard]] const FaultPlan& faults() const noexcept { return faults_; }
  [[nodiscard]] const LinkFaultPlan& link_faults() const noexcept {
    return link_faults_;
  }
  /// The arena backing source queues and SCARAB staging; a drained
  /// network must report flit_pool().live() == 0.
  [[nodiscard]] const FlitPool& flit_pool() const noexcept {
    return flit_pool_;
  }
  /// Which routing acceleration structure this network built (mutually
  /// exclusive; both false on small meshes with no link faults).
  [[nodiscard]] bool using_route_cache() const noexcept {
    return route_cache_ != nullptr;
  }
  [[nodiscard]] bool using_route_table() const noexcept {
    return route_table_ != nullptr;
  }

  // --- snapshot/restore -------------------------------------------------
  /// Serializes all mutable simulation state as snapshot sections.  Must
  /// be called at a step boundary (between step() calls), where the
  /// per-cycle transients — router input registers, ejection lists,
  /// channel arrival registers — are empty by the cycle protocol.
  /// The workload is NOT included (it is external; see
  /// WorkloadModel::save_state).
  void save(SnapshotWriter& w) const;

  /// Restores state saved by save() into this network.  The target must
  /// have been constructed from a structurally identical configuration
  /// (same mesh, design, buffer sizing, fault plans, seed, stats
  /// windows); only workload-level fields (offered_load, warmup_load,
  /// pattern, drain cap) may differ.  Throws SnapshotError on
  /// fingerprint mismatch or a corrupt stream.
  void load(SnapshotReader& r);

  /// Convenience wrappers: a complete standalone snapshot byte stream.
  [[nodiscard]] std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

  // --- global accounting (whole run, not just the window) ---------------
  [[nodiscard]] std::uint64_t flits_created() const noexcept {
    return flits_created_;
  }
  [[nodiscard]] std::uint64_t flits_delivered() const noexcept {
    return flits_delivered_;
  }
  [[nodiscard]] std::uint64_t packets_created() const noexcept {
    return packets_created_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return packets_delivered_;
  }
  [[nodiscard]] std::uint64_t flits_dropped() const noexcept {
    return flits_dropped_;
  }

  /// Per-link flit counts since construction (utilization analysis).
  struct LinkUsage {
    LinkId link;
    std::uint64_t flits = 0;
  };
  [[nodiscard]] std::vector<LinkUsage> link_usage() const;

 private:
  /// Delivery endpoint of channels_[i]: which router input register the
  /// arrival lands in.  Kept in a parallel array so the per-cycle
  /// channel sweep walks two dense arrays and nothing else.
  struct ChannelMeta {
    NodeId dst_node = kInvalidNode;
    int dst_port = 0;
  };

  [[nodiscard]] int link_index(NodeId node, int dir) const noexcept {
    return static_cast<int>(node) * kNumLinkDirs + dir;
  }

  /// Channel for the directed link (node, dir), or nullptr when the
  /// link does not exist (mesh edge / dead link).
  [[nodiscard]] Channel* channel_at(NodeId node, int dir) noexcept {
    const std::int32_t slot =
        link_slot_[static_cast<std::size_t>(link_index(node, dir))];
    return slot < 0 ? nullptr : &channels_[static_cast<std::size_t>(slot)];
  }

  void build();
  void step_routers();
  void handle_ejections();
  void scarab_release_staging();
  void scarab_deliver_nacks();
  /// Slow structural scan backing the idle() counter identity in debug
  /// builds.
  [[nodiscard]] bool idle_by_scan() const;

  SimConfig cfg_;
  Mesh mesh_;
  EnergyMeter energy_;
  FaultPlan faults_;
  LinkFaultPlan link_faults_;
  std::unique_ptr<RouteTable> route_table_;  ///< set iff link faults exist
  std::unique_ptr<RouteCache> route_cache_;  ///< set iff topology healthy
  StatsCollector stats_;
  WorkloadModel* workload_ = nullptr;
  EventTracer* tracer_ = nullptr;

  /// All existing channels, contiguous in (node, dir) order; the
  /// per-cycle sweep is one pass over this array.
  std::vector<Channel> channels_;
  std::vector<ChannelMeta> channel_meta_;  ///< parallel to channels_
  /// Slots of channels with in-flight flits / pending credits / stop
  /// flips; the only channels step() must advance.  Capacity is reserved
  /// to channels_.size() up front and each channel registers at most
  /// once, so steady-state maintenance never allocates.
  std::vector<std::uint32_t> active_channels_;
  /// link_index(node, dir) -> slot in channels_, or -1 when absent.
  std::vector<std::int32_t> link_slot_;

  std::vector<std::unique_ptr<Router>> routers_;
  FlitPool flit_pool_;
  std::vector<InjectionQueue> sources_;

  /// Packet reassembly at the destination MSHRs.
  struct Assembly {
    int received = 0;
    PacketRecord rec;
  };
  PacketMap<Assembly> assembly_;

  // SCARAB retransmission control: freshly created flits wait in staging
  // until the source's retransmit buffer has room.
  std::vector<PooledFlitDeque> scarab_staging_;
  std::vector<int> scarab_outstanding_;
  int scarab_capacity_flits_ = 0;
  NackNetwork nacks_;

  Cycle now_ = 0;
  PacketId next_packet_ = 1;
  std::uint64_t flits_created_ = 0;
  std::uint64_t flits_delivered_ = 0;
  std::uint64_t packets_created_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t flits_dropped_ = 0;
};

}  // namespace dxbar
