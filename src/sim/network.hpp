// The network: routers, channels, injection queues, packet reassembly,
// SCARAB retransmission control and the per-cycle simulation loop.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/flit_pool.hpp"
#include "common/packet_map.hpp"
#include "common/stats.hpp"
#include "fault/fault_model.hpp"
#include "fault/link_faults.hpp"
#include "routing/route_cache.hpp"
#include "routing/route_table.hpp"
#include "power/energy_model.hpp"
#include "router/factory.hpp"
#include "sim/nack_network.hpp"
#include "sim/shard_pool.hpp"
#include "topology/mesh.hpp"
#include "topology/partition.hpp"
#include "traffic/traffic_gen.hpp"

namespace dxbar {

/// Optional observer of network events, for debugging and journey
/// visualisation (`examples/packet_journey`).  All callbacks fire inside
/// Network::step; keep them cheap.
class EventTracer {
 public:
  virtual ~EventTracer() = default;
  virtual void on_packet_created(PacketId id, NodeId src, NodeId dst,
                                 int length, Cycle now) {
    (void)id; (void)src; (void)dst; (void)length; (void)now;
  }
  /// A flit arrived at a router's input register.
  virtual void on_flit_hop(const Flit& f, NodeId at, Cycle now) {
    (void)f; (void)at; (void)now;
  }
  virtual void on_flit_ejected(const Flit& f, Cycle now) {
    (void)f; (void)now;
  }
  /// SCARAB only: the flit was dropped and will be NACKed.
  virtual void on_flit_dropped(const Flit& f, NodeId at, Cycle now) {
    (void)f; (void)at; (void)now;
  }
  virtual void on_packet_completed(const PacketRecord& rec, Cycle now) {
    (void)rec; (void)now;
  }
};

class Network final : public Injector {
 public:
  /// Builds the mesh of routers for `cfg`; the fault plan defaults to
  /// the one derived from cfg.fault_fraction / cfg.seed, the partition
  /// to MeshPartition::rows(mesh, cfg.shards).  Every variant simulates
  /// bit-identically — the partition only chooses which thread executes
  /// which rows (see DESIGN.md §10).
  explicit Network(const SimConfig& cfg);
  Network(const SimConfig& cfg, FaultPlan plan);
  /// Explicit partition (the fuzz tests drive arbitrary cut lines).
  Network(const SimConfig& cfg, const MeshPartition& part);
  Network(const SimConfig& cfg, FaultPlan plan, const MeshPartition& part);
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The workload drives injection; must outlive the network's use.
  void set_workload(WorkloadModel* w) { workload_ = w; }

  /// Optional event observer (may be null to detach).
  void set_tracer(EventTracer* t) { tracer_ = t; }

  /// Advance one cycle: channel movement, arrivals, injection, router
  /// switching, ejection/reassembly, NACK deliveries.
  void step();

  /// Upper bound on the lane count one step_lanes call accepts; the
  /// per-node scratch arrays live on the stack.
  static constexpr std::size_t kMaxStepLanes = 64;

  /// Advances every network in `lanes` by one cycle in lockstep.  Each
  /// lane's state transition is bit-identical to lanes[i]->step(): the
  /// phases are interleaved lane-major, and the router phase runs
  /// node-major — node 0 across all K lanes, then node 1, ... — through
  /// the per-design batched entry points (DXbarRouter::step_batch et
  /// al.), so one node's allocation code and branch history stay hot
  /// across the whole batch.  Lanes never interact; pure reordering.
  ///
  /// Requirements (std::invalid_argument otherwise): 1..kMaxStepLanes
  /// lanes, every lane single-sharded (shards == 1) with no tracer
  /// attached, and all lanes sharing one design and mesh shape.  Lanes
  /// may differ in seed, traffic, faults, and current cycle.
  static void step_lanes(Network* const* lanes, std::size_t n);

  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// No flit anywhere in the system (queues, routers, links, NACKs).
  /// O(1): every created flit is delivered exactly once, so the
  /// created/delivered counters balance exactly when nothing is in
  /// flight (drops re-enter the source queue without re-counting).
  [[nodiscard]] bool idle() const;

  // --- Injector -------------------------------------------------------
  PacketId inject_packet(NodeId src, NodeId dst, int length,
                         Cycle now) override;
  PacketId inject_packet(NodeId src, NodeId dst, int length, Cycle now,
                         MsgClass cls) override;

  // --- component access -------------------------------------------------
  [[nodiscard]] const Mesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const MeshPartition& partition() const noexcept {
    return part_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] StatsCollector& stats() noexcept { return stats_; }
  [[nodiscard]] EnergyMeter& energy() noexcept { return energy_; }
  [[nodiscard]] Router& router(NodeId n) { return *routers_[n]; }
  [[nodiscard]] const FaultPlan& faults() const noexcept { return faults_; }
  [[nodiscard]] const LinkFaultPlan& link_faults() const noexcept {
    return link_faults_;
  }
  /// Flits currently alive across the per-shard arenas backing source
  /// queues and SCARAB staging; a drained network must report 0.
  [[nodiscard]] std::size_t flit_pool_live() const noexcept {
    std::size_t live = 0;
    for (const auto& s : shards_) live += s->flit_pool.live();
    return live;
  }
  /// Which routing acceleration structure this network built (mutually
  /// exclusive; both false on small meshes with no link faults).
  [[nodiscard]] bool using_route_cache() const noexcept {
    return route_cache_ != nullptr;
  }
  [[nodiscard]] bool using_route_table() const noexcept {
    return route_table_ != nullptr;
  }

  // --- snapshot/restore -------------------------------------------------
  /// Serializes all mutable simulation state as snapshot sections.  Must
  /// be called at a step boundary (between step() calls), where the
  /// per-cycle transients — router input registers, ejection lists,
  /// channel arrival registers — are empty by the cycle protocol.
  /// The workload is NOT included (it is external; see
  /// WorkloadModel::save_state).
  void save(SnapshotWriter& w) const;

  /// Restores state saved by save() into this network.  The target must
  /// have been constructed from a structurally identical configuration
  /// (same mesh, design, buffer sizing, fault plans, seed, stats
  /// windows); only workload-level fields (offered_load, warmup_load,
  /// pattern, drain cap) may differ.  Throws SnapshotError on
  /// fingerprint mismatch or a corrupt stream.
  void load(SnapshotReader& r);

  /// Convenience wrappers: a complete standalone snapshot byte stream.
  [[nodiscard]] std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

  // --- global accounting (whole run, not just the window) ---------------
  [[nodiscard]] std::uint64_t flits_created() const noexcept {
    return flits_created_;
  }
  [[nodiscard]] std::uint64_t flits_delivered() const noexcept {
    return flits_delivered_;
  }
  [[nodiscard]] std::uint64_t packets_created() const noexcept {
    return packets_created_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return packets_delivered_;
  }
  [[nodiscard]] std::uint64_t flits_dropped() const noexcept {
    return flits_dropped_;
  }

  /// Per-link flit counts since construction (utilization analysis).
  struct LinkUsage {
    LinkId link;
    std::uint64_t flits = 0;
  };
  [[nodiscard]] std::vector<LinkUsage> link_usage() const;

 private:
  /// Delivery endpoint of channels_[i]: which router input register the
  /// arrival lands in.  Kept in a parallel array so the per-cycle
  /// channel sweep walks two dense arrays and nothing else.  The source
  /// node rides along so build() can classify boundary channels.
  struct ChannelMeta {
    NodeId src_node = kInvalidNode;
    NodeId dst_node = kInvalidNode;
    int dst_port = 0;
  };

  /// A SCARAB drop recorded during the parallel router phase.  Drops
  /// mutate shared state (drop counter, NACK network, tracer), so each
  /// shard stages its own and the network commits them serially in
  /// node order — which is exactly the order the single-threaded loop
  /// produced them in, because shard node ranges are contiguous and
  /// ascending.
  struct StagedDrop {
    Flit flit;
    NodeId at = kInvalidNode;
  };

  /// Everything one worker thread mutates during the parallel phases.
  /// Cache-line aligned so neighbouring shards never false-share; the
  /// whole struct is private to its thread between barriers, and the
  /// serial commit step folds it into the shared aggregates each cycle,
  /// leaving observable state identical to the single-threaded run.
  struct alignas(64) ShardState final : NackSink {
    ShardState(const EnergyParams& params, Cycle window_start,
               Cycle window_end)
        : energy(params), tally(window_start, window_end) {}

    /// Slots (into channels_) this shard must advance; boundary
    /// channels are pinned here permanently.
    std::vector<std::uint32_t> active_channels;
    /// Arena backing this shard's source queues and SCARAB staging.
    FlitPool flit_pool;
    /// Always-enabled event counter; the fold into the network meter is
    /// gated by that meter's enable flag (constant within a cycle, so
    /// gating at the fold equals gating at the event).
    EnergyMeter energy;
    InjectionTally tally;
    std::vector<StagedDrop> drops;

    // NackSink for this shard's routers: stage, commit later.
    void on_drop(const Flit& flit, NodeId at, Cycle now) override {
      (void)now;
      drops.push_back({flit, at});
    }
  };

  [[nodiscard]] int link_index(NodeId node, int dir) const noexcept {
    return static_cast<int>(node) * kNumLinkDirs + dir;
  }

  /// Channel for the directed link (node, dir), or nullptr when the
  /// link does not exist (mesh edge / dead link).
  [[nodiscard]] Channel* channel_at(NodeId node, int dir) noexcept {
    const std::int32_t slot =
        link_slot_[static_cast<std::size_t>(link_index(node, dir))];
    return slot < 0 ? nullptr : &channels_[static_cast<std::size_t>(slot)];
  }

  void build();
  /// Runs fn(s) for every shard — on the pool when one exists and no
  /// tracer is attached, inline (sequentially, same per-shard work)
  /// otherwise.  Tracers get the inline path so their callbacks fire on
  /// one thread; shard-count invariance makes that run identical.
  template <typename F>
  void run_sharded(F&& fn);
  void sweep_channels(int shard);
  void step_routers_shard(int shard);
  /// Serially folds per-shard effects (staged drops, energy counts,
  /// injection tallies) into the shared aggregates, in shard order.
  void commit_shard_effects();
  void handle_ejections();
  void scarab_release_staging();
  void scarab_deliver_nacks();
  /// Slow structural scan backing the idle() counter identity in debug
  /// builds.
  [[nodiscard]] bool idle_by_scan() const;

  SimConfig cfg_;
  Mesh mesh_;
  MeshPartition part_;
  EnergyMeter energy_;
  FaultPlan faults_;
  LinkFaultPlan link_faults_;
  std::unique_ptr<RouteTable> route_table_;  ///< set iff link faults exist
  std::unique_ptr<RouteCache> route_cache_;  ///< set iff topology healthy
  StatsCollector stats_;
  WorkloadModel* workload_ = nullptr;
  EventTracer* tracer_ = nullptr;

  /// All existing channels, contiguous in (node, dir) order; the
  /// per-cycle sweep is one pass over the per-shard slot lists.  Each
  /// channel belongs to the shard of its destination router; slots with
  /// in-flight flits / pending credits / stop flips self-register on
  /// their owner's list and are delisted when quiescent (boundary
  /// channels stay pinned).  Capacity is reserved up front and each
  /// channel registers at most once, so steady-state maintenance never
  /// allocates.
  std::vector<Channel> channels_;
  std::vector<ChannelMeta> channel_meta_;  ///< parallel to channels_
  /// link_index(node, dir) -> slot in channels_, or -1 when absent.
  std::vector<std::int32_t> link_slot_;

  std::vector<std::unique_ptr<Router>> routers_;
  /// Per-shard mutable state; size part_.shards(), heap-allocated so the
  /// alignas(64) is honoured and addresses stay stable.
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Worker threads (null when single-sharded).
  std::unique_ptr<ShardPool> pool_;
  std::vector<InjectionQueue> sources_;

  /// Packet reassembly at the destination MSHRs.
  struct Assembly {
    int received = 0;
    PacketRecord rec;
  };
  PacketMap<Assembly> assembly_;

  // SCARAB retransmission control: freshly created flits wait in staging
  // until the source's retransmit buffer has room.
  std::vector<PooledFlitDeque> scarab_staging_;
  std::vector<int> scarab_outstanding_;
  int scarab_capacity_flits_ = 0;
  NackNetwork nacks_;

  Cycle now_ = 0;
  PacketId next_packet_ = 1;
  std::uint64_t flits_created_ = 0;
  std::uint64_t flits_delivered_ = 0;
  std::uint64_t packets_created_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t flits_dropped_ = 0;
};

}  // namespace dxbar
