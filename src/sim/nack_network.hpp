// SCARAB's dedicated circuit-switched NACK network.
//
// When a router drops a flit it opens a pre-reserved 1-bit path back to
// the source; we model the delivery as an event arriving after the
// Manhattan distance plus one setup cycle, and charge the per-hop NACK
// energy.  The data network never carries NACKs.
#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "common/flit.hpp"
#include "power/energy_model.hpp"
#include "snapshot/serialize.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

class NackNetwork {
 public:
  /// Schedule the NACK for a flit dropped at `at` toward `flit.src`.
  /// The source's NACK wire delivers one notification per cycle, so
  /// bursts of drops against the same source serialize — the modest
  /// contention model the dedicated 1-bit network actually has.
  void schedule(const Flit& flit, NodeId at, Cycle now, const Mesh& mesh,
                EnergyMeter& energy) {
    const int hops = mesh.distance(at, flit.src);
    energy.nack_hops(hops);
    Cycle deliver = now + static_cast<Cycle>(hops) + 1;
    if (flit.src < wire_free_.size()) {
      deliver = std::max(deliver, wire_free_[flit.src]);
      wire_free_[flit.src] = deliver + 1;
    }
    q_.push(Event{deliver, seq_++, flit});
  }

  /// Size the per-source NACK wires; called once by the network.
  void set_num_nodes(int n) {
    wire_free_.assign(static_cast<std::size_t>(n), 0);
  }

  /// All NACKs arriving at or before `now` (their flits must be
  /// retransmitted by the source).
  std::vector<Flit> deliveries(Cycle now) {
    std::vector<Flit> out;
    while (!q_.empty() && q_.top().deliver <= now) {
      out.push_back(q_.top().flit);
      q_.pop();
    }
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }

  // ---- snapshot protocol ----------------------------------------------
  //
  // Events are written in heap-pop order (deliver, then seq), which is
  // exactly the order the restored queue re-derives, so delivery order
  // is bit-stable across a round trip.

  void save(SnapshotWriter& w) const {
    w.u64(q_.size());
    auto copy = q_;
    while (!copy.empty()) {
      const Event& e = copy.top();
      w.u64(e.deliver);
      w.u64(e.seq);
      save_flit(w, e.flit);
      copy.pop();
    }
    w.u64(wire_free_.size());
    for (Cycle c : wire_free_) w.u64(c);
    w.u64(seq_);
  }

  void load(SnapshotReader& r) {
    q_ = {};
    const std::uint64_t n = r.count(16);
    for (std::uint64_t i = 0; i < n; ++i) {
      Event e;
      e.deliver = r.u64();
      e.seq = r.u64();
      e.flit = load_flit(r);
      q_.push(e);
    }
    const std::uint64_t wires = r.count(8);
    wire_free_.assign(wires, 0);
    for (Cycle& c : wire_free_) c = r.u64();
    seq_ = r.u64();
  }

 private:
  struct Event {
    Cycle deliver;
    std::uint64_t seq;  ///< FIFO order among same-cycle deliveries
    Flit flit;

    [[nodiscard]] bool operator>(const Event& o) const noexcept {
      if (deliver != o.deliver) return deliver > o.deliver;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> q_;
  std::vector<Cycle> wire_free_;  ///< per-source earliest next delivery
  std::uint64_t seq_ = 0;
};

}  // namespace dxbar
