// SCARAB's dedicated circuit-switched NACK network.
//
// When a router drops a flit it opens a pre-reserved 1-bit path back to
// the source; we model the delivery as an event arriving after the
// Manhattan distance plus one setup cycle, and charge the per-hop NACK
// energy.  The data network never carries NACKs.
#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "common/flit.hpp"
#include "power/energy_model.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

class NackNetwork {
 public:
  /// Schedule the NACK for a flit dropped at `at` toward `flit.src`.
  /// The source's NACK wire delivers one notification per cycle, so
  /// bursts of drops against the same source serialize — the modest
  /// contention model the dedicated 1-bit network actually has.
  void schedule(const Flit& flit, NodeId at, Cycle now, const Mesh& mesh,
                EnergyMeter& energy) {
    const int hops = mesh.distance(at, flit.src);
    energy.nack_hops(hops);
    Cycle deliver = now + static_cast<Cycle>(hops) + 1;
    if (flit.src < wire_free_.size()) {
      deliver = std::max(deliver, wire_free_[flit.src]);
      wire_free_[flit.src] = deliver + 1;
    }
    q_.push(Event{deliver, seq_++, flit});
  }

  /// Size the per-source NACK wires; called once by the network.
  void set_num_nodes(int n) {
    wire_free_.assign(static_cast<std::size_t>(n), 0);
  }

  /// All NACKs arriving at or before `now` (their flits must be
  /// retransmitted by the source).
  std::vector<Flit> deliveries(Cycle now) {
    std::vector<Flit> out;
    while (!q_.empty() && q_.top().deliver <= now) {
      out.push_back(q_.top().flit);
      q_.pop();
    }
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }

 private:
  struct Event {
    Cycle deliver;
    std::uint64_t seq;  ///< FIFO order among same-cycle deliveries
    Flit flit;

    [[nodiscard]] bool operator>(const Event& o) const noexcept {
      if (deliver != o.deliver) return deliver > o.deliver;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> q_;
  std::vector<Cycle> wire_free_;  ///< per-source earliest next delivery
  std::uint64_t seq_ = 0;
};

}  // namespace dxbar
