#include "sim/campaign.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>

#include "sim/network.hpp"
#include "snapshot/serialize.hpp"
#include "traffic/traffic_gen.hpp"
#include "workload/factory.hpp"

namespace dxbar {

namespace {

constexpr std::uint32_t kResultTag = section_tag("CRES");
constexpr std::uint32_t kSecCampaign = section_tag("CAMP");
constexpr std::uint32_t kSecWorkload = section_tag("WKLD");

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void append_le32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_le64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t le32_at(const std::vector<std::uint8_t>& b, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t le64_at(const std::vector<std::uint8_t>& b, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

Campaign::Campaign(std::vector<SimConfig> points, std::string dir,
                   Cycle checkpoint_interval)
    : points_(std::move(points)),
      dir_(std::move(dir)),
      checkpoint_interval_(checkpoint_interval == 0 ? 1 : checkpoint_interval),
      results_(points_.size()) {
  SnapshotWriter w;
  for (const SimConfig& p : points_) save_config(w, p);
  fingerprint_ = fnv1a(w.data().data(), w.data().size());
  load_results();
}

std::string Campaign::results_path() const { return dir_ + "/results.bin"; }
std::string Campaign::checkpoint_path() const {
  return dir_ + "/checkpoint.bin";
}

void Campaign::load_results() {
  const std::vector<std::uint8_t> bytes = read_file(results_path());
  // Frames are appended sequentially, so the first frame that fails any
  // check — unknown tag, overrun, bad hash, unparsable payload — is a
  // torn tail from a crash mid-append; it and everything after it are
  // dropped (that point simply re-runs).
  std::size_t pos = 0;
  while (bytes.size() - pos >= 4 + 8) {
    if (le32_at(bytes, pos) != kResultTag) break;
    const std::uint64_t len = le64_at(bytes, pos + 4);
    if (len > bytes.size() - pos - 12 || bytes.size() - pos - 12 - len < 8) {
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 12;
    if (fnv1a(payload, len) != le64_at(bytes, pos + 12 + len)) break;
    try {
      SnapshotReader r(payload, len);
      const std::uint32_t point = r.u32();
      const RunStats stats = load_run_stats(r);
      if (point < points_.size()) results_[point] = stats;
    } catch (const SnapshotError&) {
      break;
    }
    pos += 12 + len + 8;
  }
}

void Campaign::append_result(std::size_t point, const RunStats& stats) {
  SnapshotWriter payload;
  payload.u32(static_cast<std::uint32_t>(point));
  save_run_stats(payload, stats);
  const std::vector<std::uint8_t>& p = payload.data();

  std::vector<std::uint8_t> frame;
  frame.reserve(p.size() + 20);
  append_le32(frame, kResultTag);
  append_le64(frame, p.size());
  frame.insert(frame.end(), p.begin(), p.end());
  append_le64(frame, fnv1a(p.data(), p.size()));

  std::ofstream out(results_path(),
                    std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
}

void Campaign::write_checkpoint(std::size_t point, std::uint8_t stage,
                                Cycle drain_t, const Network& net,
                                const WorkloadModel& workload) const {
  SnapshotWriter w;
  w.begin_section(kSecCampaign);
  w.u32(static_cast<std::uint32_t>(point));
  w.u8(stage);
  w.u64(drain_t);
  w.u64(fingerprint_);
  w.end_section();
  net.save(w);
  w.begin_section(kSecWorkload);
  workload.save_state(w);
  w.end_section();

  // Atomic replacement: the old checkpoint stays valid until the new one
  // is fully on disk.
  const std::string tmp = checkpoint_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.data().size()));
  }
  std::rename(tmp.c_str(), checkpoint_path().c_str());
}

CampaignStatus Campaign::status() const {
  CampaignStatus st;
  st.total = points_.size();
  for (const auto& r : results_) {
    if (r.has_value()) ++st.completed;
  }
  st.finished = st.completed == st.total;
  return st;
}

CampaignStatus Campaign::run(std::uint64_t cycle_budget) {
  std::uint64_t stepped = 0;
  // The checkpoint (if any) belongs to at most one point; consume it on
  // the first pending point and ignore it if it does not match.
  std::vector<std::uint8_t> checkpoint = read_file(checkpoint_path());

  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (results_[i].has_value()) continue;
    const SimConfig& cfg = points_[i];

    auto net = std::make_unique<Network>(cfg);
    auto workload = make_workload(cfg, net->mesh());
    net->set_workload(workload.get());

    std::uint8_t stage = 0;
    Cycle drain_t = 0;
    if (!checkpoint.empty()) {
      const std::vector<std::uint8_t> bytes = std::move(checkpoint);
      checkpoint.clear();
      try {
        SnapshotReader r(bytes);
        (void)r.expect_section(kSecCampaign);
        const std::uint32_t point = r.u32();
        const std::uint8_t st = r.u8();
        const Cycle dt = r.u64();
        const std::uint64_t fp = r.u64();
        if (fp == fingerprint_ && point == i) {
          net->load(r);
          (void)r.expect_section(kSecWorkload);
          workload->load_state(r);
          stage = st;
          drain_t = dt;
        }
      } catch (const SnapshotError&) {
        // Corrupt or foreign checkpoint: restart the point cold.  load()
        // may have partially mutated the network, so rebuild it.
        net = std::make_unique<Network>(cfg);
        workload = make_workload(cfg, net->mesh());
        net->set_workload(workload.get());
        stage = 0;
        drain_t = 0;
      }
    }

    const Cycle warmup = cfg.warmup_cycles;
    const Cycle measure_end = warmup + cfg.measure_cycles;
    Cycle since_checkpoint = 0;

    if (stage == 0) {
      net->energy().set_enabled(net->now() >= warmup &&
                                net->now() < measure_end);
      while (net->now() < measure_end) {
        if (cycle_budget != 0 && stepped >= cycle_budget) return status();
        if (net->now() == warmup) net->energy().set_enabled(true);
        net->step();
        ++stepped;
        if (++since_checkpoint >= checkpoint_interval_) {
          write_checkpoint(i, 0, 0, *net, *workload);
          since_checkpoint = 0;
        }
      }
    }

    net->energy().set_enabled(false);
    workload->set_injection_enabled(false);

    bool drained = false;
    while (drain_t < cfg.drain_cycles) {
      if (net->idle() && workload->quiescent()) {
        drained = true;
        break;
      }
      if (cycle_budget != 0 && stepped >= cycle_budget) return status();
      net->step();
      ++drain_t;
      ++stepped;
      if (++since_checkpoint >= checkpoint_interval_) {
        write_checkpoint(i, 1, drain_t, *net, *workload);
        since_checkpoint = 0;
      }
    }
    drained = drained || (net->idle() && workload->quiescent());

    RunStats out = net->stats().summarize(cfg.offered_load, drained);
    out.packet_length = cfg.packet_length;
    out.energy_buffer_nj = net->energy().buffer_nj();
    out.energy_crossbar_nj = net->energy().crossbar_nj();
    out.energy_link_nj = net->energy().link_nj();
    out.energy_control_nj = net->energy().control_nj();
    out.energy_leakage_nj = network_leakage_nj(cfg, out.cycles);
    workload->fill_run_stats(out);

    // Persist the result BEFORE dropping the checkpoint: a crash between
    // the two leaves a stale checkpoint for a completed point, which the
    // next run detects (point != first pending) and discards.
    append_result(i, out);
    results_[i] = out;
    std::remove(checkpoint_path().c_str());
  }
  return status();
}

}  // namespace dxbar
