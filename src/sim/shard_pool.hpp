// Persistent fork-join worker pool for sharded Network stepping.
//
// `run(fn)` invokes fn(s) for every shard s in [0, shards); the calling
// thread executes shard 0 itself and the pool's shards-1 resident
// workers execute the rest.  run() returns only after every shard
// finished, so each call is a full barrier — Network::step() issues one
// run() per phase, which is exactly the per-phase synchronization the
// sharded cycle semantics require.
//
// Synchronization is a plain mutex + two condvars (generation counter to
// publish work, remaining counter to detect completion); everything the
// workers touch is handed over under the mutex, so the pool itself is
// ThreadSanitizer-clean and all ordering questions reduce to what fn
// does.  Workers park between calls — an idle pool burns no CPU.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dxbar {

class ShardPool {
 public:
  /// Spawns `shards - 1` worker threads (a 1-shard pool has none).
  explicit ShardPool(int shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] int shards() const noexcept { return shards_; }

  /// Runs fn(0) .. fn(shards-1) concurrently; returns when all are done.
  /// Not reentrant and not thread-safe: one run() at a time, from the
  /// thread that owns the pool.
  void run(const std::function<void(int shard)>& fn);

 private:
  void worker_loop(int shard);

  int shards_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); wakes workers
  int remaining_ = 0;             ///< workers still running this job
  bool stop_ = false;
};

}  // namespace dxbar
