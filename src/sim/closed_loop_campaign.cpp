#include "sim/closed_loop_campaign.hpp"

#include <fstream>
#include <iterator>

#include "snapshot/serialize.hpp"

namespace dxbar {

namespace {

constexpr std::uint32_t kResultTag = section_tag("CLRS");

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void append_le32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_le64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t le32_at(const std::vector<std::uint8_t>& b, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t le64_at(const std::vector<std::uint8_t>& b, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

void save_result(SnapshotWriter& w, const ClosedLoopResult& r) {
  w.u64(r.completion_cycles);
  w.boolean(r.finished);
  w.u64(r.packets);
  w.f64(r.energy_nj);
  w.f64(r.energy_per_packet_nj);
  w.f64(r.avg_packet_latency);
}

ClosedLoopResult load_result(SnapshotReader& r) {
  ClosedLoopResult out;
  out.completion_cycles = r.u64();
  out.finished = r.boolean();
  out.packets = r.u64();
  out.energy_nj = r.f64();
  out.energy_per_packet_nj = r.f64();
  out.avg_packet_latency = r.f64();
  return out;
}

}  // namespace

ClosedLoopCampaign::ClosedLoopCampaign(std::size_t points, std::string dir,
                                       std::uint64_t fingerprint)
    : dir_(std::move(dir)), fingerprint_(fingerprint), results_(points) {
  load_results();
}

std::string ClosedLoopCampaign::results_path() const {
  return dir_ + "/results.bin";
}

std::size_t ClosedLoopCampaign::completed() const {
  std::size_t n = 0;
  for (const auto& r : results_) {
    if (r.has_value()) ++n;
  }
  return n;
}

void ClosedLoopCampaign::load_results() {
  const std::vector<std::uint8_t> bytes = read_file(results_path());
  // Same torn-tail policy as the open-loop Campaign: the first frame
  // that fails any check ends the readable prefix.  Frames with a
  // foreign fingerprint are structurally valid, so they are skipped
  // (not treated as a torn tail) and their points re-run.
  std::size_t pos = 0;
  while (bytes.size() - pos >= 4 + 8) {
    if (le32_at(bytes, pos) != kResultTag) break;
    const std::uint64_t len = le64_at(bytes, pos + 4);
    if (len > bytes.size() - pos - 12 || bytes.size() - pos - 12 - len < 8) {
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 12;
    if (fnv1a(payload, len) != le64_at(bytes, pos + 12 + len)) break;
    try {
      SnapshotReader r(payload, len);
      const std::uint64_t fp = r.u64();
      const std::uint32_t point = r.u32();
      const ClosedLoopResult result = load_result(r);
      if (fp == fingerprint_ && point < results_.size()) {
        results_[point] = result;
      }
    } catch (const SnapshotError&) {
      break;
    }
    pos += 12 + len + 8;
  }
}

void ClosedLoopCampaign::record(std::size_t point, const ClosedLoopResult& r) {
  SnapshotWriter payload;
  payload.u64(fingerprint_);
  payload.u32(static_cast<std::uint32_t>(point));
  save_result(payload, r);
  const std::vector<std::uint8_t>& p = payload.data();

  std::vector<std::uint8_t> frame;
  frame.reserve(p.size() + 20);
  append_le32(frame, kResultTag);
  append_le64(frame, p.size());
  frame.insert(frame.end(), p.begin(), p.end());
  append_le64(frame, fnv1a(p.data(), p.size()));

  const std::lock_guard<std::mutex> lock(mu_);
  results_[point] = r;
  std::ofstream out(results_path(), std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
}

}  // namespace dxbar
