#include "fault/link_faults.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"

namespace dxbar {

bool LinkFaultPlan::connected_without(const Mesh& mesh, NodeId a,
                                      Direction d) const {
  // BFS over live links, additionally treating (a, d) and its reverse as
  // dead, starting from node 0; connected iff all nodes reached.
  const auto nb = mesh.neighbor(a, d);
  if (!nb) return true;
  const NodeId b = *nb;

  std::vector<bool> seen(static_cast<std::size_t>(mesh.num_nodes()), false);
  std::vector<NodeId> queue{0};
  seen[0] = true;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId cur = queue[head++];
    for (Direction dir : kLinkDirs) {
      if (!alive(cur, dir)) continue;
      if ((cur == a && dir == d) || (cur == b && dir == opposite(d))) {
        continue;
      }
      const auto next = mesh.neighbor(cur, dir);
      if (!next || seen[*next]) continue;
      seen[*next] = true;
      queue.push_back(*next);
    }
  }
  return queue.size() == static_cast<std::size_t>(mesh.num_nodes());
}

LinkFaultPlan::LinkFaultPlan(const Mesh& mesh, double fraction,
                             std::uint64_t seed)
    : dead_(static_cast<std::size_t>(mesh.num_nodes()) * kNumLinkDirs,
            false) {
  if (fraction <= 0.0) return;

  // Undirected edges, represented by their East/North endpoint.
  struct Edge {
    NodeId node;
    Direction dir;
  };
  std::vector<Edge> edges;
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.num_nodes()); ++n) {
    for (Direction d : {Direction::East, Direction::North}) {
      if (mesh.has_link(n, d)) edges.push_back({n, d});
    }
  }

  // Seeded shuffle, then kill the first ceil(f*E) edges that do not
  // disconnect the mesh — monotone in `fraction` for a fixed seed.
  Rng rng(seed ^ 0x11FA17ULL);
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.below(static_cast<std::uint32_t>(i))]);
  }
  const int target = std::min(
      static_cast<int>(edges.size()),
      static_cast<int>(std::ceil(fraction * static_cast<double>(edges.size()))));

  for (const Edge& e : edges) {
    if (dead_edges_ >= target) break;
    if (!connected_without(mesh, e.node, e.dir)) continue;
    const NodeId other = *mesh.neighbor(e.node, e.dir);
    dead_[static_cast<std::size_t>(e.node) * kNumLinkDirs +
          port_index(e.dir)] = true;
    dead_[static_cast<std::size_t>(other) * kNumLinkDirs +
          port_index(opposite(e.dir))] = true;
    ++dead_edges_;
  }
}

}  // namespace dxbar
