#include "fault/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"

namespace dxbar {

FaultPlan::FaultPlan(int num_routers, double fraction, std::uint64_t seed,
                     Cycle onset_spread, Cycle detect_delay)
    : faults_(static_cast<std::size_t>(num_routers)),
      detect_delay_(detect_delay) {
  if (fraction <= 0.0 || num_routers <= 0) return;

  // One permutation per seed; the first ceil(f*N) entries are faulty, so
  // fault sets grow monotonically with the fraction (paper methodology).
  std::vector<NodeId> order(static_cast<std::size_t>(num_routers));
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(seed ^ 0xFA017EEDULL);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(static_cast<std::uint32_t>(i))]);
  }

  num_faulty_ = std::min(
      num_routers,
      static_cast<int>(std::ceil(fraction * static_cast<double>(num_routers))));

  for (int k = 0; k < num_faulty_; ++k) {
    RouterFault& f = faults_[order[static_cast<std::size_t>(k)]];
    f.faulty = true;
    // Which crossbar fails and when derive from per-router draws so they
    // are stable as the fraction grows.
    f.failed = rng.bernoulli(0.5) ? CrossbarKind::Primary
                                  : CrossbarKind::Secondary;
    f.onset = onset_spread <= 1
                  ? 0
                  : static_cast<Cycle>(
                        rng.below(static_cast<std::uint32_t>(onset_spread)));
  }
}

}  // namespace dxbar
