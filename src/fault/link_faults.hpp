// Extension: link fault injection.
//
// The paper studies crossbar faults inside the router; failed *links*
// are the natural companion experiment.  A link fault kills both
// directions of a mesh edge (a broken wire bundle).  The plan keeps the
// mesh connected — an edge whose removal would disconnect the network is
// skipped — and, like FaultPlan, grows monotonically with the fraction
// for a fixed seed.
//
// Routing around dead links uses the fault-aware RouteTable (BFS over
// live edges); see routing/route_table.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/mesh.hpp"

namespace dxbar {

class LinkFaultPlan {
 public:
  /// Kills up to `fraction` of the mesh's undirected edges (both
  /// directions), never disconnecting the network.
  LinkFaultPlan(const Mesh& mesh, double fraction, std::uint64_t seed);

  /// No link faults.
  static LinkFaultPlan none(const Mesh& mesh) {
    return LinkFaultPlan(mesh, 0.0, 0);
  }

  /// True when the directed link (node, dir) is operational.
  [[nodiscard]] bool alive(NodeId node, Direction dir) const {
    if (dir == Direction::Local) return true;
    return !dead_[static_cast<std::size_t>(node) * kNumLinkDirs +
                  port_index(dir)];
  }

  [[nodiscard]] int num_dead_edges() const noexcept { return dead_edges_; }
  [[nodiscard]] bool any() const noexcept { return dead_edges_ > 0; }

 private:
  [[nodiscard]] bool connected_without(const Mesh& mesh, NodeId a,
                                       Direction d) const;

  std::vector<bool> dead_;  ///< per directed link
  int dead_edges_ = 0;
};

}  // namespace dxbar
