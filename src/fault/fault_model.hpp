// Crossbar fault injection (paper section II.C / III.E).
//
// Faults are permanent failures of one of a router's two crossbars.
// The plan is generated from a single seed shared across fault
// percentages ("randomly generated at different crossbars with the same
// random seed but varying percentages"), which we realise by drawing one
// seeded permutation of routers and marking the first ceil(f*N) faulty —
// higher percentages are strict supersets of lower ones.
//
// Detection follows the paper's BIST assumption: a fault manifests at its
// onset cycle but the switch allocator only learns of it
// `detect_delay` cycles later; in between the router wastes the cycles
// of flits that try the dead crossbar.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

enum class CrossbarKind : std::uint8_t {
  Primary,    ///< the bufferless crossbar
  Secondary,  ///< the buffered crossbar
};

struct RouterFault {
  bool faulty = false;
  CrossbarKind failed = CrossbarKind::Primary;
  Cycle onset = 0;  ///< cycle the fault manifests
};

class FaultPlan {
 public:
  /// `fraction` of the `num_routers` routers develop one crossbar fault;
  /// which routers, which crossbar and the onset inside [0, onset_spread)
  /// all derive from `seed`.
  FaultPlan(int num_routers, double fraction, std::uint64_t seed,
            Cycle onset_spread = 1, Cycle detect_delay = 5);

  /// Plan with no faults at all (the default for fault-free runs).
  static FaultPlan none(int num_routers) {
    return FaultPlan(num_routers, 0.0, 0, 1, 5);
  }

  [[nodiscard]] const RouterFault& at(NodeId n) const {
    return faults_[n];
  }

  /// The fault has physically manifested at `now`.
  [[nodiscard]] bool manifest(NodeId n, Cycle now) const {
    const RouterFault& f = faults_[n];
    return f.faulty && now >= f.onset;
  }

  /// The router's allocator knows about the fault at `now` (BIST fired).
  [[nodiscard]] bool detected(NodeId n, Cycle now) const {
    const RouterFault& f = faults_[n];
    return f.faulty && now >= f.onset + detect_delay_;
  }

  [[nodiscard]] Cycle detect_delay() const noexcept { return detect_delay_; }
  [[nodiscard]] int num_faulty() const noexcept { return num_faulty_; }

  // ---- snapshot protocol ----------------------------------------------
  //
  // Detection state (BIST timers) is a pure function of the plan and the
  // current cycle, so serializing the plan plus restoring the network's
  // clock reproduces mid-flight detection windows exactly.  The plan
  // itself must travel because a network may be built with a custom plan
  // the target's config cannot re-derive.

  void save(SnapshotWriter& w) const {
    w.u64(faults_.size());
    for (const RouterFault& f : faults_) {
      w.boolean(f.faulty);
      w.u8(static_cast<std::uint8_t>(f.failed));
      w.u64(f.onset);
    }
    w.u64(detect_delay_);
    w.i32(num_faulty_);
  }

  void load(SnapshotReader& r) {
    const std::uint64_t n = r.count(10);
    if (n != faults_.size()) {
      throw SnapshotError("fault plan router count mismatch");
    }
    for (RouterFault& f : faults_) {
      f.faulty = r.boolean();
      f.failed = static_cast<CrossbarKind>(r.u8());
      f.onset = r.u64();
    }
    detect_delay_ = r.u64();
    num_faulty_ = r.i32();
  }

 private:
  std::vector<RouterFault> faults_;
  Cycle detect_delay_;
  int num_faulty_ = 0;
};

}  // namespace dxbar
