// Router interface and shared plumbing.
//
// The network drives every router with the same per-cycle protocol:
//   1. channel arrivals are copied into `in[]`
//   2. step(now) runs switch allocation + traversal, pushing departures
//      straight into the outgoing channels and ejections into `ejected`
//   3. the network drains `ejected` and clears `in[]`
//
// Routers never talk to each other directly — all coupling goes through
// the Channel objects (flits downstream, credits upstream), which is what
// makes the two-phase cycle free of ordering artifacts.
#pragma once

#include <array>
#include <optional>

#include "common/config.hpp"
#include "common/flit.hpp"
#include "common/flit_pool.hpp"
#include "common/small_vec.hpp"
#include "common/stats.hpp"
#include "fault/fault_model.hpp"
#include "power/energy_model.hpp"
#include "routing/deflect.hpp"
#include "routing/route_cache.hpp"
#include "routing/route_table.hpp"
#include "routing/routing_algorithm.hpp"
#include "topology/channel.hpp"
#include "topology/mesh.hpp"

namespace dxbar {

/// Source-side queue of flits awaiting injection at one node.  Unbounded:
/// open-loop experiments measure accepted load, and closed-loop workloads
/// throttle themselves via MSHR limits before the queue matters.
/// First pop of a fresh flit stamps its injection cycle and notifies the
/// statistics collector; retransmissions keep their original timestamp.
class InjectionQueue {
 public:
  /// Wired once by the network before simulation starts; `pool` backs
  /// the queued flits so injection never hits the global allocator.
  /// The tally is the owning shard's injection counter — pop_front runs
  /// inside the parallel router phase, so it must not touch the shared
  /// StatsCollector directly.
  void attach(const Cycle* clock, InjectionTally* tally,
              FlitPool* pool) noexcept {
    clock_ = clock;
    tally_ = tally;
    q_.attach_pool(pool);
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] const Flit& front() const { return q_.front(); }

  Flit pop_front() {
    Flit f = q_.pop_front();
    if (f.injected_at == kNotInjected && clock_ != nullptr) {
      f.injected_at = *clock_;
      if (tally_ != nullptr) tally_->on_flit_injected(f, *clock_);
    }
    return f;
  }

  void push_back(const Flit& f) { q_.push_back(f); }
  /// Retransmissions re-enter at the front so age order is preserved.
  void push_front(const Flit& f) { q_.push_front(f); }

  // Snapshot protocol: queue contents by value (the clock/stats wiring
  // and backing pool are re-established at construction).
  void save(SnapshotWriter& w) const { q_.save(w); }
  void load(SnapshotReader& r) { q_.load(r); }

 private:
  PooledFlitDeque q_;
  const Cycle* clock_ = nullptr;
  InjectionTally* tally_ = nullptr;
};

/// Receives SCARAB drop notifications; implemented by the network, which
/// routes the NACK over the dedicated circuit-switched network.
class NackSink {
 public:
  virtual ~NackSink() = default;
  virtual void on_drop(const Flit& flit, NodeId at, Cycle now) = 0;
};

/// Everything a router needs from its surroundings, wired once at build.
struct RouterEnv {
  const SimConfig* cfg = nullptr;
  const Mesh* mesh = nullptr;
  EnergyMeter* energy = nullptr;
  const FaultPlan* faults = nullptr;
  /// Fault-aware routing table; non-null when link faults degrade the
  /// topology (see routing/route_table.hpp).
  const RouteTable* route_table = nullptr;
  /// Precomputed route sets for the healthy topology; non-null when the
  /// network built one (mutually exclusive with route_table).
  const RouteCache* route_cache = nullptr;
  /// nullptr at mesh edges AND for dead links (link faults).
  std::array<Channel*, kNumLinkDirs> out_links{};
  std::array<Channel*, kNumLinkDirs> in_links{};
};

class Router {
 public:
  Router(NodeId id, const RouterEnv& env);
  virtual ~Router() = default;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Arrivals for the current cycle, filled by the network before step().
  std::array<std::optional<Flit>, kNumLinkDirs> in{};

  /// Flits delivered to the local PE this cycle (at most one — the Local
  /// output port has unit bandwidth; sized generously for safety checks).
  SmallVec<Flit, 4> ejected;

  /// Injection source for this node, wired by the network.
  InjectionQueue* source = nullptr;

  /// Drop notification sink (SCARAB only), wired by the network.
  NackSink* nack_sink = nullptr;

  /// Run one cycle of switch allocation and traversal.
  virtual void step(Cycle now) = 0;

  /// Flits resident inside the router (input buffers); the network uses
  /// this for drain detection.
  [[nodiscard]] virtual int occupancy() const = 0;

  /// Snapshot protocol: serialize/restore the router's mutable state
  /// (buffers, arbiter pointers, wait counters, design counters).  The
  /// defaults cover the stateless bufferless designs (Bless, SCARAB),
  /// which hold nothing between cycles — snapshots are taken at step
  /// boundaries, where in[] and ejected are empty by the network's
  /// cycle protocol.
  virtual void save_state(SnapshotWriter& w) const { (void)w; }
  virtual void load_state(SnapshotReader& r) { (void)r; }

  [[nodiscard]] NodeId id() const noexcept { return id_; }

 protected:
  /// True when an output link exists in `d` and has a credit + free slot.
  [[nodiscard]] bool can_send(Direction d) const {
    Channel* ch = env_.out_links[port_index(d)];
    return ch != nullptr && ch->can_send();
  }

  /// Like can_send but ignores on/off stop signals — liveness paths
  /// (deflection escape, stall-escape override) may push into a full
  /// receiver, whose must-win logic absorbs the flit.
  [[nodiscard]] bool can_send_ignoring_stop(Direction d) const {
    Channel* ch = env_.out_links[port_index(d)];
    return ch != nullptr && ch->can_send_ignoring_stop();
  }

  /// Push a flit onto the outgoing link: bumps the hop count and charges
  /// link energy.  The crossbar-traversal energy is charged by the caller
  /// because which crossbar was used differs per design.
  void send_link(Direction d, const Flit& f) {
    env_.energy->link_traversal();
    Channel& ch = *env_.out_links[port_index(d)];
    ch.send(f);
    ch.bump_staged_hops();
  }

  void eject(Flit f) { ejected.push_back(f); }

  /// Return a buffer credit to the upstream router on the link the flit
  /// arrived over.
  void return_credit(Direction arrived_over) {
    Channel* ch = env_.in_links[port_index(arrived_over)];
    if (ch != nullptr) ch->return_credit();
  }

  /// Productive output ports for `dst`: the configured algorithm on a
  /// healthy topology, or the fault-aware table when links are dead.
  /// The healthy path is one precomputed-table read (see RouteCache).
  [[nodiscard]] RouteSet routes(NodeId dst) const {
    if (env_.route_cache != nullptr) return env_.route_cache->routes(id_, dst);
    if (env_.route_table != nullptr) return env_.route_table->routes(id_, dst);
    return compute_routes(env_.cfg->routing, *env_.mesh, id_, dst);
  }

  /// Every port that makes forward progress toward `dst` (minimal
  /// adaptive set), live-topology aware.  Used by the bufferless
  /// routers, which adapt over all productive ports regardless of the
  /// configured deterministic algorithm.
  [[nodiscard]] RouteSet progressive_dirs(NodeId dst) const {
    if (env_.route_cache != nullptr) return env_.route_cache->minimal(id_, dst);
    if (env_.route_table != nullptr) return env_.route_table->routes(id_, dst);
    return minimal_routes(*env_.mesh, id_, dst);
  }

  /// The output link exists and is operational.
  [[nodiscard]] bool link_alive(Direction d) const {
    return env_.out_links[port_index(d)] != nullptr;
  }

  /// Deflection preference over the link directions: ports that make
  /// forward progress first (live-topology aware — on a degraded mesh
  /// geometric preference can livelock around obstacles), then the
  /// geometric ranking for the rest.
  [[nodiscard]] std::array<Direction, kNumLinkDirs> deflection_order(
      const Flit& f, std::uint64_t salt) const {
    const auto geometric = deflection_ranking(*env_.mesh, id_, f.dst, salt);
    if (env_.route_table == nullptr) return geometric;
    const RouteSet prog = progressive_dirs(f.dst);
    std::array<Direction, kNumLinkDirs> out{};
    int k = 0;
    for (Direction d : geometric) {
      if (prog.contains(d)) out[static_cast<std::size_t>(k++)] = d;
    }
    for (Direction d : geometric) {
      if (!prog.contains(d)) out[static_cast<std::size_t>(k++)] = d;
    }
    return out;
  }

  NodeId id_;
  RouterEnv env_;
};

}  // namespace dxbar
