#include "router/bless_router.hpp"

#include <algorithm>
#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {

BlessRouter::BlessRouter(NodeId id, const RouterEnv& env) : Router(id, env) {
  // Live out-degree: mesh edges minus dead links (link faults kill both
  // directions, so in-degree matches and the assignment invariant holds).
  degree_ = 0;
  for (Direction d : kLinkDirs) {
    if (env_.out_links[port_index(d)] != nullptr) ++degree_;
  }
}

void BlessRouter::step(Cycle now) {
  // ---- gather this cycle's flits ---------------------------------------
  SmallVec<Flit, kNumPorts> flits;
  int incoming = 0;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      flits.push_back(*arrival);
      arrival.reset();
      ++incoming;
    }
  }
  // Inject only when an input slot is free: the assignment below then
  // always finds a port for every flit (#flits <= degree, and at most
  // one flit can take the Local port).
  if (source != nullptr && !source->empty() && incoming < degree_) {
    flits.push_back(source->pop_front());
  }
  if (flits.empty()) return;

  // ---- oldest-first port assignment ------------------------------------
  insertion_sort(flits,
                 [](const Flit& a, const Flit& b) { return a.older_than(b); });

  bool local_taken = false;
  std::array<bool, kNumLinkDirs> link_taken{};
  for (Flit& f : flits) {
    env_.energy->crossbar_traversal();

    if (f.dst == id_ && !local_taken) {
      local_taken = true;
      eject(f);
      continue;
    }

    // Walk the ranking (productive ports first) and take the first free
    // existing link; a non-productive assignment is a deflection.
    const auto ranking =
        deflection_order(f, f.packet * 0x9E3779B97F4A7C15ULL + now);
    bool assigned = false;
    for (Direction d : ranking) {
      const int di = port_index(d);
      if (link_taken[static_cast<std::size_t>(di)]) continue;
      if (!link_alive(d)) continue;
      link_taken[static_cast<std::size_t>(di)] = true;
      if (!progressive_dirs(f.dst).contains(d)) ++f.deflections;
      send_link(d, f);
      assigned = true;
      break;
    }
    assert(assigned && "Bless invariant: every flit gets a port");
    (void)assigned;
  }
}

}  // namespace dxbar
