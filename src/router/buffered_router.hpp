// Generic input-buffered baseline router (paper's "Buffered 4" and
// "Buffered 8").
//
// Three-stage pipeline (RC, speculative SA/ST, LT — Fig. 2(c)): an
// arriving flit is written into its input FIFO and becomes eligible for
// switch allocation one cycle later, giving the paper's 3-cycle per-hop
// latency.  Buffered 4 has one 4-flit FIFO per input; Buffered 8 has two
// 4-flit FIFOs per input ("split design") whose heads arbitrate
// independently, removing head-of-line blocking — the paper's fair
// double-buffer comparison point for DXbar.
#pragma once

#include <vector>

#include "alloc/separable_allocator.hpp"
#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class BufferedRouter final : public Router {
 public:
  /// `lanes_per_input` is 1 for Buffered 4 and 2 for Buffered 8.
  BufferedRouter(NodeId id, const RouterEnv& env, int lanes_per_input);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  /// Total buffer slots per input port == credits the upstream holds.
  [[nodiscard]] int buffer_slots_per_input() const noexcept {
    return lanes_per_input_ * depth_;
  }

  /// Batched lockstep entry point (see DXbarRouter::step_batch): same
  /// node across K replica lanes, devirtualized through the final class.
  static void step_batch(BufferedRouter* const* lanes, const Cycle* nows,
                         std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) lanes[i]->step(nows[i]);
  }

 private:
  struct Entry {
    Flit flit;
    Cycle ready = 0;  ///< first cycle the flit may bid for the switch
  };

  /// Lane index for (link dir d, sub-queue k).
  [[nodiscard]] int lane(int dir, int k) const noexcept {
    return dir * lanes_per_input_ + k;
  }

  int lanes_per_input_;
  int depth_;
  std::vector<FixedQueue<Entry>> lanes_;  ///< kNumLinkDirs * lanes_per_input
  SeparableAllocator allocator_;
};

}  // namespace dxbar
