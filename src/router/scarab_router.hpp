// SCARAB bufferless drop router (Hayenga, Enright Jerger & Lipasti,
// MICRO'09), the paper's second bufferless comparison point.
//
// Flits are minimally adaptively routed: a flit only ever takes a
// productive port.  When every productive port is taken by an older flit
// the loser is *dropped* and a NACK is sent to its source over a
// dedicated circuit-switched NACK network (modelled by the Network's
// NackSink), which retransmits the flit with its original age so it
// eventually wins.  Injection happens only when a productive port is
// free, so fresh flits are never dropped at their source.
#pragma once

#include "router/router.hpp"

namespace dxbar {

class ScarabRouter final : public Router {
 public:
  ScarabRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;

  /// Bufferless: nothing is resident between cycles.
  [[nodiscard]] int occupancy() const override { return 0; }
};

}  // namespace dxbar
