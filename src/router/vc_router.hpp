// Extension baseline: virtual-channel router with speculative switch
// allocation — the "generic VC-based router" family the paper's Fig 2
// pipelines describe (BW/RC, VA+speculative SA, ST, LT; look-ahead
// removes the dedicated RC cycle, leaving a 3-cycle per-hop pipeline
// like Buffered 4/8).
//
// Each input port has `num_vcs` FIFOs.  Per cycle each input nominates
// one eligible VC head (round-robin across VCs), the separable switch
// allocator matches inputs to outputs, and the winner then tries to
// claim a downstream VC credit — *after* winning, which is what makes
// the allocation speculative: a winner without a downstream credit
// wastes the output's cycle, the baseline inefficiency the paper's
// single-cycle DXbar pipeline avoids.
//
// Closed-loop request-reply runs partition the VCs into two virtual
// networks — requests claim downstream VCs in [0, num_vcs/2), replies
// in [num_vcs/2, num_vcs) — so a reply can never wait on a buffer
// occupied by a request and request-reply cycles cannot protocol
// deadlock (DESIGN.md section 12).  Single-class runs are untouched
// (the partition only activates for workload=closedloop).
#pragma once

#include <vector>

#include "alloc/arbiter.hpp"
#include "alloc/separable_allocator.hpp"
#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class VcRouter final : public Router {
 public:
  VcRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  // --- introspection for tests ---------------------------------------
  [[nodiscard]] std::uint64_t speculation_failures() const {
    return speculation_failures_;
  }
  [[nodiscard]] int vc_size(Direction d, int vc) const {
    return static_cast<int>(
        vcs_[static_cast<std::size_t>(port_index(d) * num_vcs_ + vc)].size());
  }

 private:
  struct Entry {
    Flit flit;
    Cycle ready = 0;
  };

  [[nodiscard]] int vc_index(int dir, int vc) const noexcept {
    return dir * num_vcs_ + vc;
  }

  /// Downstream-VC mask a flit of message class `cls` may claim.
  [[nodiscard]] std::uint32_t class_mask(std::uint8_t cls) const noexcept {
    if (!class_vcs_) return ~std::uint32_t{0};
    const int half = num_vcs_ / 2;
    const std::uint32_t lo = (1u << half) - 1u;
    return cls == 0 ? lo : ((1u << num_vcs_) - 1u) & ~lo;
  }

  int num_vcs_;
  int vc_depth_;
  bool class_vcs_;  ///< partition VCs by message class (closed loop)
  std::vector<FixedQueue<Entry>> vcs_;  ///< kNumLinkDirs * num_vcs_
  std::vector<RoundRobinArbiter> vc_pick_;  ///< per input dir
  std::vector<RoundRobinArbiter> out_vc_pick_;  ///< per output dir
  SeparableAllocator allocator_;
  std::uint64_t speculation_failures_ = 0;
};

}  // namespace dxbar
