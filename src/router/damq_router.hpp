// DAMQ shared-buffer router (dynamically allocated multi-queue, after
// Tamir & Frazier; the arXiv 0910.1852 lineage in PAPERS.md).
//
// One pool of kNumLinkDirs * buffer_depth flit slots is shared by all
// four input ports: each port keeps a logical FIFO (a linked list in
// hardware — the pointer overhead is charged by DamqBufferModel), and
// slots migrate to whichever input is actually loaded instead of being
// statically partitioned 4/4/4/4 like Buffered 4.  At equal storage the
// win is burst absorption: one congested input may claim up to
// 1 + (pool - live_ports) slots while idle inputs shrink to zero.
//
// Flow control is credit-based over the shared pool.  The router is the
// single allocator: upstream links start with zero credits and the
// router *grants* credits one at a time (Channel::return_credit) only
// while it can guarantee a slot.  The accounting invariant is
//
//     sum_d claim(d) <= pool,   claim(d) = queued(d) + outstanding(d)
//
// where outstanding(d) counts granted credits not yet consumed by an
// arrival (held upstream or riding the 2-cycle link).  Arrivals only
// happen against outstanding credits, so overflow is impossible by
// construction — no on/off stop races, no escape valve needed.
//
// Per-port reservation (the anti-monopolization rule): each live input
// owns a private region of window() = min(kGrantWindow, depth) slots;
// only claims beyond it draw from the shared region of
// pool - live_ports * window() slots.  The private region is sized to
// the grant window deliberately: grants are speculative (the router
// cannot see whether the upstream has traffic), so an idle neighbour
// parks up to window() granted credits indefinitely — reserving exactly
// that much per port means parked credits can never eat shared space,
// and the shared region is consumed only by *queued* flits, i.e. by
// demonstrated demand.  (Reserving less causes congestion collapse:
// idle-port credit parking shrinks the effective pool to a fraction of
// its size and throughput falls off a cliff past the knee.)  A port
// under its private window can always be granted — a hot neighbour can
// monopolize the shared region but never starve another port of its
// guaranteed slots, which preserves the Buffered-4 forward-progress
// precondition (every input eventually accepts) that the closed-loop
// deadlock-freedom argument builds on (DESIGN.md sections 12/14).
//
// Like the other credit-based designs, DAMQ has no deflection escape
// valve, so SimConfig::validate() forbids it on tori and degraded
// (link-fault) topologies where turn-model acyclicity is lost.
#pragma once

#include <array>
#include <vector>

#include "alloc/separable_allocator.hpp"
#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class DamqRouter final : public Router {
 public:
  DamqRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  /// Total shared slots (the whole pool; hardware provisions the SRAM
  /// regardless of how many mesh-edge ports exist).
  [[nodiscard]] int pool_slots() const noexcept { return pool_; }
  /// Slots currently held by input port d's logical FIFO.
  [[nodiscard]] int queued(int d) const noexcept {
    return static_cast<int>(queues_[static_cast<std::size_t>(d)].size());
  }
  /// Credits granted to upstream d and not yet consumed by an arrival.
  [[nodiscard]] int outstanding(int d) const noexcept {
    return outstanding_[static_cast<std::size_t>(d)];
  }

  /// Batched lockstep entry point (see DXbarRouter::step_batch).
  static void step_batch(DamqRouter* const* lanes, const Cycle* nows,
                         std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) lanes[i]->step(nows[i]);
  }

  /// Credits an upstream may hold at once: enough to cover the
  /// grant-post + link round trip (credit usable next cycle, flit lands
  /// two cycles after the send) so a granted stream never stalls on
  /// grant latency, and small enough that idle ports hold back almost
  /// nothing from the shared region.
  static constexpr int kGrantWindow = 3;

 private:
  struct Entry {
    Flit flit;
    Cycle ready = 0;  ///< first cycle the flit may bid for the switch
  };

  [[nodiscard]] bool live(int d) const noexcept {
    return env_.in_links[static_cast<std::size_t>(d)] != nullptr;
  }
  [[nodiscard]] int claim(int d) const noexcept {
    return queued(d) + outstanding_[static_cast<std::size_t>(d)];
  }
  /// Private-region size per live port (the grant window, clamped so a
  /// 1-deep pool still partitions cleanly).
  [[nodiscard]] int window() const noexcept {
    return kGrantWindow < depth_ ? kGrantWindow : depth_;
  }
  /// Claims beyond each live port's private region.
  [[nodiscard]] int shared_used() const noexcept;
  [[nodiscard]] bool can_grant(int d) const noexcept;
  /// Posts every credit the invariant allows, round-robin across ports
  /// so no input is structurally favoured when the pool runs low.
  void grant_credits();

  int depth_;   ///< per-port slots at the Buffered-4-equivalent budget
  int pool_;    ///< kNumLinkDirs * depth_
  int shared_;  ///< pool_ minus window() reserved slots per live input
  std::array<FixedQueue<Entry>, kNumLinkDirs> queues_;
  std::array<int, kNumLinkDirs> outstanding_{};
  int grant_rr_ = 0;  ///< round-robin start of the grant sweep
  SeparableAllocator allocator_;
};

}  // namespace dxbar
