// Minimally-buffered deflection router (after Fallin et al.'s MinBD).
//
// The substrate is Flit-Bless — oldest-first port assignment over all
// live links, non-productive assignments are deflections, no credits,
// no stop signals — plus one small *side buffer* shared by the whole
// router.  Each cycle at most one flit that is about to be deflected is
// captured into the side buffer instead of bouncing onto a link; each
// cycle at most one side-buffered flit is *redirected* back into the
// pipeline when an input slot is free.  The buffer thus converts
// deflections (link energy + extra hops) into cheap local storage while
// staying far smaller than an input-buffered design: its only storage
// is `buffer_depth` flit slots per router, charged by SideBufferModel
// together with the redirection mux that feeds captures/redirects past
// the four link inputs.
//
// Starvation escape: deflection alone guarantees each flit *moves* every
// cycle but not that it arrives; buffering adds the second hazard of a
// flit parking indefinitely.  Both are closed by the golden-flit rule —
// a rotating packet-id residue class is "golden" for a 256-cycle epoch;
// golden flits sort ahead of all others (so they take the most
// productive free port) and are never captured into the side buffer.
// Every packet is eventually golden, and a golden flit makes strictly
// productive progress whenever one of its productive ports is free,
// which the oldest-first sort guarantees it wins first.
//
// MinBD keeps the full deflection escape valve, so unlike the credit
// designs it remains legal on tori and link-degraded meshes.
#pragma once

#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class MinBDRouter final : public Router {
 public:
  MinBDRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  /// Flits currently parked in the side buffer.
  [[nodiscard]] int side_occupancy() const noexcept {
    return static_cast<int>(side_.size());
  }

  /// A flit's packet is golden when its id falls in the rotating
  /// residue class of the current 256-cycle epoch.
  [[nodiscard]] static bool is_golden(const Flit& f, Cycle now) noexcept {
    return (f.packet & 7) == ((now >> 8) & 7);
  }

  /// Batched lockstep entry point (see DXbarRouter::step_batch).
  static void step_batch(MinBDRouter* const* lanes, const Cycle* nows,
                         std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) lanes[i]->step(nows[i]);
  }

 private:
  int degree_ = 0;               ///< live out-links (== live in-links)
  FixedQueue<Flit> side_;        ///< the shared side buffer
};

}  // namespace dxbar
