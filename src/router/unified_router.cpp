#include "router/unified_router.hpp"

#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {

UnifiedRouter::UnifiedRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      buffers_{FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth))},
      fairness_(env.cfg->fairness_threshold) {}

std::uint32_t UnifiedRouter::request_mask(const Flit& f,
                                          bool ignore_stop) const {
  std::uint32_t mask = 0;
  for (Direction d : routes(f.dst)) {
    if (d == Direction::Local ||
        (ignore_stop ? can_send_ignoring_stop(d) : can_send(d))) {
      mask |= 1u << port_index(d);
    }
  }
  return mask;
}

void UnifiedRouter::depart(Flit f, int out) {
  env_.energy->crossbar_traversal();
  if (port_from_index(out) == Direction::Local) {
    eject(f);
  } else {
    send_link(port_from_index(out), f);
  }
}

void UnifiedRouter::step(Cycle now) {
  (void)now;

  // ---- build the dual-candidate request of every input port ----------
  std::array<UnifiedPortRequest, kNumPorts> req{};
  for (int d = 0; d < kNumLinkDirs; ++d) {
    const auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      // An arrival whose FIFO is full cannot be absorbed: elevate its
      // priority so the allocator strongly prefers granting it a port
      // (the post-pass below guarantees one in any case).
      const bool must_win = buffers_[static_cast<std::size_t>(d)].full();
      req[static_cast<std::size_t>(d)].incoming = {
          true, request_mask(*arrival, must_win), arrival->born_at, must_win};
    }
    const auto& buf = buffers_[static_cast<std::size_t>(d)];
    if (!buf.empty()) {
      // A head denied for stall_escape_delay cycles may request stopped
      // (full) receivers too; their must-win logic keeps it moving.
      const bool escalate =
          head_wait_[static_cast<std::size_t>(d)] >= env_.cfg->stall_escape_delay;
      req[static_cast<std::size_t>(d)].buffered = {
          true, request_mask(buf.front(), escalate), buf.front().born_at,
          false};
    }
  }
  // Port 4 carries only the (unbuffered) PE injection flit.
  const bool have_injection = source != nullptr && !source->empty();
  if (have_injection) {
    req[kNumPorts - 1].buffered = {
        true,
        request_mask(source->front(), injection_wait_ >= env_.cfg->stall_escape_delay),
        source->front().born_at, false};
  }

  bool waiting_exists = have_injection;
  for (const auto& b : buffers_) waiting_exists = waiting_exists || !b.empty();

  // ---- allocate --------------------------------------------------------
  const bool flipped = fairness_.flipped();
  UnifiedGrants grants = allocator_.allocate(req, !flipped);
  swap_count_ += static_cast<std::uint64_t>(grants.swaps);

  // ---- overflow escape valve -------------------------------------------
  // An ungranted arrival with a full FIFO must leave through the crossbar
  // this cycle: give it a free output, or steal one granted to a buffered
  // flit (which simply stays in its FIFO).  At most 3 other arrivals can
  // hold grants, so a port is always recoverable.
  std::array<bool, kNumPorts> out_used{};
  for (int p = 0; p < kNumPorts; ++p) {
    const UnifiedPortGrant& g = grants.port[static_cast<std::size_t>(p)];
    if (g.incoming_out >= 0) out_used[static_cast<std::size_t>(g.incoming_out)] = true;
    if (g.buffered_out >= 0) out_used[static_cast<std::size_t>(g.buffered_out)] = true;
  }
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    UnifiedPortGrant& g = grants.port[static_cast<std::size_t>(d)];
    if (!arrival.has_value() || g.incoming_out >= 0 ||
        !buffers_[static_cast<std::size_t>(d)].full()) {
      continue;
    }
    const auto ranking = deflection_order(
        *arrival, arrival->packet * 0x9E3779B97F4A7C15ULL);
    int escape = -1;
    for (Direction dir : ranking) {
      const int o = port_index(dir);
      if (!env_.mesh->has_link(id_, dir)) continue;
      if (!out_used[static_cast<std::size_t>(o)] &&
          can_send_ignoring_stop(dir)) {
        escape = o;
        break;
      }
    }
    if (escape < 0) {
      // Steal a link output granted to a buffered flit.
      for (int p = 0; p < kNumPorts && escape < 0; ++p) {
        UnifiedPortGrant& victim = grants.port[static_cast<std::size_t>(p)];
        if (victim.buffered_out >= 0 &&
            victim.buffered_out != port_index(Direction::Local) &&
            env_.mesh->has_link(id_, port_from_index(victim.buffered_out))) {
          escape = victim.buffered_out;
          victim.buffered_out = -1;
        }
      }
    }
    assert(escape >= 0 && "overflow escape must recover an output port");
    if (!is_productive(*env_.mesh, id_, arrival->dst,
                       port_from_index(escape))) {
      ++arrival->deflections;
    }
    g.incoming_out = escape;
    out_used[static_cast<std::size_t>(escape)] = true;
    ++overflow_deflections_;
  }

  // ---- apply grants ------------------------------------------------------
  bool waiting_won = false;
  bool incoming_won = false;
  for (int p = 0; p < kNumPorts; ++p) {
    const UnifiedPortGrant& g = grants.port[static_cast<std::size_t>(p)];
    if (g.incoming_out >= 0 && g.buffered_out >= 0) ++dual_grant_cycles_;

    const bool head_present =
        p == kNumPorts - 1
            ? have_injection
            : !buffers_[static_cast<std::size_t>(p)].empty();
    int& wait = p == kNumPorts - 1
                    ? injection_wait_
                    : head_wait_[static_cast<std::size_t>(p)];
    if (g.buffered_out >= 0) {
      Flit f;
      if (p == kNumPorts - 1) {
        f = source->pop_front();
      } else {
        f = buffers_[static_cast<std::size_t>(p)].pop();
        env_.energy->buffer_read();
        return_credit(port_from_index(p));
      }
      wait = 0;
      depart(f, g.buffered_out);
      waiting_won = true;
    } else if (head_present) {
      ++wait;
    }

    if (p < kNumLinkDirs) {
      auto& arrival = in[static_cast<std::size_t>(p)];
      if (arrival.has_value()) {
        if (g.incoming_out >= 0) {
          return_credit(port_from_index(p));
          depart(*arrival, g.incoming_out);
          incoming_won = true;
        } else {
          const bool ok = buffers_[static_cast<std::size_t>(p)].push(*arrival);
          assert(ok && "escape valve must cover full-FIFO arrivals");
          (void)ok;
          env_.energy->buffer_write();
        }
        arrival.reset();
      }
    }
  }

  fairness_.record(waiting_exists, waiting_won, incoming_won);

  // On/off flow control toward upstream; the escape valve above covers
  // the flits already in flight when a FIFO fills.
  for (int d = 0; d < kNumLinkDirs; ++d) {
    Channel* ch = env_.in_links[static_cast<std::size_t>(d)];
    if (ch != nullptr) {
      ch->set_stop(buffers_[static_cast<std::size_t>(d)].full());
    }
  }
}

int UnifiedRouter::occupancy() const {
  int n = 0;
  for (const auto& b : buffers_) n += static_cast<int>(b.size());
  return n;
}

void UnifiedRouter::save_state(SnapshotWriter& w) const {
  for (const auto& b : buffers_) save_fixed_queue(w, b, save_flit);
  fairness_.save(w);
  for (int hw : head_wait_) w.i32(hw);
  w.i32(injection_wait_);
  w.u64(swap_count_);
  w.u64(dual_grant_cycles_);
  w.u64(overflow_deflections_);
}

void UnifiedRouter::load_state(SnapshotReader& r) {
  for (auto& b : buffers_) load_fixed_queue(r, b, load_flit);
  fairness_.load(r);
  for (int& hw : head_wait_) hw = r.i32();
  injection_wait_ = r.i32();
  swap_count_ = r.u64();
  dual_grant_cycles_ = r.u64();
  overflow_deflections_ = r.u64();
}

}  // namespace dxbar
