#include "router/dxbar_router.hpp"

#include <algorithm>
#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {
namespace {

/// An arbitration candidate: where the flit currently sits.  Holds a
/// pointer into the input register / FIFO head / injection front —
/// all stable for the duration of one router step — so building and
/// sorting candidate sets never copies Flit payloads.
struct Candidate {
  enum class Kind { Incoming, BufferHead, Injection };
  Kind kind;
  int dir;  ///< input link index for Incoming/BufferHead; unused otherwise
  const Flit* flit;
};

void sort_by_age(SmallVec<Candidate, kNumPorts>& v) {
  insertion_sort(v, [](const Candidate& a, const Candidate& b) {
    return a.flit->older_than(*b.flit);
  });
}

}  // namespace

DXbarRouter::DXbarRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      buffers_{FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth))},
      fairness_(env.cfg->fairness_threshold) {}

std::optional<Direction> DXbarRouter::pick_output(const Flit& f,
                                                  AllocState& st,
                                                  bool ignore_stop) {
  for (Direction d : routes(f.dst)) {
    const int i = port_index(d);
    if (st.taken[static_cast<std::size_t>(i)]) {
      continue;
    }
    if (d != Direction::Local &&
        !(ignore_stop ? can_send_ignoring_stop(d) : can_send(d))) {
      continue;
    }
    st.taken[static_cast<std::size_t>(i)] = true;
    return d;
  }
  ++contention_stalls_;
  return std::nullopt;
}

void DXbarRouter::divert_to_buffer(Direction from, const Flit& f) {
  const std::size_t i = static_cast<std::size_t>(port_index(from));
  const bool ok = buffers_[i].push(f);
  assert(ok && "divert_to_buffer requires a free slot");
  (void)ok;
  ++buffered_count_;
  env_.energy->buffer_write();
  ++buffered_diversions_;
  // On/off flow control, maintained on full/non-full transitions: tell
  // the upstream neighbour to pause while this FIFO is full.  The
  // one-cycle signal delay means up to two in-flight flits can still
  // land on a full FIFO; deflect() covers that race.
  if (buffers_[i].full() && env_.in_links[i] != nullptr) {
    env_.in_links[i]->set_stop(true);
  }
}

void DXbarRouter::deflect(Flit f, AllocState& st, bool via_primary) {
  // Bufferless escape valve: a losing flit whose FIFO is full takes the
  // best free link port (productive first).  An assignment always exists
  // because at most `degree` incoming flits contend and the must-deflect
  // flits are placed before any lower-priority phase can claim ports.
  const auto ranking =
      deflection_order(f, f.packet * 0x9E3779B97F4A7C15ULL + f.hops);
  for (Direction d : ranking) {
    const int i = port_index(d);
    if (st.taken[static_cast<std::size_t>(i)]) continue;
    if (!link_alive(d) || !can_send_ignoring_stop(d)) continue;
    st.taken[static_cast<std::size_t>(i)] = true;
    if (!progressive_dirs(f.dst).contains(d)) ++f.deflections;
    env_.energy->crossbar_traversal();
    if (via_primary) {
      ++primary_traversals_;
    } else {
      ++secondary_traversals_;
    }
    ++overflow_deflections_;
    send_link(d, f);
    return;
  }
  assert(false && "deflection escape must always find a port");
}

bool DXbarRouter::any_waiting() const {
  return buffered_count_ != 0 || (source != nullptr && !source->empty());
}

bool DXbarRouter::serve_waiting(AllocState& st, bool via_primary) {
  SmallVec<Candidate, kNumPorts> waiting;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    if (!buffers_[static_cast<std::size_t>(d)].empty()) {
      waiting.push_back({Candidate::Kind::BufferHead, d,
                         &buffers_[static_cast<std::size_t>(d)].front()});
    }
  }
  if (source != nullptr && !source->empty()) {
    waiting.push_back({Candidate::Kind::Injection, -1, &source->front()});
  }
  if (waiting.empty()) return false;
  sort_by_age(waiting);

  bool won = false;
  for (const Candidate& c : waiting) {
    // A head denied for stall_escape_delay cycles overrides stop signals
    // (the stopped receiver's must-win logic keeps the flit moving).
    int& wait = c.kind == Candidate::Kind::BufferHead
                    ? head_wait_[static_cast<std::size_t>(c.dir)]
                    : injection_wait_;
    const auto out =
        pick_output(*c.flit, st, wait >= env_.cfg->stall_escape_delay);
    if (!out) {
      ++wait;
      continue;
    }
    wait = 0;
    Flit f;
    if (c.kind == Candidate::Kind::BufferHead) {
      f = pop_buffer(static_cast<std::size_t>(c.dir));
      env_.energy->buffer_read();
    } else {
      // pop_front stamps the injection cycle; use the stamped flit.
      f = source->pop_front();
    }
    env_.energy->crossbar_traversal();
    if (via_primary) {
      ++primary_traversals_;
    } else {
      ++secondary_traversals_;
    }
    if (*out == Direction::Local) {
      eject(f);
    } else {
      send_link(*out, f);
    }
    won = true;
  }
  return won;
}

void DXbarRouter::step_normal(Cycle now, bool secondary_usable) {
  (void)now;
  AllocState st;

  // Incoming flits split by whether their FIFO could still absorb them:
  // a flit with a full FIFO must win *some* port this cycle (deflection
  // as the last resort), so it is placed before every other phase.
  SmallVec<Candidate, kNumPorts> must_win;
  SmallVec<Candidate, kNumPorts> incoming;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    const auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    // Input registers are cleared in one sweep at the end of the step,
    // after every candidate referencing them has been consumed.
    Candidate c{Candidate::Kind::Incoming, d, &*arrival};
    if (buffers_[static_cast<std::size_t>(d)].full()) {
      must_win.push_back(c);
    } else {
      incoming.push_back(c);
    }
  }
  sort_by_age(must_win);
  sort_by_age(incoming);

  const bool waiting_exists = any_waiting();
  const bool flipped = fairness_.flipped();
  bool waiting_won = false;
  bool incoming_won = false;

  for (const Candidate& c : must_win) {
    if (const auto out = pick_output(*c.flit, st, /*ignore_stop=*/true)) {
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      incoming_won = true;
      if (*out == Direction::Local) {
        eject(*c.flit);
      } else {
        send_link(*out, *c.flit);
      }
    } else {
      deflect(*c.flit, st, /*via_primary=*/true);
    }
  }

  // Fairness flip: buffered/injection flits are allocated output ports
  // ahead of the (bufferable) incoming flits this cycle.
  if (flipped && secondary_usable && waiting_exists) {
    waiting_won = serve_waiting(st, /*via_primary=*/false);
  }

  for (const Candidate& c : incoming) {
    const auto out = pick_output(*c.flit, st);
    if (out) {
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      if (*out == Direction::Local) {
        eject(*c.flit);
      } else {
        send_link(*out, *c.flit);
      }
      incoming_won = true;
    } else {
      divert_to_buffer(port_from_index(c.dir), *c.flit);
    }
  }
  for (int d = 0; d < kNumLinkDirs; ++d) {
    in[static_cast<std::size_t>(d)].reset();
  }

  // Re-probe instead of reusing waiting_exists: the incoming loop above
  // may have just diverted a loser into a FIFO, and that head may still
  // depart through the secondary crossbar in the same cycle (Fig. 3(d)).
  if (!flipped && secondary_usable && any_waiting()) {
    waiting_won = serve_waiting(st, /*via_primary=*/false);
  }

  fairness_.record(waiting_exists, waiting_won, incoming_won);
}

void DXbarRouter::step_buffered_only(Cycle now) {
  (void)now;
  AllocState st;

  // 1. Incoming flits that cannot be absorbed must win a port now; with
  //    the primary crossbar dead they traverse the secondary (register
  //    bypass around the full FIFO) or deflect through it.
  SmallVec<Candidate, kNumPorts> must_win;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    const auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    if (buffers_[static_cast<std::size_t>(d)].full()) {
      must_win.push_back({Candidate::Kind::Incoming, d, &*arrival});
    }
  }
  sort_by_age(must_win);
  for (const Candidate& c : must_win) {
    if (const auto out = pick_output(*c.flit, st, /*ignore_stop=*/true)) {
      env_.energy->crossbar_traversal();
      ++secondary_traversals_;
      if (*out == Direction::Local) {
        eject(*c.flit);
      } else {
        send_link(*out, *c.flit);
      }
    } else {
      deflect(*c.flit, st, /*via_primary=*/false);
    }
  }
  // Clear the must-win arrivals before step 3 demuxes the rest.
  for (const Candidate& c : must_win) {
    in[static_cast<std::size_t>(c.dir)].reset();
  }

  // 2. FIFO heads and injection drain through the secondary crossbar.
  serve_waiting(st, /*via_primary=*/false);

  // 3. Remaining arrivals are demuxed into their FIFOs.
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      divert_to_buffer(port_from_index(d), *arrival);
      arrival.reset();
    }
  }
}

void DXbarRouter::step_primary_only(Cycle now) {
  (void)now;
  AllocState st;

  // The 2x2 steering crossbars admit one flit per input line into the
  // primary crossbar: normally the incoming flit; the FIFO head when the
  // fairness counter has flipped priority (never when the FIFO is full —
  // the arrival must then be the candidate so it can win or deflect).
  const bool waiting_exists = any_waiting();
  const bool prefer_buffer = fairness_.flipped();

  SmallVec<Candidate, kNumPorts> line;
  std::array<bool, kNumLinkDirs> line_used{};
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    const auto& buf = buffers_[static_cast<std::size_t>(d)];
    const bool have_buf = !buf.empty();
    if (arrival.has_value() && (!prefer_buffer || !have_buf || buf.full())) {
      // Cleared in the sweep after the line loop, once consumed.
      line.push_back({Candidate::Kind::Incoming, d, &*arrival});
      line_used[static_cast<std::size_t>(d)] = true;
    } else if (have_buf) {
      line.push_back({Candidate::Kind::BufferHead, d, &buf.front()});
      line_used[static_cast<std::size_t>(d)] = true;
      // A displaced arrival joins the FIFO behind the head (the FIFO is
      // known non-full here; FixedQueue pushes never move the head slot,
      // so the BufferHead pointer stays valid).
      if (arrival.has_value()) {
        divert_to_buffer(port_from_index(d), *arrival);
        arrival.reset();
      }
    }
  }
  sort_by_age(line);

  bool waiting_won = false;
  bool incoming_won = false;
  for (const Candidate& c : line) {
    const bool is_head = c.kind == Candidate::Kind::BufferHead;
    const bool escalate =
        is_head &&
        head_wait_[static_cast<std::size_t>(c.dir)] >= env_.cfg->stall_escape_delay;
    const auto out = pick_output(*c.flit, st, escalate);
    if (out) {
      Flit f = *c.flit;
      if (is_head) {
        f = pop_buffer(static_cast<std::size_t>(c.dir));
        env_.energy->buffer_read();
        head_wait_[static_cast<std::size_t>(c.dir)] = 0;
        waiting_won = true;
      } else {
        incoming_won = true;
      }
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      if (*out == Direction::Local) {
        eject(f);
      } else {
        send_link(*out, f);
      }
    } else if (c.kind == Candidate::Kind::Incoming) {
      if (!buffers_[static_cast<std::size_t>(c.dir)].full()) {
        divert_to_buffer(port_from_index(c.dir), *c.flit);
      } else {
        deflect(*c.flit, st, /*via_primary=*/true);
      }
    } else {
      ++head_wait_[static_cast<std::size_t>(c.dir)];
    }
  }
  for (const Candidate& c : line) {
    if (c.kind == Candidate::Kind::Incoming) {
      in[static_cast<std::size_t>(c.dir)].reset();
    }
  }

  // Injection borrows an idle input line of the primary crossbar.
  bool line_free = false;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    if (!line_used[static_cast<std::size_t>(d)]) line_free = true;
  }
  if (line_free && source != nullptr && !source->empty()) {
    const auto out = pick_output(source->front(), st);
    if (out) {
      Flit f = source->pop_front();
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      waiting_won = true;
      if (*out == Direction::Local) {
        eject(f);
      } else {
        send_link(*out, f);
      }
    }
  }

  fairness_.record(waiting_exists, waiting_won, incoming_won);
}

Flit DXbarRouter::pop_buffer(std::size_t dir) {
  FixedQueue<Flit>& buf = buffers_[dir];
  const bool was_full = buf.full();
  Flit f = buf.pop();
  --buffered_count_;
  // Counterpart of the transition in divert_to_buffer: a pop from a full
  // FIFO frees a slot, so release the upstream stop signal.  Channel's
  // set_stop latches only the final value of a cycle, so intra-cycle
  // assert/release pairs net out exactly like the old end-of-step scan.
  if (was_full && env_.in_links[dir] != nullptr) {
    env_.in_links[dir]->set_stop(false);
  }
  return f;
}

void DXbarRouter::step(Cycle now) {
  // Flit-free fast path: with no arrival registers occupied, no buffered
  // flits, and nothing to inject, every operating mode is a no-op —
  // candidate sets come out empty, fairness_.record(waiting=false, ...)
  // does not change state, and the stop signals were already deasserted
  // by the step that drained the last buffered flit (a full FIFO implies
  // buffered_count_ > 0, so stop can never be pending while idle).
  if (buffered_count_ == 0 && (source == nullptr || source->empty()) &&
      !in[0].has_value() && !in[1].has_value() && !in[2].has_value() &&
      !in[3].has_value()) {
    return;
  }

  // On/off backpressure needs no per-step pass here: stop signals are
  // maintained on FIFO full/non-full transitions inside pop_buffer and
  // divert_to_buffer.
  const RouterFault& fault = env_.faults->at(id_);
  if (!fault.faulty || !env_.faults->manifest(id_, now)) {
    step_normal(now, /*secondary_usable=*/true);
    return;
  }

  if (fault.failed == CrossbarKind::Primary) {
    // With the primary crossbar dead, incoming flits are demuxed into
    // the FIFOs whether or not BIST has fired yet; the secondary keeps
    // the router alive as a plain buffered router.
    step_buffered_only(now);
    return;
  }

  // Secondary crossbar failed.  Until detection the allocator still
  // diverts losers into the FIFOs (the write path is intact) but the
  // FIFOs cannot drain; after detection the steering crossbars feed the
  // primary from the FIFO heads.
  if (env_.faults->detected(id_, now)) {
    step_primary_only(now);
  } else {
    step_normal(now, /*secondary_usable=*/false);
  }
}

int DXbarRouter::occupancy() const { return buffered_count_; }

void DXbarRouter::save_state(SnapshotWriter& w) const {
  for (const auto& b : buffers_) save_fixed_queue(w, b, save_flit);
  w.i32(buffered_count_);
  fairness_.save(w);
  for (int hw : head_wait_) w.i32(hw);
  w.i32(injection_wait_);
  w.u64(primary_traversals_);
  w.u64(secondary_traversals_);
  w.u64(buffered_diversions_);
  w.u64(contention_stalls_);
  w.u64(overflow_deflections_);
}

void DXbarRouter::load_state(SnapshotReader& r) {
  for (auto& b : buffers_) load_fixed_queue(r, b, load_flit);
  buffered_count_ = r.i32();
  fairness_.load(r);
  for (int& hw : head_wait_) hw = r.i32();
  injection_wait_ = r.i32();
  primary_traversals_ = r.u64();
  secondary_traversals_ = r.u64();
  buffered_diversions_ = r.u64();
  contention_stalls_ = r.u64();
  overflow_deflections_ = r.u64();
}

}  // namespace dxbar
