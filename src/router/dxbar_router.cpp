#include "router/dxbar_router.hpp"

#include <algorithm>
#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {
namespace {

/// An arbitration candidate: where the flit currently sits.
struct Candidate {
  enum class Kind { Incoming, BufferHead, Injection };
  Kind kind;
  int dir;  ///< input link index for Incoming/BufferHead; unused otherwise
  Flit flit;
};

void sort_by_age(SmallVec<Candidate, kNumPorts>& v) {
  insertion_sort(v, [](const Candidate& a, const Candidate& b) {
    return a.flit.older_than(b.flit);
  });
}

}  // namespace

DXbarRouter::DXbarRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      buffers_{FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth))},
      fairness_(env.cfg->fairness_threshold) {}

std::optional<Direction> DXbarRouter::pick_output(const Flit& f,
                                                  AllocState& st,
                                                  bool ignore_stop) {
  for (Direction d : routes(f.dst)) {
    const int i = port_index(d);
    if (st.taken[static_cast<std::size_t>(i)]) {
      continue;
    }
    if (d != Direction::Local &&
        !(ignore_stop ? can_send_ignoring_stop(d) : can_send(d))) {
      continue;
    }
    st.taken[static_cast<std::size_t>(i)] = true;
    return d;
  }
  ++contention_stalls_;
  return std::nullopt;
}

void DXbarRouter::divert_to_buffer(Direction from, const Flit& f) {
  const bool ok = buffers_[port_index(from)].push(f);
  assert(ok && "divert_to_buffer requires a free slot");
  (void)ok;
  env_.energy->buffer_write();
  ++buffered_diversions_;
}

void DXbarRouter::deflect(Flit f, AllocState& st, bool via_primary) {
  // Bufferless escape valve: a losing flit whose FIFO is full takes the
  // best free link port (productive first).  An assignment always exists
  // because at most `degree` incoming flits contend and the must-deflect
  // flits are placed before any lower-priority phase can claim ports.
  const auto ranking =
      deflection_order(f, f.packet * 0x9E3779B97F4A7C15ULL + f.hops);
  for (Direction d : ranking) {
    const int i = port_index(d);
    if (st.taken[static_cast<std::size_t>(i)]) continue;
    if (!link_alive(d) || !can_send_ignoring_stop(d)) continue;
    st.taken[static_cast<std::size_t>(i)] = true;
    if (!progressive_dirs(f.dst).contains(d)) ++f.deflections;
    env_.energy->crossbar_traversal();
    if (via_primary) {
      ++primary_traversals_;
    } else {
      ++secondary_traversals_;
    }
    ++overflow_deflections_;
    send_link(d, f);
    return;
  }
  assert(false && "deflection escape must always find a port");
}

bool DXbarRouter::any_waiting() const {
  for (const auto& b : buffers_) {
    if (!b.empty()) return true;
  }
  return source != nullptr && !source->empty();
}

bool DXbarRouter::serve_waiting(AllocState& st, bool via_primary) {
  SmallVec<Candidate, kNumPorts> waiting;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    if (!buffers_[static_cast<std::size_t>(d)].empty()) {
      waiting.push_back({Candidate::Kind::BufferHead, d,
                         buffers_[static_cast<std::size_t>(d)].front()});
    }
  }
  if (source != nullptr && !source->empty()) {
    waiting.push_back({Candidate::Kind::Injection, -1, source->front()});
  }
  if (waiting.empty()) return false;
  sort_by_age(waiting);

  bool won = false;
  for (const Candidate& c : waiting) {
    // A head denied for stall_escape_delay cycles overrides stop signals
    // (the stopped receiver's must-win logic keeps the flit moving).
    int& wait = c.kind == Candidate::Kind::BufferHead
                    ? head_wait_[static_cast<std::size_t>(c.dir)]
                    : injection_wait_;
    const auto out = pick_output(c.flit, st, wait >= env_.cfg->stall_escape_delay);
    if (!out) {
      ++wait;
      continue;
    }
    wait = 0;
    Flit f;
    if (c.kind == Candidate::Kind::BufferHead) {
      f = buffers_[static_cast<std::size_t>(c.dir)].pop();
      env_.energy->buffer_read();
    } else {
      // pop_front stamps the injection cycle; use the stamped flit.
      f = source->pop_front();
    }
    env_.energy->crossbar_traversal();
    if (via_primary) {
      ++primary_traversals_;
    } else {
      ++secondary_traversals_;
    }
    if (*out == Direction::Local) {
      eject(f);
    } else {
      send_link(*out, f);
    }
    won = true;
  }
  return won;
}

void DXbarRouter::step_normal(Cycle now, bool secondary_usable) {
  (void)now;
  AllocState st;

  // Incoming flits split by whether their FIFO could still absorb them:
  // a flit with a full FIFO must win *some* port this cycle (deflection
  // as the last resort), so it is placed before every other phase.
  SmallVec<Candidate, kNumPorts> must_win;
  SmallVec<Candidate, kNumPorts> incoming;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    Candidate c{Candidate::Kind::Incoming, d, *arrival};
    arrival.reset();
    if (buffers_[static_cast<std::size_t>(d)].full()) {
      must_win.push_back(c);
    } else {
      incoming.push_back(c);
    }
  }
  sort_by_age(must_win);
  sort_by_age(incoming);

  const bool waiting_exists = any_waiting();
  const bool flipped = fairness_.flipped();
  bool waiting_won = false;
  bool incoming_won = false;

  for (const Candidate& c : must_win) {
    if (const auto out = pick_output(c.flit, st, /*ignore_stop=*/true)) {
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      incoming_won = true;
      if (*out == Direction::Local) {
        eject(c.flit);
      } else {
        send_link(*out, c.flit);
      }
    } else {
      deflect(c.flit, st, /*via_primary=*/true);
    }
  }

  // Fairness flip: buffered/injection flits are allocated output ports
  // ahead of the (bufferable) incoming flits this cycle.
  if (flipped && secondary_usable) {
    waiting_won = serve_waiting(st, /*via_primary=*/false);
  }

  for (const Candidate& c : incoming) {
    const auto out = pick_output(c.flit, st);
    if (out) {
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      if (*out == Direction::Local) {
        eject(c.flit);
      } else {
        send_link(*out, c.flit);
      }
      incoming_won = true;
    } else {
      divert_to_buffer(port_from_index(c.dir), c.flit);
    }
  }

  if (!flipped && secondary_usable) {
    waiting_won = serve_waiting(st, /*via_primary=*/false);
  }

  fairness_.record(waiting_exists, waiting_won, incoming_won);
}

void DXbarRouter::step_buffered_only(Cycle now) {
  (void)now;
  AllocState st;

  // 1. Incoming flits that cannot be absorbed must win a port now; with
  //    the primary crossbar dead they traverse the secondary (register
  //    bypass around the full FIFO) or deflect through it.
  SmallVec<Candidate, kNumPorts> must_win;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    if (buffers_[static_cast<std::size_t>(d)].full()) {
      must_win.push_back({Candidate::Kind::Incoming, d, *arrival});
      arrival.reset();
    }
  }
  sort_by_age(must_win);
  for (const Candidate& c : must_win) {
    if (const auto out = pick_output(c.flit, st, /*ignore_stop=*/true)) {
      env_.energy->crossbar_traversal();
      ++secondary_traversals_;
      if (*out == Direction::Local) {
        eject(c.flit);
      } else {
        send_link(*out, c.flit);
      }
    } else {
      deflect(c.flit, st, /*via_primary=*/false);
    }
  }

  // 2. FIFO heads and injection drain through the secondary crossbar.
  serve_waiting(st, /*via_primary=*/false);

  // 3. Remaining arrivals are demuxed into their FIFOs.
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      divert_to_buffer(port_from_index(d), *arrival);
      arrival.reset();
    }
  }
}

void DXbarRouter::step_primary_only(Cycle now) {
  (void)now;
  AllocState st;

  // The 2x2 steering crossbars admit one flit per input line into the
  // primary crossbar: normally the incoming flit; the FIFO head when the
  // fairness counter has flipped priority (never when the FIFO is full —
  // the arrival must then be the candidate so it can win or deflect).
  const bool waiting_exists = any_waiting();
  const bool prefer_buffer = fairness_.flipped();

  SmallVec<Candidate, kNumPorts> line;
  std::array<bool, kNumLinkDirs> line_used{};
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    const auto& buf = buffers_[static_cast<std::size_t>(d)];
    const bool have_buf = !buf.empty();
    if (arrival.has_value() && (!prefer_buffer || !have_buf || buf.full())) {
      line.push_back({Candidate::Kind::Incoming, d, *arrival});
      arrival.reset();
      line_used[static_cast<std::size_t>(d)] = true;
    } else if (have_buf) {
      line.push_back({Candidate::Kind::BufferHead, d, buf.front()});
      line_used[static_cast<std::size_t>(d)] = true;
      // A displaced arrival joins the FIFO behind the head (the FIFO is
      // known non-full here).
      if (arrival.has_value()) {
        divert_to_buffer(port_from_index(d), *arrival);
        arrival.reset();
      }
    }
  }
  sort_by_age(line);

  bool waiting_won = false;
  bool incoming_won = false;
  for (const Candidate& c : line) {
    const bool is_head = c.kind == Candidate::Kind::BufferHead;
    const bool escalate =
        is_head &&
        head_wait_[static_cast<std::size_t>(c.dir)] >= env_.cfg->stall_escape_delay;
    const auto out = pick_output(c.flit, st, escalate);
    if (out) {
      Flit f = c.flit;
      if (is_head) {
        f = buffers_[static_cast<std::size_t>(c.dir)].pop();
        env_.energy->buffer_read();
        head_wait_[static_cast<std::size_t>(c.dir)] = 0;
        waiting_won = true;
      } else {
        incoming_won = true;
      }
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      if (*out == Direction::Local) {
        eject(f);
      } else {
        send_link(*out, f);
      }
    } else if (c.kind == Candidate::Kind::Incoming) {
      if (!buffers_[static_cast<std::size_t>(c.dir)].full()) {
        divert_to_buffer(port_from_index(c.dir), c.flit);
      } else {
        deflect(c.flit, st, /*via_primary=*/true);
      }
    } else {
      ++head_wait_[static_cast<std::size_t>(c.dir)];
    }
  }

  // Injection borrows an idle input line of the primary crossbar.
  bool line_free = false;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    if (!line_used[static_cast<std::size_t>(d)]) line_free = true;
  }
  if (line_free && source != nullptr && !source->empty()) {
    const auto out = pick_output(source->front(), st);
    if (out) {
      Flit f = source->pop_front();
      env_.energy->crossbar_traversal();
      ++primary_traversals_;
      waiting_won = true;
      if (*out == Direction::Local) {
        eject(f);
      } else {
        send_link(*out, f);
      }
    }
  }

  fairness_.record(waiting_exists, waiting_won, incoming_won);
}

void DXbarRouter::update_backpressure() {
  // On/off flow control: tell each upstream neighbour to pause while our
  // FIFO for that input is full.  The one-cycle signal delay means up to
  // two in-flight flits can still land on a full FIFO; deflect() covers
  // that race.
  for (int d = 0; d < kNumLinkDirs; ++d) {
    Channel* ch = env_.in_links[static_cast<std::size_t>(d)];
    if (ch != nullptr) {
      ch->set_stop(buffers_[static_cast<std::size_t>(d)].full());
    }
  }
}

void DXbarRouter::step(Cycle now) {
  const RouterFault& fault = env_.faults->at(id_);
  if (!fault.faulty || !env_.faults->manifest(id_, now)) {
    step_normal(now, /*secondary_usable=*/true);
    update_backpressure();
    return;
  }

  if (fault.failed == CrossbarKind::Primary) {
    // With the primary crossbar dead, incoming flits are demuxed into
    // the FIFOs whether or not BIST has fired yet; the secondary keeps
    // the router alive as a plain buffered router.
    step_buffered_only(now);
    update_backpressure();
    return;
  }

  // Secondary crossbar failed.  Until detection the allocator still
  // diverts losers into the FIFOs (the write path is intact) but the
  // FIFOs cannot drain; after detection the steering crossbars feed the
  // primary from the FIFO heads.
  if (env_.faults->detected(id_, now)) {
    step_primary_only(now);
  } else {
    step_normal(now, /*secondary_usable=*/false);
  }
  update_backpressure();
}

int DXbarRouter::occupancy() const {
  int n = 0;
  for (const auto& b : buffers_) n += static_cast<int>(b.size());
  return n;
}

}  // namespace dxbar
