// Extension baseline: AFC-style adaptive flow control (Jafri, Hong,
// Thottethodi & Vijaykumar, MICRO'10), the related work the paper calls
// complementary: each router *switches modes* — bufferless deflection
// routing at low load, buffered operation at high load — instead of
// running both paths concurrently like DXbar.
//
// Mode control uses an exponential moving average of the router's
// arrival rate: above `kBufferOn` arrivals/cycle the router buffers,
// below `kBufferOff` (and once its FIFOs drained) it returns to
// bufferless operation.  Links carry no backpressure (as in AFC's
// bufferless substrate); in buffered mode a full FIFO falls back to
// deflection, so no flit is ever lost during mode transitions — the
// per-router handshaking the real AFC needs is exactly the complexity
// the paper criticises, and this model sidesteps it the same way the
// AFC paper's own "lossless transition" mechanism does.
#pragma once

#include <array>

#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class AfcRouter final : public Router {
 public:
  AfcRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  // --- introspection for tests ---------------------------------------
  [[nodiscard]] bool buffered_mode() const { return buffered_mode_; }
  [[nodiscard]] std::uint64_t mode_switches() const { return mode_switches_; }

 private:
  /// EMA thresholds in arrivals/cycle (router capacity is ~4).
  static constexpr double kBufferOn = 1.75;
  static constexpr double kBufferOff = 1.0;
  static constexpr double kEmaAlpha = 1.0 / 32.0;

  struct AllocState {
    std::array<bool, kNumPorts> taken{};
  };

  void step_bufferless(Cycle now);
  void step_buffered(Cycle now);
  std::optional<Direction> pick_output(const Flit& f, AllocState& st);
  void route_or_deflect(Flit f, AllocState& st);

  int degree_;
  std::array<FixedQueue<Flit>, kNumLinkDirs> buffers_;
  bool buffered_mode_ = false;
  double arrival_ema_ = 0.0;
  std::uint64_t mode_switches_ = 0;
};

}  // namespace dxbar
