#include "router/buffered_router.hpp"

#include <cassert>

namespace dxbar {

BufferedRouter::BufferedRouter(NodeId id, const RouterEnv& env,
                               int lanes_per_input)
    : Router(id, env),
      lanes_per_input_(lanes_per_input),
      depth_(env.cfg->buffer_depth),
      allocator_(kNumPorts, kNumPorts) {
  assert(lanes_per_input >= 1 && lanes_per_input <= 2);
  lanes_.reserve(static_cast<std::size_t>(kNumLinkDirs * lanes_per_input_));
  for (int i = 0; i < kNumLinkDirs * lanes_per_input_; ++i) {
    lanes_.emplace_back(static_cast<std::size_t>(depth_));
  }
}

void BufferedRouter::step(Cycle now) {
  // The crossbar is 5x5: each input *port* forwards at most one flit per
  // cycle regardless of how many lanes buffer behind it.  With two lanes
  // (Buffered 8) either eligible head may be the one served, which is
  // what removes head-of-line blocking relative to Buffered 4.
  const int inj_input = kNumLinkDirs;  // allocator input index of the PE port

  auto request_mask_for = [&](const Flit& f) {
    std::uint32_t mask = 0;
    for (Direction d : routes(f.dst)) {
      if (d == Direction::Local || can_send(d)) {
        mask |= 1u << port_index(d);
      }
    }
    return mask;
  };

  // ---- per-input-port requests: union over eligible lane heads --------
  std::vector<std::uint32_t> requests(kNumPorts, 0);
  std::array<std::array<std::uint32_t, 2>, kNumLinkDirs> lane_masks{};
  for (int d = 0; d < kNumLinkDirs; ++d) {
    for (int k = 0; k < lanes_per_input_; ++k) {
      const auto& q = lanes_[static_cast<std::size_t>(lane(d, k))];
      if (!q.empty() && now >= q.front().ready) {
        const std::uint32_t m = request_mask_for(q.front().flit);
        lane_masks[static_cast<std::size_t>(d)][static_cast<std::size_t>(k)] = m;
        requests[static_cast<std::size_t>(d)] |= m;
      }
    }
  }
  if (source != nullptr && !source->empty()) {
    requests[static_cast<std::size_t>(inj_input)] =
        request_mask_for(source->front());
  }

  // ---- allocate and traverse ------------------------------------------
  const std::vector<int> grants = allocator_.allocate(requests);
  for (int i = 0; i < kNumPorts; ++i) {
    const int out = grants[static_cast<std::size_t>(i)];
    if (out < 0) continue;
    const Direction out_dir = port_from_index(out);

    Flit f;
    if (i == inj_input) {
      f = source->pop_front();
    } else {
      // Serve the oldest eligible lane head that requested this output.
      int pick = -1;
      for (int k = 0; k < lanes_per_input_; ++k) {
        if (!(lane_masks[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(k)] &
              (1u << out))) {
          continue;
        }
        const auto& q = lanes_[static_cast<std::size_t>(lane(i, k))];
        if (pick < 0 ||
            q.front().flit.older_than(
                lanes_[static_cast<std::size_t>(lane(i, pick))].front().flit)) {
          pick = k;
        }
      }
      assert(pick >= 0 && "granted output must match a requesting head");
      f = lanes_[static_cast<std::size_t>(lane(i, pick))].pop().flit;
      env_.energy->buffer_read();
      return_credit(port_from_index(i));
    }
    env_.energy->crossbar_traversal();
    if (out_dir == Direction::Local) {
      eject(f);
    } else {
      send_link(out_dir, f);
    }
  }

  // ---- buffer-write stage for this cycle's arrivals --------------------
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    // Pick the emptier sub-queue (Buffered 8's HoL-free organisation);
    // with one lane per input this is simply that lane.
    int best = lane(d, 0);
    for (int k = 1; k < lanes_per_input_; ++k) {
      if (lanes_[static_cast<std::size_t>(lane(d, k))].size() <
          lanes_[static_cast<std::size_t>(best)].size()) {
        best = lane(d, k);
      }
    }
    const bool ok = lanes_[static_cast<std::size_t>(best)].push(
        Entry{*arrival, now + 1});
    assert(ok && "credit flow control must prevent buffer overflow");
    (void)ok;
    env_.energy->buffer_write();
    arrival.reset();
  }
}

int BufferedRouter::occupancy() const {
  int n = 0;
  for (const auto& q : lanes_) n += static_cast<int>(q.size());
  return n;
}

void BufferedRouter::save_state(SnapshotWriter& w) const {
  for (const auto& q : lanes_) {
    save_fixed_queue(w, q, [](SnapshotWriter& sw, const Entry& e) {
      save_flit(sw, e.flit);
      sw.u64(e.ready);
    });
  }
  allocator_.save(w);
}

void BufferedRouter::load_state(SnapshotReader& r) {
  for (auto& q : lanes_) {
    load_fixed_queue(r, q, [](SnapshotReader& sr) {
      Entry e;
      e.flit = load_flit(sr);
      e.ready = sr.u64();
      return e;
    });
  }
  allocator_.load(r);
}

}  // namespace dxbar
