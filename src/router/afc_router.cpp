#include "router/afc_router.hpp"

#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {
namespace {

struct Candidate {
  enum class Kind { Incoming, BufferHead, Injection };
  Kind kind;
  int dir;
  Flit flit;
};

void sort_by_age(SmallVec<Candidate, kNumPorts>& v) {
  insertion_sort(v, [](const Candidate& a, const Candidate& b) {
    return a.flit.older_than(b.flit);
  });
}

}  // namespace

AfcRouter::AfcRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      buffers_{FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth)),
               FixedQueue<Flit>(static_cast<std::size_t>(env.cfg->buffer_depth))} {
  degree_ = 0;
  for (Direction d : kLinkDirs) {
    if (env_.out_links[port_index(d)] != nullptr) ++degree_;
  }
}

std::optional<Direction> AfcRouter::pick_output(const Flit& f,
                                                AllocState& st) {
  for (Direction d : routes(f.dst)) {
    const int i = port_index(d);
    if (st.taken[static_cast<std::size_t>(i)]) continue;
    if (d != Direction::Local && !can_send(d)) continue;
    st.taken[static_cast<std::size_t>(i)] = true;
    return d;
  }
  return std::nullopt;
}

void AfcRouter::route_or_deflect(Flit f, AllocState& st) {
  const auto ranking =
      deflection_order(f, f.packet * 0x9E3779B97F4A7C15ULL + f.hops);
  for (Direction d : ranking) {
    const int i = port_index(d);
    if (st.taken[static_cast<std::size_t>(i)]) continue;
    if (!link_alive(d) || !can_send(d)) continue;
    st.taken[static_cast<std::size_t>(i)] = true;
    if (!progressive_dirs(f.dst).contains(d)) ++f.deflections;
    env_.energy->crossbar_traversal();
    send_link(d, f);
    return;
  }
  assert(false && "deflection must always find a port");
}

void AfcRouter::step_bufferless(Cycle now) {
  (void)now;
  SmallVec<Flit, kNumPorts> flits;
  int incoming = 0;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      flits.push_back(*arrival);
      arrival.reset();
      ++incoming;
    }
  }
  if (source != nullptr && !source->empty() && incoming < degree_) {
    flits.push_back(source->pop_front());
  }
  if (flits.empty()) return;

  insertion_sort(flits,
                 [](const Flit& a, const Flit& b) { return a.older_than(b); });

  AllocState st;
  bool local_taken = false;
  for (Flit& f : flits) {
    if (f.dst == id_ && !local_taken) {
      local_taken = true;
      env_.energy->crossbar_traversal();
      eject(f);
      continue;
    }
    route_or_deflect(f, st);
  }
}

void AfcRouter::step_buffered(Cycle now) {
  (void)now;
  AllocState st;

  // 1. Arrivals that cannot be absorbed must leave now (mode-transition
  //    safety: AFC's lossless fallback is deflection).
  SmallVec<Candidate, kNumPorts> must_win;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value() && buffers_[static_cast<std::size_t>(d)].full()) {
      must_win.push_back({Candidate::Kind::Incoming, d, *arrival});
      arrival.reset();
    }
  }
  sort_by_age(must_win);
  for (const Candidate& c : must_win) {
    if (const auto out = pick_output(c.flit, st)) {
      env_.energy->crossbar_traversal();
      if (*out == Direction::Local) {
        eject(c.flit);
      } else {
        send_link(*out, c.flit);
      }
    } else {
      route_or_deflect(c.flit, st);
    }
  }

  // 2. FIFO heads + injection, oldest first, productive ports only.
  SmallVec<Candidate, kNumPorts> waiting;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    if (!buffers_[static_cast<std::size_t>(d)].empty()) {
      waiting.push_back({Candidate::Kind::BufferHead, d,
                         buffers_[static_cast<std::size_t>(d)].front()});
    }
  }
  if (source != nullptr && !source->empty()) {
    waiting.push_back({Candidate::Kind::Injection, -1, source->front()});
  }
  sort_by_age(waiting);
  for (const Candidate& c : waiting) {
    const auto out = pick_output(c.flit, st);
    if (!out) continue;
    Flit f;
    if (c.kind == Candidate::Kind::BufferHead) {
      f = buffers_[static_cast<std::size_t>(c.dir)].pop();
      env_.energy->buffer_read();
    } else {
      f = source->pop_front();
    }
    env_.energy->crossbar_traversal();
    if (*out == Direction::Local) {
      eject(f);
    } else {
      send_link(*out, f);
    }
  }

  // 3. Remaining arrivals are buffered (space checked in step 1).
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    const bool ok = buffers_[static_cast<std::size_t>(d)].push(*arrival);
    assert(ok);
    (void)ok;
    env_.energy->buffer_write();
    arrival.reset();
  }
}

void AfcRouter::step(Cycle now) {
  // Mode control from the smoothed arrival rate.
  int arrivals = 0;
  for (const auto& a : in) {
    if (a.has_value()) ++arrivals;
  }
  arrival_ema_ =
      arrival_ema_ * (1.0 - kEmaAlpha) + static_cast<double>(arrivals) * kEmaAlpha;

  if (!buffered_mode_ && arrival_ema_ > kBufferOn) {
    buffered_mode_ = true;
    ++mode_switches_;
  } else if (buffered_mode_ && arrival_ema_ < kBufferOff &&
             occupancy() == 0) {
    buffered_mode_ = false;
    ++mode_switches_;
  }

  if (buffered_mode_) {
    step_buffered(now);
  } else {
    step_bufferless(now);
  }
}

int AfcRouter::occupancy() const {
  int n = 0;
  for (const auto& b : buffers_) n += static_cast<int>(b.size());
  return n;
}

void AfcRouter::save_state(SnapshotWriter& w) const {
  for (const auto& b : buffers_) save_fixed_queue(w, b, save_flit);
  w.boolean(buffered_mode_);
  w.f64(arrival_ema_);
  w.u64(mode_switches_);
}

void AfcRouter::load_state(SnapshotReader& r) {
  for (auto& b : buffers_) load_fixed_queue(r, b, load_flit);
  buffered_mode_ = r.boolean();
  arrival_ema_ = r.f64();
  mode_switches_ = r.u64();
}

}  // namespace dxbar
