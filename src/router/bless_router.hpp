// Flit-Bless bufferless deflection router (Moscibroda & Mutlu, ISCA'09),
// the paper's primary bufferless comparison point.
//
// No input buffers: every flit present at the router is assigned *some*
// output port every cycle.  Arbitration is oldest-first; the oldest flit
// is guaranteed its productive port, younger flits may be deflected to
// non-productive ports (each deflection adds hops and link/crossbar
// energy — the behaviour that blows up Bless's power at high load).
// Injection is permitted whenever an input slot is free (fewer incoming
// flits than the router's link degree).  Two-stage pipeline: SA/ST + LT.
#pragma once

#include "router/router.hpp"

namespace dxbar {

class BlessRouter final : public Router {
 public:
  BlessRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;

  /// Bufferless: nothing is ever resident between cycles.
  [[nodiscard]] int occupancy() const override { return 0; }

  /// Batched lockstep entry point (see DXbarRouter::step_batch): same
  /// node across K replica lanes, devirtualized through the final class.
  static void step_batch(BlessRouter* const* lanes, const Cycle* nows,
                         std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) lanes[i]->step(nows[i]);
  }

 private:
  int degree_;  ///< number of existing links at this router
};

}  // namespace dxbar
