// Router construction by design enum.
#pragma once

#include <memory>

#include "router/router.hpp"

namespace dxbar {

/// Builds the router microarchitecture selected by env.cfg->design.
std::unique_ptr<Router> make_router(NodeId id, const RouterEnv& env);

/// Credits (== downstream buffer slots per input) the channels feeding a
/// router of this design must carry; kUnlimitedCredits for bufferless
/// designs, which never exert backpressure.
int link_credits_for(RouterDesign design, int buffer_depth);

/// Total flit storage one router of this design provisions, in slots —
/// the quantity held constant across designs by the equal-buffer-budget
/// shootout (bench/experiments/table_router_zoo.cpp).  Bufferless
/// designs hold zero; minBD's side buffer is its only storage, so its
/// buffer_depth *is* the whole per-node budget.
int buffer_slots_per_node(RouterDesign design, int buffer_depth);

}  // namespace dxbar
