// Router construction by design enum.
#pragma once

#include <memory>

#include "router/router.hpp"

namespace dxbar {

/// Builds the router microarchitecture selected by env.cfg->design.
std::unique_ptr<Router> make_router(NodeId id, const RouterEnv& env);

/// Credits (== downstream buffer slots per input) the channels feeding a
/// router of this design must carry; kUnlimitedCredits for bufferless
/// designs, which never exert backpressure.
int link_credits_for(RouterDesign design, int buffer_depth);

}  // namespace dxbar
