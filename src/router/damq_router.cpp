#include "router/damq_router.hpp"

#include <cassert>

namespace dxbar {

DamqRouter::DamqRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      depth_(env.cfg->buffer_depth),
      pool_(kNumLinkDirs * env.cfg->buffer_depth),
      queues_{FixedQueue<Entry>(static_cast<std::size_t>(pool_)),
              FixedQueue<Entry>(static_cast<std::size_t>(pool_)),
              FixedQueue<Entry>(static_cast<std::size_t>(pool_)),
              FixedQueue<Entry>(static_cast<std::size_t>(pool_))},
      allocator_(kNumPorts, kNumPorts) {
  int live_ports = 0;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    if (live(d)) ++live_ports;
  }
  shared_ = pool_ - live_ports * window();
  // Seed the initial credit distribution: channels are built with zero
  // credits for this design, so everything the upstream may ever hold
  // flows through the same grant path (posted here as pending credits,
  // usable from cycle 0 after the first channel advance).
  grant_credits();
}

int DamqRouter::shared_used() const noexcept {
  const int w = window();
  int used = 0;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    const int c = claim(d);
    if (c > w) used += c - w;
  }
  return used;
}

bool DamqRouter::can_grant(int d) const noexcept {
  if (!live(d)) return false;
  // Outstanding credits never exceed the private window, so an idle
  // upstream can park credits only in its own reservation — the shared
  // region is filled exclusively by queued flits (real demand).
  if (outstanding_[static_cast<std::size_t>(d)] >= window()) return false;
  // Claims inside the private region are always grantable; beyond it
  // the grant lands in the shared region while that has room.
  return claim(d) < window() || shared_used() < shared_;
}

void DamqRouter::grant_credits() {
  // Fixpoint sweep, at most one grant per port per pass so a low pool
  // is split round-robin instead of handed wholesale to the first port.
  bool granted = true;
  while (granted) {
    granted = false;
    for (int k = 0; k < kNumLinkDirs; ++k) {
      const int d = (grant_rr_ + k) % kNumLinkDirs;
      if (!can_grant(d)) continue;
      env_.in_links[static_cast<std::size_t>(d)]->return_credit();
      ++outstanding_[static_cast<std::size_t>(d)];
      granted = true;
    }
  }
  grant_rr_ = (grant_rr_ + 1) % kNumLinkDirs;
}

void DamqRouter::step(Cycle now) {
  // Same 3-stage pipeline and 5x5 separable allocation as the buffered
  // baseline (RC / SA-ST / LT): heads of the four logical FIFOs plus
  // the injection front bid for output ports; arrivals written this
  // cycle become eligible the next.
  const int inj_input = kNumLinkDirs;

  auto request_mask_for = [&](const Flit& f) {
    std::uint32_t mask = 0;
    for (Direction d : routes(f.dst)) {
      if (d == Direction::Local || can_send(d)) {
        mask |= 1u << port_index(d);
      }
    }
    return mask;
  };

  std::vector<std::uint32_t> requests(kNumPorts, 0);
  for (int d = 0; d < kNumLinkDirs; ++d) {
    const auto& q = queues_[static_cast<std::size_t>(d)];
    if (!q.empty() && now >= q.front().ready) {
      requests[static_cast<std::size_t>(d)] = request_mask_for(q.front().flit);
    }
  }
  if (source != nullptr && !source->empty()) {
    requests[static_cast<std::size_t>(inj_input)] =
        request_mask_for(source->front());
  }

  const std::vector<int> grants = allocator_.allocate(requests);
  for (int i = 0; i < kNumPorts; ++i) {
    const int out = grants[static_cast<std::size_t>(i)];
    if (out < 0) continue;
    const Direction out_dir = port_from_index(out);

    Flit f;
    if (i == inj_input) {
      f = source->pop_front();
    } else {
      f = queues_[static_cast<std::size_t>(i)].pop().flit;
      env_.energy->buffer_read();
    }
    env_.energy->crossbar_traversal();
    if (out_dir == Direction::Local) {
      eject(f);
    } else {
      send_link(out_dir, f);
    }
  }

  // Arrivals consume the credits they were granted against; the slot
  // guarantee is the accounting invariant, not per-queue headroom.
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    assert(outstanding_[static_cast<std::size_t>(d)] > 0 &&
           "DAMQ arrival without an outstanding credit");
    --outstanding_[static_cast<std::size_t>(d)];
    const bool ok = queues_[static_cast<std::size_t>(d)].push(
        Entry{*arrival, now + 1});
    assert(ok && "DAMQ grant accounting must prevent pool overflow");
    (void)ok;
    env_.energy->buffer_write();
    arrival.reset();
  }

  // Re-grant freed slots (and any shared headroom arrivals opened up).
  grant_credits();

#ifndef NDEBUG
  int committed = 0;
  for (int d = 0; d < kNumLinkDirs; ++d) committed += claim(d);
  assert(committed <= pool_ && "DAMQ claim total exceeds the pool");
#endif
}

int DamqRouter::occupancy() const {
  int n = 0;
  for (const auto& q : queues_) n += static_cast<int>(q.size());
  return n;
}

void DamqRouter::save_state(SnapshotWriter& w) const {
  for (const auto& q : queues_) {
    save_fixed_queue(w, q, [](SnapshotWriter& sw, const Entry& e) {
      save_flit(sw, e.flit);
      sw.u64(e.ready);
    });
  }
  for (int o : outstanding_) w.i32(o);
  w.i32(grant_rr_);
  allocator_.save(w);
}

void DamqRouter::load_state(SnapshotReader& r) {
  for (auto& q : queues_) {
    load_fixed_queue(r, q, [](SnapshotReader& sr) {
      Entry e;
      e.flit = load_flit(sr);
      e.ready = sr.u64();
      return e;
    });
  }
  for (int& o : outstanding_) o = r.i32();
  grant_rr_ = r.i32();
  allocator_.load(r);
}

}  // namespace dxbar
