// DXbar dual-crossbar router (paper section II).
//
// Two crossbars per router:
//  * primary, bufferless, 4 inputs x 5 outputs — incoming flits switch in
//    a single SA/ST cycle (look-ahead routing removes the RC stage);
//  * secondary, buffered, 5 inputs x 5 outputs — fed by one 4-flit FIFO
//    per link input plus the unbuffered PE injection port.
//
// An incoming flit that wins arbitration crosses the primary crossbar;
// a loser is diverted into its input's FIFO and later crosses the
// secondary crossbar, so flits are (almost) never deflected or dropped.
// Flow control is on/off: a router asserts stop toward an upstream
// neighbour only while the FIFO for that input is full, so the links
// need no conservative credit reservation and winners stream at full
// rate.  Two liveness valves back the scheme: (1) a losing flit whose
// FIFO is full (possible only for the <=2 flits in flight when the stop
// signal was raised) escapes through the bufferless crossbar to any
// free port, deflection-style — the overflow valve minimally buffered
// deflection routers use; (2) a FIFO head or injection flit denied for
// cfg.stall_escape_delay cycles may push into a stopped receiver, whose
// must-win logic keeps the flit moving — bounding head-of-queue waiting
// and breaking the waiting cycles deflection-created turns could
// otherwise close.  Buffered
// and injection flits arbitrate at lower priority than incoming flits
// unless the fairness counter (threshold 4) has flipped the priority.
// Because both crossbars reach every output, a buffered flit and an
// incoming flit from the *same* input port can depart simultaneously
// (Fig. 3(d)) — the property plain buffer-bypass designs lack.
//
// Fault tolerance (section II.C): when one crossbar fails, 2x2 steering
// crossbars between the FIFOs and the crossbars let the router degrade
// to a buffered single-crossbar router.  The fault becomes known to the
// switch allocator only after the BIST detection delay.
#pragma once

#include <array>
#include <optional>

#include "alloc/fairness.hpp"
#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class DXbarRouter final : public Router {
 public:
  DXbarRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  /// Batched lockstep entry point: steps the same mesh node's router
  /// across K replica lanes back to back (Network::step_lanes).  Lanes
  /// are whole independent networks, so this changes execution order
  /// only, never results; the win is locality — the design's switch
  /// allocation code and this node's branch history stay hot across K
  /// correlated invocations instead of being revisited once per
  /// full-mesh sweep.  The class is final, so the calls devirtualize.
  static void step_batch(DXbarRouter* const* lanes, const Cycle* nows,
                         std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) lanes[i]->step(nows[i]);
  }

  // --- introspection for tests ---------------------------------------
  [[nodiscard]] int buffer_size(Direction d) const {
    return static_cast<int>(buffers_[port_index(d)].size());
  }
  [[nodiscard]] bool fairness_flipped() const { return fairness_.flipped(); }
  [[nodiscard]] std::uint64_t primary_traversals() const {
    return primary_traversals_;
  }
  [[nodiscard]] std::uint64_t secondary_traversals() const {
    return secondary_traversals_;
  }
  [[nodiscard]] std::uint64_t buffered_diversions() const {
    return buffered_diversions_;
  }
  [[nodiscard]] std::uint64_t contention_stalls() const {
    return contention_stalls_;
  }
  [[nodiscard]] std::uint64_t overflow_deflections() const {
    return overflow_deflections_;
  }

 private:
  /// Output ports already claimed this cycle (links also need credits).
  struct AllocState {
    std::array<bool, kNumPorts> taken{};
  };

  /// First free, sendable port out of the flit's route set, or nullopt.
  /// `ignore_stop` lets liveness-critical flits (must-win arrivals,
  /// stall-escaped FIFO heads) push past on/off backpressure.
  std::optional<Direction> pick_output(const Flit& f, AllocState& st,
                                       bool ignore_stop = false);

  /// Normal dual-crossbar operation (also covers an undetected
  /// secondary-crossbar fault, where losers can still be buffered but
  /// the buffers cannot drain).
  void step_normal(Cycle now, bool secondary_usable);

  /// Degraded operation with only the secondary crossbar working:
  /// all incoming flits are diverted into the FIFOs.
  void step_buffered_only(Cycle now);

  /// Degraded operation with only the primary crossbar working: the 2x2
  /// steering crossbars feed each input line from either the incoming
  /// register or the FIFO head.
  void step_primary_only(Cycle now);

  /// Runs the waiting phase (FIFO heads + injection) through a crossbar.
  /// Returns true when at least one waiting flit departed.
  bool serve_waiting(AllocState& st, bool via_primary);

  /// Divert an incoming flit into its input FIFO (buffer-write energy).
  /// Asserts the upstream stop signal when this fills the FIFO.
  void divert_to_buffer(Direction from, const Flit& f);

  /// Pop the head of input FIFO `dir`, releasing the upstream stop
  /// signal when the FIFO was full.  Keeps buffered_count_ in sync.
  Flit pop_buffer(std::size_t dir);

  /// Bufferless escape: route a losing flit whose FIFO is full to the
  /// best free link port (counts a deflection when non-productive).
  void deflect(Flit f, AllocState& st, bool via_primary);

  [[nodiscard]] bool any_waiting() const;

  std::array<FixedQueue<Flit>, kNumLinkDirs> buffers_;
  /// Total flits across buffers_, maintained on push/pop so the
  /// per-cycle idle check and occupancy() never scan the FIFOs.
  int buffered_count_ = 0;
  FairnessCounter fairness_;
  /// Consecutive cycles each FIFO head (and the injection front) has
  /// been denied a port; at cfg.stall_escape_delay it overrides stop signals.
  std::array<int, kNumLinkDirs> head_wait_{};
  int injection_wait_ = 0;

  std::uint64_t primary_traversals_ = 0;
  std::uint64_t secondary_traversals_ = 0;
  std::uint64_t buffered_diversions_ = 0;
  std::uint64_t contention_stalls_ = 0;   ///< lost a port to another flit
  std::uint64_t overflow_deflections_ = 0;  ///< escape-valve uses
};

}  // namespace dxbar
