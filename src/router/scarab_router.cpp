#include "router/scarab_router.hpp"

#include <algorithm>
#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {

ScarabRouter::ScarabRouter(NodeId id, const RouterEnv& env)
    : Router(id, env) {}

void ScarabRouter::step(Cycle now) {
  SmallVec<Flit, kNumPorts> flits;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      flits.push_back(*arrival);
      arrival.reset();
    }
  }

  insertion_sort(flits,
                 [](const Flit& a, const Flit& b) { return a.older_than(b); });

  bool local_taken = false;
  std::array<bool, kNumLinkDirs> link_taken{};

  // Oldest-first: each flit takes its preferred free *productive* port;
  // a flit with no free productive port is dropped and NACKed.
  for (Flit& f : flits) {
    if (f.dst == id_) {
      if (!local_taken) {
        local_taken = true;
        env_.energy->crossbar_traversal();
        eject(f);
      } else {
        assert(nack_sink != nullptr);
        nack_sink->on_drop(f, id_, now);
      }
      continue;
    }
    bool assigned = false;
    for (Direction d : progressive_dirs(f.dst)) {
      const int di = port_index(d);
      if (link_taken[static_cast<std::size_t>(di)]) continue;
      if (!link_alive(d)) continue;
      link_taken[static_cast<std::size_t>(di)] = true;
      env_.energy->crossbar_traversal();
      send_link(d, f);
      assigned = true;
      break;
    }
    if (!assigned) {
      assert(nack_sink != nullptr);
      nack_sink->on_drop(f, id_, now);
    }
  }

  // Inject only into a free productive port — new flits are never the
  // ones dropped.
  if (source != nullptr && !source->empty()) {
    const Flit& head = source->front();
    if (head.dst == id_) {
      if (!local_taken) eject(source->pop_front());
    } else {
      for (Direction d : progressive_dirs(head.dst)) {
        const int di = port_index(d);
        if (link_taken[static_cast<std::size_t>(di)]) continue;
        if (!link_alive(d)) continue;
        link_taken[static_cast<std::size_t>(di)] = true;
        env_.energy->crossbar_traversal();
        send_link(d, source->pop_front());
        break;
      }
    }
  }
}

}  // namespace dxbar
