#include "router/minbd_router.hpp"

#include <cassert>

#include "routing/deflect.hpp"

namespace dxbar {

MinBDRouter::MinBDRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      side_(static_cast<std::size_t>(env.cfg->buffer_depth)) {
  degree_ = 0;
  for (Direction d : kLinkDirs) {
    if (env_.out_links[port_index(d)] != nullptr) ++degree_;
  }
}

void MinBDRouter::step(Cycle now) {
  // ---- gather this cycle's flits ---------------------------------------
  SmallVec<Flit, kNumPorts> flits;
  int incoming = 0;
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (arrival.has_value()) {
      flits.push_back(*arrival);
      arrival.reset();
      ++incoming;
    }
  }

  // ---- redirection: one side-buffered flit re-enters the pipeline ------
  // Remember which flit was redirected so the capture stage below cannot
  // bounce it straight back in the same cycle (that would be a storage
  // livelock, not progress).
  PacketId redirected_pkt = ~PacketId{0};
  std::uint32_t redirected_seq = 0;
  if (!side_.empty() && incoming < degree_) {
    const Flit f = side_.pop();
    env_.energy->buffer_read();
    redirected_pkt = f.packet;
    redirected_seq = f.seq;
    flits.push_back(f);
    ++incoming;
  }

  // Inject only when an input slot is free, exactly like Flit-Bless: the
  // assignment invariant (#flits <= degree, at most one takes Local)
  // then always finds every non-captured flit a port.
  if (source != nullptr && !source->empty() && incoming < degree_) {
    flits.push_back(source->pop_front());
  }
  if (flits.empty()) return;

  // ---- golden-first, then oldest-first port assignment ------------------
  insertion_sort(flits, [now](const Flit& a, const Flit& b) {
    const bool ga = is_golden(a, now);
    const bool gb = is_golden(b, now);
    if (ga != gb) return ga;
    return a.older_than(b);
  });

  bool local_taken = false;
  bool captured = false;
  std::array<bool, kNumLinkDirs> link_taken{};
  for (Flit& f : flits) {
    env_.energy->crossbar_traversal();

    if (f.dst == id_ && !local_taken) {
      local_taken = true;
      eject(f);
      continue;
    }

    const auto ranking =
        deflection_order(f, f.packet * 0x9E3779B97F4A7C15ULL + now);
    bool assigned = false;
    for (Direction d : ranking) {
      const int di = port_index(d);
      if (link_taken[static_cast<std::size_t>(di)]) continue;
      if (!link_alive(d)) continue;

      // Buffer capture: a flit about to take a *non-productive* port is
      // parked in the side buffer instead (one per cycle, never golden,
      // never the flit just redirected).  The port it would have taken
      // stays free for later flits in the sort order.
      if (!progressive_dirs(f.dst).contains(d)) {
        if (!captured && !side_.full() && !is_golden(f, now) &&
            !(f.packet == redirected_pkt && f.seq == redirected_seq)) {
          captured = true;
          side_.push(f);
          env_.energy->buffer_write();
          assigned = true;
          break;
        }
        ++f.deflections;
      }
      link_taken[static_cast<std::size_t>(di)] = true;
      send_link(d, f);
      assigned = true;
      break;
    }
    assert(assigned && "MinBD invariant: every flit gets a port or the buffer");
    (void)assigned;
  }
}

int MinBDRouter::occupancy() const {
  return static_cast<int>(side_.size());
}

void MinBDRouter::save_state(SnapshotWriter& w) const {
  save_fixed_queue(w, side_, [](SnapshotWriter& sw, const Flit& f) {
    save_flit(sw, f);
  });
}

void MinBDRouter::load_state(SnapshotReader& r) {
  load_fixed_queue(r, side_,
                   [](SnapshotReader& sr) { return load_flit(sr); });
}

}  // namespace dxbar
