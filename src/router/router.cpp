#include "router/router.hpp"

#include <cassert>

namespace dxbar {

Router::Router(NodeId id, const RouterEnv& env) : id_(id), env_(env) {
  assert(env_.cfg != nullptr && env_.mesh != nullptr &&
         env_.energy != nullptr && env_.faults != nullptr);
}

}  // namespace dxbar
