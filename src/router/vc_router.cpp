#include "router/vc_router.hpp"

#include <cassert>

namespace dxbar {

VcRouter::VcRouter(NodeId id, const RouterEnv& env)
    : Router(id, env),
      num_vcs_(env.cfg->num_vcs),
      vc_depth_(env.cfg->buffer_depth / env.cfg->num_vcs),
      class_vcs_(env.cfg->workload == WorkloadKind::ClosedLoop &&
                 env.cfg->num_vcs >= 2),
      allocator_(kNumPorts, kNumPorts) {
  assert(vc_depth_ >= 1);
  vcs_.reserve(static_cast<std::size_t>(kNumLinkDirs * num_vcs_));
  for (int i = 0; i < kNumLinkDirs * num_vcs_; ++i) {
    vcs_.emplace_back(static_cast<std::size_t>(vc_depth_));
  }
  vc_pick_.reserve(kNumLinkDirs);
  for (int d = 0; d < kNumLinkDirs; ++d) vc_pick_.emplace_back(num_vcs_);
  out_vc_pick_.reserve(kNumLinkDirs);
  for (int d = 0; d < kNumLinkDirs; ++d) out_vc_pick_.emplace_back(num_vcs_);
}

void VcRouter::step(Cycle now) {
  const int inj_input = kNumLinkDirs;

  // ---- per-input VC selection (round-robin among eligible heads) ------
  std::array<int, kNumLinkDirs> chosen_vc;
  chosen_vc.fill(-1);
  std::vector<std::uint32_t> requests(kNumPorts, 0);
  for (int d = 0; d < kNumLinkDirs; ++d) {
    std::uint32_t eligible = 0;
    for (int v = 0; v < num_vcs_; ++v) {
      const auto& q = vcs_[static_cast<std::size_t>(vc_index(d, v))];
      if (!q.empty() && now >= q.front().ready) eligible |= 1u << v;
    }
    const int v = vc_pick_[static_cast<std::size_t>(d)].pick(eligible);
    if (v < 0) continue;
    chosen_vc[static_cast<std::size_t>(d)] = v;
    const Flit& f =
        vcs_[static_cast<std::size_t>(vc_index(d, v))].front().flit;
    // Speculative: bid for every productive port with a live link; the
    // downstream-credit check happens only after winning.
    for (Direction dir : routes(f.dst)) {
      if (dir == Direction::Local ||
          env_.out_links[port_index(dir)] != nullptr) {
        requests[static_cast<std::size_t>(d)] |= 1u << port_index(dir);
      }
    }
  }
  if (source != nullptr && !source->empty()) {
    for (Direction dir : routes(source->front().dst)) {
      if (dir == Direction::Local ||
          env_.out_links[port_index(dir)] != nullptr) {
        requests[static_cast<std::size_t>(inj_input)] |=
            1u << port_index(dir);
      }
    }
  }

  // ---- switch allocation + (post-win) VC allocation ---------------------
  const std::vector<int> grants = allocator_.allocate(requests);
  for (int i = 0; i <= inj_input; ++i) {
    const int out = grants[static_cast<std::size_t>(i)];
    if (out < 0) continue;
    const Direction out_dir = port_from_index(out);

    // Output VC / credit check (the speculative part).  Under the
    // closed-loop class partition a flit may only claim downstream VCs
    // of its own virtual network.
    const Flit& head =
        i == inj_input
            ? source->front()
            : vcs_[static_cast<std::size_t>(vc_index(
                       i, chosen_vc[static_cast<std::size_t>(i)]))]
                  .front()
                  .flit;
    int out_vc = -1;
    if (out_dir != Direction::Local) {
      Channel* ch = env_.out_links[static_cast<std::size_t>(out)];
      std::uint32_t avail = 0;
      for (int v = 0; v < num_vcs_; ++v) {
        if (ch->can_send_vc(v)) avail |= 1u << v;
      }
      avail &= class_mask(head.cls);
      out_vc = out_vc_pick_[static_cast<std::size_t>(out)].grant(avail);
      if (out_vc < 0) {
        // Speculation failed: no downstream VC credit; the crossbar slot
        // goes unused this cycle.
        ++speculation_failures_;
        continue;
      }
    }

    Flit f;
    if (i == inj_input) {
      f = source->pop_front();
    } else {
      const int v = chosen_vc[static_cast<std::size_t>(i)];
      f = vcs_[static_cast<std::size_t>(vc_index(i, v))].pop().flit;
      env_.energy->buffer_read();
      Channel* up = env_.in_links[static_cast<std::size_t>(i)];
      if (up != nullptr) up->return_credit_vc(v);
    }
    env_.energy->crossbar_traversal();
    if (out_dir == Direction::Local) {
      eject(f);
    } else {
      ++f.hops;
      env_.energy->link_traversal();
      env_.out_links[static_cast<std::size_t>(out)]->send_vc(f, out_vc);
    }
  }

  // ---- buffer write: arrivals land in the VC the sender picked ---------
  for (int d = 0; d < kNumLinkDirs; ++d) {
    auto& arrival = in[static_cast<std::size_t>(d)];
    if (!arrival.has_value()) continue;
    const int v = arrival->vc;
    const bool ok = vcs_[static_cast<std::size_t>(vc_index(d, v))].push(
        Entry{*arrival, now + 1});
    assert(ok && "per-VC credits must prevent overflow");
    (void)ok;
    env_.energy->buffer_write();
    arrival.reset();
  }
}

int VcRouter::occupancy() const {
  int n = 0;
  for (const auto& q : vcs_) n += static_cast<int>(q.size());
  return n;
}

void VcRouter::save_state(SnapshotWriter& w) const {
  for (const auto& q : vcs_) {
    save_fixed_queue(w, q, [](SnapshotWriter& sw, const Entry& e) {
      save_flit(sw, e.flit);
      sw.u64(e.ready);
    });
  }
  for (const auto& a : vc_pick_) a.save(w);
  for (const auto& a : out_vc_pick_) a.save(w);
  allocator_.save(w);
  w.u64(speculation_failures_);
}

void VcRouter::load_state(SnapshotReader& r) {
  for (auto& q : vcs_) {
    load_fixed_queue(r, q, [](SnapshotReader& sr) {
      Entry e;
      e.flit = load_flit(sr);
      e.ready = sr.u64();
      return e;
    });
  }
  for (auto& a : vc_pick_) a.load(r);
  for (auto& a : out_vc_pick_) a.load(r);
  allocator_.load(r);
  speculation_failures_ = r.u64();
}

}  // namespace dxbar
