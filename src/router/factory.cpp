#include "router/factory.hpp"

#include "router/afc_router.hpp"
#include "router/bless_router.hpp"
#include "router/buffered_router.hpp"
#include "router/damq_router.hpp"
#include "router/dxbar_router.hpp"
#include "router/minbd_router.hpp"
#include "router/scarab_router.hpp"
#include "router/unified_router.hpp"
#include "router/vc_router.hpp"
#include "topology/channel.hpp"

namespace dxbar {

std::unique_ptr<Router> make_router(NodeId id, const RouterEnv& env) {
  switch (env.cfg->design) {
    case RouterDesign::FlitBless:
      return std::make_unique<BlessRouter>(id, env);
    case RouterDesign::Scarab:
      return std::make_unique<ScarabRouter>(id, env);
    case RouterDesign::Buffered4:
      return std::make_unique<BufferedRouter>(id, env, /*lanes_per_input=*/1);
    case RouterDesign::Buffered8:
      return std::make_unique<BufferedRouter>(id, env, /*lanes_per_input=*/2);
    case RouterDesign::DXbar:
      return std::make_unique<DXbarRouter>(id, env);
    case RouterDesign::UnifiedXbar:
      return std::make_unique<UnifiedRouter>(id, env);
    case RouterDesign::BufferedVC:
      return std::make_unique<VcRouter>(id, env);
    case RouterDesign::Afc:
      return std::make_unique<AfcRouter>(id, env);
    case RouterDesign::Damq:
      return std::make_unique<DamqRouter>(id, env);
    case RouterDesign::MinBD:
      return std::make_unique<MinBDRouter>(id, env);
  }
  return nullptr;
}

int link_credits_for(RouterDesign design, int buffer_depth) {
  switch (design) {
    case RouterDesign::FlitBless:
    case RouterDesign::Scarab:
      return kUnlimitedCredits;
    case RouterDesign::DXbar:
    case RouterDesign::UnifiedXbar:
      // The dual-crossbar designs carry no link backpressure: a losing
      // flit that finds its FIFO full escapes through the bufferless
      // crossbar (deflection) instead of requiring a reserved slot.
      return kUnlimitedCredits;
    case RouterDesign::Buffered4:
      return buffer_depth;
    case RouterDesign::Buffered8:
      return 2 * buffer_depth;
    case RouterDesign::BufferedVC:
      // Per-VC pools; the network builds VC channels for this design.
      return buffer_depth;
    case RouterDesign::Afc:
      // AFC accepts every arrival (deflection fallback in buffered mode).
      return kUnlimitedCredits;
    case RouterDesign::Damq:
      // The shared-pool router is the sole credit allocator: channels
      // start empty and every usable credit is granted at runtime by
      // DamqRouter::grant_credits over the same Channel machinery.
      return 0;
    case RouterDesign::MinBD:
      // Deflection substrate — arrivals are always absorbed.
      return kUnlimitedCredits;
  }
  return kUnlimitedCredits;
}

int buffer_slots_per_node(RouterDesign design, int buffer_depth) {
  switch (design) {
    case RouterDesign::FlitBless:
    case RouterDesign::Scarab:
      return 0;
    case RouterDesign::Buffered4:
    case RouterDesign::BufferedVC:
    case RouterDesign::Afc:
      return kNumLinkDirs * buffer_depth;
    case RouterDesign::Buffered8:
      return kNumLinkDirs * 2 * buffer_depth;
    case RouterDesign::DXbar:
    case RouterDesign::UnifiedXbar:
      // One secondary-side FIFO per input; the primary crossbar path is
      // bufferless.
      return kNumLinkDirs * buffer_depth;
    case RouterDesign::Damq:
      // The pool is exactly the Buffered-4-equivalent storage, shared.
      return kNumLinkDirs * buffer_depth;
    case RouterDesign::MinBD:
      // The side buffer is the *only* storage, so at an equal-budget
      // comparison minBD takes buffer_depth = budget directly.
      return buffer_depth;
  }
  return 0;
}

}  // namespace dxbar
