// Unified dual-input single-crossbar router (paper section II.B).
//
// Functionally equivalent to DXbar but built from ONE matrix crossbar
// whose output lines are segmented by transmission gates, letting the
// bufferless incoming flit (I_k) and the buffered flit (I_k') of the
// same input port traverse to different outputs simultaneously.  The
// augmented separable output-first allocator with two serial V:1
// arbiters and the conflict-free swap stage lives in
// alloc/unified_allocator.*; this router feeds it and applies its grants.
//
// Trade-off mirrored from the paper: 25% (not 33%) area overhead over
// Flit-Bless, but 15 pJ/flit crossbar traversals instead of 13 pJ
// because every traversal switches transmission gates.
//
// The paper's fault study covers only the dual-crossbar design, so this
// router ignores the fault plan (a segmented-crossbar fault model is
// future work the paper defers).
#pragma once

#include <array>

#include "alloc/fairness.hpp"
#include "alloc/unified_allocator.hpp"
#include "common/fixed_queue.hpp"
#include "router/router.hpp"

namespace dxbar {

class UnifiedRouter final : public Router {
 public:
  UnifiedRouter(NodeId id, const RouterEnv& env);

  void step(Cycle now) override;
  [[nodiscard]] int occupancy() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  // --- introspection for tests ---------------------------------------
  [[nodiscard]] int buffer_size(Direction d) const {
    return static_cast<int>(buffers_[port_index(d)].size());
  }
  [[nodiscard]] std::uint64_t swap_count() const { return swap_count_; }
  [[nodiscard]] std::uint64_t dual_grant_cycles() const {
    return dual_grant_cycles_;
  }
  [[nodiscard]] std::uint64_t overflow_deflections() const {
    return overflow_deflections_;
  }

 private:
  [[nodiscard]] std::uint32_t request_mask(const Flit& f,
                                           bool ignore_stop) const;
  void depart(Flit f, int out);

  std::array<FixedQueue<Flit>, kNumLinkDirs> buffers_;
  FairnessCounter fairness_;
  /// Consecutive cycles each FIFO head (and the injection front) has
  /// been denied a port; at cfg.stall_escape_delay it overrides stop signals.
  std::array<int, kNumLinkDirs> head_wait_{};
  int injection_wait_ = 0;
  UnifiedAllocator allocator_;

  std::uint64_t swap_count_ = 0;
  /// Cycles in which some input port sent two flits at once — the
  /// capability that distinguishes the unified crossbar.
  std::uint64_t dual_grant_cycles_ = 0;
  /// Overflow escape-valve uses (losing arrival with a full FIFO).
  std::uint64_t overflow_deflections_ = 0;
};

}  // namespace dxbar
