#include "power/tech_params.hpp"

namespace dxbar {
namespace {

/// Scales the calibrated 65 nm bundle to a smaller node: linear
/// dimensions (pitch, link length) and device capacitances shrink with
/// the feature size, unit areas shrink quadratically, and the per-mm
/// wire capacitance improves only mildly (global wires do not scale
/// like devices — the classic interconnect-scaling problem).
TechParams scaled(int nm, double vdd, double freq_ghz,
                  double xbar_wire_cap_ff_mm, double link_wire_cap_ff_mm,
                  double leakage_mw_per_mm2) {
  TechParams t;  // 65 nm calibration
  const double s = static_cast<double>(nm) / static_cast<double>(t.node_nm);
  t.node_nm = nm;
  t.vdd = vdd;
  t.freq_ghz = freq_ghz;
  t.xbar_wire_cap_ff_mm = xbar_wire_cap_ff_mm;
  t.link_wire_cap_ff_mm = link_wire_cap_ff_mm;
  // Leakage density does not follow constant-field scaling — it is set
  // per node (subthreshold leakage worsens into late planar nodes, then
  // FinFETs pull it back down).
  t.leakage_mw_per_mm2 = leakage_mw_per_mm2;
  t.xbar_pitch_um *= s;
  t.link_length_mm *= s;
  t.connector_cap_ff *= s;
  t.driver_cap_ff *= s;
  t.tgate_cap_ff *= s;
  t.cell_write_cap_ff *= s;
  t.cell_read_cap_ff *= s;
  t.bitline_write_cap_ff *= s;
  t.bitline_read_cap_ff *= s;
  t.nack_ctrl_cap_ff *= s;
  t.cell_area_um2 *= s * s;
  t.tgate_area_um2 *= s * s;
  t.link_area_um2_per_bit_mm *= s;  // area = bits * length * this; the
                                    // length factor carries the second s
  t.nack_logic_area_um2 *= s * s;
  return t;
}

}  // namespace

TechParams TechParams::node(int nm) {
  switch (nm) {
    case 32:
      return scaled(32, /*vdd=*/0.9, /*freq_ghz=*/1.5,
                    /*xbar_wire_cap_ff_mm=*/230.0,
                    /*link_wire_cap_ff_mm=*/460.0,
                    /*leakage_mw_per_mm2=*/140.0);
    case 16:
      return scaled(16, /*vdd=*/0.8, /*freq_ghz=*/2.0,
                    /*xbar_wire_cap_ff_mm=*/210.0,
                    /*link_wire_cap_ff_mm=*/420.0,
                    /*leakage_mw_per_mm2=*/60.0);
    case 65:
    default:
      return TechParams{};
  }
}

}  // namespace dxbar
