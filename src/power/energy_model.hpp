// Energy and area model (paper Table III: TSMC 65 nm, 1.0 V, 1 GHz,
// 128-bit flits).
//
// The paper reports crossbar energy of 13 pJ/flit (15 pJ/flit for the
// unified crossbar's transmission gates) and link energy of 36 pJ per
// 128-bit flit traversal.  The buffer access energies and the absolute
// area figures are garbled in the available paper text; the constants
// below are literature-consistent 65 nm values reconstructed to satisfy
// every relation the prose states (DXbar = 1.33x Flit-Bless area,
// Unified = 1.25x, Buffered4 < DXbar < Buffered8, buffer bank area >
// crossbar area).  See EXPERIMENTS.md for the derivation.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

/// Per-event energies in picojoules per 128-bit flit.
struct EnergyParams {
  double crossbar_pj = 13.0;       ///< one crossbar traversal
  double link_pj = 36.0;           ///< one link traversal
  double buffer_write_pj = 2.8;    ///< one FIFO write
  double buffer_read_pj = 2.2;     ///< one FIFO read
  double nack_hop_pj = 1.5;        ///< one hop on the 1-bit NACK network
};

/// Energy parameters for a router design (unified crossbar costs 15 pJ,
/// Buffered8's larger buffer organisation costs 1.25x per access).
EnergyParams energy_params(RouterDesign design);

/// Router area decomposition in mm^2 (per router, 65 nm).
struct AreaParams {
  double crossbar_mm2 = 0.0142;        ///< one 5x5 matrix crossbar
  double unified_crossbar_mm2 = 0.0209;  ///< 5x5 + transmission gates
  double buffer_bank_mm2 = 0.0169;     ///< four 4-flit input FIFOs
  double links_mm2 = 0.0800;           ///< four input links
  double nack_logic_mm2 = 0.0020;      ///< SCARAB NACK circuit switch
};

/// Total per-router area for a design (paper Table III column 1).
double router_area_mm2(RouterDesign design, const AreaParams& p = {});

/// Critical-path timing reported by the paper (ns; both < 1 ns cycle).
struct TimingParams {
  double link_traversal_ns = 0.47;
  double unified_switch_ns = 0.27;
};

/// Per-category energy accumulator.  Routers report events; the meter
/// converts them to nanojoules using the design's parameters.  Recording
/// is gated by `set_enabled` so only the measurement window accumulates.
class EnergyMeter {
 public:
  explicit EnergyMeter(RouterDesign design)
      : params_(energy_params(design)) {}

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void crossbar_traversal() noexcept {
    if (enabled_) crossbar_pj_ += params_.crossbar_pj;
  }
  void link_traversal() noexcept {
    if (enabled_) link_pj_ += params_.link_pj;
  }
  void buffer_write() noexcept {
    if (enabled_) buffer_pj_ += params_.buffer_write_pj;
  }
  void buffer_read() noexcept {
    if (enabled_) buffer_pj_ += params_.buffer_read_pj;
  }
  void nack_hops(int hops) noexcept {
    if (enabled_) control_pj_ += params_.nack_hop_pj * hops;
  }

  [[nodiscard]] double buffer_nj() const noexcept { return buffer_pj_ * 1e-3; }
  [[nodiscard]] double crossbar_nj() const noexcept {
    return crossbar_pj_ * 1e-3;
  }
  [[nodiscard]] double link_nj() const noexcept { return link_pj_ * 1e-3; }
  [[nodiscard]] double control_nj() const noexcept {
    return control_pj_ * 1e-3;
  }
  [[nodiscard]] double total_nj() const noexcept {
    return buffer_nj() + crossbar_nj() + link_nj() + control_nj();
  }

  void reset() noexcept {
    buffer_pj_ = crossbar_pj_ = link_pj_ = control_pj_ = 0.0;
  }

  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

  // Snapshot protocol: the gate flag and the four accumulators (the
  // per-event parameters are configuration).  Doubles round-trip by bit
  // pattern, so restored accumulation continues bit-exactly.
  void save(SnapshotWriter& w) const {
    w.boolean(enabled_);
    w.f64(buffer_pj_);
    w.f64(crossbar_pj_);
    w.f64(link_pj_);
    w.f64(control_pj_);
  }
  void load(SnapshotReader& r) {
    enabled_ = r.boolean();
    buffer_pj_ = r.f64();
    crossbar_pj_ = r.f64();
    link_pj_ = r.f64();
    control_pj_ = r.f64();
  }

 private:
  EnergyParams params_;
  bool enabled_ = true;
  double buffer_pj_ = 0.0;
  double crossbar_pj_ = 0.0;
  double link_pj_ = 0.0;
  double control_pj_ = 0.0;
};

}  // namespace dxbar
