// Energy and area accounting on top of the parametric component models
// (power/component_models.hpp).
//
// EnergyParams/AreaParams are the per-design operating point the
// simulator consumes: derive_energy_params()/derive_area_params()
// assemble them from a SimConfig (tech node, flit width, buffer depth,
// crossbar radix from the topology) — there is no constants table.  At
// the paper's 65 nm / 1.0 V / 1 GHz / 128-bit point the derived values
// reproduce Table III: crossbar 13 pJ/flit (15 pJ for the unified
// transmission-gate crossbar), link 36 pJ, buffer write/read
// 2.8/2.2 pJ, and the DXbar = 1.33x / Unified = 1.25x Flit-Bless area
// ratios (guarded by tests/power_test.cpp).
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace dxbar {

/// Per-event energies in picojoules per flit event, at one derived
/// operating point (design + tech node + flit width + buffer depth).
struct EnergyParams {
  double crossbar_pj = 0.0;      ///< one crossbar traversal
  double link_pj = 0.0;          ///< one link traversal
  double buffer_write_pj = 0.0;  ///< one FIFO write
  double buffer_read_pj = 0.0;   ///< one FIFO read
  double nack_hop_pj = 0.0;      ///< one hop on the 1-bit NACK network
};

/// Router area decomposition in mm^2 at one derived operating point.
struct AreaParams {
  double crossbar_mm2 = 0.0;          ///< one matrix crossbar
  double unified_crossbar_mm2 = 0.0;  ///< matrix + transmission gates
  double buffer_bank_mm2 = 0.0;       ///< the input FIFO bank
  double damq_buffer_mm2 = 0.0;       ///< DAMQ shared pool + pointers
  double side_buffer_mm2 = 0.0;       ///< minBD side buffer + redir mux
  double links_mm2 = 0.0;             ///< four input links
  double nack_logic_mm2 = 0.0;        ///< SCARAB NACK circuit switch
};

/// Crossbar radix derived from the topology: every mesh/torus router
/// switches its link ports plus the local injection/ejection port.
[[nodiscard]] int crossbar_radix(const SimConfig& cfg) noexcept;

/// Assembles the per-event energies for `cfg.design` from the
/// component models at `cfg.tech_node` / `cfg.flit_bits` /
/// `cfg.buffer_depth` (Buffered 8 charges its two-bank organisation's
/// longer bitlines; the unified crossbar charges its transmission
/// gates).
[[nodiscard]] EnergyParams derive_energy_params(const SimConfig& cfg);

/// Assembles the component areas for `cfg` (design-independent: the
/// per-design composition is router_area_mm2).
[[nodiscard]] AreaParams derive_area_params(const SimConfig& cfg);

/// Total per-router area for a design (paper Table III column 1).
[[nodiscard]] double router_area_mm2(RouterDesign design,
                                     const AreaParams& p);

/// Static power one router of cfg.design burns: its composed area times
/// the node's leakage density (TechParams::leakage_mw_per_mm2).
[[nodiscard]] double router_leakage_mw(const SimConfig& cfg);

/// Static energy the whole network leaks over `cycles` router cycles at
/// the node's nominal clock, in nJ.  Reported as the *separate*
/// RunStats::energy_leakage_nj column — never folded into the dynamic
/// totals the paper's Table III pins at 65 nm.
[[nodiscard]] double network_leakage_nj(const SimConfig& cfg, Cycle cycles);

/// Critical-path timing reported by the paper (ns; both < 1 ns cycle).
struct TimingParams {
  double link_traversal_ns = 0.47;
  double unified_switch_ns = 0.27;
};

/// Per-category energy accumulator.  Routers report events; the meter
/// counts them and converts to nanojoules on demand using the derived
/// parameters it was constructed with.  Recording is gated by
/// `set_enabled` so only the measurement window accumulates.
///
/// Counting integer events instead of summing doubles makes the meter
/// fold-order independent: sharded runs keep one meter per shard and
/// absorb() them into the main meter each cycle, and because u64
/// addition is associative the totals are bit-identical for every shard
/// count — a double accumulator would pick up shard-dependent rounding.
class EnergyMeter {
 public:
  explicit EnergyMeter(const EnergyParams& params) : params_(params) {}
  explicit EnergyMeter(const SimConfig& cfg)
      : EnergyMeter(derive_energy_params(cfg)) {}

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void crossbar_traversal() noexcept {
    if (enabled_) ++crossbar_events_;
  }
  void link_traversal() noexcept {
    if (enabled_) ++link_events_;
  }
  void buffer_write() noexcept {
    if (enabled_) ++buffer_writes_;
  }
  void buffer_read() noexcept {
    if (enabled_) ++buffer_reads_;
  }
  void nack_hops(int hops) noexcept {
    if (enabled_) nack_hop_events_ += static_cast<std::uint64_t>(hops);
  }

  [[nodiscard]] double buffer_nj() const noexcept {
    return (static_cast<double>(buffer_writes_) * params_.buffer_write_pj +
            static_cast<double>(buffer_reads_) * params_.buffer_read_pj) *
           1e-3;
  }
  [[nodiscard]] double crossbar_nj() const noexcept {
    return static_cast<double>(crossbar_events_) * params_.crossbar_pj * 1e-3;
  }
  [[nodiscard]] double link_nj() const noexcept {
    return static_cast<double>(link_events_) * params_.link_pj * 1e-3;
  }
  [[nodiscard]] double control_nj() const noexcept {
    return static_cast<double>(nack_hop_events_) * params_.nack_hop_pj * 1e-3;
  }
  [[nodiscard]] double total_nj() const noexcept {
    return buffer_nj() + crossbar_nj() + link_nj() + control_nj();
  }

  /// Drains `other`'s counts into this meter (gated by this meter's
  /// enable flag, mirroring the per-event gate).  The source is zeroed
  /// either way so a disabled window cannot leak into a later fold.
  void absorb(EnergyMeter& other) noexcept {
    if (enabled_) {
      crossbar_events_ += other.crossbar_events_;
      link_events_ += other.link_events_;
      buffer_writes_ += other.buffer_writes_;
      buffer_reads_ += other.buffer_reads_;
      nack_hop_events_ += other.nack_hop_events_;
    }
    other.reset();
  }

  void reset() noexcept {
    crossbar_events_ = link_events_ = 0;
    buffer_writes_ = buffer_reads_ = nack_hop_events_ = 0;
  }

  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

  // Snapshot protocol: the gate flag and the five event counts (the
  // per-event parameters are configuration).  Version 2 layout — the v1
  // stream stored four double accumulators instead, so v1 snapshots are
  // rejected here rather than silently misread.
  void save(SnapshotWriter& w) const {
    w.boolean(enabled_);
    w.u64(crossbar_events_);
    w.u64(link_events_);
    w.u64(buffer_writes_);
    w.u64(buffer_reads_);
    w.u64(nack_hop_events_);
  }
  void load(SnapshotReader& r) {
    if (r.version() < 2) {
      throw SnapshotError(
          "energy meter requires snapshot version >= 2 (v1 stored double "
          "accumulators; re-record the checkpoint)");
    }
    enabled_ = r.boolean();
    crossbar_events_ = r.u64();
    link_events_ = r.u64();
    buffer_writes_ = r.u64();
    buffer_reads_ = r.u64();
    nack_hop_events_ = r.u64();
  }

 private:
  EnergyParams params_;
  bool enabled_ = true;
  std::uint64_t crossbar_events_ = 0;
  std::uint64_t link_events_ = 0;
  std::uint64_t buffer_writes_ = 0;
  std::uint64_t buffer_reads_ = 0;
  std::uint64_t nack_hop_events_ = 0;
};

}  // namespace dxbar
