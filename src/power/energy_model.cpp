#include "power/energy_model.hpp"

#include "power/component_models.hpp"

namespace dxbar {

int crossbar_radix(const SimConfig& cfg) noexcept {
  // Mesh and torus routers alike: four link directions plus the local
  // port.  (Torus wrap links replace edge absences, they do not add
  // ports.)
  (void)cfg;
  return kNumPorts;
}

EnergyParams derive_energy_params(const SimConfig& cfg) {
  const TechParams t = TechParams::node(cfg.tech_node);
  const int radix = crossbar_radix(cfg);
  const int bits = cfg.flit_bits;

  EnergyParams p;
  if (cfg.design == RouterDesign::UnifiedXbar) {
    // Transmission gates cut every output bus once per port segment so
    // the unified FIFO bank can tap it (paper: 15 pJ vs 13 pJ/flit).
    p.crossbar_pj =
        SegmentedCrossbarModel(radix, radix, bits, radix, t).traversal_pj();
  } else {
    p.crossbar_pj = MatrixCrossbarModel(radix, radix, bits, t).traversal_pj();
  }
  p.link_pj = LinkModel(bits, t).traversal_pj();

  if (cfg.design == RouterDesign::Damq) {
    // Shared-pool accesses span the whole pool's bitlines and carry the
    // linked-list pointer word alongside every flit.
    const DamqBufferModel pool(kNumLinkDirs, kNumLinkDirs * cfg.buffer_depth,
                               bits, t);
    p.buffer_write_pj = pool.write_pj();
    p.buffer_read_pj = pool.read_pj();
  } else if (cfg.design == RouterDesign::MinBD) {
    // Captures/redirections pay the side FIFO plus the redirection mux
    // that steers flits past the four link inputs.
    const SideBufferModel side(cfg.buffer_depth, bits, kNumLinkDirs, t);
    p.buffer_write_pj = side.write_pj();
    p.buffer_read_pj = side.read_pj();
  } else {
    // Buffered 8 keeps two buffer_depth-deep FIFOs per input behind one
    // access port: the shared bitline spans both, so accesses pay the
    // doubled-depth bitline capacitance.
    const int access_depth = cfg.design == RouterDesign::Buffered8
                                 ? 2 * cfg.buffer_depth
                                 : cfg.buffer_depth;
    const FifoBufferModel fifo(kNumLinkDirs, access_depth, bits, t);
    p.buffer_write_pj = fifo.write_pj();
    p.buffer_read_pj = fifo.read_pj();
  }
  p.nack_hop_pj = NackLinkModel(t).hop_pj();
  return p;
}

AreaParams derive_area_params(const SimConfig& cfg) {
  const TechParams t = TechParams::node(cfg.tech_node);
  const int radix = crossbar_radix(cfg);
  const int bits = cfg.flit_bits;

  AreaParams a;
  a.crossbar_mm2 = MatrixCrossbarModel(radix, radix, bits, t).area_mm2();
  a.unified_crossbar_mm2 =
      SegmentedCrossbarModel(radix, radix, bits, radix, t).area_mm2();
  a.buffer_bank_mm2 =
      FifoBufferModel(kNumLinkDirs, cfg.buffer_depth, bits, t).area_mm2();
  a.damq_buffer_mm2 =
      DamqBufferModel(kNumLinkDirs, kNumLinkDirs * cfg.buffer_depth, bits, t)
          .area_mm2();
  a.side_buffer_mm2 =
      SideBufferModel(cfg.buffer_depth, bits, kNumLinkDirs, t).area_mm2();
  a.links_mm2 = static_cast<double>(kNumLinkDirs) *
                LinkModel(bits, t).area_mm2();
  a.nack_logic_mm2 = NackLinkModel(t).area_mm2();
  return a;
}

double router_area_mm2(RouterDesign design, const AreaParams& p) {
  switch (design) {
    case RouterDesign::FlitBless:
      return p.crossbar_mm2 + p.links_mm2;
    case RouterDesign::Scarab:
      return p.crossbar_mm2 + p.links_mm2 + p.nack_logic_mm2;
    case RouterDesign::Buffered4:
      return p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::Buffered8:
      return p.crossbar_mm2 + 2.0 * p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::DXbar:
      return 2.0 * p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::UnifiedXbar:
      return p.unified_crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::BufferedVC:
      // Same storage as Buffered 4 plus VC allocation logic (~the NACK
      // circuit's footprint — both are small control blocks).
      return p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2 +
             p.nack_logic_mm2;
    case RouterDesign::Afc:
      // Buffered 4 storage plus the mode-switching control logic.
      return p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2 +
             p.nack_logic_mm2;
    case RouterDesign::Damq:
      // Buffered-4 crossbar with the shared pool (pointer overhead
      // included) in place of the private FIFO bank.
      return p.crossbar_mm2 + p.damq_buffer_mm2 + p.links_mm2;
    case RouterDesign::MinBD:
      // Bufferless substrate plus the side buffer and its mux.
      return p.crossbar_mm2 + p.side_buffer_mm2 + p.links_mm2;
  }
  return 0.0;
}

double router_leakage_mw(const SimConfig& cfg) {
  const TechParams t = TechParams::node(cfg.tech_node);
  return router_area_mm2(cfg.design, derive_area_params(cfg)) *
         t.leakage_mw_per_mm2;
}

double network_leakage_nj(const SimConfig& cfg, Cycle cycles) {
  const TechParams t = TechParams::node(cfg.tech_node);
  // mW * ns = pJ; one cycle is 1/freq_ghz ns at the nominal clock.
  const double ns = static_cast<double>(cycles) / t.freq_ghz;
  return static_cast<double>(cfg.num_nodes()) * router_leakage_mw(cfg) * ns *
         1e-3;
}

}  // namespace dxbar
