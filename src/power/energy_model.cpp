#include "power/energy_model.hpp"

namespace dxbar {

EnergyParams energy_params(RouterDesign design) {
  EnergyParams p;
  switch (design) {
    case RouterDesign::UnifiedXbar:
      // Transmission gates on every output segment (paper: 15 pJ/flit).
      p.crossbar_pj = 15.0;
      break;
    case RouterDesign::Buffered8:
      // Two 4-flit FIFOs per input: longer bitlines, higher access energy.
      p.buffer_write_pj *= 1.25;
      p.buffer_read_pj *= 1.25;
      break;
    default:
      break;
  }
  return p;
}

double router_area_mm2(RouterDesign design, const AreaParams& p) {
  switch (design) {
    case RouterDesign::FlitBless:
      return p.crossbar_mm2 + p.links_mm2;
    case RouterDesign::Scarab:
      return p.crossbar_mm2 + p.links_mm2 + p.nack_logic_mm2;
    case RouterDesign::Buffered4:
      return p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::Buffered8:
      return p.crossbar_mm2 + 2.0 * p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::DXbar:
      return 2.0 * p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::UnifiedXbar:
      return p.unified_crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2;
    case RouterDesign::BufferedVC:
      // Same storage as Buffered 4 plus VC allocation logic (~the NACK
      // circuit's footprint — both are small control blocks).
      return p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2 +
             p.nack_logic_mm2;
    case RouterDesign::Afc:
      // Buffered 4 storage plus the mode-switching control logic.
      return p.crossbar_mm2 + p.buffer_bank_mm2 + p.links_mm2 +
             p.nack_logic_mm2;
  }
  return 0.0;
}

}  // namespace dxbar
