// Technology parameters for the Orion-style parametric energy/area
// model (component_models.hpp).
//
// One TechParams bundle describes a process node: supply voltage,
// clock, per-mm wire capacitances, device capacitances and unit areas.
// Every per-event energy downstream is a switched-capacitance formula
//     E = bits * activity * 1/2 * C_bit * Vdd^2
// so the whole model scales with flit width, crossbar radix, buffer
// depth and node instead of being a table of constants.
//
// The 65 nm preset is calibrated so the derived values land on the
// paper's Table III (TSMC 65 nm, 1.0 V, 1 GHz, 128-bit flits):
// crossbar 13 pJ/flit (unified 15 pJ), link 36 pJ, buffer write/read
// 2.8/2.2 pJ at depth 4, and the area decomposition behind the
// DXbar = 1.33x / Unified = 1.25x Flit-Bless ratios.  The 32 nm and
// 16 nm presets apply constant-field-style scaling (device caps and
// lengths shrink linearly, areas quadratically, Vdd drops, per-mm wire
// capacitance improves only mildly).  DESIGN.md section 13 derives
// every constant.
#pragma once

namespace dxbar {

struct TechParams {
  int node_nm = 65;        ///< feature size (65, 32 or 16)
  double vdd = 1.0;        ///< supply voltage (V)
  double freq_ghz = 1.0;   ///< nominal clock (documentation; dynamic
                           ///< energy per event is frequency-free)
  /// Switching activity: fraction of flit bits that toggle per event.
  double activity = 0.5;

  // --- wires (fF per mm) ----------------------------------------------
  double xbar_wire_cap_ff_mm = 250.0;  ///< crossbar-grid wire
  double link_wire_cap_ff_mm = 500.0;  ///< repeatered inter-router link

  // --- geometry --------------------------------------------------------
  double xbar_pitch_um = 0.1862;  ///< crossbar wire track pitch
  double link_length_mm = 2.25;   ///< router-to-router tile pitch

  // --- device capacitances (fF) ---------------------------------------
  double connector_cap_ff = 30.0;   ///< crosspoint (tri-state drain) load
  double driver_cap_ff = 46.6;      ///< crossbar output driver input cap
  double tgate_cap_ff = 6.25;       ///< transmission-gate diffusion cap
  double cell_write_cap_ff = 65.625;    ///< FIFO cell write (word line + cell)
  double cell_read_cap_ff = 51.5625;    ///< FIFO cell read (sense path)
  double bitline_write_cap_ff = 5.46875;  ///< per FIFO entry on the write
                                          ///< bitline
  double bitline_read_cap_ff = 4.296875;  ///< per FIFO entry on the read
                                          ///< bitline
  double nack_ctrl_cap_ff = 4875.0;  ///< NACK circuit-switch control
                                     ///< (effective cap per hop event)

  // --- leakage ---------------------------------------------------------
  /// Static power density (mW per mm^2 of router logic at nominal Vdd
  /// and temperature).  ITRS-flavoured trajectory: leakage worsens into
  /// late planar nodes (32 nm) and drops again when FinFETs restore
  /// electrostatic control (16 nm).  Feeds the *separate* leakage
  /// column (RunStats::energy_leakage_nj) — the dynamic-only totals
  /// that Table III pins stay untouched.
  double leakage_mw_per_mm2 = 80.0;

  // --- unit areas ------------------------------------------------------
  double cell_area_um2 = 8.252;        ///< FIFO storage, per bit
  double tgate_area_um2 = 10.47;       ///< one transmission gate
  double link_area_um2_per_bit_mm = 69.44;  ///< wire + repeaters
  double nack_logic_area_um2 = 2000.0;      ///< NACK circuit switch

  /// Preset for a supported node (65, 32 or 16 nm).  Unsupported nodes
  /// are rejected by SimConfig::validate() before reaching here; this
  /// falls back to 65 nm so the model never divides by garbage.
  [[nodiscard]] static TechParams node(int nm);
};

}  // namespace dxbar
