// Orion-style per-component energy/area models (after graphite-atac's
// Crossbar.h, SNIPPETS.md snippet 1): each component derives its
// per-event switched capacitance and silicon footprint from structural
// parameters (radix, data width, segment count, buffer depth) plus a
// TechParams bundle, instead of reading Table III constants.
//
// Conventions: energies are pJ per event (one flit traversal / one
// FIFO access / one 1-bit NACK hop), areas are mm^2, and the per-bit
// energy is activity * 1/2 * C * Vdd^2 with C in fF (fF * V^2 = fJ,
// hence the 1e-3 to pJ).
#pragma once

#include "power/tech_params.hpp"

namespace dxbar {

/// pJ switched by `bits` wires each toggling capacitance `cap_ff`.
[[nodiscard]] inline double switch_pj(int bits, double cap_ff,
                                      const TechParams& t) {
  return static_cast<double>(bits) * t.activity * 0.5 * cap_ff * t.vdd *
         t.vdd * 1e-3;
}

/// Matrix crossbar: num_in horizontal input buses crossing num_out
/// vertical output buses, bits wires each, a tri-state connector at
/// every crosspoint.  One traversal charges one full input wire (plus
/// the connector drains hanging off it) and one full output wire (plus
/// its connectors and the output driver).
class MatrixCrossbarModel {
 public:
  MatrixCrossbarModel(int num_in, int num_out, int bits,
                      const TechParams& t) noexcept
      : num_in_(num_in), num_out_(num_out), bits_(bits), t_(t) {}

  /// Length of one input (resp. output) wire: it spans every output
  /// (resp. input) bus at bits tracks of xbar_pitch each.
  [[nodiscard]] double in_wire_mm() const noexcept {
    return static_cast<double>(num_out_) * bits_ * t_.xbar_pitch_um * 1e-3;
  }
  [[nodiscard]] double out_wire_mm() const noexcept {
    return static_cast<double>(num_in_) * bits_ * t_.xbar_pitch_um * 1e-3;
  }

  /// Capacitance one bit switches per traversal (fF).
  [[nodiscard]] double traversal_cap_ff() const noexcept {
    const double c_in = in_wire_mm() * t_.xbar_wire_cap_ff_mm +
                        static_cast<double>(num_out_) * t_.connector_cap_ff;
    const double c_out = out_wire_mm() * t_.xbar_wire_cap_ff_mm +
                         static_cast<double>(num_in_) * t_.connector_cap_ff +
                         t_.driver_cap_ff;
    return c_in + c_out;
  }

  [[nodiscard]] double traversal_pj() const noexcept {
    return switch_pj(bits_, traversal_cap_ff(), t_);
  }

  /// Wiring-dominated footprint: the input-wire span times the
  /// output-wire span.
  [[nodiscard]] double area_mm2() const noexcept {
    return in_wire_mm() * out_wire_mm();
  }

 protected:
  int num_in_;
  int num_out_;
  int bits_;
  TechParams t_;
};

/// Segmented (transmission-gate) crossbar — the unified design: a
/// matrix crossbar whose output buses are cut into `segments` pieces by
/// transmission gates so the FIFO bank can tap the bus.  Each traversal
/// additionally charges two diffusion caps per segment; each gate adds
/// its own silicon on every output bit.
class SegmentedCrossbarModel : public MatrixCrossbarModel {
 public:
  SegmentedCrossbarModel(int num_in, int num_out, int bits, int segments,
                         const TechParams& t) noexcept
      : MatrixCrossbarModel(num_in, num_out, bits, t), segments_(segments) {}

  [[nodiscard]] double traversal_pj() const noexcept {
    const double gate_cap =
        2.0 * static_cast<double>(segments_) * t_.tgate_cap_ff;
    return MatrixCrossbarModel::traversal_pj() +
           switch_pj(bits_, gate_cap, t_);
  }

  [[nodiscard]] double area_mm2() const noexcept {
    return MatrixCrossbarModel::area_mm2() +
           static_cast<double>(segments_) * bits_ * t_.tgate_area_um2 * 1e-6;
  }

 private:
  int segments_;
};

/// Bank of `num_fifos` input FIFOs, `depth` entries of `bits` each.
/// Access energy is cell plus bitline: the bitline capacitance grows
/// with depth, which is what makes deeper buffers (Buffered 8) pay more
/// per access.
class FifoBufferModel {
 public:
  FifoBufferModel(int num_fifos, int depth, int bits,
                  const TechParams& t) noexcept
      : num_fifos_(num_fifos), depth_(depth), bits_(bits), t_(t) {}

  [[nodiscard]] double write_pj() const noexcept {
    return switch_pj(bits_,
                     t_.cell_write_cap_ff +
                         static_cast<double>(depth_) * t_.bitline_write_cap_ff,
                     t_);
  }
  [[nodiscard]] double read_pj() const noexcept {
    return switch_pj(bits_,
                     t_.cell_read_cap_ff +
                         static_cast<double>(depth_) * t_.bitline_read_cap_ff,
                     t_);
  }
  [[nodiscard]] double area_mm2() const noexcept {
    return static_cast<double>(num_fifos_) * depth_ * bits_ *
           t_.cell_area_um2 * 1e-6;
  }

 private:
  int num_fifos_;
  int depth_;
  int bits_;
  TechParams t_;
};

/// One inter-router link: `bits` repeatered wires of one tile pitch.
class LinkModel {
 public:
  LinkModel(int bits, const TechParams& t) noexcept : bits_(bits), t_(t) {}

  [[nodiscard]] double traversal_pj() const noexcept {
    return switch_pj(bits_, t_.link_length_mm * t_.link_wire_cap_ff_mm, t_);
  }
  /// Area of one link (wire tracks + repeaters).
  [[nodiscard]] double area_mm2() const noexcept {
    return static_cast<double>(bits_) * t_.link_length_mm *
           t_.link_area_um2_per_bit_mm * 1e-6;
  }

 private:
  int bits_;
  TechParams t_;
};

/// Bits needed to index `n` entries (next-pointer width of a linked-list
/// buffer organisation); n <= 1 needs no pointer.
[[nodiscard]] constexpr int index_bits(int n) noexcept {
  int b = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++b;
  return b;
}

/// DAMQ shared buffer: one `slots`-deep pool whose entries are chained
/// into per-input linked lists (Tamir & Frazier's organisation).  Every
/// slot stores the flit plus a next-pointer of index_bits(slots) bits,
/// and every access drives bitlines spanning the whole pool — that is
/// the energy price of sharing relative to four private FIFOs of
/// slots/4 entries.  The free list and the per-queue head/tail pointer
/// registers add a small register-file footprint on top.
class DamqBufferModel {
 public:
  DamqBufferModel(int num_queues, int slots, int bits,
                  const TechParams& t) noexcept
      : num_queues_(num_queues),
        slots_(slots),
        word_bits_(bits + index_bits(slots)),
        t_(t) {}

  /// Pointer overhead per stored entry (bits).
  [[nodiscard]] int pointer_bits() const noexcept {
    return index_bits(slots_);
  }

  [[nodiscard]] double write_pj() const noexcept {
    return switch_pj(word_bits_,
                     t_.cell_write_cap_ff +
                         static_cast<double>(slots_) * t_.bitline_write_cap_ff,
                     t_);
  }
  [[nodiscard]] double read_pj() const noexcept {
    return switch_pj(word_bits_,
                     t_.cell_read_cap_ff +
                         static_cast<double>(slots_) * t_.bitline_read_cap_ff,
                     t_);
  }
  [[nodiscard]] double area_mm2() const noexcept {
    // Pool storage (flit + pointer per slot) plus head/tail pointer
    // registers per logical queue and one free-list head register.
    const int regs = (2 * num_queues_ + 1) * index_bits(slots_);
    return (static_cast<double>(slots_) * word_bits_ +
            static_cast<double>(regs)) *
           t_.cell_area_um2 * 1e-6;
  }

 private:
  int num_queues_;
  int slots_;
  int word_bits_;  ///< flit bits + next-pointer bits
  TechParams t_;
};

/// MinBD's side buffer: one small FIFO shared by the whole router plus
/// the redirection mux that taps it into the input pipeline — one
/// transmission gate per bit per input port, charged on every access
/// (capture steers a pipeline flit in, redirection steers a stored flit
/// past the link inputs) and counted in the footprint.
class SideBufferModel {
 public:
  SideBufferModel(int depth, int bits, int num_ports,
                  const TechParams& t) noexcept
      : fifo_(1, depth, bits, t), bits_(bits), num_ports_(num_ports), t_(t) {}

  [[nodiscard]] double mux_pj() const noexcept {
    return switch_pj(bits_,
                     2.0 * static_cast<double>(num_ports_) * t_.tgate_cap_ff,
                     t_);
  }
  [[nodiscard]] double write_pj() const noexcept {
    return fifo_.write_pj() + mux_pj();
  }
  [[nodiscard]] double read_pj() const noexcept {
    return fifo_.read_pj() + mux_pj();
  }
  [[nodiscard]] double area_mm2() const noexcept {
    return fifo_.area_mm2() + static_cast<double>(num_ports_) * bits_ *
                                  t_.tgate_area_um2 * 1e-6;
  }

 private:
  FifoBufferModel fifo_;
  int bits_;
  int num_ports_;
  TechParams t_;
};

/// SCARAB's dedicated NACK network: a 1-bit circuit-switched wire per
/// hop plus the switch-control logic it drags along.
class NackLinkModel {
 public:
  explicit NackLinkModel(const TechParams& t) noexcept : t_(t) {}

  [[nodiscard]] double hop_pj() const noexcept {
    return switch_pj(1,
                     t_.link_length_mm * t_.link_wire_cap_ff_mm +
                         t_.nack_ctrl_cap_ff,
                     t_);
  }
  [[nodiscard]] double area_mm2() const noexcept {
    return t_.nack_logic_area_um2 * 1e-6;
  }

 private:
  TechParams t_;
};

}  // namespace dxbar
