// Figure 5 — throughput (accepted vs offered load) under Uniform Random
// traffic for all router designs on the 8x8 mesh.
//
// Paper shape to reproduce: DXbar DOR saturates at >0.4 (best), DXbar WF
// slightly below, Buffered 8 ~20% below DXbar, and Buffered 4 /
// Flit-Bless / SCARAB ~40% below with saturation under 0.3.
#include "bench_util.hpp"

using namespace dxbar;
using namespace dxbar::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_args(argc, argv);

  std::vector<double> loads;
  for (double l = 0.1; l <= 0.9 + 1e-9; l += 0.1) loads.push_back(l);

  std::vector<std::string> x;
  for (double l : loads) x.push_back(fmt(l, "%.1f"));

  std::vector<std::string> labels;
  std::vector<std::vector<double>> accepted;
  std::vector<SimConfig> cfgs;
  for (const DesignVariant& dv : figure_designs()) {
    labels.emplace_back(dv.label);
    for (double l : loads) {
      SimConfig c = opt.base;
      c.pattern = TrafficPattern::UniformRandom;
      c.design = dv.design;
      c.routing = dv.routing;
      c.offered_load = l;
      cfgs.push_back(c);
    }
  }
  const auto stats = run_sweep(cfgs);
  for (std::size_t s = 0; s < labels.size(); ++s) {
    std::vector<double> col;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      col.push_back(stats[s * loads.size() + i].accepted_load);
    }
    accepted.push_back(std::move(col));
  }

  print_table(
      "Figure 5: accepted load (flits/node/cycle) vs offered load, UR 8x8",
      "offered", x, labels, accepted);

  // Saturation summary (first offered load where acceptance < 90%).
  std::printf("\nSaturation points (acceptance < 90%% of offered):\n");
  for (std::size_t s = 0; s < labels.size(); ++s) {
    double sat = loads.back();
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (accepted[s][i] < 0.9 * loads[i]) {
        sat = loads[i];
        break;
      }
    }
    std::printf("  %-12s %.2f\n", labels[s].c_str(), sat);
  }
  return 0;
}
