// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick          shrink simulated cycle counts for smoke runs
//   --csv <dir>      additionally write every printed table as CSV
//   key=value ...    any SimConfig override (see common/config.hpp)
#pragma once

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/dxbar.hpp"

namespace dxbar::bench {

/// Directory for CSV table dumps; empty = disabled.
inline std::string& csv_dir() {
  static std::string dir;
  return dir;
}

struct BenchOptions {
  bool quick = false;
  SimConfig base;  ///< defaults + command-line overrides
};

/// Parses argv; exits with a message on bad input.  `quick` shrinks the
/// measurement window and drain cap by ~4x.
inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions opt;
  opt.base.warmup_cycles = 1000;
  opt.base.measure_cycles = 4000;
  opt.base.drain_cycles = 6000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      continue;
    }
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv_dir() = (i + 1 < argc) ? argv[++i] : ".";
      continue;
    }
    if (const auto err = apply_override(opt.base, argv[i]); !err.empty()) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      std::exit(1);
    }
  }
  if (opt.quick) {
    opt.base.warmup_cycles = 300;
    opt.base.measure_cycles = 1200;
    opt.base.drain_cycles = 2000;
  }
  return opt;
}

/// The six designs of the paper's synthetic-traffic figures, in legend
/// order.  DXbar appears twice (DOR and WF variants).
struct DesignVariant {
  const char* label;
  RouterDesign design;
  RoutingAlgo routing;
};

inline const std::vector<DesignVariant>& figure_designs() {
  static const std::vector<DesignVariant> v = {
      {"Flit-Bless", RouterDesign::FlitBless, RoutingAlgo::DOR},
      {"SCARAB", RouterDesign::Scarab, RoutingAlgo::DOR},
      {"Buffered 4", RouterDesign::Buffered4, RoutingAlgo::DOR},
      {"Buffered 8", RouterDesign::Buffered8, RoutingAlgo::DOR},
      {"DXbar DOR", RouterDesign::DXbar, RoutingAlgo::DOR},
      {"DXbar WF", RouterDesign::DXbar, RoutingAlgo::WestFirst},
      {"Unified DOR", RouterDesign::UnifiedXbar, RoutingAlgo::DOR},
  };
  return v;
}

/// Writes a table as CSV into csv_dir() under a slug of its title.
inline void write_csv(const std::string& title, const char* x_label,
                      const std::vector<std::string>& x_values,
                      const std::vector<std::string>& series_labels,
                      const std::vector<std::vector<double>>& values) {
  if (csv_dir().empty()) return;
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 60) break;
  }
  std::ofstream out(csv_dir() + "/" + slug + ".csv");
  if (!out) return;
  out << x_label;
  for (const auto& s : series_labels) out << ',' << s;
  out << '\n';
  for (std::size_t r = 0; r < x_values.size(); ++r) {
    out << x_values[r];
    for (std::size_t c = 0; c < series_labels.size(); ++c) {
      out << ',' << values[c][r];
    }
    out << '\n';
  }
}

/// Prints a row-per-x, column-per-series table (and mirrors it to CSV
/// when --csv is active).
inline void print_table(const std::string& title, const char* x_label,
                        const std::vector<std::string>& x_values,
                        const std::vector<std::string>& series_labels,
                        const std::vector<std::vector<double>>& values,
                        const char* fmt = "%10.4f") {
  write_csv(title, x_label, x_values, series_labels, values);
  std::printf("\n%s\n", title.c_str());
  std::printf("%-10s", x_label);
  for (const auto& s : series_labels) std::printf(" %12s", s.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < x_values.size(); ++r) {
    std::printf("%-10s", x_values[r].c_str());
    for (std::size_t c = 0; c < series_labels.size(); ++c) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), fmt, values[c][r]);
      std::printf(" %12s", buf);
    }
    std::printf("\n");
  }
}

inline std::string fmt(double v, const char* f = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

}  // namespace dxbar::bench
