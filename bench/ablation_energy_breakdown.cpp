// Ablation — energy breakdown by component (buffer / crossbar / link /
// control) per design.  The paper's motivation opens with input buffers
// consuming ~40% of the conventional NoC power budget; this bench shows
// where each design actually spends, at a low and a high load.
#include "bench_util.hpp"

using namespace dxbar;
using namespace dxbar::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_args(argc, argv);

  for (double load : {0.15, 0.5}) {
    std::vector<std::string> labels;
    std::vector<SimConfig> cfgs;
    for (const DesignVariant& dv : figure_designs()) {
      labels.emplace_back(dv.label);
      SimConfig c = opt.base;
      c.design = dv.design;
      c.routing = dv.routing;
      c.offered_load = load;
      cfgs.push_back(c);
    }
    const auto stats = run_sweep(cfgs);

    std::printf("\nEnergy breakdown at offered load %.2f (%% of total, plus "
                "nJ/packet):\n",
                load);
    std::printf("%-14s %8s %8s %8s %8s %12s\n", "design", "buffer", "xbar",
                "link", "control", "total nJ/pkt");
    for (std::size_t s = 0; s < labels.size(); ++s) {
      const RunStats& r = stats[s];
      const double total = r.total_energy_nj();
      std::printf("%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %12.3f\n",
                  labels[s].c_str(), 100.0 * r.energy_buffer_nj / total,
                  100.0 * r.energy_crossbar_nj / total,
                  100.0 * r.energy_link_nj / total,
                  100.0 * r.energy_control_nj / total,
                  r.energy_per_packet_nj());
    }
  }

  std::puts("\nReading: the buffered baselines pay the buffer share on");
  std::puts("every hop; DXbar only on conflicts; the bufferless designs");
  std::puts("convert that saving into extra link/crossbar traversals once");
  std::puts("deflections or retransmissions kick in.");
  return 0;
}
