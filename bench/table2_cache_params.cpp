// Table II — cache and memory parameters used for the SPLASH-2 suite
// simulation.  The values that shape network traffic (directory and
// memory latencies, MSHR entries, block size, MC count) are read back
// from the live MachineParams so the table cannot drift from the code.
#include <cstdio>

#include "traffic/splash.hpp"

int main() {
  const dxbar::MachineParams m;
  std::puts("Table II: cache and memory parameters (SPLASH-2 substitute)");
  std::puts("------------------------------------------------------------");
  std::puts("L2 caches                 16");
  std::puts("Cache size                1 MB");
  std::puts("Cache associativity       16-way");
  std::puts("Cache access latency      4 cycles");
  std::puts("Cache write-back policy   write-back");
  std::puts("Cache block size          64 B");
  std::printf("MSHR entries              %d\n", m.mshr_entries);
  std::puts("Coherence protocol        MESI");
  std::puts("Memory controllers        16 (at the odd-odd mesh nodes)");
  std::puts("Memory size               4 GB");
  std::printf("Memory latency            %llu cycles\n",
              static_cast<unsigned long long>(m.memory_latency));
  std::printf("Directory latency         %llu cycles\n",
              static_cast<unsigned long long>(m.directory_latency));
  std::printf("Data packet               %d flits (64 B / 128-bit flits)\n",
              m.data_packet_flits);
  std::printf("Control packet            %d flit\n", m.control_packet_flits);
  std::puts("");
  std::puts("Role in this reproduction: these parameters drive the");
  std::puts("closed-loop coherence workload in traffic/splash.* (request ->");
  std::puts("directory -> data reply round trips, MSHR self-throttling).");
  return 0;
}
