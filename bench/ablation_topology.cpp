// Ablation (extension) — mesh vs torus: wrap links double the bisection
// bandwidth and cut the average distance by ~25% on an 8x8 network; the
// escape-valve designs exploit them without VC datelines.
#include "bench_util.hpp"

using namespace dxbar;
using namespace dxbar::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_args(argc, argv);

  std::vector<double> loads;
  for (double l = 0.1; l <= 0.9 + 1e-9; l += 0.1) loads.push_back(l);
  std::vector<std::string> x;
  for (double l : loads) x.push_back(fmt(l, "%.1f"));

  struct Variant {
    const char* label;
    RouterDesign design;
    bool torus;
  };
  const std::vector<Variant> variants = {
      {"DXbar mesh", RouterDesign::DXbar, false},
      {"DXbar torus", RouterDesign::DXbar, true},
      {"Bless mesh", RouterDesign::FlitBless, false},
      {"Bless torus", RouterDesign::FlitBless, true},
  };

  std::vector<std::string> labels;
  std::vector<SimConfig> cfgs;
  for (const auto& v : variants) {
    labels.emplace_back(v.label);
    for (double l : loads) {
      SimConfig c = opt.base;
      c.design = v.design;
      c.torus = v.torus;
      c.offered_load = l;
      cfgs.push_back(c);
    }
  }
  const auto stats = run_sweep(cfgs);

  std::vector<std::vector<double>> thr, hops;
  for (std::size_t s = 0; s < labels.size(); ++s) {
    std::vector<double> tcol, hcol;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      tcol.push_back(stats[s * loads.size() + i].accepted_load);
      hcol.push_back(stats[s * loads.size() + i].avg_hops);
    }
    thr.push_back(std::move(tcol));
    hops.push_back(std::move(hcol));
  }

  print_table("Topology: accepted load, mesh vs torus (UR)", "offered", x,
              labels, thr);
  print_table("Topology: avg hops per flit", "offered", x, labels, hops,
              "%10.2f");
  return 0;
}
