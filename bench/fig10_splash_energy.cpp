// Figure 10 — network energy per packet for the nine SPLASH-2 workloads
// (coherence-traffic substitute).
//
// Paper shape: Flit-Bless consumes far more energy than DXbar (the paper
// reports >=16x — deflections average ~50 per packet on its traces) and
// SCARAB >=2x; DXbar is the most frugal.
#include "bench_util.hpp"
#include "sim/sweep.hpp"
#include "traffic/splash.hpp"

using namespace dxbar;
using namespace dxbar::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_args(argc, argv);

  std::vector<SplashProfile> apps = splash_profiles();
  if (opt.quick) {
    for (auto& a : apps) a.transactions_per_node = 30;
  }

  // Same closed-loop methodology as Fig 9.
  std::vector<std::string> labels;
  std::vector<std::pair<SimConfig, const SplashProfile*>> jobs;
  for (const DesignVariant& dv : figure_designs()) {
    labels.emplace_back(dv.label);
    for (const SplashProfile& app : apps) {
      SimConfig c = opt.base;
      c.design = dv.design;
      c.routing = dv.routing;
      jobs.emplace_back(c, &app);
    }
  }

  std::vector<ClosedLoopResult> results(jobs.size());
  parallel_for(jobs.size(), [&](std::size_t i) {
    results[i] = run_splash(jobs[i].first, *jobs[i].second, 2'000'000);
  });

  std::vector<std::string> x;
  for (const auto& app : apps) x.emplace_back(app.name);

  std::vector<std::vector<double>> energy;
  for (std::size_t s = 0; s < labels.size(); ++s) {
    std::vector<double> col;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      col.push_back(results[s * apps.size() + a].energy_per_packet_nj);
    }
    energy.push_back(std::move(col));
  }

  print_table("Figure 10: energy per packet (nJ), SPLASH-2 substitute",
              "app", x, labels, energy, "%10.3f");

  // Ratios versus DXbar DOR (series index 4).
  const std::size_t dxbar = 4;
  std::printf("\nMean energy ratio vs DXbar DOR:\n");
  for (std::size_t s = 0; s < labels.size(); ++s) {
    double ratio = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      ratio += energy[s][a] / energy[dxbar][a];
    }
    std::printf("  %-12s %.2fx\n", labels[s].c_str(),
                ratio / static_cast<double>(apps.size()));
  }
  return 0;
}
