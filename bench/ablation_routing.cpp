// Ablation — routing algorithms on DXbar: the paper's DOR / West-First
// pair plus the extension turn models (negative-first, north-last),
// across the adversarial synthetic patterns where adaptivity matters.
#include "bench_util.hpp"

using namespace dxbar;
using namespace dxbar::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_args(argc, argv);

  const std::vector<RoutingAlgo> algos = {
      RoutingAlgo::DOR, RoutingAlgo::WestFirst, RoutingAlgo::NegativeFirst,
      RoutingAlgo::NorthLast};
  const std::vector<TrafficPattern> patterns = {
      TrafficPattern::UniformRandom, TrafficPattern::BitReversal,
      TrafficPattern::Transpose,     TrafficPattern::PerfectShuffle,
      TrafficPattern::Tornado,       TrafficPattern::Complement};

  std::vector<std::string> x;
  for (TrafficPattern p : patterns) x.emplace_back(to_string(p));

  std::vector<std::string> labels;
  std::vector<SimConfig> cfgs;
  for (RoutingAlgo a : algos) {
    labels.emplace_back(to_string(a));
    for (TrafficPattern p : patterns) {
      SimConfig c = opt.base;
      c.design = RouterDesign::DXbar;
      c.routing = a;
      c.pattern = p;
      c.offered_load = 0.5;
      cfgs.push_back(c);
    }
  }
  const auto stats = run_sweep(cfgs);

  std::vector<std::vector<double>> thr, lat;
  for (std::size_t s = 0; s < labels.size(); ++s) {
    std::vector<double> tcol, lcol;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      tcol.push_back(stats[s * patterns.size() + i].accepted_load);
      lcol.push_back(stats[s * patterns.size() + i].latency_p99);
    }
    thr.push_back(std::move(tcol));
    lat.push_back(std::move(lcol));
  }

  print_table("Routing ablation: accepted load at offered 0.5, DXbar",
              "pattern", x, labels, thr);
  print_table("Routing ablation: p99 latency (cycles)", "pattern", x, labels,
              lat, "%10.0f");
  return 0;
}
