// dxbar_bench — the one driver for every figure, table and ablation of
// the paper reproduction.
//
//   dxbar_bench --list                 # what exists, with paper shapes
//   dxbar_bench fig5 [--quick]         # run one experiment
//   dxbar_bench --all --quick          # smoke-run everything
//   dxbar_bench fig5 --json out/ --csv out/   # machine-readable outputs
//   dxbar_bench fig5 --resume camp/    # crash-resumable campaign
//   dxbar_bench fig5 warmup_cycles=500 seed=7  # config overrides
//
// Overrides always win over --quick, regardless of argument order.
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sim/replica_batch.hpp"

using namespace dxbar;
using namespace dxbar::exp;

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: dxbar_bench --list\n"
      "       dxbar_bench <experiment>... [options] [key=value...]\n"
      "       dxbar_bench --all [options] [key=value...]\n"
      "\n"
      "options:\n"
      "  --list          list registered experiments and exit\n"
      "  --all           run every registered experiment\n"
      "  --filter GLOB   run registered experiments matching GLOB\n"
      "                  (`*` and `?`; composes with --all and names)\n"
      "  --quick         ~4x shorter phase windows (smoke runs)\n"
      "  --threads N     worker threads (0 = hardware concurrency)\n"
      "  --seeds N       run every grid point N times with independent\n"
      "                  measurement seeds (one shared warmup, lockstep\n"
      "                  replicas); tables gain mean and ±ci95 columns\n"
      "  --csv DIR       mirror every table to DIR/<exp>_<title>.csv\n"
      "  --json DIR      write DIR/<exp>.json (schema v%d)\n"
      "  --resume DIR    run grids as crash-resumable campaigns in DIR\n"
      "  key=value       SimConfig override (applied after --quick;\n"
      "                  overrides always win regardless of order)\n",
      kJsonSchemaVersion);
}

void print_list() {
  for (const Experiment* e : Registry::instance().all()) {
    std::printf("%-28s %s\n", e->name.c_str(), e->title.c_str());
    if (!e->paper_shape.empty()) {
      std::printf("%-28s   expected: %s\n", "", e->paper_shape.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(std::span<const char* const>(
      argv + 1, static_cast<std::size_t>(argc - 1)));
  if (!args.error.empty()) {
    std::fprintf(stderr, "dxbar_bench: %s\n\n", args.error.c_str());
    print_usage(stderr);
    return 2;
  }
  if (args.list) {
    print_list();
    return 0;
  }

  std::vector<const Experiment*> to_run;
  if (const std::string err = select_experiments(args, to_run);
      !err.empty()) {
    std::fprintf(stderr, "dxbar_bench: %s\n", err.c_str());
    return 2;
  }
  if (to_run.empty()) {
    print_usage(stderr);
    return 2;
  }

  // One warm-snapshot cache for the whole session: experiments sharing
  // a (design, warmup) pair — common under --all — warm it exactly once.
  WarmupCache warm_cache;

  RunOptions opt;
  opt.quick = args.quick;
  opt.threads = args.threads;
  opt.seeds = args.seeds;
  opt.warm_cache = &warm_cache;
  opt.csv_dir = args.csv_dir;
  opt.json_dir = args.json_dir;
  opt.resume_dir = args.resume_dir;
  opt.overrides = args.overrides;
  const std::string cfg_err = make_base_config(args, opt.base);
  if (!cfg_err.empty()) {
    std::fprintf(stderr, "dxbar_bench: %s\n", cfg_err.c_str());
    return 2;
  }

  // Multi-experiment sessions get a point-count / ETA preflight so the
  // cost of an `--all` run is visible before the first sweep starts.
  if (to_run.size() > 1) print_preflight(to_run, opt);

  int rc = 0;
  std::vector<std::string> used_csv_names;
  for (const Experiment* e : to_run) {
    const ExperimentResult result = execute(*e, opt);
    print_result(result);
    if (result.exit_code != 0 && rc == 0) rc = result.exit_code;
    if (!opt.csv_dir.empty() &&
        !write_csv_tables(*e, result, opt.csv_dir, used_csv_names)) {
      rc = 1;
    }
    if (!opt.json_dir.empty() && !write_json_result(*e, result, opt)) {
      rc = 1;
    }
  }
  if (warm_cache.hits() + warm_cache.misses() > 0) {
    std::fprintf(stderr,
                 "dxbar_bench: session warm cache: %zu hit(s), %zu miss(es), "
                 "%zu snapshot(s) retained\n",
                 warm_cache.hits(), warm_cache.misses(),
                 warm_cache.entries());
  }
  return rc;
}
