// Ablation — unified dual-input single crossbar vs the dual-crossbar
// DXbar (paper section II.B).
//
// Claim to verify: the unified design provides the same (consistently
// slightly better) performance as the dual crossbar at 25% instead of
// 33% area overhead, paying 15 pJ instead of 13 pJ per crossbar
// traversal.  Both routing algorithms are swept across loads.
#include "bench_util.hpp"
#include "power/energy_model.hpp"

using namespace dxbar;
using namespace dxbar::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_args(argc, argv);

  std::vector<double> loads;
  for (double l = 0.1; l <= 0.9 + 1e-9; l += 0.1) loads.push_back(l);
  std::vector<std::string> x;
  for (double l : loads) x.push_back(fmt(l, "%.1f"));

  const std::vector<DesignVariant> variants = {
      {"DXbar DOR", RouterDesign::DXbar, RoutingAlgo::DOR},
      {"Unified DOR", RouterDesign::UnifiedXbar, RoutingAlgo::DOR},
      {"DXbar WF", RouterDesign::DXbar, RoutingAlgo::WestFirst},
      {"Unified WF", RouterDesign::UnifiedXbar, RoutingAlgo::WestFirst},
  };

  std::vector<std::string> labels;
  std::vector<SimConfig> cfgs;
  for (const auto& v : variants) {
    labels.emplace_back(v.label);
    for (double l : loads) {
      SimConfig c = opt.base;
      c.design = v.design;
      c.routing = v.routing;
      c.offered_load = l;
      cfgs.push_back(c);
    }
  }
  const auto stats = run_sweep(cfgs);

  std::vector<std::vector<double>> thr, lat, energy;
  for (std::size_t s = 0; s < labels.size(); ++s) {
    std::vector<double> tcol, lcol, ecol;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const RunStats& r = stats[s * loads.size() + i];
      tcol.push_back(r.accepted_load);
      lcol.push_back(r.avg_packet_latency);
      ecol.push_back(r.energy_per_packet_nj());
    }
    thr.push_back(std::move(tcol));
    lat.push_back(std::move(lcol));
    energy.push_back(std::move(ecol));
  }

  print_table("Ablation: accepted load, dual vs unified crossbar", "offered",
              x, labels, thr);
  print_table("Ablation: avg packet latency (cycles)", "offered", x, labels,
              lat, "%10.1f");
  print_table("Ablation: energy per packet (nJ)", "offered", x, labels,
              energy, "%10.3f");

  std::printf("\nArea: DXbar %.4f mm^2, Unified %.4f mm^2 (%.1f%% saved)\n",
              router_area_mm2(RouterDesign::DXbar),
              router_area_mm2(RouterDesign::UnifiedXbar),
              100.0 * (1.0 - router_area_mm2(RouterDesign::UnifiedXbar) /
                                 router_area_mm2(RouterDesign::DXbar)));
  return 0;
}
