// Table I — processor parameters used for the SPLASH-2 suite simulations.
// These parametrise the coherence-traffic substitute (traffic/splash.*);
// the table is printed verbatim so EXPERIMENTS.md can cite it.
#include <cstdio>

int main() {
  std::puts("Table I: processor parameters (SPLASH-2 substitute)");
  std::puts("----------------------------------------------------");
  std::puts("Frequency                 3 GHz");
  std::puts("Issue                     2, in-order");
  std::puts("Retire                    in-order");
  std::puts("Ld/St units               1");
  std::puts("Mul/Div units             1");
  std::puts("Write-buffer entries      16");
  std::puts("Branch predictor          hybrid GAg+SAg (13-bit GHR)");
  std::puts("BTB/RAS entries           2,048 / 32");
  std::puts("IL1/DL1 size, assoc       64 KB, 4-way");
  std::puts("IL1/DL1 access latency    2 cycles");
  std::puts("IL1/DL1 block size        64 B");
  std::puts("");
  std::puts("Role in this reproduction: the cores are not simulated; these");
  std::puts("parameters shape the synthetic coherence workload (injection");
  std::puts("intensity, MSHR throttling, burstiness) in traffic/splash.*.");
  return 0;
}
